package nonfifo_test

import (
	"fmt"
	"log"

	nonfifo "repro"
)

// Running a protocol over an adversarial channel and checking the
// execution against the paper's correctness properties.
func Example() {
	r := nonfifo.NewRunner(nonfifo.Config{
		Protocol:    nonfifo.SeqNum(),
		DataPolicy:  nonfifo.DelayFirst(2), // strand two stale copies
		RecordTrace: true,
	})
	res := r.Run(3)
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Println("delivered:", len(res.Delivered))
	fmt.Println("valid:", nonfifo.CheckValid(res.Trace) == nil)
	// Output:
	// delivered: 3
	// valid: true
}

// The replay adversary finds the classic non-FIFO attack on the
// alternating bit protocol and returns a machine-checked certificate.
func ExampleReplaySearch() {
	r := nonfifo.NewRunner(nonfifo.Config{
		Protocol:    nonfifo.AltBit(),
		DataPolicy:  nonfifo.DelayFirst(1),
		RecordTrace: true,
	})
	for i := 0; i < 2; i++ {
		if err := r.RunMessage(fmt.Sprintf("m%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := nonfifo.ReplaySearch(r, nonfifo.ReplayConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("broken:", rep.Cert != nil)
	fmt.Println("violation:", rep.Cert.Violation.Property)
	fmt.Println("recheck:", rep.Cert.Recheck() == nil)
	// Output:
	// broken: true
	// violation: DL1
	// recheck: true
}

// Exhaustive bounded model checking: every channel behaviour within the
// bounds, with a shortest counterexample or a safe-within-bounds verdict.
func ExampleExplore() {
	broken, err := nonfifo.Explore(nonfifo.AltBit(), nonfifo.ExploreConfig{
		Messages: 2, MaxDataSends: 4, MaxAckSends: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	safe, err := nonfifo.Explore(nonfifo.SeqNum(), nonfifo.ExploreConfig{
		Messages: 2, MaxDataSends: 4, MaxAckSends: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("altbit broken:", broken.Violation != nil)
	fmt.Println("seqnum safe and exhausted:", safe.Violation == nil && safe.Exhausted)
	// Output:
	// altbit broken: true
	// seqnum safe and exhausted: true
}

// Measuring the P_f-boundness curve (Definition 6): the packets needed to
// deliver the next message as a function of packets stranded in transit.
// The counting protocol pays linearly (Theorem 4.1, tight); compare the
// naive protocol's O(1).
func ExampleMeasurePf() {
	samples, err := nonfifo.MeasurePf(nonfifo.CntLinear(), []int{0, 8, 64}, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range samples {
		fmt.Printf("in-transit %d → cost %d\n", s.InTransit, s.Cost)
	}
	// Output:
	// in-transit 0 → cost 1
	// in-transit 8 → cost 9
	// in-transit 64 → cost 65
}

// The Theorem 2.1 pumping argument: a protocol that cannot close its
// execution has a repeating joint state, certifying a livelock.
func ExamplePump() {
	r := nonfifo.NewRunner(nonfifo.Config{Protocol: nonfifo.Livelock()})
	r.SubmitMsg("m")
	rep, err := nonfifo.Pump(r, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pumped:", rep.Pumped)
	// Output:
	// pumped: true
}

// Formal verification in the [LT87] I/O automaton formalism: the naive
// protocol is safe over the non-FIFO channel, proven by exhausting the
// reachable states of the composed system.
func ExampleReachAutomaton() {
	sys, err := nonfifo.NewSeqNumSystem(nonfifo.NonFIFOChannel, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nonfifo.ReachAutomaton(sys, nonfifo.AutomatonViolated, 1<<22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("violation found:", res.Found != nil)
	fmt.Println("space exhausted:", res.Exhausted)
	// Output:
	// violation found: false
	// space exhausted: true
}
