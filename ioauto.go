package nonfifo

import "repro/internal/ioauto"

// The [LT87] I/O automaton formalism (see internal/ioauto): the paper's
// model in its original mathematical setting, with composition and
// exhaustive reachability.
type (
	// Automaton is an I/O automaton: a signature plus an initial state.
	Automaton = ioauto.Automaton
	// AutomatonState is one (immutable) automaton state.
	AutomatonState = ioauto.State
	// ActionClass classifies an action as input, output or internal.
	ActionClass = ioauto.Class
	// ReachResult is a reachability outcome: a shortest witness or an
	// exhausted-space certificate.
	ReachResult = ioauto.Result
	// ChannelKind selects a channel automaton's delivery discipline.
	ChannelKind = ioauto.ChannelKind
)

// Action classes.
const (
	ActionInput    = ioauto.Input
	ActionOutput   = ioauto.Output
	ActionInternal = ioauto.Internal
)

// Channel disciplines for the automaton models.
const (
	NonFIFOChannel = ioauto.NonFIFOKind
	FIFOChannel    = ioauto.FIFOKind
)

// ComposeAutomata builds the [LT87] composition of the given automata,
// enforcing the compatibility conditions.
func ComposeAutomata(name string, parts ...Automaton) (Automaton, error) {
	return ioauto.Compose(name, parts...)
}

// ReachAutomaton explores the reachable states of a closed composition
// breadth-first until pred matches or the space is exhausted.
func ReachAutomaton(a Automaton, pred func(AutomatonState) bool, maxStates int) (ReachResult, error) {
	return ioauto.Reach(a, pred, maxStates)
}

// AutomatonViolated is the predicate matching the DL-monitor's violation
// state.
func AutomatonViolated(s AutomatonState) bool { return ioauto.Violated(s) }

// NewAltBitSystem composes user ∥ A^t ∥ channels ∥ A^r ∥ monitor around the
// alternating bit protocol, in the automaton formalism.
func NewAltBitSystem(kind ChannelKind, messages, capacity int) (Automaton, error) {
	return ioauto.NewAltBitSystem(kind, messages, capacity)
}

// NewSeqNumSystem composes the same system around the naive protocol for a
// fixed message count (its alphabet is then finite, so safety is decidable
// by exhaustion).
func NewSeqNumSystem(kind ChannelKind, messages, capacity int) (Automaton, error) {
	return ioauto.NewSeqNumSystem(kind, messages, capacity)
}

// AutomatonWitnessTrace converts a reachability witness into an execution
// trace checkable by the trace checkers.
func AutomatonWitnessTrace(path []string) (Trace, error) { return ioauto.WitnessTrace(path) }
