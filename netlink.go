package nonfifo

import (
	"net"
	"time"

	"repro/internal/netlink"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Real-socket transport (see internal/netlink): run the protocols over
// actual datagram sockets, with optional deterministic chaos injection.
type (
	// NetSender drives a transmitter over a datagram socket.
	NetSender = netlink.Sender
	// NetReceiver drives a receiver over a datagram socket.
	NetReceiver = netlink.Receiver
	// NetPair is a loopback sender/receiver pair.
	NetPair = netlink.Pair
	// SenderOption configures a NetSender.
	SenderOption = netlink.SenderOption
	// ChaosConn imposes seeded loss and reordering on a net.PacketConn —
	// the paper's non-FIFO physical layer on a real socket.
	ChaosConn = netlink.ChaosConn
	// ChaosConfig parameterises a ChaosConn.
	ChaosConfig = netlink.ChaosConfig
)

// Soak server (see internal/netlink): many concurrent lock-step sessions
// over real UDP, each recorded as a bit-for-bit replayable NFT trace.
type (
	// SoakServer muxes concurrent sessions over one UDP socket.
	SoakServer = netlink.Server
	// SoakSessionConfig parameterises one lock-step session.
	SoakSessionConfig = netlink.SessionConfig
	// SoakSessionResult carries a session's log, stats and verdicts.
	SoakSessionResult = netlink.SessionResult
	// SoakConfig parameterises a soak run.
	SoakConfig = netlink.SoakConfig
	// SoakReport aggregates a soak run.
	SoakReport = netlink.SoakReport
	// SoakOutcome summarises one soak session.
	SoakOutcome = netlink.SessionOutcome
)

// Sharded trace storage (see internal/trace): soak recordings packed into a
// fixed set of shard files behind an NFMAN manifest.
type (
	// ShardStore writes per-session trace logs into shard files.
	ShardStore = trace.ShardStore
	// ShardManifest indexes a shard directory.
	ShardManifest = trace.Manifest
	// ShardManifestEntry locates and summarises one recorded session.
	ShardManifestEntry = trace.ManifestEntry
)

// NewShardStore creates a shard directory with the given shard-file count.
func NewShardStore(dir string, shards int) (*ShardStore, error) {
	return trace.NewShardStore(dir, shards)
}

// ReadShardManifest reads a shard directory's manifest.
func ReadShardManifest(dir string) (*ShardManifest, error) { return trace.ReadManifestFile(dir) }

// ReadShardLog extracts one session's log from a shard directory.
func ReadShardLog(dir string, m *ShardManifest, session string) (*TraceLog, error) {
	return trace.ReadShardLog(dir, m, session)
}

// NewSoakServer opens a soak server on addr ("" for an ephemeral loopback
// port). Run sessions with its RunSession and RunSoak methods.
func NewSoakServer(addr string) (*SoakServer, error) { return netlink.NewServer(addr) }

// RunLoopbackSoakSession runs one lock-step session over a standalone pair
// of loopback sockets, without a server mux.
func RunLoopbackSoakSession(cfg SoakSessionConfig) (*SoakSessionResult, error) {
	return netlink.RunLoopbackSession(cfg)
}

// Socket-level errors.
var (
	// ErrNetClosed is returned by operations on a closed station.
	ErrNetClosed = netlink.ErrClosed
	// ErrFlushTimeout is returned when a flush deadline expires.
	ErrFlushTimeout = netlink.ErrFlushTimeout
)

// NewNetSender starts a sender for protocol p on conn, talking to remote.
func NewNetSender(p Protocol, conn net.PacketConn, remote net.Addr, opts ...SenderOption) *NetSender {
	return netlink.NewSender(p, conn, remote, opts...)
}

// NewNetReceiver starts a receiver for protocol p on conn.
func NewNetReceiver(p Protocol, conn net.PacketConn) *NetReceiver {
	return netlink.NewReceiver(p, conn)
}

// NewLoopbackPair wires a sender and receiver over fresh loopback UDP
// sockets; wrap (optional) intercepts each socket, e.g. with NewChaosConn.
func NewLoopbackPair(p Protocol, wrap func(net.PacketConn) net.PacketConn, opts ...SenderOption) (*NetPair, error) {
	return netlink.NewLoopbackPair(p, wrap, opts...)
}

// NewChaosConn wraps a socket with seeded loss and reordering.
func NewChaosConn(inner net.PacketConn, cfg ChaosConfig) *ChaosConn {
	return netlink.NewChaosConn(inner, cfg)
}

// WithResendInterval overrides a sender's retransmission pacing.
func WithResendInterval(d time.Duration) SenderOption { return netlink.WithResendInterval(d) }

// EncodePacket serialises a packet for the wire (see internal/wire).
func EncodePacket(p Packet) []byte { return wire.Encode(p) }

// DecodePacket parses a datagram produced by EncodePacket.
func DecodePacket(b []byte) (Packet, error) { return wire.Decode(b) }
