// Package nonfifo is a library reproduction of Mansour & Schieber, "The
// Intractability of Bounded Protocols for Non-FIFO Channels" (PODC 1989).
//
// It provides:
//
//   - the paper's communication model as an executable simulation — non-FIFO
//     and probabilistic physical channels, data link endpoint automata, and
//     trace checkers for the correctness properties PL1, DL1, DL2, DL3;
//   - a family of data link protocols spanning the paper's design space:
//     the naive unbounded-header protocol, the alternating bit protocol,
//     and genie-aided counting protocols in the style of [Afe88] and
//     [AFWZ88] (plus deliberately under-provisioned "cheat" variants);
//   - the paper's lower-bound constructions as attack procedures that emit
//     machine-checkable violation certificates (replay, pumping,
//     header-budget);
//   - an execution trace subsystem: record any run as a compact,
//     self-describing event log, replay it deterministically, and
//     delta-debug violating logs to minimal counterexamples (see
//     cmd/nftrace for the command-line pipeline);
//   - a coverage-guided parallel fuzzer over the channel decision streams
//     that discovers violating executions automatically and emits them as
//     shrunk replayable certificates (see cmd/nffuzz);
//   - boundness measurement per the paper's Definitions 5 and 6;
//   - a bounded explicit-state model checker (Explore) that exhausts the
//     channel nondeterminism within bounds — over the paper's non-FIFO
//     discipline or the contrasting lossy-FIFO one — and emits shortest
//     counterexamples;
//   - sliding window and go-back-N transport protocols over non-FIFO
//     virtual links, realising the paper's closing remark that the results
//     extend to the transport layer;
//   - a bounded reachability prover (Verify, `nfvet verify`) that either
//     PROVES DL-safety up to an occupancy cap and message bound — emitting
//     a machine-readable proof artifact — or produces a replay-confirmed
//     NFT counterexample;
//   - a self-stabilization subsystem (CheckConvergence, StabilizeSweep,
//     `nfvet stabilize`, `nfvet verify -stabilize`, `nffuzz -corrupt`) that
//     drops the paper's clean-start assumption: corrupted initial
//     configurations are enumerated, fuzzed, and exhaustively explored,
//     and convergence back to DL1–DL3 within a finite fault amnesty is
//     proved or refuted with replayable witnesses; and
//   - the experiment suite E0–E9 that reproduces each theorem's predicted
//     shape (see DESIGN.md and EXPERIMENTS.md).
//
// # Quickstart
//
//	r := nonfifo.NewRunner(nonfifo.Config{
//		Protocol:    nonfifo.SeqNum(),
//		DataPolicy:  nonfifo.Probabilistic(0.25, rand.New(rand.NewSource(1))),
//		RecordTrace: true,
//	})
//	res := r.Run(10)
//	if err := nonfifo.CheckValid(res.Trace); err != nil { ... }
//
// See examples/ for complete programs.
package nonfifo

import (
	"io"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/analyze"
	"repro/internal/bound"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Model types (see internal/ioa).
type (
	// Packet is an element of the physical layer alphabet P.
	Packet = ioa.Packet
	// Message is an element of the data link alphabet M.
	Message = ioa.Message
	// Event is one execution action.
	Event = ioa.Event
	// Trace is a finite execution.
	Trace = ioa.Trace
	// Counters are the action counts of the paper's Definition 2.
	Counters = ioa.Counters
	// Violation is a failed correctness property with its location.
	Violation = ioa.Violation
	// Dir identifies one of the two physical channels.
	Dir = ioa.Dir
)

// Channel directions.
const (
	TtoR = ioa.TtoR
	RtoT = ioa.RtoT
)

// Channel machinery (see internal/channel).
type (
	// Policy decides the fate of each sent packet.
	Policy = channel.Policy
	// Decision is a policy verdict.
	Decision = channel.Decision
	// NonFIFO is the non-FIFO physical channel.
	NonFIFO = channel.NonFIFO
	// Genie is the stale-copy oracle available to counting protocols.
	Genie = channel.Genie
)

// Policy verdicts.
const (
	DeliverNow = channel.DeliverNow
	Delay      = channel.Delay
	Drop       = channel.Drop
)

// Policies (channel behaviours).
var (
	// Reliable delivers every packet immediately (the optimal behaviour
	// of the boundness definitions).
	Reliable = channel.Reliable
	// DelayAll delays every packet.
	DelayAll = channel.DelayAll
	// DelayFirst delays the first n packets, then delivers.
	DelayFirst = channel.DelayFirst
	// DelayPerHeader delays the first n copies of each distinct header.
	DelayPerHeader = channel.DelayPerHeader
	// DropEvery drops every k-th packet.
	DropEvery = channel.DropEvery
	// Script replays a fixed decision sequence.
	Script = channel.Script
)

// Probabilistic is the probabilistic physical layer of the paper's
// Section 5 (property PL2p): each packet is delivered immediately with
// probability 1−q and delayed otherwise.
func Probabilistic(q float64, rng *rand.Rand) Policy { return channel.Probabilistic(q, rng) }

// ProbabilisticDrop loses (rather than delays) each packet with
// probability q.
func ProbabilisticDrop(q float64, rng *rand.Rand) Policy { return channel.ProbabilisticDrop(q, rng) }

// Protocol machinery (see internal/protocol).
type (
	// Protocol describes a data link protocol.
	Protocol = protocol.Protocol
	// Transmitter is the automaton A^t.
	Transmitter = protocol.Transmitter
	// Receiver is the automaton A^r.
	Receiver = protocol.Receiver
)

// SeqNum returns the naive protocol: the i-th message uses the i-th header;
// n headers, O(log n) space, O(1) packets per message.
func SeqNum() Protocol { return protocol.NewSeqNum() }

// AltBit returns the alternating bit protocol [BSW69]: 4 headers,
// finite-state, unsafe over non-FIFO channels.
func AltBit() Protocol { return protocol.NewAltBit() }

// CntLinear returns the Afek-style genie counting protocol: 4 headers,
// Θ(packets-in-transit) packets per message (Theorem 4.1's tight shape).
func CntLinear() Protocol { return protocol.NewCntLinear() }

// CntExp returns the AFWZ-style pessimistic counting protocol: 4 headers,
// packet cost exponential in the number of messages even on a perfect
// channel.
func CntExp() Protocol { return protocol.NewCntExp() }

// Cheat returns CntLinear with its acceptance threshold lowered by d; for
// any d ≥ 1 the replay adversary produces a violation certificate
// (Theorem 4.1's mechanism).
func Cheat(d int) Protocol { return protocol.NewCheat(d) }

// CntK returns the K-cycling-header counting protocol (2K headers): with
// L stale packets spread over its headers, a message costs ≈ L/K + 1
// packets — Theorem 4.1's 1/k factor as a dial (see experiment E10).
func CntK(k int) Protocol { return protocol.NewCntK(k) }

// CntNoBind returns the payload-binding ablation of CntLinear: the
// acceptance threshold pools all same-bit copies regardless of payload, so
// an adversary can push a stale payload over the line (see experiment E9).
func CntNoBind() Protocol { return protocol.NewCntNoBind() }

// Livelock returns a deliberately broken protocol used to demonstrate the
// pumping detector (Theorem 2.1's mechanism).
func Livelock() Protocol { return protocol.NewLivelock() }

// StabDL returns the self-stabilizing counting protocol: c+1 consecutive
// copies of the same payload are required before adoption, which lets it
// recover DL1–DL3 from every bounded corrupted start (see internal/stabilize
// and `nfvet verify -stabilize`).
func StabDL(c int) Protocol { return protocol.NewStabDL(c) }

// StabNaive returns the round-counting control specimen: clean-start
// correct but not self-stabilizing — corrupted starts drive it past its
// amnesty or into a certified livelock.
func StabNaive() Protocol { return protocol.NewStabNaive() }

// Arrival returns the arrival-order delivery specimen: it delivers in
// arrival order, so a corrupted start costs it DL2 (FIFO order), the
// property the amnesty judge charges late arrivals against.
func Arrival() Protocol { return protocol.NewArrival() }

// Protocols returns the built-in protocol registry keyed by name.
func Protocols() map[string]Protocol { return protocol.Registry() }

// Simulation (see internal/sim).
type (
	// Config describes one simulation.
	Config = sim.Config
	// Runner drives a protocol over two non-FIFO channels.
	Runner = sim.Runner
	// Result is a run outcome.
	Result = sim.Result
	// Metrics are the resource measurements of a run.
	Metrics = sim.Metrics
)

// NewRunner constructs a simulation runner.
func NewRunner(cfg Config) *Runner { return sim.NewRunner(cfg) }

// Trace checkers (the paper's correctness properties).
var (
	// CheckPL1 verifies physical-layer safety on one channel.
	CheckPL1 = ioa.CheckPL1
	// CheckDL1 verifies the send/receive message correspondence.
	CheckDL1 = ioa.CheckDL1
	// CheckDL2 verifies FIFO delivery order.
	CheckDL2 = ioa.CheckDL2
	// CheckDL3Quiescent verifies that every sent message was delivered.
	CheckDL3Quiescent = ioa.CheckDL3Quiescent
	// CheckValid verifies Definition 3 (valid execution).
	CheckValid = ioa.CheckValid
	// CheckSemiValid verifies Definition 4 (semi-valid execution).
	CheckSemiValid = ioa.CheckSemiValid
	// CheckSafety verifies the prefix-closed safety properties only.
	CheckSafety = ioa.CheckSafety
	// AsViolation extracts a *Violation from a checker error.
	AsViolation = ioa.AsViolation
)

// Adversaries (the paper's lower-bound constructions).
type (
	// Certificate is a machine-checkable violation witness.
	Certificate = adversary.Certificate
	// ReplayConfig bounds the replay search.
	ReplayConfig = adversary.ReplayConfig
	// ReplayReport is a replay-search outcome.
	ReplayReport = adversary.ReplayReport
	// PumpReport is a pumping-run outcome.
	PumpReport = adversary.PumpReport
	// HeaderBudgetReport is a Theorem 3.1 construction outcome.
	HeaderBudgetReport = adversary.HeaderBudgetReport
)

// ReplaySearch looks for a stale-copy replay schedule that drives the
// receiver into an invalid execution (rm = sm + 1).
func ReplaySearch(r *Runner, cfg ReplayConfig) (ReplayReport, error) {
	return adversary.ReplaySearch(r, cfg)
}

// Pump runs the optimal-from-now channel and reports either the closing
// cost or a repeated joint state (Theorem 2.1's pumping argument).
func Pump(r *Runner, budget int) (PumpReport, error) { return adversary.Pump(r, budget) }

// HeaderBudget accumulates in-transit copies of the protocol's whole
// alphabet and then replays (Theorem 3.1's construction).
func HeaderBudget(p Protocol, copies, messages int, cfg ReplayConfig) (HeaderBudgetReport, error) {
	return adversary.HeaderBudget(p, copies, messages, cfg)
}

// Execution traces: record, deterministic replay, shrinking (see
// internal/trace and internal/replay). Set Config.TraceLog to record a run;
// Replay re-drives a recorded log bit for bit and re-checks it; Shrink
// minimizes a violating log while preserving the violated property.
type (
	// TraceLog is a recorded execution event log.
	TraceLog = trace.Log
	// TraceEvent is one recorded event.
	TraceEvent = trace.Event
	// TraceStats is a summary of a trace log.
	TraceStats = trace.Stats
	// ReplayResult is the outcome of replaying a recorded log.
	ReplayResult = replay.Result
	// ShrinkResult is the outcome of minimizing a violating log.
	ShrinkResult = replay.ShrinkResult
)

// NewTraceLog returns an empty trace log ready for Config.TraceLog.
func NewTraceLog() *TraceLog { return trace.NewLog(nil) }

// Replay re-drives a recorded simulation log deterministically and
// re-checks the paper's properties on the replayed execution.
func Replay(l *TraceLog) (*ReplayResult, error) { return replay.Run(l) }

// Shrink delta-debugs a violating log to a minimal counterexample that
// still violates the same property when replayed. Safety violations use the
// prefix-search + greedy oracle; safety-clean logs that strand a message are
// minimized under the liveness oracles (reliable first, then adversarial).
func Shrink(l *TraceLog) (*ShrinkResult, error) { return replay.Shrink(l) }

// Liveness certification (see internal/replay/liveness.go): the executable
// analogue of Theorem 2.1's pumping argument. CertifyLivelock turns a
// safety-clean trace that strands a message *and keeps looping under the
// optimal physical layer* into a prefix+cycle certificate whose cycle pumps
// any number of times and still fails CheckDL3Quiescent.
type (
	// DriveMode selects the closing drive: reliable (protocol must recover)
	// or adversarial (the channel delivers nothing further).
	DriveMode = replay.DriveMode
	// DriveOutcome reports what the closing drive did to a replayed trace.
	DriveOutcome = replay.DriveOutcome
	// LivelockCert is a certified prefix+cycle livelock.
	LivelockCert = replay.LivelockCert
	// CertifyOptions tunes CertifyLivelock; the zero value is ready to use.
	CertifyOptions = replay.CertifyOptions
)

// Drive modes for CloseDrive and ShrinkLiveness.
const (
	DriveReliable    = replay.DriveReliable
	DriveAdversarial = replay.DriveAdversarial
)

// CloseDrive replays l and drives the quiescence-forcing closing extension
// (no new submissions) under the selected mode; budget <= 0 uses the
// default.
func CloseDrive(l *TraceLog, mode DriveMode, budget int) (*DriveOutcome, error) {
	return replay.CloseDrive(l, mode, budget)
}

// CertifyLivelock certifies a livelock by detecting a repeated joint
// configuration with no delivery progress under the reliable closing drive,
// and verifies the certificate by replaying its pumped cycle.
func CertifyLivelock(l *TraceLog, opts CertifyOptions) (*LivelockCert, error) {
	return replay.CertifyLivelock(l, opts)
}

// ShrinkLiveness minimizes a trace against the quiescent-DL3 oracle of the
// given drive mode (the trace must strand a message under that drive while
// staying safety-clean).
func ShrinkLiveness(l *TraceLog, mode DriveMode) (*ShrinkResult, error) {
	return replay.ShrinkLiveness(l, mode)
}

// TraceStatsOf summarizes a trace log.
func TraceStatsOf(l *TraceLog) TraceStats { return trace.Collect(l) }

// WriteTraceFile and ReadTraceFile store logs in the NFT trace format
// (see cmd/nftrace for the command-line pipeline).
var (
	WriteTraceFile = trace.WriteFile
	ReadTraceFile  = trace.ReadFile
)

// Coverage-guided fuzzing over protocol/channel state spaces (see
// internal/fuzz and cmd/nffuzz). Inputs are channel decision streams plus
// driver schedules; coverage is the set of joint endpoint configurations;
// violating inputs are promoted into shrunk, replayable NFT certificates.
type (
	// FuzzConfig describes one fuzzing campaign.
	FuzzConfig = fuzz.Config
	// FuzzResult summarizes a completed campaign.
	FuzzResult = fuzz.Result
	// FuzzViolation is one promoted, shrunk, replayable finding — a safety
	// certificate, or a pumped livelock certificate (Property "DL3").
	FuzzViolation = fuzz.Violation
)

// DistillCorpus reduces a corpus to a covering subset for proto by greedy
// set cover over the target protocol's coverage points — the cross-protocol
// corpus-transfer primitive.
func DistillCorpus(proto Protocol, inputs []*fuzz.Input) []*fuzz.Input {
	return fuzz.Distill(proto, inputs)
}

// Fuzz runs one coverage-guided fuzzing campaign.
func Fuzz(cfg FuzzConfig) (*FuzzResult, error) { return fuzz.Run(cfg) }

// Boundness measurement (the paper's Definitions 5 and 6).
type (
	// BoundnessSample is one measured point of a boundness curve.
	BoundnessSample = bound.Sample
)

// ClosingCost measures sp^{t→r}(β) of the definitional closing extension
// from the runner's current semi-valid state.
func ClosingCost(r *Runner, budget int) (int, error) { return bound.ClosingCost(r, budget) }

// MeasureMf measures the M_f-boundness curve over message counts.
func MeasureMf(p Protocol, n, budget int) ([]BoundnessSample, error) {
	return bound.MeasureMf(p, n, budget)
}

// MeasurePf measures the P_f-boundness curve over in-transit levels.
func MeasurePf(p Protocol, levels []int, budget int) ([]BoundnessSample, error) {
	return bound.MeasurePf(p, levels, budget)
}

// BuildInTransit prepares a runner with at least l packets delayed on the
// data channel and the transmitter idle.
func BuildInTransit(p Protocol, l, budget int) (*Runner, error) {
	return bound.BuildInTransit(p, l, budget)
}

// Experiments (DESIGN.md §4).
type (
	// ExperimentScale selects Quick or Full experiment sweeps.
	ExperimentScale = core.Scale
)

// Experiment scales.
const (
	Quick = core.Quick
	Full  = core.Full
)

// RunExperiments executes the full E0–E12 suite and renders its tables to w.
func RunExperiments(w io.Writer, scale ExperimentScale) error { return core.RunAll(w, scale) }

// SplitSeed derives the RNG seed for one named stream from a root seed, so
// every randomized component of a program can be pinned and replayed
// independently (see internal/core). All randomness in the module flows
// from seeds derived this way — the globalrand lint (cmd/nfvet) forbids the
// process-global math/rand source and hard-coded constant seeds.
func SplitSeed(root int64, stream string) int64 { return core.SplitSeed(root, stream) }

// Static boundness audit (see internal/analyze and cmd/nfvet).
type (
	// AuditConfig bounds the audit's state enumeration.
	AuditConfig = analyze.AuditConfig
	// AuditReport is the result of auditing one protocol: the observed
	// k_t, k_r and header alphabet, and the verdict against the
	// protocol's declared Bounds.
	AuditReport = analyze.AuditReport
	// Bounds declares a protocol's expected state-complexity envelope.
	Bounds = protocol.Bounds
)

// AuditProtocol exhaustively enumerates the protocol's joint control states
// (q_t, q_r) reachable under bounded channel occupancy and checks the
// observation against its declared Bounds: the k_t·k_r joint-state count
// Theorem 2.1's pumping adversary exploits, and the bounded header alphabet
// Theorems 3.1/4.1 presuppose. A zero-valued cfg uses the defaults
// (occupancy 2, 65536-state budget).
func AuditProtocol(p Protocol, cfg AuditConfig) *AuditReport { return analyze.Audit(p, cfg) }

// Occupancy sweep (see internal/analyze and `nfvet audit -sweep`).
type (
	// SweepConfig bounds one occupancy sweep.
	SweepConfig = analyze.SweepConfig
	// SweepReport is the k_t/k_r-vs-occupancy curve for one protocol.
	SweepReport = analyze.SweepReport
)

// AuditSweep audits the protocol at occupancy caps 1..cfg.MaxOccupancy and
// returns the k_t/k_r curve — the empirical face of Theorem 2.1: the
// pumping bound k_t·k_r a bounded protocol exposes can only grow with the
// channel's buffering, and plateaus once the cap covers the whole window.
// Use SweepReport.CheckMonotone to verify that shape and
// analyze.SweepTable (via `nfvet audit -sweep`) for the TSV rendering.
func AuditSweep(p Protocol, cfg SweepConfig) *SweepReport { return analyze.Sweep(p, cfg) }

// Bounded model checking (see internal/verify and `nfvet verify`).
type (
	// VerifyConfig bounds one verification run: per-channel occupancy cap,
	// submitted-message bound, and exploration budget.
	VerifyConfig = verify.Config
	// VerifyReport is the outcome: a PROVED proof artifact (state/edge
	// counts, canonical space hash), or a VIOLATED report carrying a
	// replay-confirmed NFT witness.
	VerifyReport = verify.Report
)

// Verify exhaustively explores the protocol's joint configurations
// reachable within cfg's bounds, checking DL1 on the fly and DL3 over the
// explored graph. It either PROVES the absence of violations within the
// bounds or emits a counterexample schedule that has been re-driven through
// the simulator and re-judged by the replay checkers. A zero-valued cfg
// uses the defaults (occupancy 2, 3 messages, 1<<18-state budget).
// Set VerifyConfig.Stabilize to seed the exploration with every bounded
// corrupted start: PROVED then means the protocol self-stabilizes within
// the bounds.
func Verify(p Protocol, cfg VerifyConfig) (*VerifyReport, error) { return verify.Run(p, cfg) }

// Self-stabilization (see internal/stabilize, `nfvet stabilize`,
// `nfvet verify -stabilize`, and `nffuzz -corrupt`). The paper's theorems
// assume clean starts; the stabilization subsystem drops that assumption:
// the adversary also picks the initial configuration, and a protocol
// self-stabilizes when every bounded corrupted start converges back to
// DL1–DL3 within its amnesty (finitely many bought faults).
type (
	// Corruption is one corrupted initial configuration: endpoint start
	// states by index into the protocol's declared corruption space plus
	// poison packets pre-loaded per channel.
	Corruption = stabilize.Corruption
	// StabilizeConfig tunes one convergence check.
	StabilizeConfig = stabilize.Config
	// StabilizeReport is the outcome of checking one corrupted start.
	StabilizeReport = stabilize.Report
	// StabilizeSweepReport aggregates a whole corruption space's checks
	// against the protocol's StabilizeStatus declaration.
	StabilizeSweepReport = stabilize.SweepReport
	// CorruptionSpace declares a protocol's bounded corrupted starts.
	CorruptionSpace = protocol.CorruptionSpace
)

// EnumerateCorruptions lists the protocol's bounded corrupted starts: every
// declared endpoint-state pair crossed with every poison multiset of up to
// maxPoison packets per channel. Element 0 is the clean start.
func EnumerateCorruptions(p Protocol, maxPoison int) []Corruption {
	return stabilize.Enumerate(p, maxPoison)
}

// Amnesty returns the corruption's fault budget: the number of incorrect
// deliveries it is entitled to cause before the run counts as divergent.
func Amnesty(c Corruption, occupancy int) int { return stabilize.Amnesty(c, occupancy) }

// CheckConvergence drives one corrupted start to quiescence under reliable
// channels and judges it with the amnesty judge, certifying non-convergence
// as a replay-confirmed over-amnesty witness or a pumped livelock.
func CheckConvergence(p Protocol, c Corruption, cfg StabilizeConfig) (*StabilizeReport, error) {
	return stabilize.CheckConvergence(p, c, cfg)
}

// StabilizeSweep checks every corruption in the protocol's bounded space and
// aggregates the outcome against its StabilizeStatus declaration.
func StabilizeSweep(p Protocol, cfg StabilizeConfig, maxPoison int) (*StabilizeSweepReport, error) {
	return stabilize.Sweep(p, cfg, maxPoison)
}
