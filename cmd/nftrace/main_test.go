package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/trace"
)

func mustRun(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("nftrace %v: %v\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestRecordReplayStats(t *testing.T) {
	dir := t.TempDir()
	out := mustRun(t, "record", "-protocol", "altbit", "-messages", "4", "-seed", "2", "-o", dir+"/run.nft")
	if !strings.Contains(out, "recorded altbit") || !strings.Contains(out, "overhead") {
		t.Fatalf("record output:\n%s", out)
	}
	out = mustRun(t, "replay", dir+"/run.nft")
	if !strings.Contains(out, "verdict: safe") {
		t.Fatalf("replay output:\n%s", out)
	}
	out = mustRun(t, "stats", dir+"/run.nft")
	for _, want := range []string{"protocol=altbit", "driver ops", "decisions deliver/delay/drop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	out = mustRun(t, "stats", dir+"/run.nft", "-md")
	if !strings.Contains(out, "| metric |") {
		t.Fatalf("markdown stats output:\n%s", out)
	}
}

// violatingFile writes a violating altbit trace via a tiny scripted log:
// the same shape nfadv -o produces, without depending on cmd/nfadv.
func violatingFile(t *testing.T, path string) {
	t.Helper()
	// Script the attack through the replayer itself: build an op log whose
	// decisions strand the first data packet, confirm two messages, then
	// deliver the stale copy.
	l := trace.NewLog(map[string]string{trace.MetaProtocol: "altbit", trace.MetaKind: "sim"})
	emitOp := func(k trace.Kind) { l.Emit(trace.Event{Kind: k}) }
	decide := func(d trace.Decision) {
		l.Emit(trace.Event{Kind: trace.KindDecision, Dir: 1, Decision: d})
	}
	l.Emit(trace.Event{Kind: trace.KindSubmit, Msg: ioa.Message{ID: 0, Payload: "m0"}})
	emitOp(trace.KindTransmit) // d0 delayed
	decide(trace.Delay)
	emitOp(trace.KindTransmit) // d0 retransmitted, delivered
	decide(trace.DeliverNow)
	emitOp(trace.KindDrain) // a0 -> ack delivered (ack decisions default Delay when absent; supply them)
	l.Emit(trace.Event{Kind: trace.KindDecision, Dir: 2, Decision: trace.DeliverNow})
	l.Emit(trace.Event{Kind: trace.KindSubmit, Msg: ioa.Message{ID: 1, Payload: "m1"}})
	emitOp(trace.KindTransmit) // d1 delivered
	decide(trace.DeliverNow)
	emitOp(trace.KindDrain)
	l.Emit(trace.Event{Kind: trace.KindDecision, Dir: 2, Decision: trace.DeliverNow})
	// Stale replay of the stranded first copy: receiver expects bit 0 again.
	l.Emit(trace.Event{Kind: trace.KindStale, Dir: 1, Pkt: ioa.Packet{Header: "d0", Payload: "m0"}})
	if err := trace.WriteFile(path, l); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkPipeline(t *testing.T) {
	dir := t.TempDir()
	violatingFile(t, dir+"/v.nft")
	out := mustRun(t, "shrink", dir+"/v.nft", "-o", dir+"/min.nft")
	if !strings.Contains(out, "preserving DL1 violation") {
		t.Fatalf("shrink output:\n%s", out)
	}
	out = mustRun(t, "replay", dir+"/min.nft")
	if !strings.Contains(out, "DL1 violated") || !strings.Contains(out, "recorded verdict reproduced") {
		t.Fatalf("replay of shrunk trace:\n%s", out)
	}
}

// strandingFile writes a safety-clean trace of the livelock protocol: one
// submitted message, one transmit, nothing delivered. The certify-livelock
// pipeline must turn it into a pumped certificate that replays clean.
func strandingFile(t *testing.T, path string) {
	t.Helper()
	l := trace.NewLog(map[string]string{trace.MetaProtocol: "livelock", trace.MetaKind: "sim"})
	l.Emit(trace.Event{Kind: trace.KindSubmit, Msg: ioa.Message{ID: 0, Payload: "m0"}})
	l.Emit(trace.Event{Kind: trace.KindTransmit})
	l.Emit(trace.Event{Kind: trace.KindDecision, Dir: 1, Decision: trace.DeliverNow})
	if err := trace.WriteFile(path, l); err != nil {
		t.Fatal(err)
	}
}

func TestCertifyLivelockPipeline(t *testing.T) {
	dir := t.TempDir()
	strandingFile(t, dir+"/strand.nft")
	out := mustRun(t, "certify-livelock", dir+"/strand.nft", "-o", dir+"/pumped.nft")
	for _, want := range []string{"certified livelock", "protocol livelock", "pumped x3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("certify output missing %q:\n%s", want, out)
		}
	}
	out = mustRun(t, "replay", dir+"/pumped.nft")
	if !strings.Contains(out, "verdict: safe") || !strings.Contains(out, "liveness: DL3") {
		t.Fatalf("replay of pumped certificate:\n%s", out)
	}
	if !strings.Contains(out, "recorded verdict reproduced") {
		t.Fatalf("pumped certificate verdict not reproduced:\n%s", out)
	}
}

func TestCertifyLivelockRefusesRecoverableTrace(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, "record", "-protocol", "altbit", "-messages", "2", "-seed", "2", "-o", dir+"/run.nft")
	var buf bytes.Buffer
	err := run([]string{"certify-livelock", dir + "/run.nft"}, &buf)
	if err == nil {
		t.Fatal("certified a livelock for a recovering protocol")
	}
	if !strings.Contains(err.Error(), "recovers") && !strings.Contains(err.Error(), "no livelock") {
		t.Fatalf("unhelpful refusal: %v", err)
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing command accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"replay"}, &buf); err == nil {
		t.Error("replay without file accepted")
	}
	if err := run([]string{"replay", "/nonexistent.nft"}, &buf); err == nil {
		t.Error("replay of missing file accepted")
	}
	if err := run([]string{"record", "-protocol", "nosuch"}, &buf); err == nil {
		t.Error("record of unknown protocol accepted")
	}
}

func TestHelp(t *testing.T) {
	out := mustRun(t, "help")
	for _, want := range []string{"record", "replay", "shrink", "certify-livelock", "stats"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}
