// Command nftrace works with NFT execution traces: record a simulated run,
// replay a trace deterministically, shrink a violating trace to a minimal
// counterexample, certify a stranding trace as a pumpable livelock, and
// summarize a trace file.
//
// Examples:
//
//	nftrace record -protocol altbit -messages 8 -seed 3 -o run.nft
//	nftrace replay run.nft
//	nfadv -attack replay -protocol altbit -o v.nft
//	nftrace shrink v.nft -o min.nft
//	nftrace replay min.nft
//	nftrace stats min.nft
//	nffuzz -protocol livelock -workers 1 -o certs
//	nftrace certify-livelock certs/livelock-DL3.nft -o pumped.nft
//	nftrace replay pumped.nft
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

const usage = `usage: nftrace <command> [arguments]

commands:
  record            run a protocol under seeded lossy channels and record a trace
  replay            re-drive a recorded trace and re-check its verdict
  shrink            minimize a violating trace while preserving the violation
  certify-livelock  certify a stranding trace as a pumpable livelock (Theorem 2.1)
  stats             summarize a trace file

run "nftrace <command> -h" for command flags`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "nftrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing command\n%s", usage)
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "record":
		return cmdRecord(rest, out)
	case "replay":
		return cmdReplay(rest, out)
	case "shrink":
		return cmdShrink(rest, out)
	case "certify-livelock":
		return cmdCertifyLivelock(rest, out)
	case "stats":
		return cmdStats(rest, out)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(out, usage)
		return nil
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

// parseWithFile parses fs over args accepting one positional trace-file
// argument before or after the flags (Go's flag package stops at the first
// positional, so trailing flags need a second pass).
func parseWithFile(fs *flag.FlagSet, args []string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() == 0 {
		return "", fmt.Errorf("%s: missing trace file argument", fs.Name())
	}
	file := fs.Arg(0)
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return "", err
	}
	if fs.NArg() != 0 {
		return "", fmt.Errorf("%s: unexpected extra arguments %v", fs.Name(), fs.Args())
	}
	return file, nil
}

func cmdRecord(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "altbit", "protocol: "+strings.Join(protocol.Names(), ", "))
		messages  = fs.Int("messages", 8, "messages to deliver")
		seed      = fs.Int64("seed", 1, "channel-behaviour seed")
		delay     = fs.Float64("delay", 0.3, "per-packet delay probability on the data channel")
		ackDelay  = fs.Float64("ack-delay", 0.2, "per-packet delay probability on the ack channel")
		outPath   = fs.String("o", "run.nft", "output trace file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := replay.LookupProtocol(*protoName)
	if err != nil {
		return err
	}

	cfg := func(l *trace.Log) sim.Config {
		return sim.Config{
			Protocol:    p,
			DataPolicy:  channel.Probabilistic(*delay, rand.New(rand.NewSource(*seed))),
			AckPolicy:   channel.Probabilistic(*ackDelay, rand.New(rand.NewSource(*seed+1))),
			RecordTrace: true,
			TraceLog:    l,
		}
	}
	l := trace.NewLog(nil)
	res := sim.NewRunner(cfg(l)).Run(*messages)
	if res.Err != nil {
		return fmt.Errorf("run failed: %w", res.Err)
	}
	// Recording-overhead figure: best of a few timed runs each way, so a
	// cold first iteration does not inflate the ratio. Same seeds, so the
	// recorded and bare runs make identical decisions.
	recorded, bare := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if r := sim.NewRunner(cfg(trace.NewLog(nil))).Run(*messages); r.Err != nil {
			return fmt.Errorf("run failed: %w", r.Err)
		}
		recorded = min(recorded, time.Since(start))
		start = time.Now()
		if r := sim.NewRunner(cfg(nil)).Run(*messages); r.Err != nil {
			return fmt.Errorf("baseline run failed: %w", r.Err)
		}
		bare = min(bare, time.Since(start))
	}

	if err := trace.WriteFile(*outPath, l); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %s: %d messages, %d events -> %s\n",
		*protoName, *messages, l.Len(), *outPath)
	fmt.Fprintf(out, "metrics: %d data packets, %d ack packets, %d headers\n",
		res.Metrics.TotalDataPackets, res.Metrics.TotalAckPackets, res.Metrics.HeadersUsed)
	overhead := float64(recorded) / float64(bare)
	fmt.Fprintf(out, "recording overhead: %v recorded vs %v bare (%.2fx)\n", recorded, bare, overhead)
	return nil
}

func cmdReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "print the replayed event log")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	l, err := trace.ReadFile(file)
	if err != nil {
		return err
	}
	rr, err := replay.Run(l)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %s: protocol %s, %d ops, %d deliveries\n",
		file, rr.Protocol, rr.Ops, len(rr.Delivered))
	if rr.StaleSkipped > 0 || rr.DecisionsExhausted {
		fmt.Fprintf(out, "note: %d infeasible stale deliveries skipped, decisions exhausted: %v\n",
			rr.StaleSkipped, rr.DecisionsExhausted)
	}
	if rr.Verdict != nil {
		fmt.Fprintf(out, "verdict: %v\n", rr.Verdict)
	} else {
		fmt.Fprintf(out, "verdict: safe (PL1, DL1, DL2 hold)\n")
	}
	if rr.DL3 != nil {
		fmt.Fprintf(out, "liveness: %v\n", rr.DL3)
	}
	if *verbose {
		fmt.Fprint(out, rr.Log.String())
	}
	if rr.Divergence != nil {
		return fmt.Errorf("replay diverged from recording at %v", rr.Divergence)
	}
	if rr.HadRecordedVerdict && !rr.VerdictMatches {
		return fmt.Errorf("replayed verdict %v does not match recorded verdict %v",
			rr.Verdict, rr.RecordedVerdict)
	}
	if rr.HadRecordedVerdict {
		fmt.Fprintf(out, "recorded verdict reproduced\n")
	}
	return nil
}

func cmdShrink(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shrink", flag.ContinueOnError)
	outPath := fs.String("o", "min.nft", "output file for the shrunk trace")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	l, err := trace.ReadFile(file)
	if err != nil {
		return err
	}
	sr, err := replay.Shrink(l)
	if err != nil {
		return err
	}
	if err := trace.WriteFile(*outPath, sr.Log); err != nil {
		return err
	}
	fmt.Fprintf(out, "shrunk %s -> %s preserving %s violation (oracle %s)\n",
		file, *outPath, sr.Property, sr.Oracle)
	fmt.Fprintf(out, "events: %d -> %d, ops: %d -> %d (%d replays)\n",
		sr.OriginalEvents, sr.FinalEvents, sr.OriginalOps, sr.FinalOps, sr.Replays)
	return nil
}

func cmdCertifyLivelock(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("certify-livelock", flag.ContinueOnError)
	var (
		outPath = fs.String("o", "livelock.nft", "output file for the pumped certificate")
		pump    = fs.Int("pump", 3, "cycle repetitions in the emitted certificate")
		budget  = fs.Int("budget", replay.DefaultDriveBudget, "closing-drive round budget")
	)
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	l, err := trace.ReadFile(file)
	if err != nil {
		return err
	}
	cert, err := replay.CertifyLivelock(l, replay.CertifyOptions{DriveBudget: *budget, Pump: *pump})
	if err != nil {
		return err
	}
	pumped := cert.Pumped(*pump)
	if err := trace.WriteFile(*outPath, pumped); err != nil {
		return err
	}
	fmt.Fprintf(out, "certified livelock in %s: protocol %s\n", file, cert.Protocol)
	fmt.Fprintf(out, "prefix %d ops, cycle %d ops, pumped x%d -> %s\n",
		cert.PrefixOps, cert.CycleOps, *pump, *outPath)
	fmt.Fprintf(out, "liveness: %v\n", cert.DL3)
	fmt.Fprintf(out, "repeated configuration: %q\n", cert.RepeatedKey)
	return nil
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	md := fs.Bool("md", false, "render as markdown")
	file, err := parseWithFile(fs, args)
	if err != nil {
		return err
	}
	l, err := trace.ReadFile(file)
	if err != nil {
		return err
	}
	s := trace.Collect(l)

	meta := make([]string, 0, len(l.Meta))
	for k, v := range l.Meta {
		meta = append(meta, k+"="+v)
	}
	sort.Strings(meta)
	verdict := "none recorded"
	if s.HasVerdict {
		verdict = "passed"
		if s.Verdict != "" {
			verdict = s.Verdict + " violated"
		}
	}
	tbl := &core.Table{
		ID:      "trace",
		Title:   file,
		Note:    strings.Join(meta, ", ") + "; verdict: " + verdict,
		Columns: []string{"metric", "value"},
	}
	tbl.AddRow("events", s.Events)
	tbl.AddRow("driver ops", s.Ops)
	kinds := make([]trace.Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		tbl.AddRow("  "+k.String(), s.ByKind[k])
	}
	tbl.AddRow("messages submitted", s.Messages)
	tbl.AddRow("messages delivered", s.Deliveries)
	tbl.AddRow("data pkts sent/recv", fmt.Sprintf("%d/%d", s.DataSends, s.DataRecvs))
	tbl.AddRow("ack pkts sent/recv", fmt.Sprintf("%d/%d", s.AckSends, s.AckRecvs))
	tbl.AddRow("stale deliveries", s.Stales)
	tbl.AddRow("distinct headers", s.Headers)
	tbl.AddRow("decisions deliver/delay/drop", fmt.Sprintf("%d/%d/%d",
		s.Decisions[trace.DeliverNow], s.Decisions[trace.Delay], s.Decisions[trace.Drop]))
	if *md {
		return tbl.RenderMarkdown(out)
	}
	return tbl.Render(out)
}
