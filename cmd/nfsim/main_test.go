package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"protocol", "seqnum", "10 delivered", "PL1 ✓"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllRegistryProtocols(t *testing.T) {
	for _, name := range []string{"altbit", "cntlinear", "cntexp", "cntk4", "cheat1"} {
		var buf bytes.Buffer
		if err := run([]string{"-protocol", name, "-n", "3"}, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunProbabilistic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-protocol", "cntlinear", "-n", "4", "-q", "0.3", "-q-ack", "0.2", "-seed", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDelayFirstAndTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-delay-first", "3", "-n", "2", "-trace"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "send_msg") {
		t.Fatalf("trace missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "peak in transit   3") {
		t.Fatalf("in-transit missing:\n%s", buf.String())
	}
}

func TestRunSameMessageConvention(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-same-message", "-n", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-protocol", "nope"},
		{"-q", "1.5"},
		{"-q", "0.3", "-drop-every", "2"}, // conflicting policies
		{"-badflag"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}

func TestRunStalledBudget(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-drop-every", "1", "-budget", "200", "-n", "1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("expected stall error, got %v", err)
	}
}

func TestPerMessage(t *testing.T) {
	if got := perMessage(nil); got != "-" {
		t.Fatalf("perMessage(nil) = %q", got)
	}
	if got := perMessage([]int{3, 1, 2}); !strings.Contains(got, "min 1") || !strings.Contains(got, "max 3") {
		t.Fatalf("perMessage = %q", got)
	}
}
