// Command nfsim runs a data link protocol over a configured non-FIFO
// channel and reports the paper's three efficiency metrics — packets,
// headers, space — together with the trace-checker verdict.
//
// Examples:
//
//	nfsim -protocol seqnum -n 20 -q 0.25 -seed 7
//	nfsim -protocol cntlinear -n 8 -delay-first 64
//	nfsim -protocol cntexp -n 10 -check
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nfsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nfsim", flag.ContinueOnError)
	var (
		protoName  = fs.String("protocol", "seqnum", "protocol: "+strings.Join(protocol.Names(), ", "))
		n          = fs.Int("n", 10, "number of messages to deliver")
		q          = fs.Float64("q", 0, "probabilistic channel delay probability on the data channel")
		qAck       = fs.Float64("q-ack", 0, "probabilistic delay probability on the ack channel")
		dropEvery  = fs.Int("drop-every", 0, "drop every k-th data packet")
		delayFirst = fs.Int("delay-first", 0, "delay the first k data packets (they stay in transit)")
		seed       = fs.Int64("seed", 1, "random seed for probabilistic channels")
		check      = fs.Bool("check", true, "run the DL1/DL2/DL3/PL1 trace checkers")
		showTrace  = fs.Bool("trace", false, "print the full execution trace")
		constant   = fs.Bool("same-message", false, "use the paper's all-messages-identical convention")
		budget     = fs.Int("budget", 1<<20, "liveness step budget per message")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, ok := protocol.Registry()[*protoName]
	if !ok {
		return fmt.Errorf("unknown protocol %q (have: %s)", *protoName, strings.Join(protocol.Names(), ", "))
	}

	dataPolicy, err := buildPolicy(*q, *dropEvery, *delayFirst, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	ackPolicy, err := buildPolicy(*qAck, 0, 0, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Protocol:    p,
		DataPolicy:  dataPolicy,
		AckPolicy:   ackPolicy,
		StepBudget:  *budget,
		RecordTrace: *check || *showTrace,
	}
	if *constant {
		cfg.Payload = func(int) string { return "m" }
	}
	res := sim.NewRunner(cfg).Run(*n)
	if res.Err != nil {
		return fmt.Errorf("run: %w", res.Err)
	}

	fmt.Fprintf(out, "protocol          %s\n", p.Name())
	fmt.Fprintf(out, "messages          %d delivered\n", len(res.Delivered))
	fmt.Fprintf(out, "data packets      %d total (%s per message)\n",
		res.Metrics.TotalDataPackets, perMessage(res.Metrics.DataPacketsPerMessage))
	fmt.Fprintf(out, "ack packets       %d total\n", res.Metrics.TotalAckPackets)
	fmt.Fprintf(out, "distinct headers  %d\n", res.Metrics.HeadersUsed)
	fmt.Fprintf(out, "peak in transit   %d (t→r)\n", res.Metrics.MaxInTransitData)
	fmt.Fprintf(out, "peak state size   %d\n", res.Metrics.MaxStateSize)

	if *check {
		if err := ioa.CheckValid(res.Trace); err != nil {
			fmt.Fprintf(out, "checkers          FAILED: %v\n", err)
			return errors.New("trace check failed")
		}
		fmt.Fprintf(out, "checkers          PL1 ✓  DL1 ✓  DL2 ✓  DL3 ✓\n")
	}
	if *showTrace {
		fmt.Fprintf(out, "\ntrace:\n%s", res.Trace)
	}
	return nil
}

func buildPolicy(q float64, dropEvery, delayFirst int, rng *rand.Rand) (channel.Policy, error) {
	set := 0
	if q > 0 {
		set++
	}
	if dropEvery > 0 {
		set++
	}
	if delayFirst > 0 {
		set++
	}
	if set > 1 {
		return nil, errors.New("choose at most one of -q, -drop-every, -delay-first per channel")
	}
	switch {
	case q > 0:
		if q >= 1 {
			return nil, fmt.Errorf("q = %g must be in [0, 1)", q)
		}
		return channel.Probabilistic(q, rng), nil
	case dropEvery > 0:
		return channel.DropEvery(dropEvery), nil
	case delayFirst > 0:
		return channel.DelayFirst(delayFirst), nil
	default:
		return channel.Reliable(), nil
	}
}

func perMessage(counts []int) string {
	if len(counts) == 0 {
		return "-"
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	return fmt.Sprintf("min %d / med %d / max %d", sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
}
