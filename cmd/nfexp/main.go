// Command nfexp regenerates the reproduction's experiment tables E0–E12
// (see DESIGN.md §4). EXPERIMENTS.md records a full run.
//
//	nfexp                    # quick sweeps (seconds)
//	nfexp -full              # the EXPERIMENTS.md sweeps
//	nfexp -format markdown   # GitHub-flavoured markdown tables
//	nfexp -run E3a,E10       # a subset of the experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nfexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nfexp", flag.ContinueOnError)
	var (
		full   = fs.Bool("full", false, "run the full EXPERIMENTS.md sweeps")
		format = fs.String("format", "text", "output format: text or markdown")
		only   = fs.String("run", "", "comma-separated experiment IDs to run (e.g. E3a,E10); empty = all")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := core.Quick
	if *full {
		scale = core.Full
	}
	var render core.Renderer
	switch *format {
	case "text":
		render = core.Text
	case "markdown":
		render = core.Markdown
	default:
		return fmt.Errorf("unknown format %q (use text or markdown)", *format)
	}
	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	return core.RunSelected(out, scale, render, ids)
}
