package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSubsetText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== E0:") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunSubsetMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E3b", "-format", "markdown"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### E3b:") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "nope"},
		{"-run", "E99"},
		{"-badflag"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}
