// Command nfserve is the soak-test server: it runs many concurrent
// data-link sessions over real loopback UDP sockets, injects seeded chaos
// (drop/hold/duplicate) on the wire, and records every session as a
// replayable NFT trace in a sharded store.
//
// Each session is lock-step replayable: the channel-policy seam does a real
// wire round trip per send, and the chaos outcome is lifted back into the
// recorded decision vocabulary, so a trace captured from a live socket
// replays bit for bit through the pure engine — and shrinks with the
// standard oracle-parameterized shrinker when it violates.
//
// Examples:
//
//	nfserve load -sessions 64 -protocols seqnum,altbit -hold 0.2 -dup 0.1 -store soak
//	nfserve ls -store soak
//	nfserve replay -store soak                 # first violating session
//	nfserve replay -store soak -session s000041 -shrink -o cert.nft
//	nftrace replay cert.nft
//	nfserve serve -store soak &                # run until SIGINT, then drain
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netlink"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
)

const usage = `usage: nfserve <command> [arguments]

commands:
  serve   run sessions until SIGINT/SIGTERM, then drain gracefully
  load    run a fixed session count and report throughput/latency/violations
  replay  re-drive a recorded session from the shard store (optionally shrink
          a violating one to a minimal certificate)
  ls      list the sessions recorded in a shard store

run "nfserve <command> -h" for command flags`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "nfserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing command\n%s", usage)
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "serve":
		return cmdServe(rest, out)
	case "load":
		return cmdLoad(rest, out)
	case "replay":
		return cmdReplay(rest, out)
	case "ls":
		return cmdLs(rest, out)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(out, usage)
		return nil
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

// soakFlags declares the flags shared by serve and load.
type soakFlags struct {
	addr      *string
	protocols *string
	messages  *int
	drop      *float64
	hold      *float64
	dup       *float64
	seed      *int64
	workers   *int
	store     *string
	shards    *int
}

func addSoakFlags(fs *flag.FlagSet) *soakFlags {
	return &soakFlags{
		addr:      fs.String("addr", "127.0.0.1:0", "UDP address for the server socket"),
		protocols: fs.String("protocols", "seqnum,altbit,cntk4", "comma-separated protocols, assigned round-robin"),
		messages:  fs.Int("messages", 8, "messages per session"),
		drop:      fs.Float64("drop", 0, "per-datagram drop probability"),
		hold:      fs.Float64("hold", 0, "per-datagram hold (reorder/delay) probability"),
		dup:       fs.Float64("dup", 0, "per-datagram duplicate probability"),
		seed:      fs.Int64("seed", 1, "root seed (per-session seeds are split from it)"),
		workers:   fs.Int("workers", 16, "concurrently running sessions"),
		store:     fs.String("store", "", "shard-store directory for recorded traces (empty: don't record)"),
		shards:    fs.Int("shards", 8, "shard files in the store"),
	}
}

func (sf *soakFlags) config() (netlink.SoakConfig, error) {
	var ps []protocol.Protocol
	for _, name := range strings.Split(*sf.protocols, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, err := replay.LookupProtocol(name)
		if err != nil {
			return netlink.SoakConfig{}, err
		}
		ps = append(ps, p)
	}
	return netlink.SoakConfig{
		Protocols: ps,
		Messages:  *sf.messages,
		Chaos:     netlink.ChaosConfig{DropProb: *sf.drop, HoldProb: *sf.hold, DupProb: *sf.dup},
		Seed:      *sf.seed,
		Workers:   *sf.workers,
	}, nil
}

// runSoak opens the server and optional store, runs the soak, and closes the
// store (writing the manifest) before reporting.
func runSoak(sf *soakFlags, cfg netlink.SoakConfig, out io.Writer) (*netlink.SoakReport, error) {
	sv, err := netlink.NewServer(*sf.addr)
	if err != nil {
		return nil, err
	}
	defer sv.Close()
	fmt.Fprintf(out, "serving on %s\n", sv.Addr())

	if *sf.store != "" {
		store, err := trace.NewShardStore(*sf.store, *sf.shards)
		if err != nil {
			return nil, err
		}
		cfg.Store = store
		defer func() {
			if cerr := store.Close(); cerr != nil {
				fmt.Fprintf(out, "store close: %v\n", cerr)
			}
		}()
	}
	return sv.RunSoak(cfg)
}

func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	sf := addSoakFlags(fs)
	max := fs.Int("max", 0, "stop after this many sessions (0: run until signal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := sf.config()
	if err != nil {
		return err
	}
	cfg.Sessions = *max

	// Graceful drain: the first SIGINT/SIGTERM stops admissions; in-flight
	// sessions finish and are recorded before the manifest is written.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		fmt.Fprintln(out, "draining: no new sessions; waiting for in-flight sessions")
		close(stop)
	}()
	cfg.Stop = stop

	rep, err := runSoak(sf, cfg, out)
	if err != nil {
		return err
	}
	return reportSoak(rep, out, false)
}

func cmdLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	sf := addSoakFlags(fs)
	sessions := fs.Int("sessions", 64, "sessions to run")
	md := fs.Bool("md", false, "render tables as markdown (for EXPERIMENTS.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sessions <= 0 {
		return fmt.Errorf("load: -sessions must be positive")
	}
	cfg, err := sf.config()
	if err != nil {
		return err
	}
	cfg.Sessions = *sessions
	rep, err := runSoak(sf, cfg, out)
	if err != nil {
		return err
	}
	return reportSoak(rep, out, *md)
}

// reportSoak renders the aggregate, latency and violation tables.
func reportSoak(rep *netlink.SoakReport, out io.Writer, md bool) error {
	render := func(t *core.Table) error {
		if md {
			return t.RenderMarkdown(out)
		}
		return t.Render(out)
	}

	sum := &core.Table{
		ID:      "soak",
		Title:   "soak run summary",
		Note:    "lock-step sessions over loopback UDP; every recorded trace replays bit for bit",
		Columns: []string{"metric", "value"},
	}
	sum.AddRow("sessions", rep.Sessions)
	sum.AddRow("completed", rep.Completed)
	sum.AddRow("skipped (drain)", rep.Skipped)
	sum.AddRow("recorded", rep.Recorded)
	sum.AddRow("errors", rep.Errors)
	sum.AddRow("safety violations", rep.Violations)
	sum.AddRow("DL3 misses", rep.DL3)
	sum.AddRow("messages", rep.Messages)
	sum.AddRow("deliveries", rep.Deliveries)
	sum.AddRow("elapsed", rep.Elapsed.Round(time.Millisecond).String())
	sum.AddRow("throughput (msg/s)", rep.Throughput)
	if err := render(sum); err != nil {
		return err
	}

	lat := &core.Table{
		ID:      "soak-latency",
		Title:   "per-message submit-to-confirm latency",
		Columns: []string{"quantile", "latency"},
	}
	lat.AddRow("p50", rep.LatP50.Round(time.Microsecond).String())
	lat.AddRow("p95", rep.LatP95.Round(time.Microsecond).String())
	lat.AddRow("max", rep.LatMax.Round(time.Microsecond).String())
	if err := render(lat); err != nil {
		return err
	}

	var bad []netlink.SessionOutcome
	for _, o := range rep.Outcomes {
		if o.Verdict != "" || o.Err != "" {
			bad = append(bad, o)
		}
	}
	if len(bad) == 0 {
		fmt.Fprintln(out, "no violations, no errors")
		return nil
	}
	viol := &core.Table{
		ID:      "soak-violations",
		Title:   "violating and failed sessions",
		Note:    "reproduce with: nfserve replay -store <dir> -session <session> -shrink",
		Columns: []string{"session", "protocol", "seed", "verdict", "error"},
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].ID < bad[j].ID })
	for _, o := range bad {
		viol.AddRow(o.Session, o.Protocol, o.Seed, o.Verdict, o.Err)
	}
	return render(viol)
}

func cmdLs(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ls", flag.ContinueOnError)
	store := fs.String("store", "", "shard-store directory")
	violOnly := fs.Bool("violations", false, "list only violating sessions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("ls: -store is required")
	}
	m, err := trace.ReadManifestFile(*store)
	if err != nil {
		return err
	}
	entries := m.Entries
	if *violOnly {
		entries = m.Violations()
	}
	tbl := &core.Table{
		ID:      "soak-store",
		Title:   *store,
		Note:    fmt.Sprintf("%d sessions in %d shards", len(m.Entries), len(m.Shards)),
		Columns: []string{"session", "shard", "protocol", "events", "msgs", "delivered", "verdict"},
	}
	for _, e := range entries {
		tbl.AddRow(e.Session, m.Shards[e.Shard], e.Protocol, e.Events, e.Messages, e.Deliveries, e.Verdict)
	}
	return tbl.Render(out)
}

func cmdReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		store   = fs.String("store", "", "shard-store directory")
		session = fs.String("session", "", "session to replay (empty: first violating session)")
		shrink  = fs.Bool("shrink", false, "shrink a violating session to a minimal certificate")
		outPath = fs.String("o", "", "write the (shrunk) trace to this NFT file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("replay: -store is required")
	}
	m, err := trace.ReadManifestFile(*store)
	if err != nil {
		return err
	}
	name := *session
	if name == "" {
		v := m.Violations()
		if len(v) == 0 {
			return fmt.Errorf("replay: no violating sessions in %s (name one with -session)", *store)
		}
		name = v[0].Session
		fmt.Fprintf(out, "replaying first violating session %s\n", name)
	}
	l, err := trace.ReadShardLog(*store, m, name)
	if err != nil {
		return err
	}

	rr, err := replay.Run(l)
	if err != nil {
		return err
	}
	if rr.Divergence != nil {
		return fmt.Errorf("replay: session %s diverged: %v", name, rr.Divergence)
	}
	verdict := "clean"
	if rr.Verdict != nil {
		verdict = rr.Verdict.Property + " violated"
	}
	fmt.Fprintf(out, "session %s: %d events replayed bit for bit, verdict %s (matches recording: %v)\n",
		name, l.Len(), verdict, rr.VerdictMatches)
	if !rr.VerdictMatches {
		return fmt.Errorf("replay: session %s verdict mismatch", name)
	}

	final := l
	if *shrink {
		sr, err := replay.Shrink(l)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "shrunk to minimal %s certificate (oracle %s): events %d -> %d, ops %d -> %d (%d replays)\n",
			sr.Property, sr.Oracle, sr.OriginalEvents, sr.FinalEvents, sr.OriginalOps, sr.FinalOps, sr.Replays)
		final = sr.Log
	}
	if *outPath != "" {
		if err := trace.WriteFile(*outPath, final); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
