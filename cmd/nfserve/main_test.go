package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/replay"
	"repro/internal/trace"
)

// TestLoadReplayShrink drives the whole production loop through the CLI:
// a load run whose chaos provokes DL1 violations on live sockets, ls over
// the resulting store, and replay-from-production shrinking the first
// violating session to a certificate that the replay engine re-confirms.
func TestLoadReplayShrink(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "soak")
	var out bytes.Buffer
	err := run([]string{"load",
		"-sessions", "12", "-protocols", "altbit",
		"-hold", "0.3", "-dup", "0.2", "-seed", "1",
		"-store", store, "-workers", "4",
	}, &out)
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out.String())
	}
	for _, want := range []string{"recorded            12", "errors              0", "DL1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("load output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"ls", "-store", store, "-violations"}, &out); err != nil {
		t.Fatalf("ls: %v", err)
	}
	if !strings.Contains(out.String(), "DL1") {
		t.Errorf("ls -violations lists no DL1 session:\n%s", out.String())
	}

	cert := filepath.Join(dir, "cert.nft")
	out.Reset()
	if err := run([]string{"replay", "-store", store, "-shrink", "-o", cert}, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replayed bit for bit") ||
		!strings.Contains(out.String(), "minimal DL1 certificate") {
		t.Errorf("replay output:\n%s", out.String())
	}

	l, err := trace.ReadFile(cert)
	if err != nil {
		t.Fatalf("certificate unreadable: %v", err)
	}
	rr, err := replay.Run(l)
	if err != nil {
		t.Fatalf("certificate replay: %v", err)
	}
	if rr.Verdict == nil || rr.Verdict.Property != "DL1" || rr.Divergence != nil {
		t.Fatalf("certificate does not reproduce the DL1: verdict=%v divergence=%v",
			rr.Verdict, rr.Divergence)
	}
}

// TestServeMax pins serve's bounded mode: -max runs that many sessions and
// returns without needing a signal.
func TestServeMax(t *testing.T) {
	store := filepath.Join(t.TempDir(), "soak")
	var out bytes.Buffer
	err := run([]string{"serve",
		"-max", "4", "-protocols", "seqnum", "-seed", "3",
		"-store", store, "-workers", "2",
	}, &out)
	if err != nil {
		t.Fatalf("serve -max: %v\n%s", err, out.String())
	}
	m, err := trace.ReadManifestFile(store)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(m.Entries) != 4 {
		t.Fatalf("serve -max 4 recorded %d sessions", len(m.Entries))
	}
}

// TestCLIErrors pins the command error paths.
func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"nosuch"},
		{"load", "-sessions", "0"},
		{"ls"},
		{"replay"},
		{"replay", "-store", t.TempDir()}, // no manifest
		{"load", "-protocols", "nosuchproto", "-sessions", "1"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
