// Command nfbound measures a protocol's boundness curves (Mansour &
// Schieber, Definitions 5 and 6): the packets needed to close a semi-valid
// execution, as a function of messages delivered (M_f) or of packets in
// transit (P_f).
//
// Examples:
//
//	nfbound -protocol cntexp -curve mf -n 10
//	nfbound -protocol cntlinear -curve pf -levels 0,4,16,64,256
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bound"
	"repro/internal/protocol"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nfbound:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nfbound", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "cntlinear", "protocol: "+strings.Join(protocol.Names(), ", "))
		curve     = fs.String("curve", "mf", "curve: mf (Definition 5) or pf (Definition 6)")
		n         = fs.Int("n", 10, "mf: number of messages to sweep")
		levels    = fs.String("levels", "0,4,16,64", "pf: comma-separated in-transit levels")
		budget    = fs.Int("budget", 1<<20, "closing-extension step budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, ok := protocol.Registry()[*protoName]
	if !ok {
		return fmt.Errorf("unknown protocol %q (have: %s)", *protoName, strings.Join(protocol.Names(), ", "))
	}

	switch *curve {
	case "mf":
		samples, err := bound.MeasureMf(p, *n, *budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "M_f-boundness of %s (Definition 5): closing cost after i messages\n", p.Name())
		fmt.Fprintf(out, "%12s  %14s\n", "messages i", "sp^t→r(β)")
		for _, s := range samples {
			fmt.Fprintf(out, "%12d  %14d\n", s.MessagesDelivered, s.Cost)
		}
		return nil
	case "pf":
		ls, err := parseLevels(*levels)
		if err != nil {
			return err
		}
		samples, err := bound.MeasurePf(p, ls, *budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "P_f-boundness of %s (Definition 6): closing cost vs packets in transit\n", p.Name())
		fmt.Fprintf(out, "%12s  %14s\n", "in transit", "sp^t→r(β)")
		for _, s := range samples {
			fmt.Fprintf(out, "%12d  %14d\n", s.InTransit, s.Cost)
		}
		return nil
	default:
		return fmt.Errorf("unknown curve %q (use mf or pf)", *curve)
	}
}

func parseLevels(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad level %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no levels given")
	}
	return out, nil
}
