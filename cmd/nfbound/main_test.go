package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestMfCurve(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "cntexp", "-curve", "mf", "-n", "6"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "M_f-boundness") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestPfCurve(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "cntlinear", "-curve", "pf", "-levels", "0, 4,16"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "P_f-boundness") || !strings.Contains(out, "17") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{"-protocol", "nope"},
		{"-curve", "xx"},
		{"-curve", "pf", "-levels", "a,b"},
		{"-curve", "pf", "-levels", ""},
		{"-badflag"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}

func TestParseLevels(t *testing.T) {
	ls, err := parseLevels(" 1, 2 ,3,")
	if err != nil || len(ls) != 3 || ls[2] != 3 {
		t.Fatalf("parseLevels = %v, %v", ls, err)
	}
	if _, err := parseLevels("-1"); err == nil {
		t.Fatal("negative level accepted")
	}
}
