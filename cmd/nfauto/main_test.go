package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAltbitWitness(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-system", "altbit"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VIOLATION REACHABLE", "recv(d0)", "recheck"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAltbitFIFOVerifiedSafe(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-system", "altbit", "-fifo"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VERIFIED SAFE") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestSeqnumVerifiedSafe(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-system", "seqnum", "-messages", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VERIFIED SAFE") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestUndecidedOnTinyBudget(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-system", "seqnum", "-max-states", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UNDECIDED") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{{"-system", "nope"}, {"-badflag"}} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}
