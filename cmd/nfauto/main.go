// Command nfauto decides safety of the Section-2 system in the [LT87] I/O
// automaton formalism: it composes user ∥ A^t ∥ channels ∥ A^r ∥ DL-monitor
// for the chosen protocol, exhausts the reachable states, and prints either
// the shortest action witness of a DL violation or a verified-safe report.
//
// Examples:
//
//	nfauto -system altbit                 # violation witness
//	nfauto -system altbit -fifo           # verified safe
//	nfauto -system seqnum -messages 3     # verified safe (Thm 3.1's escape)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ioa"
	"repro/internal/ioauto"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nfauto:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nfauto", flag.ContinueOnError)
	var (
		system    = fs.String("system", "altbit", "system: altbit or seqnum")
		messages  = fs.Int("messages", 2, "messages the user automaton submits")
		capacity  = fs.Int("capacity", 2, "channel automaton capacity")
		fifo      = fs.Bool("fifo", false, "use the order-preserving channel automata")
		maxStates = fs.Int("max-states", 1<<22, "state budget")
		recheck   = fs.Bool("recheck", true, "re-check a found witness with the trace checkers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind := ioauto.NonFIFOKind
	disc := "non-FIFO"
	if *fifo {
		kind = ioauto.FIFOKind
		disc = "FIFO"
	}

	var (
		sys ioauto.Automaton
		err error
	)
	switch *system {
	case "altbit":
		sys, err = ioauto.NewAltBitSystem(kind, *messages, *capacity)
	case "seqnum":
		sys, err = ioauto.NewSeqNumSystem(kind, *messages, *capacity)
	default:
		return fmt.Errorf("unknown system %q (use altbit or seqnum)", *system)
	}
	if err != nil {
		return err
	}

	res, err := ioauto.Reach(sys, ioauto.Violated, *maxStates)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "system      %s ∥ %s channels (capacity %d), %d messages\n",
		*system, disc, *capacity, *messages)
	fmt.Fprintf(out, "states      %d\n", res.States)

	if res.Found == nil {
		if res.Exhausted {
			fmt.Fprintf(out, "verdict     VERIFIED SAFE — reachable space exhausted, no DL violation\n")
		} else {
			fmt.Fprintf(out, "verdict     UNDECIDED — state budget reached first\n")
		}
		return nil
	}
	fmt.Fprintf(out, "verdict     VIOLATION REACHABLE — shortest witness (%d actions):\n", len(res.Found))
	for i, a := range res.Found {
		fmt.Fprintf(out, "  %2d  %s\n", i, a)
	}
	if *recheck {
		tr, err := ioauto.WitnessTrace(res.Found)
		if err != nil {
			return err
		}
		cerr := ioa.CheckSafety(tr)
		if cerr == nil {
			return fmt.Errorf("internal error: witness passes the trace checkers")
		}
		fmt.Fprintf(out, "recheck     trace checkers agree: %v\n", cerr)
	}
	return nil
}
