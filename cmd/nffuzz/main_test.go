package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestFuzzAltbitFindsDL1(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "altbit", "-workers", "1", "-budget", "30000",
		"-seed", "1", "-o", dir, "-q",
	}, &buf)
	if err != nil {
		t.Fatalf("nffuzz: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "violation DL1") {
		t.Fatalf("expected a DL1 violation:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "zero divergence") {
		t.Fatalf("expected the certificate re-check:\n%s", buf.String())
	}
	l, err := trace.ReadFile(filepath.Join(dir, "altbit-DL1.nft"))
	if err != nil {
		t.Fatalf("reading certificate: %v", err)
	}
	if v, ok := l.Verdict(); !ok || v == nil || v.Property != "DL1" {
		t.Fatalf("certificate verdict = %v, %v; want DL1", v, ok)
	}
}

func TestFuzzCheat1FindsDL1(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "cheat1", "-workers", "1", "-budget", "60000",
		"-seed", "1", "-o", dir, "-q",
	}, &buf)
	if err != nil {
		t.Fatalf("nffuzz: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "violation DL1") {
		t.Fatalf("expected a DL1 violation:\n%s", buf.String())
	}
	if _, err := trace.ReadFile(filepath.Join(dir, "cheat1-DL1.nft")); err != nil {
		t.Fatalf("reading certificate: %v", err)
	}
}

// TestFuzzLivelockCertifies is the CLI face of the liveness acceptance
// criterion: fuzzing the livelock protocol must produce a certified DL3
// finding whose pumped certificate passes the built-in -check replay.
func TestFuzzLivelockCertifies(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "livelock", "-workers", "1", "-budget", "2000",
		"-seed", "1", "-o", dir, "-q",
	}, &buf)
	if err != nil {
		t.Fatalf("nffuzz: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "violation DL3") {
		t.Fatalf("expected a DL3 livelock violation:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "livelock cycle pumped x3") {
		t.Fatalf("expected the cycle note:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "zero divergence") {
		t.Fatalf("expected the certificate re-check:\n%s", buf.String())
	}
	l, err := trace.ReadFile(filepath.Join(dir, "livelock-DL3.nft"))
	if err != nil {
		t.Fatalf("reading certificate: %v", err)
	}
	if v, ok := l.Verdict(); !ok || v == nil || v.Property != "DL3" {
		t.Fatalf("certificate verdict = %v, %v; want DL3", v, ok)
	}
}

func TestFuzzSoundProtocolFindsNothing(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-protocol", "cntlinear", "-workers", "1", "-budget", "2000",
		"-seed", "4", "-o", t.TempDir(), "-q",
	}, &buf)
	if err != nil {
		t.Fatalf("nffuzz: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no violations found") {
		t.Fatalf("expected a clean campaign:\n%s", buf.String())
	}
}

func TestFuzzUnknownProtocol(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "nope"}, &buf); err == nil {
		t.Fatal("expected an error for an unknown protocol")
	}
}
