// Command nffuzz is the coverage-guided protocol/channel fuzzer: it mutates
// channel decision streams and driver schedules, keeps inputs that reach new
// joint protocol states, and promotes inputs whose execution violates a
// correctness property into shrunk, replayable NFT certificates.
//
// Examples:
//
//	nffuzz -protocol altbit -budget 30000 -o certs
//	nftrace replay certs/altbit-DL1.nft
//	nffuzz -protocol cheat1 -workers 8 -budget 200000 -corpus corpus.cheat1 -o certs
//	nffuzz -protocol cntlinear -budget 100000        # sound: expect no findings
//
// A campaign with -corpus resumes from (and keeps extending) the persisted
// corpus directory; re-running after a crash or budget bump loses nothing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/fuzz"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/stabilize"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "nffuzz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nffuzz", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "altbit", "protocol under test: "+strings.Join(protocol.Names(), ", ")+", livelock, cntnobind, cheat<d>, cntk<k>, swindow-s<S>-w<W>, gbn-s<S>-w<W> (adapted transport; -unbounded-w<W> for S=0)")
		workers   = fs.Int("workers", runtime.NumCPU(), "parallel executors; 1 = fully deterministic serial mode")
		budget    = fs.Int64("budget", 50000, "total input executions")
		seed      = fs.Int64("seed", 1, "campaign root seed (per-worker seeds are split from it)")
		corpusDir = fs.String("corpus", "", "corpus directory to resume from and persist to (optional)")
		outDir    = fs.String("o", "certs", "directory for shrunk violation certificates")
		keepGoing = fs.Bool("keep-going", false, "keep fuzzing after the first promoted violation")
		corrupt   = fs.Bool("corrupt", false, "also fuzz the initial configuration: candidates may start corrupted (per the protocol's declared corruption space) and are judged against the corruption's amnesty")
		quiet     = fs.Bool("q", false, "suppress the periodic stats line")
		statsSec  = fs.Duration("stats-every", time.Second, "stats line interval")
		check     = fs.Bool("check", true, "replay each certificate after the campaign and verify its verdict")
		strCore   = fs.Bool("stringcore", false, "execute through the legacy string-keyed executor (reference implementation; campaign trajectory is identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	proto, err := replay.LookupProtocol(*protoName)
	if err != nil {
		return err
	}

	cfg := fuzz.Config{
		Protocol:        proto,
		Workers:         *workers,
		Budget:          *budget,
		Seed:            *seed,
		CorpusDir:       *corpusDir,
		OutDir:          *outDir,
		StopOnViolation: !*keepGoing,
		Corrupt:         *corrupt,
		StringCore:      *strCore,
		StatsEvery:      *statsSec,
	}
	if !*quiet {
		cfg.Stats = out
	}
	mode := ""
	if cfg.Corrupt {
		mode = ", corrupted starts"
	}
	fmt.Fprintf(out, "fuzzing %s: %d workers, budget %d, seed %d%s\n",
		proto.Name(), cfg.Workers, cfg.Budget, cfg.Seed, mode)
	res, err := fuzz.Run(cfg)
	if err != nil {
		return err
	}

	rate := float64(res.Execs) / res.Elapsed.Seconds()
	fmt.Fprintf(out, "done: %d execs in %v (%.0f/sec), corpus %d, coverage %d, dl3-misses %d\n",
		res.Execs, res.Elapsed.Round(time.Millisecond), rate, res.CorpusSize, res.CoveragePoints, res.DL3Misses)
	if len(res.Violations) == 0 {
		fmt.Fprintf(out, "no violations found\n")
		return nil
	}
	for _, v := range res.Violations {
		if v.Corruption != "" {
			fmt.Fprintf(out, "violation %s: found at exec %d, %d ops, corrupted start %s", v.Property, v.FoundAtExec, v.Ops, v.Corruption)
		} else {
			fmt.Fprintf(out, "violation %s: found at exec %d, %d ops after shrink", v.Property, v.FoundAtExec, v.Ops)
		}
		if v.CycleOps > 0 {
			fmt.Fprintf(out, ", %d-op livelock cycle pumped x3", v.CycleOps)
		}
		if v.Path != "" {
			fmt.Fprintf(out, " -> %s", v.Path)
		}
		fmt.Fprintln(out)
		if *check && v.Cert != nil {
			rr, err := replay.Run(v.Cert)
			if err != nil {
				return fmt.Errorf("re-checking %s certificate: %w", v.Property, err)
			}
			if v.Corruption != "" {
				// A corrupted-start certificate is an over-amnesty claim: the
				// replay must be divergence-free and the amnesty judge — re-run
				// from scratch with the budget recorded in the metadata — must
				// still find the same property over budget.
				if rr.Divergence != nil {
					return fmt.Errorf("corrupted-start certificate replay diverged: %v", rr.Divergence)
				}
				amnesty, err := strconv.Atoi(v.Cert.Meta[stabilize.MetaAmnesty])
				if err != nil {
					return fmt.Errorf("corrupted-start certificate lacks a usable %s metadata key: %w", stabilize.MetaAmnesty, err)
				}
				j := stabilize.JudgeTrace(rr.Trace, amnesty)
				if j.Violation == nil || j.Violation.Property != v.Property {
					return fmt.Errorf("corrupted-start certificate re-check mismatch: judged %v, want %s over amnesty %d", j.Violation, v.Property, amnesty)
				}
				fmt.Fprintf(out, "  re-checked: replay reproduces %s over amnesty %d with zero divergence\n", v.Property, amnesty)
				continue
			}
			if v.Property == "DL3" {
				// A livelock certificate is a liveness claim: the replay must
				// be safety-clean and still strand a message.
				if rr.Verdict != nil {
					return fmt.Errorf("livelock certificate re-check violates %s", rr.Verdict.Property)
				}
				if rr.DL3 == nil {
					return fmt.Errorf("livelock certificate re-check delivered everything")
				}
			} else if rr.Verdict == nil || rr.Verdict.Property != v.Property {
				return fmt.Errorf("certificate re-check mismatch: replayed verdict %v, want %s", rr.Verdict, v.Property)
			}
			if rr.Divergence != nil {
				return fmt.Errorf("certificate replay diverged: %v", rr.Divergence)
			}
			fmt.Fprintf(out, "  re-checked: replay reproduces %s with zero divergence\n", v.Property)
		}
	}
	return nil
}
