// Command nfbench measures the throughput of the repo's two exploration
// engines and writes the measurements as a JSON artifact:
//
//   - verify: bounded configuration-space exploration (internal/verify),
//     reported as explored configurations per second. One exhaustive proof
//     (seqnum at the default bounds) and one budget-bounded run (cntexp,
//     whose counters make the space effectively unbounded) bracket the
//     small-graph and big-graph regimes.
//   - fuzz: coverage-guided schedule fuzzing (internal/fuzz), reported as
//     input executions per second on the altbit specimen.
//   - analyze: the facts-enabled lint suite over the module's own source
//     (the CI vet workload), reported as packages analyzed per second.
//   - netlink: the soak server (internal/netlink) running concurrent
//     lock-step sessions over real loopback UDP with chaos injection,
//     reported as delivered messages per second — the one row whose work
//     crosses the kernel instead of staying in the model.
//
// Both engines carry their legacy string-keyed reference implementation
// behind a flag, and the artifact records A/B rows on identical work —
// verify/cntexp vs verify/cntexp-stringkeys, fuzzexec/altbit-interned vs
// fuzzexec/altbit-string — so the interning speedup ratios are read
// directly off one run.
//
// The engines themselves are clock-free (the wallclock lint bans ambient
// time reads in internal/verify and internal/fuzz); all timing lives here
// in the command, wrapped around deterministic runs. The workloads are
// fixed-size and seeded, so the work per run is identical across machines —
// only the elapsed time varies. Checked-in BENCH_*.json files record a
// reference machine; regenerate with:
//
//	go run ./cmd/nfbench -label <machine> -o BENCH_<machine>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/analyze"
	"repro/internal/fuzz"
	"repro/internal/netlink"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Benchmark is one measured workload.
type Benchmark struct {
	// Name identifies the engine and workload, e.g. "verify/cntexp".
	Name string `json:"name"`
	// Metric names what Rate counts per second.
	Metric string `json:"metric"`
	// Work is the total metric count the workload performed.
	Work int64 `json:"work"`
	// ElapsedMS is the wall-clock time in milliseconds.
	ElapsedMS float64 `json:"elapsedMs"`
	// Rate is Work divided by the elapsed seconds.
	Rate float64 `json:"rate"`
	// Detail summarizes the workload outcome (verdict, violations).
	Detail string `json:"detail"`
}

// Artifact is the written JSON document.
type Artifact struct {
	Label      string      `json:"label"`
	GoVersion  string      `json:"goVersion"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("nfbench", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		label       = fs.String("label", "dev", "machine/configuration label recorded in the artifact")
		outPath     = fs.String("o", "", "write the JSON artifact to this path (default: stdout only)")
		verifyBudgt  = fs.Int("verifybudget", 1<<15, "state budget for the budget-bounded verify workload")
		fuzzBudget   = fs.Int64("fuzzbudget", 20000, "execution budget for the fuzz workload")
		soakSessions = fs.Int("soaksessions", 256, "session count for the soak workload")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	art := &Artifact{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	steps := []func() (Benchmark, error){
		func() (Benchmark, error) { return benchVerify("seqnum", "verify/seqnum", verify.Config{}) },
		func() (Benchmark, error) {
			return benchVerify("cntexp", "verify/cntexp", verify.Config{MaxStates: *verifyBudgt})
		},
		// The same budget-bounded workload through the legacy string-keyed
		// visited set: the cntexp/cntexp-stringkeys ratio is the verifier's
		// interning win, measured on identical work (the two stores explore
		// the same configurations and agree on the space hash).
		func() (Benchmark, error) {
			return benchVerify("cntexp", "verify/cntexp-stringkeys",
				verify.Config{MaxStates: *verifyBudgt, StringKeys: true})
		},
		// The stabilize workload is the 81-root corrupted-start proof of
		// stabdl2 — the multi-root regime, dominated by the widened
		// amnesty-carrying configuration keys.
		func() (Benchmark, error) {
			return benchVerify("stabdl2", "verify/stabdl2-stabilize", verify.Config{Stabilize: true})
		},
		func() (Benchmark, error) { return benchFuzz("altbit", *fuzzBudget) },
		// Pure execution, no campaign machinery: the same fixed corpus
		// replayed through the string-keyed reference executor and the
		// interned core. The interned/string rate ratio is the executor's
		// interning win.
		func() (Benchmark, error) { return benchExec("altbit", *fuzzBudget, false) },
		func() (Benchmark, error) { return benchExec("altbit", *fuzzBudget, true) },
		// The facts-enabled lint suite over the whole module — the same work
		// the CI vet step performs, measured as packages analyzed per second
		// (load + type-check + seven analyzers + in-memory facts channel).
		benchLint,
		// The soak server: concurrent lock-step sessions over real loopback
		// UDP with chaos injection, reported as delivered messages per
		// second. Unlike the engine rows this one crosses the kernel on
		// every send, so it measures the wire round trip, not the model.
		func() (Benchmark, error) { return benchSoak(*soakSessions) },
	}
	for _, step := range steps {
		b, err := step()
		if err != nil {
			fmt.Fprintln(errw, "nfbench:", err)
			return 1
		}
		fmt.Fprintf(out, "%-16s %12d %s in %8.1fms  (%10.0f/sec)  %s\n",
			b.Name, b.Work, b.Metric, b.ElapsedMS, b.Rate, b.Detail)
		art.Benchmarks = append(art.Benchmarks, b)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(errw, "nfbench:", err)
		return 1
	}
	data = append(data, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(errw, "nfbench:", err)
			return 1
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	} else {
		out.Write(data)
	}
	return 0
}

// benchVerify times one bounded-exploration run and reports explored
// configurations per second. display distinguishes workloads that share a
// protocol but differ in Config (e.g. the stabilize-mode run).
func benchVerify(name, display string, cfg verify.Config) (Benchmark, error) {
	p, err := replay.LookupProtocol(name)
	if err != nil {
		return Benchmark{}, err
	}
	start := time.Now()
	rep, err := verify.Run(p, cfg)
	elapsed := time.Since(start)
	if err != nil {
		return Benchmark{}, fmt.Errorf("verify %s: %w", name, err)
	}
	return Benchmark{
		Name:      display,
		Metric:    "configs",
		Work:      int64(rep.States),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Rate:      rate(int64(rep.States), elapsed),
		Detail:    fmt.Sprintf("verdict=%s edges=%d", rep.Verdict, rep.Edges),
	}, nil
}

// benchFuzz times one seeded single-worker fuzz campaign and reports input
// executions per second.
func benchFuzz(name string, budget int64) (Benchmark, error) {
	p, err := replay.LookupProtocol(name)
	if err != nil {
		return Benchmark{}, err
	}
	start := time.Now()
	res, err := fuzz.Run(fuzz.Config{Protocol: p, Budget: budget, Seed: 1, Workers: 1})
	elapsed := time.Since(start)
	if err != nil {
		return Benchmark{}, fmt.Errorf("fuzz %s: %w", name, err)
	}
	return Benchmark{
		Name:      "fuzz/" + name,
		Metric:    "execs",
		Work:      res.Execs,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Rate:      rate(res.Execs, elapsed),
		Detail:    fmt.Sprintf("corpus=%d violations=%d", res.CorpusSize, len(res.Violations)),
	}, nil
}

// benchExec times pure input execution — no mutation, scheduling or
// coverage merging — over a fixed deterministic corpus: the canonical seeds
// grown to 64 schedules by seeded mutation, the same construction
// internal/fuzz's BenchmarkExecute uses. Each corpus input is executed
// round-robin until budget executions have run, through either the
// string-keyed reference executor (interned=false) or the pooled interned
// core (interned=true).
func benchExec(name string, budget int64, interned bool) (Benchmark, error) {
	p, err := replay.LookupProtocol(name)
	if err != nil {
		return Benchmark{}, err
	}
	//nfvet:allow globalrand (the corpus must be identical on every machine: the artifact compares rates on fixed work)
	rng := rand.New(rand.NewSource(1))
	corpus := fuzz.SeedInputs()
	for len(corpus) < 64 {
		corpus = append(corpus, fuzz.Mutate(corpus[rng.Intn(len(corpus))], rng))
	}
	display := "fuzzexec/" + name + "-string"
	core := fuzz.NewCore(p)
	start := time.Now()
	for i := int64(0); i < budget; i++ {
		in := corpus[i%int64(len(corpus))]
		if interned {
			core.Execute(in, false)
		} else {
			fuzz.Execute(p, in, false)
		}
	}
	elapsed := time.Since(start)
	if interned {
		display = "fuzzexec/" + name + "-interned"
	}
	return Benchmark{
		Name:      display,
		Metric:    "execs",
		Work:      budget,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Rate:      rate(budget, elapsed),
		Detail:    fmt.Sprintf("corpus=%d", len(corpus)),
	}, nil
}

// benchLint times the in-process analysis pipeline end to end: resolve and
// type-check every module package, then run the full analyzer suite in
// dependency order with the facts channel on. The workload is the module's
// own source, so Work (packages) is fixed for a given tree.
func benchLint() (Benchmark, error) {
	wd, err := os.Getwd()
	if err != nil {
		return Benchmark{}, err
	}
	start := time.Now()
	pkgs, err := analyze.LoadPackages(wd, "./...")
	if err != nil {
		return Benchmark{}, fmt.Errorf("lint: %w", err)
	}
	res := analyze.AnalyzeModule(analyze.Analyzers(), pkgs, true)
	elapsed := time.Since(start)
	return Benchmark{
		Name:      "analyze/lint",
		Metric:    "packages",
		Work:      int64(len(pkgs)),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Rate:      rate(int64(len(pkgs)), elapsed),
		Detail:    fmt.Sprintf("findings=%d allowed=%d", len(res.Diags), len(res.Suppressed)),
	}, nil
}

// benchSoak times a soak run through the real-socket server: sessions
// messages each over loopback UDP under mild chaos, every log recorded into
// a throwaway shard store. Work is delivered messages; Detail carries the
// violation/recording counts (chaos seeds are fixed, so the work is
// identical across machines).
func benchSoak(sessions int) (Benchmark, error) {
	dir, err := os.MkdirTemp("", "nfbench-soak-*")
	if err != nil {
		return Benchmark{}, err
	}
	defer os.RemoveAll(dir)
	store, err := trace.NewShardStore(dir, 8)
	if err != nil {
		return Benchmark{}, err
	}
	sv, err := netlink.NewServer("")
	if err != nil {
		return Benchmark{}, err
	}
	defer sv.Close()
	start := time.Now()
	rep, err := sv.RunSoak(netlink.SoakConfig{
		Protocols: []protocol.Protocol{protocol.NewSeqNum(), protocol.NewAltBit(), protocol.NewCntK(4)},
		Sessions:  sessions,
		Messages:  8,
		Chaos:     netlink.ChaosConfig{DropProb: 0.05, HoldProb: 0.2, DupProb: 0.1},
		Seed:      1,
		Workers:   16,
		Store:     store,
	})
	elapsed := time.Since(start)
	if err != nil {
		return Benchmark{}, fmt.Errorf("soak: %w", err)
	}
	if cerr := store.Close(); cerr != nil {
		return Benchmark{}, fmt.Errorf("soak store: %w", cerr)
	}
	if rep.Errors > 0 || rep.Recorded != rep.Sessions {
		return Benchmark{}, fmt.Errorf("soak: %d errors, %d/%d recorded", rep.Errors, rep.Recorded, rep.Sessions)
	}
	return Benchmark{
		Name:      "netlink/soak",
		Metric:    "msgs",
		Work:      int64(rep.Deliveries),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Rate:      rate(int64(rep.Deliveries), elapsed),
		Detail: fmt.Sprintf("sessions=%d violations=%d dl3=%d recorded=%d",
			rep.Sessions, rep.Violations, rep.DL3, rep.Recorded),
	}, nil
}

func rate(work int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(work) / elapsed.Seconds()
}
