package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWritesArtifact drives the command with tiny budgets and checks the
// JSON artifact's shape: all nine workloads present (including the
// interned-vs-string A/B rows, the lint-throughput row and the real-socket
// soak row), positive work and rates, and the label threaded through.
func TestRunWritesArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errw bytes.Buffer
	code := run([]string{
		"-label", "unit", "-o", path,
		"-verifybudget", "512", "-fuzzbudget", "200", "-soaksessions", "16",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("nfbench exited %d: %s", code, errw.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Label != "unit" || art.GoVersion == "" {
		t.Errorf("artifact header = %+v", art)
	}
	want := []string{
		"verify/seqnum", "verify/cntexp", "verify/cntexp-stringkeys",
		"verify/stabdl2-stabilize", "fuzz/altbit",
		"fuzzexec/altbit-string", "fuzzexec/altbit-interned",
		"analyze/lint", "netlink/soak",
	}
	if len(art.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmarks, want %d", len(art.Benchmarks), len(want))
	}
	for i, b := range art.Benchmarks {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, want[i])
		}
		if b.Work <= 0 || b.Rate <= 0 {
			t.Errorf("%s: work=%d rate=%f, want positive", b.Name, b.Work, b.Rate)
		}
	}
	// seqnum is exhaustively proved even at tiny budgets elsewhere; its
	// detail records the verdict the artifact is meant to witness.
	if !strings.Contains(art.Benchmarks[0].Detail, "verdict=PROVED") {
		t.Errorf("verify/seqnum detail = %q, want a PROVED verdict", art.Benchmarks[0].Detail)
	}
}

// TestRunBadFlag pins the CLI error path.
func TestRunBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-nosuch"}, &out, &errw); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
