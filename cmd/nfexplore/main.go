// Command nfexplore runs the bounded explicit-state model checker against a
// protocol: every interleaving of protocol steps and channel behaviours
// within the bounds, over the non-FIFO or the lossy-FIFO discipline. It
// prints either a shortest counterexample or a safe-within-bounds report.
//
// Examples:
//
//	nfexplore -protocol altbit
//	nfexplore -protocol altbit -fifo -drop          # safe: reordering is the culprit
//	nfexplore -protocol swindow -seqspace 2 -window 1 -messages 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nfexplore:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nfexplore", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "altbit",
			"protocol: "+strings.Join(protocol.Names(), ", ")+", livelock, cntnobind, swindow")
		seqSpace  = fs.Int("seqspace", 2, "swindow: sequence space size (0 = unbounded)")
		window    = fs.Int("window", 1, "swindow: window size")
		messages  = fs.Int("messages", 0, "messages to submit (default 2)")
		dataSends = fs.Int("data-sends", 0, "cap on data packet sends (default 3×messages)")
		ackSends  = fs.Int("ack-sends", 0, "cap on ack packet sends (default 3×messages)")
		fifo      = fs.Bool("fifo", false, "explore the order-preserving (FIFO) discipline")
		drop      = fs.Bool("drop", false, "also explore permanent packet loss")
		maxStates = fs.Int("max-states", 1<<20, "state budget")
		constant  = fs.Bool("same-message", false, "all-messages-identical convention")
		showCex   = fs.Bool("cex", true, "print the counterexample trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p protocol.Protocol
	switch *protoName {
	case "livelock":
		p = protocol.NewLivelock()
	case "cntnobind":
		p = protocol.NewCntNoBind()
	case "swindow":
		p = transport.New(*seqSpace, *window)
	default:
		reg, ok := protocol.Registry()[*protoName]
		if !ok {
			return fmt.Errorf("unknown protocol %q", *protoName)
		}
		p = reg
	}

	rep, err := explore.Explore(p, explore.Config{
		Messages:        *messages,
		MaxDataSends:    *dataSends,
		MaxAckSends:     *ackSends,
		FIFO:            *fifo,
		AllowDrop:       *drop,
		MaxStates:       *maxStates,
		ConstantPayload: *constant,
	})
	if err != nil {
		return err
	}

	disc := "non-FIFO"
	if *fifo {
		disc = "FIFO+loss"
	}
	fmt.Fprintf(out, "protocol    %s\n", p.Name())
	fmt.Fprintf(out, "discipline  %s\n", disc)
	fmt.Fprintf(out, "states      %d (%d transitions)\n", rep.States, rep.Transitions)

	if rep.Violation == nil {
		if rep.Exhausted {
			fmt.Fprintf(out, "verdict     SAFE within bounds — the full bounded space was exhausted\n")
		} else {
			fmt.Fprintf(out, "verdict     UNDECIDED — state budget exhausted before covering the space\n")
		}
		return nil
	}
	fmt.Fprintf(out, "verdict     BROKEN — %v\n", rep.Violation)
	if err := ioa.CheckSafety(rep.Counterexample); err == nil {
		return fmt.Errorf("internal error: counterexample passes the safety checkers")
	}
	if *showCex {
		fmt.Fprintf(out, "shortest counterexample (%d events):\n%s", len(rep.Counterexample), rep.Counterexample)
	}
	return nil
}
