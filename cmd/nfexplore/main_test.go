package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExploreAltbitBroken(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "altbit"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BROKEN") || !strings.Contains(out, "counterexample") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestExploreAltbitFIFOSafe(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "altbit", "-fifo", "-drop"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SAFE within bounds") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestExploreSwindow(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-protocol", "swindow", "-seqspace", "2", "-window", "1", "-messages", "3"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BROKEN") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestExploreSwindowUnbounded(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-protocol", "swindow", "-seqspace", "0", "-window", "2"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SAFE") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestExploreUndecidedOnTinyBudget(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-protocol", "seqnum", "-messages", "3", "-max-states", "10"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UNDECIDED") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestExploreSpecialProtocols(t *testing.T) {
	for _, name := range []string{"livelock", "cntnobind"} {
		var buf bytes.Buffer
		if err := run([]string{"-protocol", name, "-messages", "2"}, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestExploreErrors(t *testing.T) {
	for _, args := range [][]string{{"-protocol", "nope"}, {"-badflag"}} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}
