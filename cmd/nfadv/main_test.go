package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestReplayAltbitBroken(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "replay", "-protocol", "altbit"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BROKEN") {
		t.Fatalf("expected BROKEN:\n%s", buf.String())
	}
}

func TestReplayFullCert(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "replay", "-protocol", "altbit", "-full-cert"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VIOLATION CERTIFICATE") {
		t.Fatalf("expected full certificate:\n%s", buf.String())
	}
}

func TestReplayWritesTraceFile(t *testing.T) {
	path := t.TempDir() + "/v.nft"
	var buf bytes.Buffer
	if err := run([]string{"-attack", "replay", "-protocol", "altbit", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replayable trace written") {
		t.Fatalf("missing trace confirmation:\n%s", buf.String())
	}
	l, err := trace.ReadFile(path)
	if err != nil {
		t.Fatalf("reading written trace: %v", err)
	}
	v, ok := l.Verdict()
	if !ok || v == nil || v.Property != "DL1" {
		t.Fatalf("trace verdict = %v, %v; want DL1", v, ok)
	}
	if l.Meta[trace.MetaProtocol] != "altbit" {
		t.Fatalf("trace protocol meta = %q", l.Meta[trace.MetaProtocol])
	}
}

func TestPumpRejectsTraceFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "pump", "-protocol", "livelock", "-o", "/tmp/x.nft"}, &buf); err == nil {
		t.Fatal("pump accepted -o")
	}
}

func TestReplaySeqnumResists(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "replay", "-protocol", "seqnum"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RESISTED") {
		t.Fatalf("expected RESISTED:\n%s", buf.String())
	}
}

func TestHeaderBudgetCheat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "headerbudget", "-protocol", "cheat1", "-messages", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BROKEN") {
		t.Fatalf("expected BROKEN:\n%s", buf.String())
	}
}

func TestHeaderBudgetUnboundedAlphabet(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "headerbudget", "-protocol", "seqnum"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inapplicable") {
		t.Fatalf("expected inapplicable:\n%s", buf.String())
	}
}

func TestPumpLivelock(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "pump", "-protocol", "livelock"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PUMPED") {
		t.Fatalf("expected PUMPED:\n%s", buf.String())
	}
}

func TestPumpCloses(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "pump", "-protocol", "seqnum"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CLOSED") {
		t.Fatalf("expected CLOSED:\n%s", buf.String())
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{"-attack", "nope"},
		{"-protocol", "nope"},
		{"-badflag"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}

func TestReplayJSONCertificate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-attack", "replay", "-protocol", "altbit", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Skip the human-readable setup line; the JSON object starts on its
	// own line.
	start := strings.Index(out, "\n{")
	if start < 0 {
		t.Fatalf("no JSON object:\n%s", out)
	}
	start++
	var cert struct {
		Protocol  string `json:"protocol"`
		Violation struct {
			Property string `json:"property"`
		} `json:"violation"`
		Trace []struct {
			Kind string `json:"kind"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(out[start:]), &cert); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if cert.Protocol != "altbit" || cert.Violation.Property != "DL1" || len(cert.Trace) == 0 {
		t.Fatalf("certificate content wrong: %+v", cert)
	}
	if cert.Trace[0].Kind != "send_msg" {
		t.Fatalf("kind should serialise as text: %+v", cert.Trace[0])
	}
}
