// Command nfadv runs one of the paper's lower-bound constructions against a
// protocol and prints either a machine-checked violation certificate or a
// resistance report.
//
// Examples:
//
//	nfadv -attack replay -protocol altbit
//	nfadv -attack headerbudget -protocol cheat1 -copies 3
//	nfadv -attack pump -protocol livelock
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/adversary"
	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nfadv:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nfadv", flag.ContinueOnError)
	var (
		attack    = fs.String("attack", "replay", "attack: replay, headerbudget, pump")
		protoName = fs.String("protocol", "altbit", "protocol: "+strings.Join(protocol.Names(), ", ")+", livelock")
		stranded  = fs.Int("stranded", 2, "replay: stale copies to strand before attacking")
		messages  = fs.Int("messages", 2, "messages to deliver during setup")
		copies    = fs.Int("copies", 3, "headerbudget: copies to strand per header")
		depth     = fs.Int("depth", 16, "replay search depth")
		nodes     = fs.Int("nodes", 1<<16, "replay search node budget")
		budget    = fs.Int("budget", 1<<16, "pump step budget")
		full      = fs.Bool("full-cert", false, "print the complete execution trace of the certificate")
		asJSON    = fs.Bool("json", false, "print the certificate as JSON")
		traceOut  = fs.String("o", "", "write the violating execution as a replayable trace file (replay with nftrace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := lookup(*protoName)
	if err != nil {
		return err
	}

	mode := certText
	if *asJSON {
		mode = certJSON
	} else if *full {
		mode = certFull
	}
	switch *attack {
	case "replay":
		return runReplay(out, p, *stranded, *messages, *depth, *nodes, mode, *traceOut)
	case "headerbudget":
		return runHeaderBudget(out, p, *copies, *messages, *depth, *nodes, mode, *traceOut)
	case "pump":
		if *traceOut != "" {
			return fmt.Errorf("-o: the pump attack certifies a liveness violation by state repetition and produces no replayable trace")
		}
		return runPump(out, p, *budget)
	default:
		return fmt.Errorf("unknown attack %q", *attack)
	}
}

func lookup(name string) (protocol.Protocol, error) {
	if name == "livelock" {
		return protocol.NewLivelock(), nil
	}
	p, ok := protocol.Registry()[name]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (have: %s, livelock)",
			name, strings.Join(protocol.Names(), ", "))
	}
	return p, nil
}

// certMode selects how certificates are rendered.
type certMode int

const (
	certText certMode = iota + 1
	certFull
	certJSON
)

func runReplay(out io.Writer, p protocol.Protocol, stranded, messages, depth, nodes int, mode certMode, traceOut string) error {
	cfg := sim.Config{
		Protocol:    p,
		DataPolicy:  channel.DelayFirst(stranded),
		RecordTrace: true,
	}
	if traceOut != "" {
		cfg.TraceLog = trace.NewLog(nil)
	}
	r := sim.NewRunner(cfg)
	for i := 0; i < messages; i++ {
		if err := r.RunMessage(fmt.Sprintf("m%d", i)); err != nil {
			return fmt.Errorf("setup message %d: %w", i, err)
		}
	}
	fmt.Fprintf(out, "setup: delivered %d messages, %d stale copies in transit: %s\n",
		messages, r.ChData.InTransit(), r.ChData.Key())
	rep, err := adversary.ReplaySearch(r, adversary.ReplayConfig{MaxDepth: depth, MaxNodes: nodes})
	if err != nil {
		return err
	}
	return report(out, rep, mode, traceOut)
}

func runHeaderBudget(out io.Writer, p protocol.Protocol, copies, messages, depth, nodes int, mode certMode, traceOut string) error {
	rep, err := adversary.HeaderBudget(p, copies, messages,
		adversary.ReplayConfig{MaxDepth: depth, MaxNodes: nodes, RecordOps: traceOut != ""})
	if err != nil {
		return err
	}
	if !rep.Bounded {
		fmt.Fprintf(out, "protocol %s has an unbounded alphabet: the Theorem 3.1 construction is\n", p.Name())
		fmt.Fprintf(out, "inapplicable — the protocol pays the theorem's price in headers (≥ n).\n")
		return nil
	}
	fmt.Fprintf(out, "accumulated %d copies of each of %d data headers %v\n",
		rep.CopiesPerHeader, len(rep.HeadersAccumulated), rep.HeadersAccumulated)
	return report(out, rep.Replay, mode, traceOut)
}

func report(out io.Writer, rep adversary.ReplayReport, mode certMode, traceOut string) error {
	if rep.Cert == nil {
		fmt.Fprintf(out, "RESISTED: no violating replay schedule found (%d deliveries explored", rep.Nodes)
		if rep.Truncated {
			fmt.Fprintf(out, ", search truncated by node budget")
		}
		fmt.Fprintf(out, ")\n")
		if traceOut != "" {
			fmt.Fprintf(out, "no trace written: there is no violation to record\n")
		}
		return nil
	}
	if err := rep.Cert.Recheck(); err != nil {
		return fmt.Errorf("certificate failed recheck: %w", err)
	}
	if traceOut != "" {
		if rep.Cert.Log == nil {
			return fmt.Errorf("-o: attack did not record a replayable trace")
		}
		if err := trace.WriteFile(traceOut, rep.Cert.Log); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(out, "replayable trace written to %s (%d events)\n", traceOut, rep.Cert.Log.Len())
	}
	switch mode {
	case certJSON:
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep.Cert)
	case certFull:
		fmt.Fprintln(out, rep.Cert)
	default:
		fmt.Fprintf(out, "BROKEN: %v\n", rep.Cert.Violation)
		fmt.Fprintf(out, "replayed stale copies:")
		for _, pk := range rep.Cert.Replayed {
			fmt.Fprintf(out, " %s", pk)
		}
		fmt.Fprintf(out, "\nspurious deliveries: %v\n", rep.Cert.ExtraDeliveries)
		fmt.Fprintf(out, "(re-run with -full-cert for the complete execution)\n")
	}
	return nil
}

func runPump(out io.Writer, p protocol.Protocol, budget int) error {
	r := sim.NewRunner(sim.Config{Protocol: p})
	r.SubmitMsg("m")
	rep, err := adversary.Pump(r, budget)
	if err != nil {
		return err
	}
	switch {
	case rep.Closed:
		fmt.Fprintf(out, "CLOSED: the optimal-channel extension delivers the message with %d packets\n", rep.Cost)
	case rep.Pumped:
		fmt.Fprintf(out, "PUMPED: joint state repeated after %d steps with no delivery —\n", rep.Steps)
		fmt.Fprintf(out, "the channel can loop this segment forever (DL3 liveness violation).\n")
		fmt.Fprintf(out, "repeated state: %s\n", rep.RepeatedState)
	}
	return nil
}
