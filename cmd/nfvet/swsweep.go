package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analyze"
	"repro/internal/transport"
)

// The (S, W) sweep charts the transport-layer reading of Theorem 2.1: the
// joint control-state count k_t·k_r the pumping adversary must exceed is a
// function of the protocol's configuration, and for sliding-window
// transports that configuration is the sequence space S and the window W.
// Auditing the grid at a fixed occupancy cap shows k_t·k_r growing with the
// S·W product (more live sequence numbers times more in-flight segments =
// more distinguishable control states), which is exactly why bounded
// headers buy only bounded protection: the adversary's pumping budget
// scales with S·W, not with the message count.

// swRow is one audited grid point.
type swRow struct {
	Family string // "swindow" or "gbn"
	S, W   int
	Report *analyze.AuditReport
}

// swSweepGrid enumerates the audited grid: both transport families, every
// sequence space S in 2..maxS (even values — the classical S ≥ 2W sizing
// needs room for at least one window), every window W with 2W ≤ S.
func swSweepGrid(maxS int) []swRow {
	var rows []swRow
	for _, family := range []string{"swindow", "gbn"} {
		for s := 2; s <= maxS; s += 2 {
			for w := 1; 2*w <= s; w++ {
				rows = append(rows, swRow{Family: family, S: s, W: w})
			}
		}
	}
	return rows
}

// runSWSweep audits the (S, W) grid of both transport families at a fixed
// occupancy cap and prints one TSV table of k_t/k_r against S·W. Rows are
// ordered by family, then S·W, then S — the order in which the pumping
// bound is expected to grow. Within a family at fixed W the k_t·k_r of
// exhausted audits must be non-decreasing in S; a decrease means the
// control-state space shrank as sequence numbers were added, which would
// contradict the sizing argument and fails the sweep.
func runSWSweep(maxS int, cfg analyze.AuditConfig, out, errw io.Writer) int {
	if maxS < 2 {
		maxS = 2
	}
	rows := swSweepGrid(maxS)
	for i := range rows {
		name := fmt.Sprintf("%s-s%d-w%d", rows[i].Family, rows[i].S, rows[i].W)
		p, ok := transport.Parse(name)
		if !ok {
			fmt.Fprintf(errw, "nfvet audit: cannot build transport %q\n", name)
			return 2
		}
		rows[i].Report = analyze.Audit(p, cfg)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Family != rows[j].Family {
			return rows[i].Family < rows[j].Family
		}
		if rows[i].S*rows[i].W != rows[j].S*rows[j].W {
			return rows[i].S*rows[i].W < rows[j].S*rows[j].W
		}
		return rows[i].S < rows[j].S
	})

	fmt.Fprint(out, swSweepTable(rows, cfg))

	bad := 0
	for _, family := range []string{"swindow", "gbn"} {
		for w := 1; 2*w <= maxS; w++ {
			prevS, prevKK := 0, -1
			for _, r := range rows {
				if r.Family != family || r.W != w || !r.Report.Exhausted {
					continue
				}
				kk := r.Report.KT * r.Report.KR
				if prevKK >= 0 && kk < prevKK {
					fmt.Fprintf(errw, "nfvet audit: %s w=%d: k_t*k_r drops from %d (S=%d) to %d (S=%d)\n",
						family, w, prevKK, prevS, kk, r.S)
					bad++
				}
				prevS, prevKK = r.S, kk
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(errw, "nfvet audit: %d (S, W) curve(s) are non-monotone in S\n", bad)
		return 1
	}
	return 0
}

// swSweepTable renders the grid as a TSV table, one row per audited
// configuration.
func swSweepTable(rows []swRow, cfg analyze.AuditConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# transport (S, W) sweep: occupancy=%d maxstates=%d\n",
		cfg.Occupancy, cfg.MaxStates)
	b.WriteString("family\tS\tW\tS*W\tk_t\tk_r\tk_t*k_r\tstates\texhausted\n")
	for _, r := range rows {
		rep := r.Report
		fmt.Fprintf(&b, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			r.Family, r.S, r.W, r.S*r.W, rep.KT, rep.KR, rep.KT*rep.KR,
			rep.States, rep.Exhausted)
	}
	return b.String()
}
