package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/stabilize"
	"repro/internal/trace"
)

// runStabilize sweeps the arbitrary-start convergence checker
// (internal/stabilize) over the named protocols: every corrupted initial
// configuration in each protocol's declared corruption space is driven
// through the canonical recovery schedule and judged against its amnesty.
// The verdict vocabulary matches the rest of nfvet — CERTIFIED/CONSISTENT/
// OBSERVED/FAIL against the protocol's StabilizeStatus declaration. This is
// the quick per-seed sweep; `nfvet verify -stabilize` is the exhaustive
// prover over the same corruption space. Exit status is nonzero iff a
// protocol's check is FAIL.
func runStabilize(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("nfvet stabilize", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		all       = fs.Bool("all", false, "sweep every registered protocol")
		maxPoison = fs.Int("maxpoison", 1, "poison packets pre-loaded per channel")
		occupancy = fs.Int("occupancy", 2, "channel occupancy assumed by the amnesty budget")
		probes    = fs.Int("probes", 3, "messages driven through each corrupted start")
		steps     = fs.Int("steps", 512, "transmitter step budget per probe before a run counts as stalled")
		table     = fs.Bool("table", false, "emit one TSV row per corrupted seed instead of summary reports")
		outDir    = fs.String("o", "", "write each protocol's first divergence witness as <protocol>-stabilize-<property>.nft under this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	names := fs.Args()
	if *all {
		names = protocol.Names()
	}
	if len(names) == 0 {
		fmt.Fprintln(errw, "nfvet stabilize: name protocols or pass -all (known: "+
			strings.Join(protocol.Names(), ", ")+"; plus livelock, cntnobind, cheat<d>, cntk<k>)")
		return 2
	}

	cfg := stabilize.Config{
		Probes:     *probes,
		Occupancy:  *occupancy,
		StepBudget: *steps,
	}
	if *table {
		fmt.Fprintln(out, "protocol\tseed\tamnesty\tcharges\tconverged\tproperty")
	}
	failed := 0
	for i, name := range names {
		p, err := replay.LookupProtocol(name)
		if err != nil {
			fmt.Fprintln(errw, "nfvet stabilize:", err)
			return 2
		}
		sr, err := stabilize.Sweep(p, cfg, *maxPoison)
		if err != nil {
			fmt.Fprintln(errw, "nfvet stabilize:", err)
			return 2
		}
		if *table {
			for _, rep := range sr.Reports {
				charges, prop := 0, ""
				if rep.Judgment != nil {
					charges = rep.Judgment.Charges
				}
				if rep.Violation != nil {
					prop = rep.Violation.Property
				}
				fmt.Fprintf(out, "%s\t%s\t%d\t%d\t%t\t%s\n",
					sr.Protocol, rep.Seed, rep.Amnesty, charges, rep.Converged, prop)
			}
		} else {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, sr)
		}
		if *outDir != "" && sr.First != nil && sr.First.Witness != nil {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(errw, "nfvet stabilize:", err)
				return 2
			}
			path := filepath.Join(*outDir, sr.Protocol+"-stabilize-"+sr.First.Violation.Property+".nft")
			if err := trace.WriteFile(path, sr.First.Witness); err != nil {
				fmt.Fprintln(errw, "nfvet stabilize:", err)
				return 2
			}
			if !*table {
				fmt.Fprintf(out, "  witness:   %s\n", path)
			}
		}
		if sr.Check == "FAIL" {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(errw, "nfvet stabilize: %d protocol(s) FAIL\n", failed)
		return 1
	}
	return 0
}
