package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/verify"
)

// runVerify drives the bounded model checker (internal/verify) over the
// named protocols — or, with -all, every registered protocol and transport
// adapter — and prints one report each. A VIOLATED verdict's witness is
// written as a replayable .nft counterexample when -o is set; -json writes
// each report as a machine-readable proof artifact next to it. Exit status
// is nonzero iff a protocol's check is FAIL (the verdict contradicts its
// declared DL status, or a witness failed replay confirmation).
func runVerify(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("nfvet verify", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		all       = fs.Bool("all", false, "verify every registered protocol (incl. adapted transport) plus livelock and cntnobind")
		maxOcc    = fs.Int("maxocc", 2, "per-channel occupancy cap L (the PROVED-up-to-L bound)")
		maxMsg    = fs.Int("maxmsg", 3, "submitted-message bound")
		maxStates = fs.Int("maxstates", 1<<18, "exploration budget (BUDGET verdict when hit)")
		noPOR     = fs.Bool("nopor", false, "disable the lazy-drop partial-order reduction")
		spill     = fs.String("spill", "", "spill the visited set to a temp file under this directory")
		strKeys   = fs.Bool("stringkeys", false, "use the legacy string-keyed visited set (reference implementation; A/B against the interned default)")
		outDir    = fs.String("o", "", "write VIOLATED witnesses as <protocol>-<property>.nft under this directory")
		jsonOut   = fs.Bool("json", false, "print machine-readable JSON reports instead of text")
		stab      = fs.Bool("stabilize", false, "seed the frontier with every bounded corrupted start: PROVED means the protocol self-stabilizes within the bounds")
		maxPoison = fs.Int("maxpoison", 1, "poison packets pre-loaded per channel in -stabilize mode (capped at -maxocc)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	names := fs.Args()
	if *all {
		names = append(protocol.Names(), transport.Names()...)
		names = append(names, "livelock", "cntnobind")
	}
	if len(names) == 0 {
		fmt.Fprintln(errw, "nfvet verify: name protocols or pass -all (known: "+
			strings.Join(protocol.Names(), ", ")+"; "+
			strings.Join(transport.Names(), ", ")+
			"; plus livelock, cntnobind, cheat<d>, cntk<k>, swindow-s<S>-w<W>, gbn-s<S>-w<W>)")
		return 2
	}

	cfg := verify.Config{
		Occupancy:   *maxOcc,
		MaxMessages: *maxMsg,
		MaxStates:   *maxStates,
		NoPOR:       *noPOR,
		SpillDir:    *spill,
		StringKeys:  *strKeys,
		Stabilize:   *stab,
		MaxPoison:   *maxPoison,
	}
	failed := 0
	for i, name := range names {
		p, err := replay.LookupProtocol(name)
		if err != nil {
			fmt.Fprintln(errw, "nfvet verify:", err)
			return 2
		}
		rep, err := verify.Run(p, cfg)
		if err != nil {
			fmt.Fprintln(errw, "nfvet verify:", err)
			return 2
		}
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(errw, "nfvet verify:", err)
				return 2
			}
			fmt.Fprintln(out, string(data))
		} else {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, rep)
		}
		if *outDir != "" && rep.Witness != nil {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(errw, "nfvet verify:", err)
				return 2
			}
			path := filepath.Join(*outDir, rep.Protocol+"-"+rep.Property+".nft")
			if err := trace.WriteFile(path, rep.Witness); err != nil {
				fmt.Fprintln(errw, "nfvet verify:", err)
				return 2
			}
			if !*jsonOut {
				fmt.Fprintf(out, "  witness:  %s\n", path)
			}
		}
		if rep.Check == verify.CheckFail {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(errw, "nfvet verify: %d protocol(s) FAIL\n", failed)
		return 1
	}
	return 0
}
