// Command nfvet is the repo's determinism lint suite and static boundness
// auditor.
//
// As a vet tool it speaks the `go vet -vettool` protocol, running the seven
// analyzers (wallclock, globalrand, maprange, statekey, nextpkt,
// internlocal, freelist) over every compilation unit, test files included.
// Facts ride the protocol's vetx channel: each unit exports purity verdicts
// for its exported functions and reads its dependencies' verdicts back, so
// the statekey lint proves purity module-wide, across package boundaries:
//
//	go build -o bin/nfvet ./cmd/nfvet
//	go vet -vettool=$PWD/bin/nfvet ./...
//
// Standalone subcommands:
//
//	nfvet check [packages]   lint the packages (non-test files) directly,
//	                         without the go vet driver; packages are
//	                         analyzed in dependency order with an in-memory
//	                         facts channel (-nofacts for package-local
//	                         precision, -json for machine-readable
//	                         diagnostics including suppressed allows)
//	nfvet audit -all         audit every registered protocol's boundness,
//	                         including the adapted transport endpoints
//	nfvet audit altbit cntk4 audit specific protocols (replay names work:
//	                         livelock, cntnobind, cheat<d>, cntk<k>,
//	                         swindow-s<S>-w<W>, gbn-s<S>-w<W>)
//	nfvet audit -sweep -all  emit the k_t/k_r-vs-occupancy curve as a TSV
//	                         table (Theorem 2.1's pumping bound vs the cap)
//	nfvet audit -swsweep     audit the transport (S, W) grid at a fixed
//	                         occupancy and emit k_t/k_r against S·W as a
//	                         TSV table (the pumping bound vs the sizing)
//	nfvet verify -all        exhaustively explore each protocol's bounded
//	                         configuration space: PROVE DL-safety up to the
//	                         occupancy/message bounds, or emit a
//	                         replay-confirmed NFT counterexample
//	nfvet verify -stabilize  seed the exploration with every bounded
//	                         corrupted start: PROVED means the protocol
//	                         self-stabilizes within the bounds
//	nfvet stabilize -all     sweep arbitrary-start convergence seed by
//	                         seed (the quick per-configuration check;
//	                         verify -stabilize is the exhaustive prover)
//	nfvet help               analyzer catalog
//
// The audit enumerates the joint control states (q_t, q_r) reachable under
// bounded channel occupancy and checks each protocol's declared
// protocol.Bounds: the k_t·k_r joint-state count Theorem 2.1's pumping
// adversary exploits, and the bounded header alphabet Theorems 3.1/4.1
// presuppose. Exit status is nonzero iff a lint finding or a FAIL verdict
// was produced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analyze"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	if len(args) == 0 {
		usage(errw)
		return 2
	}
	switch args[0] {
	case "check":
		return runCheck(args[1:], out, errw)
	case "audit":
		return runAudit(args[1:], out, errw)
	case "verify":
		return runVerify(args[1:], out, errw)
	case "stabilize":
		return runStabilize(args[1:], out, errw)
	case "help", "-h", "-help", "--help":
		usage(out)
		for _, a := range analyze.Analyzers() {
			fmt.Fprintf(out, "\n%s:\n  %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// Anything else (-V=full, -flags, <unit>.cfg, analyzer-selection flags)
	// is the go vet driver talking to us.
	return analyze.VettoolMain("nfvet", analyze.Analyzers(), args)
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  nfvet check [-json] [-nofacts] [packages]   lint packages (default ./...)
  nfvet audit [-all | names...] [options]     audit protocol boundness
  nfvet verify [-all | names...] [options]    prove DL-safety up to bounds,
                                              or emit a replayable witness
  nfvet stabilize [-all | names...] [options] sweep arbitrary-start
                                              convergence per corrupted seed
  nfvet help                                  analyzer catalog
  go vet -vettool=/path/to/nfvet ./...        lint via the go vet driver
`)
}

// jsonDiag is the machine-readable rendering of one finding, active or
// //nfvet:allow-suppressed, for CI annotation.
type jsonDiag struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Analyzer    string `json:"analyzer"`
	Message     string `json:"message"`
	Allowed     bool   `json:"allowed"`
	AllowReason string `json:"allowReason,omitempty"`
}

func toJSONDiags(ds []analyze.Diagnostic) []jsonDiag {
	out := make([]jsonDiag, 0, len(ds))
	for _, d := range ds {
		out = append(out, jsonDiag{
			File:        d.Pos.Filename,
			Line:        d.Pos.Line,
			Col:         d.Pos.Column,
			Analyzer:    d.Analyzer,
			Message:     d.Message,
			Allowed:     d.Allowed,
			AllowReason: d.AllowReason,
		})
	}
	return out
}

// runCheck lints the named packages (default ./...) with the standalone
// loader, in dependency order with the in-memory facts channel. The go vet
// driver covers test files too; check is the quick path. Exit status is
// nonzero iff there are active (non-allowed) findings, JSON mode included.
func runCheck(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("nfvet check", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		jsonOut = fs.Bool("json", false, "emit machine-readable JSON diagnostics, //nfvet:allow-suppressed findings included")
		noFacts = fs.Bool("nofacts", false, "disable the cross-package facts channel (package-local precision)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "nfvet:", err)
		return 2
	}
	pkgs, err := analyze.LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(errw, "nfvet:", err)
		return 2
	}
	res := analyze.AnalyzeModule(analyze.Analyzers(), pkgs, !*noFacts)
	if *jsonOut {
		all := toJSONDiags(append(append([]analyze.Diagnostic(nil), res.Diags...), res.Suppressed...))
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			if a.Col != b.Col {
				return a.Col < b.Col
			}
			return a.Analyzer < b.Analyzer
		})
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			fmt.Fprintln(errw, "nfvet:", err)
			return 2
		}
		fmt.Fprintln(out, string(data))
	} else {
		for _, d := range res.Diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(errw, "nfvet: %d finding(s)\n", len(res.Diags))
		return 1
	}
	return 0
}

// runAudit audits the named protocols (or, with -all, every registered
// protocol — including the adapted transport endpoints — plus the broken
// specimens) and prints one report each. With -sweep it instead prints the
// k_t/k_r-vs-occupancy curve for the named protocols as one TSV table.
func runAudit(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("nfvet audit", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		all       = fs.Bool("all", false, "audit every registered protocol (incl. adapted transport) plus livelock and cntnobind")
		occupancy = fs.Int("occupancy", 2, "max in-transit packets per channel")
		maxStates = fs.Int("maxstates", 1<<16, "joint-state enumeration budget")
		sweep     = fs.Bool("sweep", false, "emit the k_t/k_r-vs-occupancy TSV curve instead of verdict reports")
		maxOcc    = fs.Int("maxocc", 4, "largest occupancy cap swept (with -sweep)")
		swsweep   = fs.Bool("swsweep", false, "emit the transport (S, W) grid as a k_t/k_r-vs-S*W TSV table")
		maxS      = fs.Int("maxs", 8, "largest sequence space audited (with -swsweep)")
		jsonOut   = fs.Bool("json", false, "print machine-readable JSON reports instead of text (verdict reports only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && (*sweep || *swsweep) {
		fmt.Fprintln(errw, "nfvet audit: -json applies to verdict reports, not the TSV sweeps")
		return 2
	}
	if *swsweep {
		return runSWSweep(*maxS, analyze.AuditConfig{Occupancy: *occupancy, MaxStates: *maxStates}, out, errw)
	}
	names := fs.Args()
	if *all {
		names = append(protocol.Names(), transport.Names()...)
		names = append(names, "livelock", "cntnobind")
	}
	if len(names) == 0 {
		fmt.Fprintln(errw, "nfvet audit: name protocols or pass -all (known: "+
			strings.Join(protocol.Names(), ", ")+"; "+
			strings.Join(transport.Names(), ", ")+
			"; plus livelock, cntnobind, cheat<d>, cntk<k>, swindow-s<S>-w<W>, gbn-s<S>-w<W>)")
		return 2
	}

	ps := make([]protocol.Protocol, 0, len(names))
	for _, name := range names {
		p, err := replay.LookupProtocol(name)
		if err != nil {
			fmt.Fprintln(errw, "nfvet audit:", err)
			return 2
		}
		ps = append(ps, p)
	}

	if *sweep {
		return runSweep(ps, analyze.SweepConfig{MaxOccupancy: *maxOcc, MaxStates: *maxStates}, out, errw)
	}

	cfg := analyze.AuditConfig{Occupancy: *occupancy, MaxStates: *maxStates}
	failed := 0
	for i, p := range ps {
		rep := analyze.Audit(p, cfg)
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(errw, "nfvet audit:", err)
				return 2
			}
			fmt.Fprintln(out, string(data))
		} else {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, rep)
		}
		if rep.Verdict == analyze.VerdictFail {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(errw, "nfvet audit: %d protocol(s) FAIL their declared bounds\n", failed)
		return 1
	}
	return 0
}

// runSweep prints the occupancy sweep for the given protocols and checks
// each curve's monotonicity (Theorem 2.1: a larger cap can only grow the
// reachable joint control space).
func runSweep(ps []protocol.Protocol, cfg analyze.SweepConfig, out, errw io.Writer) int {
	reports := analyze.SweepAll(ps, cfg)
	fmt.Fprint(out, analyze.SweepTable(reports))
	bad := 0
	for _, r := range reports {
		if err := r.CheckMonotone(); err != nil {
			fmt.Fprintln(errw, "nfvet audit:", err)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(errw, "nfvet audit: %d protocol(s) have non-monotone sweep curves\n", bad)
		return 1
	}
	return 0
}
