package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestNoArgsUsage(t *testing.T) {
	code, _, stderr := runCmd(t)
	if code != 2 || !strings.Contains(stderr, "usage:") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestHelpListsAnalyzers(t *testing.T) {
	code, stdout, _ := runCmd(t, "help")
	if code != 0 {
		t.Fatalf("help exited %d", code)
	}
	for _, name := range []string{"wallclock:", "globalrand:", "maprange:", "statekey:"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("help output lacks %s", name)
		}
	}
}

func TestAuditSingleProtocol(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "altbit")
	if code != 0 {
		t.Fatalf("audit altbit exited %d: %s", code, stderr)
	}
	for _, want := range []string{"protocol:  altbit", "k_t:       4", "k_r:       2", "verdict:   CERTIFIED"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report lacks %q:\n%s", want, stdout)
		}
	}
}

func TestAuditAll(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "-all", "-maxstates", "16384")
	if code != 0 {
		t.Fatalf("audit -all exited %d: %s", code, stderr)
	}
	// Every registered protocol — core and adapted transport — plus the
	// broken specimens gets a report.
	for _, name := range []string{
		"altbit", "cheat1", "cntexp", "cntk4", "cntlinear", "seqnum",
		"swindow-s4-w2", "swindow-unbounded-w2", "gbn-s4-w2", "gbn-s8-w4",
		"livelock", "cntnobind",
	} {
		if !strings.Contains(stdout, "protocol:  "+name+"\n") {
			t.Errorf("audit -all output lacks %s", name)
		}
	}
	if strings.Contains(stdout, "FAIL") {
		t.Errorf("audit -all reports a FAIL:\n%s", stdout)
	}
}

func TestAuditTransportByName(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "gbn-s4-w2")
	if code != 0 {
		t.Fatalf("audit gbn-s4-w2 exited %d: %s", code, stderr)
	}
	for _, want := range []string{"protocol:  gbn-s4-w2", "verdict:   CERTIFIED", "alphabet:  8 (bounded)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report lacks %q:\n%s", want, stdout)
		}
	}
}

func TestAuditSweep(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "-sweep", "-maxocc", "2", "-maxstates", "16384", "altbit", "gbn-s4-w2")
	if code != 0 {
		t.Fatalf("audit -sweep exited %d: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if lines[0] != "protocol\toccupancy\tstates\texact\tk_t\tk_r\tk_t*k_r\theaders" {
		t.Fatalf("sweep table header drifted: %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("two protocols swept to occupancy 2 should emit 4 data rows, got %d:\n%s", len(lines)-1, stdout)
	}
	for _, want := range []string{"altbit\t1\t", "altbit\t2\t", "gbn-s4-w2\t1\t", "gbn-s4-w2\t2\t"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("sweep table lacks a %q row:\n%s", want, stdout)
		}
	}
}

func TestAuditUnknownProtocol(t *testing.T) {
	code, _, stderr := runCmd(t, "audit", "nosuch")
	if code != 2 || !strings.Contains(stderr, "unknown protocol") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestCheckCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	code, stdout, stderr := runCmd(t, "check", "repro/internal/mset")
	if code != 0 {
		t.Fatalf("check exited %d: %s%s", code, stdout, stderr)
	}
}

func TestVettoolBanner(t *testing.T) {
	// cmd/go requires "<name> version devel ... buildID=<hash>".
	// VettoolMain prints to the real stdout; only the exit code is checked
	// here — the full protocol is exercised by TestGoVetIntegration.
	code, _, _ := runCmd(t, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
}

// TestGoVetIntegration builds nfvet and drives it through the real go vet
// -vettool protocol over a lint-clean package and a package with a known
// finding, checking both exit statuses.
func TestGoVetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet; skipped in -short")
	}
	tool := filepath.Join(t.TempDir(), "nfvet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building nfvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "repro/internal/mset", "repro/internal/protocol")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean packages: %v\n%s", err, out)
	}

	// A module with a finding: synthesize one in a temp dir.
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vetfixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "math/rand"

func main() {
	_ = rand.Intn(10)
}
`)
	vet = exec.Command("go", "vet", "-vettool="+tool, ".")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed a package with a globalrand finding:\n%s", out)
	}
	if !strings.Contains(string(out), "rand.Intn uses the process-global source") {
		t.Fatalf("vet output lacks the expected finding:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
