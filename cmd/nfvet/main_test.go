package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/replay"
	"repro/internal/trace"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestNoArgsUsage(t *testing.T) {
	code, _, stderr := runCmd(t)
	if code != 2 || !strings.Contains(stderr, "usage:") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestHelpListsAnalyzers(t *testing.T) {
	code, stdout, _ := runCmd(t, "help")
	if code != 0 {
		t.Fatalf("help exited %d", code)
	}
	for _, name := range []string{
		"wallclock:", "globalrand:", "maprange:", "statekey:",
		"nextpkt:", "internlocal:", "freelist:",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("help output lacks %s", name)
		}
	}
}

func TestAuditSingleProtocol(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "altbit")
	if code != 0 {
		t.Fatalf("audit altbit exited %d: %s", code, stderr)
	}
	for _, want := range []string{"protocol:  altbit", "k_t:       4", "k_r:       2", "verdict:   CERTIFIED"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report lacks %q:\n%s", want, stdout)
		}
	}
}

func TestAuditAll(t *testing.T) {
	// stabdl2's 8-label alphabet exhausts at ~35k joint states, so the
	// smoke budget is 65536 rather than the old 16384.
	code, stdout, stderr := runCmd(t, "audit", "-all", "-maxstates", "65536")
	if code != 0 {
		t.Fatalf("audit -all exited %d: %s", code, stderr)
	}
	// Every registered protocol — core and adapted transport — plus the
	// broken specimens gets a report.
	for _, name := range []string{
		"altbit", "cheat1", "cntexp", "cntk4", "cntlinear", "seqnum",
		"stabdl2", "stabnaive",
		"swindow-s4-w2", "swindow-unbounded-w2", "gbn-s4-w2", "gbn-s8-w4",
		"livelock", "cntnobind",
	} {
		if !strings.Contains(stdout, "protocol:  "+name+"\n") {
			t.Errorf("audit -all output lacks %s", name)
		}
	}
	if strings.Contains(stdout, "FAIL") {
		t.Errorf("audit -all reports a FAIL:\n%s", stdout)
	}
}

func TestAuditTransportByName(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "gbn-s4-w2")
	if code != 0 {
		t.Fatalf("audit gbn-s4-w2 exited %d: %s", code, stderr)
	}
	for _, want := range []string{"protocol:  gbn-s4-w2", "verdict:   CERTIFIED", "alphabet:  8 (bounded)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report lacks %q:\n%s", want, stdout)
		}
	}
}

func TestAuditSweep(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "-sweep", "-maxocc", "2", "-maxstates", "16384", "altbit", "gbn-s4-w2")
	if code != 0 {
		t.Fatalf("audit -sweep exited %d: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if lines[0] != "protocol\toccupancy\tstates\texact\tk_t\tk_r\tk_t*k_r\theaders" {
		t.Fatalf("sweep table header drifted: %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("two protocols swept to occupancy 2 should emit 4 data rows, got %d:\n%s", len(lines)-1, stdout)
	}
	for _, want := range []string{"altbit\t1\t", "altbit\t2\t", "gbn-s4-w2\t1\t", "gbn-s4-w2\t2\t"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("sweep table lacks a %q row:\n%s", want, stdout)
		}
	}
}

func TestAuditSWSweep(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "-swsweep", "-maxs", "4", "-maxstates", "16384")
	if code != 0 {
		t.Fatalf("audit -swsweep exited %d: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) < 2 || lines[1] != "family\tS\tW\tS*W\tk_t\tk_r\tk_t*k_r\tstates\texhausted" {
		t.Fatalf("swsweep table header drifted:\n%s", stdout)
	}
	// maxs=4 grid: (S=2, W=1) and (S=4, W=1..2) per family — 6 data rows.
	if len(lines) != 8 {
		t.Fatalf("want 6 data rows, got %d:\n%s", len(lines)-2, stdout)
	}
	for _, want := range []string{
		"swindow\t2\t1\t2\t", "swindow\t4\t2\t8\t",
		"gbn\t2\t1\t2\t", "gbn\t4\t2\t8\t",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("swsweep table lacks a %q row:\n%s", want, stdout)
		}
	}
}

func TestSWSweepGridSizing(t *testing.T) {
	for _, r := range swSweepGrid(8) {
		if 2*r.W > r.S {
			t.Errorf("grid emitted undersized space %s S=%d W=%d (needs S >= 2W)", r.Family, r.S, r.W)
		}
	}
	if n := len(swSweepGrid(8)); n != 20 {
		t.Errorf("maxs=8 grid has %d points, want 20 (10 per family)", n)
	}
}

func TestVerifyProvesSoundProtocol(t *testing.T) {
	code, stdout, stderr := runCmd(t, "verify", "seqnum")
	if code != 0 {
		t.Fatalf("verify seqnum exited %d: %s", code, stderr)
	}
	for _, want := range []string{"verdict:    PROVED", "check:      CERTIFIED", "(exhausted)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report lacks %q:\n%s", want, stdout)
		}
	}
}

func TestVerifyWritesReplayableWitness(t *testing.T) {
	// -o points at a directory that does not exist yet: verify must create it.
	dir := filepath.Join(t.TempDir(), "certs")
	code, stdout, stderr := runCmd(t, "verify", "-o", dir, "altbit")
	if code != 0 {
		t.Fatalf("verify altbit exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "VIOLATED (DL1)") {
		t.Fatalf("altbit not violated:\n%s", stdout)
	}
	path := filepath.Join(dir, "altbit-DL1.nft")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("witness file: %v", err)
	}
	defer f.Close()
	wl, err := trace.ReadLog(f)
	if err != nil {
		t.Fatalf("witness decode: %v", err)
	}
	rr, err := replay.Run(wl)
	if err != nil {
		t.Fatalf("witness replay: %v", err)
	}
	if rr.Divergence != nil || rr.Verdict == nil || rr.Verdict.Property != "DL1" {
		t.Fatalf("witness does not reproduce DL1: divergence=%v verdict=%v", rr.Divergence, rr.Verdict)
	}
}

func TestVerifyJSONReport(t *testing.T) {
	code, stdout, stderr := runCmd(t, "verify", "-json", "seqnum")
	if code != 0 {
		t.Fatalf("verify -json exited %d: %s", code, stderr)
	}
	var rep struct {
		Protocol  string `json:"protocol"`
		Verdict   string `json:"verdict"`
		Check     string `json:"check"`
		Exhausted bool   `json:"exhausted"`
		SpaceHash string `json:"spaceHash"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, stdout)
	}
	if rep.Protocol != "seqnum" || rep.Verdict != "PROVED" || rep.Check != "CERTIFIED" ||
		!rep.Exhausted || rep.SpaceHash == "" {
		t.Fatalf("JSON report fields drifted: %+v", rep)
	}
}

func TestStabilizeSweepReports(t *testing.T) {
	code, stdout, stderr := runCmd(t, "stabilize", "stabdl2", "stabnaive")
	if code != 0 {
		t.Fatalf("stabilize exited %d: %s", code, stderr)
	}
	for _, want := range []string{
		"stabilize: stabdl2",
		"converged: 81/81 within amnesty",
		"check:     CONSISTENT",
		"stabilize: stabnaive",
		"check:     CERTIFIED",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report lacks %q:\n%s", want, stdout)
		}
	}
}

func TestStabilizeTableAndWitness(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "scerts")
	code, stdout, stderr := runCmd(t, "stabilize", "-table", "-o", dir, "altbit")
	if code != 0 {
		t.Fatalf("stabilize -table exited %d: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if lines[0] != "protocol\tseed\tamnesty\tcharges\tconverged\tproperty" {
		t.Fatalf("TSV header drifted: %q", lines[0])
	}
	// 54 seeds plus the header row.
	if len(lines) != 55 {
		t.Fatalf("got %d TSV rows, want 55:\n%s", len(lines), stdout)
	}
	wl, err := trace.ReadFile(filepath.Join(dir, "altbit-stabilize-DL1.nft"))
	if err != nil {
		t.Fatalf("witness: %v", err)
	}
	rr, err := replay.Run(wl)
	if err != nil {
		t.Fatalf("witness replay: %v", err)
	}
	if rr.Divergence != nil {
		t.Fatalf("witness diverged: %v", rr.Divergence)
	}
}

func TestStabilizeUnknownProtocol(t *testing.T) {
	code, _, stderr := runCmd(t, "stabilize", "nosuch")
	if code != 2 || !strings.Contains(stderr, "unknown protocol") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestVerifyUnknownProtocol(t *testing.T) {
	code, _, stderr := runCmd(t, "verify", "nosuch")
	if code != 2 || !strings.Contains(stderr, "unknown protocol") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestAuditUnknownProtocol(t *testing.T) {
	code, _, stderr := runCmd(t, "audit", "nosuch")
	if code != 2 || !strings.Contains(stderr, "unknown protocol") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestAuditJSONReport(t *testing.T) {
	code, stdout, stderr := runCmd(t, "audit", "-json", "altbit")
	if code != 0 {
		t.Fatalf("audit -json exited %d: %s", code, stderr)
	}
	var rep struct {
		Protocol  string `json:"protocol"`
		Verdict   string `json:"verdict"`
		KT        int    `json:"kt"`
		KR        int    `json:"kr"`
		Exhausted bool   `json:"exhausted"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, stdout)
	}
	if rep.Protocol != "altbit" || rep.Verdict != "CERTIFIED" || rep.KT != 4 || rep.KR != 2 || !rep.Exhausted {
		t.Fatalf("JSON report fields drifted: %+v", rep)
	}
}

func TestAuditJSONRejectsSweeps(t *testing.T) {
	code, _, stderr := runCmd(t, "audit", "-json", "-sweep", "altbit")
	if code != 2 || !strings.Contains(stderr, "-json applies to verdict reports") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

// vetmodPath is the checked-in two-package facts fixture module under
// internal/analyze/testdata.
func vetmodPath(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "..", "..", "internal", "analyze", "testdata", "vetmod")
}

// TestCheckJSONFactsFixture drives the standalone loader end to end over the
// facts fixture: the cross-package statekey finding appears in -json output
// with facts on, and vanishes with -nofacts.
func TestCheckJSONFactsFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(vetmodPath(t)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	code, stdout, stderr := runCmd(t, "check", "-json", "./...")
	if code != 1 {
		t.Fatalf("check -json exited %d, want 1: %s%s", code, stdout, stderr)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		Allowed  bool   `json:"allowed"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("check -json output is not valid JSON: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "statekey" || d.Allowed ||
		!strings.Contains(d.Message, "StateKey calls helper.Render") ||
		!strings.HasSuffix(d.File, "keys.go") || d.Line == 0 {
		t.Fatalf("unexpected diagnostic: %+v", d)
	}

	code, stdout, stderr = runCmd(t, "check", "-nofacts", "./...")
	if code != 0 {
		t.Fatalf("check -nofacts exited %d, want 0 (the finding needs the facts channel): %s%s", code, stdout, stderr)
	}
}

func TestCheckCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	code, stdout, stderr := runCmd(t, "check", "repro/internal/mset")
	if code != 0 {
		t.Fatalf("check exited %d: %s%s", code, stdout, stderr)
	}
}

func TestVettoolBanner(t *testing.T) {
	// cmd/go requires "<name> version devel ... buildID=<hash>".
	// VettoolMain prints to the real stdout; only the exit code is checked
	// here — the full protocol is exercised by TestGoVetIntegration.
	code, _, _ := runCmd(t, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
}

// TestGoVetIntegration builds nfvet and drives it through the real go vet
// -vettool protocol over a lint-clean package and a package with a known
// finding, checking both exit statuses.
func TestGoVetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet; skipped in -short")
	}
	tool := filepath.Join(t.TempDir(), "nfvet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building nfvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "repro/internal/mset", "repro/internal/protocol")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean packages: %v\n%s", err, out)
	}

	// A module with a finding: synthesize one in a temp dir.
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module vetfixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "math/rand"

func main() {
	_ = rand.Intn(10)
}
`)
	vet = exec.Command("go", "vet", "-vettool="+tool, ".")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed a package with a globalrand finding:\n%s", out)
	}
	if !strings.Contains(string(out), "rand.Intn uses the process-global source") {
		t.Fatalf("vet output lacks the expected finding:\n%s", out)
	}
}

// TestGoVetFactsIntegration drives the facts fixture through the real
// cmd/go vet driver: cmd/go runs the helper unit VetxOnly, feeds its vetx to
// the keys unit via PackageVetx, and the cross-package statekey finding must
// surface in the vet output.
func TestGoVetFactsIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet; skipped in -short")
	}
	tool := filepath.Join(t.TempDir(), "nfvet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building nfvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = vetmodPath(t)
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed the facts fixture; the vetx channel regressed to empty:\n%s", out)
	}
	if !strings.Contains(string(out), "StateKey calls helper.Render") ||
		!strings.Contains(string(out), "fmt.Sprint") {
		t.Fatalf("vet output lacks the cross-package chain:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
