package nonfifo

import (
	"repro/internal/adversary"
	"repro/internal/explore"
	"repro/internal/transport"
)

// Bounded model checking (see internal/explore).
type (
	// ExploreConfig bounds an exhaustive state-space exploration.
	ExploreConfig = explore.Config
	// ExploreReport is the outcome: a shortest counterexample or a
	// safe-within-bounds certificate.
	ExploreReport = explore.Report
)

// Explore exhaustively enumerates every interleaving of protocol steps and
// channel behaviours within the configured bounds. It returns a shortest
// safety counterexample when one exists, or certifies the protocol safe
// within the bounds (Report.Exhausted). This is the reproduction's
// strongest adversary: the paper's channel nondeterminism, exhausted.
func Explore(p Protocol, cfg ExploreConfig) (ExploreReport, error) {
	return explore.Explore(p, cfg)
}

// Transport layer (see internal/transport): the paper's closing remark,
// "all our results can be extended to transport layer protocols over
// non-FIFO virtual links".
type (
	// SlidingWindowProtocol is a sliding window transport protocol over a
	// non-FIFO virtual link.
	SlidingWindowProtocol = transport.SlidingWindow
)

// SlidingWindow returns a sliding window transport protocol with sequence
// space size s (0 = unbounded) and window w. Finite sequence spaces are
// breakable over non-FIFO virtual links — the transport-layer face of
// Theorem 3.1 — while the unbounded variant is safe.
func SlidingWindow(s, w int) SlidingWindowProtocol { return transport.New(s, w) }

// GoBackN returns a go-back-N transport protocol (no receive buffer,
// cumulative acks) with sequence space size s (0 = unbounded) and window
// w. Like SlidingWindow, any finite sequence space is breakable over a
// non-FIFO virtual link; the cumulative-ack aliasing additionally produces
// deadlocks that Explore's CheckDeadlock option detects.
func GoBackN(s, w int) Protocol { return transport.NewGoBackN(s, w) }

// AdaptedTransport is a transport endpoint pair wrapped as an auditable
// protocol: same name, same packets, same StateKeys, plus declared Bounds
// and a mod-S ControlKey quotient that makes the joint control space finite
// for S > 0.
type AdaptedTransport = transport.Adapted

// AdaptTransport wraps a SlidingWindow or GoBackN protocol for the static
// boundness audit (AuditProtocol, AuditSweep, `nfvet audit`). The wrapped
// form is behaviour-identical to the native one — the differential
// conformance harness (internal/conformance) holds it to that, event for
// event, on recorded schedules including pumped livelock certificates.
func AdaptTransport(p Protocol) (AdaptedTransport, error) { return transport.Adapt(p) }

// Induction machinery (the instrumented Theorem 3.1 construction).
type (
	// InductionPhase is one step of the accumulation history.
	InductionPhase = adversary.InductionPhase
	// InductionReport is the outcome of the construction.
	InductionReport = adversary.InductionReport
)

// Induction runs the proof of Theorem 3.1 as an adaptive, instrumented
// procedure: strand `target` copies of every data header the protocol
// uses, then simulate a closing extension out of the stale copies.
func Induction(p Protocol, target, maxMessages int, cfg ReplayConfig) (InductionReport, error) {
	return adversary.Induction(p, target, maxMessages, cfg)
}
