package protocol

import (
	"fmt"
	"testing"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// everyProtocol lists every descriptor in the package, including the
// deliberately broken ones: the endpoint *interface contract* must hold for
// all of them, whatever their protocol-level correctness.
func everyProtocol() []Protocol {
	return []Protocol{
		NewSeqNum(),
		NewAltBit(),
		NewCntLinear(),
		NewCntExp(),
		NewCntK(2),
		NewCntK(5),
		NewCheat(1),
		NewCheat(3),
		NewCntNoBind(),
		NewLivelock(),
		NewStabDL(2),
		NewStabNaive(),
	}
}

// TestContractAppendKeysMatch: the allocation-free Append*Key renderings
// must stay byte-identical to the string-returning StateKey/ControlKey at
// every reachable state — the interned cores dedup and hash on the appended
// bytes, so a divergence here is a silent wrong-answer in verify and fuzz.
// The endpoints are driven through a full exchange (including an ack round
// trip and a duplicate delivery) so conditional key segments show up.
func TestContractAppendKeysMatch(t *testing.T) {
	for _, p := range everyProtocol() {
		tx, rx := p.New(channel.NoGenie{}, channel.NoGenie{})
		check := func(step string) {
			t.Helper()
			if got, want := string(AppendStateKeyOf(nil, tx)), tx.StateKey(); got != want {
				t.Fatalf("%s %s: transmitter AppendStateKey %q != StateKey %q", p.Name(), step, got, want)
			}
			if got, want := string(AppendStateKeyOf(nil, rx)), rx.StateKey(); got != want {
				t.Fatalf("%s %s: receiver AppendStateKey %q != StateKey %q", p.Name(), step, got, want)
			}
			if got, want := string(AppendControlKeyOf(nil, tx)), ControlKeyOf(tx); got != want {
				t.Fatalf("%s %s: transmitter AppendControlKey %q != ControlKeyOf %q", p.Name(), step, got, want)
			}
			if got, want := string(AppendControlKeyOf(nil, rx)), ControlKeyOf(rx); got != want {
				t.Fatalf("%s %s: receiver AppendControlKey %q != ControlKeyOf %q", p.Name(), step, got, want)
			}
			// Appending must extend, not clobber, an existing prefix.
			pre := []byte("prefix|")
			if got := string(AppendStateKeyOf(pre, tx)); got != "prefix|"+tx.StateKey() {
				t.Fatalf("%s %s: AppendStateKeyOf clobbered its prefix: %q", p.Name(), step, got)
			}
		}
		check("fresh")
		for round := 0; round < 3; round++ {
			tx.SendMsg(fmt.Sprintf("m%d", round))
			check("after SendMsg")
			pkt, ok := tx.NextPkt()
			if !ok {
				break
			}
			check("after NextPkt")
			rx.DeliverPkt(pkt)
			rx.DeliverPkt(pkt) // duplicate delivery: hits the stale branches
			rx.TakeDelivered()
			check("after DeliverPkt")
			for {
				ack, ok := rx.NextPkt()
				if !ok {
					break
				}
				tx.DeliverPkt(ack)
			}
			check("after ack round")
		}
	}
}

// TestContractDescriptor: Name is non-empty and stable; HeaderBound is
// consistent with itself.
func TestContractDescriptor(t *testing.T) {
	for _, p := range everyProtocol() {
		if p.Name() == "" || p.Name() != p.Name() {
			t.Fatalf("%T: bad Name", p)
		}
		k1, b1 := p.HeaderBound()
		k2, b2 := p.HeaderBound()
		if k1 != k2 || b1 != b2 {
			t.Fatalf("%s: HeaderBound not stable", p.Name())
		}
		if b1 && k1 <= 0 {
			t.Fatalf("%s: bounded alphabet with k=%d", p.Name(), k1)
		}
	}
}

// TestContractNilGenies: every protocol must accept nil genies.
func TestContractNilGenies(t *testing.T) {
	for _, p := range everyProtocol() {
		tx, rx := p.New(nil, nil)
		if tx == nil || rx == nil {
			t.Fatalf("%s: nil endpoints", p.Name())
		}
		// Endpoints must be usable immediately.
		tx.SendMsg("m")
		_, _ = tx.NextPkt()
		rx.DeliverPkt(ioa.Packet{Header: "??"})
		_ = rx.TakeDelivered()
	}
}

// TestContractFreshEndpointsAgree: two fresh pairs have identical state
// keys, and the keys change (or at least remain valid) under inputs.
func TestContractFreshEndpointsAgree(t *testing.T) {
	for _, p := range everyProtocol() {
		t1, r1 := p.New(channel.NoGenie{}, channel.NoGenie{})
		t2, r2 := p.New(channel.NoGenie{}, channel.NoGenie{})
		if t1.StateKey() != t2.StateKey() {
			t.Fatalf("%s: fresh transmitters differ: %s vs %s", p.Name(), t1.StateKey(), t2.StateKey())
		}
		if r1.StateKey() != r2.StateKey() {
			t.Fatalf("%s: fresh receivers differ", p.Name())
		}
		t1.SendMsg("m")
		if t1.StateKey() == t2.StateKey() {
			t.Fatalf("%s: SendMsg did not change the transmitter state key", p.Name())
		}
	}
}

// TestContractCloneIsDeep: mutating a clone never affects the original.
func TestContractCloneIsDeep(t *testing.T) {
	for _, p := range everyProtocol() {
		tx, rx := p.New(channel.NoGenie{}, channel.NoGenie{})
		tx.SendMsg("m0")
		tx.SendMsg("m1") // exercise the queue path
		keyT := tx.StateKey()
		tc := tx.Clone()
		tc.SendMsg("m2")
		if pk, ok := tc.NextPkt(); ok {
			rx.DeliverPkt(pk) // receiver of the ORIGINAL pair; harmless
		}
		tc.DeliverPkt(ioa.Packet{Header: "k0"})
		tc.DeliverPkt(ioa.Packet{Header: "a0"})
		if tx.StateKey() != keyT {
			t.Fatalf("%s: clone mutation changed original transmitter", p.Name())
		}

		rx2 := rx.Clone()
		keyR := rx.StateKey()
		rx2.DeliverPkt(ioa.Packet{Header: "d0", Payload: "x"})
		rx2.DeliverPkt(ioa.Packet{Header: "c0", Payload: "x"})
		_, _ = rx2.NextPkt()
		_ = rx2.TakeDelivered()
		if rx.StateKey() != keyR {
			t.Fatalf("%s: clone mutation changed original receiver", p.Name())
		}
	}
}

// TestContractStateSizePositive: the space proxy is positive once a
// message is pending, and never negative.
func TestContractStateSizePositive(t *testing.T) {
	for _, p := range everyProtocol() {
		tx, rx := p.New(channel.NoGenie{}, channel.NoGenie{})
		if tx.StateSize() < 0 || rx.StateSize() < 0 {
			t.Fatalf("%s: negative state size", p.Name())
		}
		tx.SendMsg("payload")
		if tx.StateSize() <= 0 {
			t.Fatalf("%s: state size should be positive with a pending message", p.Name())
		}
	}
}

// TestContractBusyDrivesOutput: while Busy, correct protocols must keep an
// output action enabled (retransmission); when idle, no data output.
func TestContractBusyDrivesOutput(t *testing.T) {
	for _, p := range everyProtocol() {
		tx, _ := p.New(channel.NoGenie{}, channel.NoGenie{})
		if tx.Busy() {
			t.Fatalf("%s: fresh transmitter busy", p.Name())
		}
		if _, ok := tx.NextPkt(); ok {
			t.Fatalf("%s: idle transmitter has enabled output", p.Name())
		}
		tx.SendMsg("m")
		if !tx.Busy() {
			t.Fatalf("%s: transmitter not busy after SendMsg", p.Name())
		}
		for i := 0; i < 3; i++ {
			if _, ok := tx.NextPkt(); !ok {
				t.Fatalf("%s: busy transmitter must keep an output enabled (step %d)", p.Name(), i)
			}
		}
	}
}

// TestContractGarbageTolerance: endpoints must ignore packets outside
// their alphabet without panicking or delivering.
func TestContractGarbageTolerance(t *testing.T) {
	garbage := []ioa.Packet{
		{}, {Header: "zz"}, {Header: "d"}, {Header: "a"}, {Header: "c"},
		{Header: "k"}, {Header: "s"}, {Header: "t"}, {Header: "dXY"},
		{Header: "c9:9"}, {Header: "k9:9"}, {Header: "sNaN", Payload: "x"},
	}
	for _, p := range everyProtocol() {
		tx, rx := p.New(channel.NoGenie{}, channel.NoGenie{})
		tx.SendMsg("m")
		for _, g := range garbage {
			tx.DeliverPkt(g)
			rx.DeliverPkt(g)
		}
		if got := rx.TakeDelivered(); len(got) != 0 {
			t.Fatalf("%s: garbage delivered: %v", p.Name(), got)
		}
	}
}

// TestContractGenieRebinding: endpoints that consult genies must expose
// the rebinding hooks and tolerate nil.
func TestContractGenieRebinding(t *testing.T) {
	for _, p := range []Protocol{NewCntLinear(), NewCntExp(), NewCheat(1), NewCntNoBind(), NewCntK(3)} {
		tx, rx := p.New(channel.NoGenie{}, channel.NoGenie{})
		tu, ok := tx.(AckGenieUser)
		if !ok {
			t.Fatalf("%s: transmitter lacks AckGenieUser", p.Name())
		}
		tu.SetAckGenie(nil) // must coerce to NoGenie, not panic later
		ru, ok := rx.(DataGenieUser)
		if !ok {
			t.Fatalf("%s: receiver lacks DataGenieUser", p.Name())
		}
		ru.SetDataGenie(nil)
		tx.SendMsg("m")
		if pk, ok := tx.NextPkt(); ok {
			rx.DeliverPkt(pk)
		}
	}
}

// TestContractQueueing: submitting k messages delivers all k in order over
// a perfect exchange (livelock excluded — it is deliberately not live).
func TestContractQueueing(t *testing.T) {
	for _, p := range everyProtocol() {
		if p.Name() == "livelock" {
			continue
		}
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			tx, rx := p.New(channel.NoGenie{}, channel.NoGenie{})
			var want []string
			for i := 0; i < 5; i++ {
				want = append(want, fmt.Sprintf("q%d", i))
				tx.SendMsg(want[i])
			}
			var got []string
			for steps := 0; tx.Busy() && steps < 1<<16; steps++ {
				if pk, ok := tx.NextPkt(); ok {
					rx.DeliverPkt(pk)
				}
				for {
					a, ok := rx.NextPkt()
					if !ok {
						break
					}
					tx.DeliverPkt(a)
				}
				got = append(got, rx.TakeDelivered()...)
			}
			if len(got) != len(want) {
				t.Fatalf("delivered %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("delivered %v, want %v", got, want)
				}
			}
		})
	}
}

// TestContractStateKeyReflectsQueue: queued payloads must be part of the
// state key (adversaries rely on it for memoization).
func TestContractStateKeyReflectsQueue(t *testing.T) {
	for _, p := range everyProtocol() {
		if p.Name() == "livelock" {
			continue // single-flag state; no queue
		}
		t1, _ := p.New(channel.NoGenie{}, channel.NoGenie{})
		t2, _ := p.New(channel.NoGenie{}, channel.NoGenie{})
		t1.SendMsg("a")
		t1.SendMsg("x")
		t2.SendMsg("a")
		t2.SendMsg("y")
		if t1.StateKey() == t2.StateKey() {
			t.Fatalf("%s: state key ignores queued payloads", p.Name())
		}
	}
}

// TestContractIdleNextPktPure: an unproductive NextPkt must not change the
// endpoint's observable state. The simulator's mutation version counter
// (sim.Runner.Version) does not advance on a failed output step, and the
// interned fuzz core reuses cached coverage points across it — a protocol
// that mutates on idle NextPkt would silently break that reuse.
func TestContractIdleNextPktPure(t *testing.T) {
	for _, p := range everyProtocol() {
		tx, rx := p.New(channel.NoGenie{}, channel.NoGenie{})
		// Drain the receiver so both endpoints are idle.
		for {
			if _, ok := rx.NextPkt(); !ok {
				break
			}
		}
		for i := 0; i < 3; i++ {
			kt, kr := tx.StateKey(), rx.StateKey()
			if _, ok := tx.NextPkt(); ok {
				t.Fatalf("%s: idle transmitter produced output", p.Name())
			}
			if _, ok := rx.NextPkt(); ok {
				t.Fatalf("%s: drained receiver produced output", p.Name())
			}
			if tx.StateKey() != kt || rx.StateKey() != kr {
				t.Fatalf("%s: unproductive NextPkt mutated state", p.Name())
			}
		}
	}
}
