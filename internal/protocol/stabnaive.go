package protocol

import (
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// StabNaive is the non-stabilizing control specimen for the convergence
// checker: a round-numbered stop-and-wait protocol (data "c<round>", ack
// "k<round>", rounds mod 8) whose receiver accepts only the *current* round
// and re-acknowledges only the *previous* one. From a clean start the rounds
// advance in lockstep and the protocol behaves like an 8-round alternating
// bit protocol; from a corrupted start there is no repair rule at all — if
// the endpoint rounds ever differ by more than one (a corrupted round
// counter, or a poison acknowledgement completing a message the receiver
// never saw), the transmitter retransmits a round the receiver silently
// ignores, forever. That divergence is exactly what
// stabilize.CheckConvergence certifies (via the CertifyLivelock pumping
// machinery) and what `nfvet verify -stabilize` catches exhaustively,
// in contrast to the counting repair of stabdl.
type StabNaive struct{}

// stabNaiveRounds is the round-counter modulus.
const stabNaiveRounds = 8

// NewStabNaive returns the non-stabilizing control specimen.
func NewStabNaive() StabNaive { return StabNaive{} }

// Name implements Protocol.
func (StabNaive) Name() string { return "stabnaive" }

// HeaderBound implements Protocol: c0..c7 and k0..k7.
func (StabNaive) HeaderBound() (int, bool) { return 2 * stabNaiveRounds, true }

// Bounds implements Bounded: round × busy transmitter states, round receiver
// states under the audit's submit discipline.
func (StabNaive) Bounds() Bounds {
	return Bounds{StateBounded: true, KT: 2 * stabNaiveRounds, KR: stabNaiveRounds, Headers: 2 * stabNaiveRounds}
}

// AttackBounds implements DLStatus. From a clean start the protocol is an
// 8-round alternating bit: safe until the round counter wraps, at which
// point one delayed stale copy replays an old payload — one in-transit copy
// and nine messages suffice.
func (StabNaive) AttackBounds() (int, int) { return 1, stabNaiveRounds + 1 }

// SelfStabilizing implements StabilizeStatus: the protocol is expected to
// diverge from some corrupted configuration (that is what makes it the
// control specimen), so `nfvet verify -stabilize` FAILs it if the corrupted
// space is exhausted divergence-free.
func (StabNaive) SelfStabilizing() bool { return false }

// New implements Protocol; no channel oracle is used.
func (StabNaive) New(_, _ channel.Genie) (Transmitter, Receiver) {
	return &stabNaiveT{}, &stabNaiveR{}
}

// Corruptions implements Corruptible. A single off-by-one round corruption
// on either endpoint, one garbage data packet, or one forged
// acknowledgement is already enough to desynchronize the rounds for good.
func (StabNaive) Corruptions() CorruptionSpace {
	return CorruptionSpace{
		Transmitters: []Transmitter{
			&stabNaiveT{},
			&stabNaiveT{round: 1},
		},
		Receivers: []Receiver{
			&stabNaiveR{},
			&stabNaiveR{round: 1},
		},
		DataPoison: []ioa.Packet{{Header: "c0", Payload: "z"}},
		AckPoison:  []ioa.Packet{{Header: "k0"}},
	}
}

// stabNaiveT retransmits ⟨c<round>, payload⟩ until ack k<round> arrives.
type stabNaiveT struct {
	round   int
	busy    bool
	payload string
	queue   []string
}

var _ Transmitter = (*stabNaiveT)(nil)

func (t *stabNaiveT) SendMsg(payload string) {
	if t.busy {
		t.queue = append(t.queue, payload)
		return
	}
	t.busy = true
	t.payload = payload
}

func (t *stabNaiveT) DeliverPkt(p ioa.Packet) {
	if !t.busy || p.Header != "k"+strconv.Itoa(t.round) {
		return
	}
	t.busy = false
	t.payload = ""
	t.round = (t.round + 1) % stabNaiveRounds
	if len(t.queue) > 0 {
		t.busy = true
		t.payload = t.queue[0]
		t.queue = t.queue[1:]
	}
}

func (t *stabNaiveT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	return ioa.Packet{Header: "c" + strconv.Itoa(t.round), Payload: t.payload}, true
}

func (t *stabNaiveT) Busy() bool { return t.busy || len(t.queue) > 0 }

func (t *stabNaiveT) Clone() Transmitter {
	c := *t
	c.queue = cloneQueue(t.queue)
	return &c
}

func (t *stabNaiveT) StateKey() string { return keyString(t.AppendStateKey) }

func (t *stabNaiveT) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "stabnaiveT{round=").d(t.round).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" q=").queue(t.queue).s("}").bytes()
}

func (t *stabNaiveT) StateSize() int {
	return 2 + len(t.payload) + queueBytes(t.queue)
}

// stabNaiveR accepts only the current round, re-acks only the previous one,
// and silently ignores everything else — the missing repair rule.
type stabNaiveR struct {
	round     int
	delivered []string
	acks      []ioa.Packet
}

var _ Receiver = (*stabNaiveR)(nil)

func (r *stabNaiveR) DeliverPkt(p ioa.Packet) {
	rest, ok := strings.CutPrefix(p.Header, "c")
	if !ok {
		return
	}
	j, err := strconv.Atoi(rest)
	if err != nil || j < 0 || j >= stabNaiveRounds {
		return
	}
	switch j {
	case r.round:
		r.delivered = append(r.delivered, p.Payload)
		r.acks = append(r.acks, ioa.Packet{Header: "k" + rest})
		r.round = (r.round + 1) % stabNaiveRounds
	case (r.round + stabNaiveRounds - 1) % stabNaiveRounds:
		// Duplicate of the round just accepted: repair a lost ack.
		r.acks = append(r.acks, ioa.Packet{Header: "k" + rest})
	default:
		// Any other round is silently dropped — after a corruption the
		// endpoints never find each other again.
	}
}

func (r *stabNaiveR) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *stabNaiveR) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *stabNaiveR) Clone() Receiver {
	c := *r
	c.delivered = cloneQueue(r.delivered)
	if len(r.acks) > 0 {
		c.acks = make([]ioa.Packet, len(r.acks))
		copy(c.acks, r.acks)
	} else {
		c.acks = nil
	}
	return &c
}

func (r *stabNaiveR) StateKey() string { return keyString(r.AppendStateKey) }

func (r *stabNaiveR) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "stabnaiveR{round=").d(r.round).s(" pendAcks=").d(len(r.acks)).
		s(" pendDeliv=").d(len(r.delivered)).s("}").bytes()
}

func (r *stabNaiveR) StateSize() int {
	return 1 + len(r.acks) + queueBytes(r.delivered)
}
