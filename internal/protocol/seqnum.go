package protocol

import (
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// SeqNum is the naive protocol from the paper's introduction: "the naive
// protocol delivers the i-th message using the i-th header". Data packets
// carry header "d<i>" and acknowledgements "a<i>", so the alphabet grows
// linearly with the number of messages — exactly n data headers for n
// messages — while the per-endpoint state is a single counter, i.e.
// O(log n) space.
//
// Because every message has a private header, stale copies on the non-FIFO
// channel are harmless: an old data packet re-delivers a sequence number
// the receiver has already passed, and an old ack refers to a message the
// transmitter has already confirmed. The protocol is safe and live over
// arbitrary non-FIFO behaviour, at the cost Theorem 3.1 proves unavoidable:
// unbounded headers.
type SeqNum struct{}

// NewSeqNum returns the naive sequence-number protocol descriptor.
func NewSeqNum() SeqNum { return SeqNum{} }

// Name implements Protocol.
func (SeqNum) Name() string { return "seqnum" }

// HeaderBound implements Protocol: the alphabet is unbounded.
func (SeqNum) HeaderBound() (int, bool) { return 0, false }

// Bounds implements Bounded: the sequence counter is real control state
// (headers are derived from it), so the reachable control space and the
// header alphabet both grow with the number of messages. This is the
// protocol's escape from Theorem 2.1 — no finite k_t·k_r exists to pump.
func (SeqNum) Bounds() Bounds { return Bounds{StateBounded: false} }

// AttackBounds implements DLStatus: (0, 0) — private per-message headers
// make stale copies harmless at every occupancy, so the verifier must prove
// DL-safety of any space it can exhaust.
func (SeqNum) AttackBounds() (int, int) { return 0, 0 }

// New implements Protocol; the genies are ignored (no oracle needed).
func (SeqNum) New(_, _ channel.Genie) (Transmitter, Receiver) {
	return &seqNumT{}, &seqNumR{}
}

type seqNumT struct {
	seq     int // sequence number of the current message
	busy    bool
	payload string
	queue   []string
}

var _ Transmitter = (*seqNumT)(nil)

func (t *seqNumT) SendMsg(payload string) {
	if t.busy {
		t.queue = append(t.queue, payload)
		return
	}
	t.busy = true
	t.payload = payload
}

func (t *seqNumT) DeliverPkt(p ioa.Packet) {
	if !t.busy {
		return
	}
	if p.Header == "a"+strconv.Itoa(t.seq) {
		t.busy = false
		t.payload = ""
		t.seq++
		if len(t.queue) > 0 {
			t.busy = true
			t.payload = t.queue[0]
			t.queue = t.queue[1:]
		}
	}
	// Acks for already-confirmed messages are stale; ignore.
}

func (t *seqNumT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	return ioa.Packet{Header: "d" + strconv.Itoa(t.seq), Payload: t.payload}, true
}

func (t *seqNumT) Busy() bool { return t.busy || len(t.queue) > 0 }

func (t *seqNumT) Clone() Transmitter {
	c := *t
	c.queue = cloneQueue(t.queue)
	return &c
}

func (t *seqNumT) StateKey() string { return keyString(t.AppendStateKey) }

func (t *seqNumT) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "seqnumT{seq=").d(t.seq).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" q=").queue(t.queue).s("}").bytes()
}

// StateSize is O(log n): the counter's decimal width plus pending payloads.
func (t *seqNumT) StateSize() int {
	return len(strconv.Itoa(t.seq)) + len(t.payload) + queueBytes(t.queue)
}

type seqNumR struct {
	next      int // next expected sequence number
	delivered []string
	acks      []ioa.Packet
}

var _ Receiver = (*seqNumR)(nil)

func (r *seqNumR) DeliverPkt(p ioa.Packet) {
	if !strings.HasPrefix(p.Header, "d") {
		return
	}
	seq, err := strconv.Atoi(p.Header[1:])
	if err != nil {
		return
	}
	switch {
	case seq == r.next:
		r.delivered = append(r.delivered, p.Payload)
		r.next++
		r.acks = append(r.acks, ioa.Packet{Header: "a" + strconv.Itoa(seq)})
	case seq < r.next:
		// Stale copy of an already delivered message: re-acknowledge so a
		// transmitter whose ack was lost can make progress, never deliver.
		r.acks = append(r.acks, ioa.Packet{Header: "a" + strconv.Itoa(seq)})
	default:
		// seq > next can only be a corrupted or adversarial packet; the
		// transmitter never runs ahead. Ignore.
	}
}

func (r *seqNumR) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *seqNumR) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *seqNumR) Clone() Receiver {
	c := *r
	c.delivered = cloneQueue(r.delivered)
	if len(r.acks) > 0 {
		c.acks = make([]ioa.Packet, len(r.acks))
		copy(c.acks, r.acks)
	} else {
		c.acks = nil
	}
	return &c
}

func (r *seqNumR) StateKey() string { return keyString(r.AppendStateKey) }

func (r *seqNumR) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "seqnumR{next=").d(r.next).s(" pendAcks=").d(len(r.acks)).
		s(" pendDeliv=").d(len(r.delivered)).s("}").bytes()
}

func (r *seqNumR) StateSize() int {
	return len(strconv.Itoa(r.next)) + len(r.acks) + queueBytes(r.delivered)
}
