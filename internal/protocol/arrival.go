package protocol

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// Arrival is a stop-and-wait sequence-number protocol whose receiver
// delivers packets in *arrival order*, deduplicated per header, instead of
// buffering out-of-order sequence numbers the way seqnum does. From a clean
// start the stop-and-wait discipline makes the two orders coincide (header
// i+1 is never sent before header i is acknowledged), so the protocol is
// DL-sound at every occupancy. From a corrupted start it is the canonical
// DL2 (FIFO delivery order) casualty: one poison data packet carrying a
// future header is delivered ahead of the frontier, and when the genuine
// packet for the skipped message arrives later the receiver emits it out of
// order — the late-arrival fault the stabilize amnesty classifier charges as
// DL2. It exists so the verifier's on-the-fly DL2 property has a specimen
// that fails DL2 without also failing DL1 correspondence outright.
//
// Like livelock and cntnobind it is deliberately kept out of the registry
// (it is a specimen, not a contender); replay.LookupProtocol resolves it by
// name for the stabilize tooling.
type Arrival struct{}

// NewArrival returns the arrival-order specimen.
func NewArrival() Arrival { return Arrival{} }

// Name implements Protocol.
func (Arrival) Name() string { return "arrival" }

// HeaderBound implements Protocol: the i-th message uses header s<i>, so the
// alphabet grows with the number of messages, as for seqnum.
func (Arrival) HeaderBound() (int, bool) { return 0, false }

// Bounds implements Bounded: the sequence counter and the receiver's
// seen-header set grow with the number of messages.
func (Arrival) Bounds() Bounds { return Bounds{StateBounded: false} }

// AttackBounds implements DLStatus: clean-start stop-and-wait never has two
// distinct headers in flight, so the protocol is DL-sound at every
// occupancy. (Only a corrupted start breaks it; that is what
// SelfStabilizing declares.)
func (Arrival) AttackBounds() (int, int) { return 0, 0 }

// SelfStabilizing implements StabilizeStatus: a single poison packet causes
// more faults than its amnesty budget forgives, so the protocol is expected
// to diverge from its corrupted space.
func (Arrival) SelfStabilizing() bool { return false }

// New implements Protocol; no channel oracle is used.
func (Arrival) New(_, _ channel.Genie) (Transmitter, Receiver) {
	return &arrivalT{}, &arrivalR{}
}

// Corruptions implements Corruptible: the only corruption needed is one
// poison packet carrying the second message's header and payload — it gets
// delivered ahead of the first message and forces the late arrival.
func (Arrival) Corruptions() CorruptionSpace {
	return CorruptionSpace{
		Transmitters: []Transmitter{&arrivalT{}},
		Receivers:    []Receiver{&arrivalR{}},
		DataPoison:   []ioa.Packet{{Header: "s1", Payload: "m1"}},
	}
}

// arrivalT is a stop-and-wait transmitter: send ⟨s<seq>, payload⟩ until ack
// a<seq> arrives, then advance seq.
type arrivalT struct {
	seq     int
	busy    bool
	payload string
	queue   []string
}

var _ Transmitter = (*arrivalT)(nil)

func (t *arrivalT) SendMsg(payload string) {
	if t.busy {
		t.queue = append(t.queue, payload)
		return
	}
	t.busy = true
	t.payload = payload
}

func (t *arrivalT) DeliverPkt(p ioa.Packet) {
	if !t.busy || p.Header != "a"+strconv.Itoa(t.seq) {
		return
	}
	t.busy = false
	t.payload = ""
	t.seq++
	if len(t.queue) > 0 {
		t.busy = true
		t.payload = t.queue[0]
		t.queue = t.queue[1:]
	}
}

func (t *arrivalT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	return ioa.Packet{Header: "s" + strconv.Itoa(t.seq), Payload: t.payload}, true
}

func (t *arrivalT) Busy() bool { return t.busy || len(t.queue) > 0 }

func (t *arrivalT) Clone() Transmitter {
	c := *t
	c.queue = cloneQueue(t.queue)
	return &c
}

func (t *arrivalT) StateKey() string { return keyString(t.AppendStateKey) }

func (t *arrivalT) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "arrivalT{seq=").d(t.seq).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" q=").queue(t.queue).s("}").bytes()
}

func (t *arrivalT) StateSize() int {
	return 2 + len(t.payload) + queueBytes(t.queue)
}

// arrivalR delivers each header's payload on first receipt, in arrival
// order, and acknowledges every data packet.
type arrivalR struct {
	seen      []int // sorted distinct headers already delivered
	delivered []string
	acks      []ioa.Packet
}

var _ Receiver = (*arrivalR)(nil)

func (r *arrivalR) DeliverPkt(p ioa.Packet) {
	rest, ok := strings.CutPrefix(p.Header, "s")
	if !ok {
		return
	}
	j, err := strconv.Atoi(rest)
	if err != nil || j < 0 {
		return
	}
	// Acknowledge every receipt (also duplicates, repairing lost acks).
	r.acks = append(r.acks, ioa.Packet{Header: "a" + rest})
	i := sort.SearchInts(r.seen, j)
	if i < len(r.seen) && r.seen[i] == j {
		return // duplicate header: already delivered
	}
	r.seen = append(r.seen, 0)
	copy(r.seen[i+1:], r.seen[i:])
	r.seen[i] = j
	r.delivered = append(r.delivered, p.Payload)
}

func (r *arrivalR) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *arrivalR) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *arrivalR) Clone() Receiver {
	c := *r
	if len(r.seen) > 0 {
		c.seen = make([]int, len(r.seen))
		copy(c.seen, r.seen)
	} else {
		c.seen = nil
	}
	c.delivered = cloneQueue(r.delivered)
	if len(r.acks) > 0 {
		c.acks = make([]ioa.Packet, len(r.acks))
		copy(c.acks, r.acks)
	} else {
		c.acks = nil
	}
	return &c
}

func (r *arrivalR) StateKey() string { return keyString(r.AppendStateKey) }

func (r *arrivalR) AppendStateKey(dst []byte) []byte {
	k := keyTo(dst, "arrivalR{seen=")
	for i, j := range r.seen {
		if i > 0 {
			k = k.s(",")
		}
		k = k.d(j)
	}
	return k.s(" pendAcks=").d(len(r.acks)).
		s(" pendDeliv=").d(len(r.delivered)).s("}").bytes()
}

func (r *arrivalR) StateSize() int {
	return 1 + len(r.seen) + len(r.acks) + queueBytes(r.delivered)
}
