package protocol

import (
	"strconv"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// The counting protocols use a four-letter alphabet: data packets "c0"/"c1"
// and acknowledgement packets "k0"/"k1". Like the alternating bit protocol
// they alternate a phase bit per message, but unlike it they survive
// non-FIFO behaviour by *outnumbering* stale copies: an endpoint accepts a
// phase only after receiving strictly more same-bit copies than could
// possibly be stale.
//
// The stale bound comes from the channel genie (see DESIGN.md §2): at phase
// start the endpoint snapshots the number of in-transit copies of the
// phase's header. Every one of those copies is stale — the peer has not yet
// sent any fresh copy — and any copy delivered later was either in transit
// at the snapshot (counted) or sent afterwards (fresh). Receiving
// snapshot+1 same-bit copies therefore proves at least one is fresh.
//
// Three acceptance-threshold modes realise three protocols:
//
//	modeLinear  threshold = stale snapshot
//	            → Θ(packets in transit) packets per message: the tight
//	              upper-bound shape of Theorem 4.1 ([Afe88]).
//	modeExp     threshold = max(stale snapshot, all same-bit copies ever
//	            received before the phase)
//	            → pessimistic accounting in the style of [AFWZ88]: the
//	              threshold doubles with each same-bit phase, so packet
//	              cost is exponential in the number of messages even on a
//	              perfect channel.
//	modeCheat   threshold = max(0, stale snapshot − d)
//	            → deliberately under-provisioned by d copies; the replay
//	              adversary exploits exactly this gap to produce a DL1
//	              violation, demonstrating the Theorem 4.1 mechanism.
type countingMode int

const (
	modeLinear countingMode = iota + 1
	modeExp
	modeCheat
	modeNoBind
)

func (m countingMode) String() string {
	switch m {
	case modeLinear:
		return "cntlinear"
	case modeExp:
		return "cntexp"
	case modeCheat:
		return "cheat"
	case modeNoBind:
		return "cntnobind"
	default:
		return "counting(" + strconv.Itoa(int(m)) + ")"
	}
}

func dataHeader(bit int) string { return "c" + strconv.Itoa(bit) }
func ackHeader(bit int) string  { return "k" + strconv.Itoa(bit) }

// CntLinear is the Afek-style genie-aided counting protocol.
type CntLinear struct{}

// NewCntLinear returns the linear counting protocol descriptor.
func NewCntLinear() CntLinear { return CntLinear{} }

// Name implements Protocol.
func (CntLinear) Name() string { return "cntlinear" }

// HeaderBound implements Protocol: {c0, c1, k0, k1}.
func (CntLinear) HeaderBound() (int, bool) { return 4, true }

// Bounds implements Bounded: with the ever/sent metrics counters quotiented
// away (see the ControlKey methods — modeLinear never reads them), every
// remaining component is capped by the channel occupancy, so the control
// space under bounded occupancy is finite.
func (CntLinear) Bounds() Bounds { return Bounds{StateBounded: true, Headers: 4} }

// AttackBounds implements DLStatus: (0, 0) — the genie-snapshot threshold
// outnumbers every stale copy, so no occupancy admits a DL violation.
func (CntLinear) AttackBounds() (int, int) { return 0, 0 }

// New implements Protocol.
func (CntLinear) New(dataGenie, ackGenie channel.Genie) (Transmitter, Receiver) {
	return newCountingPair(modeLinear, 0, dataGenie, ackGenie)
}

// CntExp is the AFWZ-style pessimistic counting protocol.
type CntExp struct{}

// NewCntExp returns the exponential counting protocol descriptor.
func NewCntExp() CntExp { return CntExp{} }

// Name implements Protocol.
func (CntExp) Name() string { return "cntexp" }

// HeaderBound implements Protocol: {c0, c1, k0, k1}.
func (CntExp) HeaderBound() (int, bool) { return 4, true }

// Bounds implements Bounded: the pessimistic thresholds *read* the ever
// counters (startPhase/snapshot take the max with them), so no finite
// control quotient exists — the acceptance threshold itself grows without
// bound with channel history. Declared unbounded; the auditor verifies the
// enumeration indeed blows past any fixed state budget.
func (CntExp) Bounds() Bounds { return Bounds{StateBounded: false, Headers: 4} }

// AttackBounds implements DLStatus: (0, 0) — the pessimistic threshold is
// never below the safe one, so the protocol inherits cntlinear's safety.
func (CntExp) AttackBounds() (int, int) { return 0, 0 }

// New implements Protocol.
func (CntExp) New(dataGenie, ackGenie channel.Genie) (Transmitter, Receiver) {
	return newCountingPair(modeExp, 0, dataGenie, ackGenie)
}

// Cheat is cntlinear with its acceptance threshold lowered by D copies.
// It exists to be attacked: for any D ≥ 1 the replay adversary finds a
// DL1-violating execution, showing that sending fewer than
// stale-copies-many packets per message is unsafe, which is the content of
// Theorem 4.1's lower bound.
type Cheat struct {
	// D is the under-provisioning: how many copies short of the safe
	// threshold the receiver accepts.
	D int
}

// NewCheat returns the under-provisioned counting protocol descriptor.
func NewCheat(d int) Cheat { return Cheat{D: d} }

// Name implements Protocol.
func (c Cheat) Name() string { return "cheat" + strconv.Itoa(c.D) }

// HeaderBound implements Protocol: {c0, c1, k0, k1}.
func (Cheat) HeaderBound() (int, bool) { return 4, true }

// Bounds implements Bounded: same control quotient as cntlinear — the
// lowered threshold breaks DL1, not boundness.
func (Cheat) Bounds() Bounds { return Bounds{StateBounded: true, Headers: 4} }

// AttackBounds implements DLStatus. Exploiting the under-provisioned
// threshold needs a phase whose stale snapshot is positive — the expected
// bit must cycle back with an old copy still in transit — so two copies on
// the data channel and three messages suffice for every D ≥ 1.
func (Cheat) AttackBounds() (int, int) { return 2, 3 }

// New implements Protocol.
func (c Cheat) New(dataGenie, ackGenie channel.Genie) (Transmitter, Receiver) {
	return newCountingPair(modeCheat, c.D, dataGenie, ackGenie)
}

// CntNoBind is the payload-binding ablation of CntLinear: the receiver's
// acceptance threshold counts all same-bit copies regardless of payload and
// delivers the payload of the copy that crossed the line. Mixing one fresh
// copy with the stale pool lets the adversary push a *stale payload* over
// the threshold — a DL1 payload-correspondence violation that the bound
// per-payload counting of CntLinear rules out. It exists for the ablation
// experiment (E9): why the counting rule must bind payloads when messages
// are distinguishable.
type CntNoBind struct{}

// NewCntNoBind returns the ablated counting protocol descriptor.
func NewCntNoBind() CntNoBind { return CntNoBind{} }

// Name implements Protocol.
func (CntNoBind) Name() string { return "cntnobind" }

// HeaderBound implements Protocol: {c0, c1, k0, k1}.
func (CntNoBind) HeaderBound() (int, bool) { return 4, true }

// Bounds implements Bounded: the pooled counter makes the receiver strictly
// smaller than cntlinear's; boundness is unaffected by the ablation.
func (CntNoBind) Bounds() Bounds { return Bounds{StateBounded: true, Headers: 4} }

// AttackBounds implements DLStatus. The pooled counter lets fresh copies
// raise the count until a stale copy crosses the threshold and its stale
// payload is delivered; as for Cheat, the expected bit must cycle back with
// an old copy in transit: two data-channel copies and three messages.
func (CntNoBind) AttackBounds() (int, int) { return 2, 3 }

// New implements Protocol.
func (CntNoBind) New(dataGenie, ackGenie channel.Genie) (Transmitter, Receiver) {
	return newCountingPair(modeNoBind, 0, dataGenie, ackGenie)
}

func newCountingPair(mode countingMode, d int, dataGenie, ackGenie channel.Genie) (Transmitter, Receiver) {
	if dataGenie == nil {
		dataGenie = channel.NoGenie{}
	}
	if ackGenie == nil {
		ackGenie = channel.NoGenie{}
	}
	t := &countingT{mode: mode, ackGenie: ackGenie}
	r := &countingR{mode: mode, d: d, dataGenie: dataGenie, lastAccepted: -1}
	r.snapshot() // phase 0 starts against an empty channel
	return t, r
}

// countingT is the counting transmitter: flood data copies of the current
// phase bit until enough fresh acknowledgements arrive.
type countingT struct {
	mode     countingMode
	ackGenie channel.Genie

	bit     int
	busy    bool
	payload string
	queue   []string

	ackStale int    // stale ack copies of the current bit at phase start
	ackFresh int    // same-bit ack copies received since phase start
	ackEver  [2]int // all ack copies ever received, per bit (modeExp)
	sent     [2]int // data copies ever sent, per bit (metrics)
}

var _ Transmitter = (*countingT)(nil)

// SetAckGenie implements AckGenieUser.
func (t *countingT) SetAckGenie(g channel.Genie) {
	if g == nil {
		g = channel.NoGenie{}
	}
	t.ackGenie = g
}

func (t *countingT) SendMsg(payload string) {
	if t.busy {
		t.queue = append(t.queue, payload)
		return
	}
	t.startPhase(payload)
}

func (t *countingT) startPhase(payload string) {
	t.busy = true
	t.payload = payload
	t.ackFresh = 0
	t.ackStale = t.ackGenie.Stale(ackHeader(t.bit))
	if t.mode == modeExp && t.ackEver[t.bit] > t.ackStale {
		t.ackStale = t.ackEver[t.bit]
	}
}

func (t *countingT) DeliverPkt(p ioa.Packet) {
	var bit int
	switch p.Header {
	case ackHeader(0):
		bit = 0
	case ackHeader(1):
		bit = 1
	default:
		return
	}
	t.ackEver[bit]++
	if !t.busy || bit != t.bit {
		return
	}
	t.ackFresh++
	if t.ackFresh > t.ackStale {
		// At least one fresh ack: the receiver accepted this phase.
		t.busy = false
		t.payload = ""
		t.bit ^= 1
		if len(t.queue) > 0 {
			next := t.queue[0]
			t.queue = t.queue[1:]
			t.startPhase(next)
		}
	}
}

func (t *countingT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	t.sent[t.bit]++
	return ioa.Packet{Header: dataHeader(t.bit), Payload: t.payload}, true
}

func (t *countingT) Busy() bool { return t.busy || len(t.queue) > 0 }

func (t *countingT) Clone() Transmitter {
	c := *t
	c.queue = cloneQueue(t.queue)
	return &c
}

func (t *countingT) StateKey() string { return keyString(t.AppendStateKey) }

func (t *countingT) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, t.mode.String()).s("T{bit=").d(t.bit).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" stale=").d(t.ackStale).s(" fresh=").d(t.ackFresh).
		s(" ever=").pair(t.ackEver).s(" q=").queue(t.queue).s("}").bytes()
}

// ControlKey implements ControlKeyer: the sent metrics counters are always
// dropped (nothing reads them), and the ackEver history counters are
// dropped except in modeExp, where startPhase folds them into the
// acceptance threshold and they are genuinely part of the control state.
// Bisimulation argument for the non-exp modes: ackEver is written in
// DeliverPkt but read only under t.mode == modeExp, so states differing
// only in ackEver/sent step identically.
func (t *countingT) ControlKey() string { return keyString(t.AppendControlKey) }

func (t *countingT) AppendControlKey(dst []byte) []byte {
	b := keyTo(dst, t.mode.String()).s("T{bit=").d(t.bit).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" stale=").d(t.ackStale).s(" fresh=").d(t.ackFresh)
	if t.mode == modeExp {
		b = b.s(" ever=").pair(t.ackEver)
	}
	return b.s(" q=").queue(t.queue).s("}").bytes()
}

// StateSize counts the counter words the automaton must record; the
// counters grow with channel history, which is the unbounded space of
// Theorem 3.1 made visible.
func (t *countingT) StateSize() int {
	words := []int{t.ackStale, t.ackFresh, t.ackEver[0], t.ackEver[1], t.sent[0], t.sent[1]}
	n := 1 + len(t.payload) + queueBytes(t.queue)
	for _, w := range words {
		n += len(strconv.Itoa(w))
	}
	return n
}

// countingR is the counting receiver: accept the expected phase after
// receiving strictly more same-bit copies of one payload than the stale
// threshold, then acknowledge.
type countingR struct {
	mode      countingMode
	d         int // threshold under-provisioning (modeCheat)
	dataGenie channel.Genie

	expect       int // phase bit the receiver is waiting for
	lastAccepted int // bit of the most recently accepted phase; -1 before any
	staleSnap    int // stale data copies of the expected bit at snapshot
	fresh        payloadCounts
	recvEver     [2]int

	delivered []string
	acks      []ioa.Packet
}

var _ Receiver = (*countingR)(nil)

// snapshot starts a new expected phase: record the stale bound for the
// expected bit and reset the per-payload receipt counts.
func (r *countingR) snapshot() {
	r.staleSnap = r.dataGenie.Stale(dataHeader(r.expect))
	if r.mode == modeExp && r.recvEver[r.expect] > r.staleSnap {
		r.staleSnap = r.recvEver[r.expect]
	}
	r.fresh = nil
}

// SetDataGenie implements DataGenieUser.
func (r *countingR) SetDataGenie(g channel.Genie) {
	if g == nil {
		g = channel.NoGenie{}
	}
	r.dataGenie = g
}

func (r *countingR) threshold() int {
	switch r.mode {
	case modeCheat:
		th := r.staleSnap - r.d
		if th < 0 {
			th = 0
		}
		return th
	default:
		return r.staleSnap
	}
}

func (r *countingR) DeliverPkt(p ioa.Packet) {
	var bit int
	switch p.Header {
	case dataHeader(0):
		bit = 0
	case dataHeader(1):
		bit = 1
	default:
		return
	}
	r.recvEver[bit]++
	if bit == r.expect {
		counter := p.Payload
		if r.mode == modeNoBind {
			// Ablation: one pooled counter for the whole phase, so the
			// crossing copy's payload — fresh or stale — gets delivered.
			counter = "*"
		}
		if r.fresh.inc(counter) > r.threshold() {
			// Proven fresh: accept the phase and deliver.
			r.delivered = append(r.delivered, p.Payload)
			r.lastAccepted = bit
			r.expect ^= 1
			r.snapshot()
			r.acks = append(r.acks, ioa.Packet{Header: ackHeader(bit)})
		}
		return
	}
	// A copy of the most recently accepted phase: re-acknowledge so the
	// transmitter can cross its own counting threshold. Copies of a
	// not-yet-accepted bit are never acknowledged — that is what keeps a
	// fresh ack an acceptance proof.
	if bit == r.lastAccepted {
		r.acks = append(r.acks, ioa.Packet{Header: ackHeader(bit)})
	}
}

func (r *countingR) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *countingR) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *countingR) Clone() Receiver {
	c := *r
	c.delivered = cloneQueue(r.delivered)
	if len(r.acks) > 0 {
		c.acks = make([]ioa.Packet, len(r.acks))
		copy(c.acks, r.acks)
	} else {
		c.acks = nil
	}
	c.fresh = r.fresh.clone()
	return &c
}

func (r *countingR) StateKey() string { return keyString(r.AppendStateKey) }

func (r *countingR) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, r.mode.String()).s("R{expect=").d(r.expect).s(" last=").d(r.lastAccepted).
		s(" stale=").d(r.staleSnap).s(" fresh=").payloads(r.fresh).
		s(" ever=").pair(r.recvEver).s(" pendAcks=").d(len(r.acks)).s("}").bytes()
}

// ControlKey implements ControlKeyer: the recvEver history counters are
// dropped except in modeExp, where snapshot folds them into the stale
// threshold. Bisimulation argument mirrors countingT.ControlKey: outside
// modeExp, recvEver is write-only.
func (r *countingR) ControlKey() string { return keyString(r.AppendControlKey) }

func (r *countingR) AppendControlKey(dst []byte) []byte {
	b := keyTo(dst, r.mode.String()).s("R{expect=").d(r.expect).s(" last=").d(r.lastAccepted).
		s(" stale=").d(r.staleSnap).s(" fresh=").payloads(r.fresh)
	if r.mode == modeExp {
		b = b.s(" ever=").pair(r.recvEver)
	}
	return b.s(" pendAcks=").d(len(r.acks)).s("}").bytes()
}

// StateSize counts the counter words recorded by the receiver; as for the
// transmitter, these grow with channel history (Theorem 3.1's unbounded
// space).
func (r *countingR) StateSize() int {
	n := 2 + len(r.acks) + queueBytes(r.delivered)
	n += len(strconv.Itoa(r.staleSnap))
	n += len(strconv.Itoa(r.recvEver[0])) + len(strconv.Itoa(r.recvEver[1]))
	for _, e := range r.fresh {
		n += len(e.payload) + len(strconv.Itoa(e.n))
	}
	return n
}
