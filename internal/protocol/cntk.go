package protocol

import (
	"strconv"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// CntK generalises the counting protocol from an alternating bit to K
// cycling headers: message i uses data header "cK:<i mod K>" and ack header
// "kK:<i mod K>", so the alphabet has 2K letters.
//
// The point of the generalisation is Theorem 4.1's 1/k factor. With L stale
// packets spread over the protocol's headers, each phase's acceptance
// threshold counts only the stale copies of *its own* header — about L/K of
// them — so the per-message packet cost is ≈ L/K + 1. Sweeping K at fixed L
// (experiment E10) traces the ⌊l/k⌋ lower bound of Theorem 4.1 directly,
// and interpolates between cntlinear (K = 2) and the naive protocol
// (K → n, cost O(1), headers Θ(n)).
//
// Safety relies on the same snapshot argument as the K = 2 protocol: when
// the receiver accepts phase i−1 it snapshots the in-transit copies of
// header (i mod K); the most recent phase that used this header is i−K, so
// every snapshotted copy is stale, and any copy delivered later either was
// in transit at the snapshot (counted) or is fresh.
type CntK struct {
	// K is the number of cycling data headers; values < 2 are treated
	// as 2.
	K int
}

var _ Protocol = CntK{}

// NewCntK returns a K-header counting protocol descriptor.
func NewCntK(k int) CntK {
	if k < 2 {
		k = 2
	}
	return CntK{K: k}
}

// Name implements Protocol.
func (p CntK) Name() string { return "cntk" + strconv.Itoa(p.K) }

// HeaderBound implements Protocol: K data + K ack headers.
func (p CntK) HeaderBound() (int, bool) { return 2 * p.K, true }

// Bounds implements Bounded: the endpoints read their phase counters only
// modulo K (see the ControlKey methods), and every other counter is capped
// by the in-transit occupancy, so the joint control space under bounded
// occupancy is finite with at most 2K distinct headers.
func (p CntK) Bounds() Bounds {
	k := p.K
	if k < 2 {
		k = 2
	}
	return Bounds{StateBounded: true, Headers: 2 * k}
}

// AttackBounds implements DLStatus: (0, 0) — the per-header snapshot
// argument makes every phase's threshold outnumber its stale copies,
// independent of K.
func (CntK) AttackBounds() (int, int) { return 0, 0 }

// New implements Protocol.
func (p CntK) New(dataGenie, ackGenie channel.Genie) (Transmitter, Receiver) {
	if dataGenie == nil {
		dataGenie = channel.NoGenie{}
	}
	if ackGenie == nil {
		ackGenie = channel.NoGenie{}
	}
	k := p.K
	if k < 2 {
		k = 2
	}
	t := &cntkT{k: k, ackGenie: ackGenie}
	r := &cntkR{k: k, dataGenie: dataGenie, lastAccepted: -1}
	r.snapshot()
	return t, r
}

func cntkDataHeader(k, phase int) string { return "c" + strconv.Itoa(k) + ":" + strconv.Itoa(phase%k) }
func cntkAckHeader(k, phase int) string  { return "k" + strconv.Itoa(k) + ":" + strconv.Itoa(phase%k) }

// cntkT is the K-header counting transmitter.
type cntkT struct {
	k        int
	ackGenie channel.Genie

	phase   int // number of confirmed messages; current phase index
	busy    bool
	payload string
	queue   []string

	ackStale int
	ackFresh int
}

var _ Transmitter = (*cntkT)(nil)
var _ AckGenieUser = (*cntkT)(nil)

// SetAckGenie implements AckGenieUser.
func (t *cntkT) SetAckGenie(g channel.Genie) {
	if g == nil {
		g = channel.NoGenie{}
	}
	t.ackGenie = g
}

func (t *cntkT) SendMsg(payload string) {
	if t.busy {
		t.queue = append(t.queue, payload)
		return
	}
	t.startPhase(payload)
}

func (t *cntkT) startPhase(payload string) {
	t.busy = true
	t.payload = payload
	t.ackFresh = 0
	t.ackStale = t.ackGenie.Stale(cntkAckHeader(t.k, t.phase))
}

func (t *cntkT) DeliverPkt(p ioa.Packet) {
	if !t.busy || p.Header != cntkAckHeader(t.k, t.phase) {
		return
	}
	t.ackFresh++
	if t.ackFresh > t.ackStale {
		t.busy = false
		t.payload = ""
		t.phase++
		if len(t.queue) > 0 {
			next := t.queue[0]
			t.queue = t.queue[1:]
			t.startPhase(next)
		}
	}
}

func (t *cntkT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	return ioa.Packet{Header: cntkDataHeader(t.k, t.phase), Payload: t.payload}, true
}

func (t *cntkT) Busy() bool { return t.busy || len(t.queue) > 0 }

func (t *cntkT) Clone() Transmitter {
	c := *t
	c.queue = cloneQueue(t.queue)
	return &c
}

func (t *cntkT) StateKey() string { return keyString(t.AppendStateKey) }

func (t *cntkT) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "cntk").d(t.k).s("T{phase=").d(t.phase).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" stale=").d(t.ackStale).s(" fresh=").d(t.ackFresh).
		s(" q=").queue(t.queue).s("}").bytes()
}

// ControlKey implements ControlKeyer: the absolute phase counter is
// quotiented to phase mod K. Bisimulation argument: t.phase is read only by
// cntkDataHeader/cntkAckHeader, both of which take it mod K, so two
// transmitter states that agree on everything but a multiple-of-K phase
// shift emit the same packets and react identically to the same inputs.
func (t *cntkT) ControlKey() string { return keyString(t.AppendControlKey) }

func (t *cntkT) AppendControlKey(dst []byte) []byte {
	return keyTo(dst, "cntk").d(t.k).s("T{phase=").d(t.phase % t.k).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" stale=").d(t.ackStale).s(" fresh=").d(t.ackFresh).
		s(" q=").queue(t.queue).s("}").bytes()
}

func (t *cntkT) StateSize() int {
	return 1 + len(t.payload) + queueBytes(t.queue) +
		len(strconv.Itoa(t.phase)) + len(strconv.Itoa(t.ackStale)) + len(strconv.Itoa(t.ackFresh))
}

// cntkR is the K-header counting receiver.
type cntkR struct {
	k         int
	dataGenie channel.Genie

	accepted     int // number of accepted phases; expects header accepted mod K
	lastAccepted int // phase index of the most recent acceptance; -1 before any
	staleSnap    int
	fresh        payloadCounts

	delivered []string
	acks      []ioa.Packet
}

var _ Receiver = (*cntkR)(nil)
var _ DataGenieUser = (*cntkR)(nil)

// SetDataGenie implements DataGenieUser.
func (r *cntkR) SetDataGenie(g channel.Genie) {
	if g == nil {
		g = channel.NoGenie{}
	}
	r.dataGenie = g
}

func (r *cntkR) snapshot() {
	r.staleSnap = r.dataGenie.Stale(cntkDataHeader(r.k, r.accepted))
	r.fresh = nil
}

func (r *cntkR) DeliverPkt(p ioa.Packet) {
	switch {
	case p.Header == cntkDataHeader(r.k, r.accepted):
		if r.fresh.inc(p.Payload) > r.staleSnap {
			r.delivered = append(r.delivered, p.Payload)
			r.lastAccepted = r.accepted
			r.accepted++
			r.snapshot()
			r.acks = append(r.acks, ioa.Packet{Header: cntkAckHeader(r.k, r.lastAccepted)})
		}
	case r.lastAccepted >= 0 && p.Header == cntkDataHeader(r.k, r.lastAccepted):
		// A copy of the most recently accepted phase: re-acknowledge so
		// the transmitter can cross its counting threshold. Copies of
		// older phases are ignored (never acked — a fresh ack must prove
		// acceptance of the phase the transmitter is waiting on).
		r.acks = append(r.acks, ioa.Packet{Header: cntkAckHeader(r.k, r.lastAccepted)})
	}
}

func (r *cntkR) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *cntkR) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *cntkR) Clone() Receiver {
	c := *r
	c.delivered = cloneQueue(r.delivered)
	if len(r.acks) > 0 {
		c.acks = make([]ioa.Packet, len(r.acks))
		copy(c.acks, r.acks)
	} else {
		c.acks = nil
	}
	c.fresh = r.fresh.clone()
	return &c
}

func (r *cntkR) StateKey() string { return keyString(r.AppendStateKey) }

func (r *cntkR) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "cntk").d(r.k).s("R{accepted=").d(r.accepted).s(" last=").d(r.lastAccepted).
		s(" stale=").d(r.staleSnap).s(" fresh=").payloads(r.fresh).
		s(" pendAcks=").d(len(r.acks)).s("}").bytes()
}

// ControlKey implements ControlKeyer: the accepted and lastAccepted phase
// counters are quotiented mod K. Bisimulation argument: both counters are
// read only through cntkDataHeader/cntkAckHeader (mod K); lastAccepted's
// "-1 = nothing accepted yet" sentinel is preserved since it gates the
// re-acknowledgement branch.
func (r *cntkR) ControlKey() string { return keyString(r.AppendControlKey) }

func (r *cntkR) AppendControlKey(dst []byte) []byte {
	last := r.lastAccepted
	if last >= 0 {
		last %= r.k
	}
	return keyTo(dst, "cntk").d(r.k).s("R{accepted=").d(r.accepted % r.k).s(" last=").d(last).
		s(" stale=").d(r.staleSnap).s(" fresh=").payloads(r.fresh).
		s(" pendAcks=").d(len(r.acks)).s("}").bytes()
}

func (r *cntkR) StateSize() int {
	n := 2 + len(r.acks) + queueBytes(r.delivered)
	n += len(strconv.Itoa(r.accepted)) + len(strconv.Itoa(r.staleSnap))
	for _, e := range r.fresh {
		n += len(e.payload) + len(strconv.Itoa(e.n))
	}
	return n
}
