package protocol

import (
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// StabDL is a self-stabilizing data-link protocol in the style of Dolev,
// Dubois, Potop-Butucaru and Tixeuil (*Stabilizing Data-Link over non-FIFO
// Channels with Optimal Fault-Resilience*): a round-based token protocol
// whose receiver adopts a packet only after counting C+1 copies of the same
// (header, payload) pair, where C bounds the channel capacity (and hence the
// number of poison copies an adversary can pre-load).
//
// The transmitter labels the current message with a round label from a
// cyclic alphabet of K = 2C+4 labels and retransmits ⟨d<label>, payload⟩
// until it has collected C+1 acknowledgements a<label>; only then does it
// advance the label and start the next message. The receiver tracks a single
// *candidate* (header, payload) pair and adopts it after C+1 consecutive
// receipts (a receipt of a different pair restarts the count on the new
// pair); the pair it adopted last is *fenced* — further copies are answered
// with a repair acknowledgement (so the transmitter can finish collecting
// its C+1 acks) but never re-counted, which is what makes the protocol safe
// against its own retransmissions. Keeping one candidate instead of a full
// per-pair count table is what keeps the receiver's memory — and its
// control-state space under `nfvet audit` — bounded, per Dolev et al.'s
// bounded-memory construction.
//
// Why C+1 consecutive copies stabilize: at most C copies of any one pair fit
// in the channel (the occupancy bound), so neither pre-poisoned packets nor
// stale retransmissions of a no-longer-current pair can supply C+1 receipts
// on their own — the C+1st receipt must come from a genuine fresh send.
// Corrupted receiver counters are part of the corrupted configuration the
// convergence checker enumerates, and each buys the adversary at most one
// bogus adoption — a *finite* number of initial faults, after which every
// adoption corresponds to a fresh transmission. internal/stabilize makes
// that claim checkable (CheckConvergence) and `nfvet verify -stabilize`
// proves it exhaustively at bounded occupancy.
//
// The guarantee is calibrated to the capacity parameter: with enough
// occupancy headroom an adversary can bank C+1 stale copies of an
// already-delivered pair in transit and replay them consecutively after the
// fence has moved on, so the protocol is attackable *above* its design
// capacity (AttackBounds reflects this). Like the alternating bit protocol the label alphabet is cyclic, so
// the guarantee also assumes distinct messages carry distinct payloads or
// fewer than K messages between label reuses; the repo's harnesses use
// positional payloads throughout.
type StabDL struct {
	c int
}

// NewStabDL returns the stabilizing data-link protocol with channel-capacity
// parameter c (adoption threshold c+1, label alphabet 2c+4).
func NewStabDL(c int) StabDL {
	if c < 1 {
		c = 1
	}
	return StabDL{c: c}
}

// Name implements Protocol.
func (p StabDL) Name() string { return "stabdl" + strconv.Itoa(p.c) }

// K returns the label-alphabet size 2C+4.
func (p StabDL) K() int { return 2*p.c + 4 }

// Copies returns the adoption threshold C+1.
func (p StabDL) Copies() int { return p.c + 1 }

// HeaderBound implements Protocol: d<label> and a<label> per label.
func (p StabDL) HeaderBound() (int, bool) { return 2 * p.K(), true }

// Bounds implements Bounded: labels, the bounded ack counter and the bounded
// per-pair receipt counts are all finite under bounded occupancy.
func (p StabDL) Bounds() Bounds { return Bounds{StateBounded: true, Headers: 2 * p.K()} }

// AttackBounds implements DLStatus: above the design capacity C the
// adversary can bank C+1 stale copies of the first message's pair and
// replay them consecutively after the second message was adopted,
// re-delivering the first payload. Banking C+1 copies while keeping the
// pipeline alive needs one further occupancy slot for the in-progress
// sends, so the attack first fits at occupancy C+2. At or below capacity C
// the consecutive-count threshold is unreachable by stale copies and the
// protocol is sound.
func (p StabDL) AttackBounds() (int, int) { return p.c + 2, 2 }

// SelfStabilizing implements StabilizeStatus: the protocol is expected to
// converge to DL1–DL3 from every bounded corrupted configuration, up to
// finitely many initial faults.
func (p StabDL) SelfStabilizing() bool { return true }

// New implements Protocol; no channel oracle is needed.
func (p StabDL) New(_, _ channel.Genie) (Transmitter, Receiver) {
	return &stabDLT{c: p.c, k: p.K()}, &stabDLR{c: p.c, k: p.K()}
}

// Corruptions implements Corruptible. Index 0 of each endpoint list is the
// clean start; the other entries model single-endpoint memory corruption
// (wrong label, a garbage in-progress message with an almost-complete ack
// count, a fence on the first real message, poisoned receipt counts one shy
// of adoption). The poison alphabets carry the garbage payload "z" on the
// first two labels plus their acknowledgements.
func (p StabDL) Corruptions() CorruptionSpace {
	return CorruptionSpace{
		Transmitters: []Transmitter{
			&stabDLT{c: p.c, k: p.K()},
			&stabDLT{c: p.c, k: p.K(), label: 1},
			&stabDLT{c: p.c, k: p.K(), busy: true, payload: "z", acked: p.c},
		},
		Receivers: []Receiver{
			&stabDLR{c: p.c, k: p.K()},
			&stabDLR{c: p.c, k: p.K(), fence: "d0\x1fm0"},
			&stabDLR{c: p.c, k: p.K(), cand: "d0\x1fz", candN: p.c},
		},
		DataPoison: []ioa.Packet{
			{Header: "d0", Payload: "z"},
			{Header: "d1", Payload: "z"},
		},
		AckPoison: []ioa.Packet{
			{Header: "a0"},
			{Header: "a1"},
		},
	}
}

// stabDLT retransmits ⟨d<label>, payload⟩ until C+1 acks a<label> arrive.
type stabDLT struct {
	c, k    int
	label   int
	busy    bool
	payload string
	acked   int
	queue   []string
}

var _ Transmitter = (*stabDLT)(nil)

func (t *stabDLT) SendMsg(payload string) {
	if t.busy {
		t.queue = append(t.queue, payload)
		return
	}
	t.busy = true
	t.payload = payload
}

func (t *stabDLT) DeliverPkt(p ioa.Packet) {
	if !t.busy {
		return
	}
	if p.Header != "a"+strconv.Itoa(t.label) {
		return // stale ack for another label
	}
	t.acked++
	if t.acked < t.c+1 {
		return
	}
	t.busy = false
	t.payload = ""
	t.acked = 0
	t.label = (t.label + 1) % t.k
	if len(t.queue) > 0 {
		t.busy = true
		t.payload = t.queue[0]
		t.queue = t.queue[1:]
	}
}

func (t *stabDLT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	return ioa.Packet{Header: "d" + strconv.Itoa(t.label), Payload: t.payload}, true
}

func (t *stabDLT) Busy() bool { return t.busy || len(t.queue) > 0 }

func (t *stabDLT) Clone() Transmitter {
	c := *t
	c.queue = cloneQueue(t.queue)
	return &c
}

func (t *stabDLT) StateKey() string { return keyString(t.AppendStateKey) }

func (t *stabDLT) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "stabdlT{label=").d(t.label).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" acked=").d(t.acked).
		s(" q=").queue(t.queue).s("}").bytes()
}

func (t *stabDLT) StateSize() int {
	return 3 + len(t.payload) + queueBytes(t.queue)
}

// stabDLR tracks one candidate (header, payload) pair and adopts it after
// C+1 consecutive receipts; the last-adopted pair is fenced (repair-acked,
// never re-counted).
type stabDLR struct {
	c, k int
	// fence is the pair key ("d<j>\x1fpayload") of the last adopted packet.
	fence string
	// cand and candN are the current candidate pair and its run of
	// consecutive receipts. A receipt of a different pair restarts the run.
	cand      string
	candN     int
	delivered []string
	acks      []ioa.Packet
}

var _ Receiver = (*stabDLR)(nil)

func (r *stabDLR) DeliverPkt(p ioa.Packet) {
	rest, ok := strings.CutPrefix(p.Header, "d")
	if !ok {
		return
	}
	j, err := strconv.Atoi(rest)
	if err != nil || j < 0 || j >= r.k {
		return
	}
	pair := p.Header + "\x1f" + p.Payload
	if pair == r.fence {
		// Copy of the adopted packet: repair the transmitter's ack count,
		// never deliver twice.
		r.acks = append(r.acks, ioa.Packet{Header: "a" + rest})
		return
	}
	if pair != r.cand {
		r.cand = pair
		r.candN = 0
	}
	r.candN++
	if r.candN < r.c+1 {
		return
	}
	// C+1 consecutive receipts: at most C fit in the channel, so at least
	// one was a genuine fresh send. Adopt.
	r.delivered = append(r.delivered, p.Payload)
	r.fence = pair
	r.cand = ""
	r.candN = 0
	r.acks = append(r.acks, ioa.Packet{Header: "a" + rest})
}

func (r *stabDLR) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *stabDLR) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *stabDLR) Clone() Receiver {
	c := *r
	c.delivered = cloneQueue(r.delivered)
	if len(r.acks) > 0 {
		c.acks = make([]ioa.Packet, len(r.acks))
		copy(c.acks, r.acks)
	} else {
		c.acks = nil
	}
	return &c
}

func (r *stabDLR) StateKey() string { return keyString(r.AppendStateKey) }

func (r *stabDLR) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "stabdlR{fence=").q(r.fence).s(" cand=").q(r.cand).
		s(" n=").d(r.candN).s(" pendAcks=").d(len(r.acks)).
		s(" pendDeliv=").d(len(r.delivered)).s("}").bytes()
}

func (r *stabDLR) StateSize() int {
	return 3 + len(r.fence) + len(r.cand) + len(r.acks) + queueBytes(r.delivered)
}
