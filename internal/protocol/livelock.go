package protocol

import (
	"repro/internal/channel"
	"repro/internal/ioa"
)

// Livelock is a deliberately broken single-header protocol: its transmitter
// resends forever and ignores every acknowledgement, and its receiver never
// delivers. It exists to exercise the failure-detection machinery — the
// Theorem 2.1 pumping adversary certifies its livelock by finding a
// repeated joint state, and the liveness budget of the simulator trips on
// it. It is intentionally not part of Registry().
type Livelock struct{}

// NewLivelock returns the broken protocol descriptor.
func NewLivelock() Livelock { return Livelock{} }

// Name implements Protocol.
func (Livelock) Name() string { return "livelock" }

// HeaderBound implements Protocol: the alphabet is {x}.
func (Livelock) HeaderBound() (int, bool) { return 1, true }

// Bounds implements Bounded: two transmitter states, one receiver state,
// one header — the minimal bounded protocol, and the shape Theorem 2.1's
// k_t·k_r pumping bound bites hardest on.
func (Livelock) Bounds() Bounds { return Bounds{StateBounded: true, KT: 2, KR: 1, Headers: 1} }

// AttackBounds implements DLStatus: the livelock is immediate — one message
// and a single in-transit packet already admit a no-progress cycle (the
// transmitter resends forever and the receiver never delivers).
func (Livelock) AttackBounds() (int, int) { return 1, 1 }

// New implements Protocol.
func (Livelock) New(_, _ channel.Genie) (Transmitter, Receiver) {
	return &livelockT{}, &livelockR{}
}

type livelockT struct{ busy bool }

var _ Transmitter = (*livelockT)(nil)

func (t *livelockT) SendMsg(string)        { t.busy = true }
func (t *livelockT) DeliverPkt(ioa.Packet) {}

func (t *livelockT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	return ioa.Packet{Header: "x"}, true
}

func (t *livelockT) Busy() bool         { return t.busy }
func (t *livelockT) Clone() Transmitter { c := *t; return &c }

func (t *livelockT) StateKey() string {
	if t.busy {
		return "livelockT{busy=true}"
	}
	return "livelockT{busy=false}"
}

func (t *livelockT) AppendStateKey(dst []byte) []byte {
	return append(dst, t.StateKey()...)
}

func (t *livelockT) StateSize() int { return 1 }

type livelockR struct{}

var _ Receiver = (*livelockR)(nil)

func (r *livelockR) DeliverPkt(ioa.Packet)       {}
func (r *livelockR) NextPkt() (ioa.Packet, bool) { return ioa.Packet{}, false }
func (r *livelockR) TakeDelivered() []string     { return nil }
func (r *livelockR) Clone() Receiver             { c := *r; return &c }
func (r *livelockR) StateKey() string            { return "livelockR{}" }
func (r *livelockR) StateSize() int              { return 1 }
