package protocol

import (
	"fmt"
	"strings"
	"testing"
)

// TestKeyBufMatchesFmt pins the append-based key builder to the fmt verbs it
// replaced. State keys are hashed into the fuzzer's coverage points and
// memoized by the adversary constructions, so the rendering must stay
// canonical; this is the oracle that keyBuf and %d/%t/%q/%v/%s agree on
// every value class the protocols use (negative ints, quoting-relevant
// strings, [2]int arrays, queues with separator collisions).
func TestKeyBufMatchesFmt(t *testing.T) {
	queue := []string{"p|q", "", `quote"back\slash`, "émoji⚡"}
	for _, tc := range []struct {
		name string
		got  string
		want string
	}{
		{
			"ints",
			key("k{").d(0).s(" ").d(-17).s(" ").d(1 << 40).s("}").done(),
			fmt.Sprintf("k{%d %d %d}", 0, -17, 1<<40),
		},
		{
			"bools",
			key("").t(true).s(" ").t(false).done(),
			fmt.Sprintf("%t %t", true, false),
		},
		{
			"quoted strings",
			key("").q("").s(" ").q("a\"b\n\x00").s(" ").q("émoji⚡").done(),
			fmt.Sprintf("%q %q %q", "", "a\"b\n\x00", "émoji⚡"),
		},
		{
			"int pairs",
			key("").pair([2]int{7, -42}).done(),
			fmt.Sprintf("%v", [2]int{7, -42}),
		},
		{
			"queues",
			key("").queue(queue).s(";").queue(nil).done(),
			fmt.Sprintf("%s;%s", strings.Join(queue, "|"), joinQueue(nil)),
		},
	} {
		if tc.got != tc.want {
			t.Errorf("%s: keyBuf rendered %q, fmt rendered %q", tc.name, tc.got, tc.want)
		}
	}
}
