package protocol

import (
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// pump performs a lossless "optimal channel" exchange: it repeatedly moves
// one data packet t→r and drains all acks r→t, until the transmitter is no
// longer busy. It returns the number of data packets sent. A step budget
// guards against livelock.
func pump(t *testing.T, tx Transmitter, rx Receiver, budget int) int {
	t.Helper()
	sent := 0
	for steps := 0; tx.Busy(); steps++ {
		if steps > budget {
			t.Fatalf("pump: no progress after %d steps (tx=%s rx=%s)", budget, tx.StateKey(), rx.StateKey())
		}
		if p, ok := tx.NextPkt(); ok {
			sent++
			rx.DeliverPkt(p)
		}
		for {
			a, ok := rx.NextPkt()
			if !ok {
				break
			}
			tx.DeliverPkt(a)
		}
	}
	return sent
}

func deliverAll(t *testing.T, rx Receiver) []string {
	t.Helper()
	return rx.TakeDelivered()
}

func TestRegistry(t *testing.T) {
	reg := Registry()
	for _, name := range []string{"altbit", "seqnum", "cntlinear", "cntexp", "cheat1"} {
		p, ok := reg[name]
		if !ok {
			t.Fatalf("registry missing %q", name)
		}
		if p.Name() != name {
			t.Fatalf("registry key %q maps to protocol named %q", name, p.Name())
		}
	}
	names := Names()
	if len(names) != len(reg) {
		t.Fatalf("Names() returned %d entries, registry has %d", len(names), len(reg))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestHeaderBounds(t *testing.T) {
	tests := []struct {
		p       Protocol
		k       int
		bounded bool
	}{
		{NewAltBit(), 4, true},
		{NewSeqNum(), 0, false},
		{NewCntLinear(), 4, true},
		{NewCntExp(), 4, true},
		{NewCheat(2), 4, true},
	}
	for _, tt := range tests {
		k, b := tt.p.HeaderBound()
		if k != tt.k || b != tt.bounded {
			t.Errorf("%s: HeaderBound = (%d,%t), want (%d,%t)", tt.p.Name(), k, b, tt.k, tt.bounded)
		}
	}
}

// --- alternating bit ---

func TestAltBitHandshake(t *testing.T) {
	tx, rx := NewAltBit().New(nil, nil)
	for i, want := range []string{"msg-0", "msg-1", "msg-2"} {
		tx.SendMsg(want)
		sent := pump(t, tx, rx, 100)
		if sent != 1 {
			t.Fatalf("message %d took %d data packets on a perfect channel, want 1", i, sent)
		}
		got := deliverAll(t, rx)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("message %d delivered %v, want [%s]", i, got, want)
		}
	}
}

func TestAltBitRetransmitUntilAck(t *testing.T) {
	tx, rx := NewAltBit().New(nil, nil)
	tx.SendMsg("m")
	// Simulate three lost data packets: NextPkt stays enabled.
	for i := 0; i < 3; i++ {
		p, ok := tx.NextPkt()
		if !ok || p.Header != "d0" {
			t.Fatalf("retransmission %d: got %v,%t", i, p, ok)
		}
	}
	// Deliver one copy; ack returns; transmitter finishes.
	p, _ := tx.NextPkt()
	rx.DeliverPkt(p)
	a, ok := rx.NextPkt()
	if !ok || a.Header != "a0" {
		t.Fatalf("expected a0 ack, got %v,%t", a, ok)
	}
	tx.DeliverPkt(a)
	if tx.Busy() {
		t.Fatal("transmitter still busy after matching ack")
	}
	if _, ok := tx.NextPkt(); ok {
		t.Fatal("idle transmitter should have no enabled output")
	}
}

func TestAltBitIgnoresStaleAck(t *testing.T) {
	tx, _ := NewAltBit().New(nil, nil)
	tx.SendMsg("m")
	tx.DeliverPkt(ioa.Packet{Header: "a1"}) // wrong bit
	if !tx.Busy() {
		t.Fatal("stale ack must not complete the current message")
	}
	tx.DeliverPkt(ioa.Packet{Header: "zz"}) // garbage
	if !tx.Busy() {
		t.Fatal("garbage packet must be ignored")
	}
}

func TestAltBitQueuesMessages(t *testing.T) {
	tx, rx := NewAltBit().New(nil, nil)
	tx.SendMsg("m0")
	tx.SendMsg("m1")
	tx.SendMsg("m2")
	pump(t, tx, rx, 100)
	got := deliverAll(t, rx)
	want := []string{"m0", "m1", "m2"}
	if len(got) != 3 {
		t.Fatalf("delivered %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// TestAltBitUnsafeOverNonFIFO replays the classic attack by hand: a delayed
// copy of message 0's data packet is accepted as message 2, because after
// two deliveries the receiver expects bit 0 again. This is the executable
// core of the paper's premise.
func TestAltBitUnsafeOverNonFIFO(t *testing.T) {
	tx, rx := NewAltBit().New(nil, nil)

	// Message 0, bit 0. The channel delays one copy of d0 (we keep it).
	tx.SendMsg("m0")
	stale, ok := tx.NextPkt()
	if !ok || stale.Header != "d0" {
		t.Fatalf("expected d0, got %v", stale)
	}
	pump(t, tx, rx, 100) // a later copy gets through
	// Message 1, bit 1.
	tx.SendMsg("m1")
	pump(t, tx, rx, 100)
	deliverAll(t, rx)

	// Receiver now expects bit 0 again. Deliver the stale copy of m0.
	rx.DeliverPkt(stale)
	got := deliverAll(t, rx)
	if len(got) != 1 || got[0] != "m0" {
		t.Fatalf("expected the stale m0 copy to be (wrongly) delivered, got %v", got)
	}
}

func TestAltBitCloneIndependence(t *testing.T) {
	tx, rx := NewAltBit().New(nil, nil)
	tx.SendMsg("m0")
	tx.SendMsg("m1")
	tc := tx.Clone()
	rc := rx.Clone()
	pump(t, tc, rc, 100)
	if !tx.Busy() {
		t.Fatal("running the clone mutated the original transmitter")
	}
	if got := deliverAll(t, rx); len(got) != 0 {
		t.Fatalf("original receiver delivered %v", got)
	}
	if tx.StateKey() == tc.StateKey() {
		t.Fatal("clone state should have diverged")
	}
}

// --- sequence numbers ---

func TestSeqNumHandshake(t *testing.T) {
	tx, rx := NewSeqNum().New(nil, nil)
	for i, want := range []string{"m0", "m1", "m2", "m3"} {
		tx.SendMsg(want)
		sent := pump(t, tx, rx, 100)
		if sent != 1 {
			t.Fatalf("message %d took %d packets, want 1", i, sent)
		}
		got := deliverAll(t, rx)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("message %d delivered %v", i, got)
		}
	}
}

func TestSeqNumHeadersGrowWithMessages(t *testing.T) {
	tx, rx := NewSeqNum().New(nil, nil)
	headers := make(map[string]bool)
	for i := 0; i < 8; i++ {
		tx.SendMsg("x")
		p, ok := tx.NextPkt()
		if !ok {
			t.Fatal("no packet")
		}
		headers[p.Header] = true
		rx.DeliverPkt(p)
		for {
			a, ok := rx.NextPkt()
			if !ok {
				break
			}
			headers[a.Header] = true
			tx.DeliverPkt(a)
		}
	}
	// 8 data headers + 8 ack headers.
	if len(headers) != 16 {
		t.Fatalf("distinct headers = %d, want 16", len(headers))
	}
}

func TestSeqNumStaleDataReAckedNotDelivered(t *testing.T) {
	tx, rx := NewSeqNum().New(nil, nil)
	tx.SendMsg("m0")
	stale, _ := tx.NextPkt() // keep a delayed copy of d0
	pump(t, tx, rx, 100)
	deliverAll(t, rx)

	rx.DeliverPkt(stale) // replay
	if got := deliverAll(t, rx); len(got) != 0 {
		t.Fatalf("stale d0 copy was delivered: %v", got)
	}
	a, ok := rx.NextPkt()
	if !ok || a.Header != "a0" {
		t.Fatalf("stale data should be re-acked with a0, got %v,%t", a, ok)
	}
}

func TestSeqNumIgnoresFutureAndGarbage(t *testing.T) {
	tx, rx := NewSeqNum().New(nil, nil)
	tx.SendMsg("m0")
	rx.DeliverPkt(ioa.Packet{Header: "d5", Payload: "future"})
	rx.DeliverPkt(ioa.Packet{Header: "zz"})
	rx.DeliverPkt(ioa.Packet{Header: "dX"})
	if got := deliverAll(t, rx); len(got) != 0 {
		t.Fatalf("garbage delivered: %v", got)
	}
	tx.DeliverPkt(ioa.Packet{Header: "a7"}) // ack for a future message
	if !tx.Busy() {
		t.Fatal("future ack must be ignored")
	}
}

func TestSeqNumStaleAckIgnored(t *testing.T) {
	tx, rx := NewSeqNum().New(nil, nil)
	tx.SendMsg("m0")
	pump(t, tx, rx, 100)
	tx.SendMsg("m1")
	tx.DeliverPkt(ioa.Packet{Header: "a0"}) // stale ack from message 0
	if !tx.Busy() {
		t.Fatal("stale ack a0 must not confirm message 1")
	}
}

func TestSeqNumSpaceIsLogarithmic(t *testing.T) {
	tx, rx := NewSeqNum().New(nil, nil)
	for i := 0; i < 100; i++ {
		tx.SendMsg("x")
		pump(t, tx, rx, 100)
		deliverAll(t, rx)
	}
	// seq = 100: state is the decimal counter, a few bytes.
	if tx.StateSize() > 8 {
		t.Fatalf("seqnum transmitter state = %d units after 100 messages, want O(log n)", tx.StateSize())
	}
}

// --- counting protocols ---

// genieStub is a scriptable stale-count oracle.
type genieStub struct{ stale map[string]int }

func (g genieStub) Stale(h string) int { return g.stale[h] }

func TestCountingHandshakePerfectChannel(t *testing.T) {
	for _, proto := range []Protocol{NewCntLinear(), NewCntExp(), NewCheat(1)} {
		t.Run(proto.Name(), func(t *testing.T) {
			tx, rx := proto.New(channel.NoGenie{}, channel.NoGenie{})
			for i, want := range []string{"m0", "m1", "m2", "m3"} {
				tx.SendMsg(want)
				pump(t, tx, rx, 10000)
				got := deliverAll(t, rx)
				if len(got) != 1 || got[0] != want {
					t.Fatalf("message %d delivered %v, want [%s]", i, got, want)
				}
			}
		})
	}
}

// TestCntLinearRefusesStaleFlood: with S stale copies snapshotted, the
// receiver must not accept after only S same-bit copies.
func TestCntLinearRefusesStaleFlood(t *testing.T) {
	const S = 5
	g := genieStub{stale: map[string]int{"c0": S}}
	_, rx := NewCntLinear().New(g, channel.NoGenie{})

	// A fresh receiver snapshots c0 through the genie: staleSnap = S.
	stale := ioa.Packet{Header: "c0", Payload: "old"}
	for i := 0; i < S; i++ {
		rx.DeliverPkt(stale)
	}
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("receiver accepted after only %d copies with %d stale: %v", S, S, got)
	}
	// One more copy crosses the threshold.
	rx.DeliverPkt(stale)
	if got := rx.TakeDelivered(); len(got) != 1 {
		t.Fatalf("receiver should accept after %d copies, got %v", S+1, got)
	}
}

// TestCheatAcceptsStaleFlood: the under-provisioned receiver accepts d
// copies early — this is the unsafe gap the replay adversary exploits.
func TestCheatAcceptsStaleFlood(t *testing.T) {
	const S = 5
	g := genieStub{stale: map[string]int{"c0": S}}
	_, rx := NewCheat(2).New(g, channel.NoGenie{})
	stale := ioa.Packet{Header: "c0", Payload: "old"}
	for i := 0; i < S-1; i++ { // S−d+1 = 4 copies suffice for d=2
		rx.DeliverPkt(stale)
	}
	if got := rx.TakeDelivered(); len(got) != 1 || got[0] != "old" {
		t.Fatalf("cheat receiver should have (unsafely) accepted, got %v", got)
	}
}

// TestCountingPayloadBinding: the threshold is per payload, so S stale
// copies of an old payload cannot push a different payload over the line.
func TestCountingPayloadBinding(t *testing.T) {
	const S = 3
	g := genieStub{stale: map[string]int{"c0": S}}
	_, rx := NewCntLinear().New(g, channel.NoGenie{})
	for i := 0; i < S; i++ {
		rx.DeliverPkt(ioa.Packet{Header: "c0", Payload: "old"})
	}
	rx.DeliverPkt(ioa.Packet{Header: "c0", Payload: "new"})
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("mixed payloads must not cross the per-payload threshold: %v", got)
	}
	// Three more copies of "new" (total 4 > 3) do cross it.
	for i := 0; i < S; i++ {
		rx.DeliverPkt(ioa.Packet{Header: "c0", Payload: "new"})
	}
	if got := rx.TakeDelivered(); len(got) != 1 || got[0] != "new" {
		t.Fatalf("fresh payload should be delivered after crossing threshold: %v", got)
	}
}

// TestCntExpThresholdDoubles: on a perfect channel, per-message data cost
// of the pessimistic protocol roughly doubles per same-bit phase — the
// "exponential even in the best case" behaviour the paper attributes to
// [AFWZ88].
func TestCntExpThresholdDoubles(t *testing.T) {
	tx, rx := NewCntExp().New(channel.NoGenie{}, channel.NoGenie{})
	var costs []int
	for i := 0; i < 8; i++ {
		tx.SendMsg("x")
		costs = append(costs, pump(t, tx, rx, 1<<20))
		deliverAll(t, rx)
	}
	// Compare same-parity phases: cost must be strictly increasing and at
	// least geometric with ratio ≥ 1.5 after the first few phases.
	for i := 4; i < len(costs); i++ {
		if costs[i] < costs[i-2]*2-2 {
			t.Fatalf("cntexp costs %v: phase %d (%d) not ≈2× phase %d (%d)",
				costs, i, costs[i], i-2, costs[i-2])
		}
	}
	if costs[7] < 8 {
		t.Fatalf("cntexp cost should be exponential; costs = %v", costs)
	}
}

// TestCntLinearCostTracksStale: with S stale copies reported, delivering a
// message costs about S+1 data packets — linear in in-transit, the
// Theorem 4.1 tight shape.
func TestCntLinearCostTracksStale(t *testing.T) {
	for _, S := range []int{0, 1, 4, 16, 64} {
		// The transmitter floods; the receiver needs S+1 fresh copies.
		g := genieStub{stale: map[string]int{"c0": S}}
		tx, rx := NewCntLinear().New(g, channel.NoGenie{})
		tx.SendMsg("m")
		sent := pump(t, tx, rx, 1<<20)
		if sent != S+1 {
			t.Fatalf("stale=%d: sent %d data packets, want %d", S, sent, S+1)
		}
	}
}

func TestCountingStaleDataOfAcceptedPhaseReAcked(t *testing.T) {
	tx, rx := NewCntLinear().New(channel.NoGenie{}, channel.NoGenie{})
	tx.SendMsg("m0")
	pump(t, tx, rx, 1000)
	deliverAll(t, rx)
	// Receiver expects c1 now; a stale c0 copy must be re-acked (k0), not
	// delivered.
	rx.DeliverPkt(ioa.Packet{Header: "c0", Payload: "m0"})
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("stale c0 delivered: %v", got)
	}
	a, ok := rx.NextPkt()
	if !ok || a.Header != "k0" {
		t.Fatalf("stale c0 should be re-acked with k0, got %v,%t", a, ok)
	}
}

func TestCountingUnexpectedBitNotAckedBeforeFirstAccept(t *testing.T) {
	_, rx := NewCntLinear().New(channel.NoGenie{}, channel.NoGenie{})
	// Nothing accepted yet; a c1 copy (adversarial) must not be acked.
	rx.DeliverPkt(ioa.Packet{Header: "c1", Payload: "x"})
	if _, ok := rx.NextPkt(); ok {
		t.Fatal("receiver acked a bit it never accepted")
	}
}

func TestCountingTransmitterIgnoresWrongBitAcks(t *testing.T) {
	tx, _ := NewCntLinear().New(channel.NoGenie{}, channel.NoGenie{})
	tx.SendMsg("m")
	tx.DeliverPkt(ioa.Packet{Header: "k1"}) // stale ack of the other bit
	if !tx.Busy() {
		t.Fatal("wrong-bit ack must not confirm the phase")
	}
	tx.DeliverPkt(ioa.Packet{Header: "k0"}) // threshold 0: one fresh ack suffices
	if tx.Busy() {
		t.Fatal("fresh ack should confirm the phase")
	}
}

// TestCountingTransmitterAckThreshold: with stale acks on the reverse
// channel, the transmitter needs stale+1 same-bit acks.
func TestCountingTransmitterAckThreshold(t *testing.T) {
	const S = 3
	g := genieStub{stale: map[string]int{"k0": S}}
	tx, _ := NewCntLinear().New(channel.NoGenie{}, g)
	tx.SendMsg("m")
	for i := 0; i < S; i++ {
		tx.DeliverPkt(ioa.Packet{Header: "k0"})
		if !tx.Busy() {
			t.Fatalf("transmitter confirmed after %d acks with %d stale", i+1, S)
		}
	}
	tx.DeliverPkt(ioa.Packet{Header: "k0"})
	if tx.Busy() {
		t.Fatal("transmitter should confirm after stale+1 acks")
	}
}

func TestCountingCloneIndependence(t *testing.T) {
	tx, rx := NewCntLinear().New(channel.NoGenie{}, channel.NoGenie{})
	tx.SendMsg("m0")
	tc, rc := tx.Clone(), rx.Clone()
	pump(t, tc, rc, 1000)
	if !tx.Busy() {
		t.Fatal("original transmitter mutated by clone run")
	}
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("original receiver delivered %v", got)
	}
	// Receiver clone's fresh map must be independent.
	rx.DeliverPkt(ioa.Packet{Header: "c0", Payload: "m0"})
	rc2 := rx.Clone()
	rx.DeliverPkt(ioa.Packet{Header: "c0", Payload: "m0"})
	if rx.StateKey() == rc2.StateKey() {
		t.Fatal("receiver clone shares fresh-count state")
	}
}

func TestStateKeysDiffer(t *testing.T) {
	// State keys must reflect state: same-config endpoints agree, then
	// diverge after an input.
	for _, proto := range []Protocol{NewAltBit(), NewSeqNum(), NewCntLinear(), NewCntExp()} {
		t.Run(proto.Name(), func(t *testing.T) {
			t1, r1 := proto.New(channel.NoGenie{}, channel.NoGenie{})
			t2, r2 := proto.New(channel.NoGenie{}, channel.NoGenie{})
			if t1.StateKey() != t2.StateKey() || r1.StateKey() != r2.StateKey() {
				t.Fatal("fresh endpoints should have equal state keys")
			}
			t1.SendMsg("m")
			if t1.StateKey() == t2.StateKey() {
				t.Fatal("SendMsg should change the transmitter state key")
			}
			if p, ok := t1.NextPkt(); ok {
				r1.DeliverPkt(p)
				if r1.StateKey() == r2.StateKey() {
					t.Fatal("DeliverPkt should change the receiver state key")
				}
			}
		})
	}
}

func TestCountingStateSizeGrowsWithCounters(t *testing.T) {
	g := genieStub{stale: map[string]int{"c0": 100000}}
	_, rx := NewCntLinear().New(g, channel.NoGenie{})
	small, _ := NewCntLinear().New(channel.NoGenie{}, channel.NoGenie{})
	_ = small
	_, rx0 := NewCntLinear().New(channel.NoGenie{}, channel.NoGenie{})
	if rx.StateSize() <= rx0.StateSize() {
		t.Fatalf("state size should grow with counter magnitude: %d vs %d",
			rx.StateSize(), rx0.StateSize())
	}
	if !strings.Contains(rx.StateKey(), "stale=100000") {
		t.Fatalf("state key should expose the stale counter: %s", rx.StateKey())
	}
}

func TestCountingModeString(t *testing.T) {
	if modeLinear.String() != "cntlinear" || modeExp.String() != "cntexp" || modeCheat.String() != "cheat" {
		t.Fatal("mode strings wrong")
	}
}

// --- payload-binding ablation ---

func TestCntNoBindHandshake(t *testing.T) {
	tx, rx := NewCntNoBind().New(channel.NoGenie{}, channel.NoGenie{})
	for _, want := range []string{"m0", "m1", "m2"} {
		tx.SendMsg(want)
		pump(t, tx, rx, 10000)
		got := deliverAll(t, rx)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("delivered %v, want [%s]", got, want)
		}
	}
}

// TestCntNoBindMixingAttack shows why the threshold must bind payloads:
// with S stale copies and one fresh copy, the pooled counter crosses on a
// stale copy and delivers the stale payload.
func TestCntNoBindMixingAttack(t *testing.T) {
	const S = 3
	g := genieStub{stale: map[string]int{"c0": S}}
	_, rx := NewCntNoBind().New(g, channel.NoGenie{})
	// One fresh copy first, then the stale pool: the S+1'th copy is stale.
	rx.DeliverPkt(ioa.Packet{Header: "c0", Payload: "fresh"})
	for i := 0; i < S; i++ {
		rx.DeliverPkt(ioa.Packet{Header: "c0", Payload: "stale"})
	}
	got := rx.TakeDelivered()
	if len(got) != 1 || got[0] != "stale" {
		t.Fatalf("ablated receiver should deliver the stale payload, got %v", got)
	}
	// The bound receiver resists the identical schedule.
	_, rx2 := NewCntLinear().New(g, channel.NoGenie{})
	rx2.DeliverPkt(ioa.Packet{Header: "c0", Payload: "fresh"})
	for i := 0; i < S; i++ {
		rx2.DeliverPkt(ioa.Packet{Header: "c0", Payload: "stale"})
	}
	if got := rx2.TakeDelivered(); len(got) != 0 {
		t.Fatalf("bound receiver should resist, delivered %v", got)
	}
}
