// Package protocol implements data link layer protocols (Mansour &
// Schieber, PODC '89, Section 2.3) as pairs of deterministic, cloneable
// endpoint automata.
//
// Each protocol is a pair (A^t, A^r): a Transmitter automaton at the
// transmitting station and a Receiver automaton at the receiving station.
// The endpoints communicate only through packets handed to the channels by
// the simulation engine (internal/sim) or by an adversary
// (internal/adversary); they expose Clone and StateKey so the adversary
// constructions can branch executions and detect repeated joint states,
// which is how the paper's proofs manipulate executions.
//
// The implemented protocols span the design space the paper discusses:
//
//   - seqnum   — the naive protocol: the i-th message uses the i-th header;
//     n headers for n messages, O(log n) space, O(1) packets per
//     message. The paper's Theorem 3.1 shows its header usage is
//     optimal for any space-bounded protocol.
//   - altbit   — the alternating bit protocol [BSW69]: 4 headers,
//     finite-state, correct over lossy FIFO channels but unsafe
//     over non-FIFO channels (the replay adversary proves it).
//   - cntlinear — an Afek-style counting protocol with a stale-copy genie:
//     Θ(packets-in-transit) packets per message, the tight upper
//     bound shape of Theorem 4.1. See DESIGN.md §2 for the genie
//     substitution argument.
//   - cntexp   — an AFWZ-style pessimistic counting protocol: packet cost
//     grows exponentially in the number of messages even on a
//     perfect channel, matching the paper's description of
//     [AFWZ88].
//   - cheat(d) — cntlinear with its acceptance threshold under-provisioned
//     by d copies; exists to be broken by the replay adversary,
//     demonstrating the Theorem 4.1 mechanism.
package protocol

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// Transmitter is the data link automaton A^t at the transmitting station.
//
// Inputs are SendMsg (from the higher layer) and DeliverPkt (receive_pkt on
// the r→t channel). NextPkt performs one enabled send_pkt^{t→r} output
// action, mutating the automaton state; retransmission is modelled by
// NextPkt remaining enabled while the automaton is Busy.
type Transmitter interface {
	// SendMsg accepts a message from the higher layer. Messages are
	// queued; the protocol works on them in FIFO order.
	SendMsg(payload string)
	// DeliverPkt delivers a packet arriving on the r→t channel.
	DeliverPkt(p ioa.Packet)
	// NextPkt performs one enabled send_pkt^{t→r} action and returns the
	// packet, or ok=false if no output action is currently enabled.
	NextPkt() (ioa.Packet, bool)
	// Busy reports whether the automaton has an accepted message whose
	// delivery it has not yet confirmed, or queued messages.
	Busy() bool
	// Clone returns an independent deep copy.
	Clone() Transmitter
	// StateKey returns a canonical encoding of the automaton state.
	StateKey() string
	// StateSize returns a proxy for the space used by the automaton
	// state, in abstract units (counter words + queued payload bytes).
	StateSize() int
}

// Receiver is the data link automaton A^r at the receiving station.
type Receiver interface {
	// DeliverPkt delivers a packet arriving on the t→r channel.
	DeliverPkt(p ioa.Packet)
	// NextPkt performs one enabled send_pkt^{r→t} action (an
	// acknowledgement) and returns the packet, or ok=false if none is
	// enabled.
	NextPkt() (ioa.Packet, bool)
	// TakeDelivered drains the payloads of messages delivered to the
	// higher layer (receive_msg actions) since the previous call.
	TakeDelivered() []string
	// Clone returns an independent deep copy.
	Clone() Receiver
	// StateKey returns a canonical encoding of the automaton state.
	StateKey() string
	// StateSize returns a proxy for the space used by the automaton state.
	StateSize() int
}

// Protocol describes a data link protocol and constructs endpoint pairs.
type Protocol interface {
	// Name returns the protocol's registry name.
	Name() string
	// HeaderBound returns the size of the protocol's static packet
	// alphabet. bounded is false when the alphabet grows with the number
	// of messages (as for seqnum).
	HeaderBound() (k int, bounded bool)
	// New constructs a fresh endpoint pair. dataGenie reports stale
	// in-transit copies on the t→r channel (used by counting receivers);
	// ackGenie reports stale copies on the r→t channel (used by counting
	// transmitters). Protocols that need no oracle ignore them; passing
	// channel.NoGenie{} is always allowed.
	New(dataGenie, ackGenie channel.Genie) (Transmitter, Receiver)
}

// AckGenieUser is implemented by transmitters that consult a stale-copy
// oracle for the r→t channel. When an endpoint is cloned into a forked
// execution (sim.Runner.Fork), the harness rebinds the genie to the forked
// channel through this hook; the endpoints only read the genie at phase
// starts, so rebinding between phases is safe.
type AckGenieUser interface {
	SetAckGenie(g channel.Genie)
}

// DataGenieUser is the receiver-side analogue of AckGenieUser, for the t→r
// channel oracle.
type DataGenieUser interface {
	SetDataGenie(g channel.Genie)
}

// Registry returns all built-in protocols keyed by name. The cheat variants
// are included with their default under-provisioning d=1.
func Registry() map[string]Protocol {
	ps := []Protocol{
		NewSeqNum(),
		NewAltBit(),
		NewCntLinear(),
		NewCntExp(),
		NewCntK(4),
		NewCheat(1),
	}
	m := make(map[string]Protocol, len(ps))
	for _, p := range ps {
		m[p.Name()] = p
	}
	return m
}

// Names returns the registry names in sorted order.
func Names() []string {
	m := Registry()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// keyf builds canonical state keys.
func keyf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// keyBuf assembles state keys by direct append. StateKey sits on the hot
// path of both the adversary search and the fuzzer's coverage signal (two
// calls per simulator operation), and fmt.Sprintf dominated those CPU
// profiles; the append methods render the same bytes as the %d/%t/%q/%s
// verbs without reflection. Verb names mirror fmt's.
type keyBuf struct{ buf []byte }

func key(prefix string) *keyBuf { return &keyBuf{buf: append(make([]byte, 0, 96), prefix...)} }

func (k *keyBuf) s(s string) *keyBuf { k.buf = append(k.buf, s...); return k }
func (k *keyBuf) d(n int) *keyBuf    { k.buf = strconv.AppendInt(k.buf, int64(n), 10); return k }
func (k *keyBuf) t(v bool) *keyBuf   { k.buf = strconv.AppendBool(k.buf, v); return k }
func (k *keyBuf) q(s string) *keyBuf { k.buf = strconv.AppendQuote(k.buf, s); return k }

// pair renders a [2]int the way %v does: "[a b]".
func (k *keyBuf) pair(a [2]int) *keyBuf {
	return k.s("[").d(a[0]).s(" ").d(a[1]).s("]")
}

// queue renders a payload queue like joinQueue.
func (k *keyBuf) queue(q []string) *keyBuf {
	for i, s := range q {
		if i > 0 {
			k.s("|")
		}
		k.s(s)
	}
	return k
}

func (k *keyBuf) done() string { return string(k.buf) }

// joinQueue encodes a payload queue into a state key component.
func joinQueue(q []string) string { return strings.Join(q, "|") }

// queueBytes is a space proxy for queued payloads.
func queueBytes(q []string) int {
	n := 0
	for _, s := range q {
		n += len(s)
	}
	return n
}

// cloneQueue deep-copies a payload queue.
func cloneQueue(q []string) []string {
	if len(q) == 0 {
		return nil
	}
	out := make([]string, len(q))
	copy(out, q)
	return out
}
