// Package protocol implements data link layer protocols (Mansour &
// Schieber, PODC '89, Section 2.3) as pairs of deterministic, cloneable
// endpoint automata.
//
// Each protocol is a pair (A^t, A^r): a Transmitter automaton at the
// transmitting station and a Receiver automaton at the receiving station.
// The endpoints communicate only through packets handed to the channels by
// the simulation engine (internal/sim) or by an adversary
// (internal/adversary); they expose Clone and StateKey so the adversary
// constructions can branch executions and detect repeated joint states,
// which is how the paper's proofs manipulate executions.
//
// The implemented protocols span the design space the paper discusses:
//
//   - seqnum   — the naive protocol: the i-th message uses the i-th header;
//     n headers for n messages, O(log n) space, O(1) packets per
//     message. The paper's Theorem 3.1 shows its header usage is
//     optimal for any space-bounded protocol.
//   - altbit   — the alternating bit protocol [BSW69]: 4 headers,
//     finite-state, correct over lossy FIFO channels but unsafe
//     over non-FIFO channels (the replay adversary proves it).
//   - cntlinear — an Afek-style counting protocol with a stale-copy genie:
//     Θ(packets-in-transit) packets per message, the tight upper
//     bound shape of Theorem 4.1. See DESIGN.md §2 for the genie
//     substitution argument.
//   - cntexp   — an AFWZ-style pessimistic counting protocol: packet cost
//     grows exponentially in the number of messages even on a
//     perfect channel, matching the paper's description of
//     [AFWZ88].
//   - cheat(d) — cntlinear with its acceptance threshold under-provisioned
//     by d copies; exists to be broken by the replay adversary,
//     demonstrating the Theorem 4.1 mechanism.
package protocol

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// Transmitter is the data link automaton A^t at the transmitting station.
//
// Inputs are SendMsg (from the higher layer) and DeliverPkt (receive_pkt on
// the r→t channel). NextPkt performs one enabled send_pkt^{t→r} output
// action, mutating the automaton state; retransmission is modelled by
// NextPkt remaining enabled while the automaton is Busy.
type Transmitter interface {
	// SendMsg accepts a message from the higher layer. Messages are
	// queued; the protocol works on them in FIFO order.
	SendMsg(payload string)
	// DeliverPkt delivers a packet arriving on the r→t channel.
	DeliverPkt(p ioa.Packet)
	// NextPkt performs one enabled send_pkt^{t→r} action and returns the
	// packet, or ok=false if no output action is currently enabled.
	NextPkt() (ioa.Packet, bool)
	// Busy reports whether the automaton has an accepted message whose
	// delivery it has not yet confirmed, or queued messages.
	Busy() bool
	// Clone returns an independent deep copy.
	Clone() Transmitter
	// StateKey returns a canonical encoding of the automaton state.
	StateKey() string
	// StateSize returns a proxy for the space used by the automaton
	// state, in abstract units (counter words + queued payload bytes).
	StateSize() int
}

// Receiver is the data link automaton A^r at the receiving station.
type Receiver interface {
	// DeliverPkt delivers a packet arriving on the t→r channel.
	DeliverPkt(p ioa.Packet)
	// NextPkt performs one enabled send_pkt^{r→t} action (an
	// acknowledgement) and returns the packet, or ok=false if none is
	// enabled.
	NextPkt() (ioa.Packet, bool)
	// TakeDelivered drains the payloads of messages delivered to the
	// higher layer (receive_msg actions) since the previous call.
	TakeDelivered() []string
	// Clone returns an independent deep copy.
	Clone() Receiver
	// StateKey returns a canonical encoding of the automaton state.
	StateKey() string
	// StateSize returns a proxy for the space used by the automaton state.
	StateSize() int
}

// Protocol describes a data link protocol and constructs endpoint pairs.
type Protocol interface {
	// Name returns the protocol's registry name.
	Name() string
	// HeaderBound returns the size of the protocol's static packet
	// alphabet. bounded is false when the alphabet grows with the number
	// of messages (as for seqnum).
	HeaderBound() (k int, bounded bool)
	// New constructs a fresh endpoint pair. dataGenie reports stale
	// in-transit copies on the t→r channel (used by counting receivers);
	// ackGenie reports stale copies on the r→t channel (used by counting
	// transmitters). Protocols that need no oracle ignore them; passing
	// channel.NoGenie{} is always allowed.
	New(dataGenie, ackGenie channel.Genie) (Transmitter, Receiver)
}

// Bounds declares a protocol's expected state-complexity envelope. The
// static boundness auditor (internal/analyze, `nfvet audit`) enumerates the
// joint control states reachable under bounded channel occupancy and checks
// the observation against this declaration: a protocol declared
// StateBounded whose enumeration exceeds the state budget fails the audit,
// as does one declared unbounded whose reachable control space turns out
// finite (the declaration would be understating the protocol, and with it
// the paper's Theorem 2.1 pumping argument would apply after all).
type Bounds struct {
	// StateBounded declares whether the joint control-state space
	// (q_t, q_r) reachable under bounded channel occupancy is finite.
	StateBounded bool
	// KT and KR, when nonzero, are ceilings on the distinct transmitter
	// and receiver control states the audit may observe — the k_t and k_r
	// of Theorem 2.1's k_t·k_r execution-length bound. Zero means
	// "bounded, but no exact ceiling declared".
	KT, KR int
	// Headers, when nonzero, is a ceiling on the distinct packet headers
	// the audit may observe in transit. For protocols with a bounded
	// HeaderBound the audit additionally checks Headers against it
	// (Theorem 3.1/4.1 precondition: a fixed h-letter alphabet).
	Headers int
}

// Bounded is an optional Protocol extension declaring the expected bounds
// for the static auditor. Protocols that do not implement it are audited
// with no declaration to check against (observations are reported only).
type Bounded interface {
	Bounds() Bounds
}

// DLStatus is an optional Protocol extension declaring the protocol's
// expected data-link verdict over non-FIFO channels, checked by the
// bounded reachability verifier (internal/verify, `nfvet verify`). It is
// the safety analogue of Bounds: where Bounds declares the control-space
// envelope the audit enumerates, DLStatus declares whether exhaustive
// exploration of that space is expected to find a DL violation at all.
type DLStatus interface {
	// AttackBounds returns the smallest (per-channel occupancy cap,
	// message count) at which a DL1/DL3 violation is expected to be
	// reachable. (0, 0) declares the protocol DL-sound at every occupancy:
	// the verifier FAILs the protocol if it finds a counterexample.
	// Nonzero bounds declare the protocol attackable: the verifier FAILs
	// the protocol if it exhausts a space at least that large without
	// finding the violation.
	AttackBounds() (occupancy, messages int)
}

// CorruptionSpace enumerates the bounded corrupted initial configurations of
// a protocol: alternative endpoint start states and channel pre-contents the
// self-stabilization tooling (internal/stabilize, `nfvet stabilize`,
// `nffuzz -corrupt`, `nfvet verify -stabilize`) injects before time 0. The
// space is a cross product: any listed transmitter × any listed receiver ×
// any multiset (up to the occupancy bound) of poison packets per channel.
type CorruptionSpace struct {
	// Transmitters are the corrupted transmitter start states. Index 0 MUST
	// be the clean initial state; the slice must be non-empty. Entries are
	// templates: injection clones them, so one space can seed many runs.
	Transmitters []Transmitter
	// Receivers are the corrupted receiver start states, same conventions.
	Receivers []Receiver
	// DataPoison and AckPoison are the alphabets of packets an adversary may
	// pre-load onto the t→r and r→t channels ("in transit since before time
	// 0"). The enumeration places multisets over these alphabets up to the
	// channel occupancy bound.
	DataPoison []ioa.Packet
	AckPoison  []ioa.Packet
}

// Corruptible is an optional Protocol extension declaring the protocol's
// bounded corruption space, making it a subject for arbitrary-start
// convergence checking. Corrupted endpoint states must satisfy the same
// StateKey/Clone contracts as clean ones, so corrupted configurations get
// canonical keys and intern into the existing coverage and visited maps.
type Corruptible interface {
	Corruptions() CorruptionSpace
}

// StabilizeStatus is an optional Protocol extension declaring whether the
// protocol is expected to self-stabilize: to recover DL1–DL3, up to finitely
// many initial faults, from every configuration in its corruption space. It
// is the convergence analogue of DLStatus — `nfvet verify -stabilize` FAILs
// a declared-stabilizing protocol it finds a divergence witness for, and
// FAILs a declared-non-stabilizing protocol whose bounded corrupted space is
// exhausted divergence-free.
type StabilizeStatus interface {
	SelfStabilizing() bool
}

// ControlKeyer is an optional endpoint extension returning the *control
// state* key: StateKey quotiented by bookkeeping that grows without bound
// but never influences behavior — a phase counter the automaton only reads
// modulo k, or metrics counters. The boundness auditor enumerates control
// keys, so an implementation carries a proof obligation (a bisimulation):
// two endpoint states with equal ControlKey must produce identical observable
// behavior, and ControlKey-equal successors, under every input.
type ControlKeyer interface {
	ControlKey() string
}

// ControlKeyOf returns the endpoint's control key, falling back to the full
// StateKey for endpoints without a declared quotient.
func ControlKeyOf(endpoint interface{ StateKey() string }) string {
	if ck, ok := endpoint.(ControlKeyer); ok {
		return ck.ControlKey()
	}
	return endpoint.StateKey()
}

// KeyAppender is an optional endpoint extension rendering StateKey into a
// caller-provided buffer without allocating. Implementations must append
// exactly the bytes StateKey returns — the interned exploration cores build
// identity from these bytes, and the simdiff harness holds the two paths
// equal.
type KeyAppender interface {
	AppendStateKey(dst []byte) []byte
}

// ControlKeyAppender is the ControlKeyer analogue of KeyAppender.
type ControlKeyAppender interface {
	AppendControlKey(dst []byte) []byte
}

// AppendStateKeyOf appends the endpoint's StateKey to dst, using the
// zero-alloc appender when the endpoint provides one.
func AppendStateKeyOf(dst []byte, endpoint interface{ StateKey() string }) []byte {
	if ka, ok := endpoint.(KeyAppender); ok {
		return ka.AppendStateKey(dst)
	}
	return append(dst, endpoint.StateKey()...)
}

// AppendControlKeyOf appends the endpoint's control key to dst, mirroring
// ControlKeyOf's fallback chain: declared control-key appender, then string
// ControlKey, then the state key.
func AppendControlKeyOf(dst []byte, endpoint interface{ StateKey() string }) []byte {
	if ca, ok := endpoint.(ControlKeyAppender); ok {
		return ca.AppendControlKey(dst)
	}
	if ck, ok := endpoint.(ControlKeyer); ok {
		return append(dst, ck.ControlKey()...)
	}
	return AppendStateKeyOf(dst, endpoint)
}

// AckGenieUser is implemented by transmitters that consult a stale-copy
// oracle for the r→t channel. When an endpoint is cloned into a forked
// execution (sim.Runner.Fork), the harness rebinds the genie to the forked
// channel through this hook; the endpoints only read the genie at phase
// starts, so rebinding between phases is safe.
type AckGenieUser interface {
	SetAckGenie(g channel.Genie)
}

// DataGenieUser is the receiver-side analogue of AckGenieUser, for the t→r
// channel oracle.
type DataGenieUser interface {
	SetDataGenie(g channel.Genie)
}

// Registry returns all built-in protocols keyed by name. The cheat variants
// are included with their default under-provisioning d=1.
func Registry() map[string]Protocol {
	ps := []Protocol{
		NewSeqNum(),
		NewAltBit(),
		NewCntLinear(),
		NewCntExp(),
		NewCntK(4),
		NewCheat(1),
		NewStabDL(2),
		NewStabNaive(),
	}
	m := make(map[string]Protocol, len(ps))
	for _, p := range ps {
		m[p.Name()] = p
	}
	return m
}

// Names returns the registry names in sorted order.
func Names() []string {
	m := Registry()
	out := make([]string, 0, len(m))
	//nfvet:allow maprange (keys are collected then sorted before use)
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// keyBuf assembles state keys by direct append. StateKey sits on the hot
// path of both the adversary search and the fuzzer's coverage signal (two
// calls per simulator operation), and fmt.Sprintf dominated those CPU
// profiles; the append methods render the same bytes as the %d/%t/%q/%s
// verbs without reflection. Verb names mirror fmt's. The builder is a
// by-value chain so keyTo-rooted chains stay on the stack: the Append*Key
// endpoint methods render into caller scratch buffers with zero
// allocations.
type keyBuf struct{ buf []byte }

func key(prefix string) keyBuf { return keyBuf{buf: append(make([]byte, 0, 96), prefix...)} }

// keyTo roots a chain in a caller-provided buffer for the Append*Key paths.
func keyTo(dst []byte, prefix string) keyBuf { return keyBuf{buf: append(dst, prefix...)} }

func (k keyBuf) s(s string) keyBuf { k.buf = append(k.buf, s...); return k }
func (k keyBuf) d(n int) keyBuf    { k.buf = strconv.AppendInt(k.buf, int64(n), 10); return k }
func (k keyBuf) t(v bool) keyBuf   { k.buf = strconv.AppendBool(k.buf, v); return k }
func (k keyBuf) q(s string) keyBuf { k.buf = strconv.AppendQuote(k.buf, s); return k }

// pair renders a [2]int the way %v does: "[a b]".
func (k keyBuf) pair(a [2]int) keyBuf {
	return k.s("[").d(a[0]).s(" ").d(a[1]).s("]")
}

// queue renders a payload queue like joinQueue.
func (k keyBuf) queue(q []string) keyBuf {
	for i, s := range q {
		if i > 0 {
			k = k.s("|")
		}
		k = k.s(s)
	}
	return k
}

func (k keyBuf) done() string  { return string(k.buf) }
func (k keyBuf) bytes() []byte { return k.buf }

// keyString materialises an Append*Key renderer as a string, for the
// StateKey/ControlKey forms that remain the reporting and string-core path.
func keyString(render func([]byte) []byte) string {
	return string(render(make([]byte, 0, 96)))
}

// payloadCounts is a deterministic multiset of per-payload receipt counts:
// a sorted assoc slice, so that rendering it into a state key needs no
// collect-then-sort pass and no map iteration. The counting receivers keep
// one entry per distinct payload seen in the current phase; entries reset
// with the phase (assign nil).
type payloadCounts []payloadCount

type payloadCount struct {
	payload string
	n       int
}

// inc bumps the count for payload, keeping the slice sorted, and returns
// the new count.
func (pc *payloadCounts) inc(payload string) int {
	s := *pc
	i := sort.Search(len(s), func(i int) bool { return s[i].payload >= payload })
	if i < len(s) && s[i].payload == payload {
		s[i].n++
		return s[i].n
	}
	s = append(s, payloadCount{})
	copy(s[i+1:], s[i:])
	s[i] = payloadCount{payload: payload, n: 1}
	*pc = s
	return 1
}

// clone deep-copies the counts.
func (pc payloadCounts) clone() payloadCounts {
	if len(pc) == 0 {
		return nil
	}
	out := make(payloadCounts, len(pc))
	copy(out, pc)
	return out
}

// payloads renders the counts as "p=n;" runs (already sorted).
func (k keyBuf) payloads(pc payloadCounts) keyBuf {
	for _, e := range pc {
		k = k.s(e.payload).s("=").d(e.n).s(";")
	}
	return k
}

// joinQueue encodes a payload queue into a state key component.
func joinQueue(q []string) string { return strings.Join(q, "|") }

// queueBytes is a space proxy for queued payloads.
func queueBytes(q []string) int {
	n := 0
	for _, s := range q {
		n += len(s)
	}
	return n
}

// cloneQueue deep-copies a payload queue.
func cloneQueue(q []string) []string {
	if len(q) == 0 {
		return nil
	}
	out := make([]string, len(q))
	copy(out, q)
	return out
}
