package protocol

import (
	"repro/internal/channel"
	"repro/internal/ioa"
)

// AltBit is the alternating bit protocol of Bartlett, Scantlebury and
// Wilkinson [BSW69]: the canonical bounded-header protocol. It uses four
// headers — data packets "d0"/"d1" and acknowledgements "a0"/"a1" — and a
// constant amount of state at each endpoint.
//
// Over a lossy FIFO channel the protocol is correct. Over the paper's
// non-FIFO channel it is unsafe: a delayed copy of an old data packet with
// the currently expected bit is indistinguishable from a fresh one, and the
// replay adversary (internal/adversary) finds a concrete execution with
// rm = sm + 1, violating DL1. This is the executable form of the [LMF88]
// impossibility that motivates the paper.
type AltBit struct{}

// NewAltBit returns the alternating bit protocol descriptor.
func NewAltBit() AltBit { return AltBit{} }

// Name implements Protocol.
func (AltBit) Name() string { return "altbit" }

// HeaderBound implements Protocol. The alphabet is {d0, d1, a0, a1}.
func (AltBit) HeaderBound() (int, bool) { return 4, true }

// Bounds implements Bounded. Under the audit's submit discipline (a message
// is submitted only when the transmitter is idle, with the paper's
// all-messages-identical payload) the transmitter's control states are
// bit × busy = 4 and the receiver's are expect = 2; this finiteness is what
// makes the alternating bit protocol subject to Theorem 2.1's k_t·k_r
// pumping bound — and to the replay attack that breaks it.
func (AltBit) Bounds() Bounds { return Bounds{StateBounded: true, KT: 4, KR: 2, Headers: 4} }

// AttackBounds implements DLStatus. The classic replay attack needs a stale
// d-packet with the currently expected bit, which requires the bit to cycle
// back: three messages (m0 delayed, m1 accepted, m2 expected but the stale
// m0 copy arrives first) and two copies in transit on the data channel.
func (AltBit) AttackBounds() (int, int) { return 2, 3 }

// New implements Protocol. The genies are ignored: the alternating bit
// protocol has no channel oracle (which is exactly why it is unsafe here).
func (AltBit) New(_, _ channel.Genie) (Transmitter, Receiver) {
	return &altBitT{}, &altBitR{}
}

// SelfStabilizing implements StabilizeStatus: the alternating bit protocol
// has no repair rule at all — a flipped expect bit or a poison data packet
// with the expected bit immediately costs more faults than the amnesty
// budget forgives, so a divergence witness is expected.
func (AltBit) SelfStabilizing() bool { return false }

// Corruptions implements Corruptible: single-bit endpoint corruptions plus
// forged data packets (garbage payload "z") and forged acks on either bit.
func (AltBit) Corruptions() CorruptionSpace {
	return CorruptionSpace{
		Transmitters: []Transmitter{
			&altBitT{},
			&altBitT{bit: 1},
			&altBitT{busy: true, payload: "z"},
		},
		Receivers: []Receiver{
			&altBitR{},
			&altBitR{expect: 1},
		},
		DataPoison: []ioa.Packet{
			{Header: "d0", Payload: "z"},
			{Header: "d1", Payload: "z"},
		},
		AckPoison: []ioa.Packet{
			{Header: "a0"},
			{Header: "a1"},
		},
	}
}

// altBitT is the alternating bit transmitter: resend the current data
// packet until the matching ack arrives, then flip the bit.
type altBitT struct {
	bit     int
	busy    bool
	payload string
	queue   []string
}

var _ Transmitter = (*altBitT)(nil)

func (t *altBitT) SendMsg(payload string) {
	if t.busy {
		t.queue = append(t.queue, payload)
		return
	}
	t.busy = true
	t.payload = payload
}

func (t *altBitT) DeliverPkt(p ioa.Packet) {
	if !t.busy {
		return
	}
	if p.Header == altBitAck[t.bit].Header {
		// Current message acknowledged; move on.
		t.busy = false
		t.payload = ""
		t.bit ^= 1
		if len(t.queue) > 0 {
			t.busy = true
			t.payload = t.queue[0]
			t.queue = t.queue[1:]
		}
	}
	// Stale acks (wrong bit) are ignored.
}

func (t *altBitT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	return ioa.Packet{Header: altBitData[t.bit], Payload: t.payload}, true
}

func (t *altBitT) Busy() bool { return t.busy || len(t.queue) > 0 }

func (t *altBitT) Clone() Transmitter {
	c := *t
	c.queue = cloneQueue(t.queue)
	return &c
}

func (t *altBitT) StateKey() string { return keyString(t.AppendStateKey) }

func (t *altBitT) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "altbitT{bit=").d(t.bit).s(" busy=").t(t.busy).
		s(" payload=").q(t.payload).s(" q=").queue(t.queue).s("}").bytes()
}

func (t *altBitT) StateSize() int {
	return 2 + len(t.payload) + queueBytes(t.queue)
}

// altBitR is the alternating bit receiver: deliver a data packet whose bit
// matches the expected bit, acknowledge every data packet with its own bit.
type altBitR struct {
	expect    int
	delivered []string
	acks      []ioa.Packet
}

var _ Receiver = (*altBitR)(nil)

// altBitAck and altBitData hold the packet values of the two-symbol header
// alphabet; working from constant tables keeps the send and delivery hot
// paths free of string building.
var (
	altBitAck  = [2]ioa.Packet{{Header: "a0"}, {Header: "a1"}}
	altBitData = [2]string{"d0", "d1"}
)

func (r *altBitR) DeliverPkt(p ioa.Packet) {
	var bit int
	switch p.Header {
	case "d0":
		bit = 0
	case "d1":
		bit = 1
	default:
		return // not a data packet; ignore
	}
	// Acknowledge with the packet's own bit (also for duplicates, so a
	// lost ack is eventually repaired by the retransmitted data packet).
	r.acks = append(r.acks, altBitAck[bit])
	if bit == r.expect {
		r.delivered = append(r.delivered, p.Payload)
		r.expect ^= 1
	}
}

func (r *altBitR) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *altBitR) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *altBitR) Clone() Receiver {
	c := *r
	c.delivered = cloneQueue(r.delivered)
	if len(r.acks) > 0 {
		c.acks = make([]ioa.Packet, len(r.acks))
		copy(c.acks, r.acks)
	} else {
		c.acks = nil
	}
	return &c
}

func (r *altBitR) StateKey() string { return keyString(r.AppendStateKey) }

func (r *altBitR) AppendStateKey(dst []byte) []byte {
	return keyTo(dst, "altbitR{expect=").d(r.expect).s(" pendAcks=").d(len(r.acks)).
		s(" pendDeliv=").d(len(r.delivered)).s("}").bytes()
}

func (r *altBitR) StateSize() int {
	return 1 + len(r.acks) + queueBytes(r.delivered)
}
