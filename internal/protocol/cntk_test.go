package protocol

import (
	"fmt"
	"testing"

	"repro/internal/channel"
	"repro/internal/ioa"
)

func TestCntKNameAndBound(t *testing.T) {
	p := NewCntK(8)
	if p.Name() != "cntk8" {
		t.Fatalf("Name = %q", p.Name())
	}
	if k, bounded := p.HeaderBound(); !bounded || k != 16 {
		t.Fatalf("HeaderBound = %d,%t", k, bounded)
	}
	if NewCntK(0).K != 2 {
		t.Fatal("K should clamp to 2")
	}
}

func TestCntKHandshake(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			tx, rx := NewCntK(k).New(channel.NoGenie{}, channel.NoGenie{})
			for i := 0; i < 2*k+1; i++ {
				want := fmt.Sprintf("m%d", i)
				tx.SendMsg(want)
				sent := pump(t, tx, rx, 10000)
				if sent != 1 {
					t.Fatalf("message %d took %d packets on a perfect channel", i, sent)
				}
				got := deliverAll(t, rx)
				if len(got) != 1 || got[0] != want {
					t.Fatalf("message %d delivered %v", i, got)
				}
			}
		})
	}
}

func TestCntKHeaderCycling(t *testing.T) {
	tx, rx := NewCntK(3).New(channel.NoGenie{}, channel.NoGenie{})
	var headers []string
	for i := 0; i < 6; i++ {
		tx.SendMsg("x")
		p, ok := tx.NextPkt()
		if !ok {
			t.Fatal("no packet")
		}
		headers = append(headers, p.Header)
		rx.DeliverPkt(p)
		for {
			a, ok := rx.NextPkt()
			if !ok {
				break
			}
			tx.DeliverPkt(a)
		}
		deliverAll(t, rx)
	}
	want := []string{"c3:0", "c3:1", "c3:2", "c3:0", "c3:1", "c3:2"}
	for i := range want {
		if headers[i] != want[i] {
			t.Fatalf("headers = %v, want %v", headers, want)
		}
	}
}

func TestCntKThresholdCountsOwnHeaderOnly(t *testing.T) {
	// Stale copies of other headers must not inflate the threshold: with
	// stale copies only on c4:1..c4:3, phase 0 accepts on the first copy.
	g := genieStub{stale: map[string]int{"c4:1": 5, "c4:2": 5, "c4:3": 5}}
	_, rx := NewCntK(4).New(g, channel.NoGenie{})
	rx.DeliverPkt(ioa.Packet{Header: "c4:0", Payload: "m0"})
	if got := rx.TakeDelivered(); len(got) != 1 {
		t.Fatalf("phase 0 should accept immediately, got %v", got)
	}
}

func TestCntKRefusesStaleFloodOfOwnHeader(t *testing.T) {
	const S = 4
	g := genieStub{stale: map[string]int{"c4:0": S}}
	_, rx := NewCntK(4).New(g, channel.NoGenie{})
	stale := ioa.Packet{Header: "c4:0", Payload: "old"}
	for i := 0; i < S; i++ {
		rx.DeliverPkt(stale)
	}
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("accepted with only stale copies: %v", got)
	}
	rx.DeliverPkt(stale)
	if got := rx.TakeDelivered(); len(got) != 1 {
		t.Fatalf("should accept after S+1 copies, got %v", got)
	}
}

func TestCntKOlderPhaseCopiesNotAcked(t *testing.T) {
	tx, rx := NewCntK(4).New(channel.NoGenie{}, channel.NoGenie{})
	// Deliver three messages so phases 0..2 are accepted.
	for i := 0; i < 3; i++ {
		tx.SendMsg(fmt.Sprintf("m%d", i))
		pump(t, tx, rx, 1000)
		deliverAll(t, rx)
	}
	// A stale copy of phase 0's header (two acceptances ago) is ignored.
	rx.DeliverPkt(ioa.Packet{Header: "c4:0", Payload: "m0"})
	if _, ok := rx.NextPkt(); ok {
		t.Fatal("copies of phases older than the last accepted must not be acked")
	}
	// A stale copy of the most recent phase (c4:2) is re-acked.
	rx.DeliverPkt(ioa.Packet{Header: "c4:2", Payload: "m2"})
	a, ok := rx.NextPkt()
	if !ok || a.Header != "k4:2" {
		t.Fatalf("expected re-ack k4:2, got %v,%t", a, ok)
	}
}

func TestCntKEquivalentShapeToCntLinearAtK2(t *testing.T) {
	// At K=2 the per-message cost against S stale copies matches the
	// alternating counting protocol's S+1.
	const S = 6
	g := genieStub{stale: map[string]int{"c2:0": S}}
	tx, rx := NewCntK(2).New(g, channel.NoGenie{})
	tx.SendMsg("m")
	sent := pump(t, tx, rx, 1<<20)
	if sent != S+1 {
		t.Fatalf("sent %d, want %d", sent, S+1)
	}
}

func TestCntKGenieRebinding(t *testing.T) {
	tx, rx := NewCntK(3).New(channel.NoGenie{}, channel.NoGenie{})
	g := genieStub{stale: map[string]int{"c3:1": 7}}
	if u, ok := rx.(DataGenieUser); ok {
		u.SetDataGenie(g)
	} else {
		t.Fatal("cntk receiver should support genie rebinding")
	}
	if u, ok := tx.(AckGenieUser); ok {
		u.SetAckGenie(channel.NoGenie{})
	} else {
		t.Fatal("cntk transmitter should support genie rebinding")
	}
	// Accept phase 0; the snapshot for phase 1 must consult the new genie.
	rx.DeliverPkt(ioa.Packet{Header: "c3:0", Payload: "m0"})
	deliverAll(t, rx)
	stale := ioa.Packet{Header: "c3:1", Payload: "old"}
	for i := 0; i < 7; i++ {
		rx.DeliverPkt(stale)
	}
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("rebound genie ignored: %v", got)
	}
}

func TestCntKCloneIndependence(t *testing.T) {
	tx, rx := NewCntK(4).New(channel.NoGenie{}, channel.NoGenie{})
	tx.SendMsg("m0")
	tc, rc := tx.Clone(), rx.Clone()
	pump(t, tc, rc, 1000)
	if !tx.Busy() {
		t.Fatal("clone run mutated original")
	}
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("original receiver delivered %v", got)
	}
}
