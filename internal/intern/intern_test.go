package intern

import (
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
)

// interner is the shared surface of Local and Table, so the round-trip
// property is proved for both variants.
type interner interface {
	Intern(string) uint32
	InternBytes([]byte) uint32
	Resolve(uint32) string
	AppendResolve([]byte, uint32) []byte
	Hash(uint32) uint64
	Len() int
}

// TestRoundTrip: Intern then Resolve is the identity, ids are dense in
// first-intern order, and re-interning returns the same id — for the
// locked Table and the single-goroutine Local alike.
func TestRoundTrip(t *testing.T) {
	for _, v := range []struct {
		name string
		tab  interner
	}{{"table", New()}, {"local", NewLocal()}} {
		t.Run(v.name, func(t *testing.T) { roundTrip(t, v.tab) })
	}
}

func roundTrip(t *testing.T, tab interner) {
	var keys []string
	for i := 0; i < 500; i++ {
		keys = append(keys, fmt.Sprintf("key-%d|{x×%d}|%d", i%97, i%7, i))
	}
	ids := make([]uint32, len(keys))
	for i, k := range keys {
		ids[i] = tab.Intern(k)
		if got := tab.Intern(k); got != ids[i] {
			t.Fatalf("re-intern %q: %d then %d", k, ids[i], got)
		}
		if got := tab.InternBytes([]byte(k)); got != ids[i] {
			t.Fatalf("InternBytes %q: %d, Intern gave %d", k, got, ids[i])
		}
	}
	for i, k := range keys {
		if got := tab.Resolve(ids[i]); got != k {
			t.Fatalf("Resolve(%d) = %q, want %q", ids[i], got, k)
		}
		if got := string(tab.AppendResolve(nil, ids[i])); got != k {
			t.Fatalf("AppendResolve(%d) = %q, want %q", ids[i], got, k)
		}
		h := fnv.New64a()
		_, _ = h.Write([]byte(k))
		if got := tab.Hash(ids[i]); got != h.Sum64() {
			t.Fatalf("Hash(%d) = %016x, want fnv64a(%q) = %016x", ids[i], got, k, h.Sum64())
		}
	}
	if tab.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tab.Len())
	}
}

// TestInjective: distinct strings get distinct ids — the property every
// packed-key dedup in verify/analyze leans on.
func TestInjective(t *testing.T) {
	tab := New()
	seen := make(map[uint32]string)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("%d", i)
		id := tab.Intern(k)
		if prev, ok := seen[id]; ok {
			t.Fatalf("id %d assigned to both %q and %q", id, prev, k)
		}
		seen[id] = k
	}
}

// TestInternBytesDoesNotRetain: the table must copy the bytes it keeps —
// callers hand it aliases of reused scratch buffers.
func TestInternBytesDoesNotRetain(t *testing.T) {
	tab := New()
	buf := []byte("original")
	id := tab.InternBytes(buf)
	copy(buf, "clobberd")
	if got := tab.Resolve(id); got != "original" {
		t.Fatalf("Resolve after clobbering the caller's buffer: %q, want %q", got, "original")
	}
}

// TestConcurrent hammers one table from many goroutines over an overlapping
// key space; run under -race this is the locking proof, and the final
// cross-check catches torn id assignments.
func TestConcurrent(t *testing.T) {
	tab := New()
	const workers, perWorker = 8, 400
	var wg sync.WaitGroup
	got := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, perWorker)
			for i := 0; i < perWorker; i++ {
				// Overlapping across workers: every key is interned by all.
				ids[i] = tab.Intern(fmt.Sprintf("shared-%d", i))
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range got[w] {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d interned shared-%d as %d, worker 0 as %d", w, i, got[w][i], got[0][i])
			}
		}
	}
	if tab.Len() != perWorker {
		t.Fatalf("Len = %d, want %d", tab.Len(), perWorker)
	}
}

// TestPack: Pack/Unpack round-trip and ordering of the halves.
func TestPack(t *testing.T) {
	cases := [][2]uint32{{0, 0}, {1, 0}, {0, 1}, {1 << 31, 7}, {0xffffffff, 0xffffffff}}
	for _, c := range cases {
		hi, lo := Unpack(Pack(c[0], c[1]))
		if hi != c[0] || lo != c[1] {
			t.Fatalf("Pack/Unpack(%d, %d) = (%d, %d)", c[0], c[1], hi, lo)
		}
	}
	if Pack(1, 0) == Pack(0, 1) {
		t.Fatal("Pack collapses (1,0) and (0,1)")
	}
}

// FuzzIntern feeds arbitrary byte strings through both intern entry points
// and checks round-trip, idempotence and hash agreement.
func FuzzIntern(f *testing.F) {
	f.Add([]byte("altbitT{bit=0 busy=false}"))
	f.Add([]byte(""))
	f.Add([]byte{0, 1, 2, 0xff})
	tab := New()
	f.Fuzz(func(t *testing.T, b []byte) {
		id := tab.InternBytes(b)
		if id2 := tab.Intern(string(b)); id2 != id {
			t.Fatalf("Intern vs InternBytes: %d vs %d", id2, id)
		}
		if got := tab.Resolve(id); got != string(b) {
			t.Fatalf("Resolve(%d) = %q, want %q", id, got, b)
		}
		h := fnv.New64a()
		_, _ = h.Write(b)
		if tab.Hash(id) != h.Sum64() {
			t.Fatalf("Hash(%d) != fnv64a(%q)", id, b)
		}
	})
}
