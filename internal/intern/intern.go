// Package intern maps canonical key strings — endpoint StateKey/ControlKey
// encodings, channel multiset keys, packet renderings — to dense uint32 ids.
//
// The repo's exploration engines (fuzz coverage, the bounded verifier, the
// static auditor) all dedup on canonical strings; PR 2 measured key
// construction and hashing at 43% of campaign CPU. Interning moves that cost
// to the *first* sight of each distinct key: the hot loops compare and map
// on integers, and the strings are only materialised for reports, witnesses
// and space hashes.
//
// Ids are assigned in first-intern order starting at 0 and are stable for
// the lifetime of the interner. Two variants share the implementation:
// Local is the unsynchronised core for single-goroutine owners (the bounded
// verifier's explorer, the audit bisimulation — their hot loops intern four
// components per generated configuration, and even an uncontended RWMutex
// costs two atomic ops per lookup), and Table wraps Local with an RWMutex
// for concurrent use; the fast path (a previously seen key) takes a read
// lock only. InternBytes lets callers intern from a reusable scratch buffer
// without allocating a string unless the key is genuinely new, which is
// what makes the steady-state hot loop allocation-free.
package intern

import (
	"hash/fnv"
	"sync"
)

// Local is a single-goroutine string interner. The zero value is not
// usable; construct with NewLocal. For cross-goroutine sharing use Table.
type Local struct {
	ids  map[string]uint32
	strs []string
	hash []uint64 // fnv64a of each interned string, cached at intern time
}

// NewLocal returns an empty unsynchronised interner.
func NewLocal() *Local {
	return &Local{ids: make(map[string]uint32)}
}

// Intern returns the dense id of s, assigning the next id on first sight.
func (l *Local) Intern(s string) uint32 {
	if id, ok := l.ids[s]; ok {
		return id
	}
	return l.assign(s)
}

// InternBytes is Intern for a scratch buffer: it allocates a string only
// when the key has not been seen before, so steady-state calls are
// allocation-free.
func (l *Local) InternBytes(b []byte) uint32 {
	if id, ok := l.ids[string(b)]; ok { // no alloc: map lookup special case
		return id
	}
	return l.assign(string(b))
}

func (l *Local) assign(s string) uint32 {
	id := uint32(len(l.strs))
	l.ids[s] = id
	l.strs = append(l.strs, s)
	l.hash = append(l.hash, hashString(s))
	return id
}

// Resolve returns the string with the given id. It panics on an id the
// interner never issued, which is always a programming error (ids only come
// from Intern/InternBytes on the same interner).
func (l *Local) Resolve(id uint32) string { return l.strs[id] }

// AppendResolve appends the string with the given id to dst.
func (l *Local) AppendResolve(dst []byte, id uint32) []byte {
	return append(dst, l.strs[id]...)
}

// Hash returns the cached fnv64a hash of the interned string.
func (l *Local) Hash(id uint32) uint64 { return l.hash[id] }

// Len reports the number of interned strings.
func (l *Local) Len() int { return len(l.strs) }

// Table is a concurrency-safe string interner. The zero value is not
// usable; construct with New.
type Table struct {
	mu sync.RWMutex
	l  Local
}

// New returns an empty table.
func New() *Table {
	return &Table{l: Local{ids: make(map[string]uint32)}}
}

// Intern returns the dense id of s, assigning the next id on first sight.
func (t *Table) Intern(s string) uint32 {
	t.mu.RLock()
	id, ok := t.l.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	return t.internSlow(s)
}

// InternBytes is Intern for a scratch buffer; see Local.InternBytes.
func (t *Table) InternBytes(b []byte) uint32 {
	t.mu.RLock()
	id, ok := t.l.ids[string(b)] // no alloc: map lookup special case
	t.mu.RUnlock()
	if ok {
		return id
	}
	return t.internSlow(string(b))
}

func (t *Table) internSlow(s string) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.l.ids[s]; ok {
		// Another goroutine interned s between our read and write locks.
		return id
	}
	return t.l.assign(s)
}

// Resolve returns the string with the given id; see Local.Resolve.
func (t *Table) Resolve(id uint32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.l.strs[id]
}

// AppendResolve appends the string with the given id to dst.
func (t *Table) AppendResolve(dst []byte, id uint32) []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append(dst, t.l.strs[id]...)
}

// Hash returns the cached fnv64a hash of the interned string.
func (t *Table) Hash(id uint32) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.l.hash[id]
}

// Len reports the number of interned strings.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.l.strs)
}

// Pack packs two ids into one uint64 map key (hi in the upper 32 bits).
func Pack(hi, lo uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }

// Unpack splits a Pack result back into its ids.
func Unpack(p uint64) (hi, lo uint32) { return uint32(p >> 32), uint32(p) }

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
