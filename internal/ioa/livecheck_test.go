package ioa

import (
	"fmt"
	"math/rand"
	"testing"
)

// feed replays a trace into a LiveChecker event by event.
func feed(c *LiveChecker, tr Trace) {
	for _, e := range tr {
		switch e.Kind {
		case SendMsg:
			c.SendMsg(e.Msg)
		case ReceiveMsg:
			c.ReceiveMsg(e.Msg)
		case SendPkt:
			c.SendPkt(e.Dir, e.Pkt)
		case ReceivePkt:
			c.ReceivePkt(e.Dir, e.Pkt)
		}
	}
}

// diff compares a batch checker's error with the live checker's, demanding
// byte-identical violations (property, index and detail).
func diff(t *testing.T, what string, tr Trace, batch, live error) {
	t.Helper()
	bv, bok := AsViolation(batch)
	lv, lok := AsViolation(live)
	switch {
	case batch == nil && live == nil:
		return
	case bok != lok || (batch == nil) != (live == nil):
		t.Fatalf("%s: batch %v, live %v\ntrace: %v", what, batch, live, tr)
	case *bv != *lv:
		t.Fatalf("%s: batch %+v, live %+v\ntrace: %v", what, *bv, *lv, tr)
	}
}

// randomTrace generates an adversarial event sequence over tiny ID, payload
// and header spaces, so duplicate deliveries, spurious receives, payload
// mismatches, FIFO inversions and stranded messages all occur with high
// probability across the sweep.
func randomTrace(rng *rand.Rand, n int) Trace {
	var tr Trace
	for i := 0; i < n; i++ {
		id := rng.Intn(4)
		msg := Message{ID: id, Payload: fmt.Sprintf("p%d", rng.Intn(3))}
		pkt := Packet{Header: fmt.Sprintf("h%d", rng.Intn(3))}
		if rng.Intn(4) == 0 {
			pkt.Payload = msg.Payload
		}
		dir := TtoR
		if rng.Intn(2) == 0 {
			dir = RtoT
		}
		switch rng.Intn(4) {
		case 0:
			tr = append(tr, Event{Kind: SendMsg, Msg: msg})
		case 1:
			tr = append(tr, Event{Kind: ReceiveMsg, Msg: msg})
		case 2:
			tr = append(tr, Event{Kind: SendPkt, Dir: dir, Pkt: pkt})
		case 3:
			tr = append(tr, Event{Kind: ReceivePkt, Dir: dir, Pkt: pkt})
		}
	}
	return tr
}

// TestLiveCheckerMatchesBatch is the equivalence property the interned fuzz
// core's clean-run judging rests on: over thousands of adversarial random
// traces, the streaming checker agrees with CheckSafety and
// CheckDL3Quiescent byte for byte, violations included. One checker
// instance is Reset between traces, so the reuse path is what gets proved.
func TestLiveCheckerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewLiveChecker()
	violations := 0
	for trial := 0; trial < 4000; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(40))
		c.Reset()
		feed(c, tr)
		diff(t, "safety", tr, CheckSafety(tr), c.Safety())
		diff(t, "dl3", tr, CheckDL3Quiescent(tr), c.DL3Quiescent())
		if c.Safety() != nil {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("sweep produced no safety violations; the generator is too tame to prove anything")
	}
	t.Logf("4000 traces, %d with safety violations, zero divergence", violations)
}

// TestLiveCheckerCleanRun feeds a well-formed exchange and checks both
// verdicts are clean.
func TestLiveCheckerCleanRun(t *testing.T) {
	m := Message{ID: 0, Payload: "hello"}
	p := Packet{Header: "0", Payload: "hello"}
	tr := Trace{
		{Kind: SendMsg, Msg: m},
		{Kind: SendPkt, Dir: TtoR, Pkt: p},
		{Kind: ReceivePkt, Dir: TtoR, Pkt: p},
		{Kind: ReceiveMsg, Msg: m},
	}
	c := NewLiveChecker()
	feed(c, tr)
	if err := c.Safety(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if err := c.DL3Quiescent(); err != nil {
		t.Fatalf("quiescent run flagged: %v", err)
	}
}
