package ioa

import (
	"strings"
	"testing"
	"testing/quick"
)

func msg(id int) Message { return Message{ID: id, Payload: "x"} }

func pkt(h string) Packet { return Packet{Header: h} }

func sendM(id int) Event    { return Event{Kind: SendMsg, Msg: msg(id)} }
func recvM(id int) Event    { return Event{Kind: ReceiveMsg, Msg: msg(id)} }
func sendP(h string) Event  { return Event{Kind: SendPkt, Dir: TtoR, Pkt: pkt(h)} }
func recvP(h string) Event  { return Event{Kind: ReceivePkt, Dir: TtoR, Pkt: pkt(h)} }
func sendPR(h string) Event { return Event{Kind: SendPkt, Dir: RtoT, Pkt: pkt(h)} }
func recvPR(h string) Event { return Event{Kind: ReceivePkt, Dir: RtoT, Pkt: pkt(h)} }

func TestCountersDefinition2(t *testing.T) {
	tr := Trace{sendM(0), sendP("d0"), recvP("d0"), recvM(0), sendPR("a0"), recvPR("a0")}
	c := tr.Count()
	if c.SM != 1 || c.RM != 1 || c.SPtoR != 1 || c.RPtoR != 1 || c.SPtoT != 1 || c.RPtoT != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.InTransit(TtoR) != 0 || c.InTransit(RtoT) != 0 {
		t.Fatalf("in-transit = %d,%d", c.InTransit(TtoR), c.InTransit(RtoT))
	}
}

func TestInTransit(t *testing.T) {
	tr := Trace{sendP("d0"), sendP("d0"), sendP("d1"), recvP("d0")}
	if got := tr.Count().InTransit(TtoR); got != 2 {
		t.Fatalf("InTransit = %d, want 2", got)
	}
}

func TestPL1OK(t *testing.T) {
	tr := Trace{sendP("a"), sendP("a"), recvP("a"), recvP("a")}
	if err := CheckPL1(tr, TtoR); err != nil {
		t.Fatalf("PL1 should hold: %v", err)
	}
}

func TestPL1ReceiveWithoutSend(t *testing.T) {
	tr := Trace{recvP("a")}
	err := CheckPL1(tr, TtoR)
	if err == nil {
		t.Fatal("PL1 should fail: receive without send")
	}
	v, ok := AsViolation(err)
	if !ok || v.Property != "PL1" || v.Index != 0 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestPL1Duplication(t *testing.T) {
	tr := Trace{sendP("a"), recvP("a"), recvP("a")}
	err := CheckPL1(tr, TtoR)
	if err == nil {
		t.Fatal("PL1 should fail: one send matched by two receives")
	}
	if v, _ := AsViolation(err); v.Index != 2 {
		t.Fatalf("violation index = %d, want 2", v.Index)
	}
}

func TestPL1IgnoresOtherDirection(t *testing.T) {
	tr := Trace{recvPR("a")}
	if err := CheckPL1(tr, TtoR); err != nil {
		t.Fatalf("PL1 on t→r should ignore r→t events: %v", err)
	}
	if err := CheckPL1(tr, RtoT); err == nil {
		t.Fatal("PL1 on r→t should fail")
	}
}

func TestPL1DistinguishesPayloads(t *testing.T) {
	tr := Trace{
		{Kind: SendPkt, Dir: TtoR, Pkt: Packet{Header: "h", Payload: "p1"}},
		{Kind: ReceivePkt, Dir: TtoR, Pkt: Packet{Header: "h", Payload: "p2"}},
	}
	if err := CheckPL1(tr, TtoR); err == nil {
		t.Fatal("PL1 must compare full packet value, including payload")
	}
}

func TestDL1OK(t *testing.T) {
	tr := Trace{sendM(0), recvM(0), sendM(1), recvM(1)}
	if err := CheckDL1(tr); err != nil {
		t.Fatalf("DL1 should hold: %v", err)
	}
}

func TestDL1DuplicateDelivery(t *testing.T) {
	tr := Trace{sendM(0), recvM(0), recvM(0)}
	err := CheckDL1(tr)
	if err == nil {
		t.Fatal("DL1 should fail on duplicate delivery")
	}
	v, _ := AsViolation(err)
	if v.Property != "DL1" || v.Index != 2 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestDL1SpuriousDelivery(t *testing.T) {
	tr := Trace{sendM(0), recvM(1)}
	if err := CheckDL1(tr); err == nil {
		t.Fatal("DL1 should fail on delivery of a never-sent message")
	}
}

func TestDL1DeliveryBeforeSend(t *testing.T) {
	tr := Trace{recvM(0), sendM(0)}
	if err := CheckDL1(tr); err == nil {
		t.Fatal("DL1 requires the send to precede the receive")
	}
}

func TestDL1PayloadCorruption(t *testing.T) {
	tr := Trace{
		{Kind: SendMsg, Msg: Message{ID: 0, Payload: "hello"}},
		{Kind: ReceiveMsg, Msg: Message{ID: 0, Payload: "mangled"}},
	}
	if err := CheckDL1(tr); err == nil {
		t.Fatal("DL1 should fail on payload corruption")
	}
}

func TestDL2OK(t *testing.T) {
	tr := Trace{sendM(0), sendM(1), recvM(0), recvM(1)}
	if err := CheckDL2(tr); err != nil {
		t.Fatalf("DL2 should hold: %v", err)
	}
}

func TestDL2Reorder(t *testing.T) {
	tr := Trace{sendM(0), sendM(1), recvM(1), recvM(0)}
	err := CheckDL2(tr)
	if err == nil {
		t.Fatal("DL2 should fail on reordered delivery")
	}
	v, _ := AsViolation(err)
	if v.Property != "DL2" || v.Index != 3 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestDL2GapsAllowed(t *testing.T) {
	// DL2 alone does not require delivery of every message — only order.
	tr := Trace{sendM(0), sendM(1), sendM(2), recvM(0), recvM(2)}
	if err := CheckDL2(tr); err != nil {
		t.Fatalf("DL2 permits gaps (DL3 is separate): %v", err)
	}
}

func TestDL3Quiescent(t *testing.T) {
	tests := []struct {
		name   string
		tr     Trace
		fails  bool
		detail string // required substring of the violation detail
	}{
		{"empty trace", Trace{}, false, ""},
		{"all delivered", Trace{sendM(0), recvM(0), sendM(1), recvM(1)}, false, ""},
		{"single strand", Trace{sendM(0)}, true, "1 of 1"},
		// Duplicate deliveries of message 0 must not mask message 1's strand:
		// rm >= sm holds (3 >= 2), so a count comparison would pass, but
		// message 1 has no matching delivery.
		{"duplicate masks strand",
			Trace{sendM(0), recvM(0), recvM(0), sendM(1)}, true, "stranded id 1"},
		// A delivery whose payload differs from the send is DL1's problem and
		// matches nothing here: the send stays stranded.
		{"corrupted delivery does not match",
			Trace{sendM(0), Event{Kind: ReceiveMsg, Msg: Message{ID: 0, Payload: "y"}}},
			true, "stranded id 0"},
		// Send after quiescence: a delivery cannot match a *later* send, so a
		// trace that goes quiescent and then accepts one more message fails.
		{"send after quiescence", Trace{recvM(0), sendM(0)}, true, "stranded id 0"},
		{"interleaved strands",
			Trace{sendM(0), sendM(1), recvM(1), sendM(2)}, true, "2 of 3"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckDL3Quiescent(tc.tr)
			if !tc.fails {
				if err != nil {
					t.Fatalf("DL3 should hold: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("DL3 should fail")
			}
			v, ok := AsViolation(err)
			if !ok || v.Property != "DL3" {
				t.Fatalf("not a DL3 violation: %v", err)
			}
			if v.Index != -1 {
				t.Fatalf("DL3 violation should point at end of trace, got %d", v.Index)
			}
			if !strings.Contains(v.Detail, tc.detail) {
				t.Fatalf("detail %q does not contain %q", v.Detail, tc.detail)
			}
		})
	}
}

func TestCheckValid(t *testing.T) {
	tr := Trace{
		sendM(0), sendP("d0"), recvP("d0"), recvM(0), sendPR("a0"), recvPR("a0"),
	}
	if err := CheckValid(tr); err != nil {
		t.Fatalf("valid execution rejected: %v", err)
	}
}

func TestCheckValidRejectsEachProperty(t *testing.T) {
	tests := []struct {
		name string
		tr   Trace
		prop string
	}{
		{"PL1 t→r", Trace{recvP("x")}, "PL1"},
		{"PL1 r→t", Trace{recvPR("x")}, "PL1"},
		{"DL1", Trace{sendM(0), recvM(0), recvM(0)}, "DL1"},
		{"DL2", Trace{sendM(0), sendM(1), recvM(1), recvM(0)}, "DL2"},
		{"DL3", Trace{sendM(0)}, "DL3"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckValid(tt.tr)
			if err == nil {
				t.Fatal("CheckValid accepted an invalid trace")
			}
			v, ok := AsViolation(err)
			if !ok || v.Property != tt.prop {
				t.Fatalf("got violation %v, want property %s", err, tt.prop)
			}
		})
	}
}

func TestCheckSemiValid(t *testing.T) {
	// One outstanding message: semi-valid.
	tr := Trace{sendM(0), recvM(0), sendM(1), sendP("d1")}
	if err := CheckSemiValid(tr); err != nil {
		t.Fatalf("semi-valid execution rejected: %v", err)
	}
	// Zero outstanding: not semi-valid (sm must equal rm+1).
	if err := CheckSemiValid(Trace{sendM(0), recvM(0)}); err == nil {
		t.Fatal("sm=rm execution accepted as semi-valid")
	}
	// Two outstanding: not semi-valid.
	if err := CheckSemiValid(Trace{sendM(0), sendM(1)}); err == nil {
		t.Fatal("sm=rm+2 execution accepted as semi-valid")
	}
}

func TestCheckSafetyCatchesInvalidExecution(t *testing.T) {
	// The Theorem 3.1/4.1 target shape: rm = sm + 1.
	tr := Trace{sendM(0), recvM(0), recvM(0)}
	err := CheckSafety(tr)
	if err == nil {
		t.Fatal("CheckSafety accepted an rm=sm+1 execution")
	}
	v, _ := AsViolation(err)
	if v.Property != "DL1" {
		t.Fatalf("expected DL1 violation, got %v", err)
	}
}

func TestViolationErrorString(t *testing.T) {
	v := &Violation{Property: "DL1", Index: 3, Detail: "dup"}
	if !strings.Contains(v.Error(), "DL1") || !strings.Contains(v.Error(), "3") {
		t.Fatalf("Error() = %q", v.Error())
	}
	end := &Violation{Property: "DL3", Index: -1, Detail: "missing"}
	if !strings.Contains(end.Error(), "end of trace") {
		t.Fatalf("Error() = %q", end.Error())
	}
}

// Property: any "echo" trace in which each send_pkt is immediately followed
// by a matching receive_pkt satisfies PL1 in both directions.
func TestQuickPL1EchoTraces(t *testing.T) {
	f := func(headers []uint8, dirs []bool) bool {
		var tr Trace
		n := len(headers)
		if len(dirs) < n {
			n = len(dirs)
		}
		for i := 0; i < n; i++ {
			d := TtoR
			if dirs[i] {
				d = RtoT
			}
			p := pkt(string(rune('a' + headers[i]%4)))
			tr = append(tr,
				Event{Kind: SendPkt, Dir: d, Pkt: p},
				Event{Kind: ReceivePkt, Dir: d, Pkt: p})
		}
		return CheckPL1(tr, TtoR) == nil && CheckPL1(tr, RtoT) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: delivering any subset of sent messages in send order satisfies
// DL1 and DL2; delivering any message twice violates DL1.
func TestQuickDLSubsetDelivery(t *testing.T) {
	f := func(deliver []bool) bool {
		var tr Trace
		for i := range deliver {
			tr = append(tr, sendM(i))
		}
		for i, d := range deliver {
			if d {
				tr = append(tr, recvM(i))
			}
		}
		if CheckDL1(tr) != nil || CheckDL2(tr) != nil {
			return false
		}
		// Duplicate the first delivered message, if any.
		for i, d := range deliver {
			if d {
				dup := append(append(Trace{}, tr...), recvM(i))
				return CheckDL1(dup) != nil
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderRollback(t *testing.T) {
	r := NewRecorder()
	r.SendMsg(msg(0))
	mark := r.Len()
	r.SendPkt(TtoR, pkt("d0"))
	r.ReceivePkt(TtoR, pkt("d0"))
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	suffix := r.Since(mark)
	if len(suffix) != 2 || suffix[0].Kind != SendPkt {
		t.Fatalf("Since = %v", suffix)
	}
	r.Rollback(mark)
	if r.Len() != 1 {
		t.Fatalf("after rollback Len = %d", r.Len())
	}
	c := r.Counters()
	if c.SM != 1 || c.SPtoR != 0 {
		t.Fatalf("counters after rollback = %+v", c)
	}
}

func TestRecorderCloneIndependence(t *testing.T) {
	r := NewRecorder()
	r.SendMsg(msg(0))
	c := r.Clone()
	c.ReceiveMsg(msg(0))
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: r=%d c=%d", r.Len(), c.Len())
	}
}

func TestStringRenderings(t *testing.T) {
	p := Packet{Header: "d0", Payload: "hi"}
	if p.String() != "d0[hi]" {
		t.Fatalf("Packet.String = %q", p.String())
	}
	if (Packet{Header: "a1"}).String() != "a1" {
		t.Fatal("empty payload should render bare header")
	}
	if TtoR.String() != "t→r" || RtoT.String() != "r→t" {
		t.Fatal("Dir.String wrong")
	}
	tr := Trace{sendM(1), sendP("d0")}
	s := tr.String()
	if !strings.Contains(s, "send_msg") || !strings.Contains(s, "send_pkt^t→r(d0)") {
		t.Fatalf("Trace.String = %q", s)
	}
}

func TestPacketLess(t *testing.T) {
	a := Packet{Header: "a"}
	b := Packet{Header: "b"}
	if !PacketLess(a, b) || PacketLess(b, a) {
		t.Fatal("header ordering wrong")
	}
	p1 := Packet{Header: "a", Payload: "1"}
	p2 := Packet{Header: "a", Payload: "2"}
	if !PacketLess(p1, p2) || PacketLess(p2, p1) {
		t.Fatal("payload tiebreak wrong")
	}
	if PacketLess(a, a) {
		t.Fatal("irreflexivity broken")
	}
}

func TestCheckSemiValidRejectsSafetyViolations(t *testing.T) {
	// Each safety property must be consulted by CheckSemiValid.
	tests := []struct {
		name string
		tr   Trace
	}{
		{"PL1 t→r", Trace{sendM(0), recvP("x")}},
		{"PL1 r→t", Trace{sendM(0), recvPR("x")}},
		{"DL1", Trace{sendM(0), recvM(0), recvM(0), sendM(1)}},
		{"DL2", Trace{sendM(0), sendM(1), sendM(2), recvM(1), recvM(0), sendM(3)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := CheckSemiValid(tt.tr); err == nil {
				t.Fatal("semi-validity accepted a safety-violating trace")
			}
		})
	}
}

func TestCheckSafetyConsultsEveryProperty(t *testing.T) {
	tests := []struct {
		tr   Trace
		prop string
	}{
		{Trace{recvP("x")}, "PL1"},
		{Trace{recvPR("x")}, "PL1"},
		{Trace{recvM(0)}, "DL1"},
		{Trace{sendM(0), sendM(1), recvM(1), recvM(0)}, "DL2"},
	}
	for _, tt := range tests {
		err := CheckSafety(tt.tr)
		if err == nil {
			t.Fatalf("CheckSafety accepted %v", tt.tr)
		}
		if v, _ := AsViolation(err); v.Property != tt.prop {
			t.Fatalf("property = %v, want %s", err, tt.prop)
		}
	}
	if err := CheckSafety(Trace{sendM(0)}); err != nil {
		t.Fatalf("CheckSafety must not require delivery: %v", err)
	}
}

func TestAsViolationNonViolation(t *testing.T) {
	if _, ok := AsViolation(nil); ok {
		t.Fatal("nil is not a violation")
	}
	if _, ok := AsViolation(errOpaque{}); ok {
		t.Fatal("opaque error is not a violation")
	}
}

type errOpaque struct{}

func (errOpaque) Error() string { return "opaque" }

func TestKindAndDirStringFallbacks(t *testing.T) {
	if Kind(99).String() != "kind(99)" {
		t.Fatalf("Kind fallback = %q", Kind(99).String())
	}
	if Dir(99).String() != "dir(99)" {
		t.Fatalf("Dir fallback = %q", Dir(99).String())
	}
}

func TestRecorderTraceCopyAndBounds(t *testing.T) {
	r := NewRecorder()
	r.SendMsg(msg(0))
	tr := r.Trace()
	if len(tr) != 1 {
		t.Fatalf("Trace = %v", tr)
	}
	tr[0] = Event{Kind: ReceiveMsg, Msg: msg(9)}
	if r.Trace()[0].Kind != SendMsg {
		t.Fatal("Trace() exposed internal storage")
	}
	// Rollback out of range is a no-op.
	r.Rollback(-1)
	r.Rollback(100)
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Since clamps.
	if got := r.Since(-5); len(got) != 1 {
		t.Fatalf("Since(-5) = %v", got)
	}
	if got := r.Since(100); len(got) != 0 {
		t.Fatalf("Since(100) = %v", got)
	}
}
