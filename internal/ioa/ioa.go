// Package ioa implements the communication model of Mansour & Schieber
// (PODC '89), Section 2: packets, messages, execution events, the counters
// of Definition 2, and executable checkers for the physical-layer and
// data-link-layer correctness properties PL1, DL1, DL2 and DL3.
//
// An execution is modelled as a Trace: the sequence of externally visible
// actions (send_msg, receive_msg, send_pkt, receive_pkt) of the composed
// system. Safety properties (PL1, DL1, DL2) are prefix-closed and checked
// over the whole trace; liveness properties (PL2, DL3) are checked in their
// quiescent form over completed runs, and operationally enforced by the
// simulation engine for infinite behaviours.
package ioa

import (
	"fmt"
	"strconv"
	"strings"
)

// Packet is an element of the physical layer's alphabet P.
//
// Following the paper's convention, packets are distinguished by the
// protocol-appended control information — the Header. The Payload carries
// the message content for protocols that transport it in-band; the
// header-count metric of the paper counts distinct Header values only
// (under the paper's "all messages are the same" simplification the payload
// is constant and |P| equals the number of headers).
type Packet struct {
	Header  string `json:"header"`
	Payload string `json:"payload,omitempty"`
}

// String renders the packet as header[payload] or just the header when the
// payload is empty.
func (p Packet) String() string {
	if p.Payload == "" {
		return p.Header
	}
	return p.Header + "[" + p.Payload + "]"
}

// PacketLess is the canonical ordering on packets used for deterministic
// multiset iteration.
func PacketLess(a, b Packet) bool {
	if a.Header != b.Header {
		return a.Header < b.Header
	}
	return a.Payload < b.Payload
}

// Message is an element of the data link layer's alphabet M.
//
// ID is bookkeeping used only by the trace checkers to establish the DL1
// correspondence between send_msg and receive_msg actions; protocols must
// not inspect it (the paper's lower bounds hold even when all messages are
// identical, so no protocol may rely on message identity).
type Message struct {
	ID      int    `json:"id"`
	Payload string `json:"payload,omitempty"`
}

func (m Message) String() string {
	return "m" + strconv.Itoa(m.ID) + "(" + m.Payload + ")"
}

// Dir identifies one of the two physical channels of a data link.
type Dir int

const (
	// TtoR is the channel from the transmitting station to the receiving
	// station (data direction).
	TtoR Dir = iota + 1
	// RtoT is the channel from the receiving station back to the
	// transmitting station (acknowledgement direction).
	RtoT
)

// MarshalText implements encoding.TextMarshaler so directions serialise as
// their names in JSON and friends.
func (d Dir) MarshalText() ([]byte, error) {
	switch d {
	case TtoR:
		return []byte("t-to-r"), nil
	case RtoT:
		return []byte("r-to-t"), nil
	default:
		return nil, fmt.Errorf("ioa: unknown direction %d", int(d))
	}
}

func (d Dir) String() string {
	switch d {
	case TtoR:
		return "t→r"
	case RtoT:
		return "r→t"
	default:
		return "dir(" + strconv.Itoa(int(d)) + ")"
	}
}

// Kind identifies the action type of an execution event.
type Kind int

const (
	// SendMsg is the data link input action send_msg(m).
	SendMsg Kind = iota + 1
	// ReceiveMsg is the data link output action receive_msg(m).
	ReceiveMsg
	// SendPkt is the physical layer input action send_pkt(p).
	SendPkt
	// ReceivePkt is the physical layer output action receive_pkt(p).
	ReceivePkt
)

// MarshalText implements encoding.TextMarshaler so kinds serialise as
// their action names in JSON and friends.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case SendMsg, ReceiveMsg, SendPkt, ReceivePkt:
		return []byte(k.String()), nil
	default:
		return nil, fmt.Errorf("ioa: unknown kind %d", int(k))
	}
}

func (k Kind) String() string {
	switch k {
	case SendMsg:
		return "send_msg"
	case ReceiveMsg:
		return "receive_msg"
	case SendPkt:
		return "send_pkt"
	case ReceivePkt:
		return "receive_pkt"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Event is one action occurrence in an execution.
type Event struct {
	Kind Kind    `json:"kind"`
	Dir  Dir     `json:"dir,omitempty"`     // set for SendPkt/ReceivePkt
	Pkt  Packet  `json:"packet,omitempty"`  // set for SendPkt/ReceivePkt
	Msg  Message `json:"message,omitempty"` // set for SendMsg/ReceiveMsg
}

func (e Event) String() string {
	switch e.Kind {
	case SendMsg, ReceiveMsg:
		return fmt.Sprintf("%s(%s)", e.Kind, e.Msg)
	default:
		return fmt.Sprintf("%s^%s(%s)", e.Kind, e.Dir, e.Pkt)
	}
}

// Trace is a finite execution: the sequence of external actions.
type Trace []Event

// String renders the trace one event per line, for certificates.
func (tr Trace) String() string {
	var b strings.Builder
	for i, e := range tr {
		fmt.Fprintf(&b, "%4d  %s\n", i, e)
	}
	return b.String()
}

// Counters holds the action counts of Definition 2 for a trace.
type Counters struct {
	SM    int // send_msg actions
	RM    int // receive_msg actions
	SPtoR int // send_pkt^{t→r}
	RPtoR int // receive_pkt^{t→r}
	SPtoT int // send_pkt^{r→t}
	RPtoT int // receive_pkt^{r→t}
}

// InTransit reports the number of packets sent but not received on the
// given channel: sp(α) − rp(α).
func (c Counters) InTransit(d Dir) int {
	if d == TtoR {
		return c.SPtoR - c.RPtoR
	}
	return c.SPtoT - c.RPtoT
}

// Count computes the Definition-2 counters of a trace.
func (tr Trace) Count() Counters {
	var c Counters
	for _, e := range tr {
		switch e.Kind {
		case SendMsg:
			c.SM++
		case ReceiveMsg:
			c.RM++
		case SendPkt:
			if e.Dir == TtoR {
				c.SPtoR++
			} else {
				c.SPtoT++
			}
		case ReceivePkt:
			if e.Dir == TtoR {
				c.RPtoR++
			} else {
				c.RPtoT++
			}
		}
	}
	return c
}
