package ioa

import (
	"errors"
	"fmt"
)

// Violation describes a failed correctness property, pointing at the event
// index where the property first breaks.
type Violation struct {
	// Property is the violated property: "PL1", "DL1", "DL2", "DL3".
	Property string `json:"property"`
	// Index points at the violating event; -1 for end-of-trace properties.
	Index int `json:"index"`
	// Detail is the human-readable diagnosis.
	Detail string `json:"detail"`
}

func (v *Violation) Error() string {
	if v.Index < 0 {
		return fmt.Sprintf("%s violated at end of trace: %s", v.Property, v.Detail)
	}
	return fmt.Sprintf("%s violated at event %d: %s", v.Property, v.Index, v.Detail)
}

// AsViolation extracts a *Violation from err, if present.
func AsViolation(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// CheckPL1 verifies the physical-layer safety property (PL1) on the given
// channel direction: every receive_pkt corresponds to a unique preceding
// send_pkt of an equal packet, and no send is matched by more than one
// receive. Because equal packets are interchangeable, the correspondence
// exists if and only if, at every prefix, the number of receives of each
// packet value does not exceed the number of sends of that value.
func CheckPL1(tr Trace, d Dir) error {
	outstanding := make(map[Packet]int)
	for i, e := range tr {
		if e.Dir != d {
			continue
		}
		switch e.Kind {
		case SendPkt:
			outstanding[e.Pkt]++
		case ReceivePkt:
			if outstanding[e.Pkt] == 0 {
				return &Violation{
					Property: "PL1",
					Index:    i,
					Detail:   fmt.Sprintf("receive_pkt^%s(%s) without an unmatched preceding send_pkt", d, e.Pkt),
				}
			}
			outstanding[e.Pkt]--
		}
	}
	return nil
}

// CheckDL1 verifies the data-link safety property (DL1): every receive_msg
// corresponds to a unique preceding send_msg of the same message, and each
// send_msg is matched by at most one receive_msg. The correspondence is
// established through the bookkeeping Message.ID.
func CheckDL1(tr Trace) error {
	outstanding := make(map[int]int) // message ID -> unmatched sends
	payload := make(map[int]string)
	for i, e := range tr {
		switch e.Kind {
		case SendMsg:
			outstanding[e.Msg.ID]++
			payload[e.Msg.ID] = e.Msg.Payload
		case ReceiveMsg:
			if outstanding[e.Msg.ID] == 0 {
				return &Violation{
					Property: "DL1",
					Index:    i,
					Detail: fmt.Sprintf("receive_msg(%s) has no unmatched preceding send_msg "+
						"(duplicate or spurious delivery)", e.Msg),
				}
			}
			if payload[e.Msg.ID] != e.Msg.Payload {
				return &Violation{
					Property: "DL1",
					Index:    i,
					Detail: fmt.Sprintf("receive_msg(%s) delivered payload %q but send_msg carried %q",
						e.Msg, e.Msg.Payload, payload[e.Msg.ID]),
				}
			}
			outstanding[e.Msg.ID]--
		}
	}
	return nil
}

// CheckDL2 verifies the FIFO property (DL2): if receive_msg(m) occurs
// before receive_msg(m'), the corresponding send_msg(m) occurs before
// send_msg(m'). With unique message IDs this holds iff the sequence of
// received IDs is ordered consistently with the sequence of sent IDs.
func CheckDL2(tr Trace) error {
	sendPos := make(map[int]int) // message ID -> position in send order
	nsent := 0
	lastRecvPos := -1
	for i, e := range tr {
		switch e.Kind {
		case SendMsg:
			if _, dup := sendPos[e.Msg.ID]; !dup {
				sendPos[e.Msg.ID] = nsent
			}
			nsent++
		case ReceiveMsg:
			pos, ok := sendPos[e.Msg.ID]
			if !ok {
				// DL1's problem, not DL2's; treat as out of scope here.
				continue
			}
			if pos < lastRecvPos {
				return &Violation{
					Property: "DL2",
					Index:    i,
					Detail: fmt.Sprintf("receive_msg(%s) (sent at position %d) delivered after a message "+
						"sent later (position %d): FIFO order broken", e.Msg, pos, lastRecvPos),
				}
			}
			if pos > lastRecvPos {
				lastRecvPos = pos
			}
		}
	}
	return nil
}

// CheckDL3Quiescent verifies the liveness property (DL3) in its quiescent
// form on a completed run: every send_msg has a corresponding receive_msg.
// Correspondence is per message — a preceding send_msg with the same ID and
// payload, matched at most once — not a bare count comparison, so duplicate
// deliveries of one message cannot mask another message's strand. The check
// is strictly stronger than rm ≥ sm: any trace it accepts has a matching
// receive for every send, hence at least as many receives as sends.
// (On infinite executions DL3 is a liveness property; the simulator enforces
// it operationally with step budgets.)
func CheckDL3Quiescent(tr Trace) error {
	unmatched := make(map[int]int) // message ID -> sends without a matching receive
	payload := make(map[int]string)
	sm := 0
	for _, e := range tr {
		switch e.Kind {
		case SendMsg:
			unmatched[e.Msg.ID]++
			payload[e.Msg.ID] = e.Msg.Payload
			sm++
		case ReceiveMsg:
			// A receive matches only a *preceding* send of the same message;
			// anything else (duplicate, spurious, corrupted, or out-of-order
			// positional ID) is DL1's problem and matches nothing here.
			if unmatched[e.Msg.ID] > 0 && payload[e.Msg.ID] == e.Msg.Payload {
				unmatched[e.Msg.ID]--
			}
		}
	}
	stranded, first := 0, -1
	for id, n := range unmatched {
		if n > 0 {
			stranded += n
			if first == -1 || id < first {
				first = id
			}
		}
	}
	if stranded > 0 {
		return &Violation{
			Property: "DL3",
			Index:    -1,
			Detail: fmt.Sprintf("%d of %d sent messages have no matching delivery (first stranded id %d)",
				stranded, sm, first),
		}
	}
	return nil
}

// CheckValid verifies Definition 3: the execution satisfies DL1–DL3.
// PL1 is checked on both channels as well, since an execution of the
// composed system must also be consistent with the physical layers.
func CheckValid(tr Trace) error {
	if err := CheckPL1(tr, TtoR); err != nil {
		return err
	}
	if err := CheckPL1(tr, RtoT); err != nil {
		return err
	}
	if err := CheckDL1(tr); err != nil {
		return err
	}
	if err := CheckDL2(tr); err != nil {
		return err
	}
	return CheckDL3Quiescent(tr)
}

// CheckSemiValid verifies Definition 4: the execution splits as α = α1·α2
// with α1 valid and sm(α2) = 1. For traces produced by our runner (where
// messages are submitted one at a time) this is equivalent to: all safety
// properties hold and exactly one sent message is undelivered.
func CheckSemiValid(tr Trace) error {
	if err := CheckPL1(tr, TtoR); err != nil {
		return err
	}
	if err := CheckPL1(tr, RtoT); err != nil {
		return err
	}
	if err := CheckDL1(tr); err != nil {
		return err
	}
	if err := CheckDL2(tr); err != nil {
		return err
	}
	c := tr.Count()
	if c.SM != c.RM+1 {
		return &Violation{
			Property: "DL3",
			Index:    -1,
			Detail:   fmt.Sprintf("semi-valid execution needs sm = rm+1, got sm=%d rm=%d", c.SM, c.RM),
		}
	}
	return nil
}

// CheckSafety verifies only the prefix-closed safety properties
// (PL1 on both channels, DL1, DL2). This is the check adversaries use to
// certify that a constructed execution is *invalid*: an execution that
// fails CheckSafety can not be a prefix of any valid execution.
func CheckSafety(tr Trace) error {
	if err := CheckPL1(tr, TtoR); err != nil {
		return err
	}
	if err := CheckPL1(tr, RtoT); err != nil {
		return err
	}
	if err := CheckDL1(tr); err != nil {
		return err
	}
	return CheckDL2(tr)
}
