package ioa

// Recorder accumulates an execution trace. It supports marks and rollback
// so that adversaries can speculatively explore extensions of an execution
// (the proofs' "consider the extension β ...") and rewind.
type Recorder struct {
	trace Trace
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Append records an event.
func (r *Recorder) Append(e Event) { r.trace = append(r.trace, e) }

// SendMsg records a send_msg(m) action.
func (r *Recorder) SendMsg(m Message) { r.Append(Event{Kind: SendMsg, Msg: m}) }

// ReceiveMsg records a receive_msg(m) action.
func (r *Recorder) ReceiveMsg(m Message) { r.Append(Event{Kind: ReceiveMsg, Msg: m}) }

// SendPkt records a send_pkt action on channel d.
func (r *Recorder) SendPkt(d Dir, p Packet) { r.Append(Event{Kind: SendPkt, Dir: d, Pkt: p}) }

// ReceivePkt records a receive_pkt action on channel d.
func (r *Recorder) ReceivePkt(d Dir, p Packet) { r.Append(Event{Kind: ReceivePkt, Dir: d, Pkt: p}) }

// Reset empties the recorder, keeping the backing array for reuse by
// pooled runners. Safe because Trace/Since return copies.
func (r *Recorder) Reset() { r.trace = r.trace[:0] }

// Len reports the current trace length. Use it as a mark for Rollback.
func (r *Recorder) Len() int { return len(r.trace) }

// Rollback truncates the trace to the given mark (a previous Len value).
func (r *Recorder) Rollback(mark int) {
	if mark < 0 || mark > len(r.trace) {
		return
	}
	r.trace = r.trace[:mark]
}

// Trace returns a copy of the recorded trace.
func (r *Recorder) Trace() Trace {
	out := make(Trace, len(r.trace))
	copy(out, r.trace)
	return out
}

// Since returns a copy of the suffix recorded after the given mark.
func (r *Recorder) Since(mark int) Trace {
	if mark < 0 {
		mark = 0
	}
	if mark > len(r.trace) {
		mark = len(r.trace)
	}
	out := make(Trace, len(r.trace)-mark)
	copy(out, r.trace[mark:])
	return out
}

// Counters computes the Definition-2 counters of the current trace.
func (r *Recorder) Counters() Counters { return r.trace.Count() }

// Clone returns an independent copy of the recorder.
func (r *Recorder) Clone() *Recorder {
	c := &Recorder{trace: make(Trace, len(r.trace))}
	copy(c.trace, r.trace)
	return c
}
