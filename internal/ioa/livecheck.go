package ioa

import "fmt"

// Monitor observes the externally visible actions of a run in order, as
// they happen. It is the streaming counterpart of Recorder: the simulation
// engine feeds a configured Monitor the exact event sequence it would
// record, which lets the interned fuzz core judge runs without
// materialising a Trace.
type Monitor interface {
	SendMsg(m Message)
	ReceiveMsg(m Message)
	SendPkt(d Dir, p Packet)
	ReceivePkt(d Dir, p Packet)
}

// Recorder is a Monitor (it records the stream instead of judging it).
var _ Monitor = (*Recorder)(nil)

// LiveChecker is a Monitor that incrementally maintains the CheckSafety and
// CheckDL3Quiescent verdicts of the event stream it observes.
//
// Equivalence contract, enforced by TestLiveCheckerMatchesBatch and the
// simdiff harness: after feeding any trace event-by-event, Safety() equals
// CheckSafety(trace) and DL3Quiescent() equals CheckDL3Quiescent(trace),
// including the Violation's Index and Detail bytes. Two invariants make
// this hold: each property records only its *first* violation and then
// stops updating its own state (the batch checker returns at that point, so
// later state is unobservable), and Safety() selects among the recorded
// firsts in the batch checker's fixed property order (PL1 t→r, PL1 r→t,
// DL1, DL2) rather than chronologically.
type LiveChecker struct {
	idx int // global event index, counted across all four kinds

	outData map[Packet]int // PL1 t→r: sends without a matching receive
	outAck  map[Packet]int // PL1 r→t
	pl1Data *Violation
	pl1Ack  *Violation

	dl1Out  map[int]int    // DL1: message ID -> unmatched sends
	payload map[int]string // ID -> sent payload; written identically for DL1 and DL3
	dl1     *Violation

	sendPos     map[int]int // DL2: message ID -> position in send order
	nsent       int
	lastRecvPos int
	dl2         *Violation

	unmatched map[int]int // DL3: message ID -> sends without a matching receive
	sm        int
}

// NewLiveChecker returns an empty checker.
func NewLiveChecker() *LiveChecker {
	return &LiveChecker{
		outData:     make(map[Packet]int),
		outAck:      make(map[Packet]int),
		dl1Out:      make(map[int]int),
		payload:     make(map[int]string),
		sendPos:     make(map[int]int),
		lastRecvPos: -1,
		unmatched:   make(map[int]int),
	}
}

// Reset returns the checker to its initial state, keeping the maps for
// reuse across pooled executions.
func (c *LiveChecker) Reset() {
	c.idx = 0
	clear(c.outData)
	clear(c.outAck)
	c.pl1Data, c.pl1Ack = nil, nil
	clear(c.dl1Out)
	clear(c.payload)
	c.dl1 = nil
	clear(c.sendPos)
	c.nsent = 0
	c.lastRecvPos = -1
	c.dl2 = nil
	clear(c.unmatched)
	c.sm = 0
}

// SendMsg implements Monitor.
func (c *LiveChecker) SendMsg(m Message) {
	c.idx++
	if c.dl1 == nil {
		c.dl1Out[m.ID]++
	}
	c.payload[m.ID] = m.Payload
	if c.dl2 == nil {
		if _, dup := c.sendPos[m.ID]; !dup {
			c.sendPos[m.ID] = c.nsent
		}
		c.nsent++
	}
	c.unmatched[m.ID]++
	c.sm++
}

// ReceiveMsg implements Monitor.
func (c *LiveChecker) ReceiveMsg(m Message) {
	i := c.idx
	c.idx++
	if c.dl1 == nil {
		switch {
		case c.dl1Out[m.ID] == 0:
			c.dl1 = &Violation{
				Property: "DL1",
				Index:    i,
				Detail: fmt.Sprintf("receive_msg(%s) has no unmatched preceding send_msg "+
					"(duplicate or spurious delivery)", m),
			}
		case c.payload[m.ID] != m.Payload:
			c.dl1 = &Violation{
				Property: "DL1",
				Index:    i,
				Detail: fmt.Sprintf("receive_msg(%s) delivered payload %q but send_msg carried %q",
					m, m.Payload, c.payload[m.ID]),
			}
		default:
			c.dl1Out[m.ID]--
		}
	}
	if c.dl2 == nil {
		if pos, ok := c.sendPos[m.ID]; ok {
			if pos < c.lastRecvPos {
				c.dl2 = &Violation{
					Property: "DL2",
					Index:    i,
					Detail: fmt.Sprintf("receive_msg(%s) (sent at position %d) delivered after a message "+
						"sent later (position %d): FIFO order broken", m, pos, c.lastRecvPos),
				}
			} else if pos > c.lastRecvPos {
				c.lastRecvPos = pos
			}
		}
	}
	if c.unmatched[m.ID] > 0 && c.payload[m.ID] == m.Payload {
		c.unmatched[m.ID]--
	}
}

// SendPkt implements Monitor.
func (c *LiveChecker) SendPkt(d Dir, p Packet) {
	c.idx++
	if d == TtoR {
		if c.pl1Data == nil {
			c.outData[p]++
		}
	} else if c.pl1Ack == nil {
		c.outAck[p]++
	}
}

// ReceivePkt implements Monitor.
func (c *LiveChecker) ReceivePkt(d Dir, p Packet) {
	i := c.idx
	c.idx++
	out, slot := c.outData, &c.pl1Data
	if d != TtoR {
		out, slot = c.outAck, &c.pl1Ack
	}
	if *slot != nil {
		return
	}
	if out[p] == 0 {
		*slot = &Violation{
			Property: "PL1",
			Index:    i,
			Detail:   fmt.Sprintf("receive_pkt^%s(%s) without an unmatched preceding send_pkt", d, p),
		}
		return
	}
	out[p]--
}

// Safety returns the first safety violation in CheckSafety's property order
// (PL1 t→r, PL1 r→t, DL1, DL2), or nil.
func (c *LiveChecker) Safety() error {
	switch {
	case c.pl1Data != nil:
		return c.pl1Data
	case c.pl1Ack != nil:
		return c.pl1Ack
	case c.dl1 != nil:
		return c.dl1
	case c.dl2 != nil:
		return c.dl2
	}
	return nil
}

// DL3Quiescent returns the end-of-stream quiescent-liveness verdict,
// matching CheckDL3Quiescent on the observed trace.
func (c *LiveChecker) DL3Quiescent() error {
	stranded, first := 0, -1
	//nfvet:allow maprange (order-insensitive sum and min over the map)
	for id, n := range c.unmatched {
		if n > 0 {
			stranded += n
			if first == -1 || id < first {
				first = id
			}
		}
	}
	if stranded > 0 {
		return &Violation{
			Property: "DL3",
			Index:    -1,
			Detail: fmt.Sprintf("%d of %d sent messages have no matching delivery (first stranded id %d)",
				stranded, c.sm, first),
		}
	}
	return nil
}
