// Package mset provides a deterministic counted multiset.
//
// The multiset is the fundamental substrate of the non-FIFO physical
// channel: a packet sent on the channel is an element added to the
// in-transit multiset, and a delivery removes one copy. Because packets are
// distinguished only by their value (the paper's "header" convention),
// copies of equal packets are interchangeable, which is exactly the
// counted-multiset semantics.
//
// All iteration orders are deterministic: elements are visited in the order
// fixed by the comparison function supplied at construction. Determinism
// matters because the adversary constructions in internal/adversary perform
// exhaustive searches over channel behaviours and must be reproducible.
//
// Representation: a sorted association slice of (value, count) entries. The
// exploration engines clone channel multisets once per explored
// configuration, and a slice clone is one memcpy with no per-element map
// rehash — CloneInto recycles a previous clone's backing array outright.
// The comparison function must be a strict total order on the values
// actually stored (ties between distinct values would make the canonical
// Key ambiguous, which the engines rely on for state identity).
package mset

import (
	"fmt"
	"strconv"
)

type entry[T comparable] struct {
	v T
	n int
}

// Multiset is a counted multiset over a comparable element type T.
// The zero value is not usable; construct with New.
type Multiset[T comparable] struct {
	ents []entry[T]
	less func(a, b T) bool
	size int
}

// New returns an empty multiset whose deterministic iteration order is
// defined by less, a strict total order on T.
func New[T comparable](less func(a, b T) bool) *Multiset[T] {
	return &Multiset[T]{less: less}
}

// Add inserts n copies of v. n must be non-negative; Add panics on negative
// n because that is always a programming error in this codebase (removals
// go through Remove, which reports impossible removals as errors).
func (m *Multiset[T]) Add(v T, n int) {
	if n < 0 {
		panic(fmt.Sprintf("mset: Add with negative count %d", n))
	}
	if n == 0 {
		return
	}
	i := m.search(v)
	if i < len(m.ents) && m.ents[i].v == v {
		m.ents[i].n += n
	} else {
		m.ents = append(m.ents, entry[T]{})
		copy(m.ents[i+1:], m.ents[i:])
		m.ents[i] = entry[T]{v: v, n: n}
	}
	m.size += n
}

// Remove deletes n copies of v. It returns an error if fewer than n copies
// are present; the multiset is unchanged in that case.
func (m *Multiset[T]) Remove(v T, n int) error {
	if n < 0 {
		return fmt.Errorf("mset: Remove with negative count %d", n)
	}
	i := m.search(v)
	have := 0
	if i < len(m.ents) && m.ents[i].v == v {
		have = m.ents[i].n
	}
	if have < n {
		return fmt.Errorf("mset: Remove %d copies of %v, only %d present", n, v, have)
	}
	if n == 0 {
		return nil
	}
	if have == n {
		m.ents = append(m.ents[:i], m.ents[i+1:]...)
	} else {
		m.ents[i].n = have - n
	}
	m.size -= n
	return nil
}

// Count reports how many copies of v are present.
func (m *Multiset[T]) Count(v T) int {
	i := m.search(v)
	if i < len(m.ents) && m.ents[i].v == v {
		return m.ents[i].n
	}
	return 0
}

// Len reports the total number of copies across all elements.
func (m *Multiset[T]) Len() int { return m.size }

// Distinct reports the number of distinct elements present.
func (m *Multiset[T]) Distinct() int { return len(m.ents) }

// Values returns the distinct elements in deterministic (sorted) order.
// The returned slice is a copy.
func (m *Multiset[T]) Values() []T {
	out := make([]T, len(m.ents))
	for i, e := range m.ents {
		out[i] = e.v
	}
	return out
}

// At returns the i-th distinct element in deterministic (sorted) order —
// the allocation-free point lookup behind Values.
func (m *Multiset[T]) At(i int) T { return m.ents[i].v }

// ForEach visits each distinct element with its count, in deterministic
// order. The callback must not mutate the multiset.
func (m *Multiset[T]) ForEach(fn func(v T, n int)) {
	for _, e := range m.ents {
		fn(e.v, e.n)
	}
}

// Clone returns a deep copy sharing no state with m.
func (m *Multiset[T]) Clone() *Multiset[T] {
	c := &Multiset[T]{less: m.less}
	m.CloneInto(c)
	return c
}

// CloneInto overwrites dst with a deep copy of m, reusing dst's backing
// array when it has capacity. dst adopts m's ordering. The exploration hot
// loops use this to recycle per-branch channel copies instead of allocating
// a fresh multiset per explored configuration.
func (m *Multiset[T]) CloneInto(dst *Multiset[T]) {
	dst.less = m.less
	dst.size = m.size
	dst.ents = append(dst.ents[:0], m.ents...)
}

// Reset empties the multiset, keeping the backing array for reuse.
func (m *Multiset[T]) Reset() {
	m.ents = m.ents[:0]
	m.size = 0
}

// Equal reports whether m and o contain exactly the same copies.
func (m *Multiset[T]) Equal(o *Multiset[T]) bool {
	if m.size != o.size || len(m.ents) != len(o.ents) {
		return false
	}
	for i, e := range m.ents {
		if o.ents[i] != e {
			return false
		}
	}
	return true
}

// Contains reports whether every copy in o is also present in m
// (multiset inclusion: o ⊆ m).
func (m *Multiset[T]) Contains(o *Multiset[T]) bool {
	if o.size > m.size {
		return false
	}
	for _, e := range o.ents {
		if m.Count(e.v) < e.n {
			return false
		}
	}
	return true
}

// String renders the multiset as "{v1×n1, v2×n2, ...}" in deterministic
// order, primarily for certificates and test failure messages.
func (m *Multiset[T]) String() string {
	return string(m.AppendKey(nil, nil))
}

// Key returns a canonical string encoding of the multiset contents, usable
// as a memoization key in adversary searches.
func (m *Multiset[T]) Key() string { return m.String() }

// AppendKey appends the canonical encoding (identical to String) to dst and
// returns the extended slice. elem renders one element; pass nil for the
// default fmt %v rendering. Callers on the exploration hot path supply an
// allocation-free elem so the whole key lands in a reused scratch buffer.
func (m *Multiset[T]) AppendKey(dst []byte, elem func(dst []byte, v T) []byte) []byte {
	dst = append(dst, '{')
	for i, e := range m.ents {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		if elem != nil {
			dst = elem(dst, e.v)
		} else {
			dst = fmt.Appendf(dst, "%v", e.v)
		}
		dst = append(dst, "×"...)
		dst = strconv.AppendInt(dst, int64(e.n), 10)
	}
	return append(dst, '}')
}

// search returns the insertion index of v: the first index whose entry is
// not less than v.
func (m *Multiset[T]) search(v T) int {
	// Binary search inlined over sort.Search to keep the hot path free of
	// closure allocation.
	lo, hi := 0, len(m.ents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.less(m.ents[mid].v, v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
