// Package mset provides a deterministic counted multiset.
//
// The multiset is the fundamental substrate of the non-FIFO physical
// channel: a packet sent on the channel is an element added to the
// in-transit multiset, and a delivery removes one copy. Because packets are
// distinguished only by their value (the paper's "header" convention),
// copies of equal packets are interchangeable, which is exactly the
// counted-multiset semantics.
//
// All iteration orders are deterministic: elements are visited in the order
// fixed by the comparison function supplied at construction. Determinism
// matters because the adversary constructions in internal/adversary perform
// exhaustive searches over channel behaviours and must be reproducible.
package mset

import (
	"fmt"
	"sort"
	"strings"
)

// Multiset is a counted multiset over a comparable element type T.
// The zero value is not usable; construct with New.
type Multiset[T comparable] struct {
	counts map[T]int
	keys   []T // sorted by less; contains exactly the keys with count > 0
	less   func(a, b T) bool
	size   int
}

// New returns an empty multiset whose deterministic iteration order is
// defined by less, a strict weak ordering on T.
func New[T comparable](less func(a, b T) bool) *Multiset[T] {
	return &Multiset[T]{
		counts: make(map[T]int),
		less:   less,
	}
}

// Add inserts n copies of v. n must be non-negative; Add panics on negative
// n because that is always a programming error in this codebase (removals
// go through Remove, which reports impossible removals as errors).
func (m *Multiset[T]) Add(v T, n int) {
	if n < 0 {
		panic(fmt.Sprintf("mset: Add with negative count %d", n))
	}
	if n == 0 {
		return
	}
	if m.counts[v] == 0 {
		m.insertKey(v)
	}
	m.counts[v] += n
	m.size += n
}

// Remove deletes n copies of v. It returns an error if fewer than n copies
// are present; the multiset is unchanged in that case.
func (m *Multiset[T]) Remove(v T, n int) error {
	if n < 0 {
		return fmt.Errorf("mset: Remove with negative count %d", n)
	}
	have := m.counts[v]
	if have < n {
		return fmt.Errorf("mset: Remove %d copies of %v, only %d present", n, v, have)
	}
	if n == 0 {
		return nil
	}
	if have == n {
		delete(m.counts, v)
		m.deleteKey(v)
	} else {
		m.counts[v] = have - n
	}
	m.size -= n
	return nil
}

// Count reports how many copies of v are present.
func (m *Multiset[T]) Count(v T) int { return m.counts[v] }

// Len reports the total number of copies across all elements.
func (m *Multiset[T]) Len() int { return m.size }

// Distinct reports the number of distinct elements present.
func (m *Multiset[T]) Distinct() int { return len(m.keys) }

// Values returns the distinct elements in deterministic (sorted) order.
// The returned slice is a copy.
func (m *Multiset[T]) Values() []T {
	out := make([]T, len(m.keys))
	copy(out, m.keys)
	return out
}

// ForEach visits each distinct element with its count, in deterministic
// order. The callback must not mutate the multiset.
func (m *Multiset[T]) ForEach(fn func(v T, n int)) {
	for _, k := range m.keys {
		fn(k, m.counts[k])
	}
}

// Clone returns a deep copy sharing no state with m.
func (m *Multiset[T]) Clone() *Multiset[T] {
	c := &Multiset[T]{
		counts: make(map[T]int, len(m.counts)),
		keys:   make([]T, len(m.keys)),
		less:   m.less,
		size:   m.size,
	}
	//nfvet:allow maprange (order-insensitive copy into another map)
	for k, v := range m.counts {
		c.counts[k] = v
	}
	copy(c.keys, m.keys)
	return c
}

// Equal reports whether m and o contain exactly the same copies.
func (m *Multiset[T]) Equal(o *Multiset[T]) bool {
	if m.size != o.size || len(m.counts) != len(o.counts) {
		return false
	}
	//nfvet:allow maprange (order-insensitive membership comparison)
	for k, v := range m.counts {
		if o.counts[k] != v {
			return false
		}
	}
	return true
}

// Contains reports whether every copy in o is also present in m
// (multiset inclusion: o ⊆ m).
func (m *Multiset[T]) Contains(o *Multiset[T]) bool {
	if o.size > m.size {
		return false
	}
	//nfvet:allow maprange (order-insensitive membership comparison)
	for k, v := range o.counts {
		if m.counts[k] < v {
			return false
		}
	}
	return true
}

// String renders the multiset as "{v1×n1, v2×n2, ...}" in deterministic
// order, primarily for certificates and test failure messages.
func (m *Multiset[T]) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range m.keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v×%d", k, m.counts[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Key returns a canonical string encoding of the multiset contents, usable
// as a memoization key in adversary searches.
func (m *Multiset[T]) Key() string { return m.String() }

func (m *Multiset[T]) insertKey(v T) {
	i := sort.Search(len(m.keys), func(i int) bool { return !m.less(m.keys[i], v) })
	m.keys = append(m.keys, v)
	copy(m.keys[i+1:], m.keys[i:])
	m.keys[i] = v
}

func (m *Multiset[T]) deleteKey(v T) {
	i := sort.Search(len(m.keys), func(i int) bool { return !m.less(m.keys[i], v) })
	if i < len(m.keys) && m.keys[i] == v {
		m.keys = append(m.keys[:i], m.keys[i+1:]...)
	}
}
