package mset

import (
	"strings"
	"testing"
	"testing/quick"
)

func newInt() *Multiset[int] {
	return New[int](func(a, b int) bool { return a < b })
}

func newStr() *Multiset[string] {
	return New[string](func(a, b string) bool { return a < b })
}

func TestEmpty(t *testing.T) {
	m := newInt()
	if m.Len() != 0 || m.Distinct() != 0 {
		t.Fatalf("empty multiset: Len=%d Distinct=%d", m.Len(), m.Distinct())
	}
	if m.Count(7) != 0 {
		t.Fatalf("Count on empty = %d, want 0", m.Count(7))
	}
	if got := m.String(); got != "{}" {
		t.Fatalf("String() = %q, want {}", got)
	}
}

func TestAddCount(t *testing.T) {
	m := newInt()
	m.Add(3, 2)
	m.Add(1, 1)
	m.Add(3, 1)
	if m.Count(3) != 3 || m.Count(1) != 1 {
		t.Fatalf("counts wrong: %v", m)
	}
	if m.Len() != 4 || m.Distinct() != 2 {
		t.Fatalf("Len=%d Distinct=%d, want 4,2", m.Len(), m.Distinct())
	}
}

func TestAddZeroIsNoop(t *testing.T) {
	m := newInt()
	m.Add(5, 0)
	if m.Len() != 0 || m.Distinct() != 0 {
		t.Fatalf("Add(v,0) changed multiset: %v", m)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(v, -1) did not panic")
		}
	}()
	newInt().Add(1, -1)
}

func TestRemove(t *testing.T) {
	m := newInt()
	m.Add(2, 5)
	if err := m.Remove(2, 3); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if m.Count(2) != 2 || m.Len() != 2 {
		t.Fatalf("after remove: %v", m)
	}
	if err := m.Remove(2, 2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if m.Count(2) != 0 || m.Distinct() != 0 {
		t.Fatalf("after full remove: %v", m)
	}
}

func TestRemoveTooMany(t *testing.T) {
	m := newInt()
	m.Add(2, 1)
	if err := m.Remove(2, 2); err == nil {
		t.Fatal("Remove of more copies than present did not error")
	}
	if m.Count(2) != 1 {
		t.Fatalf("failed Remove mutated multiset: %v", m)
	}
	if err := m.Remove(9, 1); err == nil {
		t.Fatal("Remove of absent element did not error")
	}
	if err := m.Remove(2, -1); err == nil {
		t.Fatal("Remove with negative count did not error")
	}
	if err := m.Remove(2, 0); err != nil {
		t.Fatalf("Remove(v, 0) errored: %v", err)
	}
}

func TestValuesSorted(t *testing.T) {
	m := newStr()
	for _, s := range []string{"c", "a", "b", "a"} {
		m.Add(s, 1)
	}
	got := m.Values()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Values() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values() = %v, want %v", got, want)
		}
	}
}

func TestForEachOrderAndCounts(t *testing.T) {
	m := newInt()
	m.Add(9, 1)
	m.Add(4, 2)
	m.Add(7, 3)
	var vs []int
	var ns []int
	m.ForEach(func(v, n int) { vs = append(vs, v); ns = append(ns, n) })
	if len(vs) != 3 || vs[0] != 4 || vs[1] != 7 || vs[2] != 9 {
		t.Fatalf("ForEach order = %v", vs)
	}
	if ns[0] != 2 || ns[1] != 3 || ns[2] != 1 {
		t.Fatalf("ForEach counts = %v", ns)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := newInt()
	m.Add(1, 2)
	c := m.Clone()
	c.Add(1, 1)
	c.Add(2, 1)
	if m.Count(1) != 2 || m.Count(2) != 0 {
		t.Fatalf("mutating clone changed original: %v", m)
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestEqual(t *testing.T) {
	a, b := newInt(), newInt()
	a.Add(1, 2)
	b.Add(1, 2)
	if !a.Equal(b) {
		t.Fatal("equal multisets reported unequal")
	}
	b.Add(1, 1)
	if a.Equal(b) {
		t.Fatal("different counts reported equal")
	}
	c := newInt()
	c.Add(2, 2)
	if a.Equal(c) {
		t.Fatal("different elements reported equal")
	}
}

func TestContains(t *testing.T) {
	a, b := newInt(), newInt()
	a.Add(1, 3)
	a.Add(2, 1)
	b.Add(1, 2)
	if !a.Contains(b) {
		t.Fatal("a should contain b")
	}
	if b.Contains(a) {
		t.Fatal("b should not contain a")
	}
	b.Add(3, 1)
	if a.Contains(b) {
		t.Fatal("a should not contain b after adding 3")
	}
	if !a.Contains(newInt()) {
		t.Fatal("every multiset contains the empty multiset")
	}
}

func TestStringDeterministic(t *testing.T) {
	m := newStr()
	m.Add("b", 2)
	m.Add("a", 1)
	if got := m.String(); got != "{a×1, b×2}" {
		t.Fatalf("String() = %q", got)
	}
	if m.Key() != m.String() {
		t.Fatal("Key() should equal String()")
	}
}

// Property: after any sequence of adds, Len is the sum of counts and Values
// is sorted and duplicate-free.
func TestQuickAddInvariants(t *testing.T) {
	f := func(vals []int8) bool {
		m := newInt()
		total := 0
		for _, v := range vals {
			m.Add(int(v), 1)
			total++
		}
		if m.Len() != total {
			return false
		}
		sum := 0
		m.ForEach(func(_, n int) { sum += n })
		if sum != total {
			return false
		}
		ks := m.Values()
		for i := 1; i < len(ks); i++ {
			if ks[i-1] >= ks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: add-then-remove of the same copies restores the original
// multiset exactly.
func TestQuickAddRemoveRoundTrip(t *testing.T) {
	f := func(base, extra []uint8) bool {
		m := newInt()
		for _, v := range base {
			m.Add(int(v), 1)
		}
		snapshot := m.Clone()
		for _, v := range extra {
			m.Add(int(v), 1)
		}
		for _, v := range extra {
			if err := m.Remove(int(v), 1); err != nil {
				return false
			}
		}
		return m.Equal(snapshot)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains is reflexive and respects single-copy removal.
func TestQuickContains(t *testing.T) {
	f := func(vals []uint8) bool {
		m := newInt()
		for _, v := range vals {
			m.Add(int(v), 1)
		}
		if !m.Contains(m) {
			return false
		}
		sub := m.Clone()
		for _, v := range sub.Values() {
			if err := sub.Remove(v, 1); err != nil {
				return false
			}
			if !m.Contains(sub) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDistinguishesContents(t *testing.T) {
	a, b := newStr(), newStr()
	a.Add("x", 2)
	b.Add("x", 1)
	b.Add("x", 1)
	if a.Key() != b.Key() {
		t.Fatal("same contents should have same key")
	}
	b.Add("y", 1)
	if a.Key() == b.Key() {
		t.Fatal("different contents should have different keys")
	}
	if !strings.Contains(b.Key(), "y×1") {
		t.Fatalf("key missing element: %q", b.Key())
	}
}

// TestAppendKey: the append rendering must equal String()/Key() byte for
// byte (the interned stores hash the appended form, the legacy stores the
// string form), with and without a custom element renderer, and must extend
// a non-empty prefix in place.
func TestAppendKey(t *testing.T) {
	m := newInt()
	for _, v := range []int{5, 3, 3, 9, 3} {
		m.Add(v, 1)
	}
	if got, want := string(m.AppendKey(nil, nil)), m.Key(); got != want {
		t.Fatalf("AppendKey = %q, Key = %q", got, want)
	}
	pre := []byte("ch|")
	if got, want := string(m.AppendKey(pre, nil)), "ch|"+m.Key(); got != want {
		t.Fatalf("AppendKey with prefix = %q, want %q", got, want)
	}
	empty := newStr()
	if got := string(empty.AppendKey(nil, nil)); got != "{}" {
		t.Fatalf("empty AppendKey = %q, want {}", got)
	}
	// Custom element renderer: must be consulted for every element.
	s := newStr()
	s.Add("b", 2)
	s.Add("a", 1)
	custom := func(dst []byte, v string) []byte { return append(append(dst, '<'), append([]byte(v), '>')...) }
	if got, want := string(s.AppendKey(nil, custom)), "{<a>×1, <b>×2}"; got != want {
		t.Fatalf("custom AppendKey = %q, want %q", got, want)
	}
}

// TestQuickAppendKeyMatchesString: property form over random contents.
func TestQuickAppendKeyMatchesString(t *testing.T) {
	f := func(vals []uint8) bool {
		m := newInt()
		for _, v := range vals {
			m.Add(int(v)%7, int(v)%3+1)
		}
		return string(m.AppendKey(nil, nil)) == m.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCloneInto: reuses the destination's storage, matches Clone, and leaves
// no aliasing between source and destination.
func TestCloneInto(t *testing.T) {
	src := newInt()
	src.Add(1, 2)
	src.Add(4, 1)
	dst := newInt()
	dst.Add(99, 5) // pre-existing content must be overwritten
	src.CloneInto(dst)
	if !dst.Equal(src) {
		t.Fatalf("CloneInto: dst %s != src %s", dst, src)
	}
	dst.Add(7, 1)
	if src.Count(7) != 0 {
		t.Fatal("CloneInto aliased storage: mutating dst changed src")
	}
	src.Add(1, 1)
	if dst.Count(1) != 2 {
		t.Fatal("CloneInto aliased storage: mutating src changed dst")
	}
}

// TestReset: empties in place and the multiset is fully reusable.
func TestReset(t *testing.T) {
	m := newInt()
	m.Add(3, 4)
	m.Reset()
	if m.Len() != 0 || m.Distinct() != 0 || m.String() != "{}" {
		t.Fatalf("after Reset: Len=%d Distinct=%d String=%q", m.Len(), m.Distinct(), m.String())
	}
	m.Add(2, 1)
	if m.Len() != 1 || m.Count(2) != 1 {
		t.Fatalf("reuse after Reset: Len=%d Count(2)=%d", m.Len(), m.Count(2))
	}
}
