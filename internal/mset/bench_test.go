package mset

import (
	"strconv"
	"testing"
)

// BenchmarkHotLoop replays the channel hot-loop shape — clone, a burst of
// inserts and removes, then a canonical-key render — contrasting the
// allocating legacy surface (Clone + Key) with the reusing one
// (CloneInto + AppendKey into scratch). Run with -benchmem: the right-hand
// sub-benchmark is the zero-alloc claim.
func BenchmarkHotLoop(b *testing.B) {
	src := New[int](func(a, c int) bool { return a < c })
	for v := 0; v < 8; v++ {
		src.Add(v%5, 1+v%3)
	}
	elem := func(dst []byte, v int) []byte { return strconv.AppendInt(dst, int64(v), 10) }
	b.Run("clone-key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := src.Clone()
			m.Add(i%7, 1)
			m.Remove(i%5, 1)
			if len(m.Key()) == 0 {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("cloneinto-appendkey", func(b *testing.B) {
		m := New[int](func(a, c int) bool { return a < c })
		var buf []byte
		for i := 0; i < b.N; i++ {
			src.CloneInto(m)
			m.Add(i%7, 1)
			m.Remove(i%5, 1)
			buf = m.AppendKey(buf[:0], elem)
			if len(buf) == 0 {
				b.Fatal("empty key")
			}
		}
	})
}
