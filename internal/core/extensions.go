package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/adversary"
	"repro/internal/bound"
	"repro/internal/channel"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/ioauto"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// --- E2d: the Theorem 3.1 inductive construction, instrumented ---

// E2dRow is one protocol's fate under the instrumented induction.
type E2dRow struct {
	Protocol    string
	Complete    bool
	Accumulated int
	Messages    int
	Broken      bool
}

// E2dResult carries the outcome rows plus the accumulation history of the
// alternating bit run (the proof's P_i sets, growing one header at a time).
type E2dResult struct {
	Rows          []E2dRow
	AltbitHistory []adversary.InductionPhase
}

// RunE2d runs the proof of Theorem 3.1 as an adaptive accumulation: delay
// copies of every not-yet-covered data header until the protocol's whole
// observed alphabet is stranded, then simulate.
func RunE2d(target int) (E2dResult, error) {
	if target == 0 {
		target = 3
	}
	var res E2dResult
	ps := []protocol.Protocol{
		protocol.NewAltBit(),
		protocol.NewCheat(1),
		protocol.NewCntLinear(),
		protocol.NewSeqNum(),
	}
	for _, p := range ps {
		rep, err := adversary.Induction(p, target, 10, adversary.ReplayConfig{MaxDepth: 4 * target})
		if err != nil {
			return res, fmt.Errorf("E2d %s: %w", p.Name(), err)
		}
		res.Rows = append(res.Rows, E2dRow{
			Protocol:    p.Name(),
			Complete:    rep.Complete,
			Accumulated: len(rep.Accumulated),
			Messages:    rep.MessagesUsed,
			Broken:      rep.Replay.Cert != nil,
		})
		if p.Name() == "altbit" {
			res.AltbitHistory = rep.Phases
		}
	}
	return res, nil
}

// Table renders E2d.
func (r E2dResult) Table() *Table {
	t := &Table{
		ID:    "E2d",
		Title: "Theorem 3.1's inductive construction, instrumented",
		Note:  "expected: alphabet accumulation completes for bounded protocols and the simulation breaks the under-counting ones; seqnum's frontier never closes",
		Columns: []string{
			"protocol", "accumulation complete", "headers stranded", "messages used", "broken",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Protocol, row.Complete, row.Accumulated, row.Messages, row.Broken)
	}
	return t
}

// HistoryTable renders the alternating-bit accumulation history: the
// executable form of the proof's growing P_i sets.
func (r E2dResult) HistoryTable() *Table {
	t := &Table{
		ID:      "E2d-history",
		Title:   "accumulation history against altbit (the proof's P_i sets)",
		Note:    "per-header in-transit copies after each message; headers enter P_i as they reach the target",
		Columns: []string{"after message", "in-transit counts", "newly accumulated"},
	}
	for _, ph := range r.AltbitHistory {
		hs := make([]string, 0, len(ph.Counts))
		//nfvet:allow maprange (keys are collected then sorted before use)
		for h := range ph.Counts {
			hs = append(hs, h)
		}
		sort.Strings(hs)
		counts := ""
		for i, h := range hs {
			if i > 0 {
				counts += " "
			}
			counts += fmt.Sprintf("%s×%d", h, ph.Counts[h])
		}
		newly := "-"
		if len(ph.NewHeaders) > 0 {
			newly = fmt.Sprint(ph.NewHeaders)
		}
		t.AddRow(ph.Message, counts, newly)
	}
	return t
}

// --- E7: the transport-layer extension ---

// E7Row is one protocol's outcome under the exhaustive explorer.
type E7Row struct {
	Protocol  string
	HeaderK   int
	Bounded   bool
	Broken    bool
	CexLength int
	States    int
	Exhausted bool
}

// RunE7 realises the paper's closing remark — "all our results can be
// extended to transport layer protocols over non-FIFO virtual links" — by
// running the bounded-exhaustive explorer against sliding window transport
// protocols with finite (mod-S) and unbounded sequence spaces, alongside
// the data link protocols for reference.
func RunE7() ([]E7Row, error) {
	type target struct {
		p   protocol.Protocol
		cfg explore.Config
	}
	targets := []target{
		{transport.New(2, 1), explore.Config{Messages: 3, MaxDataSends: 6, MaxAckSends: 6}},
		{transport.New(3, 1), explore.Config{Messages: 4, MaxDataSends: 8, MaxAckSends: 8}},
		{transport.New(0, 2), explore.Config{Messages: 3, MaxDataSends: 6, MaxAckSends: 6}},
		{transport.NewGoBackN(2, 1), explore.Config{Messages: 3, MaxDataSends: 6, MaxAckSends: 6}},
		{transport.NewGoBackN(0, 2), explore.Config{Messages: 3, MaxDataSends: 6, MaxAckSends: 6}},
		{protocol.NewAltBit(), explore.Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4}},
		{protocol.NewSeqNum(), explore.Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4}},
		{protocol.NewCntLinear(), explore.Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4}},
	}
	var rows []E7Row
	for _, tg := range targets {
		rep, err := explore.Explore(tg.p, tg.cfg)
		if err != nil {
			return rows, fmt.Errorf("E7 %s: %w", tg.p.Name(), err)
		}
		k, bounded := tg.p.HeaderBound()
		row := E7Row{
			Protocol:  tg.p.Name(),
			HeaderK:   k,
			Bounded:   bounded,
			States:    rep.States,
			Exhausted: rep.Exhausted,
		}
		if rep.Violation != nil {
			row.Broken = true
			row.CexLength = len(rep.Counterexample)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E7Table renders E7.
func E7Table(rows []E7Row) *Table {
	t := &Table{
		ID:    "E7",
		Title: "transport layer over non-FIFO virtual links — exhaustive exploration",
		Note:  "expected: every finite sequence space (bounded headers) falls with a shortest counterexample; unbounded variants verify safe over the exhausted bounded space",
		Columns: []string{
			"protocol", "headers", "broken", "shortest cex (events)", "states", "space exhausted",
		},
	}
	for _, r := range rows {
		k := "unbounded"
		if r.Bounded {
			k = fmt.Sprint(r.HeaderK)
		}
		cex := "-"
		if r.Broken {
			cex = fmt.Sprint(r.CexLength)
		}
		t.AddRow(r.Protocol, k, r.Broken, cex, r.States, r.Exhausted)
	}
	return t
}

// --- E8: the FIFO contrast — reordering is the decisive property ---

// E8Row is one (protocol, discipline) exploration outcome.
type E8Row struct {
	Protocol  string
	FIFO      bool
	Broken    bool
	States    int
	Exhausted bool
}

// RunE8 runs the exhaustive explorer over both channel disciplines. The
// paper's lower bounds are specifically about NON-FIFO channels; the
// contrast makes that precise: every unsafe protocol here falls only under
// reordering, and is exhaustively safe over the lossy FIFO channel at the
// same bounds.
func RunE8() ([]E8Row, error) {
	ps := []protocol.Protocol{
		protocol.NewAltBit(),
		protocol.NewCheat(1),
		protocol.NewSeqNum(),
		protocol.NewCntLinear(),
	}
	var rows []E8Row
	for _, p := range ps {
		for _, fifo := range []bool{false, true} {
			rep, err := explore.Explore(p, explore.Config{
				Messages: 3, MaxDataSends: 6, MaxAckSends: 6,
				FIFO: fifo, AllowDrop: fifo,
			})
			if err != nil {
				return rows, fmt.Errorf("E8 %s fifo=%t: %w", p.Name(), fifo, err)
			}
			rows = append(rows, E8Row{
				Protocol:  p.Name(),
				FIFO:      fifo,
				Broken:    rep.Violation != nil,
				States:    rep.States,
				Exhausted: rep.Exhausted,
			})
		}
	}
	return rows, nil
}

// E8Table renders E8.
func E8Table(rows []E8Row) *Table {
	t := &Table{
		ID:    "E8",
		Title: "FIFO vs non-FIFO — reordering is what the lower bounds exploit",
		Note:  "expected: altbit and cheat1 fall only under the non-FIFO discipline; all protocols exhaust safely over lossy FIFO at the same bounds",
		Columns: []string{
			"protocol", "discipline", "broken", "states", "space exhausted",
		},
	}
	for _, r := range rows {
		disc := "non-FIFO"
		if r.FIFO {
			disc = "FIFO+loss"
		}
		t.AddRow(r.Protocol, disc, r.Broken, r.States, r.Exhausted)
	}
	return t
}

// --- E9: design ablations of the counting protocol ---

// ungenied wraps a protocol so that its endpoints get no channel oracle —
// the genie ablation. The endpoint wrappers below deliberately do NOT
// implement the genie-rebinding hooks (protocol.AckGenieUser /
// protocol.DataGenieUser), so the harnesses' fork/clone machinery cannot
// re-attach a live oracle and silently undo the ablation.
type ungenied struct {
	inner protocol.Protocol
}

func (u ungenied) Name() string             { return u.inner.Name() + "-nogenie" }
func (u ungenied) HeaderBound() (int, bool) { return u.inner.HeaderBound() }
func (u ungenied) New(_, _ channel.Genie) (protocol.Transmitter, protocol.Receiver) {
	t, r := u.inner.New(channel.NoGenie{}, channel.NoGenie{})
	return ungeniedT{inner: t}, ungeniedR{inner: r}
}

type ungeniedT struct{ inner protocol.Transmitter }

func (t ungeniedT) SendMsg(payload string)      { t.inner.SendMsg(payload) }
func (t ungeniedT) DeliverPkt(p ioa.Packet)     { t.inner.DeliverPkt(p) }
func (t ungeniedT) NextPkt() (ioa.Packet, bool) { return t.inner.NextPkt() }
func (t ungeniedT) Busy() bool                  { return t.inner.Busy() }
func (t ungeniedT) Clone() protocol.Transmitter {
	return ungeniedT{inner: t.inner.Clone()}
}
func (t ungeniedT) StateKey() string { return t.inner.StateKey() }
func (t ungeniedT) StateSize() int   { return t.inner.StateSize() }

type ungeniedR struct{ inner protocol.Receiver }

func (r ungeniedR) DeliverPkt(p ioa.Packet)     { r.inner.DeliverPkt(p) }
func (r ungeniedR) NextPkt() (ioa.Packet, bool) { return r.inner.NextPkt() }
func (r ungeniedR) TakeDelivered() []string     { return r.inner.TakeDelivered() }
func (r ungeniedR) Clone() protocol.Receiver {
	return ungeniedR{inner: r.inner.Clone()}
}
func (r ungeniedR) StateKey() string { return r.inner.StateKey() }
func (r ungeniedR) StateSize() int   { return r.inner.StateSize() }

// E9Row is one ablation outcome.
type E9Row struct {
	Variant   string
	Ablation  string
	Broken    bool
	CexLength int
	States    int
}

// RunE9 ablates the counting protocol's three load-bearing design choices
// and lets the exhaustive explorer judge each variant:
//
//	cntlinear            — the full protocol (baseline): safe;
//	cheat1               — threshold lowered by one: broken (Theorem 4.1's
//	                       "you must pay the full in-transit count");
//	cntnobind            — per-payload counting pooled: broken (a fresh
//	                       copy can push a stale payload over the line);
//	cntlinear-nogenie    — stale oracle removed (threshold always 0):
//	                       broken (the protocol degenerates to accept-first,
//	                       the alternating-bit failure mode).
func RunE9() ([]E9Row, error) {
	type variant struct {
		p        protocol.Protocol
		ablation string
	}
	variants := []variant{
		{protocol.NewCntLinear(), "none (baseline)"},
		{protocol.NewCheat(1), "threshold − 1"},
		{protocol.NewCntNoBind(), "payload binding off"},
		{ungenied{inner: protocol.NewCntLinear()}, "stale oracle off"},
	}
	var rows []E9Row
	for _, v := range variants {
		rep, err := explore.Explore(v.p, explore.Config{
			Messages: 3, MaxDataSends: 6, MaxAckSends: 6,
		})
		if err != nil {
			return rows, fmt.Errorf("E9 %s: %w", v.p.Name(), err)
		}
		row := E9Row{Variant: v.p.Name(), Ablation: v.ablation, States: rep.States}
		if rep.Violation != nil {
			row.Broken = true
			row.CexLength = len(rep.Counterexample)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E9Table renders E9.
func E9Table(rows []E9Row) *Table {
	t := &Table{
		ID:    "E9",
		Title: "counting-protocol ablations under exhaustive exploration",
		Note:  "expected: the baseline survives; removing any one design ingredient (full threshold, payload binding, stale oracle) yields a counterexample",
		Columns: []string{
			"variant", "ablation", "broken", "shortest cex (events)", "states",
		},
	}
	for _, r := range rows {
		cex := "-"
		if r.Broken {
			cex = fmt.Sprint(r.CexLength)
		}
		t.AddRow(r.Variant, r.Ablation, r.Broken, cex, r.States)
	}
	return t
}

// --- E10: Theorem 4.1's 1/k factor ---

// E10Row is one (K, L) measurement.
type E10Row struct {
	Protocol  string
	K         int // header-alphabet parameter (2K headers)
	Level     int // total stale packets spread over the headers
	PerHeader int // stale copies per data header
	Cost      int // closing cost of the next message
}

// RunE10 sweeps the counting protocol's header count K at a fixed total of
// L stale packets spread evenly over the K data headers, and measures the
// packets needed for the next message. Theorem 4.1's bound is ⌊l/k⌋: the
// measured cost follows L/K + 1, tracing the 1/k factor directly and
// interpolating between the alternating counting protocol (K = 2) and the
// naive protocol's O(1) (K → n).
func RunE10(level int, ks []int) ([]E10Row, error) {
	if level == 0 {
		level = 64
	}
	if len(ks) == 0 {
		ks = []int{2, 4, 8, 16}
	}
	var rows []E10Row
	for _, k := range ks {
		per := level / k
		p := protocol.NewCntK(k)
		r := sim.NewRunner(sim.Config{
			Protocol:   p,
			DataPolicy: channel.DelayPerHeader(per),
			StepBudget: budget,
		})
		// K messages strand `per` copies of each of the K data headers.
		for i := 0; i < k; i++ {
			if err := r.RunMessage(fmt.Sprintf("m%d", i)); err != nil {
				return rows, fmt.Errorf("E10 k=%d setup: %w", k, err)
			}
		}
		r.SetPolicies(channel.Reliable(), channel.Reliable())
		r.SubmitMsg("probe")
		cost, err := bound.ClosingCost(r, budget)
		if err != nil {
			return rows, fmt.Errorf("E10 k=%d closing: %w", k, err)
		}
		rows = append(rows, E10Row{
			Protocol:  p.Name(),
			K:         k,
			Level:     per * k,
			PerHeader: per,
			Cost:      cost,
		})
	}
	// The naive protocol as the K → n limit.
	r, err := bound.BuildInTransit(protocol.NewSeqNum(), level, budget)
	if err != nil {
		return rows, fmt.Errorf("E10 seqnum: %w", err)
	}
	r.SubmitMsg("probe")
	cost, err := bound.ClosingCost(r, budget)
	if err != nil {
		return rows, fmt.Errorf("E10 seqnum closing: %w", err)
	}
	rows = append(rows, E10Row{Protocol: "seqnum", K: 0, Level: level, Cost: cost})
	return rows, nil
}

// E10Table renders E10.
func E10Table(rows []E10Row) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Theorem 4.1's 1/k factor — cost vs header count at fixed stale total L",
		Note:  "expected: cost ≈ L/K + 1 (the theorem's ⌊l/k⌋, measured); seqnum is the K→n limit at O(1)",
		Columns: []string{
			"protocol", "headers 2K", "stale total L", "stale per header", "closing cost", "L/K + 1",
		},
	}
	for _, r := range rows {
		if r.K == 0 {
			t.AddRow(r.Protocol, "unbounded", r.Level, "-", r.Cost, "-")
			continue
		}
		t.AddRow(r.Protocol, 2*r.K, r.Level, r.PerHeader, r.Cost, r.PerHeader+1)
	}
	return t
}

// --- E11: Theorem 5.1's internals — the m_{i,j} trajectories ---

// E11Series is one q's dominant-packet trajectory.
type E11Series struct {
	Q float64
	// MaxInTransit[i] is the largest per-header in-transit count after
	// message i — the paper's m_{i,j} for the dominant packet p_j.
	MaxInTransit []float64
	// Rate is the fitted per-phase geometric growth of the dominant
	// count (compare 1/(1−q) and the paper's 1+q).
	Rate float64
	R2   float64
}

// RunE11 measures the quantity the proof of Theorem 5.1 actually tracks:
// the number of in-transit copies m_{i,j} of the dominant packet, message
// by message, under the probabilistic physical layer. Lemma 5.3's claim is
// that m grows geometrically at ≈ (1+q−ε) per dominant phase; our counting
// protocol realises the recurrence m ← m + q·(m+1)/(1−q), i.e. growth at
// 1/(1−q) ≥ 1+q per same-header phase.
func RunE11(qs []float64, n, seeds int) ([]E11Series, error) {
	if len(qs) == 0 {
		qs = []float64{0.1, 0.25, 0.5}
	}
	if n == 0 {
		n = 24
	}
	if seeds == 0 {
		seeds = 5
	}
	var out []E11Series
	for _, q := range qs {
		sums := make([]float64, n)
		for seed := 0; seed < seeds; seed++ {
			r := sim.NewRunner(sim.Config{
				Protocol:   protocol.NewCntLinear(),
				DataPolicy: channel.Probabilistic(q, rand.New(rand.NewSource(SplitSeed(int64(seed), fmt.Sprintf("E11/q=%g", q))))),
				StepBudget: budget,
			})
			for i := 0; i < n; i++ {
				if err := r.RunMessage("m"); err != nil {
					return out, fmt.Errorf("E11 q=%.2f msg %d: %w", q, i, err)
				}
				m := r.ChData.CountHeader("c0")
				if c1 := r.ChData.CountHeader("c1"); c1 > m {
					m = c1
				}
				sums[i] += float64(m)
			}
		}
		s := E11Series{Q: q}
		var xs, ys []float64
		for i := range sums {
			mean := sums[i] / float64(seeds)
			s.MaxInTransit = append(s.MaxInTransit, mean)
			// Fit only the tail (the recurrence needs a seeded pool) and
			// only positive values.
			if i >= n/3 && mean > 0 {
				xs = append(xs, float64(i))
				ys = append(ys, mean)
			}
		}
		rate, fit, err := stats.GrowthRate(xs, ys)
		if err != nil {
			return out, fmt.Errorf("E11 fit q=%.2f: %w", q, err)
		}
		// rate is per message; per same-header phase it is rate².
		s.Rate = rate * rate
		s.R2 = fit.R2
		out = append(out, s)
	}
	return out, nil
}

// E11Table renders E11.
func E11Table(rows []E11Series, n int) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Theorem 5.1 internals — dominant-packet in-transit trajectories m_{i,j}",
		Note:  "expected: the dominant count grows geometrically per same-header phase at ≈ 1/(1−q) ≥ 1+q (Lemma 5.3's mechanism)",
		Columns: []string{
			"q", "m after n/3", "m after 2n/3", "m after n", "fitted phase rate", "1+q", "1/(1−q)", "R²",
		},
	}
	for _, s := range rows {
		m := s.MaxInTransit
		t.AddRow(s.Q, m[len(m)/3], m[2*len(m)/3], m[len(m)-1], s.Rate, 1+s.Q, 1/(1-s.Q), s.R2)
	}
	return t
}

// --- E12: three formalisms, one verdict ---

// E12Row is one (system, formalism, discipline) verdict.
type E12Row struct {
	System     string
	Formalism  string // "endpoints" (explore) or "automata" (ioauto)
	Discipline string // "non-FIFO" or "FIFO"
	Broken     bool
	States     int
}

// RunE12 checks that the two exhaustive formulations — the concrete
// endpoint explorer and the [LT87] I/O automaton reachability — return the
// same verdict for the two boundary protocols under both channel
// disciplines. (The third formulation, the specification automata of
// internal/spec, re-checks every counterexample trace; adversary
// certificates run through it in Recheck.)
func RunE12() ([]E12Row, error) {
	var rows []E12Row

	type sys struct {
		name string
		conc protocol.Protocol
		aut  func(k ioauto.ChannelKind) (ioauto.Automaton, error)
	}
	systems := []sys{
		{"altbit", protocol.NewAltBit(), func(k ioauto.ChannelKind) (ioauto.Automaton, error) {
			return ioauto.NewAltBitSystem(k, 2, 2)
		}},
		{"seqnum", protocol.NewSeqNum(), func(k ioauto.ChannelKind) (ioauto.Automaton, error) {
			return ioauto.NewSeqNumSystem(k, 2, 2)
		}},
	}
	for _, s := range systems {
		for _, fifo := range []bool{false, true} {
			disc := "non-FIFO"
			kind := ioauto.NonFIFOKind
			if fifo {
				disc = "FIFO"
				kind = ioauto.FIFOKind
			}
			exp, err := explore.Explore(s.conc, explore.Config{
				Messages: 2, MaxDataSends: 4, MaxAckSends: 4,
				FIFO: fifo, AllowDrop: fifo, ConstantPayload: true,
			})
			if err != nil {
				return rows, fmt.Errorf("E12 explore %s/%s: %w", s.name, disc, err)
			}
			rows = append(rows, E12Row{
				System: s.name, Formalism: "endpoints", Discipline: disc,
				Broken: exp.Violation != nil, States: exp.States,
			})
			a, err := s.aut(kind)
			if err != nil {
				return rows, fmt.Errorf("E12 automata %s/%s: %w", s.name, disc, err)
			}
			res, err := ioauto.Reach(a, ioauto.Violated, 1<<22)
			if err != nil {
				return rows, fmt.Errorf("E12 reach %s/%s: %w", s.name, disc, err)
			}
			rows = append(rows, E12Row{
				System: s.name, Formalism: "automata", Discipline: disc,
				Broken: res.Found != nil, States: res.States,
			})
		}
	}
	return rows, nil
}

// E12Table renders E12.
func E12Table(rows []E12Row) *Table {
	t := &Table{
		ID:    "E12",
		Title: "cross-validation — concrete endpoints vs the [LT87] automaton formalism",
		Note:  "expected: both exhaustive formulations agree on every (system, discipline) verdict",
		Columns: []string{
			"system", "formalism", "discipline", "broken", "states",
		},
	}
	for _, r := range rows {
		t.AddRow(r.System, r.Formalism, r.Discipline, r.Broken, r.States)
	}
	return t
}
