package core

import (
	"encoding/binary"
	"hash/fnv"
)

// SplitSeed derives the RNG seed for one named stream of an experiment from
// the experiment's root seed. Experiments that run several independent
// randomized series (per protocol, per message count, per replication) need
// uncorrelated channel behaviour in each; deriving every stream through a
// hash of (root, stream name) replaces the ad-hoc `k*seed+c` formulas that
// used to be scattered over the drivers, whose streams could collide (e.g.
// the same affine seed reached from different (seed, n) pairs) and whose
// low-entropy seeds feed poorly into the simulator's LCG-based source.
//
// The derivation is FNV-64a over the root seed's bytes followed by the
// stream name, so it is stable across runs, platforms and Go versions —
// recorded experiment outputs remain reproducible.
func SplitSeed(root int64, stream string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(root))
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(stream))
	return int64(h.Sum64())
}
