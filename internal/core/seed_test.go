package core

import "testing"

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	// Stable across calls.
	if SplitSeed(3, "E4") != SplitSeed(3, "E4") {
		t.Fatal("SplitSeed is not deterministic")
	}
	// Distinct across streams and across roots, including the collision
	// shapes the old affine formulas allowed (different (root, stream)
	// pairs mapping to one seed).
	seen := make(map[int64]string)
	for root := int64(0); root < 50; root++ {
		for _, stream := range []string{"E4", "E5/n=8", "E5/n=16", "E6/seqnum", "E6/altbit", "E11/q=0.25"} {
			s := SplitSeed(root, stream)
			key := stream + "@" + string(rune(root))
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %q and %q both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestSplitSeedGoldenValues(t *testing.T) {
	// The derivation is part of experiment reproducibility: these values
	// must never change without a deliberate (documented) break.
	cases := []struct {
		root   int64
		stream string
		want   int64
	}{
		{0, "E4", 7559500658952375772},
		{1, "E5/n=8", -4700452118398434034},
		{7, "E6/seqnum", 3090647103791314087},
	}
	for _, c := range cases {
		if got := SplitSeed(c.root, c.stream); got != c.want {
			t.Fatalf("SplitSeed(%d, %q) = %d, want %d", c.root, c.stream, got, c.want)
		}
	}
}
