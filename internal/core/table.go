package core

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the repo's stand-in for the
// paper's (nonexistent) tables and figures. Every experiment driver in this
// package can emit one or more Tables, and cmd/nfexp prints them in the
// format recorded in EXPERIMENTS.md.
type Table struct {
	// ID is the experiment identifier from DESIGN.md §4 (e.g. "E3a").
	ID string
	// Title is a one-line description.
	Title string
	// Note carries the expected-shape commentary.
	Note string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as GitHub-flavoured markdown, for
// embedding experiment results in documents like EXPERIMENTS.md.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "> %s\n\n", t.Note)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
