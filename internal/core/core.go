// Package core implements the reproduction's experiment suite: one
// executable experiment per result of Mansour & Schieber (PODC '89), as
// indexed in DESIGN.md §4.
//
// The paper is a lower-bound paper with no tables or figures; each
// experiment here realises a theorem's mechanism against the protocol
// family in internal/protocol and reports a table whose *shape* the
// theorem predicts (who wins, growth rate, immunity of the naive
// protocol). EXPERIMENTS.md records paper-predicted vs. measured results.
//
//	E0  — replay attack on the alternating bit protocol (the paper's premise)
//	E1  — Theorem 2.1: boundness ≤ k_t·k_r; pumping detection
//	E2  — Theorem 3.1: header growth, space blow-up, header-budget attack
//	E3  — Theorem 4.1: packets-per-message vs packets-in-transit; cheat attack
//	E4  — Theorem 5.1: exponential blow-up over the probabilistic channel
//	E5  — Theorem 5.1: "with overwhelming probability" (tail decay)
//	E6  — the paper's concluding trade-off table
//	E2d — Theorem 3.1's inductive construction, instrumented (extensions.go)
//	E7  — the transport-layer extension over non-FIFO virtual links
//	E8  — FIFO vs non-FIFO contrast (reordering is the decisive property)
//	E9  — counting-protocol design ablations
package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/bound"
	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
)

// budget is the step budget used by the closing-cost measurements.
const budget = 1 << 20

// --- E0: the premise — replay breaks altbit, correct protocols resist ---

// E0Outcome is one protocol's fate under the replay adversary.
type E0Outcome struct {
	Protocol string
	Broken   bool
	Property string // violated property, "" if resisted
	Nodes    int
	Replays  int
}

// E0Result is the outcome of experiment E0.
type E0Result struct {
	Outcomes []E0Outcome
	// Cert is the alternating-bit violation certificate.
	Cert *adversary.Certificate
}

// RunE0 strands stale copies and runs the replay adversary against altbit
// (expected: DL1 violation certificate), and against seqnum and the
// counting protocols (expected: resist).
func RunE0() (E0Result, error) {
	var res E0Result
	ps := []protocol.Protocol{
		protocol.NewAltBit(),
		protocol.NewSeqNum(),
		protocol.NewCntLinear(),
		protocol.NewCntExp(),
	}
	for _, p := range ps {
		r := sim.NewRunner(sim.Config{
			Protocol:    p,
			DataPolicy:  channel.DelayFirst(2),
			RecordTrace: true,
		})
		for i := 0; i < 2; i++ {
			if err := r.RunMessage(fmt.Sprintf("m%d", i)); err != nil {
				return res, fmt.Errorf("E0 setup %s: %w", p.Name(), err)
			}
		}
		rep, err := adversary.ReplaySearch(r, adversary.ReplayConfig{MaxDepth: 8})
		if err != nil {
			return res, fmt.Errorf("E0 %s: %w", p.Name(), err)
		}
		o := E0Outcome{Protocol: p.Name(), Nodes: rep.Nodes}
		if rep.Cert != nil {
			o.Broken = true
			o.Property = rep.Cert.Violation.Property
			o.Replays = len(rep.Cert.Replayed)
			if p.Name() == "altbit" {
				res.Cert = rep.Cert
			}
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res, nil
}

// Table renders E0.
func (r E0Result) Table() *Table {
	t := &Table{
		ID:    "E0",
		Title: "replay adversary over a non-FIFO channel",
		Note:  "expected: altbit broken (DL1), seqnum and counting protocols resist",
		Columns: []string{
			"protocol", "broken", "violation", "replays", "nodes explored",
		},
	}
	for _, o := range r.Outcomes {
		viol := "-"
		if o.Property != "" {
			viol = o.Property
		}
		t.AddRow(o.Protocol, o.Broken, viol, o.Replays, o.Nodes)
	}
	return t
}

// --- E1: Theorem 2.1 ---

// E1Result is the outcome of experiment E1.
type E1Result struct {
	// KT and KR are the observed state counts of the alternating bit
	// automata under the constant-payload convention.
	KT, KR int
	// MaxBoundness is the largest measured closing cost over the M_f
	// sweep: the protocol's empirical boundness.
	MaxBoundness int
	// Pumped reports that the livelock protocol was certified by state
	// repetition, and PumpSteps how quickly.
	Pumped    bool
	PumpSteps int
}

// RunE1 verifies Theorem 2.1's two faces: the finite-state alternating bit
// protocol's measured boundness is at most k_t·k_r, and a protocol that
// cannot close its executions is caught by the pumping detector.
func RunE1() (E1Result, error) {
	var res E1Result
	var err error
	res.KT, res.KR, err = bound.StateSpace(protocol.NewAltBit(), 6)
	if err != nil {
		return res, fmt.Errorf("E1 state space: %w", err)
	}
	samples, err := bound.MeasureMf(protocol.NewAltBit(), 10, budget)
	if err != nil {
		return res, fmt.Errorf("E1 boundness: %w", err)
	}
	for _, s := range samples {
		if s.Cost > res.MaxBoundness {
			res.MaxBoundness = s.Cost
		}
	}
	r := sim.NewRunner(sim.Config{Protocol: protocol.NewLivelock()})
	r.SubmitMsg("m")
	pump, err := adversary.Pump(r, 10_000)
	if err != nil {
		return res, fmt.Errorf("E1 pump: %w", err)
	}
	res.Pumped = pump.Pumped
	res.PumpSteps = pump.Steps
	return res, nil
}

// Table renders E1.
func (r E1Result) Table() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Theorem 2.1 — boundness vs. the k_t·k_r state product",
		Note:    "expected: measured boundness ≤ k_t·k_r; livelock certified by a repeated joint state",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("altbit k_t (observed states)", r.KT)
	t.AddRow("altbit k_r (observed states)", r.KR)
	t.AddRow("k_t·k_r bound", r.KT*r.KR)
	t.AddRow("measured boundness (max closing cost)", r.MaxBoundness)
	t.AddRow("within bound", r.MaxBoundness <= r.KT*r.KR)
	t.AddRow("livelock pumped", r.Pumped)
	t.AddRow("steps to repeated state", r.PumpSteps)
	return t
}

// --- E2: Theorem 3.1 ---

// E2aRow is one protocol's header usage at one message count.
type E2aRow struct {
	Protocol string
	Messages int
	Headers  int
}

// RunE2a measures header growth h(n): distinct headers used to deliver n
// messages over a reliable channel, under the constant-payload convention.
func RunE2a(ns []int) ([]E2aRow, error) {
	if len(ns) == 0 {
		ns = []int{1, 4, 16, 64, 256}
	}
	var rows []E2aRow
	ps := []protocol.Protocol{
		protocol.NewSeqNum(),
		protocol.NewAltBit(),
		protocol.NewCntLinear(),
	}
	for _, p := range ps {
		for _, n := range ns {
			res := sim.NewRunner(sim.Config{
				Protocol: p,
				Payload:  func(int) string { return "m" },
			}).Run(n)
			if res.Err != nil {
				return rows, fmt.Errorf("E2a %s n=%d: %w", p.Name(), n, res.Err)
			}
			rows = append(rows, E2aRow{Protocol: p.Name(), Messages: n, Headers: res.Metrics.HeadersUsed})
		}
	}
	return rows, nil
}

// E2aTable renders E2a.
func E2aTable(rows []E2aRow) *Table {
	t := &Table{
		ID:      "E2a",
		Title:   "Theorem 3.1 corollary — header growth h(n)",
		Note:    "expected: seqnum uses Θ(n) headers (optimal per Thm 3.1); bounded protocols stay constant",
		Columns: []string{"protocol", "messages n", "distinct headers"},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Messages, r.Headers)
	}
	return t
}

// E2bRow is one protocol's space usage at one adversarial delay level.
type E2bRow struct {
	Protocol  string
	Delayed   int
	StateSize int
	InTransit int
}

// RunE2b fixes the message count and sweeps the number of adversarially
// delayed copies D, measuring peak endpoint state size. Theorem 3.1 says a
// sub-n-header protocol's space cannot be bounded by any function of n:
// here n is constant and the bounded-header protocols' state still grows
// with D, while seqnum's does not.
func RunE2b(messages int, delays []int) ([]E2bRow, error) {
	if messages == 0 {
		messages = 8
	}
	if len(delays) == 0 {
		delays = []int{0, 16, 64, 256, 1024}
	}
	var rows []E2bRow
	ps := []protocol.Protocol{protocol.NewSeqNum(), protocol.NewCntLinear(), protocol.NewCntExp()}
	for _, p := range ps {
		for _, d := range delays {
			res := sim.NewRunner(sim.Config{
				Protocol:   p,
				DataPolicy: channel.DelayFirst(d),
			}).Run(messages)
			if res.Err != nil {
				return rows, fmt.Errorf("E2b %s D=%d: %w", p.Name(), d, res.Err)
			}
			rows = append(rows, E2bRow{
				Protocol:  p.Name(),
				Delayed:   d,
				StateSize: res.Metrics.MaxStateSize,
				InTransit: res.Metrics.MaxInTransitData,
			})
		}
	}
	return rows, nil
}

// E2bTable renders E2b.
func E2bTable(rows []E2bRow, messages int) *Table {
	t := &Table{
		ID:    "E2b",
		Title: fmt.Sprintf("Theorem 3.1 — space at fixed n=%d vs adversarial delay D", messages),
		Note:  "expected: bounded-header protocols' state grows with D (space not a function of n); seqnum flat",
		Columns: []string{
			"protocol", "delayed copies D", "peak state size", "peak in-transit",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Delayed, r.StateSize, r.InTransit)
	}
	return t
}

// E2cRow is one protocol's fate under the header-budget construction.
type E2cRow struct {
	Protocol string
	Bounded  bool
	Broken   bool
	Property string
	Headers  int
	Nodes    int
}

// RunE2c runs the Theorem 3.1 construction — accumulate copies of the full
// alphabet, then replay — against each protocol.
func RunE2c(copies int) ([]E2cRow, error) {
	if copies == 0 {
		copies = 3
	}
	var rows []E2cRow
	ps := []protocol.Protocol{
		protocol.NewAltBit(),
		protocol.NewCheat(1),
		protocol.NewCntLinear(),
		protocol.NewCntExp(),
		protocol.NewSeqNum(),
	}
	for _, p := range ps {
		rep, err := adversary.HeaderBudget(p, copies, 3, adversary.ReplayConfig{MaxDepth: 2 * copies})
		if err != nil {
			return rows, fmt.Errorf("E2c %s: %w", p.Name(), err)
		}
		row := E2cRow{Protocol: p.Name(), Bounded: rep.Bounded}
		if rep.Bounded {
			row.Headers = len(rep.HeadersAccumulated)
			row.Nodes = rep.Replay.Nodes
			if rep.Replay.Cert != nil {
				row.Broken = true
				row.Property = rep.Replay.Cert.Violation.Property
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E2cTable renders E2c.
func E2cTable(rows []E2cRow) *Table {
	t := &Table{
		ID:    "E2c",
		Title: "Theorem 3.1 mechanism — accumulate every header, then simulate",
		Note:  "expected: altbit/cheat broken; counting protocols resist (paying unbounded space); seqnum inapplicable (pays ≥n headers)",
		Columns: []string{
			"protocol", "bounded alphabet", "broken", "violation", "headers accumulated", "nodes",
		},
	}
	for _, r := range rows {
		viol := "-"
		if r.Property != "" {
			viol = r.Property
		}
		if !r.Bounded {
			t.AddRow(r.Protocol, false, "-", "-", "-", "-")
			continue
		}
		t.AddRow(r.Protocol, true, r.Broken, viol, r.Headers, r.Nodes)
	}
	return t
}

// --- E3: Theorem 4.1 ---

// E3aRow is one protocol's closing cost at one in-transit level.
type E3aRow struct {
	Protocol  string
	Level     int
	InTransit int
	Cost      int
}

// RunE3a sweeps the number of packets delayed on the channel and measures
// the packets needed to deliver the next message (Definition 6 made
// executable). Theorem 4.1: ≥ L/k for any k-header protocol; [Afe88]'s
// linear cost is the tight upper bound, realised here by cntlinear.
func RunE3a(levels []int) ([]E3aRow, error) {
	if len(levels) == 0 {
		levels = []int{0, 1, 4, 16, 64, 256, 1024}
	}
	var rows []E3aRow
	ps := []protocol.Protocol{protocol.NewCntLinear(), protocol.NewSeqNum()}
	for _, p := range ps {
		samples, err := bound.MeasurePf(p, levels, budget)
		if err != nil {
			return rows, fmt.Errorf("E3a %s: %w", p.Name(), err)
		}
		for i, s := range samples {
			rows = append(rows, E3aRow{
				Protocol:  p.Name(),
				Level:     levels[i],
				InTransit: s.InTransit,
				Cost:      s.Cost,
			})
		}
	}
	return rows, nil
}

// E3aTable renders E3a.
func E3aTable(rows []E3aRow) *Table {
	t := &Table{
		ID:    "E3a",
		Title: "Theorem 4.1 — packets to deliver one message vs packets in transit L",
		Note:  "expected: cntlinear pays ≈ L+1 (tight, [Afe88] shape); seqnum pays O(1) — allowed because its headers are unbounded",
		Columns: []string{
			"protocol", "stranded L", "in transit at send", "closing cost sp(β)",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Level, r.InTransit, r.Cost)
	}
	return t
}

// E3bRow is one cheat variant's fate under replay at a given level.
type E3bRow struct {
	D       int
	Level   int
	Broken  bool
	Replays int
}

// RunE3b shows the lower-bound mechanism: a protocol that under-sends by
// even d=1 relative to the in-transit count is not merely slower — it is
// unsafe. Every cheat(d) yields a DL1 certificate.
func RunE3b(level int, ds []int) ([]E3bRow, error) {
	if level == 0 {
		level = 8
	}
	if len(ds) == 0 {
		ds = []int{1, 2, 4}
	}
	var rows []E3bRow
	for _, d := range ds {
		r := sim.NewRunner(sim.Config{
			Protocol:    protocol.NewCheat(d),
			DataPolicy:  channel.DelayFirst(level),
			RecordTrace: true,
		})
		for i := 0; i < 2; i++ {
			if err := r.RunMessage(fmt.Sprintf("m%d", i)); err != nil {
				return rows, fmt.Errorf("E3b cheat(%d): %w", d, err)
			}
		}
		rep, err := adversary.ReplaySearch(r, adversary.ReplayConfig{MaxDepth: level + 2})
		if err != nil {
			return rows, fmt.Errorf("E3b cheat(%d): %w", d, err)
		}
		row := E3bRow{D: d, Level: level}
		if rep.Cert != nil {
			row.Broken = true
			row.Replays = len(rep.Cert.Replayed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E3bTable renders E3b.
func E3bTable(rows []E3bRow) *Table {
	t := &Table{
		ID:      "E3b",
		Title:   "Theorem 4.1 mechanism — under-sending by d is unsafe",
		Note:    "expected: every cheat(d), d ≥ 1, is broken by replaying stale copies",
		Columns: []string{"cheat d", "stranded L", "broken", "replays needed"},
	}
	for _, r := range rows {
		t.AddRow(r.D, r.Level, r.Broken, r.Replays)
	}
	return t
}

// --- E4: Theorem 5.1 ---

// E4Series is one (protocol, q) growth curve.
type E4Series struct {
	Protocol string
	Q        float64
	Ns       []int
	// TotalPackets[i] is the mean total data-packet count to deliver
	// Ns[i] messages, over the configured seeds.
	TotalPackets []float64
	// PerMessageRate is the fitted per-message geometric growth ratio of
	// the per-message cost; PerPhaseRate = PerMessageRate² compares
	// against the theory ratios (1+q and 1/(1−q)).
	PerMessageRate float64
	PerPhaseRate   float64
	R2             float64
}

// E4Params configures RunE4.
type E4Params struct {
	Qs    []float64
	Ns    []int
	Seeds int
}

func (p E4Params) withDefaults() E4Params {
	if len(p.Qs) == 0 {
		p.Qs = []float64{0.1, 0.25, 0.5}
	}
	if len(p.Ns) == 0 {
		p.Ns = []int{4, 8, 12, 16, 20, 24}
	}
	if p.Seeds == 0 {
		p.Seeds = 5
	}
	return p
}

// RunE4 measures total packets to deliver n messages over the
// probabilistic physical layer (PL2p) with delay probability q, for the
// genie counting protocol (bounded headers — expected exponential, the
// Theorem 5.1 lower bound realised) and the naive protocol (unbounded
// headers — expected linear).
func RunE4(params E4Params) ([]E4Series, error) {
	params = params.withDefaults()
	var out []E4Series
	ps := []protocol.Protocol{protocol.NewCntLinear(), protocol.NewSeqNum()}
	for _, p := range ps {
		for _, q := range params.Qs {
			s := E4Series{Protocol: p.Name(), Q: q, Ns: params.Ns}
			// One run per seed to the largest n, sampling the cumulative
			// packet count at each checkpoint: within a run the totals are
			// monotone by construction, and each checkpoint shares the
			// channel history the theorem's stale-copy argument relies on.
			maxN := params.Ns[len(params.Ns)-1]
			checkpoints := make([][]float64, len(params.Ns))
			for seed := 0; seed < params.Seeds; seed++ {
				r := sim.NewRunner(sim.Config{
					Protocol:   p,
					DataPolicy: channel.Probabilistic(q, rand.New(rand.NewSource(SplitSeed(int64(seed), fmt.Sprintf("E4/%s/q=%g", p.Name(), q))))),
				})
				ci := 0
				for i := 0; i < maxN; i++ {
					if err := r.RunMessage("m"); err != nil {
						return out, fmt.Errorf("E4 %s q=%.2f msg=%d: %w", p.Name(), q, i, err)
					}
					if ci < len(params.Ns) && i+1 == params.Ns[ci] {
						checkpoints[ci] = append(checkpoints[ci],
							float64(r.Result().Metrics.TotalDataPackets))
						ci++
					}
				}
			}
			var xs, ys []float64
			for i, n := range params.Ns {
				sum, err := stats.Summarize(checkpoints[i])
				if err != nil {
					return out, err
				}
				s.TotalPackets = append(s.TotalPackets, sum.Mean)
				xs = append(xs, float64(n))
				ys = append(ys, sum.Mean)
			}
			// Fit the growth of the total; for an exponential series the
			// total and the per-message cost share the asymptotic ratio.
			rate, fit, err := stats.GrowthRate(xs, ys)
			if err != nil {
				return out, fmt.Errorf("E4 fit %s q=%.2f: %w", p.Name(), q, err)
			}
			s.PerMessageRate = rate
			s.PerPhaseRate = rate * rate
			s.R2 = fit.R2
			out = append(out, s)
		}
	}
	return out, nil
}

// E4Table renders E4.
func E4Table(series []E4Series) *Table {
	t := &Table{
		ID:    "E4",
		Title: "Theorem 5.1 — total packets over a probabilistic channel (delay prob. q)",
		Note:  "expected: cntlinear per-phase ratio ≈ 1/(1−q) ≥ 1+q (exponential, matching (1+q−ε)^Ω(n)); seqnum ratio ≈ 1 (linear)",
		Columns: []string{
			"protocol", "q", "n range", "total @max n", "per-msg ratio", "per-phase ratio", "1+q", "1/(1−q)", "R²",
		},
	}
	for _, s := range series {
		nRange := fmt.Sprintf("%d..%d", s.Ns[0], s.Ns[len(s.Ns)-1])
		t.AddRow(s.Protocol, s.Q, nRange, s.TotalPackets[len(s.TotalPackets)-1],
			s.PerMessageRate, s.PerPhaseRate, 1+s.Q, 1/(1-s.Q), s.R2)
	}
	return t
}

// --- E5: overwhelming probability ---

// E5Row is the tail estimate at one n.
type E5Row struct {
	N             int
	Threshold     float64
	TailFraction  float64
	HoeffdingStep float64
}

// E5Params configures RunE5.
type E5Params struct {
	Q     float64
	Ns    []int
	Seeds int
}

func (p E5Params) withDefaults() E5Params {
	if p.Q == 0 {
		p.Q = 0.25
	}
	if len(p.Ns) == 0 {
		p.Ns = []int{4, 8, 16, 24, 32}
	}
	if p.Seeds == 0 {
		p.Seeds = 80
	}
	return p
}

// RunE5 estimates, for each n, the probability that the bounded-header
// protocol delivers n messages with fewer than τ(n) total packets, where
// the threshold τ grows at the theorem's rate: τ(n) = τ₀·(1+q)^{(n−n₀)/2},
// calibrated so that τ₀ is the median cost at the smallest n (the
// empirical tail starts near 1/2 there). Theorem 5.1 says the bill
// outgrows any (1+q−ε)^{cn} envelope with overwhelming probability, so the
// fraction of runs under τ must vanish as n grows; the Hoeffding bound of
// Theorem 5.4 at α = q/2 is shown alongside as the analytic decay
// reference.
func RunE5(params E5Params) ([]E5Row, error) {
	params = params.withDefaults()
	totalsByN := make([][]float64, len(params.Ns))
	for i, n := range params.Ns {
		for seed := 0; seed < params.Seeds; seed++ {
			res := sim.NewRunner(sim.Config{
				Protocol:   protocol.NewCntLinear(),
				DataPolicy: channel.Probabilistic(params.Q, rand.New(rand.NewSource(SplitSeed(int64(seed), fmt.Sprintf("E5/n=%d", n))))),
			}).Run(n)
			if res.Err != nil {
				return nil, fmt.Errorf("E5 n=%d seed=%d: %w", n, seed, res.Err)
			}
			totalsByN[i] = append(totalsByN[i], float64(res.Metrics.TotalDataPackets))
		}
	}
	base, err := stats.Summarize(totalsByN[0])
	if err != nil {
		return nil, err
	}
	n0 := params.Ns[0]
	var rows []E5Row
	for i, n := range params.Ns {
		threshold := base.Median * math.Pow(1+params.Q, float64(n-n0)/2)
		rows = append(rows, E5Row{
			N:             n,
			Threshold:     threshold,
			TailFraction:  stats.TailFraction(totalsByN[i], threshold),
			HoeffdingStep: stats.Hoeffding(n, params.Q/2, params.Q),
		})
	}
	return rows, nil
}

// E5Table renders E5.
func E5Table(rows []E5Row, q float64) *Table {
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("Theorem 5.1 — tail decay at q=%.2f (cntlinear)", q),
		Note:  "expected: P[total < τ(n)] → 0, τ calibrated at the smallest n and grown at rate (1+q)^{1/2}/msg; Hoeffding e^{−2n(q/2−q)²} as analytic reference",
		Columns: []string{
			"n", "threshold τ(n)", "empirical P[total<τ]", "Hoeffding bound",
		},
	}
	for _, r := range rows {
		t.AddRow(r.N, r.Threshold, r.TailFraction, r.HoeffdingStep)
	}
	return t
}

// --- E6: the concluding trade-off ---

// E6Row is one protocol's joint resource bill.
type E6Row struct {
	Protocol     string
	Headers      int
	TotalPackets int
	MaxState     int
	SafeNonFIFO  bool
}

// RunE6 produces the paper's concluding comparison: at fixed q and n, the
// headers/packets/space bill of each protocol. The naive protocol pays n
// headers and wins everywhere else — "it is probably better to pay the
// penalty of unbounded headers".
func RunE6(q float64, n, seed int) ([]E6Row, error) {
	if q == 0 {
		q = 0.25
	}
	if n == 0 {
		n = 16
	}
	var rows []E6Row
	for _, p := range []protocol.Protocol{
		protocol.NewSeqNum(),
		protocol.NewCntLinear(),
		protocol.NewCntExp(),
		protocol.NewAltBit(),
	} {
		res := sim.NewRunner(sim.Config{
			Protocol:   p,
			DataPolicy: channel.Probabilistic(q, rand.New(rand.NewSource(SplitSeed(int64(seed), "E6/"+p.Name())))),
		}).Run(n)
		if res.Err != nil {
			return rows, fmt.Errorf("E6 %s: %w", p.Name(), res.Err)
		}
		rows = append(rows, E6Row{
			Protocol:     p.Name(),
			Headers:      res.Metrics.HeadersUsed,
			TotalPackets: res.Metrics.TotalDataPackets + res.Metrics.TotalAckPackets,
			MaxState:     res.Metrics.MaxStateSize,
			// altbit delivers in this run only because the sampled channel
			// behaviour never replays a stale copy; E0 certifies it unsafe.
			SafeNonFIFO: p.Name() != "altbit",
		})
	}
	return rows, nil
}

// E6Table renders E6.
func E6Table(rows []E6Row, q float64, n int) *Table {
	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("conclusion — resource bill at q=%.2f, n=%d", q, n),
		Note:  "expected: seqnum pays Θ(n) headers but wins on packets and space; bounded-header protocols pay exponentially",
		Columns: []string{
			"protocol", "headers", "total packets", "peak state", "safe over non-FIFO",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Headers, r.TotalPackets, r.MaxState, r.SafeNonFIFO)
	}
	return t
}
