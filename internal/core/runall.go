package core

import (
	"fmt"
	"io"
)

// Scale selects experiment sizes: Quick for tests and CI, Full for the
// numbers recorded in EXPERIMENTS.md.
type Scale int

const (
	// Quick runs reduced sweeps (seconds).
	Quick Scale = iota + 1
	// Full runs the EXPERIMENTS.md sweeps (tens of seconds).
	Full
)

// Renderer writes one experiment table to w.
type Renderer func(*Table, io.Writer) error

// Text renders aligned plain text (the EXPERIMENTS.md transcript format).
func Text(t *Table, w io.Writer) error { return t.Render(w) }

// Markdown renders GitHub-flavoured markdown.
func Markdown(t *Table, w io.Writer) error { return t.RenderMarkdown(w) }

// RunAll executes every experiment at the given scale and renders the
// tables to w as plain text, in DESIGN.md §4 order. It stops at the first
// failing experiment.
func RunAll(w io.Writer, scale Scale) error { return RunAllWith(w, scale, Text) }

// RunAllWith is RunAll with a custom table renderer.
func RunAllWith(w io.Writer, scale Scale, render Renderer) error {
	return RunSelected(w, scale, render, nil)
}

// RunSelected runs the experiments whose IDs are listed in only (nil means
// all), rendering with render. Unknown IDs are reported as an error.
func RunSelected(w io.Writer, scale Scale, render Renderer, only []string) error {
	type step struct {
		name string
		run  func() (*Table, error)
	}
	quick := scale != Full

	e2aNs := []int{1, 4, 16, 64, 256, 1024}
	e2bDelays := []int{0, 16, 64, 256, 1024, 4096}
	e3aLevels := []int{0, 1, 4, 16, 64, 256, 1024, 4096}
	e4 := E4Params{}
	e5 := E5Params{}
	e6n := 16
	if quick {
		e2aNs = []int{1, 4, 16}
		e2bDelays = []int{0, 16, 64}
		e3aLevels = []int{0, 4, 16, 64}
		e4 = E4Params{Qs: []float64{0.25}, Ns: []int{4, 8, 12}, Seeds: 3}
		e5 = E5Params{Ns: []int{4, 8, 12}, Seeds: 10}
		e6n = 8
	}

	steps := []step{
		{"E0", func() (*Table, error) {
			r, err := RunE0()
			return r.Table(), err
		}},
		{"E1", func() (*Table, error) {
			r, err := RunE1()
			return r.Table(), err
		}},
		{"E2a", func() (*Table, error) {
			rows, err := RunE2a(e2aNs)
			return E2aTable(rows), err
		}},
		{"E2b", func() (*Table, error) {
			rows, err := RunE2b(8, e2bDelays)
			return E2bTable(rows, 8), err
		}},
		{"E2c", func() (*Table, error) {
			rows, err := RunE2c(3)
			return E2cTable(rows), err
		}},
		{"E2d", func() (*Table, error) {
			res, err := RunE2d(3)
			if err != nil {
				return nil, err
			}
			if err := render(res.HistoryTable(), w); err != nil {
				return nil, err
			}
			return res.Table(), nil
		}},
		{"E3a", func() (*Table, error) {
			rows, err := RunE3a(e3aLevels)
			return E3aTable(rows), err
		}},
		{"E3b", func() (*Table, error) {
			rows, err := RunE3b(8, nil)
			return E3bTable(rows), err
		}},
		{"E4", func() (*Table, error) {
			series, err := RunE4(e4)
			return E4Table(series), err
		}},
		{"E5", func() (*Table, error) {
			rows, err := RunE5(e5)
			return E5Table(rows, e5.withDefaults().Q), err
		}},
		{"E6", func() (*Table, error) {
			rows, err := RunE6(0.25, e6n, 0)
			return E6Table(rows, 0.25, e6n), err
		}},
		{"E7", func() (*Table, error) {
			rows, err := RunE7()
			return E7Table(rows), err
		}},
		{"E8", func() (*Table, error) {
			rows, err := RunE8()
			return E8Table(rows), err
		}},
		{"E9", func() (*Table, error) {
			rows, err := RunE9()
			return E9Table(rows), err
		}},
		{"E10", func() (*Table, error) {
			rows, err := RunE10(64, nil)
			return E10Table(rows), err
		}},
		{"E11", func() (*Table, error) {
			n, seeds := 24, 5
			if quick {
				n, seeds = 12, 2
			}
			rows, err := RunE11(e4.Qs, n, seeds)
			return E11Table(rows, n), err
		}},
		{"E12", func() (*Table, error) {
			rows, err := RunE12()
			return E12Table(rows), err
		}},
	}
	want := make(map[string]bool, len(only))
	for _, id := range only {
		want[id] = true
	}
	known := make(map[string]bool, len(steps))
	for _, s := range steps {
		known[s.name] = true
	}
	// Validate in the caller's order so the reported unknown id is stable.
	for _, id := range only {
		if !known[id] {
			return fmt.Errorf("unknown experiment %q", id)
		}
	}
	for _, s := range steps {
		if len(want) > 0 && !want[s.name] {
			continue
		}
		tbl, err := s.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", s.name, err)
		}
		if err := render(tbl, w); err != nil {
			return fmt.Errorf("render %s: %w", s.name, err)
		}
	}
	return nil
}
