package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestE0ShapesMatchTheorem(t *testing.T) {
	res, err := RunE0()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]E0Outcome)
	for _, o := range res.Outcomes {
		got[o.Protocol] = o
	}
	if !got["altbit"].Broken || got["altbit"].Property != "DL1" {
		t.Fatalf("altbit should be broken with DL1: %+v", got["altbit"])
	}
	for _, p := range []string{"seqnum", "cntlinear", "cntexp"} {
		if got[p].Broken {
			t.Fatalf("%s should resist: %+v", p, got[p])
		}
	}
	if res.Cert == nil {
		t.Fatal("E0 should carry the altbit certificate")
	}
	if err := res.Cert.Recheck(); err != nil {
		t.Fatalf("certificate recheck: %v", err)
	}
	tbl := res.Table()
	if len(tbl.Rows) != 4 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
}

func TestE1WithinProduct(t *testing.T) {
	res, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxBoundness > res.KT*res.KR {
		t.Fatalf("Theorem 2.1 violated by measurement: boundness %d > %d·%d",
			res.MaxBoundness, res.KT, res.KR)
	}
	if !res.Pumped {
		t.Fatal("livelock protocol should be pumped")
	}
	if tbl := res.Table(); len(tbl.Rows) == 0 {
		t.Fatal("empty E1 table")
	}
}

func TestE2aHeaderGrowth(t *testing.T) {
	rows, err := RunE2a([]int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	byProto := make(map[string][]E2aRow)
	for _, r := range rows {
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	// seqnum: headers grow ~2n (data + ack); precisely 2n on a clean run.
	sq := byProto["seqnum"]
	for _, r := range sq {
		if r.Headers != 2*r.Messages {
			t.Fatalf("seqnum at n=%d used %d headers, want %d", r.Messages, r.Headers, 2*r.Messages)
		}
	}
	// bounded protocols: constant.
	for _, name := range []string{"altbit", "cntlinear"} {
		for _, r := range byProto[name] {
			if r.Headers > 4 {
				t.Fatalf("%s at n=%d used %d headers, want ≤ 4", name, r.Messages, r.Headers)
			}
		}
	}
}

func TestE2bSpaceShapes(t *testing.T) {
	rows, err := RunE2b(8, []int{0, 64, 1024})
	if err != nil {
		t.Fatal(err)
	}
	state := make(map[string]map[int]int)
	for _, r := range rows {
		if state[r.Protocol] == nil {
			state[r.Protocol] = make(map[int]int)
		}
		state[r.Protocol][r.Delayed] = r.StateSize
	}
	// Bounded-header protocols: state grows with D at fixed n.
	for _, name := range []string{"cntlinear", "cntexp"} {
		if state[name][1024] <= state[name][0] {
			t.Fatalf("%s state should grow with D: %v", name, state[name])
		}
	}
	// seqnum: flat (within a word).
	if d := state["seqnum"][1024] - state["seqnum"][0]; d > 2 {
		t.Fatalf("seqnum state should not grow with D: %v", state["seqnum"])
	}
}

func TestE2cAttackOutcomes(t *testing.T) {
	rows, err := RunE2c(3)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]E2cRow)
	for _, r := range rows {
		got[r.Protocol] = r
	}
	if !got["altbit"].Broken || !got["cheat1"].Broken {
		t.Fatalf("altbit and cheat1 should be broken: %+v %+v", got["altbit"], got["cheat1"])
	}
	if got["cntlinear"].Broken || got["cntexp"].Broken {
		t.Fatal("counting protocols should resist")
	}
	if got["seqnum"].Bounded {
		t.Fatal("seqnum should be reported unbounded-alphabet")
	}
}

func TestE3aShapes(t *testing.T) {
	levels := []int{0, 4, 16, 64}
	rows, err := RunE3a(levels)
	if err != nil {
		t.Fatal(err)
	}
	cost := make(map[string]map[int]int)
	for _, r := range rows {
		if cost[r.Protocol] == nil {
			cost[r.Protocol] = make(map[int]int)
		}
		cost[r.Protocol][r.Level] = r.Cost
	}
	// cntlinear: ≥ L at every level (tight linear shape).
	for _, l := range levels {
		if cost["cntlinear"][l] < l {
			t.Fatalf("cntlinear cost at L=%d is %d, want ≥ L", l, cost["cntlinear"][l])
		}
	}
	// seqnum: O(1) at every level.
	for _, l := range levels {
		if cost["seqnum"][l] > 3 {
			t.Fatalf("seqnum cost at L=%d is %d, want O(1)", l, cost["seqnum"][l])
		}
	}
}

func TestE3bAllCheatsBroken(t *testing.T) {
	rows, err := RunE3b(8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Broken {
			t.Fatalf("cheat(%d) at L=%d not broken", r.D, r.Level)
		}
		// The adversary needs about L−d+1 replays.
		if r.Replays > r.Level+1 {
			t.Fatalf("cheat(%d): %d replays, expected ≤ L+1", r.D, r.Replays)
		}
	}
}

func TestE4GrowthShapes(t *testing.T) {
	series, err := RunE4(E4Params{Qs: []float64{0.25}, Ns: []int{4, 8, 12, 16}, Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	var cnt, sq E4Series
	for _, s := range series {
		switch s.Protocol {
		case "cntlinear":
			cnt = s
		case "seqnum":
			sq = s
		}
	}
	// Bounded-header: per-phase growth ratio comfortably above 1; the
	// asymptotic theory value is 1/(1−q) ≈ 1.33.
	if cnt.PerPhaseRate < 1.1 {
		t.Fatalf("cntlinear per-phase rate %.3f, want exponential growth: %+v", cnt.PerPhaseRate, cnt)
	}
	// Naive protocol: near-linear totals, so fitted ratio close to 1 and
	// clearly below the bounded protocol's.
	if sq.PerMessageRate > 1.15 {
		t.Fatalf("seqnum per-message rate %.3f, want ≈ 1: %+v", sq.PerMessageRate, sq)
	}
	if sq.PerMessageRate >= cnt.PerMessageRate {
		t.Fatalf("seqnum rate %.3f should be below cntlinear rate %.3f",
			sq.PerMessageRate, cnt.PerMessageRate)
	}
	// Totals must be increasing in n.
	for i := 1; i < len(cnt.TotalPackets); i++ {
		if cnt.TotalPackets[i] <= cnt.TotalPackets[i-1] {
			t.Fatalf("cntlinear totals not increasing: %v", cnt.TotalPackets)
		}
	}
}

func TestE5TailDecays(t *testing.T) {
	rows, err := RunE5(E5Params{Ns: []int{4, 16}, Seeds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].TailFraction > rows[0].TailFraction {
		t.Fatalf("tail fraction should not grow with n: %+v", rows)
	}
	if rows[1].HoeffdingStep >= rows[0].HoeffdingStep {
		t.Fatalf("Hoeffding reference should decay: %+v", rows)
	}
	if rows[1].Threshold <= rows[0].Threshold {
		t.Fatalf("threshold should grow with n: %+v", rows)
	}
}

func TestE6Tradeoff(t *testing.T) {
	rows, err := RunE6(0.25, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]E6Row)
	for _, r := range rows {
		got[r.Protocol] = r
	}
	// seqnum pays headers ~2n…
	if got["seqnum"].Headers < 8 {
		t.Fatalf("seqnum headers = %d", got["seqnum"].Headers)
	}
	// …but beats the counting protocols on packets.
	if got["seqnum"].TotalPackets >= got["cntlinear"].TotalPackets {
		t.Fatalf("seqnum packets %d should beat cntlinear %d",
			got["seqnum"].TotalPackets, got["cntlinear"].TotalPackets)
	}
	if got["altbit"].SafeNonFIFO {
		t.Fatal("altbit must be flagged unsafe")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "EX",
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"a", "bee"},
	}
	tbl.AddRow("x", 1)
	tbl.AddRow("longer", 2.5)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== EX: demo ==", "a note", "longer", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E0", "E1", "E2a", "E2b", "E2c", "E2d", "E3a", "E3b", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Fatalf("RunAll output missing %s:\n%s", id, out[:min(2000, len(out))])
		}
	}
}

func TestE2dInductionOutcomes(t *testing.T) {
	res, err := RunE2d(3)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]E2dRow)
	for _, r := range res.Rows {
		got[r.Protocol] = r
	}
	if !got["altbit"].Broken || !got["cheat1"].Broken {
		t.Fatalf("altbit/cheat1 should be broken: %+v", res.Rows)
	}
	if got["cntlinear"].Broken {
		t.Fatal("cntlinear should resist")
	}
	if got["seqnum"].Complete {
		t.Fatal("seqnum accumulation should never complete")
	}
	if len(res.AltbitHistory) == 0 {
		t.Fatal("altbit accumulation history missing")
	}
	if res.HistoryTable() == nil || len(res.HistoryTable().Rows) == 0 {
		t.Fatal("history table empty")
	}
}

func TestE7TransportShapes(t *testing.T) {
	rows, err := RunE7()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]E7Row)
	for _, r := range rows {
		got[r.Protocol] = r
	}
	for _, name := range []string{"swindow-s2-w1", "swindow-s3-w1", "gbn-s2-w1", "altbit"} {
		if !got[name].Broken {
			t.Fatalf("%s should be broken by the explorer: %+v", name, got[name])
		}
		if got[name].CexLength == 0 {
			t.Fatalf("%s counterexample length missing", name)
		}
	}
	for _, name := range []string{"swindow-unbounded-w2", "gbn-unbounded-w2", "seqnum", "cntlinear"} {
		if got[name].Broken {
			t.Fatalf("%s should verify safe: %+v", name, got[name])
		}
		if !got[name].Exhausted {
			t.Fatalf("%s space should be exhausted: %+v", name, got[name])
		}
	}
}

func TestE8FIFOContrast(t *testing.T) {
	rows, err := RunE8()
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		p    string
		fifo bool
	}
	got := make(map[key]E8Row)
	for _, r := range rows {
		got[key{r.Protocol, r.FIFO}] = r
	}
	for _, p := range []string{"altbit", "cheat1"} {
		if !got[key{p, false}].Broken {
			t.Fatalf("%s should be broken over non-FIFO", p)
		}
		if got[key{p, true}].Broken {
			t.Fatalf("%s should be safe over FIFO", p)
		}
		if !got[key{p, true}].Exhausted {
			t.Fatalf("%s FIFO space should be exhausted", p)
		}
	}
	for _, p := range []string{"seqnum", "cntlinear"} {
		for _, fifo := range []bool{false, true} {
			if got[key{p, fifo}].Broken {
				t.Fatalf("%s should be safe under fifo=%t", p, fifo)
			}
		}
	}
}

func TestE9Ablations(t *testing.T) {
	rows, err := RunE9()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]E9Row)
	for _, r := range rows {
		got[r.Variant] = r
	}
	if got["cntlinear"].Broken {
		t.Fatal("baseline should survive")
	}
	for _, v := range []string{"cheat1", "cntnobind", "cntlinear-nogenie"} {
		if !got[v].Broken {
			t.Fatalf("ablation %s should be broken", v)
		}
		if got[v].CexLength == 0 {
			t.Fatalf("ablation %s missing counterexample length", v)
		}
	}
}

func TestE10OneOverKScaling(t *testing.T) {
	rows, err := RunE10(64, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int]E10Row)
	var seqnumCost int
	for _, r := range rows {
		if r.Protocol == "seqnum" {
			seqnumCost = r.Cost
			continue
		}
		got[r.K] = r
	}
	for _, k := range []int{2, 4, 8} {
		r := got[k]
		want := r.PerHeader + 1
		if r.Cost < want || r.Cost > want+2 {
			t.Fatalf("k=%d: cost %d, want ≈ %d (L/K+1): %+v", k, r.Cost, want, rows)
		}
	}
	// Strictly decreasing in K — the 1/k factor.
	if !(got[2].Cost > got[4].Cost && got[4].Cost > got[8].Cost) {
		t.Fatalf("cost should fall with K: %+v", rows)
	}
	if seqnumCost > 3 {
		t.Fatalf("seqnum (K→n limit) cost = %d, want O(1)", seqnumCost)
	}
}

func TestE11TrajectoriesGrow(t *testing.T) {
	rows, err := RunE11([]float64{0.25, 0.5}, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rows {
		last := s.MaxInTransit[len(s.MaxInTransit)-1]
		first := s.MaxInTransit[len(s.MaxInTransit)/3]
		if last <= first {
			t.Fatalf("q=%.2f: dominant count should grow: %v", s.Q, s.MaxInTransit)
		}
		if s.Rate < 1.05 {
			t.Fatalf("q=%.2f: fitted phase rate %.3f, want > 1", s.Q, s.Rate)
		}
	}
	// Higher q must grow faster.
	if rows[1].Rate <= rows[0].Rate {
		t.Fatalf("rate at q=0.5 (%.3f) should exceed rate at q=0.25 (%.3f)",
			rows[1].Rate, rows[0].Rate)
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := &Table{
		ID:      "EX",
		Title:   "demo",
		Note:    "note",
		Columns: []string{"a", "b"},
	}
	tbl.AddRow("x|y", 2)
	var buf bytes.Buffer
	if err := tbl.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### EX: demo", "> note", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllWithMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunAllWith(&buf, Quick, Markdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### E6:") {
		t.Fatal("markdown output incomplete")
	}
}

func TestE12FormalismsAgree(t *testing.T) {
	rows, err := RunE12()
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ sys, disc string }
	verdicts := make(map[key]map[string]bool)
	for _, r := range rows {
		k := key{r.System, r.Discipline}
		if verdicts[k] == nil {
			verdicts[k] = make(map[string]bool)
		}
		verdicts[k][r.Formalism] = r.Broken
	}
	for k, v := range verdicts {
		if v["endpoints"] != v["automata"] {
			t.Fatalf("%s/%s: formalisms disagree: %v", k.sys, k.disc, v)
		}
	}
	// And the absolute verdicts are the known ones.
	if !verdicts[key{"altbit", "non-FIFO"}]["endpoints"] {
		t.Fatal("altbit must be broken over non-FIFO")
	}
	if verdicts[key{"altbit", "FIFO"}]["endpoints"] {
		t.Fatal("altbit must be safe over FIFO")
	}
	if verdicts[key{"seqnum", "non-FIFO"}]["endpoints"] {
		t.Fatal("seqnum must be safe over non-FIFO")
	}
}

func TestRunSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := RunSelected(&buf, Quick, Text, []string{"E0", "E3b"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== E0:") || !strings.Contains(out, "== E3b:") {
		t.Fatalf("selected experiments missing:\n%s", out)
	}
	if strings.Contains(out, "== E4:") {
		t.Fatal("unselected experiment ran")
	}
	if err := RunSelected(&buf, Quick, Text, []string{"E99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
