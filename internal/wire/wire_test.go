package wire

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
)

func TestRoundTrip(t *testing.T) {
	tests := []ioa.Packet{
		{},
		{Header: "d0"},
		{Header: "d0", Payload: "hello"},
		{Header: "", Payload: "payload-only"},
		{Header: "c4:3", Payload: strings.Repeat("x", 4096)},
		{Header: "utf8-héader", Payload: "päyload"},
	}
	for _, p := range tests {
		got, err := Decode(Encode(p))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got != p {
			t.Fatalf("round trip: got %v, want %v", got, p)
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty datagram should fail")
	}
}

func TestDecodeTruncatedHeader(t *testing.T) {
	b := Encode(ioa.Packet{Header: "abcdef"})
	if _, err := Decode(b[:3]); err == nil {
		t.Fatal("truncated header should fail")
	}
}

func TestDecodeHeaderLengthLimit(t *testing.T) {
	p := ioa.Packet{Header: strings.Repeat("h", MaxHeaderLen+1)}
	if _, err := Decode(Encode(p)); err == nil {
		t.Fatal("oversized header should be rejected")
	}
}

func TestDecodeGarbageVarint(t *testing.T) {
	// 10 continuation bytes: invalid uvarint.
	b := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}
	if _, err := Decode(b); err == nil {
		t.Fatal("bad varint should fail")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(header, payload string) bool {
		if len(header) > MaxHeaderLen {
			return true
		}
		p := ioa.Packet{Header: header, Payload: payload}
		got, err := Decode(Encode(p))
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(ioa.Packet{Header: "d0", Payload: "x"}))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Decode(b)
		if err != nil {
			return
		}
		// Decoded packets must re-encode to an equivalent packet.
		q, err := Decode(Encode(p))
		if err != nil || q != p {
			t.Fatalf("re-encode mismatch: %v vs %v (%v)", p, q, err)
		}
	})
}
