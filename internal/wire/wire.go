// Package wire encodes packets for transmission over a real network.
//
// The simulation layers of this repo move ioa.Packet values in memory; to
// run a data link protocol over an actual datagram socket (internal/netlink)
// the packet must cross the wire as bytes. The format is deliberately
// minimal and self-describing:
//
//	uvarint headerLen | header bytes | payload bytes
//
// One datagram carries one packet, so no outer framing is needed; the
// payload extends to the end of the datagram.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ioa"
)

// MaxHeaderLen bounds the encoded header length; decoding rejects anything
// larger. Real headers here are a few bytes ("d12", "c4:1"); the bound
// exists to fail fast on corrupt datagrams.
const MaxHeaderLen = 1 << 10

// ErrTruncated is wrapped by decode errors for short datagrams.
var ErrTruncated = errors.New("wire: truncated packet")

// Encode serialises a packet into a fresh byte slice.
func Encode(p ioa.Packet) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(p.Header)+len(p.Payload))
	buf = binary.AppendUvarint(buf, uint64(len(p.Header)))
	buf = append(buf, p.Header...)
	buf = append(buf, p.Payload...)
	return buf
}

// Decode parses a datagram produced by Encode.
func Decode(b []byte) (ioa.Packet, error) {
	hlen, n := binary.Uvarint(b)
	if n <= 0 {
		return ioa.Packet{}, fmt.Errorf("%w: bad header length varint", ErrTruncated)
	}
	if hlen > MaxHeaderLen {
		return ioa.Packet{}, fmt.Errorf("wire: header length %d exceeds limit %d", hlen, MaxHeaderLen)
	}
	rest := b[n:]
	if uint64(len(rest)) < hlen {
		return ioa.Packet{}, fmt.Errorf("%w: header length %d, %d bytes left", ErrTruncated, hlen, len(rest))
	}
	return ioa.Packet{
		Header:  string(rest[:hlen]),
		Payload: string(rest[hlen:]),
	}, nil
}
