package bound

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/sim"
)

const budget = 1 << 18

func TestClosingCostIdleIsZero(t *testing.T) {
	r := sim.NewRunner(sim.Config{Protocol: protocol.NewAltBit()})
	cost, err := ClosingCost(r, budget)
	if err != nil || cost != 0 {
		t.Fatalf("idle closing cost = %d, %v; want 0, nil", cost, err)
	}
}

func TestClosingCostDoesNotMutateCaller(t *testing.T) {
	r := sim.NewRunner(sim.Config{Protocol: protocol.NewAltBit()})
	r.SubmitMsg("m")
	key := r.T.StateKey()
	if _, err := ClosingCost(r, budget); err != nil {
		t.Fatal(err)
	}
	if r.T.StateKey() != key {
		t.Fatal("ClosingCost mutated the caller's runner")
	}
	if !r.T.Busy() {
		t.Fatal("caller's message should still be outstanding")
	}
}

func TestClosingCostCleanChannel(t *testing.T) {
	// On a clean channel every protocol closes a one-message semi-valid
	// execution with O(1) packets. The stabilizing family pays the largest
	// constant: stabdl's receiver adopts only after C+1 consecutive copies,
	// so closing one message costs up to 2(C+1)+2 packets at C=2.
	reg := protocol.Registry()
	for _, name := range protocol.Names() {
		r := sim.NewRunner(sim.Config{Protocol: reg[name]})
		r.SubmitMsg("m")
		cost, err := ClosingCost(r, budget)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cost < 1 || cost > 8 {
			t.Fatalf("%s: clean-channel closing cost = %d, want small", name, cost)
		}
	}
}

func TestMeasureMfNaiveAndAltbitConstant(t *testing.T) {
	// Over reliable channels, altbit and seqnum are M_f-bounded for a
	// constant f: closing cost does not grow with messages delivered.
	for _, p := range []protocol.Protocol{protocol.NewAltBit(), protocol.NewSeqNum()} {
		samples, err := MeasureMf(p, 12, budget)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for _, s := range samples {
			if s.Cost > 3 {
				t.Fatalf("%s: closing cost %d after %d messages, want O(1): %+v",
					p.Name(), s.Cost, s.MessagesDelivered, samples)
			}
		}
	}
}

func TestMeasureMfCntExpGrows(t *testing.T) {
	// The pessimistic counting protocol's closing cost grows with the
	// number of messages delivered — the paper's observation that the
	// [AFWZ88]-style protocol is exponential even in the best case.
	samples, err := MeasureMf(protocol.NewCntExp(), 10, budget)
	if err != nil {
		t.Fatal(err)
	}
	if samples[9].Cost < 4*samples[1].Cost {
		t.Fatalf("cntexp closing cost should grow: %+v", samples)
	}
}

func TestBuildInTransit(t *testing.T) {
	for _, l := range []int{0, 1, 8, 64} {
		r, err := BuildInTransit(protocol.NewCntLinear(), l, budget)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if got := r.ChData.InTransit(); got < l {
			t.Fatalf("l=%d: in-transit = %d", l, got)
		}
		if r.T.Busy() {
			t.Fatalf("l=%d: transmitter should be idle", l)
		}
		if len(r.Delivered()) != 1 {
			t.Fatalf("l=%d: delivered %v", l, r.Delivered())
		}
	}
}

func TestBuildInTransitSeqnum(t *testing.T) {
	r, err := BuildInTransit(protocol.NewSeqNum(), 16, budget)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChData.InTransit() < 16 {
		t.Fatalf("in-transit = %d", r.ChData.InTransit())
	}
}

func TestMeasurePfShapes(t *testing.T) {
	levels := []int{0, 4, 16, 64}

	// Theorem 4.1 tight shape: the genie counting protocol pays ≥ L_bit
	// packets at in-transit level L (half the stranded copies share the
	// measured phase's bit here, all of them in this construction).
	lin, err := MeasurePf(protocol.NewCntLinear(), levels, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range lin {
		if s.Cost < levels[i] {
			t.Fatalf("cntlinear: level %d cost %d, want ≥ level: %+v", levels[i], s.Cost, lin)
		}
	}
	if lin[3].Cost < 8*lin[1].Cost/2 {
		t.Fatalf("cntlinear P_f curve not ~linear: %+v", lin)
	}

	// The naive protocol is immune: O(1) cost at every level — it is
	// allowed to be, because its header count is not bounded (Theorem 4.1
	// only constrains k-header protocols).
	sq, err := MeasurePf(protocol.NewSeqNum(), levels, budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sq {
		if s.Cost > 3 {
			t.Fatalf("seqnum: cost %d at in-transit %d, want O(1): %+v", s.Cost, s.InTransit, sq)
		}
	}
}

func TestMeasurePfRecordsInTransit(t *testing.T) {
	samples, err := MeasurePf(protocol.NewCntLinear(), []int{8}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].InTransit < 8 {
		t.Fatalf("InTransit = %d, want ≥ 8", samples[0].InTransit)
	}
}

func TestStateSpaceAltbitFinite(t *testing.T) {
	// The alternating bit protocol under the constant-payload convention
	// is finite-state; the sweep must find a small product.
	kt, kr, err := StateSpace(protocol.NewAltBit(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if kt == 0 || kr == 0 {
		t.Fatal("state sweep found no states")
	}
	if kt > 8 || kr > 8 {
		t.Fatalf("altbit state counts too large: kt=%d kr=%d", kt, kr)
	}
}

func TestStateSpaceCountingGrows(t *testing.T) {
	// The counting protocols' state keys include history counters, so the
	// observed state count exceeds altbit's — space grows with execution.
	ktA, krA, err := StateSpace(protocol.NewAltBit(), 6)
	if err != nil {
		t.Fatal(err)
	}
	ktC, krC, err := StateSpace(protocol.NewCntExp(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if ktC <= ktA || krC <= krA {
		t.Fatalf("counting state space should exceed altbit: altbit=(%d,%d) cntexp=(%d,%d)",
			ktA, krA, ktC, krC)
	}
}

// TestTheorem21BoundnessWithinProduct is the E1 check: the measured
// boundness of the finite-state alternating bit protocol is at most the
// product of its observed state counts (Theorem 2.1: any protocol is
// k_t·k_r-bounded).
func TestTheorem21BoundnessWithinProduct(t *testing.T) {
	kt, kr, err := StateSpace(protocol.NewAltBit(), 6)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MeasureMf(protocol.NewAltBit(), 10, budget)
	if err != nil {
		t.Fatal(err)
	}
	maxCost := 0
	for _, s := range samples {
		if s.Cost > maxCost {
			maxCost = s.Cost
		}
	}
	if maxCost > kt*kr {
		t.Fatalf("measured boundness %d exceeds k_t·k_r = %d·%d", maxCost, kt, kr)
	}
}

func TestBuildInTransitLivenessFailure(t *testing.T) {
	// A protocol that cannot deliver makes the builder fail cleanly.
	if _, err := BuildInTransit(protocol.NewLivelock(), 4, 500); err == nil {
		t.Fatal("builder should fail for a protocol that never delivers")
	}
}

func TestClosingCostBudgetError(t *testing.T) {
	r := sim.NewRunner(sim.Config{Protocol: protocol.NewLivelock()})
	r.SubmitMsg("m")
	_, err := ClosingCost(r, 50)
	if err == nil {
		t.Fatal("livelock closing cost should exhaust the budget")
	}
}

func TestMeasurePfPropagatesBuildErrors(t *testing.T) {
	if _, err := MeasurePf(protocol.NewLivelock(), []int{1}, 200); err == nil {
		t.Fatal("MeasurePf should surface builder errors")
	}
}
