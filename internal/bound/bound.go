// Package bound makes the paper's boundness notion (Mansour & Schieber,
// PODC '89, Section 2.3) executable.
//
// A protocol is k-bounded if every semi-valid execution α has an extension
// β such that αβ is valid, β delivers no packet sent during α, and
// sp^{t→r}(β) ≤ k. The definitional extension is exactly a run in which
// "the physical layer starts behaving in the optimal way": every fresh
// packet is delivered immediately and nothing old is ever delivered.
// ClosingCost runs that extension and counts sp^{t→r}(β); M_f- and
// P_f-boundness (Definitions 5 and 6) are then measured curves over
// families of semi-valid executions.
//
// StateSpace supports the Theorem 2.1 check: it enumerates the distinct
// endpoint states reachable over a family of channel behaviours, so that a
// measured boundness can be compared against the k_t·k_r product.
package bound

import (
	"errors"
	"fmt"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// ErrBudget is returned when a closing extension does not complete within
// the step budget — operationally, the semi-valid execution could not be
// closed, which for a correct protocol means the budget was too small and
// for a broken one means a liveness violation.
var ErrBudget = errors.New("bound: closing extension exceeded budget")

// ClosingCost measures sp^{t→r}(β) of the definitional closing extension:
// starting from the runner's current state (which must be semi-valid — one
// message outstanding), run under optimal-from-now channel behaviour until
// the transmitter is idle, delivering no packet that is currently in
// transit. The runner is forked; the caller's state is untouched.
func ClosingCost(r *sim.Runner, budget int) (int, error) {
	f := r.Fork(channel.Reliable(), channel.Reliable())
	if !f.T.Busy() {
		return 0, nil
	}
	start := f.Result().Metrics.TotalDataPackets
	for steps := 0; f.T.Busy(); steps++ {
		if steps >= budget {
			return 0, fmt.Errorf("%w (%d steps)", ErrBudget, budget)
		}
		progressed := f.StepTransmit()
		f.DrainAcks()
		if !progressed && f.T.Busy() {
			return 0, fmt.Errorf("%w: transmitter busy with no enabled output", ErrBudget)
		}
	}
	return f.Result().Metrics.TotalDataPackets - start, nil
}

// Sample is one measured point of a boundness curve.
type Sample struct {
	// MessagesDelivered is rm(α) of the semi-valid execution (Definition
	// 5's parameter).
	MessagesDelivered int
	// InTransit is sp^{t→r}(α) − rp^{t→r}(α) (Definition 6's parameter).
	InTransit int
	// Cost is sp^{t→r}(β) of the closing extension.
	Cost int
}

// MeasureMf measures the M_f-boundness curve of a protocol: for each
// i < n, construct the semi-valid execution that delivers i messages over a
// reliable channel and then submits message i+1, and record the closing
// cost. For an M_f-bounded protocol the curve is the tightest admissible f.
func MeasureMf(p protocol.Protocol, n, budget int) ([]Sample, error) {
	out := make([]Sample, 0, n)
	r := sim.NewRunner(sim.Config{Protocol: p})
	for i := 0; i < n; i++ {
		r.SubmitMsg("m")
		cost, err := ClosingCost(r, budget)
		if err != nil {
			return out, fmt.Errorf("after %d messages: %w", i, err)
		}
		out = append(out, Sample{MessagesDelivered: i, Cost: cost})
		if err := r.RunToIdle(); err != nil {
			return out, fmt.Errorf("delivering message %d: %w", i, err)
		}
	}
	return out, nil
}

// MeasurePf measures the P_f-boundness curve: for each requested in-transit
// level L, build a semi-valid execution with L packets delayed on the t→r
// channel (using the delay-then-flood construction) and record the closing
// cost of the next message. The curve demonstrates Theorem 4.1's shape:
// bounded-header protocols pay Ω(L/k), the naive protocol pays O(1).
func MeasurePf(p protocol.Protocol, levels []int, budget int) ([]Sample, error) {
	out := make([]Sample, 0, len(levels))
	for _, l := range levels {
		r, err := BuildInTransit(p, l, budget)
		if err != nil {
			return out, fmt.Errorf("level %d: %w", l, err)
		}
		// The stranded copies belong to the bit-0 phase; measure the next
		// same-bit message (two messages later). Deliver the bit-1 message
		// first over a clean channel.
		if err := r.RunMessage("m"); err != nil {
			return out, fmt.Errorf("level %d interleave: %w", l, err)
		}
		inTransit := r.ChData.InTransit()
		r.SubmitMsg("m")
		cost, err := ClosingCost(r, budget)
		if err != nil {
			return out, fmt.Errorf("level %d closing: %w", l, err)
		}
		out = append(out, Sample{InTransit: inTransit, Cost: cost})
	}
	return out, nil
}

// BuildInTransit produces a runner whose t→r channel holds at least l
// delayed packets while the transmitter is idle, by delaying the first l
// data copies of the first message and letting the protocol finish over an
// otherwise reliable channel. The returned runner has reliable policies
// installed. This is the "packets delayed on the channel" precondition of
// Theorem 4.1.
func BuildInTransit(p protocol.Protocol, l, budget int) (*sim.Runner, error) {
	r := sim.NewRunner(sim.Config{
		Protocol:   p,
		DataPolicy: channel.DelayFirst(l),
		StepBudget: budget,
	})
	if err := r.RunMessage("m"); err != nil {
		return nil, fmt.Errorf("bound: building %d in-transit copies: %w", l, err)
	}
	if got := r.ChData.InTransit(); got < l {
		return nil, fmt.Errorf("bound: only %d of %d copies stranded", got, l)
	}
	r.SetPolicies(channel.Reliable(), channel.Reliable())
	return r, nil
}

// StateSpace runs the protocol over a family of deterministic channel
// behaviours with the constant-payload convention and reports the number of
// distinct transmitter and receiver state keys observed. For finite-state
// protocols (altbit) this is an empirical estimate of k_t and k_r, the
// quantities in Theorem 2.1's k_t·k_r bound.
func StateSpace(p protocol.Protocol, messages int) (tStates, rStates int, err error) {
	tSeen := make(map[string]bool)
	rSeen := make(map[string]bool)
	behaviours := []func() channel.Policy{
		channel.Reliable,
		func() channel.Policy { return channel.DropEvery(2) },
		func() channel.Policy { return channel.DropEvery(3) },
		func() channel.Policy { return channel.DelayFirst(1) },
		func() channel.Policy { return channel.DelayFirst(2) },
	}
	for _, mkData := range behaviours {
		for _, mkAck := range behaviours {
			r := sim.NewRunner(sim.Config{
				Protocol:   p,
				DataPolicy: mkData(),
				AckPolicy:  mkAck(),
				Payload:    func(int) string { return "m" },
			})
			tSeen[r.T.StateKey()] = true
			rSeen[r.R.StateKey()] = true
			for i := 0; i < messages; i++ {
				r.SubmitMsg("m")
				tSeen[r.T.StateKey()] = true
				for steps := 0; r.T.Busy(); steps++ {
					if steps > 1<<16 {
						return len(tSeen), len(rSeen), fmt.Errorf("bound: state sweep stalled")
					}
					progressed := r.StepTransmit()
					r.DrainAcks()
					tSeen[r.T.StateKey()] = true
					rSeen[r.R.StateKey()] = true
					if !progressed && r.T.Busy() {
						return len(tSeen), len(rSeen), fmt.Errorf("bound: state sweep: no enabled output")
					}
				}
			}
		}
	}
	return len(tSeen), len(rSeen), nil
}
