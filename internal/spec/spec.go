// Package spec expresses the paper's service specifications as explicit
// I/O-automaton-style state machines and checks execution traces against
// them by direct simulation.
//
// [LMF88] (which the paper builds on) specifies the data link layer and the
// physical layer as I/O automata [LT87]; an execution is correct iff its
// trace is a trace of the specification automaton. This package implements
// that view: a specification automaton consumes the trace event by event —
// environment-controlled (input) actions are always enabled, while a
// service-controlled (output) action that the automaton cannot take is
// exactly a specification violation.
//
// The package deliberately duplicates the property checkers of
// internal/ioa through a different formulation. The two implementations
// are cross-validated against each other in the tests (both on protocol
// traces and on randomly mutated ones), which is the usual defence against
// a checker bug silently blessing a broken protocol — the certificates
// produced by the adversaries in this repo are only as trustworthy as the
// checkers.
package spec

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/mset"
)

// Automaton is an explicit-state specification automaton. Input actions
// are always enabled (the I/O automaton input-enabledness condition);
// output actions may be refused, and a refusal is a violation.
type Automaton interface {
	// Name identifies the specification in error messages.
	Name() string
	// Relevant reports whether the automaton's signature contains the
	// event's action; irrelevant events are skipped by Conforms.
	Relevant(e ioa.Event) bool
	// Apply consumes one relevant event, returning an error when the
	// event is a refused output action.
	Apply(e ioa.Event) error
	// Quiescent reports whether the service owes no further output
	// actions (used for terminal liveness checks).
	Quiescent() bool
}

// Conforms replays the trace through the specification automaton and
// returns the first refusal as an *ioa.Violation (with the refusing event's
// index). A nil result means the trace is a trace of the specification.
func Conforms(tr ioa.Trace, a Automaton) error {
	for i, e := range tr {
		if !a.Relevant(e) {
			continue
		}
		if err := a.Apply(e); err != nil {
			return &ioa.Violation{
				Property: a.Name(),
				Index:    i,
				Detail:   err.Error(),
			}
		}
	}
	return nil
}

// ConformsQuiescent additionally requires the automaton to be quiescent at
// the end of the trace (terminal liveness: no outputs owed).
func ConformsQuiescent(tr ioa.Trace, a Automaton) error {
	if err := Conforms(tr, a); err != nil {
		return err
	}
	if !a.Quiescent() {
		return &ioa.Violation{
			Property: a.Name(),
			Index:    -1,
			Detail:   "service still owes output actions at end of trace",
		}
	}
	return nil
}

// DLSpec is the data link layer specification automaton of [LMF88]: its
// state is the FIFO queue of messages accepted by send_msg and not yet
// emitted by receive_msg, and receive_msg is enabled only for the head of
// the queue.
//
// Relationship to the hand-coded checkers of internal/ioa: conformance to
// DLSpec is the *gap-free* (prefix) formulation. On complete executions
// (checked with ConformsQuiescent) it coincides exactly with
// DL1 ∧ DL2 ∧ DL3. On partial executions it is strictly stronger than the
// safety conjunction DL1 ∧ DL2: an execution that *skips* a message and
// delivers a later one satisfies DL1 ∧ DL2 (the skipped message is merely
// outstanding DL3 debt), but is refused by the automaton immediately —
// the automaton can never emit out of queue order. The cross-validation
// tests check exact agreement on quiescent traces and the one-way
// implication (spec-accepted ⇒ checker-accepted) on arbitrary prefixes.
type DLSpec struct {
	queue []ioa.Message
}

var _ Automaton = (*DLSpec)(nil)

// NewDLSpec returns a fresh data link specification automaton.
func NewDLSpec() *DLSpec { return &DLSpec{} }

// Name implements Automaton.
func (s *DLSpec) Name() string { return "DL-spec" }

// Relevant implements Automaton: the data link signature is
// {send_msg, receive_msg}.
func (s *DLSpec) Relevant(e ioa.Event) bool {
	return e.Kind == ioa.SendMsg || e.Kind == ioa.ReceiveMsg
}

// Apply implements Automaton. send_msg is an input action: always enabled,
// appends to the queue. receive_msg is an output action: enabled only for
// the head of the queue (delivering anything else breaks the send/receive
// correspondence or the FIFO order).
func (s *DLSpec) Apply(e ioa.Event) error {
	switch e.Kind {
	case ioa.SendMsg:
		s.queue = append(s.queue, e.Msg)
		return nil
	case ioa.ReceiveMsg:
		if len(s.queue) == 0 {
			return fmt.Errorf("receive_msg(%s) with no undelivered message (spurious or duplicate delivery)", e.Msg)
		}
		head := s.queue[0]
		if head.Payload != e.Msg.Payload {
			return fmt.Errorf("receive_msg(%s) out of order or corrupted: next undelivered message is %s", e.Msg, head)
		}
		s.queue = s.queue[1:]
		return nil
	default:
		return fmt.Errorf("event %s outside the data link signature", e)
	}
}

// Quiescent implements Automaton: no accepted message is undelivered.
func (s *DLSpec) Quiescent() bool { return len(s.queue) == 0 }

// Pending reports the number of undelivered messages (exposed for tests).
func (s *DLSpec) Pending() int { return len(s.queue) }

// PLSpec is the physical layer specification automaton for one channel
// direction: its state is the multiset of in-transit packets. Its traces
// are exactly the executions satisfying PL1 on that channel.
type PLSpec struct {
	dir     ioa.Dir
	transit *mset.Multiset[ioa.Packet]
}

var _ Automaton = (*PLSpec)(nil)

// NewPLSpec returns a fresh physical layer specification automaton for the
// given direction.
func NewPLSpec(dir ioa.Dir) *PLSpec {
	return &PLSpec{dir: dir, transit: mset.New[ioa.Packet](ioa.PacketLess)}
}

// Name implements Automaton.
func (s *PLSpec) Name() string { return "PL-spec(" + s.dir.String() + ")" }

// Relevant implements Automaton: the signature is the packet actions of
// this direction.
func (s *PLSpec) Relevant(e ioa.Event) bool {
	return (e.Kind == ioa.SendPkt || e.Kind == ioa.ReceivePkt) && e.Dir == s.dir
}

// Apply implements Automaton. send_pkt is an input action adding one copy;
// receive_pkt is an output action enabled only when a copy is in transit.
func (s *PLSpec) Apply(e ioa.Event) error {
	switch e.Kind {
	case ioa.SendPkt:
		s.transit.Add(e.Pkt, 1)
		return nil
	case ioa.ReceivePkt:
		if err := s.transit.Remove(e.Pkt, 1); err != nil {
			return fmt.Errorf("receive_pkt(%s) with no in-transit copy (duplication or fabrication)", e.Pkt)
		}
		return nil
	default:
		return fmt.Errorf("event %s outside the physical layer signature", e)
	}
}

// Quiescent implements Automaton. The physical layer owes nothing: it may
// drop every in-transit packet, so any state is quiescent.
func (s *PLSpec) Quiescent() bool { return true }

// InTransit reports the current in-transit copy count (exposed for tests).
func (s *PLSpec) InTransit() int { return s.transit.Len() }

// CheckTrace verifies a complete execution against the composed
// specification — DL quiescent-conformance plus PL conformance on both
// channels. It is the specification-automaton formulation of
// ioa.CheckValid.
func CheckTrace(tr ioa.Trace) error {
	if err := Conforms(tr, NewPLSpec(ioa.TtoR)); err != nil {
		return err
	}
	if err := Conforms(tr, NewPLSpec(ioa.RtoT)); err != nil {
		return err
	}
	return ConformsQuiescent(tr, NewDLSpec())
}

// CheckTraceSafety verifies only the prefix-closed part — the
// specification-automaton formulation of ioa.CheckSafety.
func CheckTraceSafety(tr ioa.Trace) error {
	if err := Conforms(tr, NewPLSpec(ioa.TtoR)); err != nil {
		return err
	}
	if err := Conforms(tr, NewPLSpec(ioa.RtoT)); err != nil {
		return err
	}
	return Conforms(tr, NewDLSpec())
}
