package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
)

func msg(id int, payload string) ioa.Message { return ioa.Message{ID: id, Payload: payload} }

func TestDLSpecAcceptsValidSequences(t *testing.T) {
	s := NewDLSpec()
	tr := ioa.Trace{
		{Kind: ioa.SendMsg, Msg: msg(0, "a")},
		{Kind: ioa.SendMsg, Msg: msg(1, "b")},
		{Kind: ioa.ReceiveMsg, Msg: msg(0, "a")},
		{Kind: ioa.ReceiveMsg, Msg: msg(1, "b")},
	}
	if err := ConformsQuiescent(tr, s); err != nil {
		t.Fatalf("valid sequence refused: %v", err)
	}
}

func TestDLSpecRefusesSpuriousDelivery(t *testing.T) {
	tr := ioa.Trace{{Kind: ioa.ReceiveMsg, Msg: msg(0, "a")}}
	err := Conforms(tr, NewDLSpec())
	if err == nil {
		t.Fatal("spurious delivery accepted")
	}
	v, ok := ioa.AsViolation(err)
	if !ok || v.Index != 0 || v.Property != "DL-spec" {
		t.Fatalf("violation = %+v", v)
	}
}

func TestDLSpecRefusesDuplicate(t *testing.T) {
	tr := ioa.Trace{
		{Kind: ioa.SendMsg, Msg: msg(0, "a")},
		{Kind: ioa.ReceiveMsg, Msg: msg(0, "a")},
		{Kind: ioa.ReceiveMsg, Msg: msg(1, "a")},
	}
	if err := Conforms(tr, NewDLSpec()); err == nil {
		t.Fatal("duplicate delivery accepted")
	}
}

func TestDLSpecRefusesReorder(t *testing.T) {
	tr := ioa.Trace{
		{Kind: ioa.SendMsg, Msg: msg(0, "a")},
		{Kind: ioa.SendMsg, Msg: msg(1, "b")},
		{Kind: ioa.ReceiveMsg, Msg: msg(0, "b")},
	}
	if err := Conforms(tr, NewDLSpec()); err == nil {
		t.Fatal("reordered delivery accepted")
	}
}

func TestDLSpecQuiescence(t *testing.T) {
	s := NewDLSpec()
	tr := ioa.Trace{{Kind: ioa.SendMsg, Msg: msg(0, "a")}}
	if err := Conforms(tr, s); err != nil {
		t.Fatal(err)
	}
	if s.Quiescent() || s.Pending() != 1 {
		t.Fatal("spec should owe one delivery")
	}
	if err := ConformsQuiescent(tr, NewDLSpec()); err == nil {
		t.Fatal("non-quiescent trace accepted by ConformsQuiescent")
	}
}

func TestPLSpec(t *testing.T) {
	s := NewPLSpec(ioa.TtoR)
	p := ioa.Packet{Header: "d0"}
	tr := ioa.Trace{
		{Kind: ioa.SendPkt, Dir: ioa.TtoR, Pkt: p},
		{Kind: ioa.SendPkt, Dir: ioa.TtoR, Pkt: p},
		{Kind: ioa.ReceivePkt, Dir: ioa.TtoR, Pkt: p},
	}
	if err := Conforms(tr, s); err != nil {
		t.Fatal(err)
	}
	if s.InTransit() != 1 {
		t.Fatalf("in transit = %d", s.InTransit())
	}
	if !s.Quiescent() {
		t.Fatal("the physical layer is always quiescent (it may drop)")
	}
	// One more receive is fine (the remaining copy); a third is refused.
	if err := s.Apply(ioa.Event{Kind: ioa.ReceivePkt, Dir: ioa.TtoR, Pkt: p}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(ioa.Event{Kind: ioa.ReceivePkt, Dir: ioa.TtoR, Pkt: p}); err == nil {
		t.Fatal("over-delivery accepted")
	}
}

func TestPLSpecIgnoresOtherDirection(t *testing.T) {
	s := NewPLSpec(ioa.TtoR)
	e := ioa.Event{Kind: ioa.ReceivePkt, Dir: ioa.RtoT, Pkt: ioa.Packet{Header: "a0"}}
	if s.Relevant(e) {
		t.Fatal("r→t event relevant to t→r spec")
	}
}

func TestRelevanceFiltering(t *testing.T) {
	dl := NewDLSpec()
	if dl.Relevant(ioa.Event{Kind: ioa.SendPkt, Dir: ioa.TtoR}) {
		t.Fatal("packet event relevant to DL spec")
	}
	pl := NewPLSpec(ioa.TtoR)
	if pl.Relevant(ioa.Event{Kind: ioa.SendMsg}) {
		t.Fatal("message event relevant to PL spec")
	}
}

// --- cross-validation against the hand-coded checkers ---

// protocolTrace produces a recorded run with distinct payloads. Both
// checker formulations must agree on such traces (the spec automata
// compare payload content; the ioa checkers compare bookkeeping IDs; with
// distinct payloads the two observables coincide).
func protocolTrace(t *testing.T, p protocol.Protocol, n int, data channel.Policy) ioa.Trace {
	t.Helper()
	r := sim.NewRunner(sim.Config{Protocol: p, DataPolicy: data, RecordTrace: true})
	res := r.Run(n)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res.Trace
}

func TestCrossValidationOnValidTraces(t *testing.T) {
	policies := []func() channel.Policy{
		channel.Reliable,
		func() channel.Policy { return channel.DropEvery(3) },
		func() channel.Policy { return channel.DelayFirst(4) },
		func() channel.Policy { return channel.Probabilistic(0.3, rand.New(rand.NewSource(17))) },
	}
	reg := protocol.Registry()
	for _, name := range protocol.Names() {
		p := reg[name]
		for _, mk := range policies {
			tr := protocolTrace(t, p, 5, mk())
			iov := ioa.CheckValid(tr)
			spv := CheckTrace(tr)
			if (iov == nil) != (spv == nil) {
				t.Fatalf("%s: checkers disagree: ioa=%v spec=%v", p.Name(), iov, spv)
			}
			if iov != nil {
				t.Fatalf("%s: valid run rejected: %v", p.Name(), iov)
			}
		}
	}
}

func TestCrossValidationOnInvalidTrace(t *testing.T) {
	// The altbit replay execution: both formulations must reject it.
	r := sim.NewRunner(sim.Config{
		Protocol:    protocol.NewAltBit(),
		DataPolicy:  channel.DelayFirst(1),
		RecordTrace: true,
	})
	if err := r.RunMessage("m0"); err != nil {
		t.Fatal(err)
	}
	if err := r.RunMessage("m1"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeliverStale(ioa.TtoR, ioa.Packet{Header: "d0", Payload: "m0"}); err != nil {
		t.Fatal(err)
	}
	tr := r.Result().Trace
	if ioa.CheckSafety(tr) == nil {
		t.Fatal("ioa checker accepted the invalid execution")
	}
	if CheckTraceSafety(tr) == nil {
		t.Fatal("spec automaton accepted the invalid execution")
	}
}

// mutation classes for the property-based cross-validation.
func mutate(tr ioa.Trace, kind, pos int) ioa.Trace {
	if len(tr) == 0 {
		return tr
	}
	out := append(ioa.Trace(nil), tr...)
	i := pos % len(out)
	switch kind % 4 {
	case 0: // duplicate an event
		out = append(out[:i+1], append(ioa.Trace{out[i]}, out[i+1:]...)...)
	case 1: // delete an event
		out = append(out[:i], out[i+1:]...)
	case 2: // swap two adjacent events
		if i+1 < len(out) {
			out[i], out[i+1] = out[i+1], out[i]
		}
	case 3: // corrupt a payload
		e := out[i]
		e.Msg.Payload += "!"
		e.Pkt.Payload += "!"
		out[i] = e
	}
	return out
}

// TestQuickSpecImpliesCheckersUnderMutation: on arbitrary (mutated) trace
// prefixes, spec conformance is the stronger property — whenever the spec
// automata accept, the hand-coded safety checkers must accept too. (The
// converse fails exactly on gap traces, where a skipped message is legal
// for DL1 ∧ DL2 but refused by the gap-free automaton; see the DLSpec doc
// comment.)
func TestQuickSpecImpliesCheckersUnderMutation(t *testing.T) {
	base := protocolTrace(t, protocol.NewSeqNum(), 6, channel.DropEvery(3))
	alt := protocolTrace(t, protocol.NewCntLinear(), 4, channel.DelayFirst(3))
	f := func(useAlt bool, kind, pos uint8, double bool) bool {
		tr := base
		if useAlt {
			tr = alt
		}
		m := mutate(tr, int(kind), int(pos))
		if double {
			m = mutate(m, int(kind/4), int(pos)*7+1)
		}
		iov := ioa.CheckSafety(m) == nil
		spv := CheckTraceSafety(m) == nil
		if spv && !iov {
			return false // spec accepted something the checkers reject
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSpecStrictlyStrongerOnGapTraces pins the known divergence: skipping
// a message passes DL1 ∧ DL2 but is refused by the gap-free automaton.
func TestSpecStrictlyStrongerOnGapTraces(t *testing.T) {
	tr := ioa.Trace{
		{Kind: ioa.SendMsg, Msg: msg(0, "a")},
		{Kind: ioa.SendMsg, Msg: msg(1, "b")},
		{Kind: ioa.ReceiveMsg, Msg: msg(0, "b")}, // delivers b, skipping a
	}
	// The checker sees receive ID 0 with payload "b"... use IDs the way
	// the runner would: the first delivery gets ID 0. For the ID-based
	// checker this is payload corruption, so build it with matching IDs
	// instead: receive of message 1.
	tr[2].Msg = ioa.Message{ID: 1, Payload: "b"}
	if err := ioa.CheckSafety(tr); err != nil {
		t.Fatalf("gap trace should satisfy DL1∧DL2: %v", err)
	}
	if err := CheckTraceSafety(tr); err == nil {
		t.Fatal("gap trace should be refused by the gap-free automaton")
	}
	// On the completed run the two formulations re-converge: both reject,
	// one via DL3, one via quiescence.
	if err := ioa.CheckValid(tr); err == nil {
		t.Fatal("ioa.CheckValid should reject the incomplete run")
	}
	if err := CheckTrace(tr); err == nil {
		t.Fatal("CheckTrace should reject the incomplete run")
	}
}

// TestQuickQuiescentCheckersAgreeUnderDeletion: deleting receive events
// must trip the terminal liveness check in both formulations.
func TestQuickQuiescentCheckersAgreeUnderDeletion(t *testing.T) {
	base := protocolTrace(t, protocol.NewSeqNum(), 5, channel.Reliable())
	f := func(pos uint8) bool {
		m := mutate(base, 1, int(pos)) // deletion
		iov := ioa.CheckValid(m) == nil
		spv := CheckTrace(m) == nil
		return iov == spv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
