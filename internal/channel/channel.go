// Package channel implements the physical layer of Mansour & Schieber
// (PODC '89), Section 2.1: unreliable, non-FIFO packet channels.
//
// A NonFIFO channel is a counted multiset of in-transit packets. Sending a
// packet adds a copy; a delivery removes one copy of the chosen value. The
// channel satisfies the safety property (PL1) by construction: only copies
// previously added can ever be removed, and each copy is removed at most
// once. All delivery *choice* — which copy, when, or never — is externalised
// into Policy objects and the adversaries in internal/adversary, mirroring
// the paper's treatment of channel behaviour as the source of all
// nondeterminism.
//
// The probabilistic physical layer of Section 5 (property PL2p) is the
// Probabilistic policy: each sent packet is delivered immediately with
// probability 1−q and is otherwise delayed on the channel.
package channel

import (
	"fmt"
	"math/rand"

	"repro/internal/ioa"
	"repro/internal/mset"
)

// NonFIFO is a non-FIFO physical channel: a multiset of in-transit packets.
type NonFIFO struct {
	dir     ioa.Dir
	transit *mset.Multiset[ioa.Packet]
	sent    int
	recvd   int
	dropped int
}

// NewNonFIFO returns an empty non-FIFO channel for the given direction.
func NewNonFIFO(dir ioa.Dir) *NonFIFO {
	return &NonFIFO{
		dir:     dir,
		transit: mset.New[ioa.Packet](ioa.PacketLess),
	}
}

// Dir reports the channel's direction.
func (c *NonFIFO) Dir() ioa.Dir { return c.dir }

// Send places a copy of p in transit and returns it for chaining.
// The caller (runner or adversary) records the send_pkt event.
func (c *NonFIFO) Send(p ioa.Packet) {
	c.transit.Add(p, 1)
	c.sent++
}

// SendDelivered records a send_pkt immediately followed by the receive_pkt
// of the same copy: the add-then-remove on the in-transit multiset is the
// identity, so the fused form only bumps the counters. The exploration
// engines use it for the DeliverNow policy branch, which is the single
// hottest channel operation (the optimal behaviour delivers everything
// immediately), and it makes the multiset churn of that branch zero.
func (c *NonFIFO) SendDelivered(p ioa.Packet) {
	_ = p // the copy never rests in transit; p is identified by value only
	c.sent++
	c.recvd++
}

// SendDropped records a send_pkt whose copy is immediately discarded: the
// fused form of Send followed by Drop, again the identity on the in-transit
// multiset.
func (c *NonFIFO) SendDropped(p ioa.Packet) {
	_ = p
	c.sent++
	c.dropped++
}

// Deliver removes one in-transit copy of p, modelling a receive_pkt action.
// It returns an error if no copy of p is in transit — attempting such a
// delivery would violate PL1, so the channel refuses it.
func (c *NonFIFO) Deliver(p ioa.Packet) error {
	if err := c.transit.Remove(p, 1); err != nil {
		return fmt.Errorf("channel %s: deliver %s: no copy in transit", c.dir, p)
	}
	c.recvd++
	return nil
}

// Drop permanently discards one in-transit copy of p. Dropping is
// indistinguishable from an infinite delay in the model; the separate
// operation exists for loss statistics.
func (c *NonFIFO) Drop(p ioa.Packet) error {
	if err := c.transit.Remove(p, 1); err != nil {
		return fmt.Errorf("channel %s: drop %s: no copy in transit", c.dir, p)
	}
	c.dropped++
	return nil
}

// InTransit reports the total number of packets currently delayed on the
// channel (sp − rp − dropped).
func (c *NonFIFO) InTransit() int { return c.transit.Len() }

// Count reports the number of in-transit copies of the exact packet p.
func (c *NonFIFO) Count(p ioa.Packet) int { return c.transit.Count(p) }

// CountHeader reports the number of in-transit copies with the given
// header, across all payloads.
func (c *NonFIFO) CountHeader(h string) int {
	n := 0
	c.transit.ForEach(func(p ioa.Packet, k int) {
		if p.Header == h {
			n += k
		}
	})
	return n
}

// Packets returns the distinct in-transit packet values in deterministic
// order.
func (c *NonFIFO) Packets() []ioa.Packet { return c.transit.Values() }

// PacketAt returns the i-th distinct in-transit packet value in the same
// deterministic order as Packets, without materialising the slice; i must
// be below DistinctPackets.
func (c *NonFIFO) PacketAt(i int) ioa.Packet { return c.transit.At(i) }

// DistinctPackets reports the number of distinct in-transit packet values.
func (c *NonFIFO) DistinctPackets() int { return c.transit.Distinct() }

// Transit returns a deep copy of the in-transit multiset.
func (c *NonFIFO) Transit() *mset.Multiset[ioa.Packet] { return c.transit.Clone() }

// Sent reports the total send_pkt count on this channel.
func (c *NonFIFO) Sent() int { return c.sent }

// Received reports the total receive_pkt count on this channel.
func (c *NonFIFO) Received() int { return c.recvd }

// Dropped reports the number of permanently discarded copies.
func (c *NonFIFO) Dropped() int { return c.dropped }

// Clone returns an independent copy of the channel state, used by
// adversaries to branch executions.
func (c *NonFIFO) Clone() *NonFIFO {
	return &NonFIFO{
		dir:     c.dir,
		transit: c.transit.Clone(),
		sent:    c.sent,
		recvd:   c.recvd,
		dropped: c.dropped,
	}
}

// CloneInto overwrites dst with a deep copy of c, reusing dst's multiset
// backing array. dst must come from NewNonFIFO (its transit must be
// non-nil).
func (c *NonFIFO) CloneInto(dst *NonFIFO) {
	dst.dir = c.dir
	c.transit.CloneInto(dst.transit)
	dst.sent = c.sent
	dst.recvd = c.recvd
	dst.dropped = c.dropped
}

// Reset empties the channel and zeroes its counters, keeping the multiset
// backing array for reuse.
func (c *NonFIFO) Reset(dir ioa.Dir) {
	c.dir = dir
	c.transit.Reset()
	c.sent = 0
	c.recvd = 0
	c.dropped = 0
}

// Key returns a canonical encoding of the in-transit contents, used as a
// memoization key by adversary searches.
func (c *NonFIFO) Key() string { return c.transit.Key() }

// AppendKey appends the canonical encoding (identical to Key) to dst
// without allocating: packets are rendered by AppendPacket into the
// caller's scratch buffer.
func (c *NonFIFO) AppendKey(dst []byte) []byte {
	return c.transit.AppendKey(dst, AppendPacket)
}

// AppendPacket appends ioa.Packet's String rendering ("header" or
// "header[payload]") to dst. It must stay byte-identical to Packet.String:
// the interned exploration cores build channel keys through it, and the
// differential harness holds them equal to the fmt-rendered string path.
func AppendPacket(dst []byte, p ioa.Packet) []byte {
	dst = append(dst, p.Header...)
	if p.Payload != "" {
		dst = append(dst, '[')
		dst = append(dst, p.Payload...)
		dst = append(dst, ']')
	}
	return dst
}

// Decision is a policy's verdict on a freshly sent packet.
type Decision int

const (
	// DeliverNow delivers the packet immediately (the "optimal" behaviour
	// of the proofs, and the 1−q branch of PL2p).
	DeliverNow Decision = iota + 1
	// Delay leaves the packet in transit; it may be delivered later by an
	// adversary or release rule, or never.
	Delay
	// Drop discards the packet permanently.
	Drop
)

func (d Decision) String() string {
	switch d {
	case DeliverNow:
		return "deliver"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Policy decides the fate of each packet at send time. Policies are the
// executable form of "a behaviour of the physical layer".
type Policy interface {
	// OnSend is consulted once per send_pkt action, in order.
	OnSend(p ioa.Packet) Decision
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(p ioa.Packet) Decision

// OnSend implements Policy.
func (f PolicyFunc) OnSend(p ioa.Packet) Decision { return f(p) }

// Reliable delivers every packet immediately: the optimal channel behaviour
// used in the boundness definitions ("the physical layer starts behaving in
// the optimal way").
func Reliable() Policy {
	return PolicyFunc(func(ioa.Packet) Decision { return DeliverNow })
}

// DelayAll delays every packet: the fully adversarial behaviour used to
// accumulate in-transit copies.
func DelayAll() Policy {
	return PolicyFunc(func(ioa.Packet) Decision { return Delay })
}

// DelayFirst delays the first n packets sent, then delivers the rest
// immediately. This is the in-transit builder's workhorse: it strands
// exactly n copies on the channel while letting the protocol make progress.
func DelayFirst(n int) Policy {
	seen := 0
	return PolicyFunc(func(ioa.Packet) Decision {
		if seen < n {
			seen++
			return Delay
		}
		return DeliverNow
	})
}

// DelayPerHeader delays the first n copies of every distinct header and
// delivers the rest. The header-budget adversary (Theorem 3.1's
// construction) uses it to accumulate in-transit copies of the protocol's
// entire alphabet.
func DelayPerHeader(n int) Policy {
	seen := make(map[string]int)
	return PolicyFunc(func(p ioa.Packet) Decision {
		if seen[p.Header] < n {
			seen[p.Header]++
			return Delay
		}
		return DeliverNow
	})
}

// DropEvery drops every k-th packet (k ≥ 1) and delivers the rest. Used for
// loss-tolerance tests of the protocols.
func DropEvery(k int) Policy {
	if k < 1 {
		k = 1
	}
	i := 0
	return PolicyFunc(func(ioa.Packet) Decision {
		i++
		if i%k == 0 {
			return Drop
		}
		return DeliverNow
	})
}

// Probabilistic implements the probabilistic physical layer of Section 5
// (property PL2p): each packet is delivered immediately with probability
// 1−q and delayed with probability q. Delayed packets remain in transit;
// the lower bound of Theorem 5.1 is precisely about the stale copies that
// accumulate this way.
func Probabilistic(q float64, rng *rand.Rand) Policy {
	return PolicyFunc(func(ioa.Packet) Decision {
		if rng.Float64() < q {
			return Delay
		}
		return DeliverNow
	})
}

// ProbabilisticDrop is the loss variant: each packet is dropped with
// probability q instead of delayed. It models channels whose delayed
// packets never reappear, and isolates retransmission cost from
// stale-copy accumulation in the experiments.
func ProbabilisticDrop(q float64, rng *rand.Rand) Policy {
	return PolicyFunc(func(ioa.Packet) Decision {
		if rng.Float64() < q {
			return Drop
		}
		return DeliverNow
	})
}

// Script replays a fixed decision sequence and then falls back to
// DeliverNow. Adversary constructions use scripts to pin down exact channel
// behaviours in certificates and tests.
func Script(decisions ...Decision) Policy {
	i := 0
	return PolicyFunc(func(ioa.Packet) Decision {
		if i < len(decisions) {
			d := decisions[i]
			i++
			return d
		}
		return DeliverNow
	})
}

// Genie is the stale-copy oracle available to the counting protocols (see
// DESIGN.md §2 for why a genie-aided protocol is a sound substitution when
// demonstrating lower bounds). Stale reports the number of in-transit
// copies with the given header on the data (t→r) channel.
type Genie interface {
	Stale(header string) int
}

// ChannelGenie adapts a NonFIFO channel to the Genie interface.
type ChannelGenie struct {
	Ch *NonFIFO
}

// Stale implements Genie.
func (g ChannelGenie) Stale(header string) int { return g.Ch.CountHeader(header) }

// NoGenie is a Genie that always reports zero stale copies. Protocols run
// with NoGenie behave as if the channel were FIFO-clean — exactly the
// assumption the adversaries exploit.
type NoGenie struct{}

// Stale implements Genie.
func (NoGenie) Stale(string) int { return 0 }
