package channel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
)

func pk(h string) ioa.Packet { return ioa.Packet{Header: h} }

func TestNonFIFOSendDeliver(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	if c.Dir() != ioa.TtoR {
		t.Fatal("Dir wrong")
	}
	c.Send(pk("a"))
	c.Send(pk("a"))
	c.Send(pk("b"))
	if c.InTransit() != 3 || c.Count(pk("a")) != 2 || c.Count(pk("b")) != 1 {
		t.Fatalf("transit state wrong: %s", c.Key())
	}
	if err := c.Deliver(pk("a")); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if c.InTransit() != 2 || c.Received() != 1 || c.Sent() != 3 {
		t.Fatalf("counters wrong: in=%d recv=%d sent=%d", c.InTransit(), c.Received(), c.Sent())
	}
}

func TestNonFIFODeliverAbsentViolatesPL1(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	if err := c.Deliver(pk("a")); err == nil {
		t.Fatal("delivering an absent packet must fail (PL1 by construction)")
	}
	c.Send(pk("a"))
	if err := c.Deliver(pk("b")); err == nil {
		t.Fatal("delivering a never-sent value must fail")
	}
}

func TestNonFIFODrop(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	c.Send(pk("a"))
	if err := c.Drop(pk("a")); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if c.InTransit() != 0 || c.Dropped() != 1 || c.Received() != 0 {
		t.Fatal("drop accounting wrong")
	}
	if err := c.Drop(pk("a")); err == nil {
		t.Fatal("dropping an absent packet must fail")
	}
}

func TestNonFIFOCountHeaderAcrossPayloads(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	c.Send(ioa.Packet{Header: "d0", Payload: "x"})
	c.Send(ioa.Packet{Header: "d0", Payload: "y"})
	c.Send(ioa.Packet{Header: "d1", Payload: "x"})
	if got := c.CountHeader("d0"); got != 2 {
		t.Fatalf("CountHeader(d0) = %d, want 2", got)
	}
	if got := c.CountHeader("d1"); got != 1 {
		t.Fatalf("CountHeader(d1) = %d, want 1", got)
	}
	if got := c.CountHeader("zz"); got != 0 {
		t.Fatalf("CountHeader(zz) = %d, want 0", got)
	}
}

func TestNonFIFOCloneIndependence(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	c.Send(pk("a"))
	d := c.Clone()
	if err := d.Deliver(pk("a")); err != nil {
		t.Fatalf("Deliver on clone: %v", err)
	}
	if c.InTransit() != 1 || d.InTransit() != 0 {
		t.Fatal("clone shares state with original")
	}
}

func TestNonFIFOPacketsDeterministic(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	c.Send(pk("b"))
	c.Send(pk("a"))
	ps := c.Packets()
	if len(ps) != 2 || ps[0].Header != "a" || ps[1].Header != "b" {
		t.Fatalf("Packets() = %v", ps)
	}
}

// Property: any interleaving of sends and legal deliveries keeps the
// invariant InTransit = Sent − Received − Dropped, and never permits a
// delivery of a value with zero in-transit copies (PL1 by construction).
func TestQuickNonFIFOConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewNonFIFO(ioa.TtoR)
		headers := []string{"a", "b", "c"}
		for _, op := range ops {
			h := pk(headers[int(op)%len(headers)])
			switch (op / 4) % 3 {
			case 0:
				c.Send(h)
			case 1:
				err := c.Deliver(h)
				if c.Count(h) < 0 || (err == nil) == false && c.Count(h) > 0 {
					// Deliver must succeed iff a copy was present before.
					// We can't observe "before" here, so re-check: failure
					// with copies present is a bug.
					return false
				}
			case 2:
				_ = c.Drop(h)
			}
			if c.InTransit() != c.Sent()-c.Received()-c.Dropped() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReliablePolicy(t *testing.T) {
	p := Reliable()
	for i := 0; i < 5; i++ {
		if p.OnSend(pk("a")) != DeliverNow {
			t.Fatal("Reliable must always deliver")
		}
	}
}

func TestDelayAllPolicy(t *testing.T) {
	p := DelayAll()
	for i := 0; i < 5; i++ {
		if p.OnSend(pk("a")) != Delay {
			t.Fatal("DelayAll must always delay")
		}
	}
}

func TestDelayFirstPolicy(t *testing.T) {
	p := DelayFirst(2)
	got := []Decision{p.OnSend(pk("a")), p.OnSend(pk("a")), p.OnSend(pk("a")), p.OnSend(pk("a"))}
	want := []Decision{Delay, Delay, DeliverNow, DeliverNow}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DelayFirst decisions = %v, want %v", got, want)
		}
	}
}

func TestDropEveryPolicy(t *testing.T) {
	p := DropEvery(3)
	var drops int
	for i := 0; i < 9; i++ {
		if p.OnSend(pk("a")) == Drop {
			drops++
		}
	}
	if drops != 3 {
		t.Fatalf("DropEvery(3) over 9 sends dropped %d, want 3", drops)
	}
	// k < 1 is clamped to 1 (drop everything).
	q := DropEvery(0)
	if q.OnSend(pk("a")) != Drop {
		t.Fatal("DropEvery(0) should clamp to dropping every packet")
	}
}

func TestProbabilisticPolicyRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Probabilistic(0.3, rng)
	const n = 20000
	delayed := 0
	for i := 0; i < n; i++ {
		if p.OnSend(pk("a")) == Delay {
			delayed++
		}
	}
	rate := float64(delayed) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("Probabilistic(0.3) delay rate = %.3f", rate)
	}
}

func TestProbabilisticDropPolicyRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := ProbabilisticDrop(0.5, rng)
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if p.OnSend(pk("a")) == Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.47 || rate > 0.53 {
		t.Fatalf("ProbabilisticDrop(0.5) drop rate = %.3f", rate)
	}
}

func TestProbabilisticDeterministicUnderSeed(t *testing.T) {
	run := func() []Decision {
		p := Probabilistic(0.5, rand.New(rand.NewSource(42)))
		out := make([]Decision, 20)
		for i := range out {
			out[i] = p.OnSend(pk("a"))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same decisions")
		}
	}
}

func TestScriptPolicy(t *testing.T) {
	p := Script(Delay, Drop)
	if p.OnSend(pk("a")) != Delay || p.OnSend(pk("a")) != Drop {
		t.Fatal("Script must replay its decisions in order")
	}
	if p.OnSend(pk("a")) != DeliverNow {
		t.Fatal("Script must fall back to DeliverNow")
	}
}

func TestGenies(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	c.Send(ioa.Packet{Header: "d0", Payload: "p"})
	c.Send(ioa.Packet{Header: "d0", Payload: "q"})
	g := ChannelGenie{Ch: c}
	if g.Stale("d0") != 2 || g.Stale("d1") != 0 {
		t.Fatalf("ChannelGenie: d0=%d d1=%d", g.Stale("d0"), g.Stale("d1"))
	}
	if (NoGenie{}).Stale("d0") != 0 {
		t.Fatal("NoGenie must always report 0")
	}
}

func TestDecisionString(t *testing.T) {
	if DeliverNow.String() != "deliver" || Delay.String() != "delay" || Drop.String() != "drop" {
		t.Fatal("Decision.String wrong")
	}
}

func TestFIFOOrdering(t *testing.T) {
	c := NewFIFO(ioa.TtoR)
	if c.Dir() != ioa.TtoR {
		t.Fatal("Dir wrong")
	}
	c.Send(pk("a"))
	c.Send(pk("b"))
	c.Send(pk("c"))
	p1, err := c.DeliverHead()
	if err != nil || p1.Header != "a" {
		t.Fatalf("first delivery = %v, %v", p1, err)
	}
	if err := c.DropHead(); err != nil {
		t.Fatalf("DropHead: %v", err)
	}
	p3, err := c.DeliverHead()
	if err != nil || p3.Header != "c" {
		t.Fatalf("delivery after drop = %v, %v", p3, err)
	}
	if c.InTransit() != 0 || c.Sent() != 3 || c.Received() != 2 || c.Dropped() != 1 {
		t.Fatal("FIFO accounting wrong")
	}
}

func TestFIFOEmptyErrors(t *testing.T) {
	c := NewFIFO(ioa.RtoT)
	if _, err := c.DeliverHead(); err == nil {
		t.Fatal("DeliverHead on empty channel must fail")
	}
	if err := c.DropHead(); err == nil {
		t.Fatal("DropHead on empty channel must fail")
	}
}

func TestFIFOCloneIndependence(t *testing.T) {
	c := NewFIFO(ioa.TtoR)
	c.Send(pk("a"))
	d := c.Clone()
	if _, err := d.DeliverHead(); err != nil {
		t.Fatal(err)
	}
	if c.InTransit() != 1 || d.InTransit() != 0 {
		t.Fatal("FIFO clone shares state")
	}
}

// Property: a FIFO channel delivers exactly the sent sequence (when nothing
// is dropped).
func TestQuickFIFOPreservesOrder(t *testing.T) {
	f := func(hs []uint8) bool {
		c := NewFIFO(ioa.TtoR)
		want := make([]string, len(hs))
		for i, h := range hs {
			s := string(rune('a' + h%8))
			want[i] = s
			c.Send(pk(s))
		}
		for _, w := range want {
			p, err := c.DeliverHead()
			if err != nil || p.Header != w {
				return false
			}
		}
		return c.InTransit() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNonFIFOTransitSnapshot(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	c.Send(pk("a"))
	c.Send(pk("a"))
	snap := c.Transit()
	if snap.Count(pk("a")) != 2 {
		t.Fatalf("snapshot = %s", snap.Key())
	}
	// The snapshot is a deep copy.
	snap.Add(pk("b"), 1)
	if c.Count(pk("b")) != 0 {
		t.Fatal("Transit() exposed internal state")
	}
}

func TestNonFIFOKey(t *testing.T) {
	c := NewNonFIFO(ioa.TtoR)
	if c.Key() != "{}" {
		t.Fatalf("empty key = %q", c.Key())
	}
	c.Send(pk("a"))
	c.Send(pk("a"))
	d := NewNonFIFO(ioa.TtoR)
	d.Send(pk("a"))
	d.Send(pk("a"))
	if c.Key() != d.Key() {
		t.Fatal("equal contents, different keys")
	}
	d.Send(pk("b"))
	if c.Key() == d.Key() {
		t.Fatal("different contents, same key")
	}
}

func TestDelayPerHeaderPolicy(t *testing.T) {
	p := DelayPerHeader(2)
	decisions := []Decision{
		p.OnSend(pk("a")), // delay (a:1)
		p.OnSend(pk("b")), // delay (b:1)
		p.OnSend(pk("a")), // delay (a:2)
		p.OnSend(pk("a")), // deliver (a over quota)
		p.OnSend(pk("b")), // delay (b:2)
		p.OnSend(pk("b")), // deliver
	}
	want := []Decision{Delay, Delay, Delay, DeliverNow, Delay, DeliverNow}
	for i := range want {
		if decisions[i] != want[i] {
			t.Fatalf("decisions = %v, want %v", decisions, want)
		}
	}
}

func TestFIFOHeadAndCountHeader(t *testing.T) {
	c := NewFIFO(ioa.TtoR)
	if _, ok := c.Head(); ok {
		t.Fatal("empty FIFO has a head")
	}
	c.Send(pk("a"))
	c.Send(pk("b"))
	c.Send(pk("a"))
	h, ok := c.Head()
	if !ok || h.Header != "a" {
		t.Fatalf("Head = %v,%t", h, ok)
	}
	if c.CountHeader("a") != 2 || c.CountHeader("b") != 1 || c.CountHeader("z") != 0 {
		t.Fatal("CountHeader wrong")
	}
}

func TestFIFOKeyOrderSensitive(t *testing.T) {
	c := NewFIFO(ioa.TtoR)
	c.Send(pk("a"))
	c.Send(pk("b"))
	d := NewFIFO(ioa.TtoR)
	d.Send(pk("b"))
	d.Send(pk("a"))
	if c.Key() == d.Key() {
		t.Fatal("FIFO key must be order-sensitive")
	}
	if c.Key() != "[a b]" {
		t.Fatalf("Key = %q", c.Key())
	}
}
