package channel

import (
	"fmt"

	"repro/internal/ioa"
)

// FIFO is a first-in-first-out physical channel, provided for contrast with
// the paper's non-FIFO model: protocols such as the alternating bit
// protocol [BSW69] are correct over lossy FIFO channels but break over
// non-FIFO channels. Deliveries occur strictly in send order; copies may be
// dropped but never reordered.
type FIFO struct {
	dir     ioa.Dir
	queue   []ioa.Packet
	sent    int
	recvd   int
	dropped int
}

// NewFIFO returns an empty FIFO channel for the given direction.
func NewFIFO(dir ioa.Dir) *FIFO {
	return &FIFO{dir: dir}
}

// Dir reports the channel's direction.
func (c *FIFO) Dir() ioa.Dir { return c.dir }

// Send enqueues a copy of p.
func (c *FIFO) Send(p ioa.Packet) {
	c.queue = append(c.queue, p)
	c.sent++
}

// DeliverHead dequeues and returns the oldest in-transit packet.
func (c *FIFO) DeliverHead() (ioa.Packet, error) {
	if len(c.queue) == 0 {
		return ioa.Packet{}, fmt.Errorf("channel %s: deliver on empty FIFO channel", c.dir)
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	c.recvd++
	return p, nil
}

// DropHead discards the oldest in-transit packet.
func (c *FIFO) DropHead() error {
	if len(c.queue) == 0 {
		return fmt.Errorf("channel %s: drop on empty FIFO channel", c.dir)
	}
	c.queue = c.queue[1:]
	c.dropped++
	return nil
}

// InTransit reports the number of queued packets.
func (c *FIFO) InTransit() int { return len(c.queue) }

// Head returns the oldest in-transit packet without removing it.
func (c *FIFO) Head() (ioa.Packet, bool) {
	if len(c.queue) == 0 {
		return ioa.Packet{}, false
	}
	return c.queue[0], true
}

// CountHeader reports the number of queued copies with the given header.
func (c *FIFO) CountHeader(h string) int {
	n := 0
	for _, p := range c.queue {
		if p.Header == h {
			n++
		}
	}
	return n
}

// Key returns a canonical encoding of the queue contents (order matters).
func (c *FIFO) Key() string {
	s := "["
	for i, p := range c.queue {
		if i > 0 {
			s += " "
		}
		s += p.String()
	}
	return s + "]"
}

// Sent reports the total send count.
func (c *FIFO) Sent() int { return c.sent }

// Received reports the total delivery count.
func (c *FIFO) Received() int { return c.recvd }

// Dropped reports the number of discarded copies.
func (c *FIFO) Dropped() int { return c.dropped }

// Clone returns an independent copy of the channel state.
func (c *FIFO) Clone() *FIFO {
	q := make([]ioa.Packet, len(c.queue))
	copy(q, c.queue)
	return &FIFO{dir: c.dir, queue: q, sent: c.sent, recvd: c.recvd, dropped: c.dropped}
}
