package channel

import (
	"math/rand"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// This file connects channel policies to the trace subsystem: Capture
// records every policy verdict into a trace sink, FromDecisions replays a
// recorded verdict stream as a policy, and RecordedProbabilistic is the
// probabilistic physical layer with its raw RNG draws logged.
//
// Together they close the record→replay loop for the channel: a policy's
// decision sequence is the *only* nondeterminism in a simulated execution
// (the endpoint automata are deterministic and the runner's scheduling is
// fixed), so capturing it makes any run — including a probabilistic or
// adversarial one — reproducible bit for bit.

// Capture wraps pol so that every verdict is also emitted to sink as a
// trace Decision event for channel direction d, in consultation order. The
// wrapped policy's behaviour is unchanged.
func Capture(pol Policy, d ioa.Dir, sink trace.Sink) Policy {
	return PolicyFunc(func(p ioa.Packet) Decision {
		dec := pol.OnSend(p)
		sink.Emit(trace.Event{Kind: trace.KindDecision, Dir: d, Decision: trace.Decision(dec)})
		return dec
	})
}

// FromDecisions replays a recorded decision stream as a Policy. Once the
// stream is exhausted — which happens when a shrunk or edited trace makes
// the protocol send more packets than the recording did — every further
// packet gets the fallback decision, and *exhausted (when non-nil) is set.
// Delay is the conservative fallback for replaying attacks: it strands the
// extra copies instead of inventing deliveries the recording never made.
func FromDecisions(decisions []trace.Decision, fallback Decision, exhausted *bool) Policy {
	i := 0
	return PolicyFunc(func(ioa.Packet) Decision {
		if i < len(decisions) {
			d := Decision(decisions[i])
			i++
			return d
		}
		if exhausted != nil {
			*exhausted = true
		}
		return fallback
	})
}

// Counting wraps pol so that *n is incremented on every OnSend consultation.
// The fuzzer uses it to learn how many decisions an execution actually
// consumed on each channel, so mutated decision streams can be trimmed to
// their live prefix before they enter the corpus.
func Counting(pol Policy, n *int) Policy {
	return PolicyFunc(func(p ioa.Packet) Decision {
		*n++
		return pol.OnSend(p)
	})
}

// RecordedProbabilistic is Probabilistic with every raw RNG draw logged to
// sink as a trace RNG event, for audit of the randomness behind the
// recorded decisions. (Replay consumes the captured decisions, not the
// draws; the draws document where the decisions came from.)
func RecordedProbabilistic(q float64, rng *rand.Rand, sink trace.Sink) Policy {
	return PolicyFunc(func(ioa.Packet) Decision {
		v := rng.Float64()
		sink.Emit(trace.Event{Kind: trace.KindRNG, Bits: uint64(v * (1 << 53))})
		if v < q {
			return Delay
		}
		return DeliverNow
	})
}

// DecisionReplayer is a reusable, allocation-free equivalent of
// Counting(FromDecisions(dec, fallback, nil), n): it replays a recorded
// decision stream with a fallback once exhausted, counting consultations.
// The interned fuzz core binds one per channel per execution instead of
// building the four-closure tower anew; Bind rewinds it.
type DecisionReplayer struct {
	dec      []trace.Decision
	fallback Decision
	n        *int
	i        int
}

// Bind points the replayer at a new decision stream and consultation
// counter and rewinds it.
func (d *DecisionReplayer) Bind(dec []trace.Decision, fallback Decision, n *int) {
	d.dec, d.fallback, d.n, d.i = dec, fallback, n, 0
}

// OnSend implements Policy.
func (d *DecisionReplayer) OnSend(ioa.Packet) Decision {
	*d.n++
	if d.i < len(d.dec) {
		v := Decision(d.dec[d.i])
		d.i++
		return v
	}
	return d.fallback
}
