package transport

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

func TestGBNNameAndHeaderBound(t *testing.T) {
	p := NewGoBackN(4, 2)
	if p.Name() != "gbn-s4-w2" {
		t.Fatalf("Name = %q", p.Name())
	}
	if k, bounded := p.HeaderBound(); !bounded || k != 8 {
		t.Fatalf("HeaderBound = %d,%t", k, bounded)
	}
	u := NewGoBackN(0, 3)
	if u.Name() != "gbn-unbounded-w3" {
		t.Fatalf("Name = %q", u.Name())
	}
	if _, bounded := u.HeaderBound(); bounded {
		t.Fatal("unbounded variant should report unbounded")
	}
	if NewGoBackN(0, -1).W != 1 {
		t.Fatal("W should clamp to 1")
	}
}

func TestGBNDeliveryInOrderReliable(t *testing.T) {
	for _, p := range []protocol.Protocol{NewGoBackN(0, 1), NewGoBackN(0, 3), NewGoBackN(16, 4)} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			want := payloads(10)
			res := runBatch(t, p, want, nil, nil)
			if len(res.Delivered) != 10 {
				t.Fatalf("delivered %v", res.Delivered)
			}
			for i := range want {
				if res.Delivered[i] != want[i] {
					t.Fatalf("delivered %v, want %v", res.Delivered, want)
				}
			}
			if err := ioa.CheckValid(res.Trace); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
		})
	}
}

func TestGBNDeliveryUnderLoss(t *testing.T) {
	res := runBatch(t, NewGoBackN(0, 3), payloads(8),
		channel.DropEvery(3), channel.DropEvery(4))
	if len(res.Delivered) != 8 {
		t.Fatalf("delivered %d of 8", len(res.Delivered))
	}
	if err := ioa.CheckValid(res.Trace); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestGBNUnboundedSafeUnderProbabilisticDelay(t *testing.T) {
	res := runBatch(t, NewGoBackN(0, 3), payloads(10),
		channel.Probabilistic(0.3, rand.New(rand.NewSource(21))),
		channel.Probabilistic(0.2, rand.New(rand.NewSource(22))))
	if len(res.Delivered) != 10 {
		t.Fatalf("delivered %d of 10", len(res.Delivered))
	}
	if err := ioa.CheckValid(res.Trace); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestGBNReceiverNoBuffering(t *testing.T) {
	// Go-back-N drops out-of-order segments: delivering s1 before s0
	// yields nothing; s0 then delivers only m0.
	_, rx := NewGoBackN(0, 3).New(nil, nil)
	rx.DeliverPkt(ioa.Packet{Header: "s1", Payload: "m1"})
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("out-of-order segment delivered: %v", got)
	}
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "m0"})
	got := rx.TakeDelivered()
	if len(got) != 1 || got[0] != "m0" {
		t.Fatalf("delivered %v", got)
	}
}

func TestGBNCumulativeAck(t *testing.T) {
	tx, _ := NewGoBackN(0, 3).New(nil, nil)
	tx.SendMsg("a")
	tx.SendMsg("b")
	tx.SendMsg("c")
	// A single cumulative ack for seq 1 slides past both a and b.
	tx.DeliverPkt(ioa.Packet{Header: "t1"})
	if !strings.Contains(tx.StateKey(), "base=2") {
		t.Fatalf("cumulative ack did not slide: %s", tx.StateKey())
	}
}

func TestGBNReceiverAcksCumulatively(t *testing.T) {
	_, rx := NewGoBackN(0, 2).New(nil, nil)
	// A duplicate of an old segment triggers a re-ack of the last
	// in-order sequence number.
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "m0"})
	rx.TakeDelivered()
	drainAcks(rx)
	rx.DeliverPkt(ioa.Packet{Header: "s5", Payload: "x"}) // out of order
	a, ok := rx.NextPkt()
	if !ok || a.Header != "t0" {
		t.Fatalf("expected cumulative re-ack t0, got %v,%t", a, ok)
	}
}

func TestGBNWrapAliasByHand(t *testing.T) {
	// S=2: after delivering seqs 0 and 1, the receiver expects seq 2 whose
	// header is s0 again; a stale copy of segment 0 is accepted.
	_, rx := NewGoBackN(2, 1).New(nil, nil)
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "m0"})
	rx.DeliverPkt(ioa.Packet{Header: "s1", Payload: "m1"})
	rx.TakeDelivered()
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "m0"}) // stale replay
	got := rx.TakeDelivered()
	if len(got) != 1 || got[0] != "m0" {
		t.Fatalf("expected the wrap alias to deliver the stale payload, got %v", got)
	}
}

func TestGBNExplorerBreaksBoundedVariant(t *testing.T) {
	rep, err := explore.Explore(NewGoBackN(2, 1), explore.Config{
		Messages: 3, MaxDataSends: 6, MaxAckSends: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatalf("finite sequence space should be breakable: %+v", rep)
	}
	if err := ioa.CheckSafety(rep.Counterexample); err == nil {
		t.Fatal("counterexample passes checkers")
	}
}

func TestGBNExplorerUnboundedSafe(t *testing.T) {
	rep, err := explore.Explore(NewGoBackN(0, 2), explore.Config{
		Messages: 3, MaxDataSends: 6, MaxAckSends: 6, CheckDeadlock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("unbounded gbn should be safe and live:\n%s", rep.Counterexample)
	}
	if !rep.Exhausted {
		t.Fatal("space should be exhausted")
	}
}

func TestGBNStaleAckDeadlock(t *testing.T) {
	// The sender-side alias: with S=2 and window 1, a stale cumulative ack
	// from a previous wrap can confirm a segment the receiver never
	// accepted; the window slides, the channels drain, and delivery is
	// permanently stuck. Loss must be explored for the original copy to
	// vanish.
	rep, err := explore.Explore(NewGoBackN(2, 1), explore.Config{
		Messages: 3, MaxDataSends: 7, MaxAckSends: 7,
		AllowDrop: true, CheckDeadlock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("expected a violation (safety alias or ack-alias deadlock)")
	}
}

func TestGBNCloneIndependence(t *testing.T) {
	tx, rx := NewGoBackN(4, 2).New(nil, nil)
	tx.SendMsg("a")
	tc := tx.Clone()
	tc.SendMsg("b")
	if tx.StateKey() == tc.StateKey() {
		t.Fatal("sender clone shares state")
	}
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "a"})
	rc := rx.Clone()
	rc.DeliverPkt(ioa.Packet{Header: "s1", Payload: "b"})
	if rx.StateKey() == rc.StateKey() {
		t.Fatal("receiver clone shares state")
	}
}

func TestGBNGarbageIgnored(t *testing.T) {
	tx, rx := NewGoBackN(4, 2).New(nil, nil)
	tx.SendMsg("a")
	tx.DeliverPkt(ioa.Packet{Header: "??"})
	tx.DeliverPkt(ioa.Packet{Header: "tZZ"})
	if !tx.Busy() {
		t.Fatal("garbage ack accepted")
	}
	rx.DeliverPkt(ioa.Packet{Header: "sQQ"})
	rx.DeliverPkt(ioa.Packet{Header: "x"})
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("garbage delivered: %v", got)
	}
}
