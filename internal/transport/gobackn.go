package transport

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// GoBackN is the classic go-back-N transport protocol: the receiver keeps
// no reorder buffer and accepts only the next in-order segment,
// acknowledging cumulatively; the sender keeps a window of W unacknowledged
// segments and retransmits from the oldest.
//
// As with SlidingWindow, the sequence-number space S is the header budget:
// S = 0 gives unbounded private headers (safe over non-FIFO virtual
// links), while any finite S is breakable — a stale segment or a stale
// cumulative ack from a previous wrap aliases into the current window.
// The ack aliasing produces a *liveness* failure (the sender slides past a
// segment the receiver never accepted and the connection deadlocks), which
// the explorer's CheckDeadlock option detects.
type GoBackN struct {
	// S is the sequence-number space size; 0 means unbounded.
	S int
	// W is the send window; values < 1 are treated as 1.
	W int
}

var _ protocol.Protocol = GoBackN{}

// NewGoBackN returns a go-back-N transport descriptor.
func NewGoBackN(s, w int) GoBackN {
	if w < 1 {
		w = 1
	}
	return GoBackN{S: s, W: w}
}

// Name implements protocol.Protocol.
func (p GoBackN) Name() string {
	if p.S == 0 {
		return fmt.Sprintf("gbn-unbounded-w%d", p.W)
	}
	return fmt.Sprintf("gbn-s%d-w%d", p.S, p.W)
}

// HeaderBound implements protocol.Protocol.
func (p GoBackN) HeaderBound() (int, bool) {
	if p.S == 0 {
		return 0, false
	}
	return 2 * p.S, true
}

// New implements protocol.Protocol (the genies are unused).
func (p GoBackN) New(_, _ channel.Genie) (protocol.Transmitter, protocol.Receiver) {
	w := p.W
	if w < 1 {
		w = 1
	}
	return &gbnSender{s: p.S, w: w}, &gbnReceiver{s: p.S}
}

// gbnSender keeps the in-flight window and slides on cumulative acks.
type gbnSender struct {
	s, w  int
	base  int
	next  int
	segs  []segment // unacked window, segs[0].seq == base
	queue []string
	rr    int
}

var _ protocol.Transmitter = (*gbnSender)(nil)

func (t *gbnSender) SendMsg(payload string) {
	t.queue = append(t.queue, payload)
	t.admit()
}

func (t *gbnSender) admit() {
	for len(t.segs) < t.w && len(t.queue) > 0 {
		t.segs = append(t.segs, segment{seq: t.next, payload: t.queue[0]})
		t.queue = t.queue[1:]
		t.next++
	}
}

// DeliverPkt handles a cumulative ack "t<h>": everything up to the
// acknowledged sequence number is confirmed. With S > 0 the sender resolves
// h to the *largest* candidate in [base−1, base+W−1] congruent to h — the
// standard wrap resolution, and exactly where a stale ack from an earlier
// wrap slides the window past segments the receiver never accepted.
func (t *gbnSender) DeliverPkt(p ioa.Packet) {
	if !strings.HasPrefix(p.Header, "t") {
		return
	}
	h, err := strconv.Atoi(p.Header[1:])
	if err != nil {
		return
	}
	upTo := -1
	if t.s == 0 {
		if h >= t.base-1 && h < t.base+len(t.segs) {
			upTo = h
		}
	} else {
		for c := t.base - 1 + len(t.segs); c >= t.base; c-- {
			if c >= 0 && c%t.s == h {
				upTo = c
				break
			}
		}
	}
	for len(t.segs) > 0 && t.segs[0].seq <= upTo {
		t.segs = t.segs[1:]
		t.base++
	}
	t.admit()
}

func (t *gbnSender) NextPkt() (ioa.Packet, bool) {
	n := len(t.segs)
	if n == 0 {
		return ioa.Packet{}, false
	}
	idx := t.rr % n
	t.rr = (idx + 1) % n
	seg := t.segs[idx]
	return ioa.Packet{Header: dataHeader(t.s, seg.seq), Payload: seg.payload}, true
}

func (t *gbnSender) Busy() bool { return len(t.segs) > 0 || len(t.queue) > 0 }

func (t *gbnSender) Clone() protocol.Transmitter {
	c := *t
	c.segs = append([]segment(nil), t.segs...)
	c.queue = append([]string(nil), t.queue...)
	return &c
}

func (t *gbnSender) StateKey() string {
	var b strings.Builder
	b.WriteString("gbnS{s=")
	b.WriteString(strconv.Itoa(t.s))
	b.WriteString(" w=")
	b.WriteString(strconv.Itoa(t.w))
	b.WriteString(" base=")
	b.WriteString(strconv.Itoa(t.base))
	b.WriteString(" next=")
	b.WriteString(strconv.Itoa(t.next))
	b.WriteString(" rr=")
	b.WriteString(strconv.Itoa(t.rr))
	b.WriteString(" segs=")
	for _, sg := range t.segs {
		b.WriteString(strconv.Itoa(sg.seq))
		b.WriteByte(':')
		b.WriteString(sg.payload)
		b.WriteByte(';')
	}
	b.WriteString(" q=")
	b.WriteString(strings.Join(t.queue, "|"))
	b.WriteByte('}')
	return b.String()
}

func (t *gbnSender) StateSize() int {
	n := len(strconv.Itoa(t.base)) + len(strconv.Itoa(t.next))
	for _, sg := range t.segs {
		n += len(sg.payload) + 1
	}
	for _, q := range t.queue {
		n += len(q)
	}
	return n
}

// gbnReceiver accepts only the next in-order segment and acknowledges
// cumulatively.
type gbnReceiver struct {
	s         int
	next      int
	delivered []string
	acks      []ioa.Packet
}

var _ protocol.Receiver = (*gbnReceiver)(nil)

func (r *gbnReceiver) DeliverPkt(p ioa.Packet) {
	if !strings.HasPrefix(p.Header, "s") {
		return
	}
	h, err := strconv.Atoi(p.Header[1:])
	if err != nil {
		return
	}
	accept := false
	if r.s == 0 {
		accept = h == r.next
	} else {
		// Wrap resolution: a header matching the expected sequence number
		// mod S is taken as the expected segment — the alias a stale copy
		// from a previous wrap exploits.
		accept = h == r.next%r.s
	}
	if accept {
		r.delivered = append(r.delivered, p.Payload)
		r.next++
	}
	// Cumulative acknowledgement of the last in-order segment; nothing to
	// acknowledge before the first acceptance.
	if r.next > 0 {
		r.acks = append(r.acks, ioa.Packet{Header: ackHeader(r.s, r.next-1)})
	}
}

func (r *gbnReceiver) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *gbnReceiver) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *gbnReceiver) Clone() protocol.Receiver {
	c := *r
	c.delivered = append([]string(nil), r.delivered...)
	c.acks = append([]ioa.Packet(nil), r.acks...)
	return &c
}

func (r *gbnReceiver) StateKey() string {
	var b strings.Builder
	b.WriteString("gbnR{s=")
	b.WriteString(strconv.Itoa(r.s))
	b.WriteString(" next=")
	b.WriteString(strconv.Itoa(r.next))
	b.WriteString(" pendAcks=")
	b.WriteString(strconv.Itoa(len(r.acks)))
	b.WriteString(" pendDeliv=")
	b.WriteString(strconv.Itoa(len(r.delivered)))
	b.WriteByte('}')
	return b.String()
}

func (r *gbnReceiver) StateSize() int {
	n := len(strconv.Itoa(r.next)) + len(r.acks)
	for _, d := range r.delivered {
		n += len(d)
	}
	return n
}
