// Package transport extends the reproduction one layer up, following the
// paper's closing remark: "all our results can be extended to transport
// layer protocols over non-FIFO virtual links."
//
// A virtual link — a host-to-host path through a datagram network — has
// exactly the non-FIFO channel semantics of internal/channel: segments may
// be delayed arbitrarily and arrive out of order. The transport protocol
// here is a sliding window protocol with window W and a configurable
// sequence-number space:
//
//   - S = 0: unbounded sequence numbers. Every segment has a private
//     header, stale copies are harmless, and the protocol is safe over
//     arbitrary non-FIFO behaviour — the transport analogue of the naive
//     data link protocol, paying Θ(n) headers.
//   - S > 0: sequence numbers mod S, i.e. a bounded header alphabet of 2S
//     (data + ack). Theorem 3.1's dichotomy now bites at the transport
//     layer: a stale segment from ≥ S sequence numbers ago aliases into
//     the receive window and is accepted as new. The exhaustive explorer
//     and the replay adversary both find the violation.
//
// The endpoints implement the same Transmitter/Receiver interfaces as the
// data link protocols, so every harness in this repo — the runner, the
// adversaries, the explorer, the boundness measurements — applies
// unchanged.
package transport

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// SlidingWindow describes a sliding window transport protocol.
//
// For a finite sequence space choose S ≥ 2W (the classical selective-repeat
// sizing); with S < 2W two in-flight segments can share a header and the
// receiver's wrap resolution is ambiguous even without an adversary. The
// constructor does not enforce this: undersized spaces are exactly the
// misconfigurations the explorer demonstrates broken.
type SlidingWindow struct {
	// S is the sequence-number space size; 0 means unbounded.
	S int
	// W is the window: the maximum number of unacknowledged segments in
	// flight. Must be ≥ 1; values < 1 are treated as 1.
	W int
}

var _ protocol.Protocol = SlidingWindow{}

// New returns a sliding window transport descriptor.
func New(s, w int) SlidingWindow {
	if w < 1 {
		w = 1
	}
	return SlidingWindow{S: s, W: w}
}

// Name implements protocol.Protocol.
func (p SlidingWindow) Name() string {
	if p.S == 0 {
		return fmt.Sprintf("swindow-unbounded-w%d", p.W)
	}
	return fmt.Sprintf("swindow-s%d-w%d", p.S, p.W)
}

// HeaderBound implements protocol.Protocol: S data headers plus S ack
// headers when bounded.
func (p SlidingWindow) HeaderBound() (int, bool) {
	if p.S == 0 {
		return 0, false
	}
	return 2 * p.S, true
}

// New implements protocol.Protocol. The genies are ignored: the sliding
// window protocol uses no channel oracle (with S > 0 that is exactly why it
// is unsafe here).
func (p SlidingWindow) New(_, _ channel.Genie) (protocol.Transmitter, protocol.Receiver) {
	w := p.W
	if w < 1 {
		w = 1
	}
	return &swSender{s: p.S, w: w}, &swReceiver{s: p.S, w: w}
}

func dataHeader(s, seq int) string {
	if s > 0 {
		seq %= s
	}
	return "s" + strconv.Itoa(seq)
}

func ackHeader(s, seq int) string {
	if s > 0 {
		seq %= s
	}
	return "t" + strconv.Itoa(seq)
}

// segment is one in-flight transport segment at the sender.
type segment struct {
	seq     int
	payload string
	acked   bool
}

// swSender is the sending host: admit up to W segments, retransmit unacked
// segments round-robin, slide the window on cumulative acknowledgement.
type swSender struct {
	s, w  int
	base  int // sequence number of the oldest in-flight segment
	next  int // next sequence number to assign
	segs  []segment
	queue []string
	rr    int // round-robin cursor over unacked segments
}

var _ protocol.Transmitter = (*swSender)(nil)

func (t *swSender) SendMsg(payload string) {
	t.queue = append(t.queue, payload)
	t.admit()
}

func (t *swSender) admit() {
	for len(t.segs) < t.w && len(t.queue) > 0 {
		t.segs = append(t.segs, segment{seq: t.next, payload: t.queue[0]})
		t.queue = t.queue[1:]
		t.next++
	}
}

func (t *swSender) DeliverPkt(p ioa.Packet) {
	if !strings.HasPrefix(p.Header, "t") {
		return
	}
	h, err := strconv.Atoi(p.Header[1:])
	if err != nil {
		return
	}
	// Acknowledge the first unacked in-flight segment whose header
	// matches. With S > 0 this resolution aliases across wraps — stale
	// acks can confirm the wrong segment, one of the two unsafety vectors.
	for i := range t.segs {
		if t.segs[i].acked {
			continue
		}
		seq := t.segs[i].seq
		if (t.s == 0 && seq == h) || (t.s > 0 && seq%t.s == h) {
			t.segs[i].acked = true
			break
		}
	}
	// Slide the window past acknowledged prefixes.
	for len(t.segs) > 0 && t.segs[0].acked {
		t.segs = t.segs[1:]
		t.base++
	}
	t.admit()
}

func (t *swSender) NextPkt() (ioa.Packet, bool) {
	n := len(t.segs)
	if n == 0 {
		return ioa.Packet{}, false
	}
	// Round-robin over unacked segments so every in-flight segment keeps
	// being retransmitted (liveness under loss).
	for i := 0; i < n; i++ {
		idx := (t.rr + i) % n
		if t.segs[idx].acked {
			continue
		}
		t.rr = (idx + 1) % n
		seg := t.segs[idx]
		return ioa.Packet{Header: dataHeader(t.s, seg.seq), Payload: seg.payload}, true
	}
	return ioa.Packet{}, false
}

func (t *swSender) Busy() bool { return len(t.segs) > 0 || len(t.queue) > 0 }

func (t *swSender) Clone() protocol.Transmitter {
	c := *t
	c.segs = append([]segment(nil), t.segs...)
	c.queue = append([]string(nil), t.queue...)
	return &c
}

func (t *swSender) StateKey() string {
	var b strings.Builder
	b.WriteString("swS{s=")
	b.WriteString(strconv.Itoa(t.s))
	b.WriteString(" w=")
	b.WriteString(strconv.Itoa(t.w))
	b.WriteString(" base=")
	b.WriteString(strconv.Itoa(t.base))
	b.WriteString(" next=")
	b.WriteString(strconv.Itoa(t.next))
	b.WriteString(" rr=")
	b.WriteString(strconv.Itoa(t.rr))
	b.WriteString(" segs=")
	for _, sg := range t.segs {
		b.WriteString(strconv.Itoa(sg.seq))
		b.WriteByte(':')
		b.WriteString(sg.payload)
		b.WriteByte(':')
		b.WriteString(strconv.FormatBool(sg.acked))
		b.WriteByte(';')
	}
	b.WriteString(" q=")
	b.WriteString(strings.Join(t.queue, "|"))
	b.WriteByte('}')
	return b.String()
}

func (t *swSender) StateSize() int {
	n := len(strconv.Itoa(t.base)) + len(strconv.Itoa(t.next))
	for _, sg := range t.segs {
		n += len(sg.payload) + 1
	}
	for _, q := range t.queue {
		n += len(q)
	}
	return n
}

// swReceiver is the receiving host: buffer out-of-order segments within the
// receive window, deliver in order, acknowledge every accepted or duplicate
// segment.
type swReceiver struct {
	s, w      int
	next      int // lowest sequence number not yet delivered
	buf       segBuf
	delivered []string
	acks      []ioa.Packet
}

// segBuf is the receive window's reorder buffer: out-of-order segments
// keyed by sequence number, kept as a seq-sorted slice so state keys render
// deterministically without map iteration.
type segBuf []bufSeg

type bufSeg struct {
	seq     int
	payload string
}

func (sb segBuf) search(seq int) int {
	return sort.Search(len(sb), func(i int) bool { return sb[i].seq >= seq })
}

func (sb segBuf) get(seq int) (string, bool) {
	if i := sb.search(seq); i < len(sb) && sb[i].seq == seq {
		return sb[i].payload, true
	}
	return "", false
}

// put inserts the segment, keeping the first payload on duplicates.
func (sb *segBuf) put(seq int, payload string) {
	s := *sb
	i := s.search(seq)
	if i < len(s) && s[i].seq == seq {
		return
	}
	s = append(s, bufSeg{})
	copy(s[i+1:], s[i:])
	s[i] = bufSeg{seq: seq, payload: payload}
	*sb = s
}

func (sb *segBuf) del(seq int) {
	s := *sb
	if i := s.search(seq); i < len(s) && s[i].seq == seq {
		*sb = append(s[:i], s[i+1:]...)
	}
}

func (sb segBuf) clone() segBuf {
	if len(sb) == 0 {
		return nil
	}
	out := make(segBuf, len(sb))
	copy(out, sb)
	return out
}

var _ protocol.Receiver = (*swReceiver)(nil)

func (r *swReceiver) DeliverPkt(p ioa.Packet) {
	if !strings.HasPrefix(p.Header, "s") {
		return
	}
	h, err := strconv.Atoi(p.Header[1:])
	if err != nil {
		return
	}
	seq, inWindow, stale := r.resolve(h)
	switch {
	case inWindow:
		r.buf.put(seq, p.Payload)
		r.acks = append(r.acks, ioa.Packet{Header: ackHeader(r.s, seq)})
		for {
			payload, ok := r.buf.get(r.next)
			if !ok {
				break
			}
			r.buf.del(r.next)
			r.delivered = append(r.delivered, payload)
			r.next++
		}
	case stale:
		// A duplicate of something already delivered: re-acknowledge so a
		// sender whose ack was lost can slide, never deliver.
		r.acks = append(r.acks, ioa.Packet{Header: "t" + strconv.Itoa(h)})
	}
}

// resolve maps a received data header to a sequence number. With unbounded
// numbering the header is the sequence number. With mod-S numbering the
// receiver must guess which wrap the segment belongs to; it picks the
// lowest in-window candidate — the standard resolution, and exactly the
// aliasing a non-FIFO virtual link exploits: a stale segment from S (or
// more) sequence numbers ago resolves into the current window.
func (r *swReceiver) resolve(h int) (seq int, inWindow, stale bool) {
	if r.s == 0 {
		switch {
		case h >= r.next && h < r.next+r.w:
			return h, true, false
		case h < r.next:
			return h, false, true
		default:
			return h, false, false
		}
	}
	for seq := r.next; seq < r.next+r.w; seq++ {
		if seq%r.s == h {
			return seq, true, false
		}
	}
	// No in-window candidate: header of an already-delivered wrap.
	return 0, false, true
}

func (r *swReceiver) NextPkt() (ioa.Packet, bool) {
	if len(r.acks) == 0 {
		return ioa.Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

func (r *swReceiver) TakeDelivered() []string {
	out := r.delivered
	r.delivered = nil
	return out
}

func (r *swReceiver) Clone() protocol.Receiver {
	c := *r
	c.buf = r.buf.clone()
	c.delivered = append([]string(nil), r.delivered...)
	c.acks = append([]ioa.Packet(nil), r.acks...)
	return &c
}

func (r *swReceiver) StateKey() string {
	var b strings.Builder
	b.WriteString("swR{s=")
	b.WriteString(strconv.Itoa(r.s))
	b.WriteString(" w=")
	b.WriteString(strconv.Itoa(r.w))
	b.WriteString(" next=")
	b.WriteString(strconv.Itoa(r.next))
	b.WriteString(" buf=")
	for _, sg := range r.buf {
		b.WriteString(strconv.Itoa(sg.seq))
		b.WriteByte(':')
		b.WriteString(sg.payload)
		b.WriteByte(';')
	}
	b.WriteString(" pendAcks=")
	b.WriteString(strconv.Itoa(len(r.acks)))
	b.WriteString(" pendDeliv=")
	b.WriteString(strconv.Itoa(len(r.delivered)))
	b.WriteByte('}')
	return b.String()
}

func (r *swReceiver) StateSize() int {
	n := len(strconv.Itoa(r.next)) + len(r.acks)
	for _, sg := range r.buf {
		n += len(sg.payload) + 1
	}
	for _, d := range r.delivered {
		n += len(d)
	}
	return n
}
