package transport

// Adapter: the transport endpoints as auditable protocol.Protocol instances.
//
// SlidingWindow and GoBackN already satisfy protocol.Protocol, but their
// endpoints' StateKeys carry *absolute* sequence numbers (base, next, the
// seqs of in-flight segments), which grow without bound with the message
// count. The static boundness auditor (internal/analyze, `nfvet audit`)
// enumerates joint control states by ControlKey, so on the native endpoints
// it never reaches a fixpoint — even for the finite-sequence-space variants
// whose control space *is* finite, the ones Theorem 5.1 is about.
//
// Adapt wraps a transport descriptor so its endpoints additionally implement
// protocol.ControlKeyer with the bisimulation quotient that makes the audit
// terminate, and protocol.Bounded with the declaration the audit checks:
//
//   - For S > 0 every behavioural decision of both endpoint families reads
//     sequence numbers only modulo S: data headers are "s<seq mod S>", ack
//     headers "t<seq mod S>", the sliding-window receiver resolves a header
//     against [next, next+W) by congruence mod S, the go-back-N sender
//     resolves a cumulative ack against its window by congruence mod S.
//     The quotient therefore replaces every absolute sequence number with
//     its residue mod S (window positions stay relative), which is finite:
//     equal control keys imply identical observable behaviour and
//     control-key-equal successors under every input. The differential
//     conformance harness (internal/conformance) checks the adapter itself
//     is behaviour-preserving by replaying recorded schedules through both
//     forms.
//   - For S = 0 there is no quotient — the header alphabet is the sequence
//     numbers themselves — and the adapter declares the protocol
//     state-unbounded, which the audit corroborates (CONSISTENT) by running
//     into its state budget.
//
// The adapted protocol keeps the native Name, HeaderBound and StateKey, so
// every existing harness (runner, adversaries, fuzzer, replayer) treats the
// two forms interchangeably; only the audit sees the difference.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// Adapted wraps a transport protocol descriptor with the audit-facing
// declarations. Construct with Adapt or MustAdapt.
type Adapted struct {
	inner    protocol.Protocol
	s        int
	declared protocol.Bounds
}

var (
	_ protocol.Protocol = Adapted{}
	_ protocol.Bounded  = Adapted{}
)

// Adapt wraps a SlidingWindow or GoBackN descriptor as an auditable
// protocol: endpoints gain the mod-S ControlKey quotient (for S > 0), and
// the protocol declares the Bounds the quotient implies — state-bounded with
// a 2S-header alphabet for finite sequence spaces, state-unbounded for S = 0.
func Adapt(p protocol.Protocol) (Adapted, error) {
	switch d := p.(type) {
	case SlidingWindow:
		return Adapted{inner: d, s: d.S, declared: deriveBounds(d.S)}, nil
	case GoBackN:
		return Adapted{inner: d, s: d.S, declared: deriveBounds(d.S)}, nil
	case Adapted:
		return d, nil
	default:
		return Adapted{}, fmt.Errorf("transport: cannot adapt %T (want SlidingWindow or GoBackN)", p)
	}
}

// MustAdapt is Adapt for statically known descriptors; it panics on the
// error Adapt would return.
func MustAdapt(p protocol.Protocol) Adapted {
	a, err := Adapt(p)
	if err != nil {
		panic(err)
	}
	return a
}

// deriveBounds is the declaration the mod-S quotient implies. No k_t/k_r
// ceilings are declared: the observed counts depend on the audit's occupancy
// cap (see `nfvet audit -sweep`), and Bounds ceilings are cap-independent
// claims. The header alphabet is exactly the 2S data+ack headers.
func deriveBounds(s int) protocol.Bounds {
	if s == 0 {
		return protocol.Bounds{StateBounded: false}
	}
	return protocol.Bounds{StateBounded: true, Headers: 2 * s}
}

// WithBounds returns a copy declaring b instead of the derived bounds. This
// is the what-if hook for audit fixtures: declaring tighter ceilings than
// the quotient implies (or the wrong boundedness class) must FAIL the audit.
func (a Adapted) WithBounds(b protocol.Bounds) Adapted {
	a.declared = b
	return a
}

// Name implements protocol.Protocol: the native name, so traces, corpora and
// audit reports refer to one protocol regardless of form.
func (a Adapted) Name() string { return a.inner.Name() }

// HeaderBound implements protocol.Protocol.
func (a Adapted) HeaderBound() (int, bool) { return a.inner.HeaderBound() }

// Bounds implements protocol.Bounded.
func (a Adapted) Bounds() protocol.Bounds { return a.declared }

// New implements protocol.Protocol: native endpoints wrapped with the
// ControlKey quotient.
func (a Adapted) New(dataGenie, ackGenie channel.Genie) (protocol.Transmitter, protocol.Receiver) {
	t, r := a.inner.New(dataGenie, ackGenie)
	return &adaptedT{native: t, s: a.s}, &adaptedR{native: r, s: a.s}
}

// adaptedT delegates every Transmitter action to the native endpoint and
// adds the ControlKey quotient.
type adaptedT struct {
	native protocol.Transmitter
	s      int
}

var (
	_ protocol.Transmitter  = (*adaptedT)(nil)
	_ protocol.ControlKeyer = (*adaptedT)(nil)
)

func (t *adaptedT) SendMsg(payload string)      { t.native.SendMsg(payload) }
func (t *adaptedT) DeliverPkt(p ioa.Packet)     { t.native.DeliverPkt(p) }
func (t *adaptedT) NextPkt() (ioa.Packet, bool) { return t.native.NextPkt() }
func (t *adaptedT) Busy() bool                  { return t.native.Busy() }
func (t *adaptedT) StateKey() string            { return t.native.StateKey() }
func (t *adaptedT) StateSize() int              { return t.native.StateSize() }
func (t *adaptedT) Clone() protocol.Transmitter {
	return &adaptedT{native: t.native.Clone(), s: t.s}
}

// ControlKey implements the transmitter-side quotient. The proof obligation
// (two states with equal ControlKey behave identically and have equal-key
// successors) rests on the window invariant both senders maintain: in-flight
// segments carry consecutive sequence numbers starting at base, and
// next == base + len(segs), so base's residue plus the per-segment residues
// determine every future header and every ack resolution.
func (t *adaptedT) ControlKey() string {
	if t.s == 0 {
		return t.native.StateKey()
	}
	switch n := t.native.(type) {
	case *swSender:
		return senderQuotient("swS/", n.s, n.w, n.base, n.rr, n.segs, n.queue, true)
	case *gbnSender:
		return senderQuotient("gbnS/", n.s, n.w, n.base, n.rr, n.segs, n.queue, false)
	default:
		return t.native.StateKey()
	}
}

// senderQuotient renders the shared sender control key: base mod S, the
// in-flight segments as (seq mod S, payload[, acked]) triples, the
// round-robin cursor and the unadmitted queue. acked is rendered only for
// the sliding-window sender; go-back-N slides cumulatively and keeps no
// per-segment ack marks.
func senderQuotient(prefix string, s, w, base, rr int, segs []segment, queue []string, acked bool) string {
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteString("{s=")
	b.WriteString(strconv.Itoa(s))
	b.WriteString(" w=")
	b.WriteString(strconv.Itoa(w))
	b.WriteString(" base%=")
	b.WriteString(strconv.Itoa(base % s))
	b.WriteString(" rr=")
	b.WriteString(strconv.Itoa(rr))
	b.WriteString(" segs=")
	for _, sg := range segs {
		b.WriteString(strconv.Itoa(sg.seq % s))
		b.WriteByte(':')
		b.WriteString(sg.payload)
		if acked {
			b.WriteByte(':')
			b.WriteString(strconv.FormatBool(sg.acked))
		}
		b.WriteByte(';')
	}
	b.WriteString(" q=")
	b.WriteString(strings.Join(queue, "|"))
	b.WriteByte('}')
	return b.String()
}

// adaptedR is the receiver-side analogue of adaptedT.
type adaptedR struct {
	native protocol.Receiver
	s      int
}

var (
	_ protocol.Receiver     = (*adaptedR)(nil)
	_ protocol.ControlKeyer = (*adaptedR)(nil)
)

func (r *adaptedR) DeliverPkt(p ioa.Packet)     { r.native.DeliverPkt(p) }
func (r *adaptedR) NextPkt() (ioa.Packet, bool) { return r.native.NextPkt() }
func (r *adaptedR) TakeDelivered() []string     { return r.native.TakeDelivered() }
func (r *adaptedR) StateKey() string            { return r.native.StateKey() }
func (r *adaptedR) StateSize() int              { return r.native.StateSize() }
func (r *adaptedR) Clone() protocol.Receiver {
	return &adaptedR{native: r.native.Clone(), s: r.s}
}

// ControlKey implements the receiver-side quotient: next's residue mod S
// (the only way resolve/accept read it), the reorder buffer as
// window-relative offsets, and the pending ack and delivery queues verbatim
// — ack headers are already mod-S reduced, and both queues are drained by
// every driver in the repo, so neither reintroduces unbounded state.
//
// The go-back-N receiver needs one extra bit: whether any segment has been
// accepted yet. Its cumulative re-ack fires only once next > 0, so next=0
// and next=S (both residue 0) would otherwise be merged despite behaving
// differently on an out-of-order delivery.
func (r *adaptedR) ControlKey() string {
	if r.s == 0 {
		return r.native.StateKey()
	}
	switch n := r.native.(type) {
	case *swReceiver:
		var b strings.Builder
		b.WriteString("swR/{s=")
		b.WriteString(strconv.Itoa(n.s))
		b.WriteString(" w=")
		b.WriteString(strconv.Itoa(n.w))
		b.WriteString(" next%=")
		b.WriteString(strconv.Itoa(n.next % n.s))
		b.WriteString(" buf=")
		for _, sg := range n.buf {
			b.WriteString(strconv.Itoa(sg.seq - n.next)) // window-relative offset
			b.WriteByte(':')
			b.WriteString(sg.payload)
			b.WriteByte(';')
		}
		quotientQueues(&b, n.acks, n.delivered)
		return b.String()
	case *gbnReceiver:
		var b strings.Builder
		b.WriteString("gbnR/{s=")
		b.WriteString(strconv.Itoa(n.s))
		b.WriteString(" next%=")
		b.WriteString(strconv.Itoa(n.next % n.s))
		b.WriteString(" started=")
		b.WriteString(strconv.FormatBool(n.next > 0))
		quotientQueues(&b, n.acks, n.delivered)
		return b.String()
	default:
		return r.native.StateKey()
	}
}

// quotientQueues renders the pending ack headers and undelivered payloads
// into a receiver control key and closes the brace.
func quotientQueues(b *strings.Builder, acks []ioa.Packet, delivered []string) {
	b.WriteString(" acks=")
	for _, a := range acks {
		b.WriteString(a.Header)
		b.WriteByte(';')
	}
	b.WriteString(" deliv=")
	b.WriteString(strings.Join(delivered, "|"))
	b.WriteByte('}')
}

// Registry returns the default adapted transport protocols keyed by name —
// the instances `nfvet audit -all` certifies and CI fuzz-smokes. The
// classical selective-repeat sizing S = 2W covers both endpoint families
// (go-back-N's bufferless receiver keeps its joint space small enough to
// also carry the S = 8 sizing within the default state budget), and the
// unbounded sliding window is the transport layer's CONSISTENT specimen —
// the Theorem 3.1 dichotomy, one audit table row apart. Arbitrary sizings
// resolve through Parse.
func Registry() map[string]protocol.Protocol {
	ps := []protocol.Protocol{
		MustAdapt(New(4, 2)),
		MustAdapt(New(0, 2)),
		MustAdapt(NewGoBackN(4, 2)),
		MustAdapt(NewGoBackN(8, 4)),
	}
	m := make(map[string]protocol.Protocol, len(ps))
	for _, p := range ps {
		m[p.Name()] = p
	}
	return m
}

// Names returns the default registry names in sorted order.
func Names() []string {
	m := Registry()
	out := make([]string, 0, len(m))
	//nfvet:allow maprange (keys are collected then sorted before use)
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Parse resolves a transport protocol name — the Name() forms
// "swindow-s<S>-w<W>", "swindow-unbounded-w<W>", "gbn-s<S>-w<W>",
// "gbn-unbounded-w<W>" — to its adapted protocol. ok is false when the name
// is not a transport name; a malformed transport-shaped name also returns
// ok=false and falls through to the caller's unknown-name error.
func Parse(name string) (protocol.Protocol, bool) {
	var rest string
	var mk func(s, w int) protocol.Protocol
	switch {
	case strings.HasPrefix(name, "swindow-"):
		rest = strings.TrimPrefix(name, "swindow-")
		mk = func(s, w int) protocol.Protocol { return MustAdapt(New(s, w)) }
	case strings.HasPrefix(name, "gbn-"):
		rest = strings.TrimPrefix(name, "gbn-")
		mk = func(s, w int) protocol.Protocol { return MustAdapt(NewGoBackN(s, w)) }
	default:
		return nil, false
	}
	var s int
	if u, ok := strings.CutPrefix(rest, "unbounded-"); ok {
		rest = u
	} else {
		sPart, wPart, ok := strings.Cut(rest, "-")
		if !ok {
			return nil, false
		}
		digits, ok := strings.CutPrefix(sPart, "s")
		if !ok {
			return nil, false
		}
		n, err := strconv.Atoi(digits)
		if err != nil || n <= 0 {
			return nil, false
		}
		s, rest = n, wPart
	}
	digits, ok := strings.CutPrefix(rest, "w")
	if !ok {
		return nil, false
	}
	w, err := strconv.Atoi(digits)
	if err != nil || w < 1 {
		return nil, false
	}
	return mk(s, w), true
}
