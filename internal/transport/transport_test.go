package transport

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
)

func TestNameAndHeaderBound(t *testing.T) {
	p := New(8, 4)
	if p.Name() != "swindow-s8-w4" {
		t.Fatalf("Name = %q", p.Name())
	}
	k, bounded := p.HeaderBound()
	if k != 16 || !bounded {
		t.Fatalf("HeaderBound = %d,%t", k, bounded)
	}
	u := New(0, 4)
	if u.Name() != "swindow-unbounded-w4" {
		t.Fatalf("Name = %q", u.Name())
	}
	if _, bounded := u.HeaderBound(); bounded {
		t.Fatal("unbounded variant should report unbounded")
	}
	if New(0, 0).W != 1 {
		t.Fatal("W should clamp to 1")
	}
}

func runBatch(t *testing.T, p protocol.Protocol, payloads []string, data, ack channel.Policy) sim.Result {
	t.Helper()
	r := sim.NewRunner(sim.Config{
		Protocol:    p,
		DataPolicy:  data,
		AckPolicy:   ack,
		RecordTrace: true,
	})
	for _, pl := range payloads {
		r.SubmitMsg(pl)
	}
	if err := r.RunToIdle(); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return r.Result()
}

func payloads(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("msg-%d", i)
	}
	return out
}

func TestDeliveryInOrderReliable(t *testing.T) {
	for _, p := range []protocol.Protocol{New(0, 1), New(0, 4), New(8, 2), New(16, 8)} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			want := payloads(10)
			res := runBatch(t, p, want, nil, nil)
			if len(res.Delivered) != 10 {
				t.Fatalf("delivered %v", res.Delivered)
			}
			for i := range want {
				if res.Delivered[i] != want[i] {
					t.Fatalf("delivered %v, want %v", res.Delivered, want)
				}
			}
			if err := ioa.CheckValid(res.Trace); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
		})
	}
}

func TestDeliveryUnderLoss(t *testing.T) {
	for _, p := range []protocol.Protocol{New(0, 4), New(32, 4)} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res := runBatch(t, p, payloads(8),
				channel.DropEvery(3), channel.DropEvery(4))
			if len(res.Delivered) != 8 {
				t.Fatalf("delivered %d of 8", len(res.Delivered))
			}
			if err := ioa.CheckValid(res.Trace); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
		})
	}
}

func TestUnboundedSafeUnderProbabilisticDelay(t *testing.T) {
	// Delayed (stale) segments accumulate; the unbounded variant must
	// stay safe because every segment has a private sequence number.
	res := runBatch(t, New(0, 4), payloads(12),
		channel.Probabilistic(0.3, rand.New(rand.NewSource(5))),
		channel.Probabilistic(0.2, rand.New(rand.NewSource(6))))
	if len(res.Delivered) != 12 {
		t.Fatalf("delivered %d of 12", len(res.Delivered))
	}
	if err := ioa.CheckValid(res.Trace); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestWindowPipelines(t *testing.T) {
	// With window W, up to W segments are admitted before any ack: the
	// first W data sends must have distinct headers.
	tx, _ := New(0, 4).New(nil, nil)
	for i := 0; i < 6; i++ {
		tx.SendMsg(fmt.Sprintf("m%d", i))
	}
	seen := make(map[string]bool)
	for i := 0; i < 4; i++ {
		p, ok := tx.NextPkt()
		if !ok {
			t.Fatal("expected enabled output")
		}
		seen[p.Header] = true
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 distinct in-flight headers, got %v", seen)
	}
}

func TestSenderSlidesOnCumulativePrefix(t *testing.T) {
	tx, _ := New(0, 2).New(nil, nil)
	tx.SendMsg("a")
	tx.SendMsg("b")
	tx.SendMsg("c") // queued; window is 2
	// Ack segment 1 first: window cannot slide yet (0 unacked).
	tx.DeliverPkt(ioa.Packet{Header: "t1"})
	if !strings.Contains(tx.StateKey(), "base=0") {
		t.Fatalf("window slid past an unacked segment: %s", tx.StateKey())
	}
	// Ack segment 0: slides past both, admits "c".
	tx.DeliverPkt(ioa.Packet{Header: "t0"})
	if !strings.Contains(tx.StateKey(), "base=2") {
		t.Fatalf("window did not slide: %s", tx.StateKey())
	}
	p, ok := tx.NextPkt()
	if !ok || p.Payload != "c" {
		t.Fatalf("expected c admitted, got %v,%t", p, ok)
	}
}

func TestReceiverBuffersOutOfOrder(t *testing.T) {
	_, rx := New(0, 3).New(nil, nil)
	rx.DeliverPkt(ioa.Packet{Header: "s2", Payload: "c"})
	rx.DeliverPkt(ioa.Packet{Header: "s1", Payload: "b"})
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("premature delivery: %v", got)
	}
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "a"})
	got := rx.TakeDelivered()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("delivered %v", got)
	}
}

func TestReceiverIgnoresBeyondWindow(t *testing.T) {
	_, rx := New(0, 2).New(nil, nil)
	rx.DeliverPkt(ioa.Packet{Header: "s5", Payload: "x"}) // far future
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("delivered %v", got)
	}
	if _, ok := rx.NextPkt(); ok {
		t.Fatal("future segment should not be acked")
	}
}

func TestReceiverReAcksStale(t *testing.T) {
	_, rx := New(0, 2).New(nil, nil)
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "a"})
	rx.TakeDelivered()
	drainAcks(rx)
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "a"}) // stale duplicate
	a, ok := rx.NextPkt()
	if !ok || a.Header != "t0" {
		t.Fatalf("stale segment should be re-acked: %v,%t", a, ok)
	}
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("stale duplicate delivered: %v", got)
	}
}

func drainAcks(rx protocol.Receiver) {
	for {
		if _, ok := rx.NextPkt(); !ok {
			return
		}
	}
}

// TestBoundedSeqSpaceAliasing demonstrates the wrap attack by hand: with
// S=2, W=1, a stale copy of segment 0 aliases onto segment 2.
func TestBoundedSeqSpaceAliasing(t *testing.T) {
	_, rx := New(2, 1).New(nil, nil)
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "m0"})
	rx.DeliverPkt(ioa.Packet{Header: "s1", Payload: "m1"})
	rx.TakeDelivered()
	// Receiver now expects seq 2, whose header is s0 again. Replay m0.
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "m0"})
	got := rx.TakeDelivered()
	if len(got) != 1 || got[0] != "m0" {
		t.Fatalf("expected the alias bug to deliver the stale payload, got %v", got)
	}
}

// TestExplorerBreaksBoundedVariants is the transport-layer Theorem 3.1:
// every finite sequence space falls to exhaustive channel nondeterminism.
func TestExplorerBreaksBoundedVariants(t *testing.T) {
	for _, p := range []SlidingWindow{New(2, 1), New(3, 1)} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			rep, err := explore.Explore(p, explore.Config{
				Messages: p.S + 1, MaxDataSends: 2 * (p.S + 1), MaxAckSends: 2 * (p.S + 1),
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violation == nil {
				t.Fatalf("bounded sequence space should be breakable: %+v", rep)
			}
			if err := ioa.CheckSafety(rep.Counterexample); err == nil {
				t.Fatal("counterexample passes checkers")
			}
		})
	}
}

// TestExplorerUnboundedSafe: the unbounded variant survives the same
// exhaustive adversary.
func TestExplorerUnboundedSafe(t *testing.T) {
	rep, err := explore.Explore(New(0, 2), explore.Config{
		Messages: 3, MaxDataSends: 6, MaxAckSends: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("unbounded swindow should be safe:\n%s", rep.Counterexample)
	}
	if !rep.Exhausted {
		t.Fatal("space should be exhausted")
	}
}

func TestCloneIndependence(t *testing.T) {
	tx, rx := New(4, 2).New(nil, nil)
	tx.SendMsg("a")
	tc := tx.Clone()
	tc.SendMsg("b")
	if tx.StateKey() == tc.StateKey() {
		t.Fatal("sender clone shares state")
	}
	rx.DeliverPkt(ioa.Packet{Header: "s0", Payload: "a"})
	rc := rx.Clone()
	rc.DeliverPkt(ioa.Packet{Header: "s1", Payload: "b"})
	if rx.StateKey() == rc.StateKey() {
		t.Fatal("receiver clone shares state")
	}
}

func TestGarbageIgnored(t *testing.T) {
	tx, rx := New(4, 2).New(nil, nil)
	tx.SendMsg("a")
	tx.DeliverPkt(ioa.Packet{Header: "zz"})
	tx.DeliverPkt(ioa.Packet{Header: "tXY"})
	if !tx.Busy() {
		t.Fatal("garbage ack accepted")
	}
	rx.DeliverPkt(ioa.Packet{Header: "??"})
	rx.DeliverPkt(ioa.Packet{Header: "sAB"})
	if got := rx.TakeDelivered(); len(got) != 0 {
		t.Fatalf("garbage delivered: %v", got)
	}
}

func TestHeadersGrowOnlyWhenUnbounded(t *testing.T) {
	resU := runBatch(t, New(0, 2), payloads(8), nil, nil)
	if resU.Metrics.HeadersUsed < 16 {
		t.Fatalf("unbounded variant headers = %d, want ≥ 16", resU.Metrics.HeadersUsed)
	}
	resB := runBatch(t, New(4, 2), payloads(8), nil, nil)
	if resB.Metrics.HeadersUsed > 8 {
		t.Fatalf("bounded variant headers = %d, want ≤ 8", resB.Metrics.HeadersUsed)
	}
}
