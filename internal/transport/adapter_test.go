package transport_test

// External test package: the adapter's behavioural tests drive the adapted
// endpoints through sim.Runner and replay, which import transport — an
// internal test package would cycle.

import (
	"strconv"
	"testing"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/transport"
)

func TestAdaptRejectsForeignProtocols(t *testing.T) {
	if _, err := transport.Adapt(protocol.NewAltBit()); err == nil {
		t.Fatal("Adapt(altbit) succeeded; want an error for non-transport protocols")
	}
	a := transport.MustAdapt(transport.New(4, 2))
	if b, err := transport.Adapt(a); err != nil || b.Name() != a.Name() {
		t.Fatalf("Adapt(Adapted) = %v, %v; want idempotent pass-through", b, err)
	}
}

func TestAdaptedDeclaresDerivedBounds(t *testing.T) {
	cases := []struct {
		p       protocol.Protocol
		bounded bool
		headers int
	}{
		{transport.New(4, 2), true, 8},
		{transport.NewGoBackN(6, 3), true, 12},
		{transport.New(0, 2), false, 0},
		{transport.NewGoBackN(0, 1), false, 0},
	}
	for _, tc := range cases {
		a := transport.MustAdapt(tc.p)
		b := a.Bounds()
		if b.StateBounded != tc.bounded || b.Headers != tc.headers {
			t.Errorf("%s: Bounds() = %+v, want StateBounded=%v Headers=%d",
				a.Name(), b, tc.bounded, tc.headers)
		}
		if a.Name() != tc.p.Name() {
			t.Errorf("adapted name %q != native name %q", a.Name(), tc.p.Name())
		}
		gotK, gotB := a.HeaderBound()
		wantK, wantB := tc.p.HeaderBound()
		if gotK != wantK || gotB != wantB {
			t.Errorf("%s: HeaderBound() = (%d,%v), native (%d,%v)", a.Name(), gotK, gotB, wantK, wantB)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, name := range []string{
		"swindow-s4-w2", "swindow-s8-w4", "swindow-unbounded-w2",
		"gbn-s4-w2", "gbn-s6-w3", "gbn-unbounded-w1",
	} {
		p, ok := transport.Parse(name)
		if !ok {
			t.Errorf("Parse(%q) not recognised", name)
			continue
		}
		if p.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, p.Name())
		}
		if _, isAdapted := p.(transport.Adapted); !isAdapted {
			t.Errorf("Parse(%q) returned %T, want transport.Adapted", name, p)
		}
	}
	for _, name := range []string{
		"altbit", "swindow", "swindow-s0-w2", "swindow-sx-w2", "swindow-s4",
		"swindow-s4-w0", "gbn-unbounded", "gbn-s4-wx", "swindow-unbounded-w-1",
	} {
		if p, ok := transport.Parse(name); ok {
			t.Errorf("Parse(%q) = %v, want rejection", name, p.Name())
		}
	}
	for _, name := range transport.Names() {
		if _, ok := transport.Parse(name); !ok {
			t.Errorf("registry name %q does not Parse", name)
		}
	}
}

// TestAdaptedDelegatesStateKey pins the interchangeability contract: the
// adapted endpoints expose the native StateKey bytes, so coverage signals,
// joint-state checks and divergence comparisons cannot tell the forms apart.
func TestAdaptedDelegatesStateKey(t *testing.T) {
	for _, mk := range []protocol.Protocol{transport.New(4, 2), transport.NewGoBackN(4, 2)} {
		a := transport.MustAdapt(mk)
		nt, nr := mk.New(channel.NoGenie{}, channel.NoGenie{})
		at, ar := a.New(channel.NoGenie{}, channel.NoGenie{})
		for i := 0; i < 3; i++ {
			payload := "m" + strconv.Itoa(i)
			nt.SendMsg(payload)
			at.SendMsg(payload)
			if p, ok := nt.NextPkt(); ok {
				ap, aok := at.NextPkt()
				if !aok || ap != p {
					t.Fatalf("step %d: native sent %v, adapted sent %v (ok=%v)", i, p, ap, aok)
				}
				nr.DeliverPkt(p)
				ar.DeliverPkt(p)
			}
			if nt.StateKey() != at.StateKey() {
				t.Fatalf("%s transmitter StateKey diverged:\n native %s\n adapted %s", a.Name(), nt.StateKey(), at.StateKey())
			}
			if nr.StateKey() != ar.StateKey() {
				t.Fatalf("%s receiver StateKey diverged:\n native %s\n adapted %s", a.Name(), nr.StateKey(), ar.StateKey())
			}
		}
	}
}

// jointControlKeys drives n messages to idle over reliable channels and
// returns the joint control key after each confirmed message.
func jointControlKeys(t *testing.T, p protocol.Protocol, n int) []string {
	t.Helper()
	r := sim.NewRunner(sim.Config{Protocol: p})
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if err := r.RunMessage("m"); err != nil {
			t.Fatalf("%s: message %d: %v", p.Name(), i, err)
		}
		keys = append(keys, protocol.ControlKeyOf(r.T)+"|"+protocol.ControlKeyOf(r.R))
	}
	return keys
}

// TestControlKeyWrapInvariance is the finiteness property the audit relies
// on: after a full trip around the sequence space the adapted endpoints'
// control keys revisit earlier values (period S), while the native StateKeys
// grow forever with the absolute counters.
func TestControlKeyWrapInvariance(t *testing.T) {
	for _, a := range []transport.Adapted{
		transport.MustAdapt(transport.New(4, 2)),
		transport.MustAdapt(transport.NewGoBackN(4, 2)),
	} {
		const s = 4
		keys := jointControlKeys(t, a, 3*s)
		for i := s; i < len(keys); i++ {
			if keys[i] != keys[i-s] {
				t.Errorf("%s: control key after message %d differs from message %d:\n %s\n %s",
					a.Name(), i, i-s, keys[i], keys[i-s])
			}
		}
		// The quotient is doing real work: the native keys never repeat.
		native := jointControlKeys(t, transport.New(4, 2), 3*s)
		seen := make(map[string]bool)
		for i, k := range native {
			if seen[k] {
				t.Fatalf("native swindow StateKey repeated at message %d; the adapter's quotient would be vacuous", i)
			}
			seen[k] = true
		}
	}
}

// driveRecordedKeys replays one deterministic lossy schedule against a fresh
// endpoint pair and records the joint ControlKey and StateKey after every
// driver operation.
func driveRecordedKeys(t *testing.T, p protocol.Protocol) []string {
	t.Helper()
	r := sim.NewRunner(sim.Config{
		Protocol:   p,
		DataPolicy: channel.DropEvery(3),
		AckPolicy:  channel.DropEvery(4),
	})
	var keys []string
	snap := func() {
		keys = append(keys,
			protocol.ControlKeyOf(r.T)+"|"+protocol.ControlKeyOf(r.R)+"|"+r.T.StateKey()+"|"+r.R.StateKey())
	}
	for i := 0; i < 6; i++ {
		r.SubmitMsg("m" + strconv.Itoa(i))
		snap()
		for steps := 0; r.T.Busy() && steps < 200; steps++ {
			r.StepTransmit()
			r.DrainAcks()
			snap()
		}
	}
	return keys
}

// TestControlKeyReplayStability is the adapter layer's determinism
// regression (satellite of the statekey lint): two replays of the same
// schedule must produce byte-identical ControlKey/StateKey sequences for
// every registered transport protocol. Clock reads, map iteration or
// randomness in a key implementation would diverge here.
func TestControlKeyReplayStability(t *testing.T) {
	reg := transport.Registry()
	for _, name := range transport.Names() {
		p := reg[name]
		first := driveRecordedKeys(t, p)
		second := driveRecordedKeys(t, p)
		if len(first) != len(second) {
			t.Fatalf("%s: replays recorded %d vs %d key snapshots", name, len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: key snapshot %d unstable across replays:\n %s\n %s", name, i, first[i], second[i])
			}
		}
	}
}
