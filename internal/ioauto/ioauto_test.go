package ioauto

import (
	"strings"
	"testing"

	"repro/internal/ioa"
)

// --- framework ---

func TestComposeRejectsSharedOutputs(t *testing.T) {
	a := NewUser(1)
	b := NewUser(1) // both own send_msg
	if _, err := Compose("bad", a, b); err == nil {
		t.Fatal("two owners of send_msg accepted")
	}
}

func TestComposeRejectsSharedInternal(t *testing.T) {
	ch1 := NewChannel(NonFIFOKind, false, []string{"d0"}, 1) // internal lose(d0)
	ch2 := NewChannel(NonFIFOKind, false, []string{"d0"}, 1)
	if _, err := Compose("bad", ch1, ch2); err == nil {
		t.Fatal("shared internal action accepted")
	}
}

func TestComposeEmpty(t *testing.T) {
	if _, err := Compose("empty"); err == nil {
		t.Fatal("empty composition accepted")
	}
}

func TestCompositeSignatureClasses(t *testing.T) {
	sys, err := Compose("sys", NewUser(1), NewAltBitT(),
		NewChannel(NonFIFOKind, false, []string{"d0", "d1"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	sig := sys.Signature()
	if sig["send_msg"] != Output {
		t.Fatalf("send_msg class = %v", sig["send_msg"])
	}
	if sig["send(d0)"] != Output { // owned by altbitT
		t.Fatalf("send(d0) class = %v", sig["send(d0)"])
	}
	if sig["lose(d0)"] != Internal {
		t.Fatalf("lose(d0) class = %v", sig["lose(d0)"])
	}
	if sig["recv'(a0)"] != Input { // nobody owns the ack channel here
		t.Fatalf("recv'(a0) class = %v", sig["recv'(a0)"])
	}
}

func TestCompositeApplyRoutesToAllParts(t *testing.T) {
	sys, err := Compose("sys", NewUser(2), NewAltBitT(), NewDLMonitor(3))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Init()
	s, err = s.Apply("send_msg")
	if err != nil {
		t.Fatal(err)
	}
	// user advanced, transmitter pending, monitor counted.
	key := s.Key()
	for _, want := range []string{"user{1/2}", "pend=1", "sm=1"} {
		if !strings.Contains(key, want) {
			t.Fatalf("composite key missing %q: %s", want, key)
		}
	}
}

func TestCompositeApplyUnknownAction(t *testing.T) {
	sys, _ := Compose("sys", NewUser(1))
	if _, err := sys.Init().Apply("nope"); err == nil {
		t.Fatal("unknown action accepted")
	}
}

func TestPartState(t *testing.T) {
	sys, _ := Compose("sys", NewUser(1), NewDLMonitor(1))
	s := sys.Init()
	if p, ok := PartState(s, 0); !ok || !strings.HasPrefix(p.Key(), "user") {
		t.Fatalf("PartState(0) = %v, %t", p, ok)
	}
	if _, ok := PartState(s, 5); ok {
		t.Fatal("out-of-range part accepted")
	}
	if _, ok := PartState(NewUser(1).Init(), 0); ok {
		t.Fatal("non-composite state accepted")
	}
}

func TestReachFindsInitialMatch(t *testing.T) {
	res, err := Reach(NewUser(1), func(State) bool { return true }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found == nil || len(res.Found) != 0 {
		t.Fatalf("initial match should give an empty path: %+v", res)
	}
}

func TestReachExhaustsUser(t *testing.T) {
	res, err := Reach(NewUser(3), func(State) bool { return false }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.States != 4 {
		t.Fatalf("user(3) has 4 states: %+v", res)
	}
}

// --- channel automata ---

func TestNonFIFOChannelReordering(t *testing.T) {
	ch := NewChannel(NonFIFOKind, false, []string{"d0", "d1"}, 4)
	s := ch.Init()
	var err error
	for _, a := range []string{"send(d0)", "send(d1)"} {
		if s, err = s.Apply(a); err != nil {
			t.Fatal(err)
		}
	}
	// Both headers deliverable: reordering possible.
	en := strings.Join(s.Enabled(), " ")
	if !strings.Contains(en, "recv(d0)") || !strings.Contains(en, "recv(d1)") {
		t.Fatalf("enabled = %q", en)
	}
	// Deliver out of order.
	if s, err = s.Apply("recv(d1)"); err != nil {
		t.Fatal(err)
	}
	if s, err = s.Apply("recv(d0)"); err != nil {
		t.Fatal(err)
	}
	if len(s.Enabled()) != 0 {
		t.Fatalf("drained channel still enabled: %v", s.Enabled())
	}
}

func TestFIFOChannelHeadOnly(t *testing.T) {
	ch := NewChannel(FIFOKind, false, []string{"d0", "d1"}, 4)
	s, _ := ch.Init().Apply("send(d0)")
	s, _ = s.Apply("send(d1)")
	en := strings.Join(s.Enabled(), " ")
	if strings.Contains(en, "recv(d1)") {
		t.Fatalf("FIFO channel offered a non-head packet: %q", en)
	}
	if _, err := s.Apply("recv(d1)"); err == nil {
		t.Fatal("FIFO accepted out-of-order delivery")
	}
}

func TestChannelCapacityDropsSilently(t *testing.T) {
	ch := NewChannel(NonFIFOKind, false, []string{"d0"}, 1)
	s, _ := ch.Init().Apply("send(d0)")
	s2, err := s.Apply("send(d0)") // beyond capacity: input-enabled no-op
	if err != nil {
		t.Fatal(err)
	}
	if s2.Key() != s.Key() {
		t.Fatal("over-capacity send should be a no-op")
	}
}

func TestChannelLossAction(t *testing.T) {
	ch := NewChannel(NonFIFOKind, false, []string{"d0"}, 2)
	s, _ := ch.Init().Apply("send(d0)")
	s, err := s.Apply("lose(d0)")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Enabled()) != 0 {
		t.Fatal("lost packet still deliverable")
	}
	if _, err := s.Apply("recv(d0)"); err == nil {
		t.Fatal("delivery of a lost packet accepted")
	}
}

func TestChannelErrors(t *testing.T) {
	ch := NewChannel(NonFIFOKind, false, []string{"d0"}, 2)
	s := ch.Init()
	if _, err := s.Apply("send(zz)"); err == nil {
		t.Fatal("unknown header accepted")
	}
	if _, err := s.Apply("garbage"); err == nil {
		t.Fatal("malformed action accepted")
	}
}

// --- the headline: the paper's system, in the original formalism ---

func TestAltBitViolationReachableOverNonFIFO(t *testing.T) {
	sys, err := NewAltBitSystem(NonFIFOKind, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reach(sys, Violated, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found == nil {
		t.Fatalf("the DL violation must be reachable over the non-FIFO channel (states=%d)", res.States)
	}
	// The witness replays a stale d0: two recv(d0) with three receive_msg
	// against two send_msg.
	path := strings.Join(res.Found, " ")
	if strings.Count(path, "recv(d0)") < 2 {
		t.Fatalf("witness should replay d0: %s", path)
	}
	if strings.Count(path, "receive_msg") != strings.Count(path, "send_msg")+1 {
		t.Fatalf("witness should have rm = sm + 1: %s", path)
	}
}

func TestAltBitSafeOverFIFOAutomata(t *testing.T) {
	sys, err := NewAltBitSystem(FIFOKind, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reach(sys, Violated, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != nil {
		t.Fatalf("violation reachable over FIFO: %v", res.Found)
	}
	if !res.Exhausted {
		t.Fatalf("FIFO system should be exhaustible (states=%d)", res.States)
	}
}

func TestAltBitWitnessIsShortest(t *testing.T) {
	sys, err := NewAltBitSystem(NonFIFOKind, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reach(sys, Violated, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// BFS witness: hand-counted minimum is 13 actions (2 submissions, 3
	// data sends incl. the duplicate, 3 data deliveries, 2 acks each way
	// counted once, 3 deliveries to the user).
	if len(res.Found) > 16 {
		t.Fatalf("witness suspiciously long (%d): %v", len(res.Found), res.Found)
	}
}

func TestMonitorDetectsOverDelivery(t *testing.T) {
	m := NewDLMonitor(2)
	s := m.Init()
	var err error
	if s, err = s.Apply("receive_msg"); err != nil {
		t.Fatal(err)
	}
	if !Violated(s) {
		t.Fatal("rm=1, sm=0 should violate")
	}
	// Violation is sticky.
	if s, err = s.Apply("send_msg"); err != nil {
		t.Fatal(err)
	}
	if !Violated(s) {
		t.Fatal("violation must be sticky")
	}
}

func TestUserAutomatonBounds(t *testing.T) {
	u := NewUser(1)
	s, err := u.Init().Apply("send_msg")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Enabled()) != 0 {
		t.Fatal("user should stop at its limit")
	}
	if _, err := s.Apply("send_msg"); err == nil {
		t.Fatal("over-limit send_msg accepted")
	}
}

func TestAltBitTAutomaton(t *testing.T) {
	a := NewAltBitT()
	s, _ := a.Init().Apply("send_msg")
	if got := s.Enabled(); len(got) != 1 || got[0] != "send(d0)" {
		t.Fatalf("enabled = %v", got)
	}
	// Retransmission: applying the send leaves the state unchanged.
	s2, err := s.Apply("send(d0)")
	if err != nil || s2.Key() != s.Key() {
		t.Fatalf("send should be a self-loop: %v, %v", s2, err)
	}
	// Wrong-bit ack ignored; right-bit ack flips.
	s3, _ := s.Apply("recv'(a1)")
	if s3.Key() != s.Key() {
		t.Fatal("stale ack should be ignored")
	}
	s4, _ := s.Apply("recv'(a0)")
	if !strings.Contains(s4.Key(), "bit=1") || !strings.Contains(s4.Key(), "pend=0") {
		t.Fatalf("ack handling wrong: %s", s4.Key())
	}
	if _, err := s.Apply("send(d1)"); err == nil {
		t.Fatal("wrong-bit send accepted")
	}
}

func TestAltBitRAutomatonSaturation(t *testing.T) {
	r := NewAltBitR(1)
	s := r.Init()
	var err error
	for i := 0; i < 3; i++ {
		if s, err = s.Apply("recv(d0)"); err != nil {
			t.Fatal(err)
		}
	}
	// Counters saturated at 1 despite 3 receipts.
	if !strings.Contains(s.Key(), "a0=1") || !strings.Contains(s.Key(), "del=1") {
		t.Fatalf("saturation broken: %s", s.Key())
	}
	if _, err := s.Apply("send'(a1)"); err == nil {
		t.Fatal("disabled ack accepted")
	}
}

func TestWitnessTraceRecheckedByCheckers(t *testing.T) {
	sys, err := NewAltBitSystem(NonFIFOKind, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reach(sys, Violated, 1<<20)
	if err != nil || res.Found == nil {
		t.Fatalf("no witness: %v", err)
	}
	tr, err := WitnessTrace(res.Found)
	if err != nil {
		t.Fatal(err)
	}
	// The witness must fail the independent trace checkers too: the
	// packet correspondence (PL1) holds — the channel automaton enforces
	// it — while the message correspondence (DL1) is violated.
	if err := ioa.CheckPL1(tr, ioa.TtoR); err != nil {
		t.Fatalf("witness PL1 t→r: %v", err)
	}
	if err := ioa.CheckPL1(tr, ioa.RtoT); err != nil {
		t.Fatalf("witness PL1 r→t: %v", err)
	}
	err = ioa.CheckSafety(tr)
	if err == nil {
		t.Fatalf("checkers accepted the witness:\n%s", tr)
	}
	if v, _ := ioa.AsViolation(err); v.Property != "DL1" {
		t.Fatalf("expected DL1, got %v", err)
	}
}

func TestWitnessTraceUnknownAction(t *testing.T) {
	if _, err := WitnessTrace([]string{"teleport(x)"}); err == nil {
		t.Fatal("unknown action accepted")
	}
}

func TestWitnessTraceLossOmitted(t *testing.T) {
	tr, err := WitnessTrace([]string{"send(d0)", "lose(d0)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1 {
		t.Fatalf("loss should leave no external event: %v", tr)
	}
}
