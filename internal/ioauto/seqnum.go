package ioauto

import (
	"fmt"
	"sort"
	"strings"
)

// The naive sequence-number protocol as I/O automata. For a *fixed* number
// of messages n its alphabet is finite — data headers d0..d(n−1) and acks
// a0..a(n−1) — so the composed system is finite-state and the protocol can
// be *verified* (not just tested) safe over the unbounded-adversary
// non-FIFO channel by exhausting the reachable states: the formal
// counterpart of Theorem 3.1's "pay n headers and you escape".

// NewSeqNumT returns the naive transmitter automaton for n messages:
// inputs send_msg and recv'(a0..a(n−1)); outputs send(d0..d(n−1)).
func NewSeqNumT(n int) Automaton {
	if n < 1 {
		n = 1
	}
	return &snTAut{n: n}
}

type snTAut struct{ n int }

func (a *snTAut) Name() string { return "seqnumT" }

func (a *snTAut) Signature() map[string]Class {
	sig := map[string]Class{"send_msg": Input}
	for i := 0; i < a.n; i++ {
		sig[fmt.Sprintf("recv'(a%d)", i)] = Input
		sig[fmt.Sprintf("send(d%d)", i)] = Output
	}
	return sig
}

func (a *snTAut) Init() State { return snTState{n: a.n} }

type snTState struct {
	n       int
	seq     int // current (unconfirmed) sequence number
	pending int // accepted, unconfirmed messages
}

func (s snTState) Key() string { return fmt.Sprintf("snT{seq=%d pend=%d}", s.seq, s.pending) }

func (s snTState) Enabled() []string {
	if s.pending == 0 || s.seq >= s.n {
		return nil
	}
	return []string{fmt.Sprintf("send(d%d)", s.seq)}
}

func (s snTState) Apply(a string) (State, error) {
	switch {
	case a == "send_msg":
		n := s
		n.pending++
		return n, nil
	case strings.HasPrefix(a, "recv'(a"):
		var i int
		if _, err := fmt.Sscanf(a, "recv'(a%d)", &i); err != nil {
			return nil, fmt.Errorf("seqnumT: malformed %q", a)
		}
		if i == s.seq && s.pending > 0 {
			n := s
			n.seq++
			n.pending--
			return n, nil
		}
		return s, nil // stale ack ignored
	case strings.HasPrefix(a, "send(d"):
		var i int
		if _, err := fmt.Sscanf(a, "send(d%d)", &i); err != nil {
			return nil, fmt.Errorf("seqnumT: malformed %q", a)
		}
		if s.pending == 0 || i != s.seq {
			return nil, fmt.Errorf("seqnumT: %s not enabled in %s", a, s.Key())
		}
		return s, nil // retransmission self-loop
	default:
		return nil, fmt.Errorf("seqnumT: unknown action %q", a)
	}
}

// NewSeqNumR returns the naive receiver automaton for n messages: inputs
// recv(d0..d(n−1)); outputs send'(a0..a(n−1)) and receive_msg. Pending ack
// and delivery counters saturate at cap.
func NewSeqNumR(n, cap int) Automaton {
	if n < 1 {
		n = 1
	}
	if cap < 1 {
		cap = 1
	}
	return &snRAut{n: n, cap: cap}
}

type snRAut struct{ n, cap int }

func (a *snRAut) Name() string { return "seqnumR" }

func (a *snRAut) Signature() map[string]Class {
	sig := map[string]Class{"receive_msg": Output}
	for i := 0; i < a.n; i++ {
		sig[fmt.Sprintf("recv(d%d)", i)] = Input
		sig[fmt.Sprintf("send'(a%d)", i)] = Output
	}
	return sig
}

func (a *snRAut) Init() State {
	return snRState{n: a.n, cap: a.cap, ackPend: make([]int, a.n)}
}

type snRState struct {
	n, cap  int
	next    int
	ackPend []int
	deliver int
}

func (s snRState) clone() snRState {
	c := s
	c.ackPend = append([]int(nil), s.ackPend...)
	return c
}

func (s snRState) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "snR{next=%d del=%d ack=", s.next, s.deliver)
	for _, v := range s.ackPend {
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte('}')
	return b.String()
}

func (s snRState) Enabled() []string {
	var out []string
	for i, v := range s.ackPend {
		if v > 0 {
			out = append(out, fmt.Sprintf("send'(a%d)", i))
		}
	}
	if s.deliver > 0 {
		out = append(out, "receive_msg")
	}
	sort.Strings(out)
	return out
}

func (s snRState) Apply(a string) (State, error) {
	switch {
	case strings.HasPrefix(a, "recv(d"):
		var i int
		if _, err := fmt.Sscanf(a, "recv(d%d)", &i); err != nil {
			return nil, fmt.Errorf("seqnumR: malformed %q", a)
		}
		if i < 0 || i >= s.n {
			return nil, fmt.Errorf("seqnumR: header %d out of range", i)
		}
		n := s.clone()
		switch {
		case i == s.next:
			n.deliver = sat(n.deliver+1, s.cap)
			n.next++
			n.ackPend[i] = sat(n.ackPend[i]+1, s.cap)
		case i < s.next:
			// Stale duplicate: re-ack, never deliver.
			n.ackPend[i] = sat(n.ackPend[i]+1, s.cap)
		default:
			// Future header: the transmitter never runs ahead; a replayed
			// copy cannot exist either. Ignore.
		}
		return n, nil
	case strings.HasPrefix(a, "send'(a"):
		var i int
		if _, err := fmt.Sscanf(a, "send'(a%d)", &i); err != nil {
			return nil, fmt.Errorf("seqnumR: malformed %q", a)
		}
		if i < 0 || i >= s.n || s.ackPend[i] == 0 {
			return nil, fmt.Errorf("seqnumR: %s not enabled", a)
		}
		n := s.clone()
		n.ackPend[i]--
		return n, nil
	case a == "receive_msg":
		if s.deliver == 0 {
			return nil, fmt.Errorf("seqnumR: receive_msg not enabled")
		}
		n := s.clone()
		n.deliver--
		return n, nil
	default:
		return nil, fmt.Errorf("seqnumR: unknown action %q", a)
	}
}

// NewSeqNumSystem composes the full Section-2 system around the naive
// protocol for a fixed message count n, with channel capacity `capacity`.
func NewSeqNumSystem(kind ChannelKind, n, capacity int) (Automaton, error) {
	dataHeaders := make([]string, n)
	ackHeaders := make([]string, n)
	for i := 0; i < n; i++ {
		dataHeaders[i] = fmt.Sprintf("d%d", i)
		ackHeaders[i] = fmt.Sprintf("a%d", i)
	}
	return Compose("seqnum-system",
		NewUser(n),
		NewSeqNumT(n),
		NewChannel(kind, false, dataHeaders, capacity),
		NewChannel(kind, true, ackHeaders, capacity),
		NewSeqNumR(n, capacity),
		NewDLMonitor(n+1),
	)
}
