package ioauto

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/protocol"
)

// TestSeqNumVerifiedSafeNonFIFO is the formal headline: the naive protocol
// is *verified* safe — every reachable state of the composed system, under
// every channel behaviour (arbitrary reordering and loss, bounded
// capacity), avoids the DL-violation monitor state. This is Theorem 3.1's
// escape hatch ("pay the n headers"), proven by exhaustion in the [LT87]
// formalism for small n.
func TestSeqNumVerifiedSafeNonFIFO(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		sys, err := NewSeqNumSystem(NonFIFOKind, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Reach(sys, Violated, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != nil {
			t.Fatalf("n=%d: violation reachable: %v", n, res.Found)
		}
		if !res.Exhausted {
			t.Fatalf("n=%d: space not exhausted (states=%d)", n, res.States)
		}
		if res.States < 10 {
			t.Fatalf("n=%d: suspiciously few states: %d", n, res.States)
		}
	}
}

func TestSeqNumVerifiedSafeFIFO(t *testing.T) {
	sys, err := NewSeqNumSystem(FIFOKind, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reach(sys, Violated, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != nil || !res.Exhausted {
		t.Fatalf("FIFO: %+v", res)
	}
}

func TestSeqNumTAutomaton(t *testing.T) {
	a := NewSeqNumT(3)
	s, err := a.Init().Apply("send_msg")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Enabled(); len(got) != 1 || got[0] != "send(d0)" {
		t.Fatalf("enabled = %v", got)
	}
	// Retransmission self-loop.
	s2, err := s.Apply("send(d0)")
	if err != nil || s2.Key() != s.Key() {
		t.Fatalf("send self-loop: %v, %v", s2, err)
	}
	// Stale/future ack ignored; matching ack advances.
	s3, _ := s.Apply("recv'(a2)")
	if s3.Key() != s.Key() {
		t.Fatal("future ack should be ignored")
	}
	s4, _ := s.Apply("recv'(a0)")
	if !strings.Contains(s4.Key(), "seq=1") {
		t.Fatalf("ack should advance: %s", s4.Key())
	}
	if _, err := s.Apply("send(d1)"); err == nil {
		t.Fatal("out-of-sequence send accepted")
	}
}

func TestSeqNumRAutomaton(t *testing.T) {
	a := NewSeqNumR(3, 2)
	s, err := a.Init().Apply("recv(d0)")
	if err != nil {
		t.Fatal(err)
	}
	en := strings.Join(s.Enabled(), " ")
	if !strings.Contains(en, "receive_msg") || !strings.Contains(en, "send'(a0)") {
		t.Fatalf("enabled = %q", en)
	}
	// Stale duplicate re-acked, not delivered.
	s, _ = s.Apply("receive_msg")
	s, _ = s.Apply("send'(a0)")
	s, _ = s.Apply("recv(d0)")
	en = strings.Join(s.Enabled(), " ")
	if strings.Contains(en, "receive_msg") {
		t.Fatal("stale duplicate delivered")
	}
	if !strings.Contains(en, "send'(a0)") {
		t.Fatal("stale duplicate not re-acked")
	}
	// Future header ignored entirely.
	s2, _ := s.Apply("recv(d2)")
	if len(s2.Enabled()) != len(s.Enabled()) {
		t.Fatal("future header should be ignored")
	}
}

// --- differential tests: the three formulations agree ---

// TestDifferentialAltbitAcrossFormalisms: the concrete-endpoint explorer
// and the I/O automaton reachability agree on altbit: broken over
// non-FIFO, safe over FIFO.
func TestDifferentialAltbitAcrossFormalisms(t *testing.T) {
	// Formalism 1: concrete endpoints (internal/explore).
	exp, err := explore.Explore(protocol.NewAltBit(), explore.Config{
		Messages: 2, MaxDataSends: 4, MaxAckSends: 4, ConstantPayload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Formalism 2: I/O automata.
	sys, err := NewAltBitSystem(NonFIFOKind, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	aut, err := Reach(sys, Violated, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if (exp.Violation != nil) != (aut.Found != nil) {
		t.Fatalf("formalisms disagree on non-FIFO altbit: explore=%v ioauto=%v",
			exp.Violation, aut.Found)
	}
	if exp.Violation == nil {
		t.Fatal("both formalisms should find the violation")
	}

	// FIFO: both safe.
	expF, err := explore.Explore(protocol.NewAltBit(), explore.Config{
		Messages: 2, MaxDataSends: 4, MaxAckSends: 4, FIFO: true, AllowDrop: true, ConstantPayload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sysF, err := NewAltBitSystem(FIFOKind, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	autF, err := Reach(sysF, Violated, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if expF.Violation != nil || autF.Found != nil {
		t.Fatalf("formalisms should both be safe over FIFO: explore=%v ioauto=%v",
			expF.Violation, autF.Found)
	}
}

// TestDifferentialSeqnumAcrossFormalisms: both formulations verify the
// naive protocol safe over non-FIFO.
func TestDifferentialSeqnumAcrossFormalisms(t *testing.T) {
	exp, err := explore.Explore(protocol.NewSeqNum(), explore.Config{
		Messages: 2, MaxDataSends: 4, MaxAckSends: 4, ConstantPayload: true, AllowDrop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSeqNumSystem(NonFIFOKind, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	aut, err := Reach(sys, Violated, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Violation != nil || aut.Found != nil {
		t.Fatalf("both should be safe: explore=%v ioauto=%v", exp.Violation, aut.Found)
	}
	if !exp.Exhausted || !aut.Exhausted {
		t.Fatal("both spaces should be exhausted")
	}
}
