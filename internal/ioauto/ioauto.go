// Package ioauto is a small, faithful implementation of the I/O automaton
// model of Lynch & Tuttle [LT87] — the formalism the paper's model
// (via [LMF88]) is defined in.
//
// An automaton has an explicit action signature classifying each action as
// input, output or internal. Inputs are enabled in every state
// (input-enabledness); outputs and internal actions are locally controlled.
// Automata compose by synchronising on shared action names: an action owned
// (output/internal) by one component is an input to every other component
// whose signature contains it.
//
// The package provides composition with the [LT87] compatibility checks, a
// breadth-first reachability explorer over closed compositions, and — in
// model.go — the paper's system expressed in this formalism: channel
// automata (non-FIFO and FIFO), a user automaton, the alternating bit
// endpoint automata, and a data-link specification monitor whose error
// state is reachable exactly when DL1 is violated.
//
// Relationship to the rest of the repo: internal/explore walks the *same*
// kind of state space through the concrete protocol endpoints, and
// internal/spec checks traces after the fact. This package is the third,
// independent formulation — the textbook one — and the tests cross-validate
// its verdicts against the other two.
package ioauto

import (
	"errors"
	"fmt"
	"sort"
)

// Class classifies an action within an automaton's signature.
type Class int

const (
	// Input actions are controlled by the environment and enabled in
	// every state.
	Input Class = iota + 1
	// Output actions are locally controlled and externally visible.
	Output
	// Internal actions are locally controlled and invisible outside.
	Internal
)

func (c Class) String() string {
	switch c {
	case Input:
		return "input"
	case Output:
		return "output"
	case Internal:
		return "internal"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// State is one state of an automaton. States are immutable: Apply returns
// the successor.
type State interface {
	// Key canonically encodes the state.
	Key() string
	// Enabled lists the locally controlled actions enabled here, in
	// deterministic order.
	Enabled() []string
	// Apply performs a signature action and returns the successor state.
	// It must be total on inputs (input-enabledness) and must succeed for
	// every action listed by Enabled.
	Apply(action string) (State, error)
}

// Automaton couples a signature with an initial state.
type Automaton interface {
	// Name identifies the automaton in errors.
	Name() string
	// Signature maps every action of the automaton to its class.
	Signature() map[string]Class
	// Init returns the start state.
	Init() State
}

// Compose builds the [LT87] composition of the given automata. It returns
// an error if the parts are incompatible: an action owned (output or
// internal) by more than one part, or an internal action of one part
// appearing in another's signature.
func Compose(name string, parts ...Automaton) (Automaton, error) {
	if len(parts) == 0 {
		return nil, errors.New("ioauto: empty composition")
	}
	owner := make(map[string]int)
	for i, p := range parts {
		for a, cl := range p.Signature() {
			if cl == Input {
				continue
			}
			if j, taken := owner[a]; taken {
				return nil, fmt.Errorf("ioauto: action %q owned by both %s and %s",
					a, parts[j].Name(), p.Name())
			}
			owner[a] = i
		}
	}
	for i, p := range parts {
		for a, cl := range p.Signature() {
			if cl != Internal {
				continue
			}
			for j, q := range parts {
				if i == j {
					continue
				}
				if _, shares := q.Signature()[a]; shares {
					return nil, fmt.Errorf("ioauto: internal action %q of %s appears in %s",
						a, p.Name(), q.Name())
				}
			}
		}
	}
	sig := make(map[string]Class)
	for _, p := range parts {
		for a, cl := range p.Signature() {
			cur, seen := sig[a]
			switch {
			case !seen:
				sig[a] = cl
			case cl == Output || cur == Output:
				sig[a] = Output
			case cl == Internal || cur == Internal:
				sig[a] = Internal
			}
		}
	}
	return &composite{name: name, parts: parts, sig: sig}, nil
}

type composite struct {
	name  string
	parts []Automaton
	sig   map[string]Class
}

func (c *composite) Name() string                { return c.name }
func (c *composite) Signature() map[string]Class { return c.sig }

func (c *composite) Init() State {
	states := make([]State, len(c.parts))
	for i, p := range c.parts {
		states[i] = p.Init()
	}
	return &compState{comp: c, states: states}
}

type compState struct {
	comp   *composite
	states []State
}

func (s *compState) Key() string {
	key := ""
	for i, st := range s.states {
		if i > 0 {
			key += "\x1f"
		}
		key += st.Key()
	}
	return key
}

// Enabled lists the locally controlled actions of the composition: an
// action is enabled iff its owning part enables it (other parts receive it
// as an input, which never blocks).
func (s *compState) Enabled() []string {
	var out []string
	seen := make(map[string]bool)
	for _, st := range s.states {
		for _, a := range st.Enabled() {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Apply performs the action in every part whose signature contains it.
func (s *compState) Apply(action string) (State, error) {
	if _, ok := s.comp.sig[action]; !ok {
		return nil, fmt.Errorf("ioauto: action %q outside the composition's signature", action)
	}
	next := make([]State, len(s.states))
	copy(next, s.states)
	for i, p := range s.comp.parts {
		if _, ok := p.Signature()[action]; !ok {
			continue
		}
		ns, err := s.states[i].Apply(action)
		if err != nil {
			return nil, fmt.Errorf("ioauto: %s applying %q: %w", p.Name(), action, err)
		}
		next[i] = ns
	}
	return &compState{comp: s.comp, states: next}, nil
}

// Part exposes a component's current state within a composite state, for
// predicates over monitors.
func (s *compState) Part(i int) State { return s.states[i] }

// PartState extracts part i's state from a composite state produced by
// Compose(...).Init()/Apply chains. ok is false for non-composite states or
// out-of-range indices.
func PartState(s State, i int) (State, bool) {
	cs, ok := s.(*compState)
	if !ok || i < 0 || i >= len(cs.states) {
		return nil, false
	}
	return cs.states[i], true
}

// Result is the outcome of a reachability exploration.
type Result struct {
	// Found is non-nil when the predicate matched: the action path from
	// the initial state.
	Found []string
	// FoundState is the matching state's key.
	FoundState string
	// States is the number of distinct states visited.
	States int
	// Exhausted reports complete coverage of the reachable space within
	// the state budget.
	Exhausted bool
}

// Reach explores the reachable states of a closed automaton (one whose
// environment is already composed in) breadth-first, following every
// enabled locally-controlled action, until pred matches, the space is
// exhausted, or maxStates is hit. The returned path is a shortest witness.
func Reach(a Automaton, pred func(State) bool, maxStates int) (Result, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	type node struct {
		state  State
		parent int
		action string
	}
	init := a.Init()
	if pred(init) {
		return Result{Found: []string{}, FoundState: init.Key(), States: 1, Exhausted: true}, nil
	}
	arena := []node{{state: init, parent: -1}}
	seen := map[string]bool{init.Key(): true}
	for i := 0; i < len(arena); i++ {
		if len(arena) >= maxStates {
			return Result{States: len(arena)}, nil
		}
		cur := arena[i]
		for _, act := range cur.state.Enabled() {
			ns, err := cur.state.Apply(act)
			if err != nil {
				return Result{}, fmt.Errorf("ioauto: enabled action %q failed: %w", act, err)
			}
			if pred(ns) {
				// Reconstruct the action path.
				path := []string{act}
				for j := i; j >= 0 && arena[j].parent >= 0; j = arena[j].parent {
					path = append(path, arena[j].action)
				}
				for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
					path[l], path[r] = path[r], path[l]
				}
				return Result{
					Found:      path,
					FoundState: ns.Key(),
					States:     len(arena),
					Exhausted:  false,
				}, nil
			}
			k := ns.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			arena = append(arena, node{state: ns, parent: i, action: act})
		}
	}
	return Result{States: len(arena), Exhausted: true}, nil
}
