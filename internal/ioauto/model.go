package ioauto

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ioa"
)

// This file expresses the paper's system in the I/O automaton formalism,
// under the constant-payload convention (all messages identical), with
// explicitly finite alphabets and capacity-bounded channels so that the
// composed state space is finite.
//
// Action naming:
//
//	send_msg            user → transmitter (and the monitor listens)
//	receive_msg         receiver → environment (the monitor listens)
//	send(h) / recv(h)   the t→r data channel's input / output for header h
//	send'(h) / recv'(h) the r→t ack channel's input / output
//	lose(h) / lose'(h)  the channels' internal loss actions

// NewUser returns the environment automaton: it emits send_msg up to n
// times and does nothing else.
func NewUser(n int) Automaton { return &userAut{n: n} }

type userAut struct{ n int }

func (u *userAut) Name() string { return "user" }
func (u *userAut) Signature() map[string]Class {
	return map[string]Class{"send_msg": Output}
}
func (u *userAut) Init() State { return userState{limit: u.n} }

type userState struct{ sent, limit int }

func (s userState) Key() string { return fmt.Sprintf("user{%d/%d}", s.sent, s.limit) }
func (s userState) Enabled() []string {
	if s.sent < s.limit {
		return []string{"send_msg"}
	}
	return nil
}
func (s userState) Apply(a string) (State, error) {
	if a != "send_msg" {
		return nil, fmt.Errorf("user: unknown action %q", a)
	}
	if s.sent >= s.limit {
		return nil, fmt.Errorf("user: send_msg beyond limit")
	}
	return userState{sent: s.sent + 1, limit: s.limit}, nil
}

// ChannelKind selects the delivery discipline of a channel automaton.
type ChannelKind int

const (
	// NonFIFOKind delivers any in-transit packet (the paper's channel).
	NonFIFOKind ChannelKind = iota + 1
	// FIFOKind delivers only the oldest packet.
	FIFOKind
)

// NewChannel returns a capacity-bounded channel automaton. prime selects
// the primed (r→t) action family; headers is the finite packet alphabet.
// Sends beyond capacity are silently dropped (the automaton stays
// input-enabled), and every in-transit packet may be lost via an internal
// action — the unreliable physical layer of Section 2.1.
func NewChannel(kind ChannelKind, prime bool, headers []string, capacity int) Automaton {
	hs := append([]string(nil), headers...)
	sort.Strings(hs)
	if capacity < 1 {
		capacity = 1
	}
	return &chanAut{kind: kind, prime: prime, headers: hs, capacity: capacity}
}

type chanAut struct {
	kind     ChannelKind
	prime    bool
	headers  []string
	capacity int
}

func (c *chanAut) mark() string {
	if c.prime {
		return "'"
	}
	return ""
}

func (c *chanAut) Name() string {
	return fmt.Sprintf("chan%s(%v)", c.mark(), c.kind == FIFOKind)
}

func (c *chanAut) Signature() map[string]Class {
	sig := make(map[string]Class, 3*len(c.headers))
	for _, h := range c.headers {
		sig[fmt.Sprintf("send%s(%s)", c.mark(), h)] = Input
		sig[fmt.Sprintf("recv%s(%s)", c.mark(), h)] = Output
		sig[fmt.Sprintf("lose%s(%s)", c.mark(), h)] = Internal
	}
	return sig
}

func (c *chanAut) Init() State {
	return chanState{aut: c}
}

// chanState stores the transit contents: header indices in send order (the
// order only matters for FIFOKind).
type chanState struct {
	aut     *chanAut
	transit string // one byte per packet: 'a'+headerIndex
}

func (s chanState) Key() string {
	return fmt.Sprintf("chan%s{%s}", s.aut.mark(), s.transit)
}

func (s chanState) Enabled() []string {
	if len(s.transit) == 0 {
		return nil
	}
	var out []string
	add := func(idx byte) {
		h := s.aut.headers[idx-'a']
		out = append(out,
			fmt.Sprintf("recv%s(%s)", s.aut.mark(), h),
			fmt.Sprintf("lose%s(%s)", s.aut.mark(), h))
	}
	if s.aut.kind == FIFOKind {
		add(s.transit[0])
	} else {
		seen := make(map[byte]bool)
		for i := 0; i < len(s.transit); i++ {
			if !seen[s.transit[i]] {
				seen[s.transit[i]] = true
				add(s.transit[i])
			}
		}
	}
	sort.Strings(out)
	return out
}

func (s chanState) Apply(a string) (State, error) {
	verb, h, err := s.aut.parse(a)
	if err != nil {
		return nil, err
	}
	idx := -1
	for i, hh := range s.aut.headers {
		if hh == h {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("chan%s: unknown header %q", s.aut.mark(), h)
	}
	b := byte('a' + idx)
	switch verb {
	case "send":
		if len(s.transit) >= s.aut.capacity {
			return s, nil // full: silently dropped, input-enabledness kept
		}
		return chanState{aut: s.aut, transit: s.transit + string(b)}, nil
	case "recv", "lose":
		pos := -1
		if s.aut.kind == FIFOKind {
			if len(s.transit) > 0 && s.transit[0] == b {
				pos = 0
			}
		} else {
			pos = strings.IndexByte(s.transit, b)
		}
		if pos < 0 {
			return nil, fmt.Errorf("chan%s: %s(%s) with no such packet in transit", s.aut.mark(), verb, h)
		}
		return chanState{aut: s.aut, transit: s.transit[:pos] + s.transit[pos+1:]}, nil
	default:
		return nil, fmt.Errorf("chan%s: unknown verb %q", s.aut.mark(), verb)
	}
}

func (c *chanAut) parse(a string) (verb, header string, err error) {
	open := strings.IndexByte(a, '(')
	if open < 0 || !strings.HasSuffix(a, ")") {
		return "", "", fmt.Errorf("chan%s: malformed action %q", c.mark(), a)
	}
	verb = strings.TrimSuffix(a[:open], "'")
	return verb, a[open+1 : len(a)-1], nil
}

// NewAltBitT returns the alternating bit transmitter as an I/O automaton:
// inputs send_msg and recv'(a0/a1); outputs send(d0/d1). The pending
// counter stands in for the message queue (all messages identical).
func NewAltBitT() Automaton { return &abtAut{} }

type abtAut struct{}

func (a *abtAut) Name() string { return "altbitT" }
func (a *abtAut) Signature() map[string]Class {
	return map[string]Class{
		"send_msg":  Input,
		"recv'(a0)": Input,
		"recv'(a1)": Input,
		"send(d0)":  Output,
		"send(d1)":  Output,
	}
}
func (a *abtAut) Init() State { return abtState{} }

type abtState struct {
	bit     int
	pending int
}

func (s abtState) Key() string { return fmt.Sprintf("abT{bit=%d pend=%d}", s.bit, s.pending) }

func (s abtState) Enabled() []string {
	if s.pending == 0 {
		return nil
	}
	return []string{fmt.Sprintf("send(d%d)", s.bit)}
}

func (s abtState) Apply(a string) (State, error) {
	switch a {
	case "send_msg":
		return abtState{bit: s.bit, pending: s.pending + 1}, nil
	case "recv'(a0)", "recv'(a1)":
		ackBit := int(a[len(a)-2] - '0')
		if s.pending > 0 && ackBit == s.bit {
			return abtState{bit: s.bit ^ 1, pending: s.pending - 1}, nil
		}
		return s, nil // stale ack ignored (input-enabled)
	case "send(d0)", "send(d1)":
		if s.pending == 0 || int(a[len(a)-2]-'0') != s.bit {
			return nil, fmt.Errorf("altbitT: %s not enabled in %s", a, s.Key())
		}
		return s, nil // retransmission: state unchanged
	default:
		return nil, fmt.Errorf("altbitT: unknown action %q", a)
	}
}

// NewAltBitR returns the alternating bit receiver as an I/O automaton:
// inputs recv(d0/d1); outputs send'(a0/a1) and receive_msg. Pending ack
// and delivery counters saturate at cap to keep the state space finite.
func NewAltBitR(cap int) Automaton {
	if cap < 1 {
		cap = 1
	}
	return &abrAut{cap: cap}
}

type abrAut struct{ cap int }

func (a *abrAut) Name() string { return "altbitR" }
func (a *abrAut) Signature() map[string]Class {
	return map[string]Class{
		"recv(d0)":    Input,
		"recv(d1)":    Input,
		"send'(a0)":   Output,
		"send'(a1)":   Output,
		"receive_msg": Output,
	}
}
func (a *abrAut) Init() State { return abrState{cap: a.cap} }

type abrState struct {
	cap     int
	expect  int
	ackPend [2]int
	deliver int
}

func (s abrState) Key() string {
	return fmt.Sprintf("abR{exp=%d a0=%d a1=%d del=%d}", s.expect, s.ackPend[0], s.ackPend[1], s.deliver)
}

func (s abrState) Enabled() []string {
	var out []string
	for b := 0; b < 2; b++ {
		if s.ackPend[b] > 0 {
			out = append(out, fmt.Sprintf("send'(a%d)", b))
		}
	}
	if s.deliver > 0 {
		out = append(out, "receive_msg")
	}
	sort.Strings(out)
	return out
}

func sat(v, cap int) int {
	if v > cap {
		return cap
	}
	return v
}

func (s abrState) Apply(a string) (State, error) {
	switch a {
	case "recv(d0)", "recv(d1)":
		bit := int(a[len(a)-2] - '0')
		n := s
		n.ackPend[bit] = sat(n.ackPend[bit]+1, s.cap)
		if bit == s.expect {
			n.deliver = sat(n.deliver+1, s.cap)
			n.expect ^= 1
		}
		return n, nil
	case "send'(a0)", "send'(a1)":
		bit := int(a[len(a)-2] - '0')
		if s.ackPend[bit] == 0 {
			return nil, fmt.Errorf("altbitR: %s not enabled", a)
		}
		n := s
		n.ackPend[bit]--
		return n, nil
	case "receive_msg":
		if s.deliver == 0 {
			return nil, fmt.Errorf("altbitR: receive_msg not enabled")
		}
		n := s
		n.deliver--
		return n, nil
	default:
		return nil, fmt.Errorf("altbitR: unknown action %q", a)
	}
}

// NewDLMonitor returns the data link specification monitor: it observes
// send_msg and receive_msg and enters a sticky violation state when more
// messages have been received than sent — the paper's invalid execution
// rm = sm + 1. Counters saturate at cap.
func NewDLMonitor(cap int) Automaton {
	if cap < 1 {
		cap = 1
	}
	return &monAut{cap: cap}
}

type monAut struct{ cap int }

func (m *monAut) Name() string { return "dl-monitor" }
func (m *monAut) Signature() map[string]Class {
	return map[string]Class{"send_msg": Input, "receive_msg": Input}
}
func (m *monAut) Init() State { return monState{cap: m.cap} }

type monState struct {
	cap        int
	sent, rcvd int
	violated   bool
}

func (s monState) Key() string {
	if s.violated {
		return fmt.Sprintf("mon{VIOLATION sm=%d rm=%d}", s.sent, s.rcvd)
	}
	return fmt.Sprintf("mon{sm=%d rm=%d}", s.sent, s.rcvd)
}

func (s monState) Enabled() []string { return nil }

func (s monState) Apply(a string) (State, error) {
	n := s
	switch a {
	case "send_msg":
		n.sent = sat(n.sent+1, s.cap)
	case "receive_msg":
		n.rcvd = sat(n.rcvd+1, s.cap+1)
	default:
		return nil, fmt.Errorf("dl-monitor: unknown action %q", a)
	}
	if n.rcvd > n.sent {
		n.violated = true
	}
	return n, nil
}

// Violated reports whether a (possibly composite) state contains the
// monitor's violation flag.
func Violated(s State) bool { return strings.Contains(s.Key(), "VIOLATION") }

// NewAltBitSystem composes the full Section-2 system around the alternating
// bit protocol: user(n) ∥ A^t ∥ chan^{t→r} ∥ chan^{r→t} ∥ A^r ∥ monitor,
// with the chosen channel discipline and capacity.
func NewAltBitSystem(kind ChannelKind, messages, capacity int) (Automaton, error) {
	return Compose("altbit-system",
		NewUser(messages),
		NewAltBitT(),
		NewChannel(kind, false, []string{"d0", "d1"}, capacity),
		NewChannel(kind, true, []string{"a0", "a1"}, capacity),
		NewAltBitR(capacity),
		NewDLMonitor(messages+1),
	)
}

// WitnessTrace converts a Reach witness (a path of action names from the
// model automata) into an ioa.Trace under the constant-payload convention,
// so that a violation found in the I/O automaton formalism can be
// independently re-checked by the trace checkers of internal/ioa — the
// same cross-validation the concrete explorer's counterexamples get.
// Internal channel actions (lose/lose') leave no external event.
func WitnessTrace(path []string) (ioa.Trace, error) {
	var tr ioa.Trace
	sent, rcvd := 0, 0
	for _, a := range path {
		switch {
		case a == "send_msg":
			tr = append(tr, ioa.Event{Kind: ioa.SendMsg, Msg: ioa.Message{ID: sent, Payload: "m"}})
			sent++
		case a == "receive_msg":
			tr = append(tr, ioa.Event{Kind: ioa.ReceiveMsg, Msg: ioa.Message{ID: rcvd, Payload: "m"}})
			rcvd++
		case strings.HasPrefix(a, "lose"):
			// channel-internal: no external event
		case strings.HasPrefix(a, "send'("), strings.HasPrefix(a, "recv'("):
			h := a[strings.IndexByte(a, '(')+1 : len(a)-1]
			kind := ioa.SendPkt
			if strings.HasPrefix(a, "recv") {
				kind = ioa.ReceivePkt
			}
			tr = append(tr, ioa.Event{Kind: kind, Dir: ioa.RtoT, Pkt: ioa.Packet{Header: h, Payload: "m"}})
		case strings.HasPrefix(a, "send("), strings.HasPrefix(a, "recv("):
			h := a[strings.IndexByte(a, '(')+1 : len(a)-1]
			kind := ioa.SendPkt
			if strings.HasPrefix(a, "recv") {
				kind = ioa.ReceivePkt
			}
			tr = append(tr, ioa.Event{Kind: kind, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: h, Payload: "m"}})
		default:
			return nil, fmt.Errorf("ioauto: unknown witness action %q", a)
		}
	}
	return tr, nil
}
