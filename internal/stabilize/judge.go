package stabilize

import (
	"fmt"

	"repro/internal/ioa"
)

// The amnesty judge: finite-prefix DL1–DL3 for corrupted starts.
//
// The clean-start checkers in internal/ioa demand perfection from the first
// delivery, which no protocol can offer from a corrupted configuration — a
// poison packet already in transit WILL eventually be delivered, and a
// corrupted receiver WILL mis-handle the first real packet. Stabilization
// theory instead asks for convergence: after finitely many faults, the run
// behaves like a clean one. The judge makes that finite: each corruption
// buys a fault budget (Amnesty), each incorrect delivery is classified and
// charged against it, and the run diverges exactly when the charges exceed
// the budget.
//
// Classification tracks the submitted-message frontier f (the next send
// position whose delivery would be clean progress) and the set of positions
// skipped over (which may still arrive late). A delivery of payload p when
// s messages have been submitted is one of:
//
//	progress     p == payload(f)               no charge, f++
//	skip-ahead   p == payload(j), f < j < s    charge j-f (the stranded
//	                                           window), positions f..j-1
//	                                           enter the lost set, f = j+1
//	late arrival p == payload(j), j in lost    charge 1, DL2-flavoured:
//	                                           FIFO order broken, but the
//	                                           message did arrive
//	duplicate    p == payload(j), j < f seen   charge 1, DL1-flavoured
//	garbage      p matches nothing submitted   charge 1, DL1-flavoured
//
// Quiescent judging adds a final DL3-flavoured charge per submitted message
// at or past the frontier that never arrived: the transmitter confirmed it
// (it went idle) yet nobody delivered it.

// StepKind classifies one delivery.
type StepKind int

const (
	// StepProgress is a clean in-order delivery of the frontier message.
	StepProgress StepKind = iota
	// StepSkip is a delivery of a later message, stranding the window
	// between the frontier and it.
	StepSkip
	// StepLate is a delivery of a previously skipped message (DL2: FIFO
	// order broken).
	StepLate
	// StepDup is a re-delivery of an already delivered message (DL1).
	StepDup
	// StepGarbage is a delivery matching no submitted message (DL1).
	StepGarbage
)

// String renders the step kind for reports.
func (k StepKind) String() string {
	switch k {
	case StepProgress:
		return "progress"
	case StepSkip:
		return "skip"
	case StepLate:
		return "late"
	case StepDup:
		return "dup"
	case StepGarbage:
		return "garbage"
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// Property maps the step kind to the data-link property it offends; empty
// for StepProgress.
func (k StepKind) Property() string {
	switch k {
	case StepSkip, StepDup, StepGarbage:
		return "DL1"
	case StepLate:
		return "DL2"
	}
	return ""
}

// MaxLost bounds the number of submit positions the lost-set bitmask can
// track. Judged runs must submit fewer messages than this; the bounded
// explorer and fuzzer stay well under it.
const MaxLost = 64

// Classify judges one delivery of payload p against the amnesty
// bookkeeping: frontier is the next expected submit position, lost a
// bitmask of skipped positions (bit i = payload(i) skipped and not yet
// arrived), submitted the number of messages submitted so far, and
// payloadAt resolves a submit position to its payload. It returns the step
// kind, the charge, and the updated frontier and lost set. Positions at or
// beyond MaxLost saturate: skips past it are charged but not tracked for
// late arrival (such a delivery then charges as a duplicate — still a
// fault, so judgments stay sound, merely coarser).
func Classify(p string, payloadAt func(int) string, frontier int, lost uint64, submitted int) (kind StepKind, charge int, newFrontier int, newLost uint64) {
	if frontier < submitted && p == payloadAt(frontier) {
		return StepProgress, 0, frontier + 1, lost
	}
	for j := frontier + 1; j < submitted; j++ {
		if p != payloadAt(j) {
			continue
		}
		// Skip-ahead: positions frontier..j-1 are stranded; each is one
		// fault now (and a second, DL2 fault if it later arrives).
		for i := frontier; i < j && i < MaxLost; i++ {
			lost |= 1 << uint(i)
		}
		return StepSkip, j - frontier, j + 1, lost
	}
	for j := frontier - 1; j >= 0; j-- {
		if p != payloadAt(j) {
			continue
		}
		if j < MaxLost && lost&(1<<uint(j)) != 0 {
			return StepLate, 1, frontier, lost &^ (1 << uint(j))
		}
		return StepDup, 1, frontier, lost
	}
	return StepGarbage, 1, frontier, lost
}

// Judgment is the amnesty judge's verdict on one trace.
type Judgment struct {
	// Violation is non-nil when the charges exceeded the amnesty; its
	// Index is the position in the judged trace of the delivery (or, for
	// quiescent strand charges, -1) that went over.
	Violation *ioa.Violation
	// Charges is the total fault count, Amnesty the budget it was judged
	// against.
	Charges, Amnesty int
	// Frontier is the next expected submit position after the trace.
	Frontier int
	// Lost is the bitmask of skipped positions that never arrived.
	Lost uint64
	// Stranded counts submitted messages at or past the frontier that were
	// never delivered; only quiescent judging charges them.
	Stranded int
	// LastCharge is the trace index of the last charged delivery, or -1.
	// After convergence this is the point past which the run is clean —
	// the convergence prefix length.
	LastCharge int
	// Kinds counts deliveries per step kind, indexed by StepKind.
	Kinds [5]int
}

// judge walks the trace, classifying every receive_msg against the
// positional submit history.
func judge(tr ioa.Trace, amnesty int) *Judgment {
	j := &Judgment{Amnesty: amnesty, LastCharge: -1}
	var payloads []string
	at := func(i int) string { return payloads[i] }
	for i, e := range tr {
		switch e.Kind {
		case ioa.SendMsg:
			payloads = append(payloads, e.Msg.Payload)
		case ioa.ReceiveMsg:
			kind, charge, nf, nl := Classify(e.Msg.Payload, at, j.Frontier, j.Lost, len(payloads))
			j.Kinds[kind]++
			j.Frontier, j.Lost = nf, nl
			if charge == 0 {
				continue
			}
			j.Charges += charge
			j.LastCharge = i
			if j.Charges > amnesty && j.Violation == nil {
				prop := kind.Property()
				j.Violation = &ioa.Violation{
					Property: prop,
					Index:    i,
					Detail: fmt.Sprintf("%s delivery of %q: %d fault(s) charged, amnesty %d",
						kind, e.Msg.Payload, j.Charges, amnesty),
				}
			}
		}
	}
	return j
}

// JudgeTrace judges a (possibly still running) trace prefix against the
// amnesty budget. Messages not yet delivered are not charged — they may
// still be in flight.
func JudgeTrace(tr ioa.Trace, amnesty int) *Judgment {
	return judge(tr, amnesty)
}

// JudgeQuiescent judges a completed run: the transmitter has gone idle, so
// every submitted message has been confirmed, and any message at or past
// the frontier that was never delivered is a DL3-flavoured fault (skipped
// positions before the frontier were already charged when skipped).
func JudgeQuiescent(tr ioa.Trace, amnesty int) *Judgment {
	j := judge(tr, amnesty)
	submitted := 0
	for _, e := range tr {
		if e.Kind == ioa.SendMsg {
			submitted++
		}
	}
	j.Stranded = submitted - j.Frontier
	if j.Stranded > 0 {
		j.Charges += j.Stranded
		if j.Charges > amnesty && j.Violation == nil {
			j.Violation = &ioa.Violation{
				Property: "DL3",
				Index:    -1,
				Detail: fmt.Sprintf("%d submitted message(s) confirmed but never delivered: %d fault(s) charged, amnesty %d",
					j.Stranded, j.Charges, amnesty),
			}
		}
	}
	return j
}
