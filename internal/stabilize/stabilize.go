// Package stabilize makes self-stabilization — convergence to DL1–DL3 from
// an arbitrary initial configuration — a checkable, fuzzable, provable
// property of the repo's data-link protocols.
//
// The 1989 paper's bounds (PAPER.md, Theorems 2.1/3.1) assume every
// execution starts from the protocol's clean initial configuration. The
// modern descendants of that line (Dolev, Dubois, Potop-Butucaru, Tixeuil;
// Delaët et al. — see PAPERS.md) drop the assumption: the adversary also
// picks the start state, corrupting endpoint memory and pre-loading the
// channels, and a protocol *self-stabilizes* when every such start leads
// back to correct data-link behaviour after finitely many faults.
//
// This package supplies the model glue:
//
//   - A corrupted initial configuration is a Corruption: indexes into the
//     protocol's declared protocol.Corruptible space plus poison packets
//     per channel. Enumerate lists the bounded space; Apply injects one
//     into a fresh sim.Runner (recorded as replayable KindCorrupt /
//     KindPoison trace operations).
//   - Amnesty converts a corruption into its fault budget: the number of
//     incorrect deliveries the corruption is entitled to cause before the
//     protocol is judged divergent. One poison packet buys one fault; a
//     corrupted endpoint buys occupancy+1 (it can fabricate at most one
//     bogus adoption plus the in-flight window it desynchronises).
//   - Classify/JudgeTrace/JudgeQuiescent implement the amnesty judge: the
//     finite-prefix form of DL1–DL3 under which a stabilizing protocol's
//     corrupted runs are CORRECT (all faults within amnesty) and a
//     non-stabilizing protocol's are not.
//   - CheckConvergence runs one corrupted configuration to quiescence under
//     reliable channels and judges it — certifying *non*-convergence either
//     as an over-amnesty safety violation (replay-confirmed) or as a
//     pumped livelock certificate via replay.CertifyLivelock.
//
// The exhaustive counterpart lives in internal/verify: `nfvet verify
// -stabilize` seeds the BFS frontier with every Corruption from Enumerate
// and PROVES convergence at the configured bounds or emits a
// replay-confirmed divergence witness.
package stabilize

import (
	"strconv"
	"strings"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Corruption identifies one corrupted initial configuration: endpoint start
// states by index into the protocol's protocol.CorruptionSpace (0 = clean)
// plus the poison packets pre-loaded onto each channel.
type Corruption struct {
	// TIdx and RIdx index CorruptionSpace.Transmitters / .Receivers.
	TIdx, RIdx int
	// Data and Ack are the packets pre-loaded onto the t→r and r→t
	// channels, "in transit since before time 0".
	Data, Ack []ioa.Packet
}

// Clean reports whether the corruption is the clean start.
func (c Corruption) Clean() bool {
	return c.TIdx == 0 && c.RIdx == 0 && len(c.Data) == 0 && len(c.Ack) == 0
}

// Key returns a canonical encoding of the corruption, used to intern
// corrupted starts into coverage and visited maps. Poison multisets encode
// in enumeration order, which is already canonical (Enumerate emits
// non-decreasing alphabet indexes).
func (c Corruption) Key() string {
	var b strings.Builder
	b.WriteString("t")
	b.WriteString(strconv.Itoa(c.TIdx))
	b.WriteString(".r")
	b.WriteString(strconv.Itoa(c.RIdx))
	b.WriteString("|d:")
	appendPkts(&b, c.Data)
	b.WriteString("|a:")
	appendPkts(&b, c.Ack)
	return b.String()
}

func appendPkts(b *strings.Builder, pkts []ioa.Packet) {
	for i, p := range pkts {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(p.Header)
		if p.Payload != "" {
			b.WriteString("/")
			b.WriteString(p.Payload)
		}
	}
}

// String renders the corruption for reports.
func (c Corruption) String() string {
	if c.Clean() {
		return "clean"
	}
	return c.Key()
}

// Amnesty is the corruption's fault budget: the number of incorrect
// deliveries it is entitled to cause before the run counts as divergent.
// Every poison packet buys one fault (it can be delivered once); a
// corrupted endpoint buys occupancy+1 (one bogus adoption it can fabricate
// from corrupted memory, plus the window of up to occupancy in-flight
// messages its desynchronisation can strand). A stabilizing protocol's
// corrupted runs stay within this budget; the budget is deliberately finite
// so "converges after finitely many faults" is decidable on a finite
// prefix.
func Amnesty(c Corruption, occupancy int) int {
	g := len(c.Data) + len(c.Ack)
	if c.TIdx != 0 {
		g += occupancy + 1
	}
	if c.RIdx != 0 {
		g += occupancy + 1
	}
	return g
}

// Enumerate lists the protocol's bounded corrupted configurations: every
// pair of declared endpoint states crossed with every multiset of up to
// maxPoison packets per channel over the declared poison alphabets. The
// clean configuration is element 0. Protocols that do not implement
// protocol.Corruptible have only the clean configuration.
func Enumerate(p protocol.Protocol, maxPoison int) []Corruption {
	cp, ok := p.(protocol.Corruptible)
	if !ok {
		return []Corruption{{}}
	}
	space := cp.Corruptions()
	nt, nr := len(space.Transmitters), len(space.Receivers)
	if nt == 0 {
		nt = 1
	}
	if nr == 0 {
		nr = 1
	}
	dataSets := multisets(space.DataPoison, maxPoison)
	ackSets := multisets(space.AckPoison, maxPoison)
	out := make([]Corruption, 0, nt*nr*len(dataSets)*len(ackSets))
	for t := 0; t < nt; t++ {
		for r := 0; r < nr; r++ {
			for _, d := range dataSets {
				for _, a := range ackSets {
					out = append(out, Corruption{TIdx: t, RIdx: r, Data: d, Ack: a})
				}
			}
		}
	}
	return out
}

// multisets enumerates the multisets of size 0..max over the alphabet in
// deterministic DFS order: the empty multiset first, then every multiset as
// a non-decreasing sequence of alphabet indexes, extended depth-first. Each
// multiset appears exactly once.
func multisets(alphabet []ioa.Packet, max int) [][]ioa.Packet {
	out := [][]ioa.Packet{nil}
	if len(alphabet) == 0 || max <= 0 {
		return out
	}
	var cur []int
	var rec func(start, left int)
	rec = func(start, left int) {
		if left == 0 {
			return
		}
		for i := start; i < len(alphabet); i++ {
			cur = append(cur, i)
			set := make([]ioa.Packet, len(cur))
			for j, k := range cur {
				set[j] = alphabet[k]
			}
			out = append(out, set)
			rec(i, left-1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, max)
	return out
}

// Apply injects the corruption into a fresh runner: endpoint replacement
// first (recorded as a KindCorrupt operation), then channel poison
// (KindPoison operations). The runner must not have executed any operation
// yet. A clean corruption on a non-Corruptible protocol is a no-op, so
// Apply is safe to call unconditionally.
func Apply(run *sim.Runner, c Corruption) error {
	if c.TIdx != 0 || c.RIdx != 0 {
		if err := run.CorruptStart(c.TIdx, c.RIdx); err != nil {
			return err
		}
	}
	for _, p := range c.Data {
		if err := run.Poison(ioa.TtoR, p); err != nil {
			return err
		}
	}
	for _, p := range c.Ack {
		if err := run.Poison(ioa.RtoT, p); err != nil {
			return err
		}
	}
	return nil
}
