package stabilize

import (
	"fmt"
	"strings"

	"repro/internal/protocol"
)

// Sweep runs CheckConvergence over a protocol's entire bounded corruption
// space (Enumerate with maxPoison) and aggregates the outcome against the
// protocol's declared protocol.StabilizeStatus, in the repo's standard
// verdict vocabulary:
//
//	CERTIFIED  — the declaration is backed by a replay-confirmed artifact
//	             (a declared-non-stabilizing protocol with a confirmed
//	             divergence witness).
//	CONSISTENT — the observation matches the declaration but this sweep
//	             cannot certify it (one canonical schedule per seed proves
//	             nothing exhaustively; `nfvet verify -stabilize` does).
//	OBSERVED   — no declaration to check against, or the declaration was
//	             not exercised by the canonical schedule.
//	FAIL       — the observation contradicts the declaration: a declared
//	             self-stabilizing protocol has a diverging corrupted start.
type SweepReport struct {
	Protocol string
	// Occupancy, Probes and MaxPoison echo the sweep's bounds.
	Occupancy, Probes, MaxPoison int
	// Seeds is the size of the enumerated corruption space; Converged and
	// Diverged partition it. Confirmed counts diverged seeds whose witness
	// replay-confirmed; Livelocks counts those certified as pumped cycles.
	Seeds, Converged, Diverged int
	Confirmed, Livelocks       int
	// First is the first diverging report in enumeration order (nil when
	// every seed converged); Reports holds all reports in the same order.
	First   *Report
	Reports []*Report
	// Declared is the protocol's StabilizeStatus declaration; nil when the
	// protocol does not declare one.
	Declared *bool
	// Check is the verdict; Note explains it when it is not self-evident.
	Check string
	Note  string
}

// Sweep checks every corruption in p's bounded space. It returns an error
// only on harness failures (a seed that cannot be applied), never on
// divergence — divergence is a reportable outcome, not an error.
func Sweep(p protocol.Protocol, cfg Config, maxPoison int) (*SweepReport, error) {
	cfg = cfg.withDefaults()
	sr := &SweepReport{
		Protocol:  p.Name(),
		Occupancy: cfg.Occupancy,
		Probes:    cfg.Probes,
		MaxPoison: maxPoison,
	}
	for _, seed := range Enumerate(p, maxPoison) {
		rep, err := CheckConvergence(p, seed, cfg)
		if err != nil {
			return nil, fmt.Errorf("stabilize: seed %s: %w", seed, err)
		}
		sr.Reports = append(sr.Reports, rep)
		sr.Seeds++
		if rep.Converged {
			sr.Converged++
			continue
		}
		sr.Diverged++
		if rep.ReplayConfirmed {
			sr.Confirmed++
		}
		if rep.Cert != nil {
			sr.Livelocks++
		}
		if sr.First == nil {
			sr.First = rep
		}
	}
	if ss, ok := p.(protocol.StabilizeStatus); ok {
		v := ss.SelfStabilizing()
		sr.Declared = &v
	}
	sr.judge()
	return sr, nil
}

// judge derives Check/Note from the aggregate counts and the declaration.
func (sr *SweepReport) judge() {
	switch {
	case sr.Declared == nil:
		sr.Check = "OBSERVED"
		sr.Note = "no StabilizeStatus declaration to check against"
	case *sr.Declared && sr.Diverged > 0:
		sr.Check = "FAIL"
		sr.Note = fmt.Sprintf("declared self-stabilizing but %d corrupted start(s) diverge (first: %s)",
			sr.Diverged, sr.First.Seed)
	case *sr.Declared:
		sr.Check = "CONSISTENT"
		sr.Note = "all seeds converge under the canonical schedule; `nfvet verify -stabilize` certifies exhaustively"
	case sr.Confirmed > 0:
		sr.Check = "CERTIFIED"
		sr.Note = "declared not self-stabilizing; a replay-confirmed divergence witness backs it"
	case sr.Diverged > 0:
		sr.Check = "CONSISTENT"
		sr.Note = "divergences observed but none replay-confirmed"
	default:
		sr.Check = "OBSERVED"
		sr.Note = "declared not self-stabilizing, but the canonical schedule found no divergence; run `nfvet verify -stabilize`"
	}
}

// String renders the sweep in the style of the repo's other reports.
func (sr *SweepReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stabilize: %s\n", sr.Protocol)
	fmt.Fprintf(&b, "  seeds:     %d corrupted start(s), max poison %d/channel, occupancy %d, probes %d\n",
		sr.Seeds, sr.MaxPoison, sr.Occupancy, sr.Probes)
	fmt.Fprintf(&b, "  converged: %d/%d within amnesty\n", sr.Converged, sr.Seeds)
	if sr.Diverged > 0 {
		fmt.Fprintf(&b, "  diverged:  %d (%d replay-confirmed, %d certified livelock(s))\n",
			sr.Diverged, sr.Confirmed, sr.Livelocks)
		fmt.Fprintf(&b, "  first:     seed %s: %s %s\n",
			sr.First.Seed, sr.First.Violation.Property, sr.First.Violation.Detail)
	}
	switch {
	case sr.Declared == nil:
		fmt.Fprintf(&b, "  declared:  (none)\n")
	case *sr.Declared:
		fmt.Fprintf(&b, "  declared:  self-stabilizing\n")
	default:
		fmt.Fprintf(&b, "  declared:  not self-stabilizing\n")
	}
	fmt.Fprintf(&b, "  check:     %s (%s)\n", sr.Check, sr.Note)
	return b.String()
}
