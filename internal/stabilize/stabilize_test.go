package stabilize

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/replay"
)

func TestEnumerateStabDL(t *testing.T) {
	p := protocol.NewStabDL(2)
	seeds := Enumerate(p, 1)
	// 3 transmitter states × 3 receiver states × (1 empty + 2 singleton)
	// data poisons × (1 + 2) ack poisons.
	if len(seeds) != 81 {
		t.Fatalf("stabdl2 seeds = %d, want 81", len(seeds))
	}
	if !seeds[0].Clean() {
		t.Fatalf("seed 0 = %v, want clean", seeds[0])
	}
	keys := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		k := s.Key()
		if keys[k] {
			t.Fatalf("duplicate seed key %q", k)
		}
		keys[k] = true
	}
}

func TestEnumerateMaxPoisonGrowsMultisets(t *testing.T) {
	p := protocol.NewStabDL(2)
	// maxPoison 2 over a 2-packet alphabet: 1 + 2 + 3 = 6 multisets per
	// channel; 3 × 3 × 6 × 6 = 324.
	if got := len(Enumerate(p, 2)); got != 324 {
		t.Fatalf("stabdl2 seeds at maxPoison=2: %d, want 324", got)
	}
}

func TestEnumerateNonCorruptible(t *testing.T) {
	seeds := Enumerate(protocol.NewSeqNum(), 2)
	if len(seeds) != 1 || !seeds[0].Clean() {
		t.Fatalf("non-Corruptible protocol seeds = %v, want single clean", seeds)
	}
}

func TestAmnesty(t *testing.T) {
	pkt := ioa.Packet{Header: "d0", Payload: "z"}
	cases := []struct {
		c    Corruption
		occ  int
		want int
	}{
		{Corruption{}, 2, 0},
		{Corruption{Data: []ioa.Packet{pkt}}, 2, 1},
		{Corruption{Data: []ioa.Packet{pkt, pkt}, Ack: []ioa.Packet{{Header: "a0"}}}, 2, 3},
		{Corruption{TIdx: 1}, 2, 3},
		{Corruption{TIdx: 1, RIdx: 2}, 3, 8},
	}
	for _, tc := range cases {
		if got := Amnesty(tc.c, tc.occ); got != tc.want {
			t.Errorf("Amnesty(%v, occ=%d) = %d, want %d", tc.c, tc.occ, got, tc.want)
		}
	}
}

func TestClassify(t *testing.T) {
	payloads := []string{"m0", "m1", "m2", "m3"}
	at := func(i int) string { return payloads[i] }

	kind, charge, f, lost := Classify("m0", at, 0, 0, 4)
	if kind != StepProgress || charge != 0 || f != 1 || lost != 0 {
		t.Fatalf("progress: got %v charge=%d f=%d lost=%b", kind, charge, f, lost)
	}
	// Skip from frontier 0 straight to m2: charges the stranded window m0,m1.
	kind, charge, f, lost = Classify("m2", at, 0, 0, 4)
	if kind != StepSkip || charge != 2 || f != 3 || lost != 0b11 {
		t.Fatalf("skip: got %v charge=%d f=%d lost=%b", kind, charge, f, lost)
	}
	// A skipped message arriving late is a DL2 fault and leaves the lost set.
	kind, charge, f, lost = Classify("m1", at, 3, 0b11, 4)
	if kind != StepLate || charge != 1 || f != 3 || lost != 0b01 {
		t.Fatalf("late: got %v charge=%d f=%d lost=%b", kind, charge, f, lost)
	}
	if StepLate.Property() != "DL2" {
		t.Fatalf("StepLate property = %q, want DL2", StepLate.Property())
	}
	// A delivered message arriving again is a duplicate.
	kind, charge, _, _ = Classify("m1", at, 3, 0, 4)
	if kind != StepDup || charge != 1 {
		t.Fatalf("dup: got %v charge=%d", kind, charge)
	}
	// Unknown payloads are garbage.
	kind, charge, _, _ = Classify("z", at, 0, 0, 4)
	if kind != StepGarbage || charge != 1 {
		t.Fatalf("garbage: got %v charge=%d", kind, charge)
	}
}

func msgEvent(kind ioa.Kind, id int, payload string) ioa.Event {
	return ioa.Event{Kind: kind, Msg: ioa.Message{ID: id, Payload: payload}}
}

func TestJudgeTraceLateArrivalIsDL2(t *testing.T) {
	tr := ioa.Trace{
		msgEvent(ioa.SendMsg, 0, "m0"),
		msgEvent(ioa.SendMsg, 1, "m1"),
		msgEvent(ioa.ReceiveMsg, 0, "m1"), // skip over m0: 1 fault
		msgEvent(ioa.ReceiveMsg, 1, "m0"), // late arrival: DL2, 1 fault
	}
	j := JudgeTrace(tr, 1)
	if j.Charges != 2 || j.Violation == nil || j.Violation.Property != "DL2" {
		t.Fatalf("judgment = charges %d violation %v, want 2 charges + DL2", j.Charges, j.Violation)
	}
	if JudgeTrace(tr, 2).Violation != nil {
		t.Fatalf("amnesty 2 should forgive both faults")
	}
}

func TestJudgeQuiescentChargesStranded(t *testing.T) {
	tr := ioa.Trace{
		msgEvent(ioa.SendMsg, 0, "m0"),
		msgEvent(ioa.SendMsg, 1, "m1"),
		msgEvent(ioa.ReceiveMsg, 0, "m0"),
		// m1 confirmed (the run is quiescent) but never delivered.
	}
	if j := JudgeTrace(tr, 0); j.Violation != nil {
		t.Fatalf("prefix judge charged an in-flight message: %v", j.Violation)
	}
	j := JudgeQuiescent(tr, 0)
	if j.Stranded != 1 || j.Violation == nil || j.Violation.Property != "DL3" {
		t.Fatalf("quiescent judgment = stranded %d violation %v, want 1 stranded + DL3", j.Stranded, j.Violation)
	}
}

func TestStabDLConvergesFromEverySeed(t *testing.T) {
	p := protocol.NewStabDL(2)
	for _, seed := range Enumerate(p, 1) {
		rep, err := CheckConvergence(p, seed, Config{})
		if err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
		if !rep.Converged {
			t.Errorf("seed %s: diverged: %v (cert err %q)", seed, rep.Violation, rep.CertErr)
			continue
		}
		if rep.Judgment.Charges > rep.Amnesty {
			t.Errorf("seed %s: %d charges exceed amnesty %d yet converged", seed, rep.Judgment.Charges, rep.Amnesty)
		}
	}
}

func TestCleanSeedConvergesWithZeroCharges(t *testing.T) {
	for _, p := range []protocol.Protocol{protocol.NewAltBit(), protocol.NewStabDL(2), protocol.NewStabNaive()} {
		rep, err := CheckConvergence(p, Corruption{}, Config{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !rep.Converged || rep.Judgment.Charges != 0 || rep.Amnesty != 0 {
			t.Errorf("%s clean seed: converged=%v charges=%d amnesty=%d, want clean run",
				p.Name(), rep.Converged, rep.Judgment.Charges, rep.Amnesty)
		}
	}
}

// The control specimen must be caught: at least one corrupted seed diverges,
// and the divergence is certified — either replay-confirmed over-amnesty
// faults or a pumped livelock cycle.
func TestStabNaiveDiverges(t *testing.T) {
	p := protocol.NewStabNaive()
	var faults, livelocks int
	for _, seed := range Enumerate(p, 1) {
		rep, err := CheckConvergence(p, seed, Config{})
		if err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
		if rep.Converged {
			continue
		}
		if rep.Cert != nil {
			livelocks++
			if !rep.ReplayConfirmed {
				t.Errorf("seed %s: livelock cert not replay-confirmed", seed)
			}
			if got := rep.Witness.Meta[MetaStabilize]; !strings.HasPrefix(got, "diverged") {
				t.Errorf("seed %s: witness stabilize meta %q", seed, got)
			}
		} else if rep.Violation != nil && rep.CertErr == "" {
			faults++
			if !rep.ReplayConfirmed {
				t.Errorf("seed %s: %v not replay-confirmed", seed, rep.Violation)
			}
		}
	}
	if faults == 0 {
		t.Errorf("stabnaive: no seed diverged by over-amnesty fault")
	}
	if livelocks == 0 {
		t.Errorf("stabnaive: no seed diverged by certified livelock")
	}
}

// altbit predates the stabilizing family and must also be caught: a poison
// packet impersonating a data packet defeats the bare alternating bit.
func TestAltBitDiverges(t *testing.T) {
	p := protocol.NewAltBit()
	diverged := 0
	for _, seed := range Enumerate(p, 1) {
		rep, err := CheckConvergence(p, seed, Config{})
		if err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
		if !rep.Converged && (rep.ReplayConfirmed || rep.CertErr != "") {
			diverged++
		}
	}
	if diverged == 0 {
		t.Errorf("altbit survived every corrupted seed; it should not self-stabilize")
	}
}

// arrival delivers in arrival order, so a forged early copy of a later
// message breaks convergence.
func TestArrivalDiverges(t *testing.T) {
	p := protocol.NewArrival()
	diverged := false
	for _, seed := range Enumerate(p, 1) {
		rep, err := CheckConvergence(p, seed, Config{})
		if err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
		if !rep.Converged {
			diverged = true
		}
	}
	if !diverged {
		t.Errorf("arrival converged from every seed; its forged-copy seed should diverge")
	}
}

// A fault-divergence witness must re-drive bit for bit and carry a verdict
// the replay re-checker agrees with.
func TestDivergenceWitnessReplays(t *testing.T) {
	p := protocol.NewStabNaive()
	for _, seed := range Enumerate(p, 1) {
		rep, err := CheckConvergence(p, seed, Config{})
		if err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
		if rep.Converged || rep.Cert != nil || rep.CertErr != "" {
			continue
		}
		rr, err := replay.Run(rep.Witness)
		if err != nil {
			t.Fatalf("seed %s: replaying witness: %v", seed, err)
		}
		if rr.Divergence != nil {
			t.Fatalf("seed %s: witness diverged: %v", seed, rr.Divergence)
		}
		if !rr.VerdictMatches {
			t.Fatalf("seed %s: witness verdict mismatch: recorded %v, re-checked %v/%v",
				seed, rr.RecordedVerdict, rr.Verdict, rr.DL3)
		}
		if rep.Witness.Meta[MetaCorruption] != seed.Key() {
			t.Fatalf("seed %s: witness corruption meta %q", seed, rep.Witness.Meta[MetaCorruption])
		}
		return
	}
	t.Skip("no fault-divergence seed found (covered by TestStabNaiveDiverges)")
}
