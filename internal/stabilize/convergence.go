package stabilize

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Trace metadata stamped on convergence witnesses.
const (
	// MetaCorruption records the Corruption.Key() of the corrupted start.
	MetaCorruption = "corruption"
	// MetaAmnesty records the fault budget the run was judged against.
	MetaAmnesty = "amnesty"
	// MetaStabilize records the stabilize-level verdict ("diverged
	// <property>" or "converged") that the amnesty judge reached; the
	// embedded verdict event stays the clean-start checkers' finding so the
	// witness replays with a matching verdict under `nfvet replay`.
	MetaStabilize = "stabilize"
)

// Config tunes CheckConvergence. The zero value is ready to use.
type Config struct {
	// Probes is how many messages are submitted after the corruption;
	// convergence means the tail of these flows cleanly. Defaults to 3;
	// capped at MaxLost.
	Probes int
	// Occupancy parameterises the corrupted endpoints' amnesty (see
	// Amnesty). Defaults to 2, the default verification occupancy.
	Occupancy int
	// StepBudget bounds transmitter steps per probe before the run is
	// declared stalled. Defaults to 512.
	StepBudget int
	// DriveBudget and Pump tune the livelock certification of stalled
	// runs; zero means replay.CertifyLivelock's defaults.
	DriveBudget, Pump int
}

func (c Config) withDefaults() Config {
	if c.Probes <= 0 {
		c.Probes = 3
	}
	if c.Probes > MaxLost {
		c.Probes = MaxLost
	}
	if c.Occupancy <= 0 {
		c.Occupancy = 2
	}
	if c.StepBudget <= 0 {
		c.StepBudget = 512
	}
	return c
}

// Report is the outcome of one convergence check.
type Report struct {
	// Protocol and Seed identify the checked configuration.
	Protocol string
	Seed     Corruption
	// Amnesty is the seed's fault budget, Probes the number of messages
	// driven through the corrupted system.
	Amnesty, Probes int
	// Converged reports whether the run reached quiescence with all faults
	// within amnesty.
	Converged bool
	// Judgment is the amnesty judge's verdict when the run reached
	// quiescence (nil for stalled runs).
	Judgment *Judgment
	// Violation is the divergence: an over-amnesty fault for completed
	// runs, or a DL3 stall for runs that never went idle. Nil when
	// Converged.
	Violation *ioa.Violation
	// Cert is the pumping-lemma certificate of non-convergence when the
	// stall closed into a replay-verified livelock cycle; CertErr explains
	// why certification was refused otherwise.
	Cert    *replay.LivelockCert
	CertErr string
	// Witness is a replayable log of the diverging run (the pumped
	// certificate for livelocks, the re-recorded violating run otherwise);
	// nil when Converged. ReplayConfirmed reports that the witness
	// re-drove with zero divergence and the replayed trace re-judged to
	// the same verdict.
	Witness         *trace.Log
	ReplayConfirmed bool
}

// CheckConvergence drives one corrupted configuration to quiescence under
// reliable channels and judges it with the amnesty judge. The schedule is
// the canonical recovery scenario: the first probe is submitted, the
// poison packets are delivered stale (so corrupted in-flight state meets a
// busy transmitter, the hardest clean case), and the remaining probes flow
// one by one. Exhaustive schedule interleaving is `nfvet verify
// -stabilize`'s job; this is the single-run check the fuzzer and the CLI
// sweep build on.
//
// Non-convergence comes in two shapes, both returned as replay-verified
// witnesses: an over-amnesty fault (safety-flavoured, witness re-driven
// and re-judged) or a stall (liveness-flavoured, certified as a pumped
// livelock cycle via replay.CertifyLivelock when the run closes into one).
func CheckConvergence(p protocol.Protocol, c Corruption, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		Protocol: p.Name(),
		Seed:     c,
		Amnesty:  Amnesty(c, cfg.Occupancy),
		Probes:   cfg.Probes,
	}
	tlog := trace.NewLog(nil)
	run := sim.NewRunner(sim.Config{
		Protocol:    p,
		StepBudget:  cfg.StepBudget,
		RecordTrace: true,
		TraceLog:    tlog,
		Payload:     func(i int) string { return "m" + strconv.Itoa(i) },
	})
	if err := Apply(run, c); err != nil {
		return nil, err
	}

	stall := func(probe int, err error) (*Report, error) {
		rep.Converged = false
		rep.Violation = &ioa.Violation{
			Property: "DL3",
			Index:    -1,
			Detail:   fmt.Sprintf("probe %d never completed from corrupted start %s: %v", probe, c, err),
		}
		cert, cerr := replay.CertifyLivelock(tlog, replay.CertifyOptions{
			DriveBudget: cfg.DriveBudget,
			Pump:        cfg.Pump,
		})
		if cerr != nil {
			// Not every stall closes into a certifiable cycle (e.g. the
			// closing drive recovers under a schedule the stalled run never
			// tried). Report the stall with the raw log as witness.
			rep.CertErr = cerr.Error()
			rep.Witness = stampWitness(tlog.Clone(), rep)
			return rep, nil
		}
		pump := cfg.Pump
		if pump <= 0 {
			pump = 3
		}
		rep.Cert = cert
		// The same pumped artifact CertifyLivelock verified by replay.
		rep.Witness = stampWitness(cert.Pumped(pump), rep)
		rep.ReplayConfirmed = true
		return rep, nil
	}

	for i := 0; i < cfg.Probes; i++ {
		run.SubmitMsg("m" + strconv.Itoa(i))
		if i == 0 {
			// Deliver the poison while the transmitter is busy with its
			// first message — corrupted in-flight packets meeting live
			// protocol state is the adversarial half of "arbitrary start".
			for _, pkt := range c.Data {
				if err := run.DeliverStale(ioa.TtoR, pkt); err != nil {
					return nil, err
				}
			}
			for _, pkt := range c.Ack {
				if err := run.DeliverStale(ioa.RtoT, pkt); err != nil {
					return nil, err
				}
			}
		}
		if err := run.RunToIdle(); err != nil {
			if errors.Is(err, sim.ErrStalled) {
				return stall(i, err)
			}
			return nil, err
		}
	}

	rep.Judgment = JudgeQuiescent(run.Result().Trace, rep.Amnesty)
	rep.Violation = rep.Judgment.Violation
	rep.Converged = rep.Violation == nil
	if rep.Converged {
		return rep, nil
	}

	// Divergence by fault overdraft: confirm the witness by replay — it
	// must re-drive with zero divergence and the replayed trace must
	// re-judge to the same violated property.
	rr, err := replay.Run(tlog)
	if err != nil {
		return nil, fmt.Errorf("stabilize: replaying divergence witness: %w", err)
	}
	rj := JudgeQuiescent(rr.Trace, rep.Amnesty)
	rep.ReplayConfirmed = rr.Divergence == nil && rj.Violation != nil &&
		rj.Violation.Property == rep.Violation.Property
	// rr.Log carries the clean-start checkers' verdict event, so the
	// witness replays with a matching verdict under `nfvet replay`; the
	// amnesty-level verdict rides in the metadata.
	rep.Witness = stampWitness(rr.Log, rep)
	return rep, nil
}

// stampWitness tags a witness log with the corrupted-start provenance.
func stampWitness(l *trace.Log, rep *Report) *trace.Log {
	l.SetMeta(trace.MetaSource, "stabilize")
	l.SetMeta(MetaCorruption, rep.Seed.Key())
	l.SetMeta(MetaAmnesty, strconv.Itoa(rep.Amnesty))
	verdict := "converged"
	if rep.Violation != nil {
		verdict = "diverged " + rep.Violation.Property
	}
	l.SetMeta(MetaStabilize, verdict)
	return l
}
