package replay

import (
	"fmt"

	"repro/internal/trace"
)

// Trace shrinking: delta-debug a violating trace down to a small
// counterexample while preserving the violated property.
//
// The unit of removal is the *operation group* — a driver operation together
// with the observations and decisions it caused. Removing whole groups keeps
// every remaining decision attached to the operation that consumed it, so a
// candidate trace is still a coherent script for the replayer. Candidates
// are never trusted: each one is re-executed by Run (and, for liveness, by
// CloseDrive), and it survives only if the re-driven execution still
// violates the original property.
//
// Two oracle families are supported:
//
//   - Safety (PL1, DL1, DL2): the original delta-debugging mode. Safety
//     violations are prefix-monotone — once the violating event has happened
//     no extension can unhappen it — so a binary-search prefix-truncation
//     pass runs before greedy group removal.
//   - Liveness (quiescent DL3): a trace violates iff, after the
//     quiescence-forcing closing drive of the selected DriveMode, some
//     submitted message still has no matching delivery and safety is clean.
//     Liveness is *not* prefix-monotone (extending a violating prefix with a
//     delivering operation removes the violation, and vice versa), so only
//     the greedy removal pass runs; greedy-to-fixpoint alone still yields
//     1-minimality — removing any single remaining group loses the
//     violation.
//
// The result is the *re-recorded* log of the final candidate, not the
// candidate itself: what Shrink returns is an execution the replayer
// actually performed, verdict included, never a speculative edit.

// ShrinkResult describes a completed shrink.
type ShrinkResult struct {
	// Log is the minimized, re-recorded violating trace.
	Log *trace.Log
	// Property is the preserved violation property (e.g. "DL1", "DL3").
	Property string
	// Oracle names the preservation oracle used: "safety", or
	// "DL3-reliable" / "DL3-adversarial" for the liveness modes.
	Oracle string
	// OriginalEvents and FinalEvents count trace events before and after.
	OriginalEvents, FinalEvents int
	// OriginalOps and FinalOps count driver operations before and after.
	OriginalOps, FinalOps int
	// Replays is the number of candidate executions performed.
	Replays int
}

// group is one driver operation plus its trailing observation events.
type group struct{ events []trace.Event }

// segment splits a log's events into operation groups. Events preceding the
// first operation (none, for runner-produced logs) form a prelude kept in
// every candidate; verdict events are dropped (replay re-derives them).
func segment(l *trace.Log) (prelude []trace.Event, groups []group) {
	for _, e := range l.Events {
		if e.Kind == trace.KindVerdict {
			continue
		}
		if e.Kind.IsOp() {
			groups = append(groups, group{events: []trace.Event{e}})
			continue
		}
		if len(groups) == 0 {
			prelude = append(prelude, e)
			continue
		}
		g := &groups[len(groups)-1]
		g.events = append(g.events, e)
	}
	return prelude, groups
}

// oracle is a shrink-preservation predicate over candidate traces.
type oracle struct {
	// property is the preserved violation property.
	property string
	// name identifies the oracle in ShrinkResult.Oracle.
	name string
	// prefixPass enables the binary-search prefix-truncation pass; sound
	// only for prefix-monotone properties (safety).
	prefixPass bool
	// holds reports whether the candidate still exhibits the violation.
	holds func(*trace.Log) bool
}

// safetyOracle preserves a specific safety property through Run.
func safetyOracle(property string) oracle {
	return oracle{
		property:   property,
		name:       "safety",
		prefixPass: true,
		holds: func(c *trace.Log) bool {
			r, err := Run(c)
			return err == nil && r.Verdict != nil && r.Verdict.Property == property
		},
	}
}

// livenessOracle preserves a quiescent-DL3 failure under the given closing
// drive: the driven candidate must strand a message while staying
// safety-clean (a candidate that decays into a safety violation is a
// different counterexample, not a smaller version of this one).
func livenessOracle(mode DriveMode) oracle {
	return oracle{
		property:   "DL3",
		name:       "DL3-" + mode.String(),
		prefixPass: false,
		holds: func(c *trace.Log) bool {
			out, err := CloseDrive(c, mode, 0)
			return err == nil && out.Safety == nil && out.DL3 != nil
		},
	}
}

// shrinkWith minimizes l against o. The caller has already established that
// o.holds(l) is true.
func shrinkWith(l *trace.Log, o oracle, res *ShrinkResult) (*ShrinkResult, error) {
	res.Property = o.property
	res.Oracle = o.name

	prelude, groups := segment(l)
	candidate := func(keep []group) *trace.Log {
		c := trace.NewLog(nil)
		//nfvet:allow maprange (order-insensitive copy into another map)
		for k, v := range l.Meta {
			c.SetMeta(k, v)
		}
		c.Events = append(c.Events, prelude...)
		for _, g := range keep {
			c.Events = append(c.Events, g.events...)
		}
		return c
	}
	violates := func(keep []group) bool {
		res.Replays++
		return o.holds(candidate(keep))
	}

	kept := append([]group(nil), groups...)
	if o.prefixPass {
		// Pass 1: minimal violating prefix, by binary search. Invariant:
		// violates(groups[:hi]) is true, violates(groups[:lo-1])
		// unknown-or-false. Sound only for prefix-monotone properties.
		lo, hi := 1, len(groups)
		for lo < hi {
			mid := (lo + hi) / 2
			if violates(groups[:mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		kept = append([]group(nil), groups[:hi]...)
	}

	// Pass 2: greedy single-group removal to a fixpoint, latest group first.
	for changed := true; changed; {
		changed = false
		for i := len(kept) - 1; i >= 0; i-- {
			trial := make([]group, 0, len(kept)-1)
			trial = append(trial, kept[:i]...)
			trial = append(trial, kept[i+1:]...)
			if violates(trial) {
				kept = trial
				changed = true
			}
		}
	}

	final, err := Run(candidate(kept))
	res.Replays++
	if err != nil {
		return nil, fmt.Errorf("replay: re-recording shrunk trace: %w", err)
	}
	if v, _ := final.Log.Verdict(); v == nil || v.Property != res.Property {
		// Cannot happen: the kept set passed violates() above and Run is
		// deterministic. Guard anyway rather than emit a non-counterexample.
		return nil, fmt.Errorf("replay: shrunk trace lost the %s violation on re-recording", res.Property)
	}
	res.Log = final.Log
	res.FinalEvents = final.Log.Len()
	res.FinalOps = final.Ops
	return res, nil
}

// Shrink minimizes a violating trace, picking the oracle automatically: a
// safety violation is preserved through Run; failing that, a quiescent-DL3
// failure is preserved through the reliable closing drive (a genuine
// protocol livelock) or, failing that, the adversarial one (a
// stranded-message schedule a correct protocol would recover from). It
// fails if the trace violates nothing under any oracle (there is nothing to
// preserve).
func Shrink(l *trace.Log) (*ShrinkResult, error) {
	res := &ShrinkResult{OriginalEvents: l.Len()}

	full, err := Run(l)
	if err != nil {
		return nil, err
	}
	res.Replays++
	res.OriginalOps = full.Ops
	if full.Verdict != nil {
		return shrinkWith(l, safetyOracle(full.Verdict.Property), res)
	}
	for _, mode := range []DriveMode{DriveReliable, DriveAdversarial} {
		o := livenessOracle(mode)
		res.Replays++
		if o.holds(l) {
			return shrinkWith(l, o, res)
		}
	}
	return nil, fmt.Errorf("replay: trace violates no safety property and strands no message when replayed; nothing to shrink")
}

// ShrinkLiveness minimizes a trace against the quiescent-DL3 oracle of the
// given drive mode, refusing traces that do not exhibit a safety-clean DL3
// failure under that mode. The fuzzer's livelock promotion uses it with
// DriveReliable so the minimized schedule still livelocks — not merely
// strands — before certification.
func ShrinkLiveness(l *trace.Log, mode DriveMode) (*ShrinkResult, error) {
	res := &ShrinkResult{OriginalEvents: l.Len()}

	full, err := Run(l)
	if err != nil {
		return nil, err
	}
	res.Replays++
	res.OriginalOps = full.Ops
	if full.Verdict != nil {
		return nil, fmt.Errorf("replay: trace violates %s; ShrinkLiveness preserves safety-clean DL3 failures only (use Shrink)", full.Verdict.Property)
	}
	o := livenessOracle(mode)
	res.Replays++
	if !o.holds(l) {
		return nil, fmt.Errorf("replay: trace does not fail quiescent DL3 under the %s closing drive; nothing to shrink", mode)
	}
	return shrinkWith(l, o, res)
}
