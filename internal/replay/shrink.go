package replay

import (
	"fmt"

	"repro/internal/trace"
)

// Trace shrinking: delta-debug a violating trace down to a small
// counterexample while preserving the violated property.
//
// The unit of removal is the *operation group* — a driver operation together
// with the observations and decisions it caused. Removing whole groups keeps
// every remaining decision attached to the operation that consumed it, so a
// candidate trace is still a coherent script for the replayer. Candidates
// are never trusted: each one is re-executed by Run, and it survives only if
// the replayed execution still violates the original property.
//
// Two passes are applied:
//
//  1. Prefix truncation by binary search. Safety violations are
//     prefix-monotone — replaying the first k groups reproduces the first k
//     groups' execution exactly, and once the violating event has happened no
//     extension can unhappen it — so "the first k groups still violate" is
//     monotone in k and the minimal violating prefix is found in O(log n)
//     replays.
//  2. Greedy group removal to a fixpoint. Within the prefix, each group is
//     tentatively removed (latest first — trailing pump traffic is the usual
//     fat) and the removal is kept if the violation survives the re-run.
//
// The result is the *re-recorded* log of the final candidate, not the
// candidate itself: what Shrink returns is an execution the replayer
// actually performed, verdict included, never a speculative edit.

// ShrinkResult describes a completed shrink.
type ShrinkResult struct {
	// Log is the minimized, re-recorded violating trace.
	Log *trace.Log
	// Property is the preserved violation property (e.g. "DL1").
	Property string
	// OriginalEvents and FinalEvents count trace events before and after.
	OriginalEvents, FinalEvents int
	// OriginalOps and FinalOps count driver operations before and after.
	OriginalOps, FinalOps int
	// Replays is the number of candidate executions performed.
	Replays int
}

// group is one driver operation plus its trailing observation events.
type group struct{ events []trace.Event }

// segment splits a log's events into operation groups. Events preceding the
// first operation (none, for runner-produced logs) form a prelude kept in
// every candidate; verdict events are dropped (replay re-derives them).
func segment(l *trace.Log) (prelude []trace.Event, groups []group) {
	for _, e := range l.Events {
		if e.Kind == trace.KindVerdict {
			continue
		}
		if e.Kind.IsOp() {
			groups = append(groups, group{events: []trace.Event{e}})
			continue
		}
		if len(groups) == 0 {
			prelude = append(prelude, e)
			continue
		}
		g := &groups[len(groups)-1]
		g.events = append(g.events, e)
	}
	return prelude, groups
}

// Shrink minimizes a violating trace. It fails if the trace does not
// reproduce a safety violation when replayed (there is nothing to preserve).
func Shrink(l *trace.Log) (*ShrinkResult, error) {
	res := &ShrinkResult{OriginalEvents: l.Len()}

	full, err := Run(l)
	if err != nil {
		return nil, err
	}
	res.Replays++
	if full.Verdict == nil {
		return nil, fmt.Errorf("replay: trace does not violate any safety property when replayed; nothing to shrink")
	}
	res.Property = full.Verdict.Property
	res.OriginalOps = full.Ops

	prelude, groups := segment(l)
	candidate := func(keep []group) *trace.Log {
		c := trace.NewLog(nil)
		for k, v := range l.Meta {
			c.SetMeta(k, v)
		}
		c.Events = append(c.Events, prelude...)
		for _, g := range keep {
			c.Events = append(c.Events, g.events...)
		}
		return c
	}
	violates := func(keep []group) bool {
		res.Replays++
		r, err := Run(candidate(keep))
		return err == nil && r.Verdict != nil && r.Verdict.Property == res.Property
	}

	// Pass 1: minimal violating prefix, by binary search. Invariant:
	// violates(groups[:hi]) is true, violates(groups[:lo-1]) unknown-or-false.
	lo, hi := 1, len(groups)
	for lo < hi {
		mid := (lo + hi) / 2
		if violates(groups[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	kept := append([]group(nil), groups[:hi]...)

	// Pass 2: greedy single-group removal to a fixpoint, latest group first.
	for changed := true; changed; {
		changed = false
		for i := len(kept) - 1; i >= 0; i-- {
			trial := make([]group, 0, len(kept)-1)
			trial = append(trial, kept[:i]...)
			trial = append(trial, kept[i+1:]...)
			if violates(trial) {
				kept = trial
				changed = true
			}
		}
	}

	final, err := Run(candidate(kept))
	res.Replays++
	if err != nil {
		return nil, fmt.Errorf("replay: re-recording shrunk trace: %w", err)
	}
	if final.Verdict == nil || final.Verdict.Property != res.Property {
		// Cannot happen: the kept set passed violates() above and Run is
		// deterministic. Guard anyway rather than emit a non-counterexample.
		return nil, fmt.Errorf("replay: shrunk trace lost the %s violation on re-recording", res.Property)
	}
	res.Log = final.Log
	res.FinalEvents = final.Log.Len()
	res.FinalOps = final.Ops
	return res, nil
}
