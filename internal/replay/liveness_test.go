package replay

import (
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// livelockTrace records a short benign-looking run of the intentionally
// broken livelock protocol: one submit and a few transmitter steps under a
// reliable channel. Nothing in the recording itself violates anything — the
// livelock only becomes evident under the closing drive.
func livelockTrace(t *testing.T, transmits int) *trace.Log {
	t.Helper()
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    replayLookup(t, "livelock"),
		DataPolicy:  channel.Reliable(),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	for i := 0; i < transmits; i++ {
		r.StepTransmit()
	}
	return l
}

func TestCertifyLivelockProtocol(t *testing.T) {
	l := livelockTrace(t, 2)
	cert, err := CertifyLivelock(l, CertifyOptions{})
	if err != nil {
		t.Fatalf("CertifyLivelock: %v", err)
	}
	if cert.Protocol != "livelock" {
		t.Errorf("cert protocol = %q, want livelock", cert.Protocol)
	}
	if cert.CycleOps == 0 {
		t.Error("cert has an empty cycle")
	}
	if cert.DL3 == nil {
		t.Fatal("cert carries no DL3 violation")
	}
	if cert.RepeatedKey == "" {
		t.Error("cert has no repeated joint configuration key")
	}

	// The pumped cycle must replay deterministically and still fail DL3, for
	// any pump count — that is the Theorem 2.1 claim made executable.
	for _, n := range []int{1, 3, 7} {
		p := cert.Pumped(n)
		rr, err := Run(p)
		if err != nil {
			t.Fatalf("replaying pump x%d: %v", n, err)
		}
		if rr.Divergence != nil {
			t.Fatalf("pump x%d diverged: %v", n, rr.Divergence)
		}
		if rr.Verdict != nil {
			t.Fatalf("pump x%d violates safety: %v", n, rr.Verdict)
		}
		if rr.DL3 == nil {
			t.Fatalf("pump x%d delivers everything; not a livelock", n)
		}
		if !rr.VerdictMatches {
			t.Fatalf("pump x%d: recorded DL3 verdict not reproduced", n)
		}
	}
	if got := cert.Pumped(3).Meta[MetaLivelockPump]; got != "3" {
		t.Errorf("pump meta = %q, want 3", got)
	}
}

func TestCertifyRefusesRecoverableProtocol(t *testing.T) {
	// Altbit with every data packet delayed strands the message in the
	// recording, but the protocol retransmits and recovers under the reliable
	// closing drive: no livelock, certification must refuse.
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    replayLookup(t, "altbit"),
		DataPolicy:  channel.DelayAll(),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	r.StepTransmit()
	_, err := CertifyLivelock(l, CertifyOptions{})
	if err == nil {
		t.Fatal("certified a livelock for a protocol that recovers")
	}
	if !strings.Contains(err.Error(), "recovers") {
		t.Fatalf("unhelpful refusal: %v", err)
	}
}

func TestCertifyRefusesSafetyViolation(t *testing.T) {
	l := minimalAltbitViolation(t)
	_, err := CertifyLivelock(l, CertifyOptions{})
	if err == nil {
		t.Fatal("certified a livelock for a safety-violating trace")
	}
	if !strings.Contains(err.Error(), "DL1") {
		t.Fatalf("refusal does not name the safety property: %v", err)
	}
}

func TestCloseDriveQuiescentOnCleanRun(t *testing.T) {
	l, res := record(t, replayLookup(t, "cntlinear"), 7, 2)
	if res.Err != nil {
		t.Fatalf("recording failed: %v", res.Err)
	}
	out, err := CloseDrive(l, DriveReliable, 0)
	if err != nil {
		t.Fatalf("CloseDrive: %v", err)
	}
	if out.Safety != nil || out.DL3 != nil {
		t.Fatalf("clean run fails checks after reliable drive: safety=%v dl3=%v", out.Safety, out.DL3)
	}
	if !out.Quiescent {
		t.Fatalf("clean run not quiescent after %d rounds", out.Rounds)
	}
	if out.CycleFound {
		t.Error("clean run reported a livelock cycle")
	}
	if out.Delivered != out.Submitted {
		t.Errorf("delivered %d of %d after reliable drive", out.Delivered, out.Submitted)
	}
}

func TestCloseDriveReliableRecoversStrandedMessage(t *testing.T) {
	// The adversarial outcome on the same trace blames the schedule instead.
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    replayLookup(t, "altbit"),
		DataPolicy:  channel.DelayAll(),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	r.StepTransmit()

	rel, err := CloseDrive(l, DriveReliable, 0)
	if err != nil {
		t.Fatalf("CloseDrive reliable: %v", err)
	}
	if rel.DL3 != nil {
		t.Fatalf("altbit did not recover under the reliable drive: %v", rel.DL3)
	}
	if !rel.Quiescent {
		t.Errorf("altbit not quiescent after recovery (%d rounds)", rel.Rounds)
	}

	adv, err := CloseDrive(l, DriveAdversarial, 0)
	if err != nil {
		t.Fatalf("CloseDrive adversarial: %v", err)
	}
	if adv.DL3 == nil {
		t.Fatal("adversarial drive hides the stranded message")
	}
	// Under the drop-everything closure altbit keeps retransmitting into a
	// channel that swallows every packet: the joint configuration repeats
	// immediately and the drive certifies a schedule cycle.
	if !adv.CycleFound {
		t.Errorf("adversarial drive found no cycle after %d rounds", adv.Rounds)
	}
	if adv.Rounds == 0 {
		t.Error("adversarial drive executed no rounds; drop-everything closure not driven")
	}
	if adv.Quiescent {
		t.Error("adversarial drive reported quiescence with a message stranded")
	}
	if adv.Safety != nil {
		t.Errorf("adversarial outcome reports safety violation: %v", adv.Safety)
	}
}

// TestCertifyLivelockAdversarialMode certifies a cycle under the recorded
// schedule: altbit strands a message when every data packet is delayed, and
// the adversarial closing drive (drop everything from here on) pins it in a
// retransmit loop. The reliable drive recovers the same trace, so this
// certificate blames the schedule, not the protocol — and the pumped
// artifact must say so in its meta.
func TestCertifyLivelockAdversarialMode(t *testing.T) {
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    replayLookup(t, "altbit"),
		DataPolicy:  channel.DelayAll(),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	r.StepTransmit()

	if _, err := CertifyLivelock(l, CertifyOptions{Mode: DriveReliable}); err == nil {
		t.Fatal("reliable mode certified a trace altbit recovers from")
	}

	cert, err := CertifyLivelock(l, CertifyOptions{Mode: DriveAdversarial})
	if err != nil {
		t.Fatalf("CertifyLivelock adversarial: %v", err)
	}
	if cert.Mode != DriveAdversarial {
		t.Errorf("cert mode = %v, want adversarial", cert.Mode)
	}
	if cert.CycleOps == 0 {
		t.Error("cert has an empty cycle")
	}
	if cert.DL3 == nil {
		t.Fatal("cert carries no DL3 violation")
	}

	p := cert.Pumped(4)
	if got := p.Meta[MetaLivelockMode]; got != "adversarial" {
		t.Errorf("pumped mode meta = %q, want adversarial", got)
	}
	rr, err := Run(p)
	if err != nil {
		t.Fatalf("replaying pumped adversarial cert: %v", err)
	}
	if rr.Divergence != nil {
		t.Fatalf("pumped adversarial cert diverged: %v", rr.Divergence)
	}
	if rr.Verdict != nil {
		t.Fatalf("pumped adversarial cert violates safety: %v", rr.Verdict)
	}
	if rr.DL3 == nil {
		t.Fatal("pumped adversarial cert delivers everything; not a schedule cycle")
	}
}

func TestShrinkLivenessMinimizesLivelockTrace(t *testing.T) {
	// A fat livelock recording: extra transmits and drains beyond the one
	// submit. The reliable-oracle shrink must cut it to the lone submit —
	// the livelock needs nothing else.
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    replayLookup(t, "livelock"),
		DataPolicy:  channel.Reliable(),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	for i := 0; i < 4; i++ {
		r.StepTransmit()
		r.DrainAcks()
	}
	sr, err := ShrinkLiveness(l, DriveReliable)
	if err != nil {
		t.Fatalf("ShrinkLiveness: %v", err)
	}
	if sr.Property != "DL3" || sr.Oracle != "DL3-reliable" {
		t.Fatalf("property/oracle = %q/%q, want DL3/DL3-reliable", sr.Property, sr.Oracle)
	}
	if sr.FinalOps != 1 {
		t.Fatalf("FinalOps = %d, want 1 (the lone submit)", sr.FinalOps)
	}
	// The minimized trace must still certify.
	if _, err := CertifyLivelock(sr.Log, CertifyOptions{}); err != nil {
		t.Fatalf("minimized livelock trace fails certification: %v", err)
	}
}

func TestShrinkLivenessRefusesSafetyViolation(t *testing.T) {
	l := minimalAltbitViolation(t)
	_, err := ShrinkLiveness(l, DriveAdversarial)
	if err == nil {
		t.Fatal("ShrinkLiveness accepted a safety-violating trace")
	}
	if !strings.Contains(err.Error(), "DL1") {
		t.Fatalf("refusal does not name the safety property: %v", err)
	}
}

func TestShrinkLivenessRefusesCleanTrace(t *testing.T) {
	l, res := record(t, replayLookup(t, "cntlinear"), 9, 2)
	if res.Err != nil {
		t.Fatalf("recording failed: %v", res.Err)
	}
	_, err := ShrinkLiveness(l, DriveReliable)
	if err == nil {
		t.Fatal("ShrinkLiveness accepted a trace that recovers")
	}
	if !strings.Contains(err.Error(), "nothing to shrink") {
		t.Fatalf("unhelpful refusal: %v", err)
	}
}

// TestLivenessOracleEdges pins the shrinker's DL3 oracle on the boundary
// shapes: an empty trace (nothing submitted, nothing can strand), an
// all-delivered trace, and a stranded trace — which must split by mode:
// the adversarial oracle blames the schedule, the reliable one does not
// because altbit recovers.
func TestLivenessOracleEdges(t *testing.T) {
	empty := trace.NewLog(map[string]string{
		trace.MetaProtocol: "altbit", trace.MetaKind: "sim",
	})

	delivered := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    replayLookup(t, "altbit"),
		DataPolicy:  channel.Reliable(),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    delivered,
	})
	r.SubmitMsg("m0")
	r.StepTransmit()
	r.DrainAcks()

	stranded := trace.NewLog(nil)
	r = sim.NewRunner(sim.Config{
		Protocol:    replayLookup(t, "altbit"),
		DataPolicy:  channel.DelayAll(),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    stranded,
	})
	r.SubmitMsg("m0")
	r.StepTransmit()

	tests := []struct {
		name string
		l    *trace.Log
		mode DriveMode
		want bool
	}{
		{"empty/reliable", empty, DriveReliable, false},
		{"empty/adversarial", empty, DriveAdversarial, false},
		{"all-delivered/reliable", delivered, DriveReliable, false},
		{"all-delivered/adversarial", delivered, DriveAdversarial, false},
		{"stranded/reliable", stranded, DriveReliable, false},
		{"stranded/adversarial", stranded, DriveAdversarial, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := livenessOracle(tc.mode).holds(tc.l); got != tc.want {
				t.Fatalf("oracle holds = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDriveModeString(t *testing.T) {
	if DriveReliable.String() != "reliable" || DriveAdversarial.String() != "adversarial" {
		t.Fatalf("DriveMode strings = %q/%q", DriveReliable, DriveAdversarial)
	}
}
