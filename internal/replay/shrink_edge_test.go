package replay

import (
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Shrinker edge cases: inputs at the boundary of "there is something to
// minimize" — no operations at all, an already-minimal certificate, and a
// trace with nothing wrong with it. The shrinker must terminate with either
// a sound certificate or a clear refusal on all of them; these shapes are
// exactly what the fuzzer's promotion pipeline feeds it unsupervised.

// minimalAltbitViolation hand-builds the canonical 7-op altbit replay
// attack: strand a d0 copy, deliver two messages, then re-deliver the stale
// copy when the receiver expects bit 0 again. Removing any operation group
// breaks the violation, so the trace is already minimal.
func minimalAltbitViolation(t *testing.T) *trace.Log {
	t.Helper()
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol: replayLookup(t, "altbit"),
		// First data send is delayed (the stranded copy); everything after
		// is delivered immediately.
		DataPolicy:  channel.Script(channel.Delay),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	r.StepTransmit() // d0 delayed: stranded
	r.StepTransmit() // d0 delivered: m0 accepted
	r.DrainAcks()    // a0 delivered: transmitter flips to bit 1
	r.SubmitMsg("m1")
	r.StepTransmit() // d1 delivered: m1 accepted, receiver expects 0 again
	if err := r.DeliverStale(ioa.TtoR, ioa.Packet{Header: "d0", Payload: "m0"}); err != nil {
		t.Fatalf("stale delivery infeasible: %v", err)
	}
	l.Emit(trace.Event{Kind: trace.KindVerdict, Property: "DL1"})
	return l
}

func replayLookup(t *testing.T, name string) protocol.Protocol {
	t.Helper()
	p, err := LookupProtocol(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestShrinkRefusesEmptyOpList(t *testing.T) {
	l := trace.NewLog(map[string]string{
		trace.MetaProtocol: "altbit",
		trace.MetaKind:     "sim",
	})
	_, err := Shrink(l)
	if err == nil {
		t.Fatal("Shrink accepted a trace with no operations")
	}
	if !strings.Contains(err.Error(), "nothing to shrink") {
		t.Fatalf("unhelpful refusal: %v", err)
	}
}

func TestShrinkAlreadyMinimalIsNoOp(t *testing.T) {
	l := minimalAltbitViolation(t)
	sr, err := Shrink(l)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if sr.Property != "DL1" {
		t.Fatalf("preserved property = %q, want DL1", sr.Property)
	}
	if sr.FinalOps != sr.OriginalOps {
		t.Fatalf("shrink removed ops from a minimal certificate: %d -> %d",
			sr.OriginalOps, sr.FinalOps)
	}
	rr, err := Run(sr.Log)
	if err != nil {
		t.Fatalf("replaying no-op shrink output: %v", err)
	}
	if rr.Verdict == nil || rr.Verdict.Property != "DL1" {
		t.Fatalf("no-op shrink output verdict = %v, want DL1", rr.Verdict)
	}
}

func TestShrinkRefusesNonViolatingTrace(t *testing.T) {
	// A clean recorded run: correct protocol, lossless channels.
	l, res := record(t, replayLookup(t, "cntlinear"), 1, 3)
	if res.Err != nil {
		t.Fatalf("clean run failed: %v", res.Err)
	}
	_, err := Shrink(l)
	if err == nil {
		t.Fatal("Shrink accepted a non-violating trace")
	}
	if !strings.Contains(err.Error(), "nothing to shrink") {
		t.Fatalf("unhelpful refusal: %v", err)
	}
}

// TestShrinkDL3OnlyTraceShrinks: a trace that strands a message (quiescent
// DL3 failure) but violates no safety property now shrinks under the
// liveness oracle. Altbit recovers under the reliable closing drive (the
// transmitter retransmits until confirmed), so the preserved failure is the
// *schedule*'s — the adversarial oracle — and the minimal counterexample is
// the lone submit: a message accepted by the transmitter that the recorded
// channel behaviour never delivers.
func TestShrinkDL3OnlyTraceShrinks(t *testing.T) {
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    replayLookup(t, "altbit"),
		DataPolicy:  channel.DelayAll(),
		AckPolicy:   channel.Reliable(),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	r.StepTransmit() // delayed: message stranded forever
	sr, err := Shrink(l)
	if err != nil {
		t.Fatalf("Shrink refused a DL3-only trace: %v", err)
	}
	if sr.Property != "DL3" {
		t.Fatalf("preserved property = %q, want DL3", sr.Property)
	}
	if sr.Oracle != "DL3-adversarial" {
		t.Fatalf("oracle = %q, want DL3-adversarial (altbit recovers under the reliable drive)", sr.Oracle)
	}
	if sr.FinalOps != 1 {
		t.Fatalf("FinalOps = %d, want 1 (the lone submit)", sr.FinalOps)
	}
	if v, ok := sr.Log.Verdict(); !ok || v == nil || v.Property != "DL3" {
		t.Fatalf("shrunk log verdict = %v (present=%v), want DL3", v, ok)
	}
	// 1-minimality: removing the one remaining op loses the violation — an
	// empty trace submits nothing, so nothing can strand.
	out, err := CloseDrive(trace.NewLog(map[string]string{
		trace.MetaProtocol: "altbit", trace.MetaKind: "sim",
	}), DriveAdversarial, 0)
	if err != nil {
		t.Fatalf("CloseDrive on empty trace: %v", err)
	}
	if out.DL3 != nil {
		t.Fatalf("empty trace fails DL3 under adversarial drive: %v", out.DL3)
	}
}
