package replay

import (
	"bytes"
	"testing"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// FuzzReplayRobustness feeds arbitrary bytes through the trace decoder into
// the replayer. Replay is the trust boundary for certificates — shrunk,
// hand-edited and fuzzer-generated traces all pass through Run — so for any
// input whatsoever it must either return an error or a result, never panic.
// (Infeasible stale deliveries, exhausted decision streams, unknown
// protocols and observational traces are all defined, non-panicking
// outcomes.)
func FuzzReplayRobustness(f *testing.F) {
	// Seed with a genuine recorded run, a truncation of it, and junk.
	l := trace.NewLog(map[string]string{
		trace.MetaProtocol: "altbit",
		trace.MetaKind:     "sim",
	})
	l.Emit(trace.Event{Kind: trace.KindSubmit, Msg: ioa.Message{ID: 0, Payload: "m0"}})
	l.Emit(trace.Event{Kind: trace.KindTransmit})
	l.Emit(trace.Event{Kind: trace.KindDecision, Dir: ioa.TtoR, Decision: trace.DeliverNow})
	l.Emit(trace.Event{Kind: trace.KindStale, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "d0"}})
	l.Emit(trace.Event{Kind: trace.KindDrain})
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	f.Add([]byte("NFTRC\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		// Cap the raw input so a decoded log cannot stall an iteration with
		// megabyte payloads or a million-op replay; robustness is about
		// shape, not scale.
		if len(b) > 4096 {
			return
		}
		l, err := trace.ReadLog(bytes.NewReader(b))
		if err != nil {
			return // malformed file: the codec's problem, tested there
		}
		res, err := Run(l)
		if err == nil && res == nil {
			t.Fatal("Run returned neither result nor error")
		}
	})
}
