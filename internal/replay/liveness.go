package replay

// Liveness certification: the executable analogue of Theorem 2.1's pumping
// argument. A finite trace that strands a submitted message is not, by
// itself, a liveness violation — the channel might still deliver everything
// later. What the paper's proof actually exhibits is a *cycle*: a repeated
// joint configuration with no delivery progress, which the channel can
// iterate forever, so no continuation ever delivers the stranded message.
//
// CloseDrive builds the quiescence-forcing closing extension: replay the
// trace, then switch the channels to the mode's closing behaviour (Reliable
// delivers everything; adversarial drops everything) and keep driving the
// protocol — transmitter steps and ack drains only, no new send_msg — until
// it either goes quiescent, repeats a joint configuration, or exhausts the
// round budget. Because the drive is deterministic and the cycle key
// includes the full joint configuration (both endpoint state keys, both
// channels' multiset contents, and the delivery count), a repeated key means
// the system will loop through exactly those configurations forever: the
// stranded message is never delivered under *any* continuation the closing
// channel produces. Under the reliable closure that is the paper's livelock
// — the protocol fails even with the physical layer behaving optimally.
// Under the adversarial closure it certifies the *schedule*: the recorded
// channel behaviour, continued, pins the protocol in a no-progress loop.
//
// CertifyLivelock packages the find as a LivelockCert{prefix, cycle} and
// then *checks its own work*: the cycle is pumped N times into an ordinary
// NFT trace and replayed, and the certificate is issued only if the pumped
// trace reproduces with zero divergence, stays safety-clean, and still fails
// the quiescent DL3 check. State keys are protocol-supplied, so the pump
// replay — not the key comparison — is the ground truth.

import (
	"fmt"
	"strconv"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DriveMode selects the channel behaviour of the closing extension.
type DriveMode int

const (
	// DriveReliable closes the trace under the optimal physical layer: every
	// packet sent from now on is delivered immediately, the transmitter is
	// stepped and the receiver drained until quiescence or a repeated joint
	// configuration. A DL3 failure surviving this drive is the protocol's
	// own fault — the paper's livelock notion.
	DriveReliable DriveMode = iota
	// DriveAdversarial closes the trace under the fully adversarial physical
	// layer, which delivers nothing further: every packet the drive sends is
	// dropped on arrival, so the joint configuration can only shrink or
	// repeat, never grow. The drive still steps the transmitter and drains
	// acks under this closure, and a repeated configuration certifies a
	// cycle *under the recorded schedule*: the channel behaviour captured in
	// the trace, continued adversarially, pins the protocol in a no-progress
	// loop. A DL3 failure under this mode blames the schedule, not the
	// protocol — it is the oracle for shrinking stranded-message schedules
	// (which a correct protocol would recover from, given a fair channel).
	DriveAdversarial
)

func (m DriveMode) String() string {
	switch m {
	case DriveReliable:
		return "reliable"
	case DriveAdversarial:
		return "adversarial"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultDriveBudget bounds the closing drive's rounds when the caller does
// not. One round is one transmitter step plus one ack drain; protocols in
// this repo cycle within a handful of rounds, so 512 is generous.
const DefaultDriveBudget = 512

// DriveOutcome reports what the closing extension did to a replayed trace.
type DriveOutcome struct {
	// Mode is the drive mode that produced this outcome.
	Mode DriveMode
	// Rounds counts the executed drive rounds.
	Rounds int
	// Quiescent is set when the transmitter went idle: every accepted
	// message was confirmed, nothing more will happen.
	Quiescent bool
	// CycleFound is set when a joint configuration repeated with no delivery
	// progress; RepeatedKey is that configuration's canonical key, and
	// Log.Events[CycleStart:CycleEnd] is one full cycle of events.
	CycleFound           bool
	RepeatedKey          string
	CycleStart, CycleEnd int
	// Safety and DL3 are the checker verdicts over the driven execution
	// (replayed trace plus closing extension); nil when the property holds.
	Safety *ioa.Violation
	DL3    *ioa.Violation
	// Submitted and Delivered count messages over the driven execution.
	Submitted, Delivered int
	// Log is the capture log of the driven execution: the replayed
	// operations followed by the drive's own operations and decisions.
	Log *trace.Log
	// Ops, StaleSkipped and DecisionsExhausted carry the replay bookkeeping
	// of the re-driven prefix (see Result).
	Ops                int
	StaleSkipped       int
	DecisionsExhausted bool
}

// appendDriveKey canonically encodes the joint configuration the cycle
// detector hashes on: both endpoint state keys, both channels' multiset
// contents, and the delivery count, 0x1f-joined. Including the channel
// contents makes a repeat imply a genuine loop of the deterministic drive
// (endpoint keys alone are not enough for genie-consulting protocols, whose
// moves read channel occupancy); including the delivery count makes a
// repeat imply no delivery progress, which is what the pumping argument
// needs. It appends into dst so the drive loop renders each round's key
// into one reused buffer — this is the hottest line of livelock
// certification, which in turn dominates shrink-heavy fuzz campaigns.
func appendDriveKey(dst []byte, r *sim.Runner) []byte {
	dst = protocol.AppendStateKeyOf(dst, r.T)
	dst = append(dst, 0x1f)
	dst = protocol.AppendStateKeyOf(dst, r.R)
	dst = append(dst, 0x1f)
	dst = r.ChData.AppendKey(dst)
	dst = append(dst, 0x1f)
	dst = r.ChAck.AppendKey(dst)
	dst = append(dst, 0x1f)
	return strconv.AppendInt(dst, int64(len(r.Delivered())), 10)
}

// CloseDrive replays l and drives the quiescence-forcing closing extension:
// no new messages are submitted, and the channels switch to the behaviour
// selected by mode. budget bounds the drive rounds; <= 0 means
// DefaultDriveBudget.
func CloseDrive(l *trace.Log, mode DriveMode, budget int) (*DriveOutcome, error) {
	if budget <= 0 {
		budget = DefaultDriveBudget
	}
	rd, err := redrive(l)
	if err != nil {
		return nil, err
	}
	out := &DriveOutcome{
		Mode:               mode,
		Ops:                rd.ops,
		StaleSkipped:       rd.staleSkipped,
		DecisionsExhausted: rd.decisionsExhausted,
		Log:                rd.log,
	}
	r := rd.runner

	if mode == DriveReliable {
		r.SetPolicies(channel.Reliable(), channel.Reliable())
	} else {
		// Adversarial: every packet sent from here on is dropped on arrival
		// (DropEvery(1) drops the 1st, 2nd, ... — all of them), so the joint
		// configuration cannot grow and the drive either quiesces or cycles.
		r.SetPolicies(channel.DropEvery(1), channel.DropEvery(1))
	}
	seen := make(map[string]int) // joint configuration -> event index at first sighting
	var kbuf []byte
	for out.Rounds < budget {
		if !r.T.Busy() {
			out.Quiescent = true
			break
		}
		kbuf = appendDriveKey(kbuf[:0], r)
		if at, ok := seen[string(kbuf)]; ok { // no-alloc map probe
			out.CycleFound = true
			out.RepeatedKey = string(kbuf)
			out.CycleStart = at
			out.CycleEnd = len(rd.log.Events)
			break
		}
		seen[string(kbuf)] = len(rd.log.Events)
		r.StepTransmit()
		r.DrainAcks()
		out.Rounds++
	}

	run := r.Result()
	if err := ioa.CheckSafety(run.Trace); err != nil {
		out.Safety, _ = ioa.AsViolation(err)
	}
	if err := ioa.CheckDL3Quiescent(run.Trace); err != nil {
		out.DL3, _ = ioa.AsViolation(err)
	}
	out.Submitted = r.SentMessages()
	out.Delivered = len(r.Delivered())
	return out, nil
}

// Meta keys stamped on pumped livelock certificates.
const (
	// MetaLivelockPump records how many times the cycle was pumped.
	MetaLivelockPump = "livelock-pump"
	// MetaLivelockCycleOps records the driver-operation count of one cycle.
	MetaLivelockCycleOps = "livelock-cycle-ops"
	// MetaLivelockKey records the repeated joint configuration.
	MetaLivelockKey = "livelock-key"
	// MetaLivelockMode records the closing-drive mode the cycle was
	// certified under ("reliable" or "adversarial").
	MetaLivelockMode = "livelock-mode"
)

// LivelockCert is a certified livelock: a prefix that reaches a joint
// configuration, and a non-empty cycle of events that returns to it with no
// delivery progress. Pumping the cycle any number of times yields a valid
// replayable trace that still strands the same messages — the executable
// form of Theorem 2.1's "the channel can loop forever" argument.
type LivelockCert struct {
	// Protocol is the certified protocol's name.
	Protocol string
	// Mode is the closing-drive mode the cycle was found under. Reliable
	// certifies a protocol livelock (the paper's notion); adversarial
	// certifies that the recorded schedule, continued, loops forever.
	Mode DriveMode
	// RepeatedKey is the repeated joint configuration (driveKey encoding).
	RepeatedKey string
	// Prefix reaches the repeated configuration; Cycle returns to it.
	Prefix, Cycle []trace.Event
	// PrefixOps and CycleOps count driver operations in each part.
	PrefixOps, CycleOps int
	// DL3 is the liveness violation the certificate witnesses.
	DL3 *ioa.Violation
}

func countOps(events []trace.Event) int {
	n := 0
	for _, e := range events {
		if e.Kind.IsOp() {
			n++
		}
	}
	return n
}

// Pumped renders the certificate as an ordinary NFT trace with the cycle
// repeated n (>= 1) times, ending in a DL3 verdict event. The result is a
// self-contained certificate: replaying it re-derives the violation with
// zero divergence, and any nftrace tooling can inspect it.
func (c *LivelockCert) Pumped(n int) *trace.Log {
	if n < 1 {
		n = 1
	}
	p := trace.NewLog(nil)
	p.SetMeta(trace.MetaProtocol, c.Protocol)
	p.SetMeta(trace.MetaKind, "sim")
	p.SetMeta(trace.MetaSource, "livelock-pump")
	p.SetMeta(MetaLivelockPump, strconv.Itoa(n))
	p.SetMeta(MetaLivelockCycleOps, strconv.Itoa(c.CycleOps))
	p.SetMeta(MetaLivelockKey, c.RepeatedKey)
	p.SetMeta(MetaLivelockMode, c.Mode.String())
	p.Events = append(p.Events, c.Prefix...)
	for i := 0; i < n; i++ {
		p.Events = append(p.Events, c.Cycle...)
	}
	p.Emit(verdictEvent(nil, c.DL3))
	return p
}

// CertifyOptions tunes CertifyLivelock. The zero value is ready to use.
type CertifyOptions struct {
	// Mode selects the closing drive the cycle is certified under. The zero
	// value is DriveReliable, the paper's livelock notion; DriveAdversarial
	// certifies the cycle under the recorded schedule's drop-everything
	// continuation instead.
	Mode DriveMode
	// DriveBudget bounds the closing drive's rounds; <= 0 means
	// DefaultDriveBudget.
	DriveBudget int
	// Pump is how many cycle repetitions the verification replay checks;
	// <= 0 means 3.
	Pump int
}

func (o CertifyOptions) withDefaults() CertifyOptions {
	if o.DriveBudget <= 0 {
		o.DriveBudget = DefaultDriveBudget
	}
	if o.Pump <= 0 {
		o.Pump = 3
	}
	return o
}

// CertifyLivelock replays l, drives the closing extension selected by
// opts.Mode (reliable by default), and — if the system strands a message
// while looping through a repeated joint configuration — returns the
// pumping-lemma certificate. The certificate is verified before it is
// returned: its cycle pumped opts.Pump times must replay with zero
// divergence, stay safety-clean, and still fail the quiescent DL3 check.
// Traces that recover, stall without a cycle, or violate safety are refused
// with a diagnosis.
func CertifyLivelock(l *trace.Log, opts CertifyOptions) (*LivelockCert, error) {
	opts = opts.withDefaults()
	out, err := CloseDrive(l, opts.Mode, opts.DriveBudget)
	if err != nil {
		return nil, err
	}
	if out.Safety != nil {
		return nil, fmt.Errorf("replay: driven trace violates %s; livelock certification wants a safety-clean liveness failure (use Shrink for safety violations): %v",
			out.Safety.Property, out.Safety)
	}
	if out.DL3 == nil {
		return nil, fmt.Errorf("replay: protocol recovers under the %s closing drive (quiescent=%v after %d rounds, %d/%d delivered); no livelock to certify",
			opts.Mode, out.Quiescent, out.Rounds, out.Delivered, out.Submitted)
	}
	if !out.CycleFound {
		return nil, fmt.Errorf("replay: %d message(s) stranded but no joint configuration repeated within %d drive rounds; cannot certify a pumping cycle",
			out.Submitted-out.Delivered, out.Rounds)
	}
	cert := &LivelockCert{
		Protocol:    out.Log.Meta[trace.MetaProtocol],
		Mode:        opts.Mode,
		RepeatedKey: out.RepeatedKey,
		Prefix:      append([]trace.Event(nil), out.Log.Events[:out.CycleStart]...),
		Cycle:       append([]trace.Event(nil), out.Log.Events[out.CycleStart:out.CycleEnd]...),
		DL3:         out.DL3,
	}
	cert.PrefixOps = countOps(cert.Prefix)
	cert.CycleOps = countOps(cert.Cycle)
	if cert.CycleOps == 0 {
		return nil, fmt.Errorf("replay: repeated configuration with an empty cycle (stalled, not cycling); nothing to pump")
	}

	// Pump verification — the certificate must prove itself by replay, since
	// state keys are protocol-supplied and could in principle under-report.
	rr, err := Run(cert.Pumped(opts.Pump))
	if err != nil {
		return nil, fmt.Errorf("replay: verifying pumped certificate: %w", err)
	}
	if rr.Divergence != nil {
		return nil, fmt.Errorf("replay: cycle does not pump: replay diverged at %v", rr.Divergence)
	}
	if rr.Verdict != nil {
		return nil, fmt.Errorf("replay: pumped certificate violates %s; refusing to certify it as a livelock", rr.Verdict.Property)
	}
	if rr.DL3 == nil {
		return nil, fmt.Errorf("replay: pumped certificate delivers everything; cycle is not a livelock")
	}
	return cert, nil
}
