package replay

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

// record runs proto for msgs messages under seeded probabilistic channels
// and returns the recorded log plus the original result.
func record(t *testing.T, proto protocol.Protocol, seed int64, msgs int) (*trace.Log, sim.Result) {
	t.Helper()
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    proto,
		DataPolicy:  channel.Probabilistic(0.3, rand.New(rand.NewSource(seed))),
		AckPolicy:   channel.Probabilistic(0.2, rand.New(rand.NewSource(seed+1))),
		RecordTrace: true,
		TraceLog:    l,
	})
	res := r.Run(msgs)
	if res.Err != nil {
		t.Fatalf("%s seed %d: run failed: %v", proto.Name(), seed, res.Err)
	}
	return l, res
}

// TestReplayReproduces is the subsystem's core property: for every protocol
// and seed, replaying a recording reproduces the execution bit for bit —
// same event stream, same deliveries, same metrics, same verdicts.
func TestReplayReproduces(t *testing.T) {
	protos := []protocol.Protocol{
		protocol.NewSeqNum(),
		protocol.NewAltBit(),
		protocol.NewCntLinear(),
	}
	for _, proto := range protos {
		for seed := int64(0); seed < 20; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", proto.Name(), seed), func(t *testing.T) {
				l, orig := record(t, proto, seed, 4)
				rr, err := Run(l)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if rr.Divergence != nil {
					t.Fatalf("replay diverged: %v", rr.Divergence)
				}
				if rr.StaleSkipped != 0 || rr.DecisionsExhausted {
					t.Errorf("unfaithful replay: staleSkipped=%d exhausted=%v", rr.StaleSkipped, rr.DecisionsExhausted)
				}
				if !reflect.DeepEqual(rr.Metrics, orig.Metrics) {
					t.Errorf("metrics mismatch:\nreplayed %+v\noriginal %+v", rr.Metrics, orig.Metrics)
				}
				if !reflect.DeepEqual(rr.Delivered, orig.Delivered) {
					t.Errorf("deliveries mismatch: %v vs %v", rr.Delivered, orig.Delivered)
				}
				// Checker verdicts must agree with checking the original run.
				origErr := ioa.CheckSafety(orig.Trace)
				if (rr.Verdict == nil) != (origErr == nil) {
					t.Errorf("verdict mismatch: replayed %v, original %v", rr.Verdict, origErr)
				}
				if rr.DL3 != nil {
					t.Errorf("completed run failed quiescent DL3: %v", rr.DL3)
				}
			})
		}
	}
}

// violatingAltbitLog scripts the classic alternating-bit duplication attack
// with the step API, padded with removable no-op fat so shrinking has work
// to do: confirm two messages while a delayed copy of the first data packet
// sits in transit, then deliver the stale copy — the receiver's bit has
// wrapped around, so it accepts the old packet as a new message (DL1).
func violatingAltbitLog(t *testing.T) *trace.Log {
	t.Helper()
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    protocol.NewAltBit(),
		DataPolicy:  channel.DelayFirst(1),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	r.DrainAcks() // removable fat: nothing to drain yet
	for r.T.Busy() {
		r.StepTransmit()
		r.DrainAcks()
	}
	r.SubmitMsg("m1")
	for r.T.Busy() {
		r.StepTransmit()
		r.DrainAcks()
	}
	r.DrainAcks() // more removable fat
	stale := r.ChData.Packets()
	if len(stale) != 1 {
		t.Fatalf("expected exactly one delayed data packet, have %v", stale)
	}
	if err := r.DeliverStale(ioa.TtoR, stale[0]); err != nil {
		t.Fatalf("DeliverStale: %v", err)
	}
	err := ioa.CheckSafety(r.Recorder().Trace())
	v, ok := ioa.AsViolation(err)
	if !ok || v.Property != "DL1" {
		t.Fatalf("attack did not produce a DL1 violation: %v", err)
	}
	l.Emit(trace.Event{Kind: trace.KindVerdict, Property: v.Property, Index: v.Index, Detail: v.Detail})
	return l
}

func TestReplayReportsRecordedViolation(t *testing.T) {
	l := violatingAltbitLog(t)
	rr, err := Run(l)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rr.Verdict == nil || rr.Verdict.Property != "DL1" {
		t.Fatalf("replayed verdict = %v, want DL1", rr.Verdict)
	}
	if !rr.HadRecordedVerdict || !rr.VerdictMatches {
		t.Errorf("recorded verdict not matched: had=%v matches=%v", rr.HadRecordedVerdict, rr.VerdictMatches)
	}
	if rr.Divergence != nil {
		t.Errorf("faithful replay diverged: %v", rr.Divergence)
	}
}

// TestShrinkPreservesViolation: the shrunk trace must be strictly smaller
// and still violate DL1 when replayed.
func TestShrinkPreservesViolation(t *testing.T) {
	l := violatingAltbitLog(t)
	sr, err := Shrink(l)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if sr.Property != "DL1" {
		t.Errorf("preserved property = %q, want DL1", sr.Property)
	}
	if sr.FinalEvents >= sr.OriginalEvents || sr.FinalOps >= sr.OriginalOps {
		t.Errorf("not strictly smaller: events %d→%d, ops %d→%d",
			sr.OriginalEvents, sr.FinalEvents, sr.OriginalOps, sr.FinalOps)
	}
	rr, err := Run(sr.Log)
	if err != nil {
		t.Fatalf("replaying shrunk trace: %v", err)
	}
	if rr.Verdict == nil || rr.Verdict.Property != "DL1" {
		t.Fatalf("shrunk trace verdict = %v, want DL1", rr.Verdict)
	}
	// The shrunk log is a re-recording, so it must replay with no divergence.
	if rr.Divergence != nil {
		t.Errorf("shrunk trace is not self-consistent: %v", rr.Divergence)
	}
	// Shrinking a shrunk trace should find nothing more to remove.
	sr2, err := Shrink(sr.Log)
	if err != nil {
		t.Fatalf("re-shrinking: %v", err)
	}
	if sr2.FinalOps > sr.FinalOps {
		t.Errorf("shrink not idempotent: ops %d → %d", sr.FinalOps, sr2.FinalOps)
	}
}

func TestRunRejectsObservationalAndUnknown(t *testing.T) {
	l := trace.NewLog(map[string]string{trace.MetaKind: "netlink", trace.MetaProtocol: "seqnum"})
	if _, err := Run(l); err == nil {
		t.Error("netlink trace accepted for replay")
	}
	l2 := trace.NewLog(map[string]string{trace.MetaProtocol: "nosuch"})
	if _, err := Run(l2); err == nil {
		t.Error("unknown protocol accepted")
	}
	l3 := trace.NewLog(nil)
	if _, err := Run(l3); err == nil {
		t.Error("protocol-less trace accepted")
	}
}

func TestLookupProtocolFamilies(t *testing.T) {
	for _, name := range []string{"seqnum", "altbit", "cntlinear", "cntexp", "cntk4", "cntk7", "cheat1", "cheat3", "livelock", "cntnobind"} {
		p, err := LookupProtocol(name)
		if err != nil {
			t.Errorf("LookupProtocol(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("LookupProtocol(%q).Name() = %q", name, p.Name())
		}
	}
	for _, bad := range []string{"", "cheat", "cheat0", "cntk-1", "fifo"} {
		if _, err := LookupProtocol(bad); err == nil {
			t.Errorf("LookupProtocol(%q) unexpectedly succeeded", bad)
		}
	}
}
