// Package replay re-drives recorded executions deterministically.
//
// A trace.Log captured by internal/sim contains two interleaved strands: the
// driver *operations* (submit, transmit, drain, stale delivery) and the
// *observations* they caused (packet sends and receives, message deliveries,
// channel-policy decisions). Replay re-issues the operations against a fresh
// runner while substituting the recorded decision stream for the channel
// policies — the only source of nondeterminism in a simulated execution — so
// the original run is reproduced bit for bit. The replayed execution is
// re-checked against the paper's properties (PL1 on both channels, DL1, DL2,
// and quiescent DL3) independently of the recorded verdict, and re-recorded
// into a fresh log, which is what makes trace shrinking (see Shrink) sound:
// a shrunk trace is never trusted, it is always re-executed and re-judged.
package replay

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// LookupProtocol resolves a recorded protocol name, including the
// parameterised families (cheat<d>, cntk<k>), the deliberately broken
// specimens (livelock, cntnobind) that are not part of the main registry,
// and the transport-layer endpoint families (swindow-s<S>-w<W>,
// swindow-unbounded-w<W>, gbn-s<S>-w<W>, gbn-unbounded-w<W>). Transport
// names resolve to their *adapted* form (transport.Adapt) — behaviourally
// identical to the native endpoints (internal/conformance proves it per
// schedule), and additionally auditable by `nfvet audit`.
func LookupProtocol(name string) (protocol.Protocol, error) {
	if p, ok := protocol.Registry()[name]; ok {
		return p, nil
	}
	switch name {
	case "livelock":
		return protocol.NewLivelock(), nil
	case "cntnobind":
		return protocol.NewCntNoBind(), nil
	case "arrival":
		return protocol.NewArrival(), nil
	}
	if s, ok := strings.CutPrefix(name, "cheat"); ok {
		if d, err := strconv.Atoi(s); err == nil && d > 0 {
			return protocol.NewCheat(d), nil
		}
	}
	if s, ok := strings.CutPrefix(name, "cntk"); ok {
		if k, err := strconv.Atoi(s); err == nil && k > 0 {
			return protocol.NewCntK(k), nil
		}
	}
	if s, ok := strings.CutPrefix(name, "stabdl"); ok {
		if c, err := strconv.Atoi(s); err == nil && c > 0 {
			return protocol.NewStabDL(c), nil
		}
	}
	if p, ok := transport.Parse(name); ok {
		return p, nil
	}
	return nil, fmt.Errorf("replay: unknown protocol %q (known: %s, plus livelock, cntnobind, arrival, cheat<d>, cntk<k>, stabdl<c>, swindow-s<S>-w<W>, gbn-s<S>-w<W>, and their -unbounded-w<W> forms)",
		name, strings.Join(protocol.Names(), ", "))
}

// Divergence reports the first point where the replayed execution differs
// from the recording. A faithful replay of an unmodified trace has none; a
// shrunk or hand-edited trace usually diverges (the removed operations change
// what is feasible), which is fine — the replay's own verdict is what counts.
type Divergence struct {
	// Index is the position in the replayable projection (operations,
	// observations and decisions; RNG-audit and verdict events excluded).
	Index int
	// Recorded and Replayed render the mismatching events ("<none>" when one
	// side is exhausted).
	Recorded, Replayed string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("event %d: recorded %s, replayed %s", d.Index, d.Recorded, d.Replayed)
}

// Result is the outcome of replaying a trace.
type Result struct {
	// Protocol is the protocol name from the trace metadata.
	Protocol string
	// Delivered lists payloads delivered to the higher layer during replay.
	Delivered []string
	// Metrics are the replayed run's resource measurements.
	Metrics sim.Metrics
	// Trace is the replayed execution's ioa trace (always recorded).
	Trace ioa.Trace
	// Verdict is the safety re-check of the replayed execution (PL1 both
	// directions, DL1, DL2); nil if safe.
	Verdict *ioa.Violation
	// DL3 is the quiescent-liveness check of the replayed execution; nil if
	// every submitted message was delivered. Attack traces that strand
	// messages in flight fail it by design, so it is reported separately
	// from Verdict.
	DL3 *ioa.Violation
	// RecordedVerdict is the verdict event stored in the input trace, if
	// any; HadRecordedVerdict says whether one was present.
	RecordedVerdict    *ioa.Violation
	HadRecordedVerdict bool
	// VerdictMatches reports whether the re-checked verdict agrees with the
	// recorded one: same violated safety property, both clean (a trace
	// without a verdict event counts as clean), or — for a recorded DL3
	// verdict, as liveness certificates carry — a replay that is safety-clean
	// and still fails the quiescent-liveness check.
	VerdictMatches bool
	// Log is the re-recorded event log of the replayed execution, with a
	// fresh verdict event appended. Shrinking uses it as the canonical form
	// of a candidate trace.
	Log *trace.Log
	// Ops counts the re-issued driver operations.
	Ops int
	// StaleSkipped counts recorded stale deliveries that were infeasible in
	// the replayed execution (possible only for shrunk or edited traces).
	StaleSkipped int
	// DecisionsExhausted is set when the protocol consulted a channel policy
	// more often than the recording did (ditto).
	DecisionsExhausted bool
	// Divergence is the first mismatch between recording and replay, nil if
	// the replay reproduced the recording exactly.
	Divergence *Divergence
}

// redriven is the raw outcome of re-issuing a log's operations: the runner
// (still live, so callers can keep driving it), the fresh capture log, and
// the replay bookkeeping. Run consumes it directly; the liveness certifier
// (liveness.go) keeps driving the runner past the recorded operations.
type redriven struct {
	runner             *sim.Runner
	log                *trace.Log
	ops                int
	staleSkipped       int
	decisionsExhausted bool
}

// redrive re-issues a recorded log's operations against a fresh runner with
// the recorded decision streams substituted for the channel policies. It
// fails on traces that are not re-drivable: unknown protocols, or
// observational recordings (e.g. netlink session logs, which capture only
// one vantage point of a real network run and cannot be re-executed).
func redrive(l *trace.Log) (*redriven, error) { return redriveWith(l, nil) }

// redriveWith is redrive with an optional protocol override: when proto is
// non-nil it is driven in place of the trace's protocol metadata. The
// differential conformance harness (internal/conformance) uses the override
// to push one schedule through two implementations of the same protocol.
func redriveWith(l *trace.Log, proto protocol.Protocol) (*redriven, error) {
	// "sim" traces come from the simulator; "soak" traces come from the
	// lock-step netlink sessions, which drive a sim.Runner whose channel
	// behaviour is decided by a real wire — every wire outcome is lifted
	// into the recorded decision/stale vocabulary, so the log is exactly as
	// re-drivable as a simulator log. Other kinds (e.g. the free-running
	// "netlink" recordings) are observational and refused.
	if kind := l.Meta[trace.MetaKind]; kind != "" && kind != "sim" && kind != "soak" {
		return nil, fmt.Errorf("replay: trace kind %q is observational, only %q and %q traces can be re-driven", kind, "sim", "soak")
	}
	if proto == nil {
		name := l.Meta[trace.MetaProtocol]
		if name == "" {
			return nil, fmt.Errorf("replay: trace has no %q metadata", trace.MetaProtocol)
		}
		p, err := LookupProtocol(name)
		if err != nil {
			return nil, err
		}
		proto = p
	}

	rd := &redriven{log: trace.NewLog(nil)}
	//nfvet:allow maprange (order-insensitive copy into another map)
	for k, v := range l.Meta {
		rd.log.SetMeta(k, v)
	}
	rd.log.SetMeta(trace.MetaSource, "replay")
	r := sim.NewRunner(sim.Config{
		Protocol: proto,
		// Substitute the recorded decision streams for the channel policies.
		// Delay is the conservative fallback once a stream runs dry: extra
		// packets strand in transit rather than being delivered in ways the
		// recording never sanctioned.
		DataPolicy:  channel.FromDecisions(l.Decisions(ioa.TtoR), channel.Delay, &rd.decisionsExhausted),
		AckPolicy:   channel.FromDecisions(l.Decisions(ioa.RtoT), channel.Delay, &rd.decisionsExhausted),
		RecordTrace: true,
		TraceLog:    rd.log,
	})
	rd.runner = r

	for _, e := range l.Events {
		if !e.Kind.IsOp() {
			continue
		}
		rd.ops++
		switch e.Kind {
		case trace.KindSubmit:
			r.SubmitMsg(e.Msg.Payload)
		case trace.KindTransmit:
			r.StepTransmit()
		case trace.KindDrain:
			r.DrainAcks()
		case trace.KindStale:
			if err := r.DeliverStale(e.Dir, e.Pkt); err != nil {
				// The delayed copy does not exist in this (shrunk) execution;
				// the move is infeasible and skipped.
				rd.staleSkipped++
			}
		case trace.KindDropStale:
			if err := r.DropStale(e.Dir, e.Pkt); err != nil {
				rd.staleSkipped++
			}
		case trace.KindCorrupt:
			// Corrupted-start moves are structural: a trace that replays
			// them out of range or against a non-Corruptible protocol is
			// malformed, not shrunk, so the failure is fatal rather than
			// skipped.
			if err := r.CorruptStart(e.Index, int(e.Bits)); err != nil {
				return nil, fmt.Errorf("replay: %w", err)
			}
		case trace.KindPoison:
			if err := r.Poison(e.Dir, e.Pkt); err != nil {
				return nil, fmt.Errorf("replay: %w", err)
			}
		}
	}
	return rd, nil
}

// Run replays a recorded simulation trace and re-checks it.
func Run(l *trace.Log) (*Result, error) { return runWith(l, nil) }

// RunAs replays a recorded simulation trace against the supplied protocol
// implementation instead of resolving the trace's protocol metadata. The
// differential conformance harness replays one schedule through a native
// endpoint pair and its adapted form and compares the two Results; any
// implementation claiming behavioural equivalence with the recorded
// protocol can be checked the same way.
func RunAs(l *trace.Log, p protocol.Protocol) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("replay: RunAs needs a protocol")
	}
	return runWith(l, p)
}

func runWith(l *trace.Log, p protocol.Protocol) (*Result, error) {
	rd, err := redriveWith(l, p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Protocol:           l.Meta[trace.MetaProtocol],
		Ops:                rd.ops,
		StaleSkipped:       rd.staleSkipped,
		DecisionsExhausted: rd.decisionsExhausted,
	}
	rl := rd.log

	run := rd.runner.Result()
	res.Delivered = run.Delivered
	res.Metrics = run.Metrics
	res.Trace = run.Trace
	if err := ioa.CheckSafety(run.Trace); err != nil {
		res.Verdict, _ = ioa.AsViolation(err)
	}
	if err := ioa.CheckDL3Quiescent(run.Trace); err != nil {
		res.DL3, _ = ioa.AsViolation(err)
	}
	res.RecordedVerdict, res.HadRecordedVerdict = l.Verdict()
	res.VerdictMatches = verdictMatches(res.Verdict, res.DL3, res.RecordedVerdict)
	res.Divergence = diverge(l, rl)

	rl.Emit(verdictEvent(res.Verdict, res.DL3))
	res.Log = rl
	return res, nil
}

// verdictEvent renders the replayed checker outcome as a verdict event: the
// safety violation if there is one, else the quiescent-liveness (DL3)
// violation, else a clean verdict. Safety wins because it is the stronger
// finding — a DL3 miss alongside a safety break is scheduling residue.
func verdictEvent(safety, dl3 *ioa.Violation) trace.Event {
	ve := trace.Event{Kind: trace.KindVerdict}
	switch {
	case safety != nil:
		ve.Property, ve.Index, ve.Detail = safety.Property, safety.Index, safety.Detail
	case dl3 != nil:
		ve.Property, ve.Index, ve.Detail = dl3.Property, dl3.Index, dl3.Detail
	}
	return ve
}

// verdictMatches compares the replayed checker outcome against a recorded
// verdict. A recorded DL3 verdict is a liveness claim: it is reproduced when
// the replay is safety-clean and still strands a message. Safety verdicts
// must reproduce the same property; a clean (or absent) recorded verdict
// requires a safety-clean replay.
func verdictMatches(safety, dl3, recorded *ioa.Violation) bool {
	if recorded == nil {
		return safety == nil
	}
	if recorded.Property == "DL3" {
		return safety == nil && dl3 != nil
	}
	return safety != nil && safety.Property == recorded.Property
}

// replayable projects a log onto the events a replay must reproduce:
// operations, observations and decisions. RNG-audit and verdict events are
// bookkeeping, not behaviour.
func replayable(l *trace.Log) []trace.Event {
	out := make([]trace.Event, 0, len(l.Events))
	for _, e := range l.Events {
		if e.Kind == trace.KindRNG || e.Kind == trace.KindVerdict {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Diverge compares two logs event for event over their replayable
// projections and returns the first mismatch, or nil when they agree. Beyond
// the recorded-vs-replayed check Run performs, this is the equivalence
// criterion of the conformance harness: two logs with no divergence describe
// the same operations, the same packet sends and deliveries, and the same
// channel decisions.
func Diverge(a, b *trace.Log) *Divergence { return diverge(a, b) }

func diverge(recorded, replayed *trace.Log) *Divergence {
	a, b := replayable(recorded), replayable(replayed)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return &Divergence{Index: i, Recorded: a[i].String(), Replayed: b[i].String()}
		}
	}
	if len(a) != len(b) {
		d := &Divergence{Index: n, Recorded: "<none>", Replayed: "<none>"}
		if n < len(a) {
			d.Recorded = a[n].String()
		}
		if n < len(b) {
			d.Replayed = b[n].String()
		}
		return d
	}
	return nil
}
