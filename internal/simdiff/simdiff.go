// Package simdiff is the differential equivalence harness that locks the
// interned fast paths to their string-keyed reference semantics.
//
// PR 8's interning layer rebuilt the hot loops of the fuzzer and the
// verifier — pooled runners, append-rendered state keys, packed visited-set
// keys, midstate-cached coverage hashes — under an equivalence obligation:
// none of it may change a single observable. This package is where that
// obligation is enforced. Both engines keep their reference implementation
// alive behind a flag (fuzz.Config.StringCore, verify.Config.StringKeys),
// and the harness replays identical schedules through both, asserting
// identical event streams, coverage points, verdicts and canonical space
// hashes. The CI step running this package's tests is the license for every
// future optimisation of the interned core: a fast path that drifts from
// the reference fails here, not in a campaign three PRs later.
package simdiff

import (
	"fmt"

	"repro/internal/fuzz"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/verify"
)

// CompareExec executes in through the string reference executor
// (fuzz.Execute) and through core (the interned engine), with logging on,
// and returns a description of the first divergence, or nil when the two
// phenotypes are identical. Passing the same core across many inputs is
// deliberate — it exercises the pooled-runner Reset path, which is exactly
// where stale state would hide.
func CompareExec(proto protocol.Protocol, core *fuzz.Core, in *fuzz.Input) error {
	want := fuzz.Execute(proto, in, true)
	got := core.Execute(in, true)

	if err := diffViolation("verdict", want.Verdict, got.Verdict); err != nil {
		return err
	}
	if err := diffViolation("dl3", want.DL3, got.DL3); err != nil {
		return err
	}
	if len(want.Points) != len(got.Points) {
		return fmt.Errorf("coverage points: %d (string) vs %d (interned)", len(want.Points), len(got.Points))
	}
	for i := range want.Points {
		if want.Points[i] != got.Points[i] {
			return fmt.Errorf("coverage point %d: %016x (string) vs %016x (interned)", i, want.Points[i], got.Points[i])
		}
	}
	if want.DataUsed != got.DataUsed || want.AckUsed != got.AckUsed {
		return fmt.Errorf("decisions used: data %d/%d, ack %d/%d (string/interned)",
			want.DataUsed, got.DataUsed, want.AckUsed, got.AckUsed)
	}
	if want.StaleHits != got.StaleHits {
		return fmt.Errorf("stale hits: %d (string) vs %d (interned)", want.StaleHits, got.StaleHits)
	}
	if want.Corruption.Key() != got.Corruption.Key() {
		return fmt.Errorf("resolved corruption: %q (string) vs %q (interned)", want.Corruption.Key(), got.Corruption.Key())
	}
	if want.Amnesty != got.Amnesty || want.Charges != got.Charges {
		return fmt.Errorf("amnesty/charges: %d/%d (string) vs %d/%d (interned)",
			want.Amnesty, want.Charges, got.Amnesty, got.Charges)
	}
	if len(want.Log.Events) != len(got.Log.Events) {
		return fmt.Errorf("event stream: %d events (string) vs %d (interned)",
			len(want.Log.Events), len(got.Log.Events))
	}
	for i := range want.Log.Events {
		if want.Log.Events[i] != got.Log.Events[i] {
			return fmt.Errorf("event %d: %s (string) vs %s (interned)",
				i, want.Log.Events[i], got.Log.Events[i])
		}
	}
	return nil
}

// CompareVerify runs the bounded checker twice — once over the legacy
// string-keyed visited set, once over the packed interned store — and
// returns the first divergence in the proof artifact, or nil. SpillDir is
// cleared on both runs (the spill store has its own equivalence test).
func CompareVerify(proto protocol.Protocol, cfg verify.Config) error {
	cfg.SpillDir = ""
	cfg.StringKeys = true
	want, err := verify.Run(proto, cfg)
	if err != nil {
		return fmt.Errorf("string-keyed run: %w", err)
	}
	cfg.StringKeys = false
	got, err := verify.Run(proto, cfg)
	if err != nil {
		return fmt.Errorf("interned run: %w", err)
	}
	return DiffReports(want, got)
}

// DiffReports compares the store-independent content of two verification
// reports and returns the first divergence, or nil. It is shared by the
// string-vs-interned and spill-vs-memory equivalence checks.
func DiffReports(want, got *verify.Report) error {
	if want.States != got.States || want.Edges != got.Edges {
		return fmt.Errorf("graph: %d states/%d edges vs %d states/%d edges",
			want.States, want.Edges, got.States, got.Edges)
	}
	if want.SpaceHash != got.SpaceHash {
		return fmt.Errorf("space hash: %s vs %s", want.SpaceHash, got.SpaceHash)
	}
	if want.Exhausted != got.Exhausted {
		return fmt.Errorf("exhausted: %v vs %v", want.Exhausted, got.Exhausted)
	}
	if want.Verdict != got.Verdict || want.Property != got.Property {
		return fmt.Errorf("verdict: %s/%s vs %s/%s", want.Verdict, want.Property, got.Verdict, got.Property)
	}
	if want.Detail != got.Detail {
		return fmt.Errorf("detail: %q vs %q", want.Detail, got.Detail)
	}
	if want.Check != got.Check {
		return fmt.Errorf("check: %s vs %s", want.Check, got.Check)
	}
	if want.Seeds != got.Seeds || want.Seed != got.Seed {
		return fmt.Errorf("stabilize seeds: %d/%q vs %d/%q", want.Seeds, want.Seed, got.Seeds, got.Seed)
	}
	return nil
}

func diffViolation(what string, want, got *ioa.Violation) error {
	switch {
	case want == nil && got == nil:
		return nil
	case want == nil || got == nil:
		return fmt.Errorf("%s: %v (string) vs %v (interned)", what, want, got)
	case *want != *got:
		return fmt.Errorf("%s: %+v (string) vs %+v (interned)", what, *want, *got)
	}
	return nil
}
