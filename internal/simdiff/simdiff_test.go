package simdiff

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/verify"
)

// specimens returns every protocol the harness replays through both cores:
// the full registry, the deliberately broken livelock protocol, and the
// transport adapters (whose endpoints exercise the Append*Key fallback
// paths — native StateKey delegation and the ControlKeyer quotient).
func specimens() []protocol.Protocol {
	var ps []protocol.Protocol
	for _, name := range protocol.Names() {
		ps = append(ps, protocol.Registry()[name])
	}
	ps = append(ps,
		protocol.NewLivelock(),
		transport.MustAdapt(transport.New(4, 2)),
		transport.MustAdapt(transport.NewGoBackN(4, 2)),
	)
	return ps
}

// schedules builds the deterministic input sweep for one protocol: the
// canonical seeds, a mutation chain grown from them (benign-to-adversarial
// — stale replays and drop storms arrive via the mutators), and a
// corrupted-start variant of every chain step.
func schedules(p protocol.Protocol, n int) []*fuzz.Input {
	rng := rand.New(rand.NewSource(core.SplitSeed(42, "simdiff-"+p.Name())))
	ins := fuzz.SeedInputs()
	parents := ins
	for len(ins) < n {
		parent := parents[rng.Intn(len(parents))]
		cand := fuzz.Mutate(parent, rng)
		ins = append(ins, cand)
		parents = append(parents, cand)
		// Corrupted-start sibling: same schedule, corrupted gene on top.
		cc := cand.Clone()
		fuzz.MutateCorrupt(cc, rng)
		ins = append(ins, cc)
	}
	return ins
}

// TestExecEquivalence replays the schedule sweep of every specimen through
// the string executor and one pooled interned core per protocol, demanding
// bit-identical phenotypes: event streams, coverage points, verdicts,
// decision usage and amnesty bookkeeping.
func TestExecEquivalence(t *testing.T) {
	for _, p := range specimens() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			c := fuzz.NewCore(p)
			verdicts := 0
			for i, in := range schedules(p, 120) {
				if err := CompareExec(p, c, in); err != nil {
					t.Fatalf("input %d (%s): %v", i, in, err)
				}
				if r := fuzz.Execute(p, in, false); r.Verdict != nil {
					verdicts++
				}
			}
			t.Logf("%s: %d schedules diverged on none (%d with safety verdicts)", p.Name(), 120, verdicts)
		})
	}
}

// TestExecEquivalenceOnWitness drives the sweep until a safety verdict
// appears for a protocol that is known attackable (altbit falls to stale
// replay), then holds both cores to the identical violation. This pins the
// harness to a DL1-class witness rather than relying on the sweep to find
// one by luck.
func TestExecEquivalenceOnWitness(t *testing.T) {
	p := protocol.NewAltBit()
	rng := rand.New(rand.NewSource(core.SplitSeed(7, "simdiff-witness")))
	c := fuzz.NewCore(p)
	parents := fuzz.SeedInputs()
	for i := 0; i < 5000; i++ {
		cand := fuzz.Mutate(parents[rng.Intn(len(parents))], rng)
		parents = append(parents, cand)
		res := fuzz.Execute(p, cand, false)
		if res.Verdict == nil {
			continue
		}
		if err := CompareExec(p, c, cand); err != nil {
			t.Fatalf("witness input (verdict %s): %v", res.Verdict.Property, err)
		}
		t.Logf("witness found after %d candidates: %s at event %d", i+1, res.Verdict.Property, res.Verdict.Index)
		return
	}
	t.Fatal("no safety verdict within 5000 mutated schedules; altbit should fall to stale replay")
}

// TestCampaignEquivalence runs a whole fuzzing campaign twice — string core
// and interned core, same seed, corrupted-start dimension on — and demands
// the identical trajectory: executions, corpus, coverage frontier and
// promoted findings. Coverage points are the campaign's steering signal, so
// any drift in the interned point computation would diverge the corpora
// within a few hundred executions.
func TestCampaignEquivalence(t *testing.T) {
	run := func(stringCore bool) *fuzz.Result {
		t.Helper()
		res, err := fuzz.Run(fuzz.Config{
			Protocol:   protocol.NewAltBit(),
			Budget:     6000,
			Seed:       99,
			Corrupt:    true,
			StringCore: stringCore,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want, got := run(true), run(false)
	if want.Execs != got.Execs || want.CorpusSize != got.CorpusSize ||
		want.CoveragePoints != got.CoveragePoints || want.DL3Misses != got.DL3Misses {
		t.Fatalf("campaign trajectory diverged:\nstring:   execs %d corpus %d coverage %d dl3 %d\ninterned: execs %d corpus %d coverage %d dl3 %d",
			want.Execs, want.CorpusSize, want.CoveragePoints, want.DL3Misses,
			got.Execs, got.CorpusSize, got.CoveragePoints, got.DL3Misses)
	}
	if len(want.Violations) != len(got.Violations) {
		t.Fatalf("violations: %d (string) vs %d (interned)", len(want.Violations), len(got.Violations))
	}
	for i := range want.Violations {
		w, g := want.Violations[i], got.Violations[i]
		if w.Property != g.Property || w.Corruption != g.Corruption || w.Ops != g.Ops || w.FoundAtExec != g.FoundAtExec {
			t.Fatalf("violation %d: %s/%q ops %d at %d (string) vs %s/%q ops %d at %d (interned)",
				i, w.Property, w.Corruption, w.Ops, w.FoundAtExec, g.Property, g.Corruption, g.Ops, g.FoundAtExec)
		}
	}
}

// TestVerifyEquivalence runs the bounded checker over every registry
// protocol with both visited-set stores and demands identical proof
// artifacts — states, edges, space hash, verdict, check — including the
// stabilize mode for the protocols that declare a corruption space.
func TestVerifyEquivalence(t *testing.T) {
	for _, name := range protocol.Names() {
		p := protocol.Registry()[name]
		t.Run(name, func(t *testing.T) {
			if err := CompareVerify(p, verify.Config{MaxStates: 4000}); err != nil {
				t.Fatalf("clean mode: %v", err)
			}
		})
	}
	for _, name := range []string{"stabdl2", "stabnaive"} {
		p := protocol.Registry()[name]
		if p == nil {
			t.Fatalf("registry lost %s", name)
		}
		t.Run(name+"-stabilize", func(t *testing.T) {
			if err := CompareVerify(p, verify.Config{MaxStates: 4000, Stabilize: true}); err != nil {
				t.Fatalf("stabilize mode: %v", err)
			}
		})
	}
}

// TestVerifySpillEquivalence holds the spill store to the in-memory interned
// store on an exhaustive seqnum run: identical space hash, graph size and
// verdict whether the visited keys live in RAM as packed ids or on disk as
// canonical strings.
func TestVerifySpillEquivalence(t *testing.T) {
	p := protocol.Registry()["seqnum"]
	mem, err := verify.Run(p, verify.Config{})
	if err != nil {
		t.Fatal(err)
	}
	spill, err := verify.Run(p, verify.Config{SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !spill.Spilled {
		t.Fatal("spill run did not report Spilled")
	}
	if err := DiffReports(mem, spill); err != nil {
		t.Fatalf("spill vs interned in-memory: %v", err)
	}
}
