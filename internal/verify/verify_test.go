package verify

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
)

// TestAltBitViolatedRoundTrip is the acceptance check for the
// counterexample path: the verifier must find the alternating bit
// protocol's replay attack by pure exhaustion — no fuzzer, no hand-built
// adversary — and the emitted witness must survive a full NFT round trip
// (encode, decode, replay) reproducing the same verdict.
func TestAltBitViolatedRoundTrip(t *testing.T) {
	rep, err := Run(protocol.NewAltBit(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolated || rep.Property != "DL1" {
		t.Fatalf("verdict = %s (%s), want VIOLATED (DL1)", rep.Verdict, rep.Property)
	}
	if rep.Check != CheckCertified {
		t.Fatalf("check = %s, want CERTIFIED (altbit declares its attack bounds)", rep.Check)
	}
	if !rep.WitnessConfirmed || rep.Witness == nil {
		t.Fatalf("witness not confirmed: confirmed=%v witness=%v failures=%v",
			rep.WitnessConfirmed, rep.Witness != nil, rep.Failures)
	}

	// Round trip: the witness must be a self-contained NFT artifact.
	var buf bytes.Buffer
	if err := rep.Witness.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := replay.Run(back)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Divergence != nil {
		t.Fatalf("witness diverged after round trip: %v", rr.Divergence)
	}
	if rr.Verdict == nil || rr.Verdict.Property != "DL1" {
		t.Fatalf("round-tripped witness verdict = %v, want DL1", rr.Verdict)
	}
	if !rr.VerdictMatches {
		t.Fatalf("round-tripped witness verdict does not match its recorded verdict")
	}
}

// TestSeqNumProved is the acceptance check for the proof path: a declared
// DL-sound registry protocol must be PROVED safe at its audit bounds, and
// any stranded candidates must be cap artifacts that recover under the
// reliable closing drive.
func TestSeqNumProved(t *testing.T) {
	rep, err := Run(protocol.NewSeqNum(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictProved {
		t.Fatalf("verdict = %s, want PROVED (failures: %v)", rep.Verdict, rep.Failures)
	}
	if !rep.Exhausted {
		t.Fatalf("space not exhausted at %d states", rep.States)
	}
	if rep.Check != CheckCertified {
		t.Fatalf("check = %s, want CERTIFIED", rep.Check)
	}
	if rep.Witness != nil {
		t.Fatalf("PROVED report carries a witness")
	}
}

func TestCountingFamilyVerdicts(t *testing.T) {
	cases := []struct {
		proto   protocol.Protocol
		verdict Verdict
		prop    string
		check   Check
	}{
		{protocol.NewCntLinear(), VerdictProved, "", CheckCertified},
		{protocol.NewCntK(4), VerdictProved, "", CheckCertified},
		{protocol.NewCheat(1), VerdictViolated, "DL1", CheckCertified},
		{protocol.NewCntNoBind(), VerdictViolated, "DL1", CheckCertified},
	}
	for _, c := range cases {
		rep, err := Run(c.proto, Config{})
		if err != nil {
			t.Fatalf("%s: %v", c.proto.Name(), err)
		}
		if rep.Verdict != c.verdict || rep.Property != c.prop || rep.Check != c.check {
			t.Errorf("%s: got %s (%s) check %s, want %s (%s) check %s; failures %v",
				c.proto.Name(), rep.Verdict, rep.Property, rep.Check, c.verdict, c.prop, c.check, rep.Failures)
		}
		if rep.POR {
			t.Errorf("%s: POR active on a genie-consulting protocol", c.proto.Name())
		}
		if c.verdict == VerdictViolated && !rep.WitnessConfirmed {
			t.Errorf("%s: witness unconfirmed: %v", c.proto.Name(), rep.Failures)
		}
	}
}

// TestCntNoBindStalePayload pins the ablation's failure mode: the pooled
// counter delivers a stale payload, a correspondence (not duplication)
// violation.
func TestCntNoBindStalePayload(t *testing.T) {
	rep, err := Run(protocol.NewCntNoBind(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolated || !strings.Contains(rep.Detail, `carries "m0"`) {
		t.Fatalf("verdict %s detail %q, want a stale-payload correspondence violation", rep.Verdict, rep.Detail)
	}
}

// TestLivelockDL3 checks the liveness path: the broken protocol's livelock
// must be found by graph analysis and emitted as a pumped certificate that
// replays clean of safety violations while stranding its message.
func TestLivelockDL3(t *testing.T) {
	rep, err := Run(protocol.NewLivelock(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolated || rep.Property != "DL3" {
		t.Fatalf("verdict = %s (%s), want VIOLATED (DL3); failures %v", rep.Verdict, rep.Property, rep.Failures)
	}
	if rep.Check != CheckCertified {
		t.Fatalf("check = %s, want CERTIFIED", rep.Check)
	}
	if rep.Witness == nil {
		t.Fatal("no witness")
	}
	if rep.Witness.Meta[replay.MetaLivelockPump] == "" {
		t.Fatalf("witness is not a pumped livelock certificate; meta = %v", rep.Witness.Meta)
	}
	rr, err := replay.Run(rep.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != nil {
		t.Fatalf("livelock witness violates safety: %v", rr.Verdict)
	}
	if rr.DL3 == nil {
		t.Fatal("livelock witness delivers everything on replay")
	}
}

// TestPOREquivalence is the reduction's soundness check at test scale: POR
// on and off must agree on the verdict (and property), with the reduction
// exploring no more states than the full exploration.
func TestPOREquivalence(t *testing.T) {
	for _, name := range []string{"altbit", "seqnum", "swindow-s4-w2", "gbn-s4-w2"} {
		p, err := replay.LookupProtocol(name)
		if err != nil {
			t.Fatal(err)
		}
		on, err := Run(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Run(p, Config{NoPOR: true})
		if err != nil {
			t.Fatal(err)
		}
		if !on.POR {
			t.Fatalf("%s: reduction not active by default (%s)", name, on.PORReason)
		}
		if off.POR {
			t.Fatalf("%s: NoPOR did not disable the reduction", name)
		}
		if on.Verdict != off.Verdict || on.Property != off.Property {
			t.Errorf("%s: POR changes the verdict: on=%s(%s) off=%s(%s)",
				name, on.Verdict, on.Property, off.Verdict, off.Property)
		}
		if on.Exhausted && off.Exhausted && on.States > off.States {
			t.Errorf("%s: reduction explored more states than the full space: %d > %d",
				name, on.States, off.States)
		}
		if on.Exhausted && off.Exhausted && on.States == off.States {
			t.Logf("%s: reduction had no effect (%d states both ways)", name, on.States)
		}
	}
}

func TestBudgetVerdict(t *testing.T) {
	rep, err := Run(protocol.NewAltBit(), Config{MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictBudget || rep.Check != CheckConsistent {
		t.Fatalf("got %s/%s, want BUDGET/CONSISTENT", rep.Verdict, rep.Check)
	}
	if rep.Exhausted {
		t.Fatal("budget-cut run reports exhaustion")
	}
}

// TestCntExpBudgetConsistent: the pessimistic protocol's control space is
// genuinely unbounded (the ever counters feed its thresholds), so the
// verifier must hit the budget and report CONSISTENT, never PROVED.
func TestCntExpBudgetConsistent(t *testing.T) {
	rep, err := Run(protocol.NewCntExp(), Config{MaxStates: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictBudget || rep.Check != CheckConsistent {
		t.Fatalf("got %s/%s, want BUDGET/CONSISTENT", rep.Verdict, rep.Check)
	}
}

// TestSpillEquivalence: the disk-spilled visited set must explore the
// identical space — same states, same canonical hash, same verdict.
func TestSpillEquivalence(t *testing.T) {
	mem, err := Run(protocol.NewSeqNum(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := Run(protocol.NewSeqNum(), Config{SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !disk.Spilled {
		t.Fatal("spill run did not spill")
	}
	if mem.States != disk.States || mem.SpaceHash != disk.SpaceHash || mem.Verdict != disk.Verdict {
		t.Fatalf("spill changed the exploration: mem %d/%s/%s, disk %d/%s/%s",
			mem.States, mem.SpaceHash, mem.Verdict, disk.States, disk.SpaceHash, disk.Verdict)
	}
}

// TestGoldenReports pins the human-readable report layout and, with it, the
// determinism of the exploration (state counts and space hashes are exact).
func TestGoldenReports(t *testing.T) {
	altbit, err := Run(protocol.NewAltBit(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantAltbit := `protocol:   altbit
occupancy:  2
messages:   3
por:        on (lazy drops)
states:     37 (stopped at first violation)
edges:      73
space-hash: d6122be01f8a4ffa
verdict:    VIOLATED (DL1)
  detail:   delivery 2 with only 2 message(s) submitted
witness:    12 ops, replay-confirmed
declared:   attackable at occupancy>=2, messages>=3
check:      CERTIFIED
`
	if got := altbit.String(); got != wantAltbit {
		t.Errorf("altbit report:\n%s\nwant:\n%s", got, wantAltbit)
	}

	seqnum, err := Run(protocol.NewSeqNum(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantSeqnum := `protocol:   seqnum
occupancy:  2
messages:   3
por:        on (lazy drops)
states:     248 (exhausted)
edges:      1007
space-hash: 028b20653be6e3f9
verdict:    PROVED
declared:   DL-sound
check:      CERTIFIED
`
	if got := seqnum.String(); got != wantSeqnum {
		t.Errorf("seqnum report:\n%s\nwant:\n%s", got, wantSeqnum)
	}
}

func TestReportJSON(t *testing.T) {
	rep, err := Run(protocol.NewSeqNum(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"protocol", "occupancy", "messages", "states", "edges", "spaceHash", "verdict", "check"} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON artifact missing %q", k)
		}
	}
	if _, ok := m["Witness"]; ok {
		t.Error("JSON artifact embeds the witness log; it must be written separately")
	}
	if m["verdict"] != "PROVED" || m["check"] != "CERTIFIED" {
		t.Errorf("verdict/check = %v/%v", m["verdict"], m["check"])
	}
}

// TestVerdictJudgement exercises the declaration cross-check without
// relying on a protocol that genuinely contradicts itself: a run below a
// declared attack bound must come back CONSISTENT, not FAIL.
func TestVerdictJudgement(t *testing.T) {
	// altbit with one message: the attack needs three, so the space is
	// clean and the declaration is untestable at these bounds.
	rep, err := Run(protocol.NewAltBit(), Config{MaxMessages: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictProved {
		t.Fatalf("verdict = %s, want PROVED at messages=1", rep.Verdict)
	}
	if rep.Check != CheckConsistent {
		t.Fatalf("check = %s, want CONSISTENT below declared attack bounds", rep.Check)
	}
}
