package verify

import (
	"strconv"
	"testing"

	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/stabilize"
)

// TestStabilizeProvesStabDL is the acceptance check for the stabilize-mode
// proof path: the counting protocol with its consecutive-copy threshold
// (stabdl2, declared self-stabilizing) must be PROVED convergent by pure
// exhaustion from every bounded corrupted start — which is exactly the
// modern "self-stabilizing data link" claim restricted to the paper's
// bounded model.
func TestStabilizeProvesStabDL(t *testing.T) {
	rep, err := Run(protocol.NewStabDL(2), Config{Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictProved {
		t.Fatalf("verdict = %s, want PROVED (failures: %v)", rep.Verdict, rep.Failures)
	}
	if rep.Check != CheckCertified {
		t.Fatalf("check = %s, want CERTIFIED (declared self-stabilizing and proved)", rep.Check)
	}
	if !rep.Stabilize || rep.Seeds != 81 {
		t.Fatalf("stabilize=%v seeds=%d, want stabilize mode over the full 81-seed space", rep.Stabilize, rep.Seeds)
	}
	if rep.DeclaredStabilizing == nil || !*rep.DeclaredStabilizing {
		t.Fatalf("declaration not picked up: %v", rep.DeclaredStabilizing)
	}
}

// TestStabilizeStabNaiveWitness is the acceptance check for the stabilize
// counterexample path: the round-counting control specimen (declared not
// self-stabilizing) must yield a replay-confirmed divergence witness whose
// corrupted start is identified, whose metadata carries the amnesty, and
// whose replayed trace re-judges — from scratch, by the amnesty judge — to
// the reported property. This also exercises the multi-root witness chain:
// the BFS path must stop at the corrupted root, not fabricate moves past it.
func TestStabilizeStabNaiveWitness(t *testing.T) {
	rep, err := Run(protocol.NewStabNaive(), Config{Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolated {
		t.Fatalf("verdict = %s, want VIOLATED", rep.Verdict)
	}
	if rep.Check != CheckCertified {
		t.Fatalf("check = %s, want CERTIFIED (declared non-stabilizing, divergence confirmed)", rep.Check)
	}
	if !rep.WitnessConfirmed || rep.Witness == nil || rep.Seed == "" {
		t.Fatalf("witness not confirmed or seed missing: confirmed=%v seed=%q", rep.WitnessConfirmed, rep.Seed)
	}
	if got := rep.Witness.Meta[stabilize.MetaCorruption]; got != rep.Seed {
		t.Fatalf("witness metadata corruption %q, report seed %q", got, rep.Seed)
	}

	rr, err := replay.Run(rep.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Divergence != nil {
		t.Fatalf("witness diverged on replay: %v", rr.Divergence)
	}
	amnesty, err := strconv.Atoi(rep.Witness.Meta[stabilize.MetaAmnesty])
	if err != nil {
		t.Fatalf("witness metadata amnesty: %v", err)
	}
	j := stabilize.JudgeTrace(rr.Trace, amnesty)
	if j.Violation == nil || j.Violation.Property != rep.Property {
		t.Fatalf("witness re-judges to %v, want %s over amnesty %d", j.Violation, rep.Property, amnesty)
	}
}

// TestStabilizeSoundVsUnsound pins the remaining verdict quadrants: altbit
// (declared non-stabilizing) is CERTIFIED divergent from a corrupted start,
// and a declared self-stabilizing protocol is never certified on a BUDGET
// verdict (CONSISTENT at best).
func TestStabilizeSoundVsUnsound(t *testing.T) {
	rep, err := Run(protocol.NewAltBit(), Config{Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolated || rep.Check != CheckCertified {
		t.Fatalf("altbit: verdict=%s check=%s, want VIOLATED/CERTIFIED", rep.Verdict, rep.Check)
	}

	budget, err := Run(protocol.NewStabDL(2), Config{Stabilize: true, MaxStates: 100})
	if err != nil {
		t.Fatal(err)
	}
	if budget.Verdict != VerdictBudget || budget.Check != CheckConsistent {
		t.Fatalf("budget run: verdict=%s check=%s, want BUDGET/CONSISTENT", budget.Verdict, budget.Check)
	}
}

// TestStabilizeCleanSpaceUnchanged guards the key-schema split: stabilize
// mode widens configuration keys with the amnesty/frontier strands, but a
// clean-mode run must produce the exact same space (state count and
// canonical hash) as before the stabilize integration — clean proofs predate
// the feature and their hashes are compared across versions.
func TestStabilizeCleanSpaceUnchanged(t *testing.T) {
	a, err := Run(protocol.NewStabDL(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(protocol.NewStabDL(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.SpaceHash != b.SpaceHash || a.States != b.States {
		t.Fatalf("clean runs disagree: %s/%d vs %s/%d", a.SpaceHash, a.States, b.SpaceHash, b.States)
	}
	s, err := Run(protocol.NewStabDL(2), Config{Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.States <= a.States {
		t.Fatalf("stabilize space (%d states) not larger than clean space (%d)", s.States, a.States)
	}
}

// TestStabilizeRejectsOverwideBounds: the lost-position bitmask saturates at
// stabilize.MaxLost, so message bounds beyond it must be refused loudly
// rather than silently judged with coarser charges.
func TestStabilizeRejectsOverwideBounds(t *testing.T) {
	_, err := Run(protocol.NewStabDL(2), Config{Stabilize: true, MaxMessages: stabilize.MaxLost + 1})
	if err == nil {
		t.Fatalf("MaxMessages beyond stabilize.MaxLost accepted")
	}
}
