package verify

import (
	"repro/internal/replay"
	"repro/internal/trace"
)

// DL3 as a graph property: after an exhaustive exploration, a configuration
// that strands a message (submitted > delivered) and cannot reach any
// progress edge is a no-progress region — the adversary can park the system
// there forever *within the explored discipline*. That alone is not the
// paper's livelock: under a fully adversarial channel every protocol
// strands messages, and the paper's DL3 blames the protocol only when it
// fails under the optimal closure ("the physical layer starts behaving in
// the optimal way"). So stranded candidates are confirmed, not trusted: the
// witness prefix is re-driven and handed to replay.CertifyLivelock, which
// drives the reliable closing extension and issues a pumping-lemma
// certificate only if the protocol itself loops through a repeated joint
// configuration without delivering. Candidates that recover under the
// reliable drive are artifacts of the occupancy cap, reported but not
// violations.

// strandedCandidates returns, in BFS order, the nodes that strand a message
// and cannot reach a delivery-count-increasing edge in the explored graph.
func (e *explorer) strandedCandidates() []int32 {
	good := make([]bool, len(e.parents))
	radj := make([][]int32, len(e.parents))
	var stack []int32
	for _, ed := range e.edges {
		radj[ed.to] = append(radj[ed.to], ed.from)
		if ed.progress && !good[ed.from] {
			good[ed.from] = true
			stack = append(stack, ed.from)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range radj[n] {
			if !good[m] {
				good[m] = true
				stack = append(stack, m)
			}
		}
	}
	var out []int32
	for id := range e.parents {
		if good[id] {
			continue
		}
		stranded := e.nodes[id].submitted > e.nodes[id].delivered
		if e.cfg.Stabilize {
			// Corrupted runs also deliver garbage and duplicates, which
			// inflate the delivery count without progress; a message is
			// stranded when the clean frontier has not passed it.
			stranded = e.nodes[id].submitted > e.nodes[id].frontier
		}
		if stranded {
			out = append(out, int32(id))
		}
	}
	return out
}

// confirmLivelock tries to certify a livelock from the stranded candidates,
// in BFS order (shallowest witness first), attempting at most tries of
// them. It returns the certificate and the pumped, self-contained NFT form,
// or nil when every attempted candidate recovers under the reliable drive.
func (e *explorer) confirmLivelock(cands []int32, tries int) (*replay.LivelockCert, *trace.Log, int, error) {
	if tries <= 0 {
		tries = 3
	}
	attempted := 0
	for _, id := range cands {
		if attempted >= tries {
			break
		}
		attempted++
		moves, root := e.chain(id, nil)
		wl, err := e.witnessLog(moves, root)
		if err != nil {
			return nil, nil, attempted, err
		}
		cert, err := replay.CertifyLivelock(wl, replay.CertifyOptions{
			DriveBudget: e.cfg.DriveBudget,
			Pump:        e.cfg.Pump,
		})
		if err != nil {
			// The candidate recovers (or stalls without a cycle) under the
			// reliable closing drive: not a livelock, try the next one.
			continue
		}
		pumped := cert.Pumped(e.cfg.Pump)
		// Re-derive the verdict through an ordinary replay so the returned
		// artifact is confirmed the same way safety witnesses are.
		rr, err := replay.Run(pumped)
		if err != nil || rr.Divergence != nil || rr.Verdict != nil || rr.DL3 == nil {
			continue
		}
		return cert, rr.Log, attempted, nil
	}
	return nil, nil, attempted, nil
}
