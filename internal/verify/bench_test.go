package verify

import (
	"testing"

	"repro/internal/intern"
	"repro/internal/protocol"
)

// BenchmarkVerify holds the interned visited set against the legacy
// string-keyed reference on a budget-bounded cntexp exploration — the
// profile-dominant workload (key render + clone + dedup insert). The
// configs-per-second ratio between the two sub-benchmarks is the verifier
// half of the PR's throughput claim.
func BenchmarkVerify(b *testing.B) {
	run := func(b *testing.B, stringKeys bool) {
		b.Helper()
		p := protocol.NewCntExp()
		states := 0
		for i := 0; i < b.N; i++ {
			rep, err := Run(p, Config{MaxStates: 1 << 14, StringKeys: stringKeys})
			if err != nil {
				b.Fatal(err)
			}
			states = rep.States
		}
		b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "configs/sec")
	}
	b.Run("string", func(b *testing.B) { run(b, true) })
	b.Run("interned", func(b *testing.B) { run(b, false) })
}

// BenchmarkConfigKey isolates the canonical-key cost: the legacy string
// rendering versus the append rendering into a reused scratch buffer (the
// interned path also gets packed component ids out of the same bytes).
func BenchmarkConfigKey(b *testing.B) {
	p := protocol.NewCntExp()
	e := &explorer{cfg: Config{}.withDefaults(), proto: p, tab: intern.NewLocal(), pkts: newPktIntern()}
	c := newInit(p)
	b.Run("string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(c.key(false)) == 0 {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("append-interned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, canon := e.keyOf(c)
			if len(canon) == 0 {
				b.Fatal("empty key")
			}
		}
	})
}
