package verify

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/intern"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/stabilize"
)

// This file is the configuration space of the bounded model checker: the
// joint configurations (q_t, q_r, c^{t→r}, c^{r→t}, submitted, delivered)
// and the transition alphabet the exploration fans out over.
//
// Every move maps 1:1 to a replayable sim.Runner operation, which is what
// makes the checker's findings executable: a path through this graph IS a
// driver schedule, and witness.go re-drives it through the real runner and
// hands the resulting NFT trace to internal/replay for confirmation. The
// verifier's transition semantics are therefore never trusted on their own —
// replay through the production simulator is the ground truth.
//
// Conventions of the exploration (shared with the audit enumerator in
// internal/analyze where both apply; see DESIGN.md §12 for the soundness
// arguments):
//
//   - Messages are submitted only when the transmitter is idle, at most
//     MaxMessages of them, with *distinct positional payloads* "m<i>" —
//     unlike the audit's constant payload, because DL1 violations are
//     payload-correspondence violations. With positional payloads, a
//     violation-free history with d deliveries has delivered exactly
//     m0..m<d-1> in order, so (submitted, delivered) counters plus the
//     endpoint control keys fully determine the history-relevant state and
//     the visited-set quotient is sound for DL1 (checked per edge, before
//     deduplication, so no violating delivery is ever masked).
//   - Endpoint states are compared by ControlKey (protocol.ControlKeyOf),
//     inheriting the audit's bisimulation proof obligation.
//   - Receiver acknowledgements drain eagerly after every data delivery;
//     acks beyond the occupancy cap are dropped at send (a legal lossy
//     behaviour). Sends beyond a channel's cap are likewise not buffered:
//     below cap a transmitted packet is delayed in transit, at cap it is
//     dropped at send (the only way to let the transmitter keep stepping).
//   - Deliveries and drops are explored per distinct in-transit packet.
//     Under the lazy-drop reduction (POR), in-transit drops are explored
//     only at cap; see verify.go.

// payload is the positional payload of the i-th submitted message.
func payload(i int) string { return "m" + strconv.Itoa(i) }

type moveKind uint8

const (
	mvSubmit moveKind = iota + 1
	// mvTransmit sends one enabled data packet and delays it in transit
	// (below-cap transmit; decision Delay).
	mvTransmit
	// mvTransmitDrop sends one enabled data packet and drops it at send
	// (at-cap transmit; decision Drop). Below cap this move is omitted: it
	// reaches exactly the configuration of mvTransmit followed by
	// mvDropData of the same packet, so exploring it would only duplicate
	// states.
	mvTransmitDrop
	// mvDeliverData delivers one distinct in-transit data packet and then
	// drains the receiver's acknowledgements into the ack channel.
	mvDeliverData
	mvDeliverAck
	mvDropData
	mvDropAck
)

// move is one transition: a kind plus, for the per-packet moves, the packet.
type move struct {
	kind moveKind
	pkt  ioa.Packet
}

func (m move) String() string {
	switch m.kind {
	case mvSubmit:
		return "submit"
	case mvTransmit:
		return "transmit(delay)"
	case mvTransmitDrop:
		return "transmit(drop)"
	case mvDeliverData:
		return "deliver-data " + m.pkt.String()
	case mvDeliverAck:
		return "deliver-ack " + m.pkt.String()
	case mvDropData:
		return "drop-data " + m.pkt.String()
	case mvDropAck:
		return "drop-ack " + m.pkt.String()
	default:
		return fmt.Sprintf("move(%d)", int(m.kind))
	}
}

// config is one joint configuration of the exploration.
type config struct {
	t         protocol.Transmitter
	r         protocol.Receiver
	chData    *channel.NonFIFO // t→r
	chAck     *channel.NonFIFO // r→t
	submitted int32
	delivered int32
	id        int32

	// Stabilize-mode bookkeeping (zero and excluded from the key in clean
	// mode): remaining is the seed's amnesty minus the faults charged so
	// far (a negative balance is a divergence and is never visited),
	// frontier the next submit position whose delivery is clean progress,
	// and lost the bitmask of skipped positions that may still arrive late
	// (see stabilize.Classify).
	remaining int32
	frontier  int32
	lost      uint64
}

// clone deep-copies the configuration, rebinding the endpoints' genies to
// the cloned channels (the same discipline as sim.Runner.Fork and the
// audit enumerator).
func (c *config) clone() *config {
	nc := &config{
		t:         c.t.Clone(),
		r:         c.r.Clone(),
		chData:    c.chData.Clone(),
		chAck:     c.chAck.Clone(),
		submitted: c.submitted,
		delivered: c.delivered,
		remaining: c.remaining,
		frontier:  c.frontier,
		lost:      c.lost,
	}
	if u, ok := nc.t.(protocol.AckGenieUser); ok {
		u.SetAckGenie(channel.ChannelGenie{Ch: nc.chAck})
	}
	if u, ok := nc.r.(protocol.DataGenieUser); ok {
		u.SetDataGenie(channel.ChannelGenie{Ch: nc.chData})
	}
	return nc
}

// cloneOf deep-copies c exactly like (*config).clone, recycling a released
// configuration's struct and channel storage when one is available.
// Duplicate successors and expanded parents dominate the exploration's
// allocation profile; the endpoints are still freshly cloned (the protocol
// Clone contract allocates), but the config struct and both channel
// multisets are reused.
func (e *explorer) cloneOf(c *config) *config {
	n := len(e.free)
	if n == 0 {
		return c.clone()
	}
	nc := e.free[n-1]
	e.free = e.free[:n-1]
	nc.t = c.t.Clone()
	nc.r = c.r.Clone()
	c.chData.CloneInto(nc.chData)
	c.chAck.CloneInto(nc.chAck)
	nc.submitted, nc.delivered, nc.id = c.submitted, c.delivered, 0
	nc.remaining, nc.frontier, nc.lost = c.remaining, c.frontier, c.lost
	if u, ok := nc.t.(protocol.AckGenieUser); ok {
		u.SetAckGenie(channel.ChannelGenie{Ch: nc.chAck})
	}
	if u, ok := nc.r.(protocol.DataGenieUser); ok {
		u.SetDataGenie(channel.ChannelGenie{Ch: nc.chData})
	}
	return nc
}

// release returns a dead configuration (duplicate successor or expanded
// parent) to the freelist. The endpoint references are dropped so the
// cloned endpoints can be collected immediately.
func (e *explorer) release(c *config) {
	c.t, c.r = nil, nil
	e.free = append(e.free, c)
}

// key is the canonical configuration encoding the visited set dedups on. In
// stabilize mode the amnesty bookkeeping joins the key: two occurrences of
// the same joint configuration with different remaining budgets, frontiers
// or lost sets have different judgeable futures, so merging them would be
// unsound. Clean-mode keys are unchanged (space hashes stay comparable
// across versions).
func (c *config) key(stabilizeMode bool) string {
	var b strings.Builder
	b.WriteString(protocol.ControlKeyOf(c.t))
	b.WriteByte('|')
	b.WriteString(protocol.ControlKeyOf(c.r))
	b.WriteByte('|')
	b.WriteString(c.chData.Key())
	b.WriteByte('|')
	b.WriteString(c.chAck.Key())
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(c.submitted)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(c.delivered)))
	if stabilizeMode {
		b.WriteString("|g")
		b.WriteString(strconv.Itoa(int(c.remaining)))
		b.WriteString("|f")
		b.WriteString(strconv.Itoa(int(c.frontier)))
		b.WriteString("|l")
		b.WriteString(strconv.FormatUint(c.lost, 16))
	}
	return b.String()
}

// keyOf is the interned fast path of config.key: it renders the canonical
// key once into the explorer's scratch buffer — byte-identical to key(), so
// the space hash is store-independent — while interning the four string
// components from their sub-slices into the packed intKey the default store
// dedups on. The returned bytes alias e.kbuf and are valid until the next
// call.
func (e *explorer) keyOf(ns *config) (intKey, []byte) {
	var k intKey
	b := protocol.AppendControlKeyOf(e.kbuf[:0], ns.t)
	k.tc = e.tab.InternBytes(b)
	b = append(b, '|')
	m := len(b)
	b = protocol.AppendControlKeyOf(b, ns.r)
	k.rc = e.tab.InternBytes(b[m:])
	b = append(b, '|')
	m = len(b)
	b = ns.chData.AppendKey(b)
	k.dk = e.tab.InternBytes(b[m:])
	b = append(b, '|')
	m = len(b)
	b = ns.chAck.AppendKey(b)
	k.ak = e.tab.InternBytes(b[m:])
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(ns.submitted), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(ns.delivered), 10)
	k.sub, k.del = ns.submitted, ns.delivered
	if e.cfg.Stabilize {
		b = append(b, "|g"...)
		b = strconv.AppendInt(b, int64(ns.remaining), 10)
		b = append(b, "|f"...)
		b = strconv.AppendInt(b, int64(ns.frontier), 10)
		b = append(b, "|l"...)
		b = strconv.AppendUint(b, ns.lost, 16)
		k.grem, k.gfro, k.lost = ns.remaining, ns.frontier, ns.lost
	}
	e.kbuf = b
	return k, b
}

// parentEdge records how a configuration was first reached, for witness
// path reconstruction. The move's packet rides as an interned id (pktIntern)
// rather than an ioa.Packet: the table is one entry per visited state, and
// two inline string headers per entry would multiply its footprint and pin
// every packet string of every released configuration.
type parentEdge struct {
	parent int32
	kind   moveKind
	pkt    uint32 // interned via explorer.pkts; 0 is the zero packet
}

// pktIntern interns ioa.Packets to dense ids, reversibly (witness
// reconstruction needs the packet back to re-drive the move). Id 0 is the
// zero packet, so packet-less moves pack to the zero parentEdge fields.
type pktIntern struct {
	ids  map[ioa.Packet]uint32
	pkts []ioa.Packet
}

func newPktIntern() *pktIntern {
	return &pktIntern{ids: map[ioa.Packet]uint32{{}: 0}, pkts: []ioa.Packet{{}}}
}

func (pi *pktIntern) intern(p ioa.Packet) uint32 {
	if id, ok := pi.ids[p]; ok {
		return id
	}
	id := uint32(len(pi.pkts))
	pi.pkts = append(pi.pkts, p)
	pi.ids[p] = id
	return id
}

func (pi *pktIntern) at(id uint32) ioa.Packet { return pi.pkts[id] }

// nodeCounts keeps the progress-relevant counters per node for the DL3
// analysis (the full config is released once its BFS wave passes). frontier
// is meaningful only in stabilize mode, where progress means frontier
// advance rather than delivery count — corrupted runs also deliver garbage
// and duplicates, which are not progress.
type nodeCounts struct {
	submitted, delivered, frontier int32
}

// edgeRec is one explored transition; progress marks delivery-count
// increase (the DL3 analysis seeds its reverse reachability on these).
type edgeRec struct {
	from, to int32
	progress bool
}

// foundViolation is an on-the-fly safety finding: the pre-state and the
// delivering move that produced a payload out of correspondence (clean
// mode) or over the amnesty budget (stabilize mode).
type foundViolation struct {
	parent int32
	mv     move
	detail string
}

// explorer carries the exploration's accumulators.
type explorer struct {
	cfg   Config
	proto protocol.Protocol
	por   bool

	seen    store
	queue   []*config
	free    []*config // released configurations recycled by cloneOf
	parents []parentEdge
	nodes   []nodeCounts
	edges   []edgeRec

	// tab interns the key components of keyOf, pkts the parent-edge
	// packets, and kbuf is the canonical-key scratch buffer both key paths
	// render into (valid until the next visit).
	tab  *intern.Local
	pkts *pktIntern
	kbuf []byte

	// roots maps BFS root node ids to their corrupted seeds (stabilize
	// mode only; nil otherwise — clean mode has the single root 0).
	roots map[int32]stabilize.Corruption

	violation *foundViolation
	err       error
}

// visit dedups a successor, records the edge, and enqueues fresh nodes.
func (e *explorer) visit(ns *config, from int32, mv move) (int32, bool) {
	if e.err != nil {
		return -1, false
	}
	var ik intKey
	var canon []byte
	if e.cfg.StringKeys {
		canon = append(e.kbuf[:0], ns.key(e.cfg.Stabilize)...)
		e.kbuf = canon
	} else {
		ik, canon = e.keyOf(ns)
	}
	id, fresh, err := e.seen.insert(ik, canon)
	if err != nil {
		e.err = err
		return -1, false
	}
	if fresh {
		ns.id = id
		e.queue = append(e.queue, ns)
		e.parents = append(e.parents, parentEdge{parent: from, kind: mv.kind, pkt: e.pkts.intern(mv.pkt)})
		e.nodes = append(e.nodes, nodeCounts{submitted: ns.submitted, delivered: ns.delivered, frontier: ns.frontier})
	}
	if from >= 0 {
		progress := ns.delivered > e.nodes[from].delivered
		if e.cfg.Stabilize {
			progress = ns.frontier > e.nodes[from].frontier
		}
		e.edges = append(e.edges, edgeRec{from: from, to: id, progress: progress})
	}
	// The progress comparison above reads ns; a duplicate goes back to the
	// freelist only once nothing more will touch it.
	if !fresh {
		e.release(ns)
	}
	return id, fresh
}

// collect drains the receiver's freshly delivered payloads into the
// configuration's counters. In clean mode it checks DL1 correspondence per
// delivery: the i-th delivered payload must be payload(i) of a submitted
// message. In stabilize mode each delivery is instead classified by the
// amnesty judge (stabilize.Classify) — progress, skip, late (DL2: FIFO
// order broken on the fly), duplicate or garbage — and the faults are
// charged against the seed's remaining budget; the violation fires only on
// overdraft. It reports whether the configuration is violation-free.
func (e *explorer) collect(ns *config, from int32, mv move) bool {
	for _, p := range ns.r.TakeDelivered() {
		if e.cfg.Stabilize {
			kind, charge, nf, nl := stabilize.Classify(p, payload, int(ns.frontier), ns.lost, int(ns.submitted))
			ns.frontier, ns.lost = int32(nf), nl
			ns.remaining -= int32(charge)
			if ns.remaining < 0 {
				e.violation = &foundViolation{parent: from, mv: mv, detail: fmt.Sprintf(
					"%s delivery of %q exceeds the corrupted start's amnesty (%s)",
					kind, p, kind.Property())}
				return false
			}
			ns.delivered++
			continue
		}
		idx := int(ns.delivered)
		switch {
		case idx >= int(ns.submitted):
			e.violation = &foundViolation{parent: from, mv: mv, detail: fmt.Sprintf(
				"delivery %d with only %d message(s) submitted", idx, ns.submitted)}
			return false
		case p != payload(idx):
			e.violation = &foundViolation{parent: from, mv: mv, detail: fmt.Sprintf(
				"delivery %d carries %q, want %q", idx, p, payload(idx))}
			return false
		}
		ns.delivered++
	}
	return true
}

// drainAcks forwards the receiver's pending acknowledgements to the r→t
// channel, dropping at send beyond the occupancy cap. The send-then-drop
// shape (rather than the audit's skip-the-send) mirrors sim.Runner.DrainAcks
// exactly, so a witness re-drive reproduces the same channel state.
func (e *explorer) drainAcks(ns *config) {
	for {
		a, ok := ns.r.NextPkt()
		if !ok {
			return
		}
		ns.chAck.Send(a)
		if ns.chAck.InTransit() > e.cfg.Occupancy {
			_ = ns.chAck.Drop(a)
		}
	}
}

// expand fans a configuration out over the transition alphabet.
func (e *explorer) expand(s *config) {
	L := e.cfg.Occupancy

	// submit: hand the transmitter the next positional message, only when
	// it is idle and the message bound has room.
	if !s.t.Busy() && int(s.submitted) < e.cfg.MaxMessages {
		ns := e.cloneOf(s)
		ns.t.SendMsg(payload(int(ns.submitted)))
		ns.submitted++
		e.visit(ns, s.id, move{kind: mvSubmit})
	}

	// transmit: one send_pkt^{t→r}, if enabled. Below cap the packet is
	// delayed in transit; at cap it is dropped at send, which is the only
	// way to let the transmitter keep stepping against a full channel.
	{
		ns := e.cloneOf(s)
		if pkt, ok := ns.t.NextPkt(); ok {
			ns.chData.Send(pkt)
			if s.chData.InTransit() < L {
				e.visit(ns, s.id, move{kind: mvTransmit})
			} else {
				_ = ns.chData.Drop(pkt)
				e.visit(ns, s.id, move{kind: mvTransmitDrop})
			}
		} else {
			e.release(ns)
		}
	}

	// deliver-data: each distinct in-transit data packet, removed from the
	// channel before the receiver sees it (genie snapshots observe the
	// post-delivery transit), DL1-checked per delivery, acks drained.
	for i, n := 0, s.chData.DistinctPackets(); i < n; i++ {
		pkt := s.chData.PacketAt(i)
		ns := e.cloneOf(s)
		if ns.chData.Deliver(pkt) != nil {
			e.release(ns)
			continue
		}
		mv := move{kind: mvDeliverData, pkt: pkt}
		ns.r.DeliverPkt(pkt)
		if !e.collect(ns, s.id, mv) {
			return
		}
		e.drainAcks(ns)
		e.visit(ns, s.id, mv)
	}

	// deliver-ack: each distinct in-transit ack packet.
	for i, n := 0, s.chAck.DistinctPackets(); i < n; i++ {
		pkt := s.chAck.PacketAt(i)
		ns := e.cloneOf(s)
		if ns.chAck.Deliver(pkt) != nil {
			e.release(ns)
			continue
		}
		ns.t.DeliverPkt(pkt)
		e.visit(ns, s.id, move{kind: mvDeliverAck, pkt: pkt})
	}

	// drop: each distinct in-transit packet, on either channel. Under the
	// lazy-drop reduction, drops are explored only at cap — where they are
	// needed to unblock a send; see DESIGN.md §12 for why postponing them
	// preserves endpoint-observable reachability for genie-free protocols.
	if !e.por || s.chData.InTransit() >= L {
		for i, n := 0, s.chData.DistinctPackets(); i < n; i++ {
			pkt := s.chData.PacketAt(i)
			ns := e.cloneOf(s)
			if ns.chData.Drop(pkt) == nil {
				e.visit(ns, s.id, move{kind: mvDropData, pkt: pkt})
			} else {
				e.release(ns)
			}
		}
	}
	if !e.por || s.chAck.InTransit() >= L {
		for i, n := 0, s.chAck.DistinctPackets(); i < n; i++ {
			pkt := s.chAck.PacketAt(i)
			ns := e.cloneOf(s)
			if ns.chAck.Drop(pkt) == nil {
				e.visit(ns, s.id, move{kind: mvDropAck, pkt: pkt})
			} else {
				e.release(ns)
			}
		}
	}
}
