package verify

import (
	"fmt"
	"strings"
	"testing"
)

// TestStoreEquivalence drives both stores through the same key sequence —
// with plenty of duplicates — and demands identical ids, counts, and
// canonical hashes.
func TestStoreEquivalence(t *testing.T) {
	mem := newMemStore()
	disk, err := newDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.close()

	var keys []string
	for i := 0; i < 200; i++ {
		keys = append(keys, fmt.Sprintf("tkey-%d|rkey-%d|{}|{}|%d|%d", i%37, i%11, i%5, i%3))
	}
	// Re-insert everything a second time: all revisits.
	keys = append(keys, keys...)

	for i, k := range keys {
		mid, mfresh, err := mem.insert(k)
		if err != nil {
			t.Fatal(err)
		}
		did, dfresh, err := disk.insert(k)
		if err != nil {
			t.Fatal(err)
		}
		if mid != did || mfresh != dfresh {
			t.Fatalf("insert %d (%q): mem (%d, %v), disk (%d, %v)", i, k, mid, mfresh, did, dfresh)
		}
	}
	if mem.len() != disk.len() {
		t.Fatalf("len: mem %d, disk %d", mem.len(), disk.len())
	}
	if mem.hash() != disk.hash() {
		t.Fatalf("hash: mem %016x, disk %016x", mem.hash(), disk.hash())
	}
}

// TestDiskStoreUnwritableDir: an unwritable spill directory must fail at
// construction with an error that names the directory, not surface later as
// a mid-exploration write failure.
func TestDiskStoreUnwritableDir(t *testing.T) {
	dir := t.TempDir() + "/missing"
	_, err := newDiskStore(dir)
	if err == nil {
		t.Fatal("newDiskStore in a nonexistent directory succeeded")
	}
	if !strings.Contains(err.Error(), dir) {
		t.Fatalf("error does not name the spill directory %q: %v", dir, err)
	}
}

// TestDiskStoreLargeKeys checks the spill records across the varint length
// boundary (keys longer than 127 bytes need a two-byte length prefix).
func TestDiskStoreLargeKeys(t *testing.T) {
	disk, err := newDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.close()

	long := make([]byte, 0, 4096)
	for i := 0; i < 512; i++ {
		long = append(long, byte('a'+i%26))
	}
	keys := []string{"short", string(long), string(long) + "x", "short"}
	wantFresh := []bool{true, true, true, false}
	wantID := []int32{0, 1, 2, 0}
	for i, k := range keys {
		id, fresh, err := disk.insert(k)
		if err != nil {
			t.Fatal(err)
		}
		if id != wantID[i] || fresh != wantFresh[i] {
			t.Fatalf("insert %d: got (%d, %v), want (%d, %v)", i, id, fresh, wantID[i], wantFresh[i])
		}
	}
}
