package verify

import (
	"fmt"
	"strings"
	"testing"
)

// TestStoreEquivalence drives all three stores through the same
// configuration sequence — with plenty of duplicates — and demands identical
// ids, counts, and canonical hashes. The packed keys are built the way the
// explorer builds them (component-injective), so the intStore's packed-key
// dedup must agree with the byte-key dedup of the other two.
func TestStoreEquivalence(t *testing.T) {
	mem := newMemStore()
	ints := newIntStore()
	disk, err := newDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.close()

	type probe struct {
		k     intKey
		canon string
	}
	var probes []probe
	for i := 0; i < 200; i++ {
		tc, rc := uint32(i%37), uint32(i%11)
		sub, del := int32(i%5), int32(i%3)
		probes = append(probes, probe{
			k:     intKey{tc: tc, rc: rc, sub: sub, del: del},
			canon: fmt.Sprintf("tkey-%d|rkey-%d|{}|{}|%d|%d", tc, rc, sub, del),
		})
	}
	// Re-insert everything a second time: all revisits.
	probes = append(probes, probes...)

	for i, p := range probes {
		mid, mfresh, err := mem.insert(p.k, []byte(p.canon))
		if err != nil {
			t.Fatal(err)
		}
		iid, ifresh, err := ints.insert(p.k, []byte(p.canon))
		if err != nil {
			t.Fatal(err)
		}
		did, dfresh, err := disk.insert(p.k, []byte(p.canon))
		if err != nil {
			t.Fatal(err)
		}
		if mid != did || mfresh != dfresh || mid != iid || mfresh != ifresh {
			t.Fatalf("insert %d (%q): mem (%d, %v), int (%d, %v), disk (%d, %v)",
				i, p.canon, mid, mfresh, iid, ifresh, did, dfresh)
		}
	}
	if mem.len() != disk.len() || mem.len() != ints.len() {
		t.Fatalf("len: mem %d, int %d, disk %d", mem.len(), ints.len(), disk.len())
	}
	if mem.hash() != disk.hash() || mem.hash() != ints.hash() {
		t.Fatalf("hash: mem %016x, int %016x, disk %016x", mem.hash(), ints.hash(), disk.hash())
	}
}

// TestDiskStoreUnwritableDir: an unwritable spill directory must fail at
// construction with an error that names the directory, not surface later as
// a mid-exploration write failure.
func TestDiskStoreUnwritableDir(t *testing.T) {
	dir := t.TempDir() + "/missing"
	_, err := newDiskStore(dir)
	if err == nil {
		t.Fatal("newDiskStore in a nonexistent directory succeeded")
	}
	if !strings.Contains(err.Error(), dir) {
		t.Fatalf("error does not name the spill directory %q: %v", dir, err)
	}
}

// TestDiskStoreLargeKeys checks the spill records across the varint length
// boundary (keys longer than 127 bytes need a two-byte length prefix).
func TestDiskStoreLargeKeys(t *testing.T) {
	disk, err := newDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.close()

	long := make([]byte, 0, 4096)
	for i := 0; i < 512; i++ {
		long = append(long, byte('a'+i%26))
	}
	keys := []string{"short", string(long), string(long) + "x", "short"}
	wantFresh := []bool{true, true, true, false}
	wantID := []int32{0, 1, 2, 0}
	for i, k := range keys {
		id, fresh, err := disk.insert(intKey{}, []byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if id != wantID[i] || fresh != wantFresh[i] {
			t.Fatalf("insert %d: got (%d, %v), want (%d, %v)", i, id, fresh, wantID[i], wantFresh[i])
		}
	}
}
