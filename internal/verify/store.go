package verify

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// store is the visited set of the exploration: canonical configurations
// mapped to dense ids (assigned in first-visit order, so id order is BFS
// order). Every insert carries the configuration in two equivalent forms —
// the packed interned key (component ids plus counters) and the rendered
// canonical key bytes — and each implementation dedups on one of them:
//
//   - intStore (the default) dedups on the packed key: one comparable
//     32-byte struct probe instead of hashing a canonical string that runs
//     to hundreds of bytes at high occupancy;
//   - memStore (Config.StringKeys) and diskStore (Config.SpillDir) dedup on
//     the canonical bytes, the legacy reference semantics.
//
// The two dedup disciplines agree: interning is injective (equal component
// ids ⇔ equal component strings), so a packed-key hit is a canonical-key
// hit. The converse — distinct packed keys implying distinct canonical
// keys — additionally needs the '|'-joined rendering to be unambiguous,
// which every registered key format satisfies (no component embeds the
// separator at a splitting position); a hypothetical ambiguous format would
// make the packed store strictly *finer* (never merging distinct
// configurations), erring sound. TestStoreEquivalence and the simdiff
// harness pin States/Edges/SpaceHash equality across all three stores.
//
// All implementations maintain the canonical space hash — the XOR of fnv64a
// over all visited canonical keys, folded only on fresh inserts — an
// order-independent fingerprint of the explored configuration set that two
// runs of the same protocol at the same bounds must agree on (the POR on/off
// equivalence tests compare verdicts, not hashes: the reduction visits fewer
// states by design).
type store interface {
	// insert returns the configuration's id and whether it was fresh. canon
	// is valid only for the duration of the call (it aliases the explorer's
	// scratch buffer); implementations that retain it must copy.
	insert(k intKey, canon []byte) (id int32, fresh bool, err error)
	len() int
	hash() uint64
	close() error
}

// intKey is the packed form of a canonical configuration key: the four
// string components (transmitter control key, receiver control key, data
// channel key, ack channel key) interned to dense ids, plus the raw
// counters. The stabilize-mode bookkeeping rides in grem/gfro/lost and is
// zero in clean mode, exactly mirroring the string key's conditional
// "|g…|f…|l…" suffix.
type intKey struct {
	tc, rc, dk, ak uint32
	sub, del       int32
	grem, gfro     int32
	lost           uint64
}

// keyHash is fnv64a over the canonical key bytes, inlined: hash/fnv's
// hasher escapes through the hash.Hash64 interface and costs an allocation
// per fresh insert, and fresh inserts happen once per visited configuration.
func keyHash(k []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range k {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// intStore is the default visited set: a map keyed by the packed interned
// key. The canonical bytes are touched only on fresh inserts, to fold the
// space hash.
type intStore struct {
	ids map[intKey]int32
	xor uint64
}

func newIntStore() *intStore { return &intStore{ids: make(map[intKey]int32)} }

func (s *intStore) insert(k intKey, canon []byte) (int32, bool, error) {
	if id, ok := s.ids[k]; ok {
		return id, false, nil
	}
	id := int32(len(s.ids))
	s.ids[k] = id
	s.xor ^= keyHash(canon)
	return id, true, nil
}

func (s *intStore) len() int     { return len(s.ids) }
func (s *intStore) hash() uint64 { return s.xor }
func (s *intStore) close() error { return nil }

// memStore is the legacy in-memory visited set, keyed by the canonical
// string. Retained behind Config.StringKeys as the reference the packed
// store is differentially checked against.
type memStore struct {
	ids map[string]int32
	xor uint64
}

func newMemStore() *memStore { return &memStore{ids: make(map[string]int32)} }

func (s *memStore) insert(_ intKey, canon []byte) (int32, bool, error) {
	if id, ok := s.ids[string(canon)]; ok { // no-alloc map probe
		return id, false, nil
	}
	k := string(canon)
	id := int32(len(s.ids))
	s.ids[k] = id
	s.xor ^= keyHash(canon)
	return id, true, nil
}

func (s *memStore) len() int     { return len(s.ids) }
func (s *memStore) hash() uint64 { return s.xor }
func (s *memStore) close() error { return nil }

// diskStore spills the canonical key bytes — the dominant memory cost of a
// large exploration — to an append-only temp file, keeping only a 64-bit
// hash and a file offset per visited configuration in memory (16 bytes per
// rec vs a key that can run to kilobytes at high occupancy). The split is
// keys on disk, ids in memory: dense ids never leave RAM, so the BFS
// frontier and the parent chain stay pointer-free, while the only disk reads
// are collision probes. A hash hit is verified by reading the stored key
// back before it counts as a revisit, so hash collisions cost a read, never
// a wrong answer. Records are uvarint-length-prefixed key bytes; all access
// is ReadAt/WriteAt, so no buffering layer can serve stale data.
type diskStore struct {
	f      *os.File
	off    int64
	byHash map[uint64][]diskRec
	n      int
	xor    uint64
	buf    []byte
}

type diskRec struct {
	off int64
	id  int32
}

func newDiskStore(dir string) (*diskStore, error) {
	f, err := os.CreateTemp(dir, "nfverify-visited-*.keys")
	if err != nil {
		// Name the directory: the default ("" → os.TempDir) and an explicit
		// -spill dir fail the same way, and the operator needs to know which
		// path to fix.
		if dir == "" {
			dir = os.TempDir()
		}
		return nil, fmt.Errorf("verify: spill store: cannot create spill file in %q: %w", dir, err)
	}
	// The file is unlinked-on-close via close(); keep the name for Remove.
	return &diskStore{f: f, byHash: make(map[uint64][]diskRec)}, nil
}

func (s *diskStore) insert(_ intKey, canon []byte) (int32, bool, error) {
	h := keyHash(canon)
	for _, rec := range s.byHash[h] {
		same, err := s.keyAt(rec.off, canon)
		if err != nil {
			return 0, false, err
		}
		if same {
			return rec.id, false, nil
		}
	}
	s.buf = binary.AppendUvarint(s.buf[:0], uint64(len(canon)))
	s.buf = append(s.buf, canon...)
	if _, err := s.f.WriteAt(s.buf, s.off); err != nil {
		return 0, false, fmt.Errorf("verify: spill store: %w", err)
	}
	id := int32(s.n)
	s.byHash[h] = append(s.byHash[h], diskRec{off: s.off, id: id})
	s.off += int64(len(s.buf))
	s.n++
	s.xor ^= h
	return id, true, nil
}

// keyAt reports whether the record at off holds exactly want. Records of a
// different length are rejected from the prefix alone, without a second read.
func (s *diskStore) keyAt(off int64, want []byte) (bool, error) {
	var lbuf [binary.MaxVarintLen64]byte
	n, err := s.f.ReadAt(lbuf[:], off)
	if err != nil && err != io.EOF {
		return false, fmt.Errorf("verify: spill store: %w", err)
	}
	l, ln := binary.Uvarint(lbuf[:n])
	if ln <= 0 {
		return false, fmt.Errorf("verify: spill store: corrupt record at offset %d", off)
	}
	if l != uint64(len(want)) {
		return false, nil
	}
	kb := make([]byte, l)
	if _, err := s.f.ReadAt(kb, off+int64(ln)); err != nil {
		return false, fmt.Errorf("verify: spill store: %w", err)
	}
	return string(kb) == string(want), nil
}

func (s *diskStore) len() int     { return s.n }
func (s *diskStore) hash() uint64 { return s.xor }

func (s *diskStore) close() error {
	name := s.f.Name()
	err := s.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}
