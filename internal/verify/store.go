package verify

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// store is the visited set of the exploration: canonical configuration keys
// mapped to dense ids (assigned in first-visit order, so id order is BFS
// order). Both implementations maintain the canonical space hash — the XOR
// of fnv64a over all visited keys — an order-independent fingerprint of the
// explored configuration set that two runs of the same protocol at the same
// bounds must agree on (the POR on/off equivalence tests compare verdicts,
// not hashes: the reduction visits fewer states by design).
type store interface {
	// insert returns the key's id and whether it was fresh.
	insert(key string) (id int32, fresh bool, err error)
	len() int
	hash() uint64
	close() error
}

func keyHash(k string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, k)
	return h.Sum64()
}

// memStore is the default in-memory visited set.
type memStore struct {
	ids map[string]int32
	xor uint64
}

func newMemStore() *memStore { return &memStore{ids: make(map[string]int32)} }

func (s *memStore) insert(k string) (int32, bool, error) {
	if id, ok := s.ids[k]; ok {
		return id, false, nil
	}
	id := int32(len(s.ids))
	s.ids[k] = id
	s.xor ^= keyHash(k)
	return id, true, nil
}

func (s *memStore) len() int     { return len(s.ids) }
func (s *memStore) hash() uint64 { return s.xor }
func (s *memStore) close() error { return nil }

// diskStore spills the key strings — the dominant memory cost of a large
// exploration — to an append-only temp file, keeping only a 64-bit hash and
// a file offset per visited configuration in memory (16 bytes per rec vs a
// key that can run to kilobytes at high occupancy). The split is keys on
// disk, ids in memory: dense ids never leave RAM, so the BFS frontier and
// the parent chain stay pointer-free, while the only disk reads are
// collision probes. A hash hit is verified by reading the stored key back
// before it counts as a revisit, so hash collisions cost a read, never a
// wrong answer. Records are uvarint-length-prefixed key bytes; all access
// is ReadAt/WriteAt, so no buffering layer can serve stale data.
type diskStore struct {
	f      *os.File
	off    int64
	byHash map[uint64][]diskRec
	n      int
	xor    uint64
	buf    []byte
}

type diskRec struct {
	off int64
	id  int32
}

func newDiskStore(dir string) (*diskStore, error) {
	f, err := os.CreateTemp(dir, "nfverify-visited-*.keys")
	if err != nil {
		// Name the directory: the default ("" → os.TempDir) and an explicit
		// -spill dir fail the same way, and the operator needs to know which
		// path to fix.
		if dir == "" {
			dir = os.TempDir()
		}
		return nil, fmt.Errorf("verify: spill store: cannot create spill file in %q: %w", dir, err)
	}
	// The file is unlinked-on-close via close(); keep the name for Remove.
	return &diskStore{f: f, byHash: make(map[uint64][]diskRec)}, nil
}

func (s *diskStore) insert(k string) (int32, bool, error) {
	h := keyHash(k)
	for _, rec := range s.byHash[h] {
		same, err := s.keyAt(rec.off, k)
		if err != nil {
			return 0, false, err
		}
		if same {
			return rec.id, false, nil
		}
	}
	s.buf = binary.AppendUvarint(s.buf[:0], uint64(len(k)))
	s.buf = append(s.buf, k...)
	if _, err := s.f.WriteAt(s.buf, s.off); err != nil {
		return 0, false, fmt.Errorf("verify: spill store: %w", err)
	}
	id := int32(s.n)
	s.byHash[h] = append(s.byHash[h], diskRec{off: s.off, id: id})
	s.off += int64(len(s.buf))
	s.n++
	s.xor ^= h
	return id, true, nil
}

// keyAt reports whether the record at off holds exactly want. Records of a
// different length are rejected from the prefix alone, without a second read.
func (s *diskStore) keyAt(off int64, want string) (bool, error) {
	var lbuf [binary.MaxVarintLen64]byte
	n, err := s.f.ReadAt(lbuf[:], off)
	if err != nil && err != io.EOF {
		return false, fmt.Errorf("verify: spill store: %w", err)
	}
	l, ln := binary.Uvarint(lbuf[:n])
	if ln <= 0 {
		return false, fmt.Errorf("verify: spill store: corrupt record at offset %d", off)
	}
	if l != uint64(len(want)) {
		return false, nil
	}
	kb := make([]byte, l)
	if _, err := s.f.ReadAt(kb, off+int64(ln)); err != nil {
		return false, fmt.Errorf("verify: spill store: %w", err)
	}
	return string(kb) == want, nil
}

func (s *diskStore) len() int     { return s.n }
func (s *diskStore) hash() uint64 { return s.xor }

func (s *diskStore) close() error {
	name := s.f.Name()
	err := s.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}
