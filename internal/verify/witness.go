package verify

import (
	"fmt"
	"strconv"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/trace"
)

// Witness reconstruction: a finding of the exploration is a path through
// the configuration graph, and every move of that path is a sim.Runner
// operation. Re-driving the path through a fresh runner with a trace log
// attached turns the finding into an ordinary NFT schedule; replaying that
// schedule through internal/replay and re-deriving the verdict is the
// checker's confirmation step. The two layers are deliberately independent:
// the explorer mutates cloned endpoints directly while the runner drives
// live ones through its own bookkeeping, so a divergence or a clean replay
// here would expose semantic drift between verifier and simulator rather
// than slip through as a wrong verdict.

// chain reconstructs the move path from its BFS root to id by walking the
// parent edges, optionally appending a final (not-visited) move such as the
// violating delivery. It returns the path and the root's node id: clean
// mode has the single root 0, but stabilize mode seeds one root per
// corrupted configuration, and the walk must stop at whichever root the
// path descends from (a root's parent edge is -1 and its move is empty —
// following it would fabricate an unknown move).
func (e *explorer) chain(id int32, last *move) ([]move, int32) {
	var rev []move
	if last != nil {
		rev = append(rev, *last)
	}
	cur := id
	for cur >= 0 && e.parents[cur].parent >= 0 {
		pe := e.parents[cur]
		rev = append(rev, move{kind: pe.kind, pkt: e.pkts.at(pe.pkt)})
		cur = pe.parent
	}
	out := make([]move, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out, cur
}

// witnessLog re-drives the move path through a fresh runner and returns the
// captured NFT schedule. The data policy replays the per-transmit decisions
// the path encodes (Delay below cap, Drop at cap); the ack policy is the
// live drop-at-cap closure the explorer's drain uses, evaluated against the
// runner's own channel. Channel-policy decisions are captured into the log
// by the runner, which is what makes the schedule self-contained. In
// stabilize mode the root's corruption is applied first, so the schedule
// opens with the replayable corrupt/poison operations and the witness is a
// complete corrupted-start scenario.
func (e *explorer) witnessLog(moves []move, root int32) (*trace.Log, error) {
	var dataDecisions []channel.Decision
	for _, m := range moves {
		switch m.kind {
		case mvTransmit:
			dataDecisions = append(dataDecisions, channel.Delay)
		case mvTransmitDrop:
			dataDecisions = append(dataDecisions, channel.Drop)
		}
	}
	wl := trace.NewLog(nil)
	di := 0
	var run *sim.Runner
	run = sim.NewRunner(sim.Config{
		Protocol: e.proto,
		DataPolicy: channel.PolicyFunc(func(ioa.Packet) channel.Decision {
			if di < len(dataDecisions) {
				d := dataDecisions[di]
				di++
				return d
			}
			return channel.Delay
		}),
		AckPolicy: channel.PolicyFunc(func(ioa.Packet) channel.Decision {
			if run.ChAck.InTransit() > e.cfg.Occupancy {
				return channel.Drop
			}
			return channel.Delay
		}),
		TraceLog: wl,
	})
	if seed, ok := e.roots[root]; ok && !seed.Clean() {
		if err := stabilize.Apply(run, seed); err != nil {
			return nil, fmt.Errorf("verify: witness re-drive: applying corrupted start %s: %v", seed, err)
		}
	}
	for i, m := range moves {
		var err error
		switch m.kind {
		case mvSubmit:
			run.SubmitMsg(payload(run.SentMessages()))
		case mvTransmit, mvTransmitDrop:
			if !run.StepTransmit() {
				err = fmt.Errorf("no transmitter output enabled")
			}
		case mvDeliverData:
			if err = run.DeliverStale(ioa.TtoR, m.pkt); err == nil {
				run.DrainAcks()
			}
		case mvDeliverAck:
			err = run.DeliverStale(ioa.RtoT, m.pkt)
		case mvDropData:
			err = run.DropStale(ioa.TtoR, m.pkt)
		case mvDropAck:
			err = run.DropStale(ioa.RtoT, m.pkt)
		default:
			err = fmt.Errorf("unknown move kind")
		}
		if err != nil {
			return nil, fmt.Errorf("verify: witness re-drive: step %d (%s): %v", i, m, err)
		}
	}
	return wl, nil
}

// confirmSafety replays a reconstructed witness schedule and demands a
// divergence-free reproduction that the independent checkers judge unsafe.
// It returns the replay's re-recorded log (which carries the fresh verdict
// event) and the confirmed violation.
func confirmSafety(wl *trace.Log) (*trace.Log, *ioa.Violation, error) {
	rr, err := replay.Run(wl)
	if err != nil {
		return nil, nil, fmt.Errorf("verify: witness replay: %w", err)
	}
	if rr.Divergence != nil {
		return nil, nil, fmt.Errorf("verify: witness diverged on replay (verifier/simulator drift): %v", rr.Divergence)
	}
	if rr.Verdict == nil {
		return nil, nil, fmt.Errorf("verify: witness replayed safety-clean; the explored violation did not reproduce")
	}
	return rr.Log, rr.Verdict, nil
}

// confirmStabilize replays a corrupted-start witness schedule and demands a
// divergence-free reproduction that the amnesty judge — re-run from scratch
// on the replayed trace — still finds over budget. The clean-start checkers
// are the wrong referee here (a within-amnesty garbage delivery already
// fails them), so the replayed trace is re-judged by stabilize.JudgeTrace
// with the seed's amnesty instead. The returned log carries the replay's
// own verdict event, so the witness file replays with a matching verdict
// under `nfvet replay`; the stabilize-level finding rides in the metadata.
func confirmStabilize(wl *trace.Log, seed stabilize.Corruption, occupancy int) (*trace.Log, *ioa.Violation, error) {
	rr, err := replay.Run(wl)
	if err != nil {
		return nil, nil, fmt.Errorf("verify: witness replay: %w", err)
	}
	if rr.Divergence != nil {
		return nil, nil, fmt.Errorf("verify: witness diverged on replay (verifier/simulator drift): %v", rr.Divergence)
	}
	amnesty := stabilize.Amnesty(seed, occupancy)
	j := stabilize.JudgeTrace(rr.Trace, amnesty)
	if j.Violation == nil {
		return nil, nil, fmt.Errorf("verify: witness replayed within amnesty %d (%d fault(s)); the explored divergence did not reproduce",
			amnesty, j.Charges)
	}
	l := rr.Log
	l.SetMeta(trace.MetaSource, "verify-stabilize")
	l.SetMeta(stabilize.MetaCorruption, seed.Key())
	l.SetMeta(stabilize.MetaAmnesty, strconv.Itoa(amnesty))
	l.SetMeta(stabilize.MetaStabilize, "diverged "+j.Violation.Property)
	return l, j.Violation, nil
}
