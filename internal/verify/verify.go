// Package verify is a bounded model checker for data link protocols over
// non-FIFO channels: it exhaustively explores the joint configurations
// (q_t, q_r, c^{t→r}, c^{r→t}, submitted, delivered) reachable when each
// channel holds at most Occupancy in-transit packets and at most
// MaxMessages messages are submitted, checking DL1 (safe delivery
// correspondence) on the fly and DL3 (no livelock) over the explored graph.
//
// The checker is the proof-side complement of the repo's testing tools: the
// fuzzer (internal/fuzz) and the adversary constructions (internal/adversary)
// *find* violating schedules; `nfvet verify` either finds one by exhaustion
// — emitted as a replay-confirmed NFT counterexample — or PROVES there is
// none within the stated bounds, emitting a machine-readable proof artifact
// (state/edge counts, canonical space hash). Witnesses are never trusted:
// every counterexample is re-driven through sim.Runner and re-judged by
// internal/replay before it is reported (see witness.go), so the verifier's
// transition semantics are continuously cross-checked against the
// production simulator.
//
// Two reductions keep the space small (DESIGN.md §12 has the full soundness
// arguments):
//
//   - exact dedup of drop-at-send below cap: transmit-and-drop reaches the
//     configuration of transmit-and-delay followed by an in-transit drop,
//     so only the at-cap form is explored as a distinct move;
//   - the lazy-drop partial-order reduction (POR): for genie-free protocols
//     — whose endpoints cannot observe in-transit contents — drops commute
//     with every non-drop move, so postponing them until the cap blocks a
//     send preserves endpoint-observable reachability. The reduction is
//     automatically disabled for genie-consulting protocols (the counting
//     family), whose Stale() snapshots do observe drops.
//
// Verdicts are checked against the protocol's optional protocol.DLStatus
// declaration and folded into the repo's audit vocabulary
// (CERTIFIED/CONSISTENT/OBSERVED/FAIL); see judge.
package verify

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/channel"
	"repro/internal/intern"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/stabilize"
	"repro/internal/trace"
)

// Config bounds one verification run. The zero value is ready to use.
type Config struct {
	// Occupancy caps the in-transit packets per channel (the L of the
	// PROVED-up-to-L claim). Default 2 — the smallest cap that exercises
	// stale-copy replay (one stale plus one fresh copy in transit).
	Occupancy int
	// MaxMessages bounds the submitted messages. Default 3 — the smallest
	// count that lets a bounded-header protocol's alphabet cycle back
	// (the alternating bit attack needs the third message).
	MaxMessages int
	// MaxStates is the exploration budget: the run reports BUDGET instead
	// of PROVED when the visited set reaches it. Default 1 << 18.
	MaxStates int
	// NoPOR disables the lazy-drop partial-order reduction. The zero value
	// (POR on) is sound for every protocol: the reduction auto-disables
	// for genie-consulting protocols regardless of this flag.
	NoPOR bool
	// SpillDir, when non-empty, spills the visited key set to a temp file
	// under this directory instead of holding it in memory ("" = in
	// memory; "." spills to the current directory's temp space).
	SpillDir string
	// StringKeys forces the legacy string-keyed in-memory visited set
	// instead of the interned packed-key store. The two are
	// phenotype-identical — same States, Edges, SpaceHash and verdict; the
	// simdiff harness pins the equivalence — so the flag exists for
	// differential checking and A/B benchmarks, not correctness. Ignored
	// when SpillDir is set (spilled keys are stored as strings regardless).
	StringKeys bool
	// Pump is how many times a livelock certificate's cycle is pumped in
	// the emitted witness; <= 0 means 3.
	Pump int
	// DriveBudget bounds the reliable closing drive's rounds during DL3
	// confirmation; <= 0 means replay.DefaultDriveBudget.
	DriveBudget int
	// DL3Confirm caps how many stranded candidates are re-driven through
	// the livelock certifier; <= 0 means 3.
	DL3Confirm int
	// Stabilize switches the run to self-stabilization mode: the BFS
	// frontier is seeded with every bounded corrupted configuration the
	// protocol declares (internal/stabilize), deliveries are judged by the
	// amnesty classifier instead of the clean-start DL1 check, and PROVED
	// means the protocol converges from every corrupted start within the
	// bounds.
	Stabilize bool
	// MaxPoison caps the pre-loaded poison packets per channel in
	// stabilize mode; <= 0 means 1. It never exceeds Occupancy (poison
	// occupies the channel like any packet).
	MaxPoison int
}

func (c Config) withDefaults() Config {
	if c.Occupancy <= 0 {
		c.Occupancy = 2
	}
	if c.MaxMessages <= 0 {
		c.MaxMessages = 3
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 18
	}
	if c.Pump <= 0 {
		c.Pump = 3
	}
	if c.DL3Confirm <= 0 {
		c.DL3Confirm = 3
	}
	if c.MaxPoison <= 0 {
		c.MaxPoison = 1
	}
	if c.MaxPoison > c.Occupancy {
		c.MaxPoison = c.Occupancy
	}
	return c
}

// Verdict is the checker's conclusion about the bounded space.
type Verdict string

const (
	// VerdictProved: the space was exhausted and neither a DL1 violation
	// nor a confirmable livelock exists within the bounds.
	VerdictProved Verdict = "PROVED"
	// VerdictViolated: a violation is reachable; the Report carries the
	// replay-confirmed NFT witness.
	VerdictViolated Verdict = "VIOLATED"
	// VerdictBudget: the state budget cut the exploration off before
	// exhaustion and no violation was found — inconclusive.
	VerdictBudget Verdict = "BUDGET"
)

// Check folds the verdict against the protocol's DLStatus declaration into
// the audit vocabulary shared across nfvet.
type Check string

const (
	// CheckCertified: the verdict proves the declaration — a declared
	// DL-sound protocol PROVED, or a declared-attackable protocol caught.
	CheckCertified Check = "CERTIFIED"
	// CheckConsistent: the verdict does not contradict the declaration but
	// cannot prove it (budget hit, or attack bounds beyond the explored
	// space).
	CheckConsistent Check = "CONSISTENT"
	// CheckObserved: the protocol declares no DLStatus; informational.
	CheckObserved Check = "OBSERVED"
	// CheckFail: the verdict contradicts the declaration, or a witness
	// failed its replay confirmation.
	CheckFail Check = "FAIL"
)

// AttackDecl mirrors a protocol's DLStatus declaration in the report.
type AttackDecl struct {
	Occupancy int `json:"occupancy"`
	Messages  int `json:"messages"`
}

// Sound reports whether the declaration claims DL-soundness at every bound.
func (d AttackDecl) Sound() bool { return d.Occupancy == 0 && d.Messages == 0 }

// Report is the outcome of verifying one protocol. When the verdict is
// PROVED the report is the proof artifact; when VIOLATED it carries the
// confirmed witness schedule.
type Report struct {
	Protocol    string `json:"protocol"`
	Occupancy   int    `json:"occupancy"`
	MaxMessages int    `json:"messages"`
	MaxStates   int    `json:"maxStates"`

	// POR reports whether the lazy-drop reduction was active; PORReason
	// explains a forced-off ("genie-consulting protocol") or requested-off
	// ("disabled") reduction.
	POR       bool   `json:"por"`
	PORReason string `json:"porReason,omitempty"`

	// States and Edges size the explored graph; Exhausted reports whether
	// the space was fully explored or the budget cut it off. SpaceHash is
	// the canonical fingerprint of the visited configuration set (XOR of
	// fnv64a over canonical keys), and Spilled whether the visited set
	// lived on disk.
	States    int    `json:"states"`
	Edges     int    `json:"edges"`
	Exhausted bool   `json:"exhausted"`
	SpaceHash string `json:"spaceHash"`
	Spilled   bool   `json:"spilled,omitempty"`

	Verdict Verdict `json:"verdict"`
	// Property is the violated property ("DL1" family safety property, or
	// "DL3") when VIOLATED.
	Property string `json:"property,omitempty"`
	// Detail elaborates the violation (checker detail string).
	Detail string `json:"detail,omitempty"`
	// WitnessOps counts the driver operations of the witness schedule;
	// WitnessConfirmed reports the replay confirmation (always true for a
	// reported VIOLATED verdict unless the confirmation itself failed,
	// which is a FAIL).
	WitnessOps       int  `json:"witnessOps,omitempty"`
	WitnessConfirmed bool `json:"witnessConfirmed,omitempty"`

	// DL3Candidates counts stranded no-progress configurations in the
	// explored graph; DL3Attempted how many were re-driven through the
	// livelock certifier. Candidates that recover under the reliable
	// closing drive are occupancy-cap artifacts, not violations.
	DL3Candidates int `json:"dl3Candidates,omitempty"`
	DL3Attempted  int `json:"dl3Attempted,omitempty"`

	// Declared mirrors the protocol's DLStatus declaration, nil when the
	// protocol makes none.
	Declared *AttackDecl `json:"declared,omitempty"`
	Check    Check       `json:"check"`
	Failures []string    `json:"failures,omitempty"`

	// Stabilize-mode fields (zero unless Config.Stabilize): Seeds is the
	// number of corrupted initial configurations the frontier was seeded
	// with, MaxPoison the per-channel poison cap, Seed the corruption key
	// of the diverging seed when VIOLATED, and DeclaredStabilizing the
	// protocol's StabilizeStatus declaration (nil when it makes none).
	Stabilize           bool   `json:"stabilize,omitempty"`
	Seeds               int    `json:"seeds,omitempty"`
	MaxPoison           int    `json:"maxPoison,omitempty"`
	Seed                string `json:"seed,omitempty"`
	DeclaredStabilizing *bool  `json:"declaredStabilizing,omitempty"`

	// Witness is the replay-confirmed NFT counterexample (nil unless
	// VIOLATED): a safety schedule for DL1, a pumped livelock certificate
	// for DL3. It is excluded from the JSON artifact — the CLI writes it
	// as a separate .nft file.
	Witness *trace.Log `json:"-"`
}

// MarshalJSON emits the machine-readable proof artifact.
func (r *Report) JSON() ([]byte, error) {
	type alias Report // shed methods, keep tags
	return json.MarshalIndent((*alias)(r), "", "  ")
}

// Run verifies one protocol up to the configured bounds.
func Run(p protocol.Protocol, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		Protocol:    p.Name(),
		Occupancy:   cfg.Occupancy,
		MaxMessages: cfg.MaxMessages,
		MaxStates:   cfg.MaxStates,
	}

	e := &explorer{cfg: cfg, proto: p, tab: intern.NewLocal(), pkts: newPktIntern()}
	if cfg.Stabilize {
		if cfg.MaxMessages > stabilize.MaxLost {
			return nil, fmt.Errorf("verify: stabilize mode tracks at most %d message positions, got MaxMessages=%d",
				stabilize.MaxLost, cfg.MaxMessages)
		}
		e.roots = make(map[int32]stabilize.Corruption)
		rep.Stabilize = true
		rep.MaxPoison = cfg.MaxPoison
	}

	// The lazy-drop reduction is sound only when the endpoints cannot
	// observe in-transit contents; genie users can (Stale snapshots), so
	// the reduction is forced off for them.
	init := newInit(p)
	_, tGenie := init.t.(protocol.AckGenieUser)
	_, rGenie := init.r.(protocol.DataGenieUser)
	switch {
	case tGenie || rGenie:
		e.por = false
		rep.PORReason = "genie-consulting protocol"
	case cfg.NoPOR:
		e.por = false
		rep.PORReason = "disabled"
	default:
		e.por = true
	}
	rep.POR = e.por

	switch {
	case cfg.SpillDir != "":
		ds, err := newDiskStore(cfg.SpillDir)
		if err != nil {
			return nil, err
		}
		e.seen = ds
		rep.Spilled = true
	case cfg.StringKeys:
		e.seen = newMemStore()
	default:
		e.seen = newIntStore()
	}
	defer func() { _ = e.seen.close() }()

	if cfg.Stabilize {
		// Seed the frontier with the full bounded corrupted space: every
		// declared endpoint-state pair crossed with every poison multiset.
		// Each seed is a BFS root carrying its own amnesty; subspaces that
		// reconverge to identical joint configurations with identical
		// bookkeeping dedup across seeds.
		seeds := stabilize.Enumerate(p, cfg.MaxPoison)
		rep.Seeds = len(seeds)
		for _, seed := range seeds {
			root, err := corruptInit(p, seed, cfg.Occupancy)
			if err != nil {
				return nil, err
			}
			id, fresh := e.visit(root, -1, move{})
			if fresh {
				e.roots[id] = seed
			}
		}
	} else {
		e.visit(init, -1, move{})
	}
	exhausted := true
	for head := 0; head < len(e.queue); head++ {
		if e.violation != nil || e.err != nil {
			exhausted = false
			break
		}
		if e.seen.len() >= cfg.MaxStates {
			exhausted = false
			break
		}
		s := e.queue[head]
		e.expand(s)
		// Recycle the configuration once its wave has passed; only the
		// parent edges and counters are needed afterwards, so its struct
		// and channel storage go back to the freelist for cloneOf.
		e.release(s)
		e.queue[head] = nil
	}
	if e.err != nil {
		return nil, e.err
	}

	rep.States = e.seen.len()
	rep.Edges = len(e.edges)
	rep.Exhausted = exhausted
	rep.SpaceHash = fmt.Sprintf("%016x", e.seen.hash())

	switch {
	case e.violation != nil:
		rep.Verdict = VerdictViolated
		moves, root := e.chain(e.violation.parent, &e.violation.mv)
		wl, werr := e.witnessLog(moves, root)
		if werr == nil {
			var v *ioa.Violation
			if cfg.Stabilize {
				seed := e.roots[root]
				rep.Seed = seed.Key()
				wl, v, werr = confirmStabilize(wl, seed, cfg.Occupancy)
			} else {
				wl, v, werr = confirmSafety(wl)
			}
			if werr == nil {
				rep.Witness = wl
				rep.WitnessConfirmed = true
				rep.Property = v.Property
				rep.Detail = e.violation.detail
				rep.WitnessOps = countOps(wl)
			}
		}
		if werr != nil {
			rep.Failures = append(rep.Failures, werr.Error())
		}
	case exhausted:
		cands := e.strandedCandidates()
		rep.DL3Candidates = len(cands)
		if len(cands) > 0 {
			cert, pumped, attempted, err := e.confirmLivelock(cands, cfg.DL3Confirm)
			rep.DL3Attempted = attempted
			if err != nil {
				rep.Failures = append(rep.Failures, err.Error())
			}
			if cert != nil {
				rep.Verdict = VerdictViolated
				rep.Property = "DL3"
				rep.Detail = cert.DL3.Detail
				rep.Witness = pumped
				rep.WitnessConfirmed = true
				rep.WitnessOps = countOps(pumped)
			}
		}
		if rep.Verdict == "" {
			rep.Verdict = VerdictProved
		}
	default:
		rep.Verdict = VerdictBudget
	}

	if cfg.Stabilize {
		judgeStabilize(rep, p)
	} else {
		judge(rep, p)
	}
	return rep, nil
}

// newInit builds the clean initial configuration.
func newInit(p protocol.Protocol) *config {
	init := &config{
		chData: channel.NewNonFIFO(ioa.TtoR),
		chAck:  channel.NewNonFIFO(ioa.RtoT),
	}
	init.t, init.r = p.New(
		channel.ChannelGenie{Ch: init.chData},
		channel.ChannelGenie{Ch: init.chAck},
	)
	return init
}

// corruptInit builds the initial configuration for one corrupted seed:
// declared endpoint states (genies rebound to the fresh channels) and the
// poison packets pre-loaded in transit, with the seed's amnesty as the
// remaining fault budget.
func corruptInit(p protocol.Protocol, seed stabilize.Corruption, occupancy int) (*config, error) {
	init := newInit(p)
	if seed.TIdx != 0 || seed.RIdx != 0 {
		cp, ok := p.(protocol.Corruptible)
		if !ok {
			return nil, fmt.Errorf("verify: seed %s for non-Corruptible protocol %s", seed, p.Name())
		}
		space := cp.Corruptions()
		if seed.TIdx < 0 || seed.TIdx >= len(space.Transmitters) || seed.RIdx < 0 || seed.RIdx >= len(space.Receivers) {
			return nil, fmt.Errorf("verify: seed %s out of range for protocol %s", seed, p.Name())
		}
		init.t = space.Transmitters[seed.TIdx].Clone()
		init.r = space.Receivers[seed.RIdx].Clone()
		if u, ok := init.t.(protocol.AckGenieUser); ok {
			u.SetAckGenie(channel.ChannelGenie{Ch: init.chAck})
		}
		if u, ok := init.r.(protocol.DataGenieUser); ok {
			u.SetDataGenie(channel.ChannelGenie{Ch: init.chData})
		}
	}
	for _, pkt := range seed.Data {
		init.chData.Send(pkt)
	}
	for _, pkt := range seed.Ack {
		init.chAck.Send(pkt)
	}
	init.remaining = int32(stabilize.Amnesty(seed, occupancy))
	return init, nil
}

func countOps(l *trace.Log) int {
	n := 0
	for _, ev := range l.Events {
		if ev.Kind.IsOp() {
			n++
		}
	}
	return n
}

// judge fills in the Check by comparing the verdict against the protocol's
// DLStatus declaration.
func judge(rep *Report, p protocol.Protocol) {
	if rep.Verdict == VerdictViolated && !rep.WitnessConfirmed {
		rep.Failures = append(rep.Failures,
			"violation explored but its witness failed replay confirmation (verifier/simulator drift)")
		rep.Check = CheckFail
		return
	}

	ds, ok := p.(protocol.DLStatus)
	if !ok {
		rep.Check = CheckObserved
		return
	}
	occ, msg := ds.AttackBounds()
	rep.Declared = &AttackDecl{Occupancy: occ, Messages: msg}

	switch rep.Verdict {
	case VerdictViolated:
		if rep.Declared.Sound() {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"declared DL-sound but a replay-confirmed %s violation is reachable at occupancy %d with %d message(s)",
				rep.Property, rep.Occupancy, rep.MaxMessages))
			rep.Check = CheckFail
		} else {
			rep.Check = CheckCertified
		}
	case VerdictProved:
		switch {
		case rep.Declared.Sound():
			rep.Check = CheckCertified
		case rep.Occupancy >= occ && rep.MaxMessages >= msg:
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"declared attackable at occupancy>=%d, messages>=%d, but the space up to occupancy %d, %d message(s) is exhausted violation-free",
				occ, msg, rep.Occupancy, rep.MaxMessages))
			rep.Check = CheckFail
		default:
			// Proved clean below the declared attack bounds: consistent —
			// the attack needs more room than this run explored.
			rep.Check = CheckConsistent
		}
	default: // BUDGET
		rep.Check = CheckConsistent
	}
}

// judgeStabilize fills in the Check for stabilize-mode runs by comparing
// the verdict against the protocol's StabilizeStatus declaration: PROVED
// certifies a declared self-stabilizing protocol, a confirmed divergence
// certifies a declared non-stabilizing one, and the cross cases are
// verifier-caught declaration bugs.
func judgeStabilize(rep *Report, p protocol.Protocol) {
	if rep.Verdict == VerdictViolated && !rep.WitnessConfirmed {
		rep.Failures = append(rep.Failures,
			"divergence explored but its witness failed replay confirmation (verifier/simulator drift)")
		rep.Check = CheckFail
		return
	}
	ss, ok := p.(protocol.StabilizeStatus)
	if !ok {
		rep.Check = CheckObserved
		return
	}
	decl := ss.SelfStabilizing()
	rep.DeclaredStabilizing = &decl
	switch rep.Verdict {
	case VerdictViolated:
		if decl {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"declared self-stabilizing but a replay-confirmed %s divergence is reachable from corrupted start %s",
				rep.Property, rep.Seed))
			rep.Check = CheckFail
		} else {
			rep.Check = CheckCertified
		}
	case VerdictProved:
		if decl {
			rep.Check = CheckCertified
		} else {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"declared non-stabilizing but every corrupted start up to occupancy %d, %d message(s), %d poison/channel converges within amnesty",
				rep.Occupancy, rep.MaxMessages, rep.MaxPoison))
			rep.Check = CheckFail
		}
	default: // BUDGET
		rep.Check = CheckConsistent
	}
}

// String renders the report in the fixed layout the golden tests pin down.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol:   %s\n", r.Protocol)
	fmt.Fprintf(&b, "occupancy:  %d\n", r.Occupancy)
	fmt.Fprintf(&b, "messages:   %d\n", r.MaxMessages)
	if r.Stabilize {
		fmt.Fprintf(&b, "stabilize:  %d corrupted seed(s), max poison %d/channel\n", r.Seeds, r.MaxPoison)
	}
	if r.POR {
		fmt.Fprintf(&b, "por:        on (lazy drops)\n")
	} else {
		fmt.Fprintf(&b, "por:        off (%s)\n", r.PORReason)
	}
	switch {
	case r.Exhausted:
		fmt.Fprintf(&b, "states:     %d (exhausted)\n", r.States)
	case r.Verdict == VerdictViolated:
		fmt.Fprintf(&b, "states:     %d (stopped at first violation)\n", r.States)
	default:
		fmt.Fprintf(&b, "states:     %d (budget %d hit)\n", r.States, r.MaxStates)
	}
	fmt.Fprintf(&b, "edges:      %d\n", r.Edges)
	fmt.Fprintf(&b, "space-hash: %s\n", r.SpaceHash)
	switch r.Verdict {
	case VerdictViolated:
		fmt.Fprintf(&b, "verdict:    VIOLATED (%s)\n", r.Property)
		fmt.Fprintf(&b, "  detail:   %s\n", r.Detail)
		if r.Seed != "" {
			fmt.Fprintf(&b, "  seed:     %s\n", r.Seed)
		}
		if r.WitnessConfirmed {
			fmt.Fprintf(&b, "witness:    %d ops, replay-confirmed\n", r.WitnessOps)
		}
	default:
		fmt.Fprintf(&b, "verdict:    %s\n", r.Verdict)
	}
	if r.DL3Candidates > 0 && r.Verdict != VerdictViolated {
		fmt.Fprintf(&b, "dl3:        %d stranded candidate(s), %d re-driven, none livelock (recover under reliable drive)\n",
			r.DL3Candidates, r.DL3Attempted)
	}
	switch {
	case r.Stabilize:
		switch {
		case r.DeclaredStabilizing == nil:
			fmt.Fprintf(&b, "declared:   (none)\n")
		case *r.DeclaredStabilizing:
			fmt.Fprintf(&b, "declared:   self-stabilizing\n")
		default:
			fmt.Fprintf(&b, "declared:   not self-stabilizing\n")
		}
	case r.Declared == nil:
		fmt.Fprintf(&b, "declared:   (none)\n")
	case r.Declared.Sound():
		fmt.Fprintf(&b, "declared:   DL-sound\n")
	default:
		fmt.Fprintf(&b, "declared:   attackable at occupancy>=%d, messages>=%d\n",
			r.Declared.Occupancy, r.Declared.Messages)
	}
	fmt.Fprintf(&b, "check:      %s\n", r.Check)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  fail:     %s\n", f)
	}
	return b.String()
}
