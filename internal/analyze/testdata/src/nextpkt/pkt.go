// Fixture for the nextpkt analyzer: NextPkt bodies must not mutate receiver
// or package state on any path that can return ok=false. The shapes mirror
// the real endpoints in internal/transport and internal/protocol.
package transport

// Packet stands in for ioa.Packet; the analyzer keys on the method name and
// the (T, bool) result shape, not on the packet type.
type Packet struct {
	Kind string
	Seq  int
}

var pktTotal int

// goodR is the canonical receiver shape: the pop happens only on the
// productive arm.
type goodR struct{ acks []Packet }

func (r *goodR) NextPkt() (Packet, bool) {
	if len(r.acks) == 0 {
		return Packet{}, false
	}
	p := r.acks[0]
	r.acks = r.acks[1:]
	return p, true
}

// pollCountR mutates before deciding: the increment reaches the ok=false
// return.
type pollCountR struct {
	acks  []Packet
	polls int
}

func (r *pollCountR) NextPkt() (Packet, bool) {
	r.polls++ // want "NextPkt assigns to r.polls on a path that may return ok=false"
	if len(r.acks) == 0 {
		return Packet{}, false
	}
	return r.acks[0], true
}

// globalCountT bumps package state on the idle path.
type globalCountT struct{ busy bool }

func (t *globalCountT) NextPkt() (Packet, bool) {
	if !t.busy {
		pktTotal++ // want "NextPkt assigns to package variable pktTotal on a path that may return ok=false"
		return Packet{}, false
	}
	return Packet{Kind: "msg"}, true
}

// rrT is the sliding-window round-robin shape: the lane pop and cursor
// advance are followed by a provably-productive return inside the loop, so
// the post-loop ok=false return is clean. Must not be flagged.
type rrT struct {
	lanes [][]Packet
	rr    int
}

func (t *rrT) NextPkt() (Packet, bool) {
	n := len(t.lanes)
	if n == 0 {
		return Packet{}, false
	}
	for i := 0; i < n; i++ {
		idx := (t.rr + i) % n
		if len(t.lanes[idx]) == 0 {
			continue
		}
		p := t.lanes[idx][0]
		t.lanes[idx] = t.lanes[idx][1:]
		t.rr = (idx + 1) % n
		return p, true
	}
	return Packet{}, false
}

// breakT leaks a mutation out of the loop through break: the cursor write
// reaches the post-loop ok=false return.
type breakT struct {
	lanes [][]Packet
	rr    int
}

func (t *breakT) NextPkt() (Packet, bool) {
	for i := range t.lanes {
		t.rr = i // want "NextPkt assigns to t.rr on a path that may return ok=false"
		break
	}
	return Packet{}, false
}

// countingT mutates only on the productive arm (the real counting
// transmitter's sent-histogram bump). Must not be flagged.
type countingT struct {
	busy bool
	bit  int
	sent map[int]int
}

func (t *countingT) NextPkt() (Packet, bool) {
	if !t.busy {
		return Packet{}, false
	}
	t.sent[t.bit]++
	return Packet{Kind: "msg", Seq: t.bit}, true
}

// wrapT delegates wholesale; the inner NextPkt is checked where it is
// declared. Must not be flagged.
type wrapT struct{ inner *goodR }

func (t *wrapT) NextPkt() (Packet, bool) {
	return t.inner.NextPkt()
}

// resetR calls a mutating helper method on the idle path: receiver-rooted
// calls are assumed to mutate.
type resetR struct{ acks []Packet }

func (r *resetR) reset() { r.acks = nil }

func (r *resetR) NextPkt() (Packet, bool) {
	if len(r.acks) == 0 {
		r.reset() // want "NextPkt calls r.reset, which may mutate the receiver on a path that may return ok=false"
		return Packet{}, false
	}
	return r.acks[0], true
}

// deferR registers a mutation that runs at every return, ok=false included.
type deferR struct{ polls int }

func (r *deferR) NextPkt() (Packet, bool) {
	defer func() { r.polls++ }()
	_ = r.polls
	return Packet{}, false
}

// The defer above is a closure: the mutation is inside the FuncLit, which
// callMutations skips, but handing &r-rooted state to a deferred closure is
// beyond this analyzer's reach — so deferMutR uses the direct shape the
// analyzer does see.
type deferMutR struct {
	acks  []Packet
	polls int
}

func (r *deferMutR) bump() { r.polls++ }

func (r *deferMutR) NextPkt() (Packet, bool) {
	defer r.bump() // want "NextPkt calls r.bump, which may mutate the receiver on a path that may return ok=false"
	if len(r.acks) == 0 {
		return Packet{}, false
	}
	return r.acks[0], true
}

// idleR is the livelock receiver: a bare unproductive stub. Must not be
// flagged.
type idleR struct{}

func (r *idleR) NextPkt() (Packet, bool) {
	return Packet{}, false
}

// notNextPkt has the name but not the shape; out of scope.
type notNextPkt struct{ n int }

func (t *notNextPkt) NextPkt() Packet {
	t.n++
	return Packet{}
}
