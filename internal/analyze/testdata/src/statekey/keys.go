// Fixture: statekey findings. The analyzer guards StateKey/ControlKey
// method bodies in every package, including impurity reached transitively
// through package-local helpers.
package keys

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

type sprintfKey struct{ n int }

func (s sprintfKey) StateKey() string {
	return fmt.Sprintf("s{n=%d}", s.n) // want "StateKey calls fmt.Sprintf"
}

type mapKey struct{ counts map[string]int }

func (m mapKey) StateKey() string {
	var b strings.Builder
	for k, v := range m.counts { // want "StateKey ranges over a map"
		b.WriteString(k)
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

func keyf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

type helperKey struct{ n int }

func (h helperKey) StateKey() string {
	return keyf("h{n=%d}", h.n) // want "StateKey calls keyf, which calls fmt.Sprintf"
}

func render(n int) string { return keyf("r{n=%d}", n) }

type deepKey struct{ n int }

func (d deepKey) ControlKey() string {
	return render(d.n) // want "ControlKey calls render, which calls keyf, which calls fmt.Sprintf"
}

type randKey struct{}

func (randKey) StateKey() string {
	return strconv.FormatInt(rand.Int63(), 16) // want "state keys must not consume randomness" "rand.Int63 uses the process-global source"
}

type cleanKey struct {
	n    int
	tags []string
}

func (c cleanKey) StateKey() string {
	// Direct byte appends and slice iteration: not flagged.
	var b strings.Builder
	b.WriteString("c{n=")
	b.WriteString(strconv.Itoa(c.n))
	for _, tag := range c.tags {
		b.WriteByte(' ')
		b.WriteString(tag)
	}
	b.WriteByte('}')
	return b.String()
}

// describe is not a state-key method; fmt formatting here is fine.
func describe(c cleanKey) string {
	return fmt.Sprintf("cleanKey(%d)", c.n)
}
