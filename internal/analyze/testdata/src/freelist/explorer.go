// Fixture for the freelist analyzer: in internal/verify, release(cfg) hands
// the object to the freelist and the next clone may recycle it — no read of
// cfg may follow a release on the same path.
package verify

type config struct {
	delivered int
	frontier  int
}

type explorer struct {
	free  []*config
	nodes []*config
}

func (e *explorer) clone() *config {
	if n := len(e.free); n > 0 {
		c := e.free[n-1]
		e.free = e.free[:n-1]
		return c
	}
	return new(config)
}

func (e *explorer) release(c *config) {
	e.free = append(e.free, c)
}

// useAfterRelease is the space.go:visit shape this analyzer exists for: the
// progress comparison reads ns after the else-branch released it.
func (e *explorer) useAfterRelease(ns *config, from int) int {
	e.release(ns)
	return ns.delivered - e.nodes[from].delivered // want "reads ns after release"
}

// releaseLast is the fixed shape: all reads happen before the release.
func (e *explorer) releaseLast(ns *config, from int) int {
	progress := ns.delivered - e.nodes[from].delivered
	e.release(ns)
	return progress
}

// branchRelease releases on one arm only; the read below is still reachable
// through that arm.
func (e *explorer) branchRelease(c *config, drop bool) int {
	if drop {
		e.release(c)
	}
	return c.frontier // want "reads c after release"
}

// branchReleaseClean terminates the releasing arm before the read.
func (e *explorer) branchReleaseClean(c *config, drop bool) int {
	if drop {
		e.release(c)
		return 0
	}
	return c.frontier
}

// reassignRevives: a wholesale reassignment makes the variable a different
// object; reads after it are fine.
func (e *explorer) reassignRevives(c *config) int {
	e.release(c)
	c = e.clone()
	return c.delivered
}

// fieldWriteAfterRelease scribbles on a recycled object.
func (e *explorer) fieldWriteAfterRelease(c *config) {
	e.release(c)
	c.delivered = 0 // want "reads c after release"
}

// doubleRelease queues the same object twice: the freelist would hand it out
// to two callers.
func (e *explorer) doubleRelease(c *config) {
	e.release(c)
	e.release(c) // want "releases c twice"
}

// loopCarryRelease releases at the bottom of an iteration and reads at the
// top of the next: only the two-pass loop scan sees it. The second
// iteration's release is also a genuine double release.
func (e *explorer) loopCarryRelease(cs []*config) int {
	sum := 0
	c := e.clone()
	for i := 0; i < len(cs); i++ {
		sum += c.delivered // want "reads c after release"
		e.release(c)       // want "releases c twice"
	}
	return sum
}

// loopReassignClean re-clones each iteration before reading.
func (e *explorer) loopReassignClean(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		c := e.clone()
		sum += c.delivered
		e.release(c)
	}
	return sum
}
