// Fixture for the internlocal analyzer: intern.Local is unsynchronized and
// must never become visible to a second goroutine; intern.Table is the
// sanctioned shared variant.
package fuzz

import "repro/internal/intern"

var shared *intern.Local // want "package-level variable shared carries intern.Local"

var sharedTable *intern.Table // fine: Table is the synchronization boundary

// engine carries a Local transitively through a struct field.
type engine struct {
	tab   *intern.Local
	depth int
}

func (e *engine) run() {}

func worker(l *intern.Local) uint32 { return l.Intern("x") }

func tableWorker(t *intern.Table) uint32 { return t.Intern("x") }

func spawnAll() {
	loc := intern.NewLocal()
	tbl := intern.New()

	go func() {
		_ = loc.Intern("a") // want "goroutine closure captures loc, which carries intern.Local"
	}()

	go func() {
		_ = tbl.Intern("a") // fine: Table is safe to share
	}()

	go worker(loc) // want "goroutine argument loc carries intern.Local"

	go tableWorker(tbl) // fine

	e := &engine{tab: loc}
	go e.run() // want "goroutine method call on e, which carries intern.Local"

	ch := make(chan *intern.Local, 1)
	ch <- loc // want "channel send publishes a value carrying intern.Local"

	results := make(chan uint32, 1)
	results <- worker(loc) // fine: the id crosses, not the interner
}
