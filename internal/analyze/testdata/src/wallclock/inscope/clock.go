// Fixture: wallclock findings in a deterministic package (the import path
// used by the harness ends in internal/fuzz, which is in scope).
package fuzz

import "time"

type Config struct {
	Clock func() time.Time
}

func (c *Config) withDefaults() {
	if c.Clock == nil {
		c.Clock = time.Now //nfvet:allow wallclock (the injectable clock seam's default)
	}
}

func stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func nap() {
	time.Sleep(time.Millisecond) // want "time.Sleep schedules on the wall clock"
}

func ticker() {
	t := time.NewTicker(time.Second) // want "time.NewTicker schedules on the wall clock"
	t.Stop()
}

func pure() time.Time {
	// Constructors and arithmetic do not read the ambient clock: not flagged.
	return time.Unix(0, 0).Add(3 * time.Second)
}
