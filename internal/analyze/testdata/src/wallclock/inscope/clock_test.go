package fuzz

import (
	"testing"
	"time"
)

func TestTiming(t *testing.T) {
	// Tests may time themselves; the lint covers library code only.
	start := time.Now()
	if time.Since(start) < 0 {
		t.Fatal("impossible")
	}
}
