// Fixture: the same calls outside the deterministic package set (the
// harness loads this under an internal/stats import path) are not flagged.
package stats

import "time"

func Stamp() time.Time { return time.Now() }

func Nap() { time.Sleep(time.Millisecond) }
