// Fixture: globalrand findings. The analyzer is module-wide, so the import
// path does not matter; only test files are exempt.
package gen

import "math/rand"

const fixedSeed = 99

func Draw() int {
	return rand.Intn(10) // want "rand.Intn uses the process-global source"
}

func Shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle uses the process-global source"
}

func Source() rand.Source {
	return rand.NewSource(42) // want "rand.NewSource with a constant seed"
}

func NamedConstSource() rand.Source {
	return rand.NewSource(fixedSeed) // want "rand.NewSource with a constant seed"
}

func Seeded(seed int64) *rand.Rand {
	// The seed flowed from configuration: not flagged.
	return rand.New(rand.NewSource(seed))
}

func DrawFrom(r *rand.Rand) int {
	// An explicit *rand.Rand stream: not flagged.
	return r.Intn(10)
}
