package gen

import (
	"math/rand"
	"testing"
)

func TestPinnedSeed(t *testing.T) {
	// Tests legitimately pin literal seeds for reproducible cases.
	r := rand.New(rand.NewSource(7))
	if r.Intn(10) < 0 {
		t.Fatal("impossible")
	}
	_ = rand.Intn(3)
}
