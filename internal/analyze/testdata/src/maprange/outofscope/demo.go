// Fixture: outside the critical package set, plain map ranges are fine but
// ranging a map-returning Registry() is flagged everywhere.
package demo

func Registry() map[string]bool {
	return map[string]bool{"p": true}
}

type Catalog struct{}

// Registry returns an ordered list, not a map; ranging it is fine.
func (Catalog) Registry() []string { return []string{"p"} }

func Run() int {
	n := 0
	for name := range Registry() { // want "ranging directly over Registry()"
		_ = name
		n++
	}
	var c Catalog
	for _, name := range c.Registry() { // slice-returning Registry: not flagged
		_ = name
	}
	m := map[string]bool{"q": false}
	for k := range m { // not a critical package: not flagged
		_ = k
	}
	return n
}
