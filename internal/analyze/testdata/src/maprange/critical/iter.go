// Fixture: map ranges in a map-order-critical package (the harness loads
// this under an internal/trace import path).
package trace

import "sort"

func Registry() map[string]int {
	return map[string]int{"a": 1, "b": 2}
}

func Keys(m map[string]int) []string {
	var out []string
	//nfvet:allow maprange (keys are collected then sorted before use)
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is randomized"
		total += v
	}
	return total
}

func SumSlice(xs []int) int {
	total := 0
	for _, v := range xs { // slices iterate in order: not flagged
		total += v
	}
	return total
}
