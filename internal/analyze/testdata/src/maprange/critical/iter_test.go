package trace

import "testing"

func TestIter(t *testing.T) {
	for name := range Registry() { // want "ranging directly over Registry()"
		_ = name
	}
	m := map[string]int{"x": 1}
	total := 0
	for _, v := range m { // test files are exempt from the plain map-range rule
		total += v
	}
	if total != 1 {
		t.Fatal("bad sum")
	}
}
