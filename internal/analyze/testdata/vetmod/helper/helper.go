// Package helper is the upstream half of the cross-package facts fixture:
// an exported helper whose impurity is only visible through the facts
// channel. It is a real (checked-in, nested-module) package so both driver
// modes — the in-process loader and `go vet -vettool` — can compile it and
// exchange facts about it.
package helper

import "fmt"

// Render formats a value slice with fmt: reflection-driven and
// allocation-heavy, exactly what state-key paths must not call. The
// statekey analyzer exports an impurity fact for it.
func Render(vals []int) string {
	return fmt.Sprint(vals)
}

// Width is a pure helper: its fact says so, which keeps the channel's
// "facts present" signal distinguishable from "no facts at all".
func Width(vals []int) int {
	return len(vals)
}
