module vetmod

go 1.22
