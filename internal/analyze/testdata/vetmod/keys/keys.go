// Package keys is the downstream half of the cross-package facts fixture:
// its StateKey calls helper.Render, which is impure — but only the helper
// package's unit can see why. Without facts this package analyzes clean;
// with the channel, statekey reports the call below.
package keys

import "vetmod/helper"

// Node is a stand-in endpoint with a canonical state encoding.
type Node struct {
	vals []int
}

// StateKey delegates its encoding to the impure imported helper. The
// diagnostic here fires only when the helper's purity fact is in scope.
func (n Node) StateKey() string {
	return helper.Render(n.vals)
}

// ControlKey stays on the pure helper; no diagnostic.
func (n Node) ControlKey() string {
	if helper.Width(n.vals) == 0 {
		return "empty"
	}
	return "loaded"
}
