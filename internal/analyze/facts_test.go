package analyze

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// vetmodDir is the checked-in two-package fixture module (own go.mod, so the
// repo's ./... patterns skip it): helper exports an impure Render, and
// keys.StateKey calls it across the package boundary.
const vetmodDir = "testdata/vetmod"

func TestFactsCodecRoundTrip(t *testing.T) {
	fs := NewFactSet()
	fs.Purity["Render"] = PurityFact{Impure: true, Reason: "calls fmt.Sprint"}
	fs.Purity["Width"] = PurityFact{}
	fs.Purity["Node.StateKey"] = PurityFact{Impure: true, Reason: "calls helper.Render, which calls fmt.Sprint"}

	data, err := EncodeFacts(fs)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeFacts(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("facts encoding is not deterministic: two encodes of the same set differ")
	}

	back, err := DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Purity) != len(fs.Purity) {
		t.Fatalf("round trip lost entries: %d != %d", len(back.Purity), len(fs.Purity))
	}
	for k, want := range fs.Purity {
		if got := back.Purity[k]; got != want {
			t.Errorf("round trip %s: got %+v, want %+v", k, got, want)
		}
	}

	// Zero-byte vetx files (the pre-facts tool's output, possibly replayed
	// from cmd/go's cache) decode to the empty set.
	empty, err := DecodeFacts(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Purity) != 0 {
		t.Errorf("empty payload decoded to %d entries", len(empty.Purity))
	}
}

// writeUnitCfg hand-authors the JSON config cmd/go would write for one
// compilation unit of the vetmod fixture.
func writeUnitCfg(t *testing.T, dir string, cfg *vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, strings.ReplaceAll(cfg.ImportPath, "/", "_")+".cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVetxCfgRoundTrip drives runUnit exactly as cmd/go does — one cfg per
// unit, dependency vetx fed forward — and asserts the full channel: a
// VetxOnly helper unit exports a non-empty decodable fact set, the keys unit
// fails on the cross-package impurity only when PackageVetx is supplied, and
// the keys unit's own vetx carries the derived Node.StateKey impurity.
func TestVetxCfgRoundTrip(t *testing.T) {
	exports, err := ExportMap(vetmodDir, "./...")
	if err != nil {
		t.Fatalf("resolving vetmod export data: %v", err)
	}
	importMap := make(map[string]string, len(exports))
	//nfvet:allow maprange (identity map; no order-sensitive output)
	for path := range exports {
		importMap[path] = path
	}
	absFile := func(rel string) string {
		p, err := filepath.Abs(filepath.Join(vetmodDir, filepath.FromSlash(rel)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	tmp := t.TempDir()
	helperVetx := filepath.Join(tmp, "helper.vetx")
	keysVetx := filepath.Join(tmp, "keys.vetx")

	// Unit 1: the helper, as cmd/go drives dependencies — VetxOnly, facts
	// wanted, diagnostics suppressed.
	helperCfg := &vetConfig{
		ID:          "vetmod/helper",
		Compiler:    "gc",
		ImportPath:  "vetmod/helper",
		GoFiles:     []string{absFile("helper/helper.go")},
		ImportMap:   importMap,
		PackageFile: exports,
		VetxOnly:    true,
		VetxOutput:  helperVetx,
	}
	var errw bytes.Buffer
	if code := runUnit("nfvet", writeUnitCfg(t, tmp, helperCfg), Analyzers(), &errw); code != 0 {
		t.Fatalf("helper unit exited %d: %s", code, errw.String())
	}
	if errw.Len() != 0 {
		t.Errorf("VetxOnly unit printed diagnostics: %s", errw.String())
	}
	helperFacts, err := ReadFactsFile(helperVetx)
	if err != nil {
		t.Fatalf("reading helper vetx: %v", err)
	}
	if f, ok := helperFacts.Purity["Render"]; !ok || !f.Impure || !strings.Contains(f.Reason, "fmt.Sprint") {
		t.Errorf("helper vetx Render fact = %+v, want impure via fmt.Sprint", f)
	}
	if f, ok := helperFacts.Purity["Width"]; !ok || f.Impure {
		t.Errorf("helper vetx Width fact = %+v, want present and pure", f)
	}

	// Unit 2: keys with the helper's facts in scope — the cross-package
	// impurity must be reported and the exit code must be nonzero.
	keysCfg := &vetConfig{
		ID:          "vetmod/keys",
		Compiler:    "gc",
		ImportPath:  "vetmod/keys",
		GoFiles:     []string{absFile("keys/keys.go")},
		ImportMap:   importMap,
		PackageFile: exports,
		PackageVetx: map[string]string{"vetmod/helper": helperVetx},
		VetxOutput:  keysVetx,
	}
	errw.Reset()
	if code := runUnit("nfvet", writeUnitCfg(t, tmp, keysCfg), Analyzers(), &errw); code != 1 {
		t.Fatalf("keys unit with facts exited %d, want 1; output: %s", code, errw.String())
	}
	if out := errw.String(); !strings.Contains(out, "StateKey calls helper.Render") || !strings.Contains(out, "fmt.Sprint") {
		t.Errorf("keys diagnostics missing the cross-package chain: %s", out)
	}
	keysFacts, err := ReadFactsFile(keysVetx)
	if err != nil {
		t.Fatalf("reading keys vetx: %v", err)
	}
	if f, ok := keysFacts.Purity["Node.StateKey"]; !ok || !f.Impure {
		t.Errorf("keys vetx Node.StateKey fact = %+v, want derived impurity", f)
	}

	// Control: the same unit without PackageVetx analyzes clean — the
	// diagnostic exists only through the channel.
	keysCfg.PackageVetx = nil
	keysCfg.ID = "vetmod/keys-nofacts"
	keysCfg.VetxOutput = filepath.Join(tmp, "keys-nofacts.vetx")
	errw.Reset()
	if code := runUnit("nfvet", writeUnitCfg(t, tmp, keysCfg), Analyzers(), &errw); code != 0 {
		t.Fatalf("keys unit without facts exited %d, want 0; output: %s", code, errw.String())
	}
}

// TestInProcessFactsFixture asserts the same contrast through the standalone
// loader: AnalyzeModule reports the cross-package impurity with facts on and
// nothing with facts off.
func TestInProcessFactsFixture(t *testing.T) {
	pkgs, err := LoadPackages(vetmodDir, "./...")
	if err != nil {
		t.Fatalf("loading vetmod: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}

	withFacts := AnalyzeModule(Analyzers(), pkgs, true)
	if len(withFacts.Diags) != 1 {
		t.Fatalf("with facts: got %d diagnostics, want 1: %v", len(withFacts.Diags), withFacts.Diags)
	}
	d := withFacts.Diags[0]
	if d.Analyzer != "statekey" || !strings.Contains(d.Message, "StateKey calls helper.Render") {
		t.Errorf("unexpected diagnostic: %s", d)
	}

	without := AnalyzeModule(Analyzers(), pkgs, false)
	if len(without.Diags) != 0 {
		t.Errorf("without facts: got %d diagnostics, want 0: %v", len(without.Diags), without.Diags)
	}
}
