package analyze

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// NextPktAnalyzer statically proves the idle-purity half of the NextPkt
// contract: a NextPkt call that returns ok=false must leave the endpoint
// and package state untouched. PR 8's runner-version adjacency cache skips
// re-attempting operations whose enabling state has not changed, which is
// sound only if unproductive NextPkt calls are side-effect free; until now
// the sole guard was the runtime TestContractIdleNextPktPure over the
// registry. This analyzer demotes that test to belt-and-suspenders by
// checking every NextPkt body (registered or not) at compile time.
//
// The proof is a conservative path scan, not a full CFG: walking the body
// in order, it tracks the set of mutations (receiver-rooted or package-var
// assignments, calls that may mutate through the receiver) that may have
// executed when control reaches each `return`, and reports any mutation
// that can flow into a return whose ok result is not provably true.
// Mutations on paths that definitely return ok=true (the productive arm)
// are fine — receivers are expected to pop their ack queues. A body that
// delegates wholesale (`return inner.NextPkt()`) is skipped: the callee is
// checked where it is declared.
func NextPktAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nextpkt",
		Doc: "NextPkt bodies must be idle-pure: no receiver or package-state " +
			"mutation may reach a `return _, false` — the runner-version " +
			"adjacency cache and pooled-runner reuse assume unproductive " +
			"NextPkt calls leave the state key unchanged",
		Run: runNextPkt,
	}
}

func runNextPkt(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "NextPkt" || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Results().Len() != 2 {
				continue
			}
			if b, ok := sig.Results().At(1).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
				continue
			}
			s := &npScan{pass: pass, reported: make(map[token.Pos]bool)}
			if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				s.recv = pass.Info.Defs[fd.Recv.List[0].Names[0]]
			}
			s.scanList(fd.Body.List, nil, npCtx{})
		}
	}
}

// npMutation is one potential state mutation with its site and description.
type npMutation struct {
	pos  token.Pos
	desc string
}

// npTarget collects the pending-mutation sets carried to a branch target
// (loop back-edge, loop exit, or statement after a switch).
type npTarget struct {
	muts []npMutation
	hit  bool
}

// npCtx holds the innermost branch targets during the scan.
type npCtx struct {
	cont *npTarget // continue: loop back-edge
	brk  *npTarget // break: after the innermost for/range/switch/select
}

type npScan struct {
	pass     *Pass
	recv     types.Object
	reported map[token.Pos]bool
}

// scanList walks stmts in order. pending is the set of mutations that may
// have executed when control reaches the current statement. It returns the
// pending set at normal fall-through and whether the list always leaves via
// return (never falls through).
func (s *npScan) scanList(stmts []ast.Stmt, pending []npMutation, ctx npCtx) ([]npMutation, bool) {
	for _, st := range stmts {
		var term bool
		pending, term = s.scanStmt(st, pending, ctx)
		if term {
			return pending, true
		}
	}
	return pending, false
}

func unionMuts(a []npMutation, bs ...[]npMutation) []npMutation {
	seen := make(map[token.Pos]bool, len(a))
	out := append([]npMutation(nil), a...)
	for _, m := range a {
		seen[m.pos] = true
	}
	for _, b := range bs {
		for _, m := range b {
			if !seen[m.pos] {
				seen[m.pos] = true
				out = append(out, m)
			}
		}
	}
	return out
}

func (t *npTarget) add(pending []npMutation) {
	if t == nil {
		return
	}
	t.hit = true
	t.muts = unionMuts(t.muts, pending)
}

func (s *npScan) scanStmt(st ast.Stmt, pending []npMutation, ctx npCtx) ([]npMutation, bool) {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		s.checkReturn(st, pending)
		// Control leaves the function: nothing is pending for any
		// fall-through successor (a productive return inside a loop must not
		// poison the loop's exit path).
		return nil, true

	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			pending = unionMuts(pending, s.callMutations(rhs))
		}
		for _, lhs := range st.Lhs {
			if m, ok := s.lhsMutation(lhs); ok {
				pending = unionMuts(pending, []npMutation{m})
			}
		}
		return pending, false

	case *ast.IncDecStmt:
		if m, ok := s.lhsMutation(st.X); ok {
			pending = unionMuts(pending, []npMutation{m})
		}
		return pending, false

	case *ast.ExprStmt:
		return unionMuts(pending, s.callMutations(st.X)), false

	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						pending = unionMuts(pending, s.callMutations(v))
					}
				}
			}
		}
		return pending, false

	case *ast.SendStmt:
		return unionMuts(pending, s.callMutations(st.Chan), s.callMutations(st.Value)), false

	case *ast.GoStmt:
		return unionMuts(pending, s.callMutations(st.Call)), false

	case *ast.DeferStmt:
		// Deferred mutations run at every subsequent return, false included.
		return unionMuts(pending, s.callMutations(st.Call)), false

	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, pending, ctx)

	case *ast.BlockStmt:
		return s.scanList(st.List, pending, ctx)

	case *ast.IfStmt:
		if st.Init != nil {
			pending, _ = s.scanStmt(st.Init, pending, ctx)
		}
		pending = unionMuts(pending, s.callMutations(st.Cond))
		bodyPending, bodyTerm := s.scanList(st.Body.List, pending, ctx)
		out := pending // the cond-false path when there is no else
		elseTerm := false
		if st.Else != nil {
			ep, et := s.scanStmt(st.Else, pending, ctx)
			elseTerm = et
			if !et {
				out = unionMuts(out, ep)
			}
		}
		if !bodyTerm {
			out = unionMuts(out, bodyPending)
		}
		return out, bodyTerm && elseTerm && st.Else != nil

	case *ast.ForStmt:
		if st.Init != nil {
			pending, _ = s.scanStmt(st.Init, pending, ctx)
		}
		iterMuts := s.callMutations(st.Cond)
		if st.Post != nil {
			// Post-statement mutations reach the next iteration and the exit.
			if m, ok := s.postMutation(st.Post); ok {
				iterMuts = unionMuts(iterMuts, []npMutation{m})
			}
		}
		return s.scanLoop(st.Body.List, unionMuts(pending, iterMuts), ctx), false

	case *ast.RangeStmt:
		pending = unionMuts(pending, s.callMutations(st.X))
		if st.Key != nil {
			if m, ok := s.lhsMutation(st.Key); ok {
				pending = unionMuts(pending, []npMutation{m})
			}
		}
		if st.Value != nil {
			if m, ok := s.lhsMutation(st.Value); ok {
				pending = unionMuts(pending, []npMutation{m})
			}
		}
		return s.scanLoop(st.Body.List, pending, ctx), false

	case *ast.BranchStmt:
		switch st.Tok {
		case token.CONTINUE:
			ctx.cont.add(pending)
			return nil, true
		case token.BREAK:
			ctx.brk.add(pending)
			return nil, true
		case token.FALLTHROUGH:
			return pending, false
		default: // goto: keep pending flowing, assume no termination
			return pending, false
		}

	case *ast.SwitchStmt:
		if st.Init != nil {
			pending, _ = s.scanStmt(st.Init, pending, ctx)
		}
		pending = unionMuts(pending, s.callMutations(st.Tag))
		return s.scanClauses(st.Body.List, pending, ctx)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			pending, _ = s.scanStmt(st.Init, pending, ctx)
		}
		return s.scanClauses(st.Body.List, pending, ctx)

	case *ast.SelectStmt:
		return s.scanClauses(st.Body.List, pending, ctx)

	default:
		return pending, false
	}
}

// scanLoop runs a loop body to a two-iteration fixpoint: the first pass
// discovers the mutations carried around the back-edge, the second rescans
// with them pending so a mutation late in the body is seen by a return
// early in the body. Reports are deduplicated by mutation site, so the
// double scan cannot double-report. The returned set is what may be pending
// after the loop exits (condition failure or break).
func (s *npScan) scanLoop(body []ast.Stmt, pending []npMutation, outer npCtx) []npMutation {
	var cont1, brk1 npTarget
	p1, _ := s.scanList(body, pending, npCtx{cont: &cont1, brk: &brk1})
	carried := unionMuts(pending, p1, cont1.muts)
	var cont2, brk2 npTarget
	p2, _ := s.scanList(body, carried, npCtx{cont: &cont2, brk: &brk2})
	return unionMuts(pending, p2, cont2.muts, brk2.muts)
}

// scanClauses handles switch/type-switch/select bodies: each clause starts
// from the same incoming set; the statement after the switch sees the union
// of every non-terminating clause, every break, and — without a default —
// the incoming set itself.
func (s *npScan) scanClauses(clauses []ast.Stmt, pending []npMutation, ctx npCtx) ([]npMutation, bool) {
	var brk npTarget
	inner := npCtx{cont: ctx.cont, brk: &brk}
	out := []npMutation(nil)
	allTerm := true
	hasDefault := false
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				pending = unionMuts(pending, s.callMutations(e))
			}
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				pending, _ = s.scanStmt(cl.Comm, pending, inner)
			}
			body = cl.Body
		default:
			continue
		}
		cp, ct := s.scanList(body, pending, inner)
		if !ct {
			out = unionMuts(out, cp)
		}
		allTerm = allTerm && ct
	}
	out = unionMuts(out, brk.muts)
	if !hasDefault {
		out = unionMuts(out, pending)
	}
	terminated := allTerm && hasDefault && !brk.hit
	return unionMuts(pending[:0:0], out), terminated
}

// checkReturn reports every pending mutation that can flow into a return
// whose ok result is not provably the constant true.
func (s *npScan) checkReturn(st *ast.ReturnStmt, pending []npMutation) {
	// Wholesale delegation: `return inner.NextPkt()` — the callee's own
	// NextPkt is checked where it is declared.
	if len(st.Results) == 1 {
		if _, ok := st.Results[0].(*ast.CallExpr); ok && len(pending) == 0 {
			return
		}
	}
	if len(st.Results) == 2 {
		for _, r := range st.Results {
			pending = unionMuts(pending, s.callMutations(r))
		}
		if tv, ok := s.pass.Info.Types[st.Results[1]]; ok && tv.Value != nil &&
			tv.Value.Kind() == constant.Bool && constant.BoolVal(tv.Value) {
			return // provably productive: mutations on this path are the contract working
		}
	}
	for _, m := range pending {
		if s.reported[m.pos] {
			continue
		}
		s.reported[m.pos] = true
		s.pass.Report(m.pos, "NextPkt %s on a path that may return ok=false; unproductive NextPkt must not mutate (pooled-runner reuse and the adjacency cache replay the state key)", m.desc)
	}
}

// postMutation classifies a for-loop post statement.
func (s *npScan) postMutation(st ast.Stmt) (npMutation, bool) {
	switch st := st.(type) {
	case *ast.IncDecStmt:
		return s.lhsMutation(st.X)
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			if m, ok := s.lhsMutation(lhs); ok {
				return m, true
			}
		}
	}
	return npMutation{}, false
}

// lhsMutation reports whether assigning through expr mutates the receiver
// or a package-level variable.
func (s *npScan) lhsMutation(expr ast.Expr) (npMutation, bool) {
	root := rootIdent(expr)
	if root == nil {
		return npMutation{}, false
	}
	obj := s.pass.Info.Uses[root]
	if obj == nil {
		obj = s.pass.Info.Defs[root]
	}
	if obj == nil {
		return npMutation{}, false
	}
	if s.recv != nil && obj == s.recv {
		return npMutation{pos: expr.Pos(), desc: "assigns to " + types.ExprString(expr)}, true
	}
	if isPackageVar(obj) {
		return npMutation{pos: expr.Pos(), desc: "assigns to package variable " + types.ExprString(expr)}, true
	}
	return npMutation{}, false
}

// callMutations collects the calls under expr that may mutate the receiver
// or package state: methods invoked on a receiver-rooted or package-var
// path, and calls handed a receiver-rooted pointer, slice, map, chan or
// interface argument. Function-literal bodies are skipped — defining a
// closure mutates nothing until it runs, and a closure that runs inside the
// body surfaces as the call site itself.
func (s *npScan) callMutations(expr ast.Expr) []npMutation {
	if expr == nil {
		return nil
	}
	var out []npMutation
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m, ok := s.callMutation(call); ok {
			out = append(out, m)
		}
		return true
	})
	return out
}

func (s *npScan) callMutation(call *ast.CallExpr) (npMutation, bool) {
	fun := ast.Unparen(call.Fun)
	// Builtins (len, cap, append, ...) and type conversions do not mutate.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := s.pass.Info.Uses[id].(*types.Builtin); ok {
			return npMutation{}, false
		}
	}
	if tv, ok := s.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return npMutation{}, false
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s.rootedAtState(sel.X) {
			return npMutation{pos: call.Pos(), desc: "calls " + types.ExprString(fun) + ", which may mutate the receiver"}, true
		}
	}
	for _, arg := range call.Args {
		a := ast.Unparen(arg)
		if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND && s.rootedAtState(u.X) {
			return npMutation{pos: call.Pos(), desc: "passes &" + types.ExprString(u.X) + " to " + types.ExprString(fun) + ", which may mutate through it"}, true
		}
		if !s.rootedAtState(a) {
			continue
		}
		if tv, ok := s.pass.Info.Types[arg]; ok && mutableThrough(tv.Type) {
			return npMutation{pos: call.Pos(), desc: "passes " + types.ExprString(a) + " to " + types.ExprString(fun) + ", which may mutate through it"}, true
		}
	}
	return npMutation{}, false
}

// rootedAtState reports whether expr reads through the receiver or a
// package-level variable.
func (s *npScan) rootedAtState(expr ast.Expr) bool {
	root := rootIdent(expr)
	if root == nil {
		return false
	}
	obj := s.pass.Info.Uses[root]
	if obj == nil {
		obj = s.pass.Info.Defs[root]
	}
	if obj == nil {
		return false
	}
	return (s.recv != nil && obj == s.recv) || isPackageVar(obj)
}

// mutableThrough reports whether a value of type t lets a callee mutate the
// caller's state: pointers, slices, maps, channels and interfaces can;
// plain values cannot.
func mutableThrough(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// isPackageVar reports whether obj is a package-level variable (of any
// package — mutating another package's state is no better).
func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// rootIdent unwraps selectors, indexes, derefs and parens down to the
// leftmost identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
