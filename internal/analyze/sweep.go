package analyze

import (
	"fmt"
	"strings"

	"repro/internal/protocol"
)

// This file extends the static boundness auditor (audit.go) with the
// occupancy sweep: the same joint-state enumeration run at a series of
// channel occupancy caps, producing k_t/k_r as a function of the cap. The
// curve is the empirical face of Theorem 2.1 — the pumping bound k_t·k_r a
// bounded protocol exposes to the adversary can only grow as the physical
// layer is allowed to buffer more stale copies, and for genuinely finite
// protocols it plateaus once the cap covers the whole window.

// SweepConfig bounds one occupancy sweep.
type SweepConfig struct {
	// MaxOccupancy is the largest cap audited; the sweep runs caps
	// 1..MaxOccupancy in order. Default 4.
	MaxOccupancy int
	// MaxStates is the per-point state budget (AuditConfig.MaxStates).
	// Default 65536.
	MaxStates int
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.MaxOccupancy <= 0 {
		c.MaxOccupancy = 4
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 16
	}
	return c
}

// SweepPoint is the audit observation at one occupancy cap. When Exhausted
// is false the counts are lower bounds (the budget cut the enumeration off)
// and PumpingBound is zero.
type SweepPoint struct {
	Occupancy    int
	States       int
	Exhausted    bool
	KT, KR       int
	PumpingBound int
	Headers      int
}

// SweepReport is the k_t/k_r-vs-occupancy curve for one protocol.
type SweepReport struct {
	Protocol  string
	MaxStates int
	Points    []SweepPoint
	// Truncated is set when the sweep stopped before MaxOccupancy because a
	// point hit the state budget: a larger cap only adds reachable
	// configurations, so every later point would hit it too.
	Truncated bool
}

// Sweep audits p at occupancy caps 1..cfg.MaxOccupancy and collects the
// curve. The sweep stops at the first budget-hit point (see
// SweepReport.Truncated).
func Sweep(p protocol.Protocol, cfg SweepConfig) *SweepReport {
	cfg = cfg.withDefaults()
	rep := &SweepReport{Protocol: p.Name(), MaxStates: cfg.MaxStates}
	for occ := 1; occ <= cfg.MaxOccupancy; occ++ {
		a := Audit(p, AuditConfig{Occupancy: occ, MaxStates: cfg.MaxStates})
		rep.Points = append(rep.Points, SweepPoint{
			Occupancy:    occ,
			States:       a.States,
			Exhausted:    a.Exhausted,
			KT:           a.KT,
			KR:           a.KR,
			PumpingBound: a.PumpingBound,
			Headers:      len(a.Headers),
		})
		if !a.Exhausted {
			rep.Truncated = occ < cfg.MaxOccupancy
			break
		}
	}
	return rep
}

// CheckMonotone verifies the curve against Theorem 2.1's expectation: over
// the exhausted points, k_t, k_r, the joint-state count and the pumping
// bound k_t·k_r never decrease as the occupancy cap grows, because a larger
// cap strictly extends the adversary's schedule space. A decrease means the
// enumeration (or a protocol's ControlKey quotient) is unsound.
func (r *SweepReport) CheckMonotone() error {
	var prev *SweepPoint
	for i := range r.Points {
		pt := &r.Points[i]
		if !pt.Exhausted {
			continue
		}
		if prev != nil {
			if pt.KT < prev.KT || pt.KR < prev.KR {
				return fmt.Errorf("sweep %s: k_t/k_r shrank from (%d,%d) at occupancy %d to (%d,%d) at %d",
					r.Protocol, prev.KT, prev.KR, prev.Occupancy, pt.KT, pt.KR, pt.Occupancy)
			}
			if pt.PumpingBound < prev.PumpingBound {
				return fmt.Errorf("sweep %s: pumping bound shrank from %d at occupancy %d to %d at %d",
					r.Protocol, prev.PumpingBound, prev.Occupancy, pt.PumpingBound, pt.Occupancy)
			}
			if pt.States < prev.States {
				return fmt.Errorf("sweep %s: joint-state count shrank from %d at occupancy %d to %d at %d",
					r.Protocol, prev.States, prev.Occupancy, pt.States, pt.Occupancy)
			}
		}
		prev = pt
	}
	return nil
}

// SweepTable renders a set of sweep reports as one machine-readable
// tab-separated table with a header row. The "exact" column distinguishes
// exhausted points (counts are the true reachable totals) from budget-hit
// points (counts are lower bounds and k_t*k_r is not defined, rendered 0).
func SweepTable(reports []*SweepReport) string {
	var b strings.Builder
	b.WriteString("protocol\toccupancy\tstates\texact\tk_t\tk_r\tk_t*k_r\theaders\n")
	for _, r := range reports {
		for _, pt := range r.Points {
			exact := "yes"
			if !pt.Exhausted {
				exact = "no"
			}
			fmt.Fprintf(&b, "%s\t%d\t%d\t%s\t%d\t%d\t%d\t%d\n",
				r.Protocol, pt.Occupancy, pt.States, exact, pt.KT, pt.KR, pt.PumpingBound, pt.Headers)
		}
	}
	return b.String()
}

// SweepAll sweeps every protocol in ps, in the given order.
func SweepAll(ps []protocol.Protocol, cfg SweepConfig) []*SweepReport {
	out := make([]*SweepReport, 0, len(ps))
	for _, p := range ps {
		out = append(out, Sweep(p, cfg))
	}
	return out
}
