package analyze

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
	"sort"
)

// This file is the cross-package facts channel: per-package fact sets keyed
// by exported object, carried between compilation units either in memory
// (the standalone `nfvet check` driver analyzes packages in dependency
// order) or as gob-encoded vetx files (the `go vet -vettool` protocol, where
// cmd/go hands each unit the vetx outputs of its dependencies via
// PackageVetx and caches the unit's own VetxOutput). Facts are what lift the
// statekey purity fixpoint from package scope to module scope: a
// `StateKey → intern/mset helper → fmt.Sprintf` chain is invisible to a
// per-unit analysis, but the helper's unit exports an impurity fact and the
// StateKey's unit reads it back through the channel.

// PurityFact is the statekey analyzer's verdict on one exported function:
// fit or unfit for a state-key path. Pure facts are exported too (not just
// impurities), so an empty vetx file is distinguishable from "every helper
// here is pure" and the CI self-check can detect a silently-regressed
// channel.
type PurityFact struct {
	Impure bool
	// Reason chains the impurity back to its root, e.g.
	// "calls fmt.Sprintf (reflection-driven formatting on the hot path)".
	Reason string
}

// FactSet is one package's exported facts, keyed by object key (funcKey).
type FactSet struct {
	Purity map[string]PurityFact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{Purity: make(map[string]PurityFact)}
}

// funcKey names a function object within its package: "Func" for top-level
// functions, "Type.Method" for methods (pointer receivers are keyed by the
// element type, so (*T).M and (T).M share the key "T.M").
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// exportableFunc reports whether a function's facts are reachable from other
// packages: exported top-level functions, and exported methods on exported
// types. (Interface-dispatched calls resolve to the interface's method
// object, which carries no fact — a documented approximation.)
func exportableFunc(fn *types.Func) bool {
	if !fn.Exported() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Exported()
}

// FactStore is one unit's view of the channel: the fact sets of its
// dependencies (read side) and the set it will export (write side).
type FactStore struct {
	imported map[string]*FactSet // by import path
	export   *FactSet
}

// NewFactStore returns a store with no imported facts.
func NewFactStore() *FactStore {
	return &FactStore{imported: make(map[string]*FactSet), export: NewFactSet()}
}

// NewFactStoreFrom returns a store reading from the given accumulated
// import-path → fact-set map (shared, not copied — the in-process driver
// grows one map across units).
func NewFactStoreFrom(imported map[string]*FactSet) *FactStore {
	return &FactStore{imported: imported, export: NewFactSet()}
}

// AddPackage records a dependency's fact set under its import path.
func (s *FactStore) AddPackage(path string, fs *FactSet) {
	if fs != nil {
		s.imported[path] = fs
	}
}

// ImportedPurity looks up the purity fact exported for the given function by
// its defining package's unit.
func (s *FactStore) ImportedPurity(fn *types.Func) (PurityFact, bool) {
	if s == nil || fn.Pkg() == nil {
		return PurityFact{}, false
	}
	fs := s.imported[fn.Pkg().Path()]
	if fs == nil {
		return PurityFact{}, false
	}
	f, ok := fs.Purity[funcKey(fn)]
	return f, ok
}

// ExportPurity records a purity fact for an object of the unit under
// analysis, to be written to its vetx output.
func (s *FactStore) ExportPurity(key string, f PurityFact) {
	if s == nil {
		return
	}
	s.export.Purity[key] = f
}

// Exported returns the unit's outgoing fact set.
func (s *FactStore) Exported() *FactSet {
	if s == nil {
		return NewFactSet()
	}
	return s.export
}

// The wire format is a gob of sorted entry slices rather than of the maps
// directly: gob serializes maps in iteration order, and vetx bytes must be
// deterministic (cmd/go content-addresses its vet action cache; flapping
// bytes would churn it, and this repo's discipline is that every artifact
// is byte-reproducible).

// factsWireVersion stamps the vetx payload; a reader refuses versions it
// does not know rather than misdecoding.
const factsWireVersion = 1

type purityEntry struct {
	Key    string
	Impure bool
	Reason string
}

type factsPayload struct {
	Version int
	Purity  []purityEntry
}

// EncodeFacts renders a fact set to its deterministic gob wire form.
func EncodeFacts(fs *FactSet) ([]byte, error) {
	payload := factsPayload{Version: factsWireVersion}
	//nfvet:allow maprange (entries are collected then sorted before encoding)
	for key, f := range fs.Purity {
		payload.Purity = append(payload.Purity, purityEntry{Key: key, Impure: f.Impure, Reason: f.Reason})
	}
	sort.Slice(payload.Purity, func(i, j int) bool { return payload.Purity[i].Key < payload.Purity[j].Key })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts parses a vetx payload. Empty input decodes to an empty set:
// pre-facts builds of the tool wrote zero-byte vetx files, and cmd/go may
// replay them from its cache.
func DecodeFacts(data []byte) (*FactSet, error) {
	fs := NewFactSet()
	if len(data) == 0 {
		return fs, nil
	}
	var payload factsPayload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decoding facts: %v", err)
	}
	if payload.Version != factsWireVersion {
		return nil, fmt.Errorf("decoding facts: unknown wire version %d", payload.Version)
	}
	for _, e := range payload.Purity {
		fs.Purity[e.Key] = PurityFact{Impure: e.Impure, Reason: e.Reason}
	}
	return fs, nil
}

// ReadFactsFile loads one dependency's vetx file.
func ReadFactsFile(path string) (*FactSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fs, err := DecodeFacts(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return fs, nil
}

// WriteFactsFile writes a unit's fact set to its vetx output.
func WriteFactsFile(path string, fs *FactSet) error {
	data, err := EncodeFacts(fs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
