package analyze

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// This file implements the tool side of the `go vet -vettool=...` protocol,
// compatible with the driver in cmd/go (which normally talks to
// golang.org/x/tools' unitchecker — unavailable in this build environment,
// so the contract is reimplemented here on the standard library):
//
//   - `nfvet -V=full` prints a version banner whose last field is
//     "buildID=<content hash>"; cmd/go keys its vet result cache on it.
//   - `nfvet -flags` prints a JSON description of the tool's flags so
//     cmd/go can validate pass-through flags.
//   - `nfvet <unit>.cfg` analyzes one compilation unit: the JSON config
//     carries the file list plus the export-data location of every
//     dependency, exactly as the compiler sees them.
//
// Diagnostics go to stderr as file:line:col: message, and the process exits
// nonzero iff there were findings — cmd/go surfaces them per package.
//
// Facts ride the same protocol: each unit decodes the vetx files of its
// dependencies (cfg.PackageVetx), analyzes with them in scope, and writes
// its own exported facts to cfg.VetxOutput, which cmd/go caches and feeds
// to dependents. Units driven with VetxOnly (dependencies of the packages
// named on the vet command line) export facts and suppress diagnostics.

// vetConfig mirrors the JSON configuration cmd/go writes for each unit.
// Field names must match; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VettoolMain implements the vet-tool lifecycle for the analyzer suite and
// returns the process exit code. args is os.Args[1:].
func VettoolMain(progname string, analyzers []*Analyzer, args []string) int {
	// Strip analyzer-selection flags (-wallclock, -wallclock=true, ...)
	// that cmd/go forwards when the user narrows the run.
	enabled, rest := filterAnalyzerFlags(analyzers, args)

	if len(rest) == 0 {
		fmt.Fprintf(os.Stderr, "usage: %s [-V=full | -flags | unit.cfg]\n", progname)
		return 1
	}
	switch rest[0] {
	case "-V=full":
		// cmd/go requires: field 1 == "version", field 2 == "devel" ⇒ the
		// last field must start with "buildID=" and carry a content hash.
		fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, selfHash())
		return 0
	case "-V":
		fmt.Printf("%s version devel\n", progname)
		return 0
	case "-flags":
		printFlagDefs(analyzers)
		return 0
	}
	if !strings.HasSuffix(rest[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected a *.cfg argument, got %q\n", progname, rest[0])
		return 1
	}
	return runUnit(progname, rest[0], enabled, os.Stderr)
}

// filterAnalyzerFlags interprets boolean flags named after analyzers as a
// selection: if any appear with a true value, only those analyzers run.
// Unrecognized arguments pass through.
func filterAnalyzerFlags(analyzers []*Analyzer, args []string) ([]*Analyzer, []string) {
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var selected []*Analyzer
	var rest []string
	for _, arg := range args {
		name, val, found := strings.Cut(strings.TrimPrefix(arg, "-"), "=")
		a, known := byName[name]
		if !strings.HasPrefix(arg, "-") || !known {
			rest = append(rest, arg)
			continue
		}
		if !found || val == "true" || val == "1" {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}
	return selected, rest
}

// selfHash hashes the running executable; cmd/go mixes this into its action
// cache key so that rebuilding the tool invalidates cached vet results.
func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil))
			}
		}
	}
	// Degrade to a constant: caching becomes overly sticky but runs work.
	return "unknown"
}

// printFlagDefs emits the JSON flag listing cmd/go requests via -flags.
func printFlagDefs(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var flags []jsonFlag
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{a.Name, true, "enable only the " + a.Name + " analysis"})
	}
	data, _ := json.MarshalIndent(flags, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}

// runUnit analyzes one compilation unit described by a cfg file, reading its
// dependencies' facts from PackageVetx and writing its own to VetxOutput.
// Diagnostics go to errw.
func runUnit(progname, cfgFile string, analyzers []*Analyzer, errw io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(errw, "%s: %v\n", progname, err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(errw, "%s: parsing %s: %v\n", progname, cfgFile, err)
		return 1
	}

	// cmd/go caches and feeds back the vetx output, so a file must exist on
	// every exit path; paths that bail before analysis write an empty set.
	writeEmptyVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		if err := WriteFactsFile(cfg.VetxOutput, NewFactSet()); err != nil {
			fmt.Fprintf(errw, "%s: %v\n", progname, err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeEmptyVetx() // the compiler will report it better
			}
			fmt.Fprintf(errw, "%s: %v\n", progname, err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, already through ImportMap.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeEmptyVetx()
		}
		fmt.Fprintf(errw, "%s: %v\n", progname, err)
		return 1
	}

	// Load the dependencies' fact sets. A missing or undecodable vetx file
	// degrades that one dependency to fact-free (package-local precision)
	// rather than failing the unit: stale caches may still hold the
	// pre-facts tool's zero-byte files, and those decode to the empty set.
	facts := NewFactStore()
	for importPath, vetxFile := range cfg.PackageVetx {
		fs, err := ReadFactsFile(vetxFile)
		if err != nil {
			continue
		}
		facts.AddPackage(importPath, fs)
	}

	res := RunUnit(analyzers, fset, files, pkg, info, facts)

	// Export this unit's facts before any VetxOnly short-circuit: the whole
	// point of a VetxOnly run is the facts, not the diagnostics.
	if cfg.VetxOutput != "" {
		if err := WriteFactsFile(cfg.VetxOutput, facts.Exported()); err != nil {
			fmt.Fprintf(errw, "%s: %v\n", progname, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	for _, d := range res.Diags {
		fmt.Fprintf(errw, "%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
