package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/channel"
	"repro/internal/intern"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// This file is Part B of the tooling layer: the static boundness auditor.
//
// The audit exhaustively enumerates the joint control configurations
// (q_t, q_r, c^{t→r}, c^{r→t}) a protocol can reach when each channel holds
// at most Occupancy in-transit packets, and reports
//
//	k_t — distinct transmitter control states observed,
//	k_r — distinct receiver control states observed,
//	h   — distinct packet headers ever sent,
//
// the quantities the paper's theorems are phrased in: Theorem 2.1 pumps any
// execution of a k_t/k_r-bounded protocol once it exceeds the k_t·k_r joint
// control states, and Theorems 3.1/4.1 presuppose a fixed h-letter header
// alphabet. The verdict checks the observation against the protocol's
// declared protocol.Bounds: a declared-bounded protocol must reach a
// fixpoint within the state budget (and respect its declared ceilings); a
// declared-unbounded protocol must not — either contradiction fails the
// audit.
//
// Conventions of the enumeration (the quotient that makes it finite for the
// genuinely finite protocols):
//
//   - Messages are submitted only when the transmitter is idle, and all
//     payloads are the constant "m" — the paper's "all messages identical"
//     convention: DL1 violations need distinguishable payloads, but
//     boundness is a control-space property.
//   - Endpoint states are compared by ControlKey (protocol.ControlKeyOf),
//     letting protocols quotient away bookkeeping that provably never
//     influences behavior (metrics counters, phase counters read mod k).
//   - Receiver acknowledgements are drained eagerly: after every data
//     delivery, pending acks are forwarded to the r→t channel immediately,
//     and acks beyond the occupancy cap are dropped at send (a legal lossy
//     behavior). This pins the receiver's internal ack queue to length
//     zero in every snapshotted configuration.
//   - Deliveries and drops are explored per distinct in-transit packet;
//     sends beyond a channel's occupancy cap are not explored (the
//     adversary that refuses to buffer more than Occupancy packets).

// AuditConfig bounds the enumeration.
type AuditConfig struct {
	// Occupancy caps the in-transit packets per channel. Default 2 — the
	// smallest cap that exercises stale-copy counting (one stale copy plus
	// one fresh copy in transit together).
	Occupancy int
	// MaxStates is the state budget: the audit stops (non-exhausted) when
	// the number of distinct joint configurations reaches it. Default 65536.
	MaxStates int
}

func (c AuditConfig) withDefaults() AuditConfig {
	if c.Occupancy <= 0 {
		c.Occupancy = 2
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 16
	}
	return c
}

// Verdict is the audit's conclusion for one protocol.
type Verdict string

const (
	// VerdictCertified: declared state-bounded, the enumeration reached a
	// fixpoint within budget, and every declared ceiling holds.
	VerdictCertified Verdict = "CERTIFIED"
	// VerdictConsistent: declared state-unbounded and the enumeration
	// indeed exceeded the budget (finiteness cannot be refuted by
	// enumeration, only corroborated).
	VerdictConsistent Verdict = "CONSISTENT"
	// VerdictObserved: the protocol declares no bounds; the report is
	// informational.
	VerdictObserved Verdict = "OBSERVED"
	// VerdictFail: the observation contradicts the declaration.
	VerdictFail Verdict = "FAIL"
)

// AuditReport is the result of auditing one protocol.
type AuditReport struct {
	Protocol  string
	Occupancy int
	MaxStates int

	// States is the number of distinct joint configurations enumerated;
	// Exhausted reports whether that is all of them (fixpoint) or the
	// budget cut the enumeration off.
	States    int
	Exhausted bool

	// KT and KR are the distinct transmitter/receiver control states
	// observed; Headers the distinct packet headers sent (sorted).
	KT, KR  int
	Headers []string

	// PumpingBound is k_t·k_r when the enumeration exhausted — the joint
	// control-state count Theorem 2.1's adversary needs to exceed to force
	// a repeated pair. Zero when the space was not exhausted.
	PumpingBound int

	// Declared is the protocol's Bounds declaration, if any.
	Declared    *protocol.Bounds
	Verdict     Verdict
	Failures    []string
	HeaderBound int
	HeaderBd    bool
}

// auditState is one joint configuration of the enumeration.
type auditState struct {
	t      protocol.Transmitter
	r      protocol.Receiver
	chData *channel.NonFIFO // t→r
	chAck  *channel.NonFIFO // r→t
}

// clone deep-copies the configuration, rebinding the endpoints' genies to
// the cloned channels (the same rebinding discipline as sim.Runner.Fork).
func (s *auditState) clone() *auditState {
	ns := &auditState{
		t:      s.t.Clone(),
		r:      s.r.Clone(),
		chData: s.chData.Clone(),
		chAck:  s.chAck.Clone(),
	}
	if u, ok := ns.t.(protocol.AckGenieUser); ok {
		u.SetAckGenie(channel.ChannelGenie{Ch: ns.chAck})
	}
	if u, ok := ns.r.(protocol.DataGenieUser); ok {
		u.SetDataGenie(channel.ChannelGenie{Ch: ns.chData})
	}
	return ns
}

// auditKey is the packed joint-configuration key the enumeration dedups
// on: the two control keys and two channel keys interned to dense ids.
// Component-wise interned equality is exactly component-wise string
// equality (interning is injective), so the quotient is the same one the
// concatenated string key used to induce — at a 16-byte comparable probe
// instead of a fresh string build per visit.
type auditKey struct {
	tc, rc, dk, ak uint32
}

// auditor carries the enumeration's accumulators.
type auditor struct {
	cfg     AuditConfig
	tab     *intern.Local
	kbuf    []byte
	seen    map[auditKey]struct{}
	queue   []*auditState
	kt, kr  map[uint32]struct{}
	headers map[string]struct{}
}

// visit records a configuration and enqueues it if new.
func (a *auditor) visit(s *auditState) {
	b := protocol.AppendControlKeyOf(a.kbuf[:0], s.t)
	k := auditKey{tc: a.tab.InternBytes(b)}
	m := len(b)
	b = protocol.AppendControlKeyOf(b, s.r)
	k.rc = a.tab.InternBytes(b[m:])
	m = len(b)
	b = s.chData.AppendKey(b)
	k.dk = a.tab.InternBytes(b[m:])
	m = len(b)
	b = s.chAck.AppendKey(b)
	k.ak = a.tab.InternBytes(b[m:])
	a.kbuf = b
	if _, ok := a.seen[k]; ok {
		return
	}
	a.seen[k] = struct{}{}
	a.kt[k.tc] = struct{}{}
	a.kr[k.rc] = struct{}{}
	a.queue = append(a.queue, s)
}

// drainAcks forwards the receiver's pending acknowledgements to the r→t
// channel, dropping at send beyond the occupancy cap.
func (a *auditor) drainAcks(s *auditState) {
	for {
		pkt, ok := s.r.NextPkt()
		if !ok {
			return
		}
		a.headers[pkt.Header] = struct{}{}
		if s.chAck.InTransit() < a.cfg.Occupancy {
			s.chAck.Send(pkt)
		}
	}
}

// expand enumerates the successors of one configuration.
func (a *auditor) expand(s *auditState) {
	// submit: hand the transmitter a message, only when it is idle.
	if !s.t.Busy() {
		ns := s.clone()
		ns.t.SendMsg("m")
		a.visit(ns)
	}

	// transmit: one send_pkt^{t→r}, if enabled and the channel has room.
	if s.chData.InTransit() < a.cfg.Occupancy {
		ns := s.clone()
		if pkt, ok := ns.t.NextPkt(); ok {
			a.headers[pkt.Header] = struct{}{}
			ns.chData.Send(pkt)
			a.visit(ns)
		}
	}

	// deliver-data: each distinct in-transit data packet, removed from the
	// channel before the receiver sees it (so genie snapshots observe the
	// post-delivery transit), with delivered payloads and acks drained.
	for _, pkt := range s.chData.Packets() {
		ns := s.clone()
		if err := ns.chData.Deliver(pkt); err != nil {
			continue
		}
		ns.r.DeliverPkt(pkt)
		ns.r.TakeDelivered()
		a.drainAcks(ns)
		a.visit(ns)
	}

	// deliver-ack: each distinct in-transit ack packet.
	for _, pkt := range s.chAck.Packets() {
		ns := s.clone()
		if err := ns.chAck.Deliver(pkt); err != nil {
			continue
		}
		ns.t.DeliverPkt(pkt)
		a.visit(ns)
	}

	// drop: each distinct in-transit packet, on either channel.
	for _, pkt := range s.chData.Packets() {
		ns := s.clone()
		if ns.chData.Drop(pkt) == nil {
			a.visit(ns)
		}
	}
	for _, pkt := range s.chAck.Packets() {
		ns := s.clone()
		if ns.chAck.Drop(pkt) == nil {
			a.visit(ns)
		}
	}
}

// Audit enumerates the protocol's reachable joint control space under the
// configuration's bounds and returns the report.
func Audit(p protocol.Protocol, cfg AuditConfig) *AuditReport {
	cfg = cfg.withDefaults()
	a := &auditor{
		cfg:     cfg,
		tab:     intern.NewLocal(),
		seen:    make(map[auditKey]struct{}),
		kt:      make(map[uint32]struct{}),
		kr:      make(map[uint32]struct{}),
		headers: make(map[string]struct{}),
	}

	init := &auditState{
		chData: channel.NewNonFIFO(ioa.TtoR),
		chAck:  channel.NewNonFIFO(ioa.RtoT),
	}
	init.t, init.r = p.New(
		channel.ChannelGenie{Ch: init.chData},
		channel.ChannelGenie{Ch: init.chAck},
	)
	a.visit(init)

	exhausted := true
	for head := 0; head < len(a.queue); head++ {
		if len(a.seen) >= cfg.MaxStates {
			exhausted = false
			break
		}
		a.expand(a.queue[head])
	}

	report := &AuditReport{
		Protocol:  p.Name(),
		Occupancy: cfg.Occupancy,
		MaxStates: cfg.MaxStates,
		States:    len(a.seen),
		Exhausted: exhausted,
		KT:        len(a.kt),
		KR:        len(a.kr),
		Headers:   sortedKeys(a.headers),
	}
	report.HeaderBound, report.HeaderBd = p.HeaderBound()
	if exhausted {
		report.PumpingBound = report.KT * report.KR
	}
	judge(report, p)
	return report
}

// judge fills in the verdict by checking the observation against the
// protocol's declaration.
func judge(rep *AuditReport, p protocol.Protocol) {
	if rep.HeaderBd && len(rep.Headers) > rep.HeaderBound {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"observed %d distinct headers, exceeding HeaderBound %d",
			len(rep.Headers), rep.HeaderBound))
	}

	b, ok := p.(protocol.Bounded)
	if !ok {
		rep.Verdict = VerdictObserved
		if len(rep.Failures) > 0 {
			rep.Verdict = VerdictFail
		}
		return
	}
	decl := b.Bounds()
	rep.Declared = &decl

	switch {
	case decl.StateBounded && !rep.Exhausted:
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"declared state-bounded but the enumeration exceeded the %d-state budget: control state leaks",
			rep.MaxStates))
	case !decl.StateBounded && rep.Exhausted:
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"declared state-unbounded but only %d joint states are reachable: the declaration understates the protocol (Theorem 2.1 would apply)",
			rep.States))
	}
	if decl.StateBounded && rep.Exhausted {
		if decl.KT > 0 && rep.KT > decl.KT {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"observed k_t=%d exceeds declared ceiling %d", rep.KT, decl.KT))
		}
		if decl.KR > 0 && rep.KR > decl.KR {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"observed k_r=%d exceeds declared ceiling %d", rep.KR, decl.KR))
		}
	}
	if decl.Headers > 0 && len(rep.Headers) > decl.Headers {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"observed %d distinct headers exceeds declared ceiling %d",
			len(rep.Headers), decl.Headers))
	}

	switch {
	case len(rep.Failures) > 0:
		rep.Verdict = VerdictFail
	case decl.StateBounded:
		rep.Verdict = VerdictCertified
	default:
		rep.Verdict = VerdictConsistent
	}
}

// JSON renders the report as a machine-readable artifact, the audit
// counterpart of verify.Report.JSON.
func (r *AuditReport) JSON() ([]byte, error) {
	payload := struct {
		Protocol      string           `json:"protocol"`
		Occupancy     int              `json:"occupancy"`
		MaxStates     int              `json:"maxStates"`
		States        int              `json:"states"`
		Exhausted     bool             `json:"exhausted"`
		KT            int              `json:"kt"`
		KR            int              `json:"kr"`
		Headers       []string         `json:"headers,omitempty"`
		PumpingBound  int              `json:"pumpingBound,omitempty"`
		Declared      *protocol.Bounds `json:"declared,omitempty"`
		Verdict       Verdict          `json:"verdict"`
		Failures      []string         `json:"failures,omitempty"`
		HeaderBound   int              `json:"headerBound,omitempty"`
		HeaderBounded bool             `json:"headerBounded,omitempty"`
	}{
		Protocol:      r.Protocol,
		Occupancy:     r.Occupancy,
		MaxStates:     r.MaxStates,
		States:        r.States,
		Exhausted:     r.Exhausted,
		KT:            r.KT,
		KR:            r.KR,
		Headers:       r.Headers,
		PumpingBound:  r.PumpingBound,
		Declared:      r.Declared,
		Verdict:       r.Verdict,
		Failures:      r.Failures,
		HeaderBound:   r.HeaderBound,
		HeaderBounded: r.HeaderBd,
	}
	return json.MarshalIndent(payload, "", "  ")
}

// String renders the report in the fixed layout the golden tests pin down.
func (r *AuditReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol:  %s\n", r.Protocol)
	fmt.Fprintf(&b, "occupancy: %d\n", r.Occupancy)
	if r.Exhausted {
		fmt.Fprintf(&b, "states:    %d (exhausted)\n", r.States)
	} else {
		fmt.Fprintf(&b, "states:    %d (budget %d hit)\n", r.States, r.MaxStates)
	}
	fmt.Fprintf(&b, "k_t:       %d\n", r.KT)
	fmt.Fprintf(&b, "k_r:       %d\n", r.KR)
	fmt.Fprintf(&b, "headers:   %d [%s]\n", len(r.Headers), strings.Join(r.Headers, " "))
	if r.Exhausted {
		fmt.Fprintf(&b, "k_t*k_r:   %d\n", r.PumpingBound)
	}
	if r.HeaderBd {
		fmt.Fprintf(&b, "alphabet:  %d (bounded)\n", r.HeaderBound)
	} else {
		fmt.Fprintf(&b, "alphabet:  unbounded\n")
	}
	if r.Declared != nil {
		fmt.Fprintf(&b, "declared:  %s", boundedWord(r.Declared.StateBounded))
		if r.Declared.KT > 0 || r.Declared.KR > 0 || r.Declared.Headers > 0 {
			var caps []string
			if r.Declared.KT > 0 {
				caps = append(caps, fmt.Sprintf("k_t<=%d", r.Declared.KT))
			}
			if r.Declared.KR > 0 {
				caps = append(caps, fmt.Sprintf("k_r<=%d", r.Declared.KR))
			}
			if r.Declared.Headers > 0 {
				caps = append(caps, fmt.Sprintf("headers<=%d", r.Declared.Headers))
			}
			fmt.Fprintf(&b, " (%s)", strings.Join(caps, ", "))
		}
		b.WriteByte('\n')
	} else {
		fmt.Fprintf(&b, "declared:  (none)\n")
	}
	fmt.Fprintf(&b, "verdict:   %s\n", r.Verdict)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  fail:    %s\n", f)
	}
	return b.String()
}

func boundedWord(b bool) string {
	if b {
		return "state-bounded"
	}
	return "state-unbounded"
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	//nfvet:allow maprange (keys are collected then sorted before use)
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
