package analyze

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness is an analysistest workalike on the stdlib: each
// directory under testdata/src is parsed and type-checked under a pretend
// import path (so the package-scoped analyzers see the scope the fixture
// exercises), all seven analyzers run, and the diagnostics are matched
// line-by-line against `// want "substring"` comments. Every diagnostic must
// be wanted and every want must be diagnosed.

var fixtureExports = struct {
	once sync.Once
	m    map[string]string
	err  error
}{}

// stdExports resolves export data for the standard-library packages the
// fixtures import, once per test binary.
func stdExports(t *testing.T) map[string]string {
	t.Helper()
	fixtureExports.once.Do(func() {
		fixtureExports.m, fixtureExports.err = ExportMap(moduleRoot(t),
			"fmt", "math/rand", "sort", "strconv", "strings", "testing", "time",
			"repro/internal/intern")
	})
	if fixtureExports.err != nil {
		t.Fatalf("resolving std export data: %v", fixtureExports.err)
	}
	return fixtureExports.m
}

var wantRE = regexp.MustCompile(`"([^"]*)"`)

// collectWants extracts `// want "..."` expectations: file → line → the
// quoted substrings expected in diagnostics anchored to that line.
func collectWants(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	wants := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				byLine := wants[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					wants[pos.Filename] = byLine
				}
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					byLine[pos.Line] = append(byLine[pos.Line], m[1])
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<rel> as a package with the given import
// path and checks the analyzer output against the fixture's want comments.
func runFixture(t *testing.T, rel, importPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, info, err := TypeCheck(fset, importPath, files, stdExports(t))
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", rel, err)
	}

	diags := RunAnalyzers(Analyzers(), fset, files, pkg, info)
	wants := collectWants(fset, files)
	matched := make(map[string]map[int][]bool)
	for file, byLine := range wants {
		matched[file] = make(map[int][]bool)
		//nfvet:allow maprange (every entry is visited; match results are reported per want below)
		for line, subs := range byLine {
			matched[file][line] = make([]bool, len(subs))
		}
	}

	for _, d := range diags {
		rendered := d.Message + " (" + d.Analyzer + ")"
		found := false
		for i, sub := range wants[d.Pos.Filename][d.Pos.Line] {
			if !matched[d.Pos.Filename][d.Pos.Line][i] && strings.Contains(rendered, sub) {
				matched[d.Pos.Filename][d.Pos.Line][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, file := range sortedKeys(wants) {
		byLine := wants[file]
		var lines []int
		//nfvet:allow maprange (lines are collected then sorted before use)
		for line := range byLine {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for i, sub := range byLine[line] {
				if !matched[file][line][i] {
					t.Errorf("%s:%d: expected a diagnostic containing %q, got none", file, line, sub)
				}
			}
		}
	}
}

func TestWallclockFixture(t *testing.T) {
	runFixture(t, "wallclock/inscope", "fixture/internal/fuzz")
}

func TestWallclockOutOfScopeFixture(t *testing.T) {
	runFixture(t, "wallclock/outofscope", "fixture/internal/stats")
}

func TestGlobalRandFixture(t *testing.T) {
	runFixture(t, "globalrand", "fixture/cmd/gen")
}

func TestMapRangeCriticalFixture(t *testing.T) {
	runFixture(t, "maprange/critical", "fixture/internal/trace")
}

func TestMapRangeOutOfScopeFixture(t *testing.T) {
	runFixture(t, "maprange/outofscope", "fixture/examples/demo")
}

func TestStateKeyFixture(t *testing.T) {
	runFixture(t, "statekey", "fixture/internal/keys")
}

func TestNextPktFixture(t *testing.T) {
	runFixture(t, "nextpkt", "fixture/internal/transport")
}

func TestInternLocalFixture(t *testing.T) {
	runFixture(t, "internlocal", "fixture/internal/fuzz")
}

func TestFreelistFixture(t *testing.T) {
	runFixture(t, "freelist", "fixture/internal/verify")
}
