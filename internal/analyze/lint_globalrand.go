package analyze

import (
	"go/ast"
)

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. Calling them makes the draw order a cross-package,
// cross-goroutine global — the opposite of the per-stream seeding contract
// (core.SplitSeed) the replay and fuzz subsystems are built on.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// GlobalRandAnalyzer forbids the global math/rand source and constant
// seeds anywhere in the module's non-test code. All randomness must be an
// explicit *rand.Rand whose seed is derived from a configured root seed via
// core.SplitSeed, so that every stream is pinned and replayable.
func GlobalRandAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "globalrand",
		Doc: "forbid top-level math/rand functions (the process-global source) and " +
			"constant-seeded rand.NewSource; all randomness must flow from an " +
			"explicit *rand.Rand seeded via core.SplitSeed(root, stream)",
		Run: runGlobalRand,
	}
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			// Tests legitimately pin literal seeds to make cases reproducible.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pkgFuncCall(pass.Info, call, "math/rand")
			if !ok {
				return true
			}
			switch {
			case globalRandFuncs[name]:
				pass.Report(call.Pos(), "rand.%s uses the process-global source; draw from a *rand.Rand seeded via core.SplitSeed", name)
			case name == "NewSource" && len(call.Args) == 1 && isConstExpr(pass, call.Args[0]):
				pass.Report(call.Pos(), "rand.NewSource with a constant seed; derive the seed from the configured root via core.SplitSeed")
			}
			return true
		})
	}
}

// isConstExpr reports whether the expression is a compile-time constant
// (literal or named constant) — a hard-coded seed rather than a value that
// flowed from configuration.
func isConstExpr(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	return ok && tv.Value != nil
}
