package analyze

import (
	"go/ast"
	"go/types"
)

// fmtFormatting lists the reflection-driven fmt entry points. StateKey sits
// on the hot path of the adversary search and the fuzzer's coverage signal
// (two calls per simulator operation); PR 2 measured ~1.3x fuzz throughput
// from replacing Sprintf with direct byte appends (keyBuf), and this lint
// keeps that win from regressing.
var fmtFormatting = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

// stateKeyMethods are the canonical-encoding methods the lint guards.
var stateKeyMethods = map[string]bool{
	"StateKey":   true,
	"ControlKey": true,
}

// StateKeyAnalyzer checks that StateKey/ControlKey implementations are
// pure and cheap: no map iteration (order-dependent bytes), no randomness,
// no clock reads, and no fmt formatting (reflection on the hot path) —
// directly or through helpers. With the facts channel (facts.go) the
// transitive fixpoint is module-wide: every unit exports a purity fact for
// each of its exported functions, and calls into other packages are judged
// by the callee's fact, so a StateKey → helper-package → fmt chain is
// caught across package boundaries. Without facts the fixpoint degrades to
// its original package-local scope.
func StateKeyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "statekey",
		Doc: "StateKey/ControlKey methods must be pure and allocation-lean: no map " +
			"iteration, no math/rand, no clock reads, and no fmt.Sprintf-style " +
			"formatting (use the keyBuf append helpers), including transitively " +
			"through helpers — cross-package when the facts channel is enabled",
		Run: runStateKey,
	}
}

// impurity describes why a function is unfit for a state-key path.
type impurity struct {
	reason string
	// callees are the package-local functions this function calls; used to
	// propagate impurity up to StateKey callers.
	callees []*types.Func
}

func runStateKey(pass *Pass) {
	// Pass 1: classify every function declaration in the package.
	funcs := make(map[*types.Func]*impurity)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fd)
			funcs[obj] = classify(pass, fd)
		}
	}

	// Pass 2: propagate impurity through package-local calls to a fixpoint,
	// so a StateKey that calls keyf (which calls fmt.Sprintf) is flagged.
	// Cross-package impurity enters via classify (imported callees with an
	// impure fact) and propagates through the same fixpoint.
	impure := make(map[*types.Func]string)
	for obj, imp := range funcs {
		if imp.reason != "" {
			impure[obj] = imp.reason
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, imp := range funcs {
			if _, done := impure[obj]; done {
				continue
			}
			for _, callee := range imp.callees {
				if why, bad := impure[callee]; bad {
					impure[obj] = "calls " + callee.Name() + ", which " + why
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: report findings inside StateKey/ControlKey bodies.
	for _, fd := range decls {
		if !stateKeyMethods[fd.Name.Name] || fd.Recv == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass.Info, n.X) {
					pass.Report(n.Pos(), "%s ranges over a map: key bytes become order-dependent; keep a sorted slice instead", fd.Name.Name)
				}
			case *ast.CallExpr:
				if reason, bad := directBan(pass, n); bad {
					pass.Report(n.Pos(), "%s %s; state keys must be pure — use the keyBuf append helpers", fd.Name.Name, reason)
					return true
				}
				if callee := localCallee(pass, n); callee != nil {
					if why, bad := impure[callee]; bad {
						pass.Report(n.Pos(), "%s calls %s, which %s; state keys must be pure — use the keyBuf append helpers", fd.Name.Name, callee.Name(), why)
					}
				}
				if callee := importedCallee(pass, n); callee != nil {
					if fact, ok := pass.Facts.ImportedPurity(callee); ok && fact.Impure {
						pass.Report(n.Pos(), "%s calls %s.%s, which %s; state keys must be pure — use the keyBuf append helpers",
							fd.Name.Name, callee.Pkg().Name(), callee.Name(), fact.Reason)
					}
				}
			}
			return true
		})
	}

	// Pass 4: export a purity fact for every exported function, so
	// downstream units can judge calls into this package. Pure facts are
	// exported too — the channel's health is observable as non-empty vetx
	// payloads, and absence stays distinguishable from purity.
	if pass.Facts != nil {
		for obj := range funcs {
			if !exportableFunc(obj) {
				continue
			}
			why, bad := impure[obj]
			pass.Facts.ExportPurity(funcKey(obj), PurityFact{Impure: bad, Reason: why})
		}
	}
}

// classify inspects one function body for direct violations and collects
// its package-local callees. Calls into other packages are judged
// immediately against the facts channel: an imported callee with an impure
// fact is as direct a ban as a fmt.Sprintf call.
func classify(pass *Pass, fd *ast.FuncDecl) *impurity {
	imp := &impurity{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if reason, bad := directBan(pass, call); bad && imp.reason == "" {
			imp.reason = reason
		}
		if callee := localCallee(pass, call); callee != nil {
			imp.callees = append(imp.callees, callee)
		}
		if callee := importedCallee(pass, call); callee != nil && imp.reason == "" {
			if fact, ok := pass.Facts.ImportedPurity(callee); ok && fact.Impure {
				imp.reason = "calls " + callee.Pkg().Name() + "." + callee.Name() + ", which " + fact.Reason
			}
		}
		return true
	})
	return imp
}

// directBan reports whether the call is a directly banned operation for
// state-key paths, with a human-readable reason.
func directBan(pass *Pass, call *ast.CallExpr) (string, bool) {
	if name, ok := pkgFuncCall(pass.Info, call, "fmt"); ok && fmtFormatting[name] {
		return "calls fmt." + name + " (reflection-driven formatting on the hot path)", true
	}
	if name, ok := pkgFuncCall(pass.Info, call, "math/rand"); ok {
		return "calls rand." + name + " (state keys must not consume randomness)", true
	}
	if name, ok := pkgFuncCall(pass.Info, call, "time"); ok {
		if _, banned := wallclockBanned[name]; banned {
			return "calls time." + name + " (state keys must not read the clock)", true
		}
	}
	return "", false
}

// localCallee resolves a call to a function or method declared in the
// package under analysis, if it is one.
func localCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}

// importedCallee resolves a call to a function or method declared in
// another package, if it is one. Interface-dispatched calls resolve to the
// interface's method object; those carry no facts and come back pure.
func importedCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return nil
	}
	return fn
}
