package analyze

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the directory containing
// go.mod. The analyze tests run from internal/analyze, two levels down.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above working directory")
		}
		dir = parent
	}
}

// TestModuleLintClean runs all seven analyzers over the whole
// module and requires zero findings. This is the self-application of the lint
// suite: the codebase must satisfy its own determinism discipline. If this
// test fails, either fix the finding or — for a provably order-insensitive
// site — suppress it with a `//nfvet:allow <analyzer> (reason)` directive.
func TestModuleLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	pkgs, err := LoadPackages(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPackages returned no packages")
	}
	for _, p := range pkgs {
		for _, d := range RunAnalyzers(Analyzers(), p.Fset, p.Files, p.Pkg, p.Info) {
			t.Errorf("lint finding: %s", d)
		}
	}
}
