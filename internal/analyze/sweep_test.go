package analyze

import (
	"strings"
	"testing"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// TestSweepMonotone sweeps a representative protocol set and checks the
// Theorem 2.1 expectation: over exhausted points, k_t, k_r and the pumping
// bound never decrease as the occupancy cap grows.
func TestSweepMonotone(t *testing.T) {
	ps := []protocol.Protocol{
		protocol.NewAltBit(),
		protocol.NewCntK(4),
		transport.MustAdapt(transport.New(4, 2)),
		transport.MustAdapt(transport.NewGoBackN(4, 2)),
	}
	for _, rep := range SweepAll(ps, SweepConfig{MaxOccupancy: 3, MaxStates: 1 << 14}) {
		if err := rep.CheckMonotone(); err != nil {
			t.Error(err)
		}
		if len(rep.Points) == 0 {
			t.Errorf("%s: sweep produced no points", rep.Protocol)
		}
		for i, pt := range rep.Points {
			if pt.Occupancy != i+1 {
				t.Errorf("%s: point %d has occupancy %d, want %d", rep.Protocol, i, pt.Occupancy, i+1)
			}
		}
	}
}

// TestSweepTruncatesAtBudget: the sweep stops at the first budget-hit point
// — reachable sets grow with the cap, so later points are foregone
// conclusions — and marks the report truncated.
func TestSweepTruncatesAtBudget(t *testing.T) {
	rep := Sweep(transport.MustAdapt(transport.New(4, 2)), SweepConfig{MaxOccupancy: 4, MaxStates: 256})
	if !rep.Truncated {
		t.Fatalf("swindow-s4-w2 under a 256-state budget should truncate, got %d full points", len(rep.Points))
	}
	last := rep.Points[len(rep.Points)-1]
	if last.Exhausted {
		t.Fatal("truncated sweep's last point claims exhaustion")
	}
	if last.PumpingBound != 0 {
		t.Fatalf("budget-hit point has PumpingBound %d, want 0 (undefined)", last.PumpingBound)
	}
	for _, pt := range rep.Points[:len(rep.Points)-1] {
		if !pt.Exhausted {
			t.Fatalf("non-final point at occupancy %d is unexhausted; sweep should have stopped there", pt.Occupancy)
		}
	}
}

// TestSweepUnboundedProtocol: a state-unbounded protocol hits the budget at
// every cap, so its sweep is a single budget-hit point.
func TestSweepUnboundedProtocol(t *testing.T) {
	rep := Sweep(protocol.NewSeqNum(), SweepConfig{MaxOccupancy: 3, MaxStates: 512})
	if len(rep.Points) != 1 || rep.Points[0].Exhausted || !rep.Truncated {
		t.Fatalf("seqnum sweep = %+v, want one budget-hit point and Truncated", rep)
	}
}

// TestCheckMonotoneDetectsShrinkage: a hand-built curve whose pumping bound
// shrinks must be rejected — that shape can only come from an unsound
// enumeration or ControlKey quotient.
func TestCheckMonotoneDetectsShrinkage(t *testing.T) {
	rep := &SweepReport{
		Protocol: "broken",
		Points: []SweepPoint{
			{Occupancy: 1, States: 10, Exhausted: true, KT: 4, KR: 4, PumpingBound: 16},
			{Occupancy: 2, States: 20, Exhausted: true, KT: 4, KR: 2, PumpingBound: 8},
		},
	}
	if err := rep.CheckMonotone(); err == nil {
		t.Fatal("shrinking k_r survived CheckMonotone")
	}
	// Budget-hit points are lower bounds and must be exempt from the check.
	rep.Points[1].Exhausted = false
	if err := rep.CheckMonotone(); err != nil {
		t.Fatalf("unexhausted point should not participate in monotonicity: %v", err)
	}
}

// TestSweepTableFormat pins the TSV shape downstream tooling parses.
func TestSweepTableFormat(t *testing.T) {
	reports := SweepAll([]protocol.Protocol{protocol.NewAltBit()}, SweepConfig{MaxOccupancy: 2, MaxStates: 1 << 14})
	table := SweepTable(reports)
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if lines[0] != "protocol\toccupancy\tstates\texact\tk_t\tk_r\tk_t*k_r\theaders" {
		t.Fatalf("header row drifted: %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("altbit sweep to occupancy 2 should emit 2 data rows, got %d:\n%s", len(lines)-1, table)
	}
	for _, line := range lines[1:] {
		if fields := strings.Split(line, "\t"); len(fields) != 8 {
			t.Errorf("row has %d fields, want 8: %q", len(fields), line)
		}
		if !strings.HasPrefix(line, "altbit\t") {
			t.Errorf("row does not lead with the protocol name: %q", line)
		}
	}
}
