package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// InternLocalAnalyzer flags intern.Local values that escape the goroutine
// that made them. intern.Local is the deliberately unsynchronized variant of
// the interner (no RWMutex on its map); the single-goroutine explorer and
// auditor use it for the ~15% lookup win, and the contract is that a Local
// never becomes visible to a second goroutine. This analyzer enforces that
// contract structurally: a goroutine launch whose closure captures (or whose
// arguments carry) a Local, a channel send of a Local-carrying value, or a
// package-level variable of a Local-carrying type is each a sharing point
// and gets flagged — use intern.Table across goroutines instead.
func InternLocalAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "internlocal",
		Doc: "intern.Local is unsynchronized and must stay goroutine-local: " +
			"flags goroutine closures capturing a Local carrier, go-statement " +
			"arguments carrying one, channel sends of one, and package-level " +
			"Local-carrying variables — share via intern.Table instead",
		Run: runInternLocal,
	}
}

// internPkgPath matches the interner package by import-path suffix, so the
// analyzer works on the module ("repro/internal/intern") and on fixtures that
// re-root it.
const internPkgSuffix = "internal/intern"

// internNamed reports whether t is the named type with the given name from
// the interner package.
func internNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == internPkgSuffix || strings.HasSuffix(p, "/"+internPkgSuffix)
}

// carriesLocal reports whether a value of type t gives its holder a path to
// an intern.Local: the Local itself, a pointer to one, or a struct, slice,
// array, map or channel containing one (transitively).
func carriesLocal(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if internNamed(t, "Local") {
		return true
	}
	// Table wraps a Local behind an RWMutex: it is the sanctioned way to
	// share interning, so it is a boundary, not a carrier.
	if internNamed(t, "Table") {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return carriesLocal(u.Elem(), seen)
	case *types.Slice:
		return carriesLocal(u.Elem(), seen)
	case *types.Array:
		return carriesLocal(u.Elem(), seen)
	case *types.Chan:
		return carriesLocal(u.Elem(), seen)
	case *types.Map:
		return carriesLocal(u.Key(), seen) || carriesLocal(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesLocal(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

func exprCarriesLocal(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return carriesLocal(tv.Type, make(map[types.Type]bool))
}

func runInternLocal(pass *Pass) {
	for _, f := range pass.Files {
		// Package-level Local carriers are shareable by construction.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || name.Name == "_" {
						continue
					}
					if carriesLocal(obj.Type(), make(map[types.Type]bool)) {
						pass.Report(name.Pos(), "package-level variable %s carries intern.Local, which is unsynchronized; any second goroutine touching it races — use intern.Table for shared interning", name.Name)
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(pass, n)
			case *ast.SendStmt:
				if exprCarriesLocal(pass, n.Value) {
					pass.Report(n.Pos(), "channel send publishes a value carrying intern.Local to another goroutine; Local is unsynchronized — send an intern.Table handle or the resolved strings instead")
				}
			}
			return true
		})
	}
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		reportLocalCaptures(pass, lit)
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// go t.run() hands the receiver to the new goroutine.
		if exprCarriesLocal(pass, sel.X) {
			pass.Report(g.Pos(), "goroutine method call on %s, which carries intern.Local; Local is unsynchronized — give the goroutine an intern.Table", types.ExprString(sel.X))
		}
	}
	for _, arg := range call.Args {
		if exprCarriesLocal(pass, arg) {
			pass.Report(arg.Pos(), "goroutine argument %s carries intern.Local; Local is unsynchronized — pass an intern.Table across goroutines", types.ExprString(arg))
		}
	}
}

// reportLocalCaptures flags free variables of the goroutine closure whose
// types carry an intern.Local.
func reportLocalCaptures(pass *Pass, lit *ast.FuncLit) {
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || reported[obj] {
			return true
		}
		// Captured = declared outside the literal.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		// Package-level carriers are reported at their declaration.
		if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		if carriesLocal(obj.Type(), make(map[types.Type]bool)) {
			reported[obj] = true
			pass.Report(id.Pos(), "goroutine closure captures %s, which carries intern.Local; Local is unsynchronized — use intern.Table for cross-goroutine sharing", id.Name)
		}
		return true
	})
}
