package analyze

// Audit coverage for the transport adapter (internal/transport): the adapted
// sliding-window and go-back-n endpoints are ordinary protocol.Protocol
// values with ControlKey quotients, so the static auditor can certify their
// k_t·k_r exactly as it does the paper protocols. These tests live here
// rather than in internal/transport because they exercise the auditor
// (analyze → transport is the only import direction that does not cycle).

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// TestTransportAuditGolden pins the complete audit reports for the adapted
// transport endpoints, plus a FAIL fixture where the adapter declares
// understated Bounds ceilings. Regenerate with
// `go test -run TestTransportAuditGolden -update ./internal/analyze`.
func TestTransportAuditGolden(t *testing.T) {
	cases := []struct {
		name string
		p    protocol.Protocol
	}{
		{"swindow-s4-w2", transport.MustAdapt(transport.New(4, 2))},
		{"gbn-s4-w2", transport.MustAdapt(transport.NewGoBackN(4, 2))},
		// The understated fixture: the adapter claims k_t<=2 and a 4-letter
		// header alphabet for a protocol that provably reaches k_t=8 over 8
		// headers. The audit must FAIL it on both ceilings.
		{"swindow-s4-w2-understated", transport.MustAdapt(transport.New(4, 2)).
			WithBounds(protocol.Bounds{StateBounded: true, KT: 2, Headers: 4})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Audit(tc.p, goldenConfig).String()
			path := filepath.Join("testdata", "audit", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("audit report drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestTransportRegistryVerdicts audits every registered transport protocol:
// the finite-sequence-space forms must certify, the unbounded form must be
// consistent with its declaration, and nothing may FAIL.
func TestTransportRegistryVerdicts(t *testing.T) {
	want := map[string]Verdict{
		"swindow-s4-w2":        VerdictCertified,
		"gbn-s4-w2":            VerdictCertified,
		"gbn-s8-w4":            VerdictCertified,
		"swindow-unbounded-w2": VerdictConsistent,
	}
	reg := transport.Registry()
	if len(reg) != len(want) {
		t.Fatalf("transport registry has %d protocols, verdict table covers %d — update this test", len(reg), len(want))
	}
	for _, name := range transport.Names() {
		rep := Audit(reg[name], goldenConfig)
		if rep.Verdict != want[name] {
			t.Errorf("%s: verdict %s (failures %v), want %s", name, rep.Verdict, rep.Failures, want[name])
		}
		if rep.Exhausted && rep.PumpingBound != rep.KT*rep.KR {
			t.Errorf("%s: PumpingBound %d != k_t*k_r = %d*%d", name, rep.PumpingBound, rep.KT, rep.KR)
		}
	}
}

// TestTransportUnderstatedBoundsFail spells out the FAIL path the golden
// fixture pins: understated ceilings are contradictions, not warnings.
func TestTransportUnderstatedBoundsFail(t *testing.T) {
	p := transport.MustAdapt(transport.New(4, 2)).
		WithBounds(protocol.Bounds{StateBounded: true, KT: 2, KR: 3, Headers: 4})
	rep := Audit(p, goldenConfig)
	auditFailures(t, rep,
		"observed k_t=8 exceeds declared ceiling 2",
		"observed k_r=8 exceeds declared ceiling 3",
		"distinct headers exceeds declared ceiling 4")
}

// TestTransportStateKeyLintClean runs the determinism analyzers over the
// transport package alone: the adapter's ControlKey quotients (and the
// native StateKeys they delegate to) must be pure — no fmt verbs over
// arbitrary values, no map ranges, no clock or randomness reads. The
// whole-module selfcheck covers this too, but only outside -short; the
// adapter's keys are load-bearing enough for a dedicated fast check.
func TestTransportStateKeyLintClean(t *testing.T) {
	pkgs, err := LoadPackages(moduleRoot(t), "./internal/transport")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPackages returned no packages")
	}
	for _, p := range pkgs {
		for _, d := range RunAnalyzers(Analyzers(), p.Fset, p.Files, p.Pkg, p.Info) {
			t.Errorf("lint finding: %s", d)
		}
	}
}
