// Package analyze is the repo's correctness-tooling layer: a determinism
// lint suite and a static boundness auditor.
//
// Part A (this file, the lint_*.go files, facts.go, unitchecker.go,
// load.go) is a small go/analysis-style framework built on the standard
// library alone — the build environment has no golang.org/x/tools, so the
// Analyzer/Pass shapes, the `go vet -vettool` separate-compilation
// protocol, and the cross-package facts channel (gob-encoded .vetx files
// flowing along import edges; see facts.go) are reimplemented here on
// go/ast + go/types + go/importer. The seven analyzers mechanically guard
// the invariants the whole verification stack (replay, fuzzing, livelock
// certification) silently assumes:
//
//	wallclock   — no ambient time reads in deterministic packages
//	globalrand  — no global math/rand state, no constant seeds
//	maprange    — no map-order-dependent iteration on determinism-critical
//	              paths (hashing, serialization, coverage, state keys)
//	statekey    — StateKey/ControlKey implementations stay pure and cheap,
//	              across package boundaries via purity facts
//	nextpkt     — NextPkt must not mutate state on paths returning ok=false
//	internlocal — intern.Local (single-goroutine by contract) must not
//	              escape to other goroutines
//	freelist    — no use-after-release of pooled configurations in
//	              internal/verify
//
// Part B (audit.go) is the static protocol auditor: it exhaustively
// enumerates the joint control states (q_t, q_r) reachable by a registered
// protocol under bounded channel occupancy and certifies or refutes the
// protocol's declared boundness against the paper's Theorem 2.1 k_t·k_r
// bound and the Theorem 3.1/4.1 header-count preconditions.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static analysis pass.
type Analyzer struct {
	// Name is the lint's identifier (used in -<name> flags, diagnostics and
	// //nfvet:allow directives).
	Name string
	// Doc is the one-paragraph description shown by `nfvet help`.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one package's parsed and type-checked form to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Facts is the cross-package channel (facts.go): nil when the driver
	// runs without facts, in which case analyzers degrade to their
	// package-local behavior.
	Facts *FactStore

	diagnostics []Diagnostic
	suppressed  []Diagnostic
	allow       allowIndex
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string

	// Allowed marks a finding suppressed by an //nfvet:allow directive;
	// AllowReason carries the directive's parenthesized justification.
	// Suppressed findings are excluded from exit-status decisions but
	// surfaced by `nfvet check -json` so CI can audit the proof obligations.
	Allowed     bool
	AllowReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a diagnostic. If the offending line (or the line above it)
// carries an //nfvet:allow directive naming this analyzer, the finding is
// recorded as suppressed instead.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if reason, ok := p.allow.allowed(p.Analyzer.Name, position); ok {
		d.Allowed, d.AllowReason = true, reason
		p.suppressed = append(p.suppressed, d)
		return
	}
	p.diagnostics = append(p.diagnostics, d)
}

// allowIndex records, per file and line, the analyzers suppressed by
// //nfvet:allow directives. A directive suppresses findings on its own line
// and on the line directly below it (comment-above style):
//
//	m := cloneMap(src) //nfvet:allow maprange (order-insensitive copy)
//
//	//nfvet:allow maprange (keys are sorted before use)
//	for k := range src {
type allowIndex map[string]map[int][]allowEntry

// allowEntry is one parsed directive: the analyzer it suppresses and the
// parenthesized reason text, e.g. "order-insensitive copy".
type allowEntry struct {
	name   string
	reason string
}

const allowPrefix = "//nfvet:allow "

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				name, rest, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" {
					continue
				}
				reason := strings.TrimSpace(rest)
				reason = strings.TrimSuffix(strings.TrimPrefix(reason, "("), ")")
				pos := fset.Position(c.Slash)
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]allowEntry)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], allowEntry{name: name, reason: reason})
			}
		}
	}
	return idx
}

func (a allowIndex) allowed(analyzer string, pos token.Position) (string, bool) {
	byLine := a[pos.Filename]
	if byLine == nil {
		return "", false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, e := range byLine[line] {
			if e.name == analyzer {
				return e.reason, true
			}
		}
	}
	return "", false
}

// Analyzers returns the full lint suite in registration order: the four
// determinism lints plus the three concurrency/lifetime-hazard lints.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer(),
		GlobalRandAnalyzer(),
		MapRangeAnalyzer(),
		StateKeyAnalyzer(),
		NextPktAnalyzer(),
		InternLocalAnalyzer(),
		FreelistAnalyzer(),
	}
}

// UnitResult is one unit's analysis outcome: the active findings and the
// findings suppressed by //nfvet:allow directives, both sorted by position.
type UnitResult struct {
	Diags      []Diagnostic
	Suppressed []Diagnostic
}

// RunUnit executes the given analyzers over one type-checked package. facts
// may be nil (facts-free mode); with a non-nil store, fact-aware analyzers
// read dependency facts from it and record the unit's exported facts into it.
func RunUnit(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) UnitResult {
	allow := buildAllowIndex(fset, files)
	var res UnitResult
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Facts:    facts,
			allow:    allow,
		}
		a.Run(pass)
		res.Diags = append(res.Diags, pass.diagnostics...)
		res.Suppressed = append(res.Suppressed, pass.suppressed...)
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res
}

// RunAnalyzers executes the given analyzers without facts and returns the
// active diagnostics; the facts-aware entry point is RunUnit.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	return RunUnit(analyzers, fset, files, pkg, info, nil).Diags
}

func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// deterministicPackages is the set of packages whose execution must be
// bit-deterministic: replay re-drives recorded logs through them, the
// fuzzer's coverage signal hashes their state keys, and certificates are
// byte-compared across runs. The paths are import-path suffixes under the
// module root.
var deterministicPackages = []string{
	"internal/adversary",
	"internal/channel",
	"internal/core",
	"internal/fuzz",
	"internal/replay",
	"internal/sim",
	"internal/trace",
	"internal/verify",
}

// mapOrderCriticalPackages extends the deterministic set with the
// substrate packages whose iteration order feeds state keys and channel
// keys directly — including the transport endpoints, whose adapted
// ControlKey quotients the static auditor hashes.
var mapOrderCriticalPackages = append([]string{
	"internal/mset",
	"internal/protocol",
	"internal/transport",
}, deterministicPackages...)

// inPackageSet reports whether the package path is (a suffix match of) one
// of the listed packages. Test binaries compile the package under test with
// an ID like "repro/internal/sim [repro/internal/sim.test]"; the bracketed
// form still has the plain import path, so suffix matching covers it.
func inPackageSet(pkgPath string, set []string) bool {
	for _, s := range set {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file's name ends in _test.go.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// importedPkgName resolves an identifier to the package it names, if it is
// a package qualifier (e.g. the `rand` in rand.Intn).
func importedPkgName(info *types.Info, id *ast.Ident) (*types.PkgName, bool) {
	obj, ok := info.Uses[id]
	if !ok {
		return nil, false
	}
	pn, ok := obj.(*types.PkgName)
	return pn, ok
}

// pkgFuncCall matches a call of the form pkg.Fn(...) where pkg resolves to
// the package with the given import path, returning the function name.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := importedPkgName(info, id)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// isMapType reports whether the expression's type is (an alias of) a map.
func isMapType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
