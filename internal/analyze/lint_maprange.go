package analyze

import (
	"go/ast"
)

// MapRangeAnalyzer forbids ranging over maps in the map-order-critical
// packages. Go randomizes map iteration order per run, so a map range on
// any path that feeds hashing (fuzz coverage points, corpus content
// addresses), serialization (NFT/NFZI codecs, certificates) or state keys
// makes the output run-dependent — exactly the nondeterminism the replay
// and fuzzing stack cannot tolerate.
//
// Two rules:
//
//  1. In non-test files of the critical packages, every `range` over a
//     map-typed expression is flagged. Sites that are genuinely
//     order-insensitive (copying into another map, set membership
//     accumulation, collect-then-sort) carry an explicit
//     `//nfvet:allow maprange (reason)` justification.
//
//  2. Everywhere — including tests of any package — ranging directly over
//     the result of a Registry() call is flagged: protocol.Registry()
//     returns a map, and iterating it directly runs cases in a different
//     order every execution. Use protocol.Names() and index the registry.
func MapRangeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maprange",
		Doc: "forbid map iteration on determinism-critical paths: no `range` over " +
			"maps in internal/{mset,protocol,adversary,channel,core,fuzz,replay,sim,trace,verify} " +
			"non-test code (annotate provably order-insensitive sites with " +
			"//nfvet:allow maprange), and no `range Registry()` anywhere — iterate " +
			"protocol.Names() instead",
		Run: runMapRange,
	}
}

func runMapRange(pass *Pass) {
	critical := inPackageSet(pass.Pkg.Path(), mapOrderCriticalPackages)
	for _, f := range pass.Files {
		testFile := isTestFile(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if call, ok := rng.X.(*ast.CallExpr); ok && isRegistryCall(call) && isMapType(pass.Info, rng.X) {
				pass.Report(rng.Pos(), "ranging directly over %s iterates in random order; range protocol.Names() and index the registry", callName(call))
				return true
			}
			if critical && !testFile && isMapType(pass.Info, rng.X) {
				pass.Report(rng.Pos(), "map iteration order is randomized; iterate a sorted view, or annotate an order-insensitive site with //nfvet:allow maprange (reason)")
			}
			return true
		})
	}
}

// isRegistryCall matches calls whose callee is named Registry — the
// conventional name for name→implementation maps in this codebase.
func isRegistryCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "Registry"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Registry"
	}
	return false
}

// callName renders a call's callee for diagnostics (pkg.Fn() or Fn()).
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name + "()"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name + "()"
		}
		return fun.Sel.Name + "()"
	}
	return "call"
}
