package analyze

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden audit reports")

// goldenConfig pins the enumeration parameters the golden reports were
// produced with; the reports are deterministic functions of these.
var goldenConfig = AuditConfig{Occupancy: 2, MaxStates: 1 << 14}

// TestAuditGolden pins the complete audit report for a representative set of
// protocols: the two finite-state specimens (altbit, livelock), the two
// counting protocols whose control space is finite only under the declared
// ControlKey quotients (cntk4, cntlinear), and the deliberately unbounded
// naive protocol (seqnum). Regenerate with `go test -run TestAuditGolden
// -update ./internal/analyze`.
func TestAuditGolden(t *testing.T) {
	cases := []struct {
		name string
		p    protocol.Protocol
	}{
		{"altbit", protocol.NewAltBit()},
		{"livelock", protocol.NewLivelock()},
		{"cntk4", protocol.NewCntK(4)},
		{"cntlinear", protocol.NewCntLinear()},
		{"seqnum", protocol.NewSeqNum()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Audit(tc.p, goldenConfig).String()
			path := filepath.Join("testdata", "audit", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("audit report drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestAuditCertifiesRegistry runs the audit over every registered protocol
// plus the broken specimens and checks the verdict class: nothing in the
// tree may FAIL its own declaration.
func TestAuditCertifiesRegistry(t *testing.T) {
	want := map[string]Verdict{
		"altbit":    VerdictCertified,
		"cntk4":     VerdictCertified,
		"cntlinear": VerdictCertified,
		"cheat1":    VerdictCertified,
		"cntexp":    VerdictConsistent,
		"seqnum":    VerdictConsistent,
		"livelock":  VerdictCertified,
		"cntnobind": VerdictCertified,
		"stabdl2":   VerdictCertified,
		"stabnaive": VerdictCertified,
	}
	reg := protocol.Registry()
	ps := []protocol.Protocol{protocol.NewLivelock(), protocol.NewCntNoBind()}
	for _, name := range protocol.Names() {
		ps = append(ps, reg[name])
	}
	// stabdl2's 8-label alphabet needs ~35k joint states to exhaust, so the
	// registry sweep runs with a larger budget than the pinned goldens.
	sweepConfig := AuditConfig{Occupancy: goldenConfig.Occupancy, MaxStates: 1 << 16}
	for _, p := range ps {
		rep := Audit(p, sweepConfig)
		if rep.Verdict != want[p.Name()] {
			t.Errorf("%s: verdict %s (failures %v), want %s", p.Name(), rep.Verdict, rep.Failures, want[p.Name()])
		}
		if rep.Exhausted && rep.PumpingBound != rep.KT*rep.KR {
			t.Errorf("%s: PumpingBound %d != k_t*k_r = %d*%d", p.Name(), rep.PumpingBound, rep.KT, rep.KR)
		}
	}
}

// fixtureProto is a minimal stop-and-wait protocol for audit tests: the
// transmitter sends header "x" until an "a" ack arrives. leak switches on a
// deliberate state leak — a sent-packet counter folded into the transmitter
// StateKey, unbounded control state the audit must refuse to certify.
type fixtureProto struct {
	name   string
	bounds *protocol.Bounds
	leak   bool
}

func (f *fixtureProto) Name() string             { return f.name }
func (f *fixtureProto) HeaderBound() (int, bool) { return 2, true }
func (f *fixtureProto) Bounds() protocol.Bounds  { return *f.bounds }
func (f *fixtureProto) New(_, _ channel.Genie) (protocol.Transmitter, protocol.Receiver) {
	return &fixtureT{leak: f.leak}, &fixtureR{}
}

// declared returns the protocol as the audit sees it: with a Bounds
// declaration when one is set, as a bare Protocol otherwise.
func (f *fixtureProto) declared() protocol.Protocol {
	if f.bounds == nil {
		return bareProto{f}
	}
	return f
}

// bareProto strips the Bounded implementation (explicit forwarding, not
// embedding, so Bounds does not leak through).
type bareProto struct{ f *fixtureProto }

func (b bareProto) Name() string             { return b.f.name }
func (b bareProto) HeaderBound() (int, bool) { return b.f.HeaderBound() }
func (b bareProto) New(d, a channel.Genie) (protocol.Transmitter, protocol.Receiver) {
	return b.f.New(d, a)
}

type fixtureT struct {
	busy bool
	leak bool
	sent int
}

func (t *fixtureT) SendMsg(string)        { t.busy = true }
func (t *fixtureT) DeliverPkt(ioa.Packet) { t.busy = false }
func (t *fixtureT) Busy() bool            { return t.busy }
func (t *fixtureT) StateSize() int        { return 1 }
func (t *fixtureT) Clone() protocol.Transmitter {
	c := *t
	return &c
}
func (t *fixtureT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	t.sent++
	return ioa.Packet{Header: "x", Payload: "m"}, true
}
func (t *fixtureT) StateKey() string {
	k := "fixT{busy=" + strconv.FormatBool(t.busy)
	if t.leak {
		// The leak: unbounded bookkeeping in the control state.
		k += " sent=" + strconv.Itoa(t.sent)
	}
	return k + "}"
}

type fixtureR struct {
	delivered []string
	acks      int
}

func (r *fixtureR) DeliverPkt(p ioa.Packet) {
	r.delivered = append(r.delivered, p.Payload)
	r.acks++
}
func (r *fixtureR) NextPkt() (ioa.Packet, bool) {
	if r.acks == 0 {
		return ioa.Packet{}, false
	}
	r.acks--
	return ioa.Packet{Header: "a"}, true
}
func (r *fixtureR) TakeDelivered() []string {
	d := r.delivered
	r.delivered = nil
	return d
}
func (r *fixtureR) StateSize() int { return 1 }
func (r *fixtureR) Clone() protocol.Receiver {
	c := *r
	c.delivered = append([]string(nil), r.delivered...)
	return &c
}
func (r *fixtureR) StateKey() string {
	return "fixR{acks=" + strconv.Itoa(r.acks) + " pend=" + strconv.Itoa(len(r.delivered)) + "}"
}

func auditFailures(t *testing.T, rep *AuditReport, substrings ...string) {
	t.Helper()
	if rep.Verdict != VerdictFail {
		t.Fatalf("verdict %s (failures %v), want FAIL", rep.Verdict, rep.Failures)
	}
	joined := strings.Join(rep.Failures, "\n")
	for _, sub := range substrings {
		if !strings.Contains(joined, sub) {
			t.Errorf("failures %v do not mention %q", rep.Failures, sub)
		}
	}
}

// TestAuditFlagsStateLeak: a protocol that declares itself state-bounded but
// folds an unbounded counter into its control state must fail the audit.
func TestAuditFlagsStateLeak(t *testing.T) {
	p := &fixtureProto{name: "leaky", bounds: &protocol.Bounds{StateBounded: true}, leak: true}
	rep := Audit(p, AuditConfig{Occupancy: 2, MaxStates: 256})
	if rep.Exhausted {
		t.Fatalf("leaky protocol exhausted %d states; the leak did not leak", rep.States)
	}
	auditFailures(t, rep, "declared state-bounded but the enumeration exceeded the 256-state budget")
}

// TestAuditFlagsUnderstatedDeclaration: a finite protocol that declares
// itself unbounded is also a contradiction — Theorem 2.1 applies after all.
func TestAuditFlagsUnderstatedDeclaration(t *testing.T) {
	p := &fixtureProto{name: "understated", bounds: &protocol.Bounds{StateBounded: false}}
	rep := Audit(p, goldenConfig)
	if !rep.Exhausted {
		t.Fatalf("fixture protocol did not exhaust (%d states)", rep.States)
	}
	auditFailures(t, rep, "declared state-unbounded but only")
}

// TestAuditFlagsCeilingViolations: declared k_t / k_r / header ceilings
// below the observation each produce a failure.
func TestAuditFlagsCeilingViolations(t *testing.T) {
	p := &fixtureProto{name: "lowceil", bounds: &protocol.Bounds{StateBounded: true, KT: 1, KR: 1, Headers: 1}}
	rep := Audit(p, goldenConfig)
	if !rep.Exhausted {
		t.Fatalf("fixture protocol did not exhaust (%d states)", rep.States)
	}
	auditFailures(t, rep,
		"exceeds declared ceiling 1",
		"distinct headers exceeds declared ceiling 1")
}

// TestAuditObservedWithoutDeclaration: no Bounds declaration means the
// report is informational, not a failure.
func TestAuditObservedWithoutDeclaration(t *testing.T) {
	p := &fixtureProto{name: "plain"}
	rep := Audit(p.declared(), goldenConfig)
	if rep.Verdict != VerdictObserved {
		t.Fatalf("verdict %s, want OBSERVED", rep.Verdict)
	}
	if rep.Declared != nil {
		t.Fatalf("Declared = %+v, want nil", rep.Declared)
	}
}
