package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// This file is the standalone package loader behind `nfvet check` and the
// analyzer fixture tests. It shells out to `go list -export -deps -json`,
// which resolves packages and materializes their compiled export data from
// the build cache without network access, then type-checks source against
// that export data — the same separate-compilation shape `go vet` drives
// through the unitchecker protocol, minus cmd/go as the orchestrator.

// LoadedPackage is one parsed, type-checked package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
}

// goList resolves the patterns (relative to dir) together with their full
// dependency closure, compiling export data as needed.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportMap resolves the patterns and returns import path → export data
// file for every package in their dependency closure.
func ExportMap(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// LoadPackages parses and type-checks the packages matching the patterns
// (as resolved by the go tool from dir), returning them sorted by import
// path. Only non-test library sources are loaded; `go vet -vettool` remains
// the authority for test files.
func LoadPackages(dir string, patterns ...string) ([]*LoadedPackage, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	var targets []*listedPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []*LoadedPackage
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by the standalone loader", t.ImportPath)
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := TypeCheck(fset, t.ImportPath, files, exports)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		out = append(out, &LoadedPackage{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return out, nil
}

// TopoOrder returns the loaded packages in dependency order: every package
// appears after all of its imports that are themselves in the set. Imports
// outside the set (std, unloaded packages) are ignored — their facts simply
// aren't available, and analyzers degrade to package-local precision for
// calls into them. The order is deterministic: DFS from the import-path-
// sorted roots over the type-checker's source-ordered import lists.
func TopoOrder(pkgs []*LoadedPackage) []*LoadedPackage {
	byPath := make(map[string]*LoadedPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	visited := make(map[string]bool, len(pkgs))
	out := make([]*LoadedPackage, 0, len(pkgs))
	var visit func(p *LoadedPackage)
	visit = func(p *LoadedPackage) {
		if visited[p.ImportPath] {
			return
		}
		visited[p.ImportPath] = true
		for _, imp := range p.Pkg.Imports() {
			if q := byPath[imp.Path()]; q != nil {
				visit(q)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// AnalyzeModule is the in-process counterpart of the go vet facts protocol:
// it runs the analyzers over the loaded packages in dependency order,
// accumulating each package's exported facts in memory so downstream
// packages see upstream purity verdicts. With withFacts false every package
// is analyzed fact-free (the pre-facts behavior), which is the contrast the
// facts fixtures assert on.
func AnalyzeModule(analyzers []*Analyzer, pkgs []*LoadedPackage, withFacts bool) UnitResult {
	sets := make(map[string]*FactSet)
	var res UnitResult
	for _, p := range TopoOrder(pkgs) {
		var store *FactStore
		if withFacts {
			store = NewFactStoreFrom(sets)
		}
		r := RunUnit(analyzers, p.Fset, p.Files, p.Pkg, p.Info, store)
		if withFacts {
			sets[p.ImportPath] = store.Exported()
		}
		res.Diags = append(res.Diags, r.Diags...)
		res.Suppressed = append(res.Suppressed, r.Suppressed...)
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res
}

// TypeCheck type-checks already-parsed files under the given import path,
// resolving imports through the export-data map.
func TypeCheck(fset *token.FileSet, importPath string, files []*ast.File, exports map[string]string) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := NewInfo()
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewInfo allocates the types.Info maps the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
