package analyze

import (
	"go/ast"
)

// wallclockBanned lists the package-level time functions that read the
// ambient clock or schedule on it. Pure constructors and arithmetic
// (time.Duration, time.Unix, d.Seconds()) are fine — the lint targets reads
// of *now*, which differ between a recording run and its replay.
var wallclockBanned = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "schedules on the wall clock",
	"After":     "schedules on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"Tick":      "schedules on the wall clock",
	"NewTicker": "schedules on the wall clock",
	"NewTimer":  "schedules on the wall clock",
}

// WallclockAnalyzer forbids ambient-clock reads in the deterministic
// packages. Campaign timing and rate reporting must flow through an
// injectable clock seam (fuzz.Config.Clock); the seam's own default is the
// one allowlisted call site (//nfvet:allow wallclock).
func WallclockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc: "forbid time.Now/time.Since and friends in deterministic packages " +
			"(internal/{adversary,channel,core,fuzz,replay,sim,trace,verify}); replayed and " +
			"fuzzed executions must not observe the ambient clock — inject a clock " +
			"through configuration instead, and mark the injection seam's default " +
			"with //nfvet:allow wallclock",
		Run: runWallclock,
	}
}

func runWallclock(pass *Pass) {
	if !inPackageSet(pass.Pkg.Path(), deterministicPackages) {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			// Tests may time themselves; determinism applies to the
			// packages' library code.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := importedPkgName(pass.Info, id)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if why, banned := wallclockBanned[sel.Sel.Name]; banned {
				pass.Report(sel.Pos(), "time.%s %s; deterministic packages must use an injected clock", sel.Sel.Name, why)
			}
			return true
		})
	}
}
