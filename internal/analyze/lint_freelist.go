package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FreelistAnalyzer does local use-after-release dataflow in internal/verify.
// The explorer recycles Config allocations through a freelist: release(cfg)
// nils the endpoint pointers and pushes cfg onto e.free, and the next clone
// call may hand the same backing object out again. Reading cfg after
// release(cfg) is therefore a read of arbitrarily-recycled memory — the
// worst kind of nondeterminism for a tool whose outputs are byte-compared.
// The scan is path-sensitive in the same conservative style as the nextpkt
// analyzer: walking each function body in order, it tracks which local
// variables have been released on some path to the current point, and flags
// any subsequent read (or field write, or double release) of such a variable
// before it is wholesale-reassigned.
func FreelistAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "freelist",
		Doc: "internal/verify freelist hygiene: after release(cfg) the object " +
			"may be recycled by the next clone — no read, field write, or " +
			"second release of cfg may follow on that path until cfg is " +
			"reassigned",
		Run: runFreelist,
	}
}

func runFreelist(pass *Pass) {
	if !inPackageSet(pass.Pkg.Path(), []string{"internal/verify"}) {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &flScan{pass: pass, reported: make(map[token.Pos]bool)}
			s.scanList(fd.Body.List, nil, flCtx{})
		}
	}
}

// flState maps a released local variable to the position of its release.
// States are treated as immutable values: every mutation copies.
type flState map[*types.Var]token.Pos

func (st flState) clone() flState {
	out := make(flState, len(st))
	for v, p := range st {
		out[v] = p
	}
	return out
}

func flUnion(a flState, bs ...flState) flState {
	out := a.clone()
	for _, b := range bs {
		for v, p := range b {
			if _, ok := out[v]; !ok {
				out[v] = p
			}
		}
	}
	return out
}

type flTarget struct {
	state flState
	hit   bool
}

func (t *flTarget) add(st flState) {
	if t == nil {
		return
	}
	t.hit = true
	t.state = flUnion(t.state, st)
}

type flCtx struct {
	cont *flTarget
	brk  *flTarget
}

type flScan struct {
	pass     *Pass
	reported map[token.Pos]bool
}

func (s *flScan) scanList(stmts []ast.Stmt, st flState, ctx flCtx) (flState, bool) {
	for _, stmt := range stmts {
		var term bool
		st, term = s.scanStmt(stmt, st, ctx)
		if term {
			return st, true
		}
	}
	return st, false
}

func (s *flScan) scanStmt(stmt ast.Stmt, st flState, ctx flCtx) (flState, bool) {
	switch stmt := stmt.(type) {
	case *ast.ReturnStmt:
		for _, r := range stmt.Results {
			s.checkUses(r, st)
		}
		// Control leaves the function: no released state flows to any
		// fall-through successor.
		return nil, true

	case *ast.ExprStmt:
		if v, pos, ok := s.releaseCall(stmt.X); ok {
			if _, released := st[v]; released {
				s.report(pos, "releases %s twice; the first release already queued it for recycling", v.Name())
			}
			st = st.clone()
			st[v] = pos
			return st, false
		}
		s.checkUses(stmt.X, st)
		return st, false

	case *ast.AssignStmt:
		for _, rhs := range stmt.Rhs {
			s.checkUses(rhs, st)
		}
		for _, lhs := range stmt.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				// Wholesale reassignment revives the variable.
				var obj types.Object = s.pass.Info.Defs[id]
				if obj == nil {
					obj = s.pass.Info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					if _, released := st[v]; released {
						st = st.clone()
						delete(st, v)
					}
				}
				continue
			}
			// x.f = v or x[i] = v is a write through a released object.
			s.checkUses(lhs, st)
		}
		return st, false

	case *ast.IncDecStmt:
		s.checkUses(stmt.X, st)
		return st, false

	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.checkUses(v, st)
					}
				}
			}
		}
		return st, false

	case *ast.SendStmt:
		s.checkUses(stmt.Chan, st)
		s.checkUses(stmt.Value, st)
		return st, false

	case *ast.GoStmt:
		s.checkUses(stmt.Call, st)
		return st, false

	case *ast.DeferStmt:
		s.checkUses(stmt.Call, st)
		return st, false

	case *ast.LabeledStmt:
		return s.scanStmt(stmt.Stmt, st, ctx)

	case *ast.BlockStmt:
		return s.scanList(stmt.List, st, ctx)

	case *ast.IfStmt:
		if stmt.Init != nil {
			st, _ = s.scanStmt(stmt.Init, st, ctx)
		}
		s.checkUses(stmt.Cond, st)
		bodySt, bodyTerm := s.scanList(stmt.Body.List, st, ctx)
		out := st
		elseTerm := false
		if stmt.Else != nil {
			es, et := s.scanStmt(stmt.Else, st, ctx)
			elseTerm = et
			if !et {
				out = flUnion(out, es)
			}
		}
		if !bodyTerm {
			out = flUnion(out, bodySt)
		}
		return out, bodyTerm && elseTerm && stmt.Else != nil

	case *ast.ForStmt:
		if stmt.Init != nil {
			st, _ = s.scanStmt(stmt.Init, st, ctx)
		}
		s.checkUses(stmt.Cond, st)
		return s.scanLoop(stmt.Body.List, stmt.Post, st), false

	case *ast.RangeStmt:
		s.checkUses(stmt.X, st)
		return s.scanLoop(stmt.Body.List, nil, st), false

	case *ast.BranchStmt:
		switch stmt.Tok {
		case token.CONTINUE:
			ctx.cont.add(st)
			return nil, true
		case token.BREAK:
			ctx.brk.add(st)
			return nil, true
		default:
			return st, false
		}

	case *ast.SwitchStmt:
		if stmt.Init != nil {
			st, _ = s.scanStmt(stmt.Init, st, ctx)
		}
		s.checkUses(stmt.Tag, st)
		return s.scanClauses(stmt.Body.List, st, ctx)

	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			st, _ = s.scanStmt(stmt.Init, st, ctx)
		}
		return s.scanClauses(stmt.Body.List, st, ctx)

	case *ast.SelectStmt:
		return s.scanClauses(stmt.Body.List, st, ctx)

	default:
		return st, false
	}
}

// scanLoop mirrors npScan.scanLoop: two passes so a release late in the body
// is seen by a read early in the next iteration; reports dedup by position.
func (s *flScan) scanLoop(body []ast.Stmt, post ast.Stmt, st flState) flState {
	var cont1, brk1 flTarget
	p1, _ := s.scanList(body, st, flCtx{cont: &cont1, brk: &brk1})
	if post != nil {
		p1, _ = s.scanStmt(post, p1, flCtx{})
	}
	carried := flUnion(st, p1, cont1.state)
	var cont2, brk2 flTarget
	p2, _ := s.scanList(body, carried, flCtx{cont: &cont2, brk: &brk2})
	return flUnion(st, p2, cont2.state, brk2.state)
}

func (s *flScan) scanClauses(clauses []ast.Stmt, st flState, ctx flCtx) (flState, bool) {
	var brk flTarget
	inner := flCtx{cont: ctx.cont, brk: &brk}
	out := flState(nil)
	allTerm := true
	hasDefault := false
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				s.checkUses(e, st)
			}
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				st, _ = s.scanStmt(cl.Comm, st, inner)
			}
			body = cl.Body
		default:
			continue
		}
		cs, ct := s.scanList(body, st, inner)
		if !ct {
			out = flUnion(out, cs)
		}
		allTerm = allTerm && ct
	}
	out = flUnion(out, brk.state)
	if !hasDefault {
		out = flUnion(out, st)
	}
	return out, allTerm && hasDefault && !brk.hit
}

// releaseCall matches `release(x)` or `recv.release(x)` where the callee is
// declared in the package under analysis and x is a plain local identifier.
func (s *flScan) releaseCall(e ast.Expr) (*types.Var, token.Pos, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, token.NoPos, false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, token.NoPos, false
	}
	if id.Name != "release" {
		return nil, token.NoPos, false
	}
	fn, ok := s.pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != s.pass.Pkg {
		return nil, token.NoPos, false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, token.NoPos, false
	}
	v, ok := s.pass.Info.Uses[arg].(*types.Var)
	if !ok || v.IsField() {
		return nil, token.NoPos, false
	}
	return v, call.Pos(), true
}

// checkUses reports every read of a released variable under expr.
func (s *flScan) checkUses(expr ast.Expr, st flState) {
	if expr == nil || len(st) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.pass.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, released := st[v]; released {
			s.report(id.Pos(), "reads %s after release(%s); the freelist may already have recycled it — move the release after the last read", id.Name, id.Name)
		}
		return true
	})
}

func (s *flScan) report(pos token.Pos, format string, args ...any) {
	if s.reported[pos] {
		return
	}
	s.reported[pos] = true
	s.pass.Report(pos, format, args...)
}
