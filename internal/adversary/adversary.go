// Package adversary implements the paper's lower-bound constructions
// (Mansour & Schieber, PODC '89, Sections 3–5) as executable attack
// procedures against concrete protocols.
//
// The heart of every proof in the paper is the same move: the physical
// layer "simulates" an extension β of the execution by replaying delayed
// in-transit copies of the packets the protocol would have sent, producing
// an execution with rm(α') = sm(α') + 1 — an invalid execution that
// violates the safety property DL1. ReplaySearch performs that move as a
// memoized depth-first search over stale-copy deliveries and returns a
// machine-checkable Certificate when it succeeds.
//
// HeaderBudget packages the Theorem 3.1 construction: accumulate in-transit
// copies of every header in the protocol's (bounded) alphabet, then run the
// replay search. Pump packages the Theorem 2.1 mechanism: run the
// optimal-from-now channel and detect a repeated joint endpoint state
// before any message is delivered, which certifies a pumpable livelock.
package adversary

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// ErrNoTrace is returned when an attack that must produce a checkable
// certificate is run against a runner without trace recording.
var ErrNoTrace = errors.New("adversary: runner must be created with RecordTrace")

// Certificate is a machine-checkable witness of a safety violation: a
// complete execution trace together with the checker verdict and the replay
// sequence that produced it.
type Certificate struct {
	// Protocol is the attacked protocol's name.
	Protocol string `json:"protocol"`
	// Trace is the full invalid execution.
	Trace ioa.Trace `json:"trace"`
	// Violation is the checker verdict on Trace (always non-nil).
	Violation *ioa.Violation `json:"violation"`
	// Replayed lists the stale copies delivered, in order.
	Replayed []ioa.Packet `json:"replayed"`
	// ExtraDeliveries lists payloads delivered beyond the valid ones.
	ExtraDeliveries []string `json:"extraDeliveries,omitempty"`
	// Log is the replayable event log of the violating execution, ending in
	// the checker verdict. It is present when the attacked runner carried a
	// trace log (sim.Config.TraceLog) or the construction was run with
	// ReplayConfig.RecordOps; internal/replay re-drives it and
	// replay.Shrink minimizes it. Serialized via the NFT trace format, not
	// JSON.
	Log *trace.Log `json:"-"`
}

// String renders a human-readable certificate.
func (c *Certificate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "VIOLATION CERTIFICATE — protocol %s\n", c.Protocol)
	fmt.Fprintf(&b, "verdict: %v\n", c.Violation)
	fmt.Fprintf(&b, "replayed stale copies:")
	for _, p := range c.Replayed {
		fmt.Fprintf(&b, " %s", p)
	}
	b.WriteByte('\n')
	if len(c.ExtraDeliveries) > 0 {
		fmt.Fprintf(&b, "spurious deliveries: %v\n", c.ExtraDeliveries)
	}
	fmt.Fprintf(&b, "execution (%d events):\n%s", len(c.Trace), c.Trace.String())
	return b.String()
}

// Recheck independently re-verifies the certificate through BOTH checker
// formulations: the hand-coded property checkers of internal/ioa and the
// specification automata of internal/spec must each reject the recorded
// trace (the spec formulation is at least as strict, so a genuine
// violation fails both).
func (c *Certificate) Recheck() error {
	err := ioa.CheckSafety(c.Trace)
	if err == nil {
		return errors.New("adversary: certificate trace passes the safety checkers")
	}
	v, ok := ioa.AsViolation(err)
	if !ok {
		return fmt.Errorf("adversary: unexpected checker error: %w", err)
	}
	if c.Violation == nil || v.Property != c.Violation.Property {
		return fmt.Errorf("adversary: certificate property %v does not match recheck %v", c.Violation, v)
	}
	if spec.CheckTraceSafety(c.Trace) == nil {
		return errors.New("adversary: certificate trace conforms to the specification automata")
	}
	return nil
}

// ReplayConfig bounds the replay search.
type ReplayConfig struct {
	// MaxDepth is the maximum number of stale copies delivered along one
	// branch. Defaults to 16.
	MaxDepth int
	// MaxNodes caps the total number of explored deliveries. Defaults to
	// 1 << 16.
	MaxNodes int
	// RecordOps attaches a replayable trace log to the internally
	// constructed runner of HeaderBudget and Induction, so a successful
	// attack's Certificate carries a Log. ReplaySearch itself records
	// whenever the caller's runner has a TraceLog, regardless of this flag.
	RecordOps bool
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = 16
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 1 << 16
	}
	return c
}

// ReplayReport is the outcome of a replay search.
type ReplayReport struct {
	// Cert is the violation certificate, or nil if the protocol resisted
	// every explored replay schedule.
	Cert *Certificate
	// Nodes is the number of stale deliveries explored.
	Nodes int
	// Truncated reports whether the search hit MaxNodes before exhausting
	// the (memoized) state space.
	Truncated bool
}

// ReplaySearch explores deliveries of stale in-transit copies on the t→r
// channel to the receiver, looking for an extension of the current
// execution that violates safety (DL1/DL2). This is the executable form of
// the proofs' "the extension β can be simulated by the physical layer". The
// caller's runner must record traces; it is never mutated.
func ReplaySearch(r *sim.Runner, cfg ReplayConfig) (ReplayReport, error) {
	if r.Recorder() == nil {
		return ReplayReport{}, ErrNoTrace
	}
	cfg = cfg.withDefaults()
	var rep ReplayReport
	visited := make(map[string]bool)

	var dfs func(f *sim.Runner, path []ioa.Packet, depth int) *Certificate
	dfs = func(f *sim.Runner, path []ioa.Packet, depth int) *Certificate {
		if depth >= cfg.MaxDepth {
			return nil
		}
		for _, p := range f.ChData.Packets() {
			if rep.Nodes >= cfg.MaxNodes {
				rep.Truncated = true
				return nil
			}
			rep.Nodes++
			child := f.Fork(channel.DelayAll(), channel.DelayAll())
			if err := child.DeliverStale(ioa.TtoR, p); err != nil {
				// Impossible: p was listed as in transit.
				continue
			}
			newPath := append(append([]ioa.Packet(nil), path...), p)
			if err := ioa.CheckSafety(child.Recorder().Trace()); err != nil {
				v, _ := ioa.AsViolation(err)
				cert := &Certificate{
					Protocol:        protocolName(r),
					Trace:           child.Recorder().Trace(),
					Violation:       v,
					Replayed:        newPath,
					ExtraDeliveries: extraDeliveries(r, child),
				}
				if tl := child.TraceLog(); tl != nil {
					// The fork chain cloned the op log along the winning
					// branch; seal it with the verdict.
					cl := tl.Clone()
					cl.Emit(trace.Event{Kind: trace.KindVerdict, Property: v.Property, Index: v.Index, Detail: v.Detail})
					cert.Log = cl
				}
				return cert
			}
			key := child.R.StateKey() + "\x1f" + child.ChData.Key()
			if !visited[key] {
				visited[key] = true
				if c := dfs(child, newPath, depth+1); c != nil {
					return c
				}
			}
		}
		return nil
	}

	rep.Cert = dfs(r, nil, 0)
	return rep, nil
}

// opsLog returns a fresh trace log when cfg asks for op recording.
func opsLog(cfg ReplayConfig) *trace.Log {
	if !cfg.RecordOps {
		return nil
	}
	return trace.NewLog(nil)
}

func protocolName(r *sim.Runner) string {
	// The transmitter's state key begins with the protocol's type tag;
	// extract a short name from it for certificates.
	key := r.T.StateKey()
	if i := strings.IndexByte(key, '{'); i > 0 {
		return strings.TrimSuffix(key[:i], "T")
	}
	return key
}

func extraDeliveries(before, after *sim.Runner) []string {
	b, a := before.Delivered(), after.Delivered()
	if len(a) <= len(b) {
		return nil
	}
	return append([]string(nil), a[len(b):]...)
}

// PumpReport is the outcome of a Pump run (Theorem 2.1's mechanism).
type PumpReport struct {
	// Closed reports that the optimal-from-now extension delivered the
	// outstanding message; Cost is its sp^{t→r} count.
	Closed bool
	Cost   int
	// Pumped reports that a joint endpoint state repeated before any
	// delivery: the channel can loop the segment between the repeats
	// forever, so the execution extends to an infinite one with no
	// receive_msg — a liveness (DL3) violation witness.
	Pumped bool
	// RepeatedState is the joint state key that recurred.
	RepeatedState string
	// Steps is the number of optimal-channel steps taken.
	Steps int
}

// Pump runs the optimal-from-now channel behaviour from the runner's
// current (semi-valid) state and watches the joint endpoint state after
// every step. It terminates with Closed when the outstanding message is
// confirmed, or with Pumped when a joint state repeats without progress —
// the pumping argument in the proof of Theorem 2.1. The caller's runner is
// never mutated.
func Pump(r *sim.Runner, budget int) (PumpReport, error) {
	f := r.Fork(channel.Reliable(), channel.Reliable())
	if !f.T.Busy() {
		return PumpReport{Closed: true}, nil
	}
	start := f.Result().Metrics.TotalDataPackets
	startDelivered := len(f.Delivered())
	seen := map[string]bool{jointKey(f): true}
	for steps := 1; steps <= budget; steps++ {
		progressed := f.StepTransmit()
		f.DrainAcks()
		if !f.T.Busy() {
			return PumpReport{
				Closed: true,
				Cost:   f.Result().Metrics.TotalDataPackets - start,
				Steps:  steps,
			}, nil
		}
		if !progressed {
			return PumpReport{}, errors.New("adversary: pump: transmitter busy with no enabled output")
		}
		if len(f.Delivered()) > startDelivered {
			// Progress: restart repeat detection (the theorem's γ has no
			// receive_msg actions).
			startDelivered = len(f.Delivered())
			seen = make(map[string]bool)
		}
		key := jointKey(f)
		if seen[key] {
			return PumpReport{Pumped: true, RepeatedState: key, Steps: steps}, nil
		}
		seen[key] = true
	}
	return PumpReport{}, fmt.Errorf("adversary: pump: no repeat and no close within %d steps", budget)
}

func jointKey(f *sim.Runner) string {
	return f.T.StateKey() + "\x1f" + f.R.StateKey()
}

// HeaderBudgetReport is the outcome of the Theorem 3.1 construction.
type HeaderBudgetReport struct {
	// Bounded is false when the protocol's alphabet grows with the number
	// of messages, making the construction inapplicable (the protocol
	// "pays" with ≥ n headers instead — the theorem's other horn).
	Bounded bool
	// HeadersAccumulated lists the data headers with stranded copies.
	HeadersAccumulated []string
	// CopiesPerHeader is the number of stranded copies per header.
	CopiesPerHeader int
	// Replay is the replay-search outcome over the accumulated copies.
	Replay ReplayReport
}

// HeaderBudget runs the Theorem 3.1 construction against a protocol: over
// `messages` deliveries, delay the first `copies` copies of every distinct
// data header (accumulating stale copies of the protocol's whole alphabet),
// then search for a replay schedule that produces an invalid execution.
//
// For a protocol with an unbounded alphabet the construction is
// inapplicable and the report says so — that protocol already pays the
// theorem's price in headers.
func HeaderBudget(p protocol.Protocol, copies, messages int, cfg ReplayConfig) (HeaderBudgetReport, error) {
	if _, bounded := p.HeaderBound(); !bounded {
		return HeaderBudgetReport{Bounded: false}, nil
	}
	r := sim.NewRunner(sim.Config{
		Protocol:    p,
		DataPolicy:  channel.DelayPerHeader(copies),
		RecordTrace: true,
		TraceLog:    opsLog(cfg),
	})
	for i := 0; i < messages; i++ {
		if err := r.RunMessage("m" + fmt.Sprint(i)); err != nil {
			return HeaderBudgetReport{Bounded: true}, fmt.Errorf("adversary: header budget setup: %w", err)
		}
	}
	headers := make(map[string]bool)
	for _, pk := range r.ChData.Packets() {
		headers[pk.Header] = true
	}
	hs := make([]string, 0, len(headers))
	//nfvet:allow maprange (keys are collected then sorted before use)
	for h := range headers {
		hs = append(hs, h)
	}
	sort.Strings(hs)
	rep, err := ReplaySearch(r, cfg)
	if err != nil {
		return HeaderBudgetReport{Bounded: true}, err
	}
	return HeaderBudgetReport{
		Bounded:            true,
		HeadersAccumulated: hs,
		CopiesPerHeader:    copies,
		Replay:             rep,
	}, nil
}
