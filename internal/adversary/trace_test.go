package adversary

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestCertificateLogReplayable: an attack found against a trace-logged
// runner must yield a certificate log that internal/replay re-drives to the
// same violation, and that replay.Shrink can minimize.
func TestCertificateLogReplayable(t *testing.T) {
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    protocol.NewAltBit(),
		DataPolicy:  channel.DelayFirst(1),
		RecordTrace: true,
		TraceLog:    l,
	})
	for i := 0; i < 2; i++ {
		if err := r.RunMessage("m" + string(rune('0'+i))); err != nil {
			t.Fatalf("setup message %d: %v", i, err)
		}
	}
	rep, err := ReplaySearch(r, ReplayConfig{})
	if err != nil || rep.Cert == nil {
		t.Fatalf("no certificate: %v", err)
	}
	if rep.Cert.Log == nil {
		t.Fatal("certificate carries no trace log despite TraceLog runner")
	}
	v, ok := rep.Cert.Log.Verdict()
	if !ok || v == nil || v.Property != rep.Cert.Violation.Property {
		t.Fatalf("log verdict %v does not seal the certificate violation %v", v, rep.Cert.Violation)
	}

	rr, err := replay.Run(rep.Cert.Log)
	if err != nil {
		t.Fatalf("replaying certificate log: %v", err)
	}
	if rr.Verdict == nil || rr.Verdict.Property != rep.Cert.Violation.Property {
		t.Fatalf("replay verdict %v, want %v", rr.Verdict, rep.Cert.Violation)
	}
	if !rr.VerdictMatches || rr.Divergence != nil {
		t.Fatalf("certificate log is not a faithful recording: matches=%v divergence=%v",
			rr.VerdictMatches, rr.Divergence)
	}

	sr, err := replay.Shrink(rep.Cert.Log)
	if err != nil {
		t.Fatalf("shrinking certificate log: %v", err)
	}
	if sr.Property != rep.Cert.Violation.Property {
		t.Fatalf("shrink preserved %q, want %q", sr.Property, rep.Cert.Violation.Property)
	}
}

// TestHeaderBudgetRecordOps: RecordOps threads a replayable log through the
// internally constructed runner.
func TestHeaderBudgetRecordOps(t *testing.T) {
	rep, err := HeaderBudget(protocol.NewAltBit(), 2, 2, ReplayConfig{RecordOps: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replay.Cert == nil {
		t.Fatal("header budget failed to break altbit")
	}
	if rep.Replay.Cert.Log == nil {
		t.Fatal("RecordOps set but certificate has no log")
	}
	rr, err := replay.Run(rep.Replay.Cert.Log)
	if err != nil {
		t.Fatalf("replaying header-budget certificate: %v", err)
	}
	if !rr.VerdictMatches {
		t.Fatalf("replay verdict %v does not match recorded %v", rr.Verdict, rr.RecordedVerdict)
	}
}
