package adversary

import (
	"fmt"
	"sort"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// InductionPhase records the in-transit accumulation after one message of
// the Theorem 3.1 construction.
type InductionPhase struct {
	// Message is the index of the message just delivered.
	Message int
	// Counts maps each data header to its in-transit copy count.
	Counts map[string]int
	// NewHeaders lists headers that reached the target during this phase.
	NewHeaders []string
}

// InductionReport is the outcome of the instrumented Theorem 3.1
// construction.
type InductionReport struct {
	// Phases is the accumulation history — the executable form of the
	// proof's inductive claim (the sets P_1 ⊂ P_2 ⊂ … growing one packet
	// type at a time, with many copies of each).
	Phases []InductionPhase
	// Accumulated lists the data headers that reached the target copy
	// count, in the order they got there.
	Accumulated []string
	// Complete reports that the protocol's observed data alphabet was
	// fully accumulated (the construction's precondition for the final
	// simulation step).
	Complete bool
	// MessagesUsed is the number of messages delivered during
	// accumulation.
	MessagesUsed int
	// Replay is the outcome of the final simulation step (only run when
	// Complete).
	Replay ReplayReport
}

// Induction runs the proof of Theorem 3.1 as an instrumented, adaptive
// procedure: deliver messages while the channel delays copies of every data
// header that has not yet reached `target` in-transit copies, tracking the
// growth of the accumulated set P_i; once the protocol's whole observed
// data alphabet is accumulated (and stays stable for a full round of
// phases), run the replay search — the proof's "the extension β can be
// simulated by the physical layer".
//
// Against a protocol with an unbounded alphabet the accumulation never
// completes within maxMessages and the report says so: that protocol pays
// the theorem's price in headers instead.
func Induction(p protocol.Protocol, target, maxMessages int, cfg ReplayConfig) (InductionReport, error) {
	if target < 1 {
		target = 1
	}
	if maxMessages < 1 {
		maxMessages = 8
	}
	var rep InductionReport

	r := sim.NewRunner(sim.Config{Protocol: p, RecordTrace: true, TraceLog: opsLog(cfg)})
	// The accumulating channel behaviour: keep a copy of header h whenever
	// fewer than `target` copies are in transit. The policy reads the live
	// channel, so delivered copies are replenished on later sends.
	r.SetPolicies(channel.PolicyFunc(func(pk ioa.Packet) channel.Decision {
		if r.ChData.CountHeader(pk.Header) <= target {
			return channel.Delay
		}
		return channel.DeliverNow
	}), nil)

	reached := make(map[string]bool)
	stableFor := 0
	for i := 0; i < maxMessages; i++ {
		if err := r.RunMessage(fmt.Sprintf("m%d", i)); err != nil {
			return rep, fmt.Errorf("adversary: induction message %d: %w", i, err)
		}
		rep.MessagesUsed = i + 1
		phase := InductionPhase{Message: i, Counts: make(map[string]int)}
		grown := false
		for _, pk := range r.ChData.Packets() {
			h := pk.Header
			if _, ok := phase.Counts[h]; ok {
				continue
			}
			c := r.ChData.CountHeader(h)
			phase.Counts[h] = c
			if c >= target && !reached[h] {
				reached[h] = true
				phase.NewHeaders = append(phase.NewHeaders, h)
				rep.Accumulated = append(rep.Accumulated, h)
				grown = true
			}
		}
		sort.Strings(phase.NewHeaders)
		rep.Phases = append(rep.Phases, phase)
		if grown {
			stableFor = 0
		} else {
			stableFor++
		}
		// The alphabet is discovered dynamically; once every observed data
		// header is at target and a full round passes without new headers,
		// the accumulation is complete (for an alternating protocol, two
		// quiet phases cover both parities).
		if len(reached) > 0 && allReached(r, reached, target) && stableFor >= 2 {
			rep.Complete = true
			break
		}
	}
	if !rep.Complete {
		return rep, nil
	}
	var err error
	rep.Replay, err = ReplaySearch(r, cfg)
	if err != nil {
		return rep, err
	}
	return rep, nil
}

func allReached(r *sim.Runner, reached map[string]bool, target int) bool {
	for _, pk := range r.ChData.Packets() {
		if r.ChData.CountHeader(pk.Header) < target || !reached[pk.Header] {
			return false
		}
	}
	return len(reached) > 0
}
