package adversary

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/transport"
)

// prepare runs n messages with the given data policy and trace recording.
func prepare(t *testing.T, p protocol.Protocol, n int, data channel.Policy) *sim.Runner {
	t.Helper()
	r := sim.NewRunner(sim.Config{Protocol: p, DataPolicy: data, RecordTrace: true})
	for i := 0; i < n; i++ {
		if err := r.RunMessage("m" + string(rune('0'+i))); err != nil {
			t.Fatalf("setup message %d: %v", i, err)
		}
	}
	return r
}

// --- ReplaySearch ---

func TestReplayBreaksAltbit(t *testing.T) {
	// Strand one copy of d0, deliver two messages, replay: the classic
	// non-FIFO attack, found automatically.
	r := prepare(t, protocol.NewAltBit(), 2, channel.DelayFirst(1))
	rep, err := ReplaySearch(r, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert == nil {
		t.Fatalf("replay search failed to break altbit (%d nodes)", rep.Nodes)
	}
	if rep.Cert.Violation.Property != "DL1" {
		t.Fatalf("expected DL1 violation, got %v", rep.Cert.Violation)
	}
	if err := rep.Cert.Recheck(); err != nil {
		t.Fatalf("certificate recheck failed: %v", err)
	}
	if len(rep.Cert.Replayed) == 0 || rep.Cert.Replayed[0].Header != "d0" {
		t.Fatalf("expected a d0 replay, got %v", rep.Cert.Replayed)
	}
	if len(rep.Cert.ExtraDeliveries) == 0 {
		t.Fatal("certificate should list the spurious delivery")
	}
}

func TestReplayCertificateHumanReadable(t *testing.T) {
	r := prepare(t, protocol.NewAltBit(), 2, channel.DelayFirst(1))
	rep, err := ReplaySearch(r, ReplayConfig{})
	if err != nil || rep.Cert == nil {
		t.Fatalf("no certificate: %v", err)
	}
	s := rep.Cert.String()
	for _, want := range []string{"VIOLATION CERTIFICATE", "DL1", "replayed stale copies", "receive_msg"} {
		if !strings.Contains(s, want) {
			t.Fatalf("certificate rendering missing %q:\n%s", want, s)
		}
	}
}

func TestReplayCannotBreakSeqnum(t *testing.T) {
	// Strand plenty of old copies; the naive protocol ignores all of them.
	r := prepare(t, protocol.NewSeqNum(), 3, channel.DelayFirst(2))
	rep, err := ReplaySearch(r, ReplayConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert != nil {
		t.Fatalf("seqnum must resist replay; got certificate:\n%s", rep.Cert)
	}
	if rep.Nodes == 0 {
		t.Fatal("search should have explored at least one delivery")
	}
}

func TestReplayCannotBreakCountingProtocols(t *testing.T) {
	for _, p := range []protocol.Protocol{protocol.NewCntLinear(), protocol.NewCntExp()} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			r := prepare(t, p, 3, channel.DelayFirst(3))
			rep, err := ReplaySearch(r, ReplayConfig{MaxDepth: 10})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Cert != nil {
				t.Fatalf("%s must resist replay; certificate:\n%s", p.Name(), rep.Cert)
			}
		})
	}
}

func TestReplayBreaksCheat(t *testing.T) {
	// cheat(d) under-counts by d: with S ≥ d stranded same-bit copies the
	// adversary delivers S−d+1 of them and forces a spurious acceptance.
	// Two messages leave the receiver expecting bit 0 again, the bit of the
	// 4 stranded copies.
	for _, d := range []int{1, 2} {
		r := prepare(t, protocol.NewCheat(d), 2, channel.DelayFirst(4))
		rep, err := ReplaySearch(r, ReplayConfig{MaxDepth: 12})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cert == nil {
			t.Fatalf("cheat(%d) should be breakable (%d nodes)", d, rep.Nodes)
		}
		if rep.Cert.Violation.Property != "DL1" {
			t.Fatalf("cheat(%d): expected DL1, got %v", d, rep.Cert.Violation)
		}
		if err := rep.Cert.Recheck(); err != nil {
			t.Fatalf("cheat(%d): recheck: %v", d, err)
		}
	}
}

func TestReplayRequiresTrace(t *testing.T) {
	r := sim.NewRunner(sim.Config{Protocol: protocol.NewAltBit()})
	if _, err := ReplaySearch(r, ReplayConfig{}); err != ErrNoTrace {
		t.Fatalf("expected ErrNoTrace, got %v", err)
	}
}

func TestReplayDoesNotMutateCaller(t *testing.T) {
	r := prepare(t, protocol.NewAltBit(), 2, channel.DelayFirst(1))
	before := r.ChData.Key()
	trBefore := len(r.Recorder().Trace())
	if _, err := ReplaySearch(r, ReplayConfig{}); err != nil {
		t.Fatal(err)
	}
	if r.ChData.Key() != before || len(r.Recorder().Trace()) != trBefore {
		t.Fatal("replay search mutated the caller's runner")
	}
}

func TestReplayEmptyChannelFindsNothing(t *testing.T) {
	r := prepare(t, protocol.NewAltBit(), 2, channel.Reliable())
	rep, err := ReplaySearch(r, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert != nil || rep.Nodes != 0 {
		t.Fatalf("nothing to replay: %+v", rep)
	}
}

func TestReplayNodeBudgetTruncates(t *testing.T) {
	r := prepare(t, protocol.NewCntLinear(), 3, channel.DelayFirst(6))
	rep, err := ReplaySearch(r, ReplayConfig{MaxDepth: 10, MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatalf("expected truncation at 5 nodes, got %+v", rep)
	}
	if rep.Nodes > 5 {
		t.Fatalf("node budget exceeded: %d", rep.Nodes)
	}
}

// --- Pump ---

func TestPumpClosesCorrectProtocols(t *testing.T) {
	for _, p := range []protocol.Protocol{protocol.NewAltBit(), protocol.NewSeqNum(), protocol.NewCntLinear()} {
		r := sim.NewRunner(sim.Config{Protocol: p})
		r.SubmitMsg("m")
		rep, err := Pump(r, 1<<16)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !rep.Closed || rep.Pumped {
			t.Fatalf("%s: expected Closed, got %+v", p.Name(), rep)
		}
		if rep.Cost < 1 {
			t.Fatalf("%s: closing cost %d", p.Name(), rep.Cost)
		}
	}
}

func TestPumpIdleIsClosed(t *testing.T) {
	r := sim.NewRunner(sim.Config{Protocol: protocol.NewAltBit()})
	rep, err := Pump(r, 100)
	if err != nil || !rep.Closed || rep.Cost != 0 {
		t.Fatalf("idle pump = %+v, %v", rep, err)
	}
}

func TestPumpDetectsLivelock(t *testing.T) {
	r := sim.NewRunner(sim.Config{Protocol: protocol.NewLivelock()})
	r.SubmitMsg("m")
	rep, err := Pump(r, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pumped || rep.Closed {
		t.Fatalf("expected Pumped, got %+v", rep)
	}
	if rep.RepeatedState == "" || rep.Steps == 0 {
		t.Fatalf("pump report incomplete: %+v", rep)
	}
}

func TestPumpDoesNotMutateCaller(t *testing.T) {
	r := sim.NewRunner(sim.Config{Protocol: protocol.NewAltBit()})
	r.SubmitMsg("m")
	key := r.T.StateKey()
	if _, err := Pump(r, 1000); err != nil {
		t.Fatal(err)
	}
	if r.T.StateKey() != key || !r.T.Busy() {
		t.Fatal("pump mutated the caller's runner")
	}
}

// --- HeaderBudget ---

func TestHeaderBudgetBreaksAltbit(t *testing.T) {
	rep, err := HeaderBudget(protocol.NewAltBit(), 2, 3, ReplayConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded {
		t.Fatal("altbit is header-bounded")
	}
	if rep.Replay.Cert == nil {
		t.Fatalf("header-budget attack should break altbit: %+v", rep)
	}
	if err := rep.Replay.Cert.Recheck(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rep.HeadersAccumulated)
	if len(rep.HeadersAccumulated) < 2 {
		t.Fatalf("should accumulate both data headers, got %v", rep.HeadersAccumulated)
	}
}

func TestHeaderBudgetBreaksCheat(t *testing.T) {
	rep, err := HeaderBudget(protocol.NewCheat(1), 3, 3, ReplayConfig{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replay.Cert == nil {
		t.Fatal("header-budget attack should break cheat(1)")
	}
}

func TestHeaderBudgetCountingResists(t *testing.T) {
	for _, p := range []protocol.Protocol{protocol.NewCntLinear(), protocol.NewCntExp()} {
		rep, err := HeaderBudget(p, 3, 3, ReplayConfig{MaxDepth: 10})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if rep.Replay.Cert != nil {
			t.Fatalf("%s should resist the header-budget attack:\n%s", p.Name(), rep.Replay.Cert)
		}
		if rep.Replay.Nodes == 0 {
			t.Fatalf("%s: search explored nothing", p.Name())
		}
	}
}

func TestHeaderBudgetInapplicableToUnboundedAlphabet(t *testing.T) {
	rep, err := HeaderBudget(protocol.NewSeqNum(), 2, 3, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bounded {
		t.Fatal("seqnum has an unbounded alphabet; construction inapplicable")
	}
}

func TestRecheckDetectsTamperedCertificate(t *testing.T) {
	r := prepare(t, protocol.NewAltBit(), 2, channel.DelayFirst(1))
	rep, err := ReplaySearch(r, ReplayConfig{})
	if err != nil || rep.Cert == nil {
		t.Fatalf("no certificate: %v", err)
	}
	// Tamper 1: swap the claimed property.
	bad := *rep.Cert
	v := *bad.Violation
	v.Property = "DL2"
	bad.Violation = &v
	if bad.Recheck() == nil {
		t.Fatal("property mismatch not detected")
	}
	// Tamper 2: replace the trace with a valid one.
	good := prepare(t, protocol.NewSeqNum(), 1, channel.Reliable())
	bad2 := *rep.Cert
	bad2.Trace = good.Recorder().Trace()
	if bad2.Recheck() == nil {
		t.Fatal("valid trace accepted as violation certificate")
	}
}

func TestReplayBreaksTransportWrap(t *testing.T) {
	// The replay adversary also works one layer up: a sliding window
	// transport with sequence space 2 falls to a stale-segment replay.
	r := prepare(t, transport.New(2, 1), 2, channel.DelayFirst(1))
	rep, err := ReplaySearch(r, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert == nil {
		t.Fatalf("swindow-s2 should fall to replay (%d nodes)", rep.Nodes)
	}
	if err := rep.Cert.Recheck(); err != nil {
		t.Fatal(err)
	}
	// The unbounded variant resists the same schedule.
	r2 := prepare(t, transport.New(0, 1), 2, channel.DelayFirst(1))
	rep2, err := ReplaySearch(r2, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cert != nil {
		t.Fatalf("unbounded swindow should resist:\n%s", rep2.Cert)
	}
}
