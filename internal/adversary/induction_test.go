package adversary

import (
	"testing"

	"repro/internal/protocol"
)

func TestInductionBreaksAltbit(t *testing.T) {
	rep, err := Induction(protocol.NewAltBit(), 2, 10, ReplayConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("accumulation should complete for a 2-data-header protocol: %+v", rep)
	}
	if len(rep.Accumulated) != 2 {
		t.Fatalf("accumulated headers = %v, want both data headers", rep.Accumulated)
	}
	if rep.Replay.Cert == nil {
		t.Fatal("final simulation step should break altbit")
	}
	if err := rep.Replay.Cert.Recheck(); err != nil {
		t.Fatal(err)
	}
}

func TestInductionBreaksCheat(t *testing.T) {
	rep, err := Induction(protocol.NewCheat(1), 3, 10, ReplayConfig{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Replay.Cert == nil {
		t.Fatalf("induction should break cheat(1): complete=%t cert=%v", rep.Complete, rep.Replay.Cert)
	}
}

func TestInductionCountingResists(t *testing.T) {
	rep, err := Induction(protocol.NewCntLinear(), 2, 10, ReplayConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("accumulation should complete: %+v", rep)
	}
	if rep.Replay.Cert != nil {
		t.Fatalf("cntlinear should resist the simulation step:\n%s", rep.Replay.Cert)
	}
}

func TestInductionSeqnumNeverCompletes(t *testing.T) {
	// The naive protocol's alphabet grows every message: accumulation can
	// never cover it. The report records the growing frontier instead.
	rep, err := Induction(protocol.NewSeqNum(), 2, 8, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatalf("seqnum accumulation should never complete: %+v", rep)
	}
	if rep.MessagesUsed != 8 {
		t.Fatalf("should have used the full message budget, used %d", rep.MessagesUsed)
	}
	// Every phase strands a fresh header.
	if len(rep.Accumulated) < 4 {
		t.Fatalf("accumulated = %v", rep.Accumulated)
	}
}

func TestInductionPhasesRecordGrowth(t *testing.T) {
	rep, err := Induction(protocol.NewAltBit(), 3, 10, ReplayConfig{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	// Counts must be monotone per header across phases (the accumulating
	// policy never releases below target).
	last := make(map[string]int)
	for _, ph := range rep.Phases {
		for h, c := range ph.Counts {
			if c < last[h] {
				t.Fatalf("header %s count regressed: %d < %d", h, c, last[h])
			}
			last[h] = c
		}
	}
	// Final counts reach the target for both data headers.
	final := rep.Phases[len(rep.Phases)-1].Counts
	for _, h := range []string{"d0", "d1"} {
		if final[h] < 3 {
			t.Fatalf("header %s final count %d < target", h, final[h])
		}
	}
}

func TestInductionClampsParameters(t *testing.T) {
	rep, err := Induction(protocol.NewAltBit(), 0, 0, ReplayConfig{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MessagesUsed == 0 {
		t.Fatal("clamped parameters should still run")
	}
}
