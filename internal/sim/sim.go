// Package sim drives a data link protocol over a pair of non-FIFO physical
// channels and records the resulting execution.
//
// The runner owns all scheduling: it alternates transmitter output steps
// with receiver acknowledgement drains, consults a channel.Policy for the
// fate of every sent packet, and assigns the bookkeeping message IDs used
// by the ioa trace checkers. Everything is deterministic given the
// protocol, the policies and their seeds.
//
// Adversaries (internal/adversary) reuse the runner's step-level API —
// SubmitMsg, StepTransmit, DrainAcks, DeliverStale — to construct the
// executions of the paper's proofs, instead of the message-level Run loop.
package sim

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// ErrStalled is wrapped by run errors when the protocol stops making
// progress within the configured step budget: an operational liveness (DL3)
// failure.
var ErrStalled = errors.New("protocol stalled: liveness budget exhausted")

// Config describes one simulation.
type Config struct {
	// Protocol selects the data link protocol to run.
	Protocol protocol.Protocol
	// DataPolicy decides the fate of packets on the t→r channel.
	// Defaults to channel.Reliable().
	DataPolicy channel.Policy
	// AckPolicy decides the fate of packets on the r→t channel.
	// Defaults to channel.Reliable().
	AckPolicy channel.Policy
	// StepBudget bounds the number of transmitter steps per message; when
	// exhausted the run fails with ErrStalled. Defaults to 1 << 20.
	StepBudget int
	// Payload generates the i-th message payload. Defaults to "msg-<i>".
	// Experiments that use the paper's "all messages are the same"
	// convention supply a constant function.
	Payload func(i int) string
	// RecordTrace enables full trace recording. Metric counters are
	// collected either way; traces are needed for checking and
	// certificates but dominate memory on long runs.
	RecordTrace bool
	// Monitor, when non-nil, observes the externally visible actions in
	// order, receiving exactly the event stream RecordTrace would record.
	// The interned fuzz core judges runs through an ioa.LiveChecker monitor
	// instead of a post-hoc trace scan. Monitors do not follow Fork: a fork
	// is a speculative branch, and feeding it to the same monitor would
	// interleave two executions into one stream.
	Monitor ioa.Monitor
	// TraceLog, when non-nil, receives a deterministic-replay event log of
	// the run: every driver operation (submit, transmit, drain, stale
	// delivery), every externally visible action, and every channel-policy
	// decision. The channel policies are transparently wrapped so their
	// verdicts are captured; internal/replay re-drives a runner from such a
	// log bit for bit. The runner stamps the log's protocol metadata if it
	// is unset.
	TraceLog *trace.Log
}

func (c Config) withDefaults() Config {
	if c.DataPolicy == nil {
		c.DataPolicy = channel.Reliable()
	}
	if c.AckPolicy == nil {
		c.AckPolicy = channel.Reliable()
	}
	if c.StepBudget == 0 {
		c.StepBudget = 1 << 20
	}
	if c.Payload == nil {
		c.Payload = func(i int) string { return "msg-" + strconv.Itoa(i) }
	}
	return c
}

// Metrics aggregates the resource measurements of a run — the paper's three
// efficiency parameters (packets, headers, space) plus channel occupancy.
type Metrics struct {
	// DataPacketsPerMessage is the number of send_pkt^{t→r} actions
	// attributed to each message, in order. Sends are attributed to the
	// most recently submitted message; when several messages are
	// submitted before running to idle (windowed transports), the
	// attribution is to the batch's last message — use TotalDataPackets
	// for cross-message aggregates in that case.
	DataPacketsPerMessage []int
	// TotalDataPackets is the total send_pkt^{t→r} count.
	TotalDataPackets int
	// TotalAckPackets is the total send_pkt^{r→t} count.
	TotalAckPackets int
	// HeadersUsed is the number of distinct packet headers sent on either
	// channel — the paper's header metric.
	HeadersUsed int
	// MaxInTransitData is the peak t→r channel occupancy.
	MaxInTransitData int
	// MaxStateSize is the peak combined endpoint state size (the paper's
	// space/boundness parameter, measured through StateSize proxies).
	MaxStateSize int
}

// Result is the outcome of a run.
type Result struct {
	// Trace is the recorded execution (nil unless Config.RecordTrace).
	Trace ioa.Trace
	// Delivered lists the payloads delivered to the higher layer.
	Delivered []string
	// Metrics holds the resource measurements.
	Metrics Metrics
	// Err is non-nil if the run failed (liveness budget exhausted).
	Err error
}

// Runner drives one protocol instance over two non-FIFO channels.
type Runner struct {
	cfg Config

	T protocol.Transmitter
	R protocol.Receiver
	// ChData is the t→r physical channel; ChAck is the r→t channel.
	ChData, ChAck *channel.NonFIFO

	rec        *ioa.Recorder
	mon        ioa.Monitor
	tlog       *trace.Log
	headers    map[string]bool
	lastHeader string // last header inserted into headers (retransmits repeat it)
	sent       int    // send_msg counter (message IDs)
	delivered  []string
	metrics    Metrics
	curMsg     int // index of the message data packets are attributed to
	ver        uint64
}

// Version reports a counter that advances whenever the joint configuration
// may have changed: on every submit, packet send, packet receive, stale
// drop and Reset. Between two equal Version() readings the endpoint states
// and channel occupancies are identical, so derived observations (state
// keys, coverage points) can be reused instead of recomputed. This leans on
// the endpoint contract that an unproductive NextPkt mutates nothing
// observable (TestContractIdleNextPktPure); a productive one always routes
// through recordSend.
func (r *Runner) Version() uint64 { return r.ver }

// NewRunner constructs a runner; the protocol's genies are wired to the
// live channels.
func NewRunner(cfg Config) *Runner {
	cfg = cfg.withDefaults()
	chData := channel.NewNonFIFO(ioa.TtoR)
	chAck := channel.NewNonFIFO(ioa.RtoT)
	t, r := cfg.Protocol.New(channel.ChannelGenie{Ch: chData}, channel.ChannelGenie{Ch: chAck})
	run := &Runner{
		cfg:     cfg,
		T:       t,
		R:       r,
		ChData:  chData,
		ChAck:   chAck,
		headers: make(map[string]bool),
		curMsg:  -1,
	}
	if cfg.RecordTrace {
		run.rec = ioa.NewRecorder()
	}
	run.mon = cfg.Monitor
	if cfg.TraceLog != nil {
		run.tlog = cfg.TraceLog
		if run.tlog.Meta[trace.MetaProtocol] == "" {
			run.tlog.SetMeta(trace.MetaProtocol, cfg.Protocol.Name())
		}
		if run.tlog.Meta[trace.MetaKind] == "" {
			run.tlog.SetMeta(trace.MetaKind, "sim")
		}
		run.cfg.DataPolicy = channel.Capture(run.cfg.DataPolicy, ioa.TtoR, run.tlog)
		run.cfg.AckPolicy = channel.Capture(run.cfg.AckPolicy, ioa.RtoT, run.tlog)
	}
	return run
}

// SetPolicies replaces the channel policies from this point on. The
// boundness definitions quantify over executions where "the physical layer
// starts behaving in the optimal way" from some point; switching to
// channel.Reliable() is exactly that point.
func (r *Runner) SetPolicies(data, ack channel.Policy) {
	if data != nil {
		if r.tlog != nil {
			data = channel.Capture(data, ioa.TtoR, r.tlog)
		}
		r.cfg.DataPolicy = data
	}
	if ack != nil {
		if r.tlog != nil {
			ack = channel.Capture(ack, ioa.RtoT, r.tlog)
		}
		r.cfg.AckPolicy = ack
	}
}

// Fork returns an independent copy of the runner — endpoints, channels and
// trace all deep-copied — with the given channel policies installed (nil
// keeps reliable delivery). Adversaries use forks to explore speculative
// extensions of the current execution, mirroring the proofs' branching over
// channel behaviours.
func (r *Runner) Fork(data, ack channel.Policy) *Runner {
	if data == nil {
		data = channel.Reliable()
	}
	if ack == nil {
		ack = channel.Reliable()
	}
	cfg := r.cfg
	var ftlog *trace.Log
	if r.tlog != nil {
		// The fork's log diverges from the parent's at this point; wrap the
		// fresh policies so the fork's own decisions are captured too.
		ftlog = r.tlog.Clone()
		data = channel.Capture(data, ioa.TtoR, ftlog)
		ack = channel.Capture(ack, ioa.RtoT, ftlog)
	}
	cfg.DataPolicy = data
	cfg.AckPolicy = ack
	cfg.TraceLog = ftlog
	f := &Runner{
		cfg:       cfg,
		T:         r.T.Clone(),
		R:         r.R.Clone(),
		ChData:    r.ChData.Clone(),
		ChAck:     r.ChAck.Clone(),
		headers:   make(map[string]bool, len(r.headers)),
		sent:      r.sent,
		delivered: append([]string(nil), r.delivered...),
		metrics:   r.metrics,
		curMsg:    r.curMsg,
	}
	f.cfg.Monitor = nil // monitors do not follow forks; see Config.Monitor
	f.metrics.DataPacketsPerMessage = append([]int(nil), r.metrics.DataPacketsPerMessage...)
	//nfvet:allow maprange (order-insensitive copy into another set)
	for h := range r.headers {
		f.headers[h] = true
	}
	if r.rec != nil {
		f.rec = r.rec.Clone()
	}
	f.tlog = ftlog
	// Rebind channel genies to the forked channels; the clones still point
	// at the original runner's channels otherwise.
	if tg, ok := f.T.(protocol.AckGenieUser); ok {
		tg.SetAckGenie(channel.ChannelGenie{Ch: f.ChAck})
	}
	if rg, ok := f.R.(protocol.DataGenieUser); ok {
		rg.SetDataGenie(channel.ChannelGenie{Ch: f.ChData})
	}
	return f
}

// Run delivers n messages and returns the result. A liveness failure is
// reported in Result.Err; the partial result remains inspectable.
func (r *Runner) Run(n int) Result {
	for i := 0; i < n; i++ {
		if err := r.RunMessage(r.cfg.Payload(i)); err != nil {
			return r.result(fmt.Errorf("message %d: %w", i, err))
		}
	}
	return r.result(nil)
}

// RunMessage submits one message and steps the system until the
// transmitter is idle again (message confirmed) or the budget is exhausted.
func (r *Runner) RunMessage(payload string) error {
	r.SubmitMsg(payload)
	return r.RunToIdle()
}

// RunToIdle steps the system until the transmitter is idle (every accepted
// message confirmed) or the step budget is exhausted. Use it after
// SubmitMsg when submission and delivery need to be separated.
func (r *Runner) RunToIdle() error {
	for steps := 0; r.T.Busy(); steps++ {
		if steps >= r.cfg.StepBudget {
			return fmt.Errorf("%w after %d steps (protocol %s)", ErrStalled, steps, r.cfg.Protocol.Name())
		}
		progressed := r.StepTransmit()
		r.DrainAcks()
		if !progressed && r.T.Busy() {
			return fmt.Errorf("%w: transmitter busy with no enabled output", ErrStalled)
		}
	}
	return nil
}

// SubmitMsg records a send_msg action and hands the payload to the
// transmitter.
func (r *Runner) SubmitMsg(payload string) {
	if r.rec != nil {
		r.rec.SendMsg(ioa.Message{ID: r.sent, Payload: payload})
	}
	if r.mon != nil {
		r.mon.SendMsg(ioa.Message{ID: r.sent, Payload: payload})
	}
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindSubmit, Msg: ioa.Message{ID: r.sent, Payload: payload}})
	}
	r.ver++
	r.sent++
	r.curMsg++
	r.metrics.DataPacketsPerMessage = append(r.metrics.DataPacketsPerMessage, 0)
	r.T.SendMsg(payload)
	r.sampleState()
}

// StepTransmit performs one transmitter output step: take one enabled data
// packet, apply the data policy, and (on DeliverNow) deliver it to the
// receiver. It reports whether an output action was enabled.
func (r *Runner) StepTransmit() bool {
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindTransmit})
	}
	p, ok := r.T.NextPkt()
	if !ok {
		return false
	}
	r.recordSend(ioa.TtoR, p)
	// The policy is consulted before the channel is touched so the
	// DeliverNow and Drop branches can use the fused channel operations
	// (add-then-remove of the same copy is the identity on the in-transit
	// multiset). No observer runs between the send and its fate: policies
	// see only the packet, and the receiver's genie reads the channel only
	// inside DeliverPkt, after the copy would have been removed anyway.
	switch r.cfg.DataPolicy.OnSend(p) {
	case channel.DeliverNow:
		r.ChData.SendDelivered(p)
		r.recordRecv(ioa.TtoR, p)
		r.R.DeliverPkt(p)
		r.collectDelivered()
	case channel.Drop:
		r.ChData.SendDropped(p)
	case channel.Delay:
		r.ChData.Send(p)
	}
	if t := r.ChData.InTransit(); t > r.metrics.MaxInTransitData {
		r.metrics.MaxInTransitData = t
	}
	r.sampleState()
	return true
}

// DrainAcks moves every enabled receiver output through the ack channel.
func (r *Runner) DrainAcks() {
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindDrain})
	}
	for {
		a, ok := r.R.NextPkt()
		if !ok {
			return
		}
		r.recordSend(ioa.RtoT, a)
		switch r.cfg.AckPolicy.OnSend(a) {
		case channel.DeliverNow:
			r.ChAck.SendDelivered(a)
			r.recordRecv(ioa.RtoT, a)
			r.T.DeliverPkt(a)
		case channel.Drop:
			r.ChAck.SendDropped(a)
		case channel.Delay:
			r.ChAck.Send(a)
		}
	}
}

// DeliverStale delivers one delayed in-transit copy of p on the given
// channel — the adversary's replay move ("the extension can be simulated by
// the physical layer"). It fails if no copy is in transit.
func (r *Runner) DeliverStale(d ioa.Dir, p ioa.Packet) error {
	switch d {
	case ioa.TtoR:
		if err := r.ChData.Deliver(p); err != nil {
			return err
		}
		r.recordStale(d, p)
		r.recordRecv(ioa.TtoR, p)
		r.R.DeliverPkt(p)
		r.collectDelivered()
	case ioa.RtoT:
		if err := r.ChAck.Deliver(p); err != nil {
			return err
		}
		r.recordStale(d, p)
		r.recordRecv(ioa.RtoT, p)
		r.T.DeliverPkt(p)
	default:
		return fmt.Errorf("sim: unknown direction %v", d)
	}
	r.sampleState()
	return nil
}

// DropStale permanently discards one delayed in-transit copy of p on the
// given channel — the adversary's loss move. A drop is indistinguishable
// from an infinite delay to the endpoints themselves, but not to the
// channel genies (stale-copy counts shrink), so the bounded verifier
// (internal/verify) needs it as a first-class, replayable operation. It
// fails if no copy is in transit.
func (r *Runner) DropStale(d ioa.Dir, p ioa.Packet) error {
	switch d {
	case ioa.TtoR:
		if err := r.ChData.Drop(p); err != nil {
			return err
		}
	case ioa.RtoT:
		if err := r.ChAck.Drop(p); err != nil {
			return err
		}
	default:
		return fmt.Errorf("sim: unknown direction %v", d)
	}
	r.ver++
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindDropStale, Dir: d, Pkt: p})
	}
	return nil
}

// CorruptStart replaces the endpoint start states with entries tIdx/rIdx of
// the protocol's declared corruption space (protocol.Corruptible) — the
// self-stabilization adversary's before-time-0 move. Index 0 selects the
// clean start for that endpoint. The entries are cloned from the space's
// templates and their channel genies rebound to this runner's live channels,
// so corrupted endpoints satisfy the same contracts as clean ones.
//
// It must be called before any other operation: corruption models an
// arbitrary *initial* configuration, not a mid-run fault.
func (r *Runner) CorruptStart(tIdx, rIdx int) error {
	c, ok := r.cfg.Protocol.(protocol.Corruptible)
	if !ok {
		return fmt.Errorf("sim: protocol %s does not declare a corruption space", r.cfg.Protocol.Name())
	}
	if r.sent > 0 || r.metrics.TotalDataPackets > 0 || r.metrics.TotalAckPackets > 0 ||
		r.ChData.InTransit() > 0 || r.ChAck.InTransit() > 0 {
		return errors.New("sim: CorruptStart after the run began")
	}
	space := c.Corruptions()
	if tIdx < 0 || tIdx >= len(space.Transmitters) {
		return fmt.Errorf("sim: corrupt transmitter index %d out of range [0,%d)", tIdx, len(space.Transmitters))
	}
	if rIdx < 0 || rIdx >= len(space.Receivers) {
		return fmt.Errorf("sim: corrupt receiver index %d out of range [0,%d)", rIdx, len(space.Receivers))
	}
	r.T = space.Transmitters[tIdx].Clone()
	r.R = space.Receivers[rIdx].Clone()
	if tg, ok := r.T.(protocol.AckGenieUser); ok {
		tg.SetAckGenie(channel.ChannelGenie{Ch: r.ChAck})
	}
	if rg, ok := r.R.(protocol.DataGenieUser); ok {
		rg.SetDataGenie(channel.ChannelGenie{Ch: r.ChData})
	}
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindCorrupt, Index: tIdx, Bits: uint64(rIdx)})
	}
	r.sampleState()
	return nil
}

// Poison pre-loads one packet onto the given channel: it has been "in
// transit since before time 0". The send is recorded in the ioa trace (so
// PL1 — no packet received that was never sent — holds over the poisoned
// run by construction) but is charged to neither the packet metrics nor the
// header alphabet: poison is adversary supply, not protocol cost. Poisoned
// copies are subsequently delivered or dropped through the ordinary
// DeliverStale/DropStale moves.
func (r *Runner) Poison(d ioa.Dir, p ioa.Packet) error {
	if r.sent > 0 || r.metrics.TotalDataPackets > 0 || r.metrics.TotalAckPackets > 0 {
		return errors.New("sim: Poison after the run began")
	}
	var ch *channel.NonFIFO
	switch d {
	case ioa.TtoR:
		ch = r.ChData
	case ioa.RtoT:
		ch = r.ChAck
	default:
		return fmt.Errorf("sim: unknown direction %v", d)
	}
	ch.Send(p)
	if r.rec != nil {
		r.rec.SendPkt(d, p)
	}
	if r.mon != nil {
		r.mon.SendPkt(d, p)
	}
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindPoison, Dir: d, Pkt: p})
	}
	return nil
}

// recordStale logs the stale-delivery operation (before its receive_pkt
// observation, so replay re-issues the op and then verifies the effect).
func (r *Runner) recordStale(d ioa.Dir, p ioa.Packet) {
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindStale, Dir: d, Pkt: p})
	}
}

// JointState snapshots the observable joint configuration of the system:
// both endpoints' canonical state keys and the two channels' in-transit
// occupancy. The fuzzer's coverage signal is built from exactly this tuple —
// a new joint state (or a new occupancy regime) means the input drove the
// system somewhere no earlier input did.
func (r *Runner) JointState() (tkey, rkey string, dataTransit, ackTransit int) {
	return r.T.StateKey(), r.R.StateKey(), r.ChData.InTransit(), r.ChAck.InTransit()
}

// AppendJointState is the zero-alloc form of JointState: the state keys are
// appended to the caller's scratch buffers (endpoints implementing
// protocol.KeyAppender render without allocating).
func (r *Runner) AppendJointState(tdst, rdst []byte) (tkey, rkey []byte, dataTransit, ackTransit int) {
	return protocol.AppendStateKeyOf(tdst, r.T), protocol.AppendStateKeyOf(rdst, r.R),
		r.ChData.InTransit(), r.ChAck.InTransit()
}

// Reset reinitialises the runner in place for a fresh run of cfg, recycling
// the channel multisets, the header set, the recorder and the metrics
// slices. It is NewRunner for pooled runners: the fuzz exec core resets one
// runner per input instead of allocating the whole object graph per
// execution.
func (r *Runner) Reset(cfg Config) {
	cfg = cfg.withDefaults()
	r.ChData.Reset(ioa.TtoR)
	r.ChAck.Reset(ioa.RtoT)
	t, rcv := cfg.Protocol.New(channel.ChannelGenie{Ch: r.ChData}, channel.ChannelGenie{Ch: r.ChAck})
	r.cfg = cfg
	r.T, r.R = t, rcv
	if r.headers == nil {
		r.headers = make(map[string]bool)
	} else {
		clear(r.headers)
	}
	r.ver++
	r.lastHeader = ""
	r.sent = 0
	r.delivered = r.delivered[:0]
	r.metrics = Metrics{DataPacketsPerMessage: r.metrics.DataPacketsPerMessage[:0]}
	r.curMsg = -1
	r.mon = cfg.Monitor
	if cfg.RecordTrace {
		if r.rec != nil {
			r.rec.Reset()
		} else {
			r.rec = ioa.NewRecorder()
		}
	} else {
		r.rec = nil
	}
	r.tlog = nil
	if cfg.TraceLog != nil {
		r.tlog = cfg.TraceLog
		if r.tlog.Meta[trace.MetaProtocol] == "" {
			r.tlog.SetMeta(trace.MetaProtocol, cfg.Protocol.Name())
		}
		if r.tlog.Meta[trace.MetaKind] == "" {
			r.tlog.SetMeta(trace.MetaKind, "sim")
		}
		r.cfg.DataPolicy = channel.Capture(r.cfg.DataPolicy, ioa.TtoR, r.tlog)
		r.cfg.AckPolicy = channel.Capture(r.cfg.AckPolicy, ioa.RtoT, r.tlog)
	}
}

// Delivered returns the payloads delivered so far (live view).
func (r *Runner) Delivered() []string { return r.delivered }

// SentMessages reports the send_msg count.
func (r *Runner) SentMessages() int { return r.sent }

// Recorder exposes the trace recorder (nil unless RecordTrace).
func (r *Runner) Recorder() *ioa.Recorder { return r.rec }

// TraceLog exposes the replayable event log (nil unless Config.TraceLog was
// set). Forked runners carry independent clones.
func (r *Runner) TraceLog() *trace.Log { return r.tlog }

// Result snapshots the run outcome.
func (r *Runner) Result() Result { return r.result(nil) }

func (r *Runner) result(err error) Result {
	res := Result{
		Delivered: append([]string(nil), r.delivered...),
		Metrics:   r.metrics,
		Err:       err,
	}
	res.Metrics.HeadersUsed = len(r.headers)
	res.Metrics.DataPacketsPerMessage = append([]int(nil), r.metrics.DataPacketsPerMessage...)
	if r.rec != nil {
		res.Trace = r.rec.Trace()
	}
	return res
}

func (r *Runner) collectDelivered() {
	for _, payload := range r.R.TakeDelivered() {
		if r.rec != nil {
			r.rec.ReceiveMsg(ioa.Message{ID: len(r.delivered), Payload: payload})
		}
		if r.mon != nil {
			r.mon.ReceiveMsg(ioa.Message{ID: len(r.delivered), Payload: payload})
		}
		if r.tlog != nil {
			r.tlog.Emit(trace.Event{Kind: trace.KindRecvMsg, Msg: ioa.Message{ID: len(r.delivered), Payload: payload}})
		}
		r.delivered = append(r.delivered, payload)
	}
}

func (r *Runner) recordSend(d ioa.Dir, p ioa.Packet) {
	r.ver++
	if r.rec != nil {
		r.rec.SendPkt(d, p)
	}
	if r.mon != nil {
		r.mon.SendPkt(d, p)
	}
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindSendPkt, Dir: d, Pkt: p})
	}
	if p.Header != r.lastHeader || len(r.headers) == 0 {
		r.headers[p.Header] = true
		r.lastHeader = p.Header
	}
	if d == ioa.TtoR {
		r.metrics.TotalDataPackets++
		if r.curMsg >= 0 && r.curMsg < len(r.metrics.DataPacketsPerMessage) {
			r.metrics.DataPacketsPerMessage[r.curMsg]++
		}
	} else {
		r.metrics.TotalAckPackets++
	}
}

func (r *Runner) recordRecv(d ioa.Dir, p ioa.Packet) {
	r.ver++
	if r.rec != nil {
		r.rec.ReceivePkt(d, p)
	}
	if r.mon != nil {
		r.mon.ReceivePkt(d, p)
	}
	if r.tlog != nil {
		r.tlog.Emit(trace.Event{Kind: trace.KindRecvPkt, Dir: d, Pkt: p})
	}
}

func (r *Runner) sampleState() {
	if s := r.T.StateSize() + r.R.StateSize(); s > r.metrics.MaxStateSize {
		r.metrics.MaxStateSize = s
	}
}
